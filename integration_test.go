// Integration tests exercising the whole stack together: corpus →
// Squirrel (register/propagate) → boot chain → volumes → metrics, plus
// failure injection across layers.
package repro_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/zvol"
)

// deploy builds a scaled deployment with a matched corpus.
func deploy(t testing.TB, nodes int) (*core.Squirrel, *cluster.Cluster, *corpus.Repository) {
	t.Helper()
	cl, err := cluster.New(cluster.GigE, 4, nodes)
	if err != nil {
		t.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	sq, err := core.New(cfg, cl, pfs)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sq, cl, repo
}

func TestFullLifecycle(t *testing.T) {
	sq, cl, repo := deploy(t, 6)
	t0 := time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC)

	// Register the whole repository.
	for i, im := range repo.Images {
		if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: t0.Add(time.Duration(i) * time.Hour)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sq.Registered()); got != len(repo.Images) {
		t.Fatalf("registered %d of %d", got, len(repo.Images))
	}

	// Every image boots warm, byte-verified, on every node, with zero
	// cluster-wide network traffic.
	cl.ResetCounters()
	for _, im := range repo.Images {
		for _, n := range cl.Compute {
			rep, err := sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: n.ID, Verify: true})
			if err != nil {
				t.Fatalf("boot %s on %s: %v", im.ID, n.ID, err)
			}
			if !rep.Warm {
				t.Fatalf("boot %s on %s not warm", im.ID, n.ID)
			}
		}
	}
	if cl.ComputeRxTotal() != 0 {
		t.Fatalf("warm boots moved %d network bytes", cl.ComputeRxTotal())
	}

	// Replica volumes must agree with the scVolume block for block.
	sc := sq.SCVolume().Stats()
	for _, n := range cl.Compute {
		ccv, _ := sq.CCVolume(n.ID)
		cs := ccv.Stats()
		if cs.UniqueBlocks != sc.UniqueBlocks || cs.Objects != sc.Objects {
			t.Fatalf("replica %s diverged: %+v vs %+v", n.ID, cs, sc)
		}
	}

	// Deregister half the repository; the dead caches disappear from
	// replicas at the next registration-triggered snapshot.
	half := repo.Images[:len(repo.Images)/2]
	for _, im := range half {
		if err := sq.Deregister(im.ID); err != nil {
			t.Fatal(err)
		}
	}
	// Trigger a snapshot by registering an image with a distinct ID
	// (image IDs are distro-derived, so use a new distro name).
	spec2 := corpus.TestSpec()
	spec2.Distros = []corpus.DistroSpec{{Name: "arch", Count: 1, Releases: 1}}
	repo2, err := corpus.New(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: repo2.Images[0], At: t0.Add(1000 * time.Hour)}); err != nil {
		t.Fatal(err)
	}
	ccv, _ := sq.CCVolume("node00")
	for _, im := range half {
		if ccv.HasObject(im.ID) {
			t.Fatalf("deregistered %s still on replica", im.ID)
		}
	}

	// GC after the retention window leaves one snapshot per volume and
	// the volumes still serve warm boots.
	sq.GarbageCollect(t0.Add(5000 * time.Hour))
	for _, im := range repo.Images[len(repo.Images)/2:] {
		rep, err := sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: "node00", Verify: true})
		if err != nil || !rep.Warm {
			t.Fatalf("post-GC boot %s: warm=%v err=%v", im.ID, rep.Warm, err)
		}
	}
}

func TestCacheContentMatchesCorpusThroughVolume(t *testing.T) {
	// Cache bytes written through zvol and read back must equal the
	// corpus's cache stream, for several volume configurations.
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	im := repo.Images[0]
	var want bytes.Buffer
	r := im.CacheReader()
	if _, err := want.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []zvol.Config{
		{BlockSize: block.Size4K, Codec: "gzip6", Dedup: true, MinCompressGain: 0.125},
		{BlockSize: block.Size1K, Codec: "lz4", Dedup: true},
		{BlockSize: block.Size64K, Codec: "lzjb", Dedup: false},
	} {
		v, err := zvol.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.WriteObject(im.ID, im.CacheReader()); err != nil {
			t.Fatal(err)
		}
		got, err := v.ReadObject(im.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("config %+v corrupted cache content", cfg)
		}
	}
}

func TestCrashedNodeRecoversAndConverges(t *testing.T) {
	sq, cl, repo := deploy(t, 3)
	t0 := time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC)

	// Node 2 flaps repeatedly while registrations continue.
	for i, im := range repo.Images[:8] {
		if i%3 == 1 {
			sq.SetOnline("node02", false)
		} else {
			if !sqOnline(sq, "node02") {
				sq.SetOnline("node02", true)
				if _, err := sq.SyncNode(context.Background(), "node02"); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: t0.Add(time.Duration(i) * time.Hour)}); err != nil {
			t.Fatal(err)
		}
	}
	sq.SetOnline("node02", true)
	if _, err := sq.SyncNode(context.Background(), "node02"); err != nil {
		t.Fatal(err)
	}
	// After the final sync, node02 boots everything warm.
	cl.ResetCounters()
	for _, im := range repo.Images[:8] {
		rep, err := sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: "node02", Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Warm {
			t.Fatalf("%s cold on recovered node", im.ID)
		}
	}
	if cl.ComputeRxTotal() != 0 {
		t.Fatal("recovered node still pulled boot bytes")
	}
}

// sqOnline is a test helper peeking at online state via SyncNode-free
// means: SetOnline errors only for unknown nodes, so track via boot.
func sqOnline(sq *core.Squirrel, node string) bool {
	_, err := sq.Boot(context.Background(), core.BootRequest{Image: "definitely-missing-image", Node: node, Verify: false})
	// ErrNotRegistered means the node path was reachable → online.
	return err != nil && err.Error() == "core: image not registered: definitely-missing-image"
}

func TestMetricsAgreeWithVolumeStats(t *testing.T) {
	// The analysis pipeline (metrics) and the storage pipeline (zvol)
	// must agree on dedup fundamentals: unique blocks counted by Analyze
	// equal the DDT entries after storing the same sources, at the same
	// block size with no compression.
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	images := repo.Images[:6]
	bs := block.Size4K

	v, err := zvol.New(zvol.Config{BlockSize: bs, Codec: "null", Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range images {
		if _, err := v.WriteObject(im.ID, im.CacheReader()); err != nil {
			t.Fatal(err)
		}
	}
	st := v.Stats()

	unique := map[block.Hash]bool{}
	var nonzero int64
	for _, im := range images {
		err := im.CacheBlocks(bs, func(_ int64, data []byte, zero bool) error {
			if zero {
				return nil
			}
			nonzero++
			unique[block.HashOf(data)] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if st.UniqueBlocks != int64(len(unique)) {
		t.Fatalf("volume has %d unique blocks, analysis says %d", st.UniqueBlocks, len(unique))
	}
	if st.References != nonzero {
		t.Fatalf("volume has %d references, analysis says %d", st.References, nonzero)
	}
}
