# Tier-1 verification is `make check`: build, vet, plain tests, and the
# race detector over the whole module (the chaos tests are written to be
# race-detector-clean).

GO ?= go

.PHONY: check build vet test race examples bench daemon-smoke fuzz

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-run every example scenario (each asserts its own invariants and
# exits nonzero on failure).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/noderecovery
	$(GO) run ./examples/multitenant
	$(GO) run ./examples/autoscale
	$(GO) run ./examples/chaos
	$(GO) run ./examples/peerboot
	$(GO) run ./examples/resilver

# Race-enabled loopback smoke for daemon mode: squirreld up, one
# squirrelctl -addr run end to end, SIGTERM drain.
daemon-smoke:
	./scripts/daemon_smoke.sh

# Short fuzz burst over the wire-protocol decoders (each target also
# replays the checked-in seed corpus during plain `make test`).
fuzz:
	$(GO) test -fuzz FuzzReadFrame -fuzztime 10s ./internal/wireproto/
	$(GO) test -fuzz FuzzReadHelloReply -fuzztime 5s ./internal/wireproto/
	$(GO) test -fuzz FuzzDecodeError -fuzztime 5s ./internal/wireproto/

# Run the benchmarks (experiment regeneration at the repo root, counter
# and traced-vs-untraced boot-wave benches in internal packages) and
# record machine-readable results, including the synthetic
# BootWaveTracingOverhead delta benchjson derives from the pair.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH.json
	@echo wrote BENCH.json
