// Package repro is a from-scratch Go reproduction of "Squirrel: Scatter
// Hoarding VM Image Contents on IaaS Compute Nodes" (HPDC 2014).
//
// The implementation lives under internal/ (see DESIGN.md for the package
// map); runnable entry points are under cmd/ and examples/; bench_test.go
// in this directory regenerates every table and figure of the paper's
// evaluation.
package repro
