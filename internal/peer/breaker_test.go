package peer

import (
	"testing"
)

// failServes records n consecutive failed serves against node.
func failServes(ix *Index, node string, n int) (tripped bool) {
	for i := 0; i < n; i++ {
		if ix.RecordServe(node, false) {
			tripped = true
		}
	}
	return tripped
}

func TestBreakerTripSkipProbeRecover(t *testing.T) {
	ix := NewIndex()
	ix.SetBreakerPolicy(BreakerPolicy{Threshold: 3, Cooldown: 2})
	ix.Announce("img", "node00")
	ix.Announce("img", "node01")

	if st := ix.BreakerState("node00"); st != "closed" {
		t.Fatalf("fresh breaker is %q, want closed", st)
	}
	// Two failures: still closed (threshold is 3).
	if failServes(ix, "node00", 2) {
		t.Fatal("breaker tripped below threshold")
	}
	// Third consecutive failure trips it.
	if !ix.RecordServe("node00", false) {
		t.Fatal("threshold failure did not trip")
	}
	if st := ix.BreakerState("node00"); st != "open" {
		t.Fatalf("tripped breaker is %q, want open", st)
	}
	if got := ix.Counters().Get("breaker.trip"); got != 1 {
		t.Fatalf("breaker.trip = %d, want 1", got)
	}

	// While open, selection skips node00 and picks the other holder.
	src, release, ok, busy := ix.Acquire("img", 4, nil)
	if !ok || busy || src != "node01" {
		t.Fatalf("open selection: src=%q ok=%v busy=%v, want node01", src, ok, busy)
	}
	release(0)
	if got := ix.Counters().Get("breaker.skip"); got != 1 {
		t.Fatalf("breaker.skip = %d, want 1", got)
	}
	// The selection that exhausts the cooldown becomes the half-open
	// probe: node00 is a candidate again and wins the lexical tiebreak.
	src, release, ok, _ = ix.Acquire("img", 4, nil)
	if !ok || src != "node00" {
		t.Fatalf("probe selection picked %q, want node00", src)
	}
	release(0)
	if st := ix.BreakerState("node00"); st != "half-open" {
		t.Fatalf("post-cooldown breaker is %q, want half-open", st)
	}

	// Half-open: node00 is a candidate again (least-loaded wins as usual).
	// A failed probe reopens; a successful one closes.
	if ix.RecordServe("node00", false) {
		t.Fatal("failed probe counted as a fresh trip")
	}
	if st := ix.BreakerState("node00"); st != "open" {
		t.Fatalf("failed probe left breaker %q, want open", st)
	}
	if got := ix.Counters().Get("breaker.reopen"); got != 1 {
		t.Fatalf("breaker.reopen = %d, want 1", got)
	}
	// Spend the second cooldown, then succeed the probe.
	for i := 0; i < 2; i++ {
		_, release, ok, _ := ix.Acquire("img", 4, nil)
		if !ok {
			t.Fatal("no candidate while node01 is healthy")
		}
		release(0)
	}
	ix.RecordServe("node00", true)
	if st := ix.BreakerState("node00"); st != "closed" {
		t.Fatalf("successful probe left breaker %q, want closed", st)
	}
	if got := ix.Counters().Get("breaker.close"); got != 1 {
		t.Fatalf("breaker.close = %d, want 1", got)
	}
	// The failure streak reset: two fresh failures do not trip.
	if failServes(ix, "node00", 2) {
		t.Fatal("closed breaker remembered pre-recovery failures")
	}
}

func TestBreakerOpenHoldersSkippedNotBusy(t *testing.T) {
	ix := NewIndex()
	ix.SetBreakerPolicy(BreakerPolicy{Threshold: 1, Cooldown: 100})
	ix.Announce("img", "node00")
	ix.RecordServe("node00", false) // trips immediately
	// The only holder is breaker-open: no candidate, and NOT busy — the
	// caller should fall straight back to the PFS, not retry.
	src, _, ok, busy := ix.Acquire("img", 4, nil)
	if ok || busy {
		t.Fatalf("src=%q ok=%v busy=%v, want no candidate and not busy", src, ok, busy)
	}
}

func TestBreakerDisabledByDefault(t *testing.T) {
	ix := NewIndex()
	if failServes(ix, "node00", 100) {
		t.Fatal("disabled breakers tripped")
	}
	if st := ix.BreakerState("node00"); st != "" {
		t.Fatalf("disabled breaker state = %q, want empty", st)
	}
	ix.Announce("img", "node00")
	if _, release, ok, _ := ix.Acquire("img", 4, nil); !ok {
		t.Fatal("holder skipped with breakers disabled")
	} else {
		release(0)
	}
}

// Regression: with every un-excluded holder at capacity, Acquire must
// report busy=true (retry later) rather than a plain miss — and holders
// rejected by the exclusion hook must not masquerade as busy.
func TestAcquireAllBusyUnderExclusion(t *testing.T) {
	ix := NewIndex()
	ix.Announce("img", "node00")
	ix.Announce("img", "node01")
	ix.Announce("img", "node02")

	// Saturate node01 and node02 with one in-flight serve each.
	var releases []func(int64)
	for i := 0; i < 2; i++ {
		src, release, ok, _ := ix.Acquire("img", 1, func(n string) bool { return n == "node00" })
		if !ok {
			t.Fatalf("saturating acquire %d failed", i)
		}
		releases = append(releases, release)
		_ = src
	}
	// node00 excluded (e.g. it is the booting node), the rest at their
	// slot bound: busy, not a miss.
	if _, _, ok, busy := ix.Acquire("img", 1, func(n string) bool { return n == "node00" }); ok || !busy {
		t.Fatalf("ok=%v busy=%v, want busy miss", ok, busy)
	}
	// Same with a breaker-open holder in the mix: still busy=true, the
	// open holder neither serves nor flips the verdict to a plain miss.
	ix.SetBreakerPolicy(BreakerPolicy{Threshold: 1, Cooldown: 100})
	ix.RecordServe("node00", false)
	if _, _, ok, busy := ix.Acquire("img", 1, nil); ok || !busy {
		t.Fatalf("with open breaker: ok=%v busy=%v, want busy miss", ok, busy)
	}
	// Every holder excluded outright: a plain miss, not busy.
	if _, _, ok, busy := ix.Acquire("img", 1, func(string) bool { return true }); ok || busy {
		t.Fatalf("all excluded: ok=%v busy=%v, want plain miss", ok, busy)
	}
	for _, r := range releases {
		r(0)
	}
}
