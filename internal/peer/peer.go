// Package peer implements the content index and source-selection policy
// behind Squirrel's peer block exchange: compute nodes collectively
// hoard VMI cache replicas (§3 of the paper), so a cold-boot miss can be
// served by a neighboring node instead of hammering the parallel file
// system. The design follows Shoal-style publish/lookup indexing: nodes
// announce the cache objects they hold, withdraw them when replicas are
// dropped or nodes go away, and a booting node looks up holders and
// picks a source with a load-aware policy.
//
// The package is deliberately mechanism-only: it tracks who holds what
// and how loaded each holder is. Eligibility policy that depends on
// deployment state (the booting node itself, offline nodes, lagging
// nodes) is passed in by the caller as an exclusion predicate, which
// keeps the index free of core's locking.
//
// All methods are safe for concurrent use.
package peer

import (
	"sort"
	"sync"

	"repro/internal/metrics"
)

// Policy parameterizes the peer exchange on a deployment.
type Policy struct {
	// Enabled gates the boot-time peer-fetch path. The index itself is
	// always maintained (it is cheap, and stats/experiments read it).
	Enabled bool
	// MaxServeSlots bounds concurrent serves per node so one hot replica
	// cannot melt a single peer; a node at capacity is skipped by
	// selection. Zero or negative means DefaultMaxServeSlots.
	MaxServeSlots int
	// MaxAttempts is how many candidate peers one miss tries before
	// falling back to the PFS. Zero or negative means
	// DefaultMaxAttempts.
	MaxAttempts int
	// Hedge enables hedged cold-miss fetches on the boot path: when the
	// primary source draws a slow serve, the fetch is cloned to the
	// next-best holder and the first byte wins. Off by default — the
	// un-hedged ladder is the baseline the hedging bench compares against.
	Hedge bool
	// Breaker configures per-peer circuit breakers. The zero value
	// disables them; DefaultBreakerPolicy() enables the standard circuit.
	Breaker BreakerPolicy
}

// Defaults for Policy's knobs.
const (
	DefaultMaxServeSlots = 4
	DefaultMaxAttempts   = 3
)

// DefaultPolicy returns the enabled peer exchange with default bounds.
func DefaultPolicy() Policy {
	return Policy{Enabled: true, MaxServeSlots: DefaultMaxServeSlots, MaxAttempts: DefaultMaxAttempts}
}

// Normalize fills unset bounds with defaults.
func (p Policy) Normalize() Policy {
	if p.MaxServeSlots <= 0 {
		p.MaxServeSlots = DefaultMaxServeSlots
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	return p
}

// load is the per-node serve-side state.
type load struct {
	active int   // serves in flight (bounded by Policy.MaxServeSlots)
	reads  int64 // completed serves
	bytes  int64 // bytes served
}

// NodeLoad is a snapshot of one node's serve load.
type NodeLoad struct {
	NodeID      string
	Active      int   // serves in flight at snapshot time
	ServedReads int64 // completed serves
	ServedBytes int64 // bytes served over the peer exchange
}

// Index is the cluster-wide content index: cache-object ID → the set of
// compute nodes currently announcing a replica, plus per-node serve
// load. One Index belongs to one deployment.
type Index struct {
	mu      sync.Mutex
	holders map[string]map[string]struct{} // objID → nodeID set
	loads   map[string]*load               // nodeID → serve load

	// Circuit-breaker state, under its own mutex so the selection path
	// can consult it while holding mu (one-way order: mu → bmu).
	bmu      sync.Mutex
	bpol     BreakerPolicy
	breakers map[string]*breaker // nodeID → circuit state

	counters *metrics.CounterSet
	sizes    *metrics.Histogram // successful peer-transfer sizes
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		holders:  make(map[string]map[string]struct{}),
		loads:    make(map[string]*load),
		breakers: make(map[string]*breaker),
		counters: metrics.NewCounterSet(),
		sizes:    metrics.MustHistogram(metrics.ByteBuckets()...),
	}
}

// Counters exposes the exchange accounting: peer.hit, peer.miss,
// peer.fallback, peer.busy, peer.fault, peer.bytes, peer.wasted_bytes,
// peer.crash — what an operator dashboard would scrape.
func (ix *Index) Counters() *metrics.CounterSet {
	if ix == nil {
		return nil
	}
	return ix.counters
}

// SetCounters points the exchange's accounting at a shared counter
// registry (the telemetry layer's "one registry"). Nil-safe: a nil index
// ignores the call; a nil set restores the index's private accounting.
func (ix *Index) SetCounters(c *metrics.CounterSet) {
	if ix == nil {
		return
	}
	ix.mu.Lock()
	ix.bmu.Lock() // breaker paths read counters under bmu alone
	if c == nil {
		c = metrics.NewCounterSet()
	}
	ix.counters = c
	ix.bmu.Unlock()
	ix.mu.Unlock()
}

// TransferSizes is the histogram of successful peer-transfer sizes.
func (ix *Index) TransferSizes() *metrics.Histogram {
	if ix == nil {
		return nil
	}
	return ix.sizes
}

// Announce publishes that node holds a replica of obj.
func (ix *Index) Announce(obj, node string) {
	ix.mu.Lock()
	ix.announceLocked(obj, node)
	ix.mu.Unlock()
}

func (ix *Index) announceLocked(obj, node string) {
	set, ok := ix.holders[obj]
	if !ok {
		set = make(map[string]struct{})
		ix.holders[obj] = set
	}
	set[node] = struct{}{}
}

// Withdraw removes node's announcement for obj (replica dropped).
func (ix *Index) Withdraw(obj, node string) {
	ix.mu.Lock()
	ix.withdrawLocked(obj, node)
	ix.mu.Unlock()
}

func (ix *Index) withdrawLocked(obj, node string) {
	if set, ok := ix.holders[obj]; ok {
		delete(set, node)
		if len(set) == 0 {
			delete(ix.holders, obj)
		}
	}
}

// WithdrawNode removes every announcement by node (crash, offline).
// Serve-load history is kept: a node that comes back re-announces its
// holdings but does not forget what it already served.
func (ix *Index) WithdrawNode(node string) {
	ix.mu.Lock()
	for obj, set := range ix.holders {
		delete(set, node)
		if len(set) == 0 {
			delete(ix.holders, obj)
		}
	}
	ix.mu.Unlock()
}

// WithdrawObject removes obj from the index entirely (deregistration).
func (ix *Index) WithdrawObject(obj string) {
	ix.mu.Lock()
	delete(ix.holders, obj)
	ix.mu.Unlock()
}

// SetHoldings reconciles node's announcements to exactly objs: new
// objects are announced, missing ones withdrawn. This is the
// announcement form used after snapshot application, healing, and
// garbage collection, where the replica's object set is authoritative.
func (ix *Index) SetHoldings(node string, objs []string) {
	want := make(map[string]struct{}, len(objs))
	for _, o := range objs {
		want[o] = struct{}{}
	}
	ix.mu.Lock()
	for obj, set := range ix.holders {
		if _, keep := want[obj]; !keep {
			if _, held := set[node]; held {
				delete(set, node)
				if len(set) == 0 {
					delete(ix.holders, obj)
				}
			}
		}
	}
	for obj := range want {
		ix.announceLocked(obj, node)
	}
	ix.mu.Unlock()
}

// Holders returns the nodes currently announcing obj, sorted.
func (ix *Index) Holders(obj string) []string {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	set := ix.holders[obj]
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Holds reports whether node currently announces obj.
func (ix *Index) Holds(obj, node string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	set, ok := ix.holders[obj]
	if !ok {
		return false
	}
	_, held := set[node]
	return held
}

// AnnouncedBy returns how many objects node currently announces. Zero
// means the node is fully withdrawn from the exchange (down, damaged,
// or simply holding nothing) — the health dump surfaces this.
func (ix *Index) AnnouncedBy(node string) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := 0
	for _, set := range ix.holders {
		if _, held := set[node]; held {
			n++
		}
	}
	return n
}

// Objects returns the number of distinct objects indexed.
func (ix *Index) Objects() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.holders)
}

// Entries returns the total number of (object, node) announcements.
func (ix *Index) Entries() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := 0
	for _, set := range ix.holders {
		n += len(set)
	}
	return n
}

// Loads snapshots per-node serve load for every node that has ever
// served (or is serving), sorted by node ID.
func (ix *Index) Loads() []NodeLoad {
	ix.mu.Lock()
	out := make([]NodeLoad, 0, len(ix.loads))
	for id, l := range ix.loads {
		out = append(out, NodeLoad{NodeID: id, Active: l.active, ServedReads: l.reads, ServedBytes: l.bytes})
	}
	ix.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	return out
}

// Acquire picks the best source for obj and reserves one serve slot on
// it. Candidates are the current holders minus those the caller
// excludes (the booting node, offline/lagging nodes, already-tried
// sources), minus holders whose circuit breaker is open — the breaker
// check composes onto the caller's exclusion predicate — minus nodes at
// maxSlots in-flight serves. "Best" is least-loaded: fewest active
// serves, then fewest served bytes, then lexical node ID — deterministic
// for identical load states.
//
// The returned release function MUST be called exactly once: with the
// bytes actually served on success, or 0 on a failed transfer. ok is
// false when no candidate exists; busy additionally distinguishes
// "holders exist but all are at capacity" from "no eligible holder" —
// excluded and breaker-open holders never count as busy.
func (ix *Index) Acquire(obj string, maxSlots int, exclude func(node string) bool) (src string, release func(served int64), ok, busy bool) {
	skip := ix.composeSkip(exclude)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	cands := make([]string, 0, len(ix.holders[obj]))
	for node := range ix.holders[obj] {
		cands = append(cands, node)
	}
	return ix.acquireLocked(cands, maxSlots, skip)
}

// AcquireFrom is Acquire over an externally supplied candidate set
// instead of the central holder map: the decentralized (gossip) index
// resolves holders through its own bounded-staleness views and hands
// them here, so slot accounting, least-loaded selection, and the
// circuit breakers compose identically whichever index produced the
// candidates. The release contract and the ok/busy semantics match
// Acquire exactly.
func (ix *Index) AcquireFrom(holders []string, maxSlots int, exclude func(node string) bool) (src string, release func(served int64), ok, busy bool) {
	skip := ix.composeSkip(exclude)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.acquireLocked(holders, maxSlots, skip)
}

// composeSkip stacks the breaker check onto the caller's exclusion
// predicate: a caller-excluded holder is skipped before its breaker is
// consulted, so ineligible nodes (offline, already tried) never tick an
// open breaker's cooldown.
func (ix *Index) composeSkip(exclude func(node string) bool) func(node string) bool {
	if !ix.bpolEnabled() {
		return exclude
	}
	return func(node string) bool {
		return (exclude != nil && exclude(node)) || ix.breakerSkip(node)
	}
}

func (ix *Index) acquireLocked(cands []string, maxSlots int, skip func(node string) bool) (src string, release func(served int64), ok, busy bool) {
	if maxSlots <= 0 {
		maxSlots = DefaultMaxServeSlots
	}
	var best *load
	for _, node := range cands {
		if skip != nil && skip(node) {
			continue
		}
		l := ix.loads[node]
		if l == nil {
			l = &load{}
			ix.loads[node] = l
		}
		if l.active >= maxSlots {
			busy = true
			continue
		}
		if best == nil || less(node, l, src, best) {
			src, best = node, l
		}
	}
	if best == nil {
		return "", nil, false, busy
	}
	best.active++
	var once sync.Once
	release = func(served int64) {
		once.Do(func() {
			ix.mu.Lock()
			best.active--
			if served > 0 {
				best.reads++
				best.bytes += served
			}
			ix.mu.Unlock()
			if served > 0 {
				ix.sizes.Observe(served)
			}
		})
	}
	return src, release, true, false
}

// less orders candidate (an, al) before the current best (bn, bl).
func less(an string, al *load, bn string, bl *load) bool {
	if al.active != bl.active {
		return al.active < bl.active
	}
	if al.bytes != bl.bytes {
		return al.bytes < bl.bytes
	}
	return an < bn
}
