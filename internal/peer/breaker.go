package peer

// Per-peer circuit breakers. A holder that keeps failing serves (cut
// behind a partition, crashed mid-serve, persistently flaky fabric) stops
// being selected after Threshold consecutive failures: its breaker opens
// and Acquire skips it via the same exclusion path callers use, so a
// booting node degrades straight to the PFS instead of burning its
// attempt budget on a dead peer. After Cooldown skipped selections the
// breaker moves to half-open and lets one probe through; a successful
// serve closes it, a failed one reopens it for another cooldown.
//
// Cooldown is counted in selection events rather than wall time, so
// chaos runs stay deterministic: the same seeded workload trips, probes,
// and recovers the same breakers every run.

// BreakerPolicy parameterizes per-peer circuit breakers. The zero value
// disables them — existing deployments keep their failover ladder
// unchanged unless a policy is set.
type BreakerPolicy struct {
	// Threshold is how many consecutive failed serves open a peer's
	// breaker. Zero or negative disables breakers entirely.
	Threshold int
	// Cooldown is how many skipped selections an open breaker waits
	// before allowing a half-open probe. Zero or negative means
	// DefaultBreakerCooldown.
	Cooldown int
}

// Defaults for BreakerPolicy's knobs.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 2
)

// DefaultBreakerPolicy returns enabled breakers with default bounds.
func DefaultBreakerPolicy() BreakerPolicy {
	return BreakerPolicy{Threshold: DefaultBreakerThreshold, Cooldown: DefaultBreakerCooldown}
}

// Enabled reports whether the policy turns breakers on.
func (p BreakerPolicy) Enabled() bool { return p.Threshold > 0 }

// cooldown is the normalized cooldown length.
func (p BreakerPolicy) cooldown() int {
	if p.Cooldown <= 0 {
		return DefaultBreakerCooldown
	}
	return p.Cooldown
}

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String renders the state for health dumps.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one node's circuit state.
type breaker struct {
	state breakerState
	fails int // consecutive failed serves while closed
	cool  int // skipped selections remaining before a half-open probe
}

// SetBreakerPolicy installs (or, with a zero policy, removes) per-peer
// circuit breakers, resetting all circuit state. Call before handing the
// index to a deployment.
func (ix *Index) SetBreakerPolicy(p BreakerPolicy) {
	if ix == nil {
		return
	}
	ix.bmu.Lock()
	ix.bpol = p
	ix.breakers = make(map[string]*breaker)
	ix.bmu.Unlock()
}

// BreakerState reports a node's circuit state: "closed", "open", or
// "half-open" — or "" when breakers are disabled. What
// `squirrelctl -health` prints per peer.
func (ix *Index) BreakerState(node string) string {
	if ix == nil {
		return ""
	}
	ix.bmu.Lock()
	defer ix.bmu.Unlock()
	if !ix.bpol.Enabled() {
		return ""
	}
	b := ix.breakers[node]
	if b == nil {
		return breakerClosed.String()
	}
	return b.state.String()
}

// RecordServe feeds one serve outcome into node's breaker and returns
// whether this very outcome tripped it open. Success closes a half-open
// (or open) breaker and clears the failure streak; failure extends the
// streak, trips a closed breaker at Threshold, and sends a failed
// half-open probe straight back to open. No-op while breakers are
// disabled.
func (ix *Index) RecordServe(node string, ok bool) (tripped bool) {
	if ix == nil {
		return false
	}
	ix.bmu.Lock()
	defer ix.bmu.Unlock()
	if !ix.bpol.Enabled() {
		return false
	}
	b := ix.breakers[node]
	if b == nil {
		b = &breaker{}
		ix.breakers[node] = b
	}
	switch {
	case ok:
		if b.state != breakerClosed {
			ix.counters.Add("breaker.close", 1)
		}
		b.state, b.fails = breakerClosed, 0
	case b.state == breakerHalfOpen:
		// Failed probe: straight back to open for another cooldown.
		b.state, b.cool = breakerOpen, ix.bpol.cooldown()
		ix.counters.Add("breaker.reopen", 1)
	default:
		b.fails++
		if b.state == breakerClosed && b.fails >= ix.bpol.Threshold {
			b.state, b.cool, b.fails = breakerOpen, ix.bpol.cooldown(), 0
			ix.counters.Add("breaker.trip", 1)
			return true
		}
	}
	return false
}

// bpolEnabled reads whether breakers are on (selection checks it before
// composing the breaker predicate onto the caller's exclusion hook).
func (ix *Index) bpolEnabled() bool {
	ix.bmu.Lock()
	defer ix.bmu.Unlock()
	return ix.bpol.Enabled()
}

// breakerSkip decides, during source selection, whether node must be
// skipped because its breaker is open. Each skip counts against the
// cooldown; the selection that exhausts it becomes the half-open probe
// and is allowed through. Called with ix.mu held — the lock order is
// one-way (ix.mu → bmu), and bmu sections never touch ix.mu.
func (ix *Index) breakerSkip(node string) bool {
	ix.bmu.Lock()
	defer ix.bmu.Unlock()
	if !ix.bpol.Enabled() {
		return false
	}
	b := ix.breakers[node]
	if b == nil || b.state != breakerOpen {
		return false
	}
	b.cool--
	if b.cool <= 0 {
		b.state = breakerHalfOpen
		ix.counters.Add("breaker.probe", 1)
		return false
	}
	ix.counters.Add("breaker.skip", 1)
	return true
}
