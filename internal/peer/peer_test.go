package peer

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestAnnounceWithdraw(t *testing.T) {
	ix := NewIndex()
	ix.Announce("img-a", "node00")
	ix.Announce("img-a", "node01")
	ix.Announce("img-b", "node00")
	if got := ix.Holders("img-a"); !reflect.DeepEqual(got, []string{"node00", "node01"}) {
		t.Fatalf("holders: %v", got)
	}
	if ix.Objects() != 2 || ix.Entries() != 3 {
		t.Fatalf("objects=%d entries=%d", ix.Objects(), ix.Entries())
	}
	ix.Withdraw("img-a", "node00")
	if ix.Holds("img-a", "node00") || !ix.Holds("img-a", "node01") {
		t.Fatal("withdraw applied to the wrong node")
	}
	ix.Withdraw("img-a", "node01")
	if ix.Objects() != 1 {
		t.Fatalf("empty holder set should drop the object: %d objects", ix.Objects())
	}
	// Withdrawing something never announced is a no-op.
	ix.Withdraw("ghost", "node09")
}

func TestWithdrawNodeAndObject(t *testing.T) {
	ix := NewIndex()
	for _, obj := range []string{"a", "b", "c"} {
		ix.Announce(obj, "node00")
		ix.Announce(obj, "node01")
	}
	ix.WithdrawNode("node00")
	for _, obj := range []string{"a", "b", "c"} {
		if ix.Holds(obj, "node00") {
			t.Fatalf("node00 still holds %s after WithdrawNode", obj)
		}
		if !ix.Holds(obj, "node01") {
			t.Fatalf("node01 lost %s collaterally", obj)
		}
	}
	ix.WithdrawObject("b")
	if ix.Objects() != 2 || ix.Holds("b", "node01") {
		t.Fatal("WithdrawObject left entries behind")
	}
}

func TestSetHoldings(t *testing.T) {
	ix := NewIndex()
	ix.SetHoldings("node00", []string{"a", "b"})
	ix.SetHoldings("node01", []string{"b", "c"})
	ix.SetHoldings("node00", []string{"b", "d"}) // drops a, adds d
	if ix.Holds("a", "node00") {
		t.Fatal("stale announcement survived SetHoldings")
	}
	for _, obj := range []string{"b", "d"} {
		if !ix.Holds(obj, "node00") {
			t.Fatalf("node00 should hold %s", obj)
		}
	}
	if !ix.Holds("c", "node01") || !ix.Holds("b", "node01") {
		t.Fatal("SetHoldings for node00 disturbed node01")
	}
	ix.SetHoldings("node00", nil)
	if ix.Holds("b", "node00") || ix.Holds("d", "node00") {
		t.Fatal("empty SetHoldings should withdraw everything")
	}
}

func TestAcquireSelectionOrder(t *testing.T) {
	ix := NewIndex()
	for _, n := range []string{"node02", "node00", "node01"} {
		ix.Announce("img", n)
	}
	// Equal load everywhere: lexically smallest wins.
	src, rel, ok, busy := ix.Acquire("img", 4, nil)
	if !ok || busy || src != "node00" {
		t.Fatalf("first acquire: src=%s ok=%v busy=%v", src, ok, busy)
	}
	// node00 now has an active serve: next pick is node01.
	src2, rel2, ok, _ := ix.Acquire("img", 4, nil)
	if !ok || src2 != "node01" {
		t.Fatalf("second acquire: %s", src2)
	}
	rel(1000) // node00: 1000 bytes served
	rel2(10)  // node01: 10 bytes served
	// No active serves; node02 has served nothing yet, so it leads.
	src3, rel3, ok, _ := ix.Acquire("img", 4, nil)
	if !ok || src3 != "node02" {
		t.Fatalf("least-bytes acquire: %s", src3)
	}
	rel3(0)
	// With node02 excluded, node01 (10 bytes) beats node00 (1000 bytes).
	src4, rel4, ok, _ := ix.Acquire("img", 4, func(n string) bool { return n == "node02" })
	if !ok || src4 != "node01" {
		t.Fatalf("excluded acquire: %s", src4)
	}
	rel4(0)
}

func TestAcquireSlotBound(t *testing.T) {
	ix := NewIndex()
	ix.Announce("img", "node00")
	var rels []func(int64)
	for i := 0; i < 2; i++ {
		_, rel, ok, busy := ix.Acquire("img", 2, nil)
		if !ok || busy {
			t.Fatalf("acquire %d should succeed", i)
		}
		rels = append(rels, rel)
	}
	if _, _, ok, busy := ix.Acquire("img", 2, nil); ok || !busy {
		t.Fatalf("third acquire should report busy: ok=%v busy=%v", ok, busy)
	}
	rels[0](64)
	if _, rel, ok, _ := ix.Acquire("img", 2, nil); !ok {
		t.Fatal("slot released, acquire should succeed")
	} else {
		rel(0)
	}
	rels[1](0)
	// busy=false when there is simply no holder.
	if _, _, ok, busy := ix.Acquire("ghost", 2, nil); ok || busy {
		t.Fatalf("no-holder acquire: ok=%v busy=%v", ok, busy)
	}
}

func TestReleaseIdempotentAndLoads(t *testing.T) {
	ix := NewIndex()
	ix.Announce("img", "node00")
	_, rel, ok, _ := ix.Acquire("img", 1, nil)
	if !ok {
		t.Fatal("acquire failed")
	}
	rel(128)
	rel(128) // second call must be a no-op
	loads := ix.Loads()
	if len(loads) != 1 {
		t.Fatalf("loads: %v", loads)
	}
	l := loads[0]
	if l.NodeID != "node00" || l.Active != 0 || l.ServedReads != 1 || l.ServedBytes != 128 {
		t.Fatalf("load: %+v", l)
	}
	if ix.TransferSizes().Count() != 1 || ix.TransferSizes().Sum() != 128 {
		t.Fatal("transfer-size histogram not updated exactly once")
	}
}

func TestPolicyNormalize(t *testing.T) {
	p := Policy{Enabled: true}.Normalize()
	if p.MaxServeSlots != DefaultMaxServeSlots || p.MaxAttempts != DefaultMaxAttempts {
		t.Fatalf("normalize: %+v", p)
	}
	q := Policy{MaxServeSlots: 9, MaxAttempts: 1}.Normalize()
	if q.MaxServeSlots != 9 || q.MaxAttempts != 1 {
		t.Fatalf("normalize clobbered set values: %+v", q)
	}
}

func TestIndexConcurrent(t *testing.T) {
	ix := NewIndex()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := fmt.Sprintf("node%02d", w)
			for i := 0; i < 200; i++ {
				obj := fmt.Sprintf("img-%d", i%10)
				ix.Announce(obj, node)
				if src, rel, ok, _ := ix.Acquire(obj, 2, nil); ok {
					_ = src
					rel(64)
				}
				if i%3 == 0 {
					ix.Withdraw(obj, node)
				}
				ix.SetHoldings(node, []string{"img-0", "img-1"})
			}
			ix.Loads()
			ix.Entries()
		}()
	}
	wg.Wait()
	for _, l := range ix.Loads() {
		if l.Active != 0 {
			t.Fatalf("leaked serve slot: %+v", l)
		}
	}
}
