package mapreduce

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrder(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	out, err := Map(in, 8, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map([]int{}, 4, func(x int) (int, error) { return x, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v %v", out, err)
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	in := make([]int, 50)
	_, err := Map(in, 4, func(x int) (int, error) {
		if x == 0 {
			return 0, boom
		}
		return x, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestMapCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	in := make([]int, 1000)
	_, _ = MapCtx(ctx, in, 2, func(ctx context.Context, x int) (int, error) {
		ran.Add(1)
		return x, nil
	})
	// Most work should have been skipped after cancellation (drain path);
	// allow a small margin for in-flight items.
	if ran.Load() > 100 {
		t.Fatalf("cancelled map still ran %d items", ran.Load())
	}
}

func TestMapWorkersClamped(t *testing.T) {
	// workers > len(items) and workers <= 0 must both work.
	for _, w := range []int{-1, 0, 1, 1000} {
		out, err := Map([]int{1, 2, 3}, w, func(x int) (int, error) { return x + 1, nil })
		if err != nil || len(out) != 3 || out[2] != 4 {
			t.Fatalf("workers=%d: %v %v", w, out, err)
		}
	}
}

func TestMapMatchesSequentialQuick(t *testing.T) {
	f := func(in []int64) bool {
		out, err := Map(in, 4, func(x int64) (int64, error) { return x * 3, nil })
		if err != nil {
			return false
		}
		for i := range in {
			if out[i] != in[i]*3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduce(t *testing.T) {
	sum := Reduce([]int{1, 2, 3, 4}, 10, func(a, r int) int { return a + r })
	if sum != 20 {
		t.Fatalf("sum %d", sum)
	}
}
