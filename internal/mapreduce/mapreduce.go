// Package mapreduce is a small generic parallel map-reduce engine over
// goroutines. It fills the role Hadoop plays in the paper's methodology:
// the block-level analyses behind Figs 2, 3, 4, and 12 are embarrassingly
// parallel jobs over (image × block-size) work items.
package mapreduce

import (
	"context"
	"runtime"
	"sync"
)

// Map applies fn to every item using at most workers goroutines and
// returns the results in input order. The first error cancels remaining
// work and is returned. workers <= 0 selects GOMAXPROCS.
func Map[T, R any](items []T, workers int, fn func(T) (R, error)) ([]R, error) {
	return MapCtx(context.Background(), items, workers, func(_ context.Context, t T) (R, error) {
		return fn(t)
	})
}

// MapCtx is Map with context cancellation: fn should return promptly when
// ctx is done.
func MapCtx[T, R any](ctx context.Context, items []T, workers int, fn func(context.Context, T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct{ idx int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // drain
				}
				r, err := fn(ctx, items[j.idx])
				if err != nil {
					fail(err)
					continue
				}
				results[j.idx] = r
			}
		}()
	}
	for i := range items {
		jobs <- job{idx: i}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Reduce folds results sequentially: acc = fn(acc, r) over rs.
func Reduce[R, A any](rs []R, init A, fn func(A, R) A) A {
	acc := init
	for _, r := range rs {
		acc = fn(acc, r)
	}
	return acc
}
