// Package boot simulates VM boots for the four storage configurations the
// paper compares in Fig 11:
//
//	qcow2 - xfs    base VMI stored flat on the local disk (baseline)
//	cold caches    baseline reads plus copy-on-read cache writes
//	warm caches - xfs   boot working set in a compact flat file
//	warm caches - zfs   boot working set in a deduplicated, compressed
//	                    cVolume at a given block size
//
// A boot replays the image's boot trace. Like QCOW2, the CoW layer turns
// every request into whole-cluster fetches from the layer below; the host
// page cache absorbs re-reads and converts cluster over-fetch into the
// "free prefetching" speedup of §4.2.3. The cVolume path additionally
// pays a dedup-table lookup and decompression per record, reads records
// at their post-dedup (scattered) physical addresses, and re-reads whole
// records when the record size exceeds the cluster size — the mechanism
// that makes 128 KB boot slower than 64 KB in Fig 11.
package boot

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/disk"
	"repro/internal/zvol"
)

// Config parameterizes the simulator.
type Config struct {
	Disk        disk.Model
	CPU         disk.CPUModel
	PageCache   int64   // host page cache bytes available to the boot
	ClusterSize int64   // QCOW2 cluster size (default 64 KB)
	CPUBootSec  float64 // fixed non-I/O part of a boot (kernel + services)
}

// DefaultConfig mirrors the paper's environment at corpus scale: the
// scale factor is the ratio of the paper's ≈134 MB mean cache to this
// corpus's mean cache, so simulated boots land in the paper's 10–45 s
// band.
func DefaultConfig(scale float64) Config {
	return Config{
		Disk:        disk.ScaledModel(scale),
		CPU:         disk.ScaledCPU(scale),
		PageCache:   1 << 30,
		ClusterSize: 64 * 1024,
		CPUBootSec:  14,
	}
}

// Result is one simulated boot.
type Result struct {
	Seconds    float64 // total boot time
	IOSec      float64 // disk service time
	CPUSec     float64 // decompression + DDT lookups (excl. CPUBootSec)
	DiskReads  int64
	BytesRead  int64 // physical bytes transferred from disk
	BytesWrite int64 // copy-on-read cache writes (cold boots)
	CacheHits  int64 // page-cache hits
}

// Sim simulates boots under one configuration.
type Sim struct {
	cfg Config
}

// New returns a simulator. The zero ClusterSize defaults to 64 KB.
func New(cfg Config) *Sim {
	if cfg.ClusterSize == 0 {
		cfg.ClusterSize = 64 * 1024
	}
	return &Sim{cfg: cfg}
}

// request is one cluster-granular fetch in some address space.
type request struct{ off, n int64 }

// clusterRequests rounds an extent to whole clusters, clipped to size.
func clusterRequests(off, n, cluster, size int64) []request {
	var out []request
	end := off + n
	if end > size {
		end = size
	}
	for c := off / cluster; c*cluster < end; c++ {
		s := c * cluster
		l := cluster
		if s+l > size {
			l = size - s
		}
		out = append(out, request{off: s, n: l})
	}
	return out
}

// BootBaselineLocal boots from the base VMI stored flat on the local
// disk ("qcow2 - xfs"): trace reads round to clusters in image space.
func (s *Sim) BootBaselineLocal(im *corpus.Image) Result {
	return s.bootFlat(im, identityMap{size: im.RawSize()}, false)
}

// BootColdCacheLocal is BootBaselineLocal plus copy-on-read: every
// cluster fetched from the base is also written sequentially to the
// nascent cache file ("cold caches - xfs").
func (s *Sim) BootColdCacheLocal(im *corpus.Image) Result {
	return s.bootFlat(im, identityMap{size: im.RawSize()}, true)
}

// BootWarmCacheXFS boots from a warm cache stored as a compact flat file
// on the local file system ("warm caches - xfs").
func (s *Sim) BootWarmCacheXFS(im *corpus.Image) Result {
	return s.bootFlat(im, newExtentMap(im), false)
}

// offsetMap translates image-space offsets into the address space of the
// file actually stored on disk.
type offsetMap interface {
	// translate maps an image-space extent to stored-space extents.
	translate(off, n int64) []request
	// size is the stored file's length.
	size2() int64
}

type identityMap struct{ size int64 }

func (m identityMap) translate(off, n int64) []request { return []request{{off, n}} }
func (m identityMap) size2() int64                     { return m.size }

// extentMap maps image offsets to the compact cache file layout (extents
// sorted by image offset, concatenated).
type extentMap struct {
	exts  []corpus.Extent // sorted by Off
	bases []int64         // stored-space start of each extent
	total int64
}

func newExtentMap(im *corpus.Image) *extentMap {
	sorted := im.CacheExtentsSorted()
	m := &extentMap{}
	for _, e := range sorted {
		m.exts = append(m.exts, corpus.Extent{Off: e.Off, Len: e.Len})
		m.bases = append(m.bases, m.total)
		m.total += e.Len
	}
	return m
}

func (m *extentMap) size2() int64 { return m.total }

func (m *extentMap) translate(off, n int64) []request {
	var out []request
	for i, e := range m.exts {
		if e.Off+e.Len <= off || e.Off >= off+n {
			continue
		}
		lo := off
		if e.Off > lo {
			lo = e.Off
		}
		hi := off + n
		if e.Off+e.Len < hi {
			hi = e.Off + e.Len
		}
		out = append(out, request{off: m.bases[i] + (lo - e.Off), n: hi - lo})
	}
	return out
}

// bootFlat replays the trace against a flat file on the local disk.
func (s *Sim) bootFlat(im *corpus.Image, m offsetMap, copyOnRead bool) Result {
	d := disk.New(s.cfg.Disk)
	pc := disk.NewPageCache(s.cfg.PageCache)
	var res Result
	const dev = 1
	for _, e := range im.BootTrace() {
		for _, tr := range m.translate(e.Off, e.Len) {
			for _, rq := range clusterRequests(tr.off, tr.n, s.cfg.ClusterSize, m.size2()) {
				misses := pc.Access(dev, rq.off, rq.n)
				for _, ms := range misses {
					res.IOSec += d.Read(ms.Off, ms.Len)
					if copyOnRead {
						// Copy-on-read cache writes go through the page
						// cache and are flushed by writeback: they cost
						// transfer bandwidth but no synchronous seeks
						// (this is why the paper found CoR competitive
						// with plain CoW in [34]).
						res.IOSec += float64(ms.Len) / s.cfg.Disk.WriteBps
						res.BytesWrite += ms.Len
					}
				}
			}
		}
	}
	return s.finish(res, d, pc)
}

// BootWarmCacheZVol boots from a warm cache stored in a cVolume
// ("warm caches - zfs"). The cache must exist as object objName in vol.
func (s *Sim) BootWarmCacheZVol(im *corpus.Image, vol *zvol.Volume, objName string) (Result, error) {
	infos, err := vol.BlockInfos(objName)
	if err != nil {
		return Result{}, fmt.Errorf("boot: %w", err)
	}
	bs := int64(vol.Config().BlockSize)
	codec := vol.Config().Codec
	if codec == "" {
		codec = "null"
	}
	ddtEntries := vol.DDTStats().Entries
	m := newExtentMap(im)

	d := disk.New(s.cfg.Disk)
	pc := disk.NewPageCache(s.cfg.PageCache)
	var res Result
	const dev = 2
	for _, e := range im.BootTrace() {
		for _, tr := range m.translate(e.Off, e.Len) {
			for _, rq := range clusterRequests(tr.off, tr.n, s.cfg.ClusterSize, m.size2()) {
				misses := pc.Access(dev, rq.off, rq.n)
				for _, ms := range misses {
					// Read every record overlapping the missed range:
					// ZFS fetches and decompresses whole records even
					// for partial reads.
					first := ms.Off / bs
					last := (ms.Off + ms.Len - 1) / bs
					for b := first; b <= last && b < int64(len(infos)); b++ {
						bi := infos[b]
						if bi.Zero {
							continue
						}
						res.CPUSec += s.cfg.CPU.DDTLookupSec(ddtEntries)
						res.IOSec += d.Read(int64(bi.Addr), int64(bi.PhysLen))
						if bi.Compressed {
							res.CPUSec += s.cfg.CPU.DecompressSec(codec, int64(bi.LogLen))
						}
						res.CPUSec += s.cfg.CPU.ChecksumSecPerByte * float64(bi.PhysLen)
					}
				}
			}
		}
	}
	return s.finish(res, d, pc), nil
}

// finish folds counters and the fixed CPU boot cost into the result.
func (s *Sim) finish(res Result, d *disk.Disk, pc *disk.PageCache) Result {
	res.DiskReads = d.Reads
	res.BytesRead = d.BytesRead
	res.CacheHits = pc.Hits
	res.Seconds = s.cfg.CPUBootSec + res.IOSec + res.CPUSec
	return res
}

// Average runs boot for each image through fn and averages the times —
// Fig 11 plots the repository-wide average boot time.
func Average(images []*corpus.Image, fn func(*corpus.Image) (Result, error)) (float64, error) {
	if len(images) == 0 {
		return 0, fmt.Errorf("boot: no images")
	}
	var sum float64
	for _, im := range images {
		r, err := fn(im)
		if err != nil {
			return 0, err
		}
		sum += r.Seconds
	}
	return sum / float64(len(images)), nil
}
