package boot

import (
	"testing"

	"repro/internal/block"
	"repro/internal/corpus"
	"repro/internal/zvol"
)

// bootCorpus is a small corpus with caches big enough to make I/O costs
// visible against the fixed CPU boot time.
func bootCorpus(t testing.TB) *corpus.Repository {
	t.Helper()
	spec := corpus.TestSpec()
	spec.Distros = []corpus.DistroSpec{{Name: "ubuntu", Count: 6, Releases: 2}}
	spec.ImageNonzero = 2 << 20
	spec.CacheFrac = 0.12
	repo, err := corpus.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

// ccVolume builds a volume holding every cache of the repo at the given
// block size, like a warmed ccVolume.
func ccVolume(t testing.TB, repo *corpus.Repository, bs block.Size) *zvol.Volume {
	t.Helper()
	cfg := zvol.DefaultConfig()
	cfg.BlockSize = bs
	v, err := zvol.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range repo.Images {
		if _, err := v.WriteObject(im.ID, im.CacheReader()); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func simFor(repo *corpus.Repository) *Sim {
	var cache int64
	for _, im := range repo.Images {
		cache += im.CacheSize()
	}
	mean := float64(cache) / float64(len(repo.Images))
	return New(DefaultConfig(134e6 / mean))
}

func TestBootTimesOrdering(t *testing.T) {
	repo := bootCorpus(t)
	s := simFor(repo)
	vol := ccVolume(t, repo, block.Size64K)

	im := repo.Images[0]
	base := s.BootBaselineLocal(im)
	cold := s.BootColdCacheLocal(im)
	warmX := s.BootWarmCacheXFS(im)
	warmZ, err := s.BootWarmCacheZVol(im, vol, im.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 11 ordering at 64 KB: warm-xfs fastest, cold slowest, warm-zfs
	// between warm-xfs and baseline.
	if !(warmX.Seconds < base.Seconds) {
		t.Errorf("warm-xfs (%.1fs) should beat baseline (%.1fs)", warmX.Seconds, base.Seconds)
	}
	if !(cold.Seconds > base.Seconds) {
		t.Errorf("cold (%.1fs) should exceed baseline (%.1fs)", cold.Seconds, base.Seconds)
	}
	if !(warmZ.Seconds < base.Seconds) {
		t.Errorf("warm-zfs 64K (%.1fs) should beat baseline (%.1fs)", warmZ.Seconds, base.Seconds)
	}
	if !(warmZ.Seconds >= warmX.Seconds) {
		t.Errorf("warm-zfs (%.1fs) should not beat warm-xfs (%.1fs)", warmZ.Seconds, warmX.Seconds)
	}
	// All in the paper's plausible band.
	for n, r := range map[string]Result{"base": base, "cold": cold, "warmX": warmX, "warmZ": warmZ} {
		if r.Seconds < 10 || r.Seconds > 60 {
			t.Errorf("%s boot %.1fs outside the plausible band", n, r.Seconds)
		}
	}
}

func TestZVolBlockSizeUShape(t *testing.T) {
	// Fig 11: boot time explodes at small block sizes and ticks up again
	// at 128 KB (cluster 64 KB < record 128 KB ⇒ records read twice).
	repo := bootCorpus(t)
	s := simFor(repo)
	times := map[block.Size]float64{}
	for _, bs := range []block.Size{block.Size4K, block.Size64K, block.Size128K} {
		vol := ccVolume(t, repo, bs)
		avg, err := Average(repo.Images, func(im *corpus.Image) (Result, error) {
			return s.BootWarmCacheZVol(im, vol, im.ID)
		})
		if err != nil {
			t.Fatal(err)
		}
		times[bs] = avg
	}
	if !(times[block.Size4K] > times[block.Size64K]) {
		t.Errorf("4K (%.1fs) should be slower than 64K (%.1fs)", times[block.Size4K], times[block.Size64K])
	}
	if !(times[block.Size128K] > times[block.Size64K]) {
		t.Errorf("128K (%.1fs) should be slower than 64K (%.1fs) — QCOW2 cluster effect",
			times[block.Size128K], times[block.Size64K])
	}
}

func TestWarmBootReadsOnlyCacheBytes(t *testing.T) {
	repo := bootCorpus(t)
	s := simFor(repo)
	im := repo.Images[0]
	warm := s.BootWarmCacheXFS(im)
	// The compact cache file is cluster-rounded, so reads may exceed the
	// cache size slightly, but never by more than one cluster per extent.
	slack := int64(len(im.BootTrace())+1) * s.cfg.ClusterSize
	if warm.BytesRead > im.CacheSize()+slack {
		t.Fatalf("warm boot read %d bytes for a %d-byte cache", warm.BytesRead, im.CacheSize())
	}
	if warm.BytesRead == 0 {
		t.Fatal("warm boot read nothing")
	}
}

func TestColdBootWritesCache(t *testing.T) {
	repo := bootCorpus(t)
	s := simFor(repo)
	im := repo.Images[0]
	cold := s.BootColdCacheLocal(im)
	if cold.BytesWrite == 0 {
		t.Fatal("cold boot must write the cache")
	}
	base := s.BootBaselineLocal(im)
	if base.BytesWrite != 0 {
		t.Fatal("baseline boot must not write")
	}
}

func TestPageCachePrefetchEffect(t *testing.T) {
	// With sub-cluster trace reads, cluster rounding must produce page
	// cache hits ("free prefetching").
	repo := bootCorpus(t)
	s := simFor(repo)
	warm := s.BootWarmCacheXFS(repo.Images[0])
	if warm.CacheHits == 0 {
		t.Fatal("no page-cache hits: prefetch effect absent")
	}
}

func TestBootMissingObject(t *testing.T) {
	repo := bootCorpus(t)
	s := simFor(repo)
	vol := ccVolume(t, repo, block.Size64K)
	if _, err := s.BootWarmCacheZVol(repo.Images[0], vol, "nope"); err == nil {
		t.Fatal("missing cache object must error")
	}
}

func TestAverage(t *testing.T) {
	repo := bootCorpus(t)
	s := simFor(repo)
	avg, err := Average(repo.Images, func(im *corpus.Image) (Result, error) {
		return s.BootBaselineLocal(im), nil
	})
	if err != nil || avg <= 0 {
		t.Fatalf("avg=%v err=%v", avg, err)
	}
	if _, err := Average(nil, nil); err == nil {
		t.Fatal("empty image set must error")
	}
}

func TestClusterRequests(t *testing.T) {
	rs := clusterRequests(100, 200, 64, 1000)
	// [100,300) covers clusters 1..4 → requests at 64,128,192,256.
	if len(rs) != 4 || rs[0].off != 64 || rs[3].off != 256 {
		t.Fatalf("requests %v", rs)
	}
	// Clipped at size.
	rs = clusterRequests(960, 100, 64, 1000)
	last := rs[len(rs)-1]
	if last.off+last.n != 1000 {
		t.Fatalf("clip failed: %v", rs)
	}
}
