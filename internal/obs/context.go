package obs

import "context"

// spanKey is the context key carrying the ambient parent span. Context
// propagation is how cross-layer parentage works without threading
// *Span through every signature: the daemon puts its dispatch span in
// the request context, and core operations start under whatever span
// the context carries (or as roots when it carries none).
type spanKey struct{}

// ContextWithSpan returns ctx carrying sp as the ambient parent span
// for operations started under it. A nil span is carried too — it
// parents nothing, which is exactly the untraced behavior.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the ambient parent span carried by ctx, or
// nil when the context carries none.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
