package obs

import (
	"sort"
	"sync/atomic"
)

// ring is the bounded lock-free buffer of completed root spans, in the
// scatter-hoarding spirit: appenders never coordinate, they just claim
// the next slot with one atomic increment and overwrite whatever
// operation aged out. Snapshot readers see a consistent-enough view —
// each slot holds a fully completed (immutable) span tree or nil.
type ring struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64
}

func newRing(size int) *ring {
	return &ring{slots: make([]atomic.Pointer[Span], size)}
}

// add appends a completed root span, claiming a slot with one atomic
// increment. The claimed sequence number is stamped on the span so
// snapshots can order survivors oldest-first after wraparound.
func (r *ring) add(s *Span) {
	i := r.next.Add(1) - 1
	s.seq = i
	r.slots[i%uint64(len(r.slots))].Store(s)
}

// appended reports how many root spans were ever added (not how many
// the ring still holds).
func (r *ring) appended() uint64 {
	return r.next.Load()
}

// snapshot collects the spans currently held, oldest first.
func (r *ring) snapshot() []*Span {
	out := make([]*Span, 0, len(r.slots))
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}
