package obs

import (
	"sort"
	"sync"
)

// ring is the bounded buffer of completed root spans, in the
// scatter-hoarding spirit: appenders claim the next slot and overwrite
// whatever operation aged out. The evicted tree is recycled into the
// span pool — unless a snapshot reader was handed it (the exposed
// flag), in which case it is left to the garbage collector.
//
// The RWMutex replaces the earlier lock-free atomic-slot scheme: slot
// claims must now be mutually exclusive with snapshot's exposure
// marking, or an evictor could recycle a tree a reader is walking. The
// write section is a few stores; root finishes are rare next to the
// striped aggregation the children take.
type ring struct {
	mu    sync.RWMutex
	slots []*Span
	next  uint64
}

func newRing(size int) *ring {
	return &ring{slots: make([]*Span, size)}
}

// add appends a completed root span, claiming the next slot. The
// claimed sequence number is stamped on the span so snapshots can order
// survivors oldest-first after wraparound. The evicted occupant, if
// any, is recycled when no snapshot ever exposed it: snapshot marks
// exposure under the read lock, so after add's write section the flag
// is stable — a later snapshot can no longer reach the evicted span.
func (r *ring) add(s *Span) {
	r.mu.Lock()
	s.seq = r.next
	r.next++
	i := int(s.seq % uint64(len(r.slots)))
	old := r.slots[i]
	r.slots[i] = s
	r.mu.Unlock()
	if old != nil && !old.exposed.Load() {
		recycleTree(old)
	}
}

// appended reports how many root spans were ever added (not how many
// the ring still holds).
func (r *ring) appended() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.next
}

// snapshot collects the spans currently held, oldest first, pinning
// each against pool recycling before releasing the lock.
func (r *ring) snapshot() []*Span {
	r.mu.RLock()
	out := make([]*Span, 0, len(r.slots))
	for _, s := range r.slots {
		if s != nil {
			s.exposed.Store(true)
			out = append(out, s)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}
