package obs

import (
	"strings"
	"time"
)

// TreeDump is the wire-serializable form of a span tree. The daemon
// ships dumps of its dispatch trees to the control client, which grafts
// them under its own RPC spans by span ID and renders one tree spanning
// both processes. All times are wall-clock Unix nanoseconds; EndNs is 0
// for a span still in flight when dumped.
type TreeDump struct {
	ID     uint64           `json:"id"`
	Kind   string           `json:"kind"`
	Node   string           `json:"node,omitempty"`
	Image  string           `json:"image,omitempty"`
	Start  int64            `json:"start_ns"`
	End    int64            `json:"end_ns,omitempty"`
	Bytes  int64            `json:"bytes,omitempty"`
	SimSec float64          `json:"sim_sec,omitempty"`
	Err    string           `json:"err,omitempty"`
	Annots map[string]int64 `json:"annots,omitempty"`

	// RemoteTrace/RemoteParent carry the wire trace context stamped on
	// a dispatch root: the originating client's trace ID and the client
	// span the tree belongs under. Zero on locally rooted spans and on
	// children.
	RemoteTrace  uint64 `json:"remote_trace,omitempty"`
	RemoteParent uint64 `json:"remote_parent,omitempty"`

	Children []*TreeDump `json:"children,omitempty"`
}

// DumpTree serializes a span tree. Nil-safe: a nil span dumps to nil.
func DumpTree(s *Span) *TreeDump {
	if s == nil {
		return nil
	}
	d := &TreeDump{
		ID:     s.SpanID(),
		Kind:   s.Kind(),
		Node:   s.Node(),
		Image:  s.Image(),
		Bytes:  s.Bytes(),
		SimSec: s.SimSec(),
		Err:    s.Err(),
	}
	d.RemoteTrace, d.RemoteParent = s.RemoteTrace()
	if an := s.Annotations(); len(an) > 0 {
		d.Annots = an
	}
	s.mu.Lock()
	d.Start = s.start.UnixNano()
	if !s.end.IsZero() {
		d.End = s.end.UnixNano()
	}
	s.mu.Unlock()
	for _, c := range s.Children() {
		d.Children = append(d.Children, DumpTree(c))
	}
	return d
}

// RemoteDumps collects dumps of every ring tree whose root was started
// by StartRemoteOp with the given trace ID, oldest first — the
// daemon-side halves of one client's trace.
func (t *Telemetry) RemoteDumps(traceID uint64) []*TreeDump {
	if t == nil || traceID == 0 {
		return nil
	}
	var out []*TreeDump
	for _, s := range t.Roots() {
		if rt, _ := s.RemoteTrace(); rt == traceID {
			out = append(out, DumpTree(s))
		}
	}
	return out
}

// Wall returns the dump's wall-clock duration (0 while in flight).
func (d *TreeDump) Wall() time.Duration {
	if d == nil || d.End == 0 {
		return 0
	}
	return time.Duration(d.End - d.Start)
}

// Find returns the first dump in d's tree (depth-first, creation
// order) satisfying pred, or nil.
func (d *TreeDump) Find(pred func(*TreeDump) bool) *TreeDump {
	if d == nil {
		return nil
	}
	if pred(d) {
		return d
	}
	for _, c := range d.Children {
		if f := c.Find(pred); f != nil {
			return f
		}
	}
	return nil
}

// FindKind returns the first dump of the given op kind in d's tree.
func (d *TreeDump) FindKind(kind string) *TreeDump {
	return d.Find(func(x *TreeDump) bool { return x.Kind == kind })
}

// Graft attaches remote to the dump in d's tree whose span ID matches
// remote's RemoteParent — the client span that issued the request the
// remote tree served. Reports whether a parent was found; an unmatched
// tree is left unattached so the caller can surface it separately.
func (d *TreeDump) Graft(remote *TreeDump) bool {
	if d == nil || remote == nil {
		return false
	}
	parent := d.Find(func(x *TreeDump) bool { return x.ID == remote.RemoteParent })
	if parent == nil {
		return false
	}
	parent.Children = append(parent.Children, remote)
	return true
}

// RenderDump renders a dump tree in the same indented one-span-per-line
// format as RenderTree, so wire-merged traces read exactly like local
// ones.
func RenderDump(d *TreeDump) string {
	var b strings.Builder
	renderDumpInto(&b, d, 0)
	return b.String()
}

func renderDumpInto(b *strings.Builder, d *TreeDump, depth int) {
	if d == nil {
		return
	}
	renderLine(b, depth, d.Kind, d.Node, d.Image, d.Wall(), d.SimSec, d.Bytes, d.Annots, d.Err)
	for _, c := range d.Children {
		renderDumpInto(b, c, depth+1)
	}
}
