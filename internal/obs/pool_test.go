package obs

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

// TestSnapshotNeverHalfMerged hammers Snapshot while spans finish
// concurrently and checks the striping invariant: a span's whole
// contribution (count, bytes, node rollup) folds into one shard under
// one lock, so no snapshot may ever observe a span half-applied. Every
// span below contributes exactly 1 byte, so in every coherent view
// bytes == count, per op kind and per node. Run under -race this also
// exercises the pool recycle / snapshot exposure handshake.
func TestSnapshotNeverHalfMerged(t *testing.T) {
	tel := New(64)
	tr := tel.Tracer()

	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := []string{"node00", "node01", "node02"}[w%3]
			for i := 0; i < perWorker; i++ {
				sp := tr.StartOp("boot", node, "im0")
				sp.AddBytes(1)
				c := sp.Child("peerFetch", node, "im0")
				c.AddBytes(1)
				c.Finish()
				sp.Finish()
			}
		}(w)
	}

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := tel.Snapshot()
				for _, op := range snap.Ops {
					if op.Bytes != op.Count {
						t.Errorf("half-merged op row %s: bytes=%d count=%d", op.Kind, op.Bytes, op.Count)
					}
				}
				for _, n := range snap.Nodes {
					if n.Bytes != n.Count {
						t.Errorf("half-merged node row %s: bytes=%d count=%d", n.Node, n.Bytes, n.Count)
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	snap := tel.Snapshot()
	boot, ok := snap.Op("boot")
	if !ok || boot.Count != workers*perWorker {
		t.Fatalf("final boot count = %+v, want %d", boot, workers*perWorker)
	}
	fetch, _ := snap.Op("peerFetch")
	if fetch.Count != workers*perWorker {
		t.Fatalf("final peerFetch count = %d, want %d", fetch.Count, workers*perWorker)
	}
}

// TestExposedTreeSurvivesWraparound pins the pool-safety contract: a
// tree handed out by Roots is never recycled, even after the ring
// evicts it. The evicted-but-exposed spans must keep their values while
// new spans (drawn from the pool) churn past them.
func TestExposedTreeSurvivesWraparound(t *testing.T) {
	tel := New(4)
	tr := tel.Tracer()

	for i := 0; i < 4; i++ {
		sp := tr.StartOp("boot", "node00", "im0")
		sp.AddBytes(int64(100 + i))
		sp.Child("lane", "node00", "im0").Finish()
		sp.Finish()
	}
	pinned := tel.Roots()
	if len(pinned) != 4 {
		t.Fatalf("pinned %d roots, want 4", len(pinned))
	}

	// Wrap the ring several times over; evicted unexposed spans recycle
	// through the pool, but the pinned ones may not.
	for i := 0; i < 40; i++ {
		sp := tr.StartOp("scrub", "node01", "im1")
		sp.Child("lane", "node01", "im1").Finish()
		sp.Finish()
	}

	for i, sp := range pinned {
		if sp.Kind() != "boot" || sp.Node() != "node00" {
			t.Fatalf("pinned root %d mutated: kind=%q node=%q", i, sp.Kind(), sp.Node())
		}
		if got := sp.Bytes(); got != int64(100+i) {
			t.Fatalf("pinned root %d bytes = %d, want %d", i, got, 100+i)
		}
		kids := sp.Children()
		if len(kids) != 1 || kids[0].Kind() != "lane" {
			t.Fatalf("pinned root %d children mutated: %+v", i, kids)
		}
	}
	// The current ring must only hold the new generation.
	for _, sp := range tel.RootsOf("boot") {
		t.Fatalf("boot root still in ring after wraparound: %v", sp.Kind())
	}
}

// TestHeadSamplingDeterministic checks the SampleEvery contract: with
// SampleEvery=N exactly one in N StartOp calls yields a live span, the
// kept subset depends only on (seed, call order), and different seeds
// keep different residue classes. Remote continuations bypass sampling.
func TestHeadSamplingDeterministic(t *testing.T) {
	keptWith := func(seed int64) []int {
		tel := NewWith(Config{RingSize: 16, SampleEvery: 4, SampleSeed: seed})
		var kept []int
		for i := 0; i < 100; i++ {
			if sp := tel.Tracer().StartOp("boot", "", ""); sp != nil {
				sp.Finish()
				kept = append(kept, i)
			}
		}
		return kept
	}

	a := keptWith(0)
	if len(a) != 25 {
		t.Fatalf("SampleEvery=4 kept %d of 100, want 25", len(a))
	}
	b := keptWith(0)
	if len(b) != 25 {
		t.Fatalf("second run kept %d, want 25", len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling not deterministic: run1[%d]=%d run2[%d]=%d", i, a[i], i, b[i])
		}
	}
	c := keptWith(1)
	if len(c) != 25 {
		t.Fatalf("seeded run kept %d, want 25", len(c))
	}
	if a[0] == c[0] {
		t.Fatalf("seeds 0 and 1 kept the same residue class (first index %d)", a[0])
	}

	// Aggregates describe the sampled subset only.
	tel := NewWith(Config{RingSize: 16, SampleEvery: 4})
	for i := 0; i < 100; i++ {
		if sp := tel.Tracer().StartOp("boot", "", ""); sp != nil {
			sp.Finish()
		}
	}
	if op, _ := tel.Snapshot().Op("boot"); op.Count != 25 {
		t.Fatalf("sampled aggregate count = %d, want 25", op.Count)
	}

	// A remote continuation is never dropped: the originating client
	// already decided this trace is kept.
	for i := 0; i < 20; i++ {
		sp := tel.Tracer().StartRemoteOp("rpc.dispatch", "", "", 77, uint64(i+1))
		if sp == nil {
			t.Fatalf("StartRemoteOp sampled away at call %d", i)
		}
		sp.Finish()
	}
	if got := len(tel.RemoteDumps(77)); got != 16 { // ring keeps the last 16
		t.Fatalf("RemoteDumps returned %d trees, want ring size 16", got)
	}
}

// TestDumpGraftRender drives the wire-trace merge path in-process: a
// "client" session tree and a "daemon" dispatch tree built from the
// session's wire context graft into one tree whose rendering matches
// the native renderer line format.
func TestDumpGraftRender(t *testing.T) {
	client := New(8)
	daemon := New(8)

	session := client.Tracer().StartOp(OpSession, "", "")
	rpc := session.Child(OpRPC, "", "")
	rpc.Annotate("op.boot", 1)

	// Daemon side: dispatch continues the client's (traceID, spanID).
	disp := daemon.Tracer().StartRemoteOp(OpDispatch, "", "", session.SpanID(), rpc.SpanID())
	boot := disp.Child("boot", "node03", "im0")
	boot.AddBytes(4096)
	boot.Child("lane", "node03", "im0").Finish()
	boot.Finish()
	disp.Finish()

	rpc.Finish()
	session.Finish()

	remotes := daemon.RemoteDumps(session.SpanID())
	if len(remotes) != 1 {
		t.Fatalf("RemoteDumps returned %d trees, want 1", len(remotes))
	}
	dump := DumpTree(session)
	if !dump.Graft(remotes[0]) {
		t.Fatal("Graft failed to find the client rpc span")
	}
	// Unmatched trees must stay unattached.
	stray := &TreeDump{Kind: OpDispatch, RemoteParent: 0xBAD}
	if dump.Graft(stray) {
		t.Fatal("Graft attached a tree with an unknown parent")
	}

	if d := dump.FindKind("boot"); d == nil || d.Bytes != 4096 || d.Node != "node03" {
		t.Fatalf("grafted boot not reachable: %+v", d)
	}
	rendered := RenderDump(dump)
	for _, line := range []string{OpSession, OpRPC, OpDispatch, "boot", "lane"} {
		if !strings.Contains(rendered, line) {
			t.Fatalf("merged render missing %q:\n%s", line, rendered)
		}
	}
	// Depth check: boot sits under dispatch under rpc under session.
	var depths []int
	for _, ln := range strings.Split(strings.TrimRight(rendered, "\n"), "\n") {
		depths = append(depths, (len(ln)-len(strings.TrimLeft(ln, " ")))/2)
	}
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if i >= len(depths) || depths[i] != want[i] {
			t.Fatalf("merged tree depths = %v, want %v:\n%s", depths, want, rendered)
		}
	}

	// A dump of a purely local tree renders identically to the span
	// renderer — wire-merged traces read exactly like local ones. The
	// wall token is normalized: the dump measures via Unix nanos, the
	// span via the monotonic clock, and they may differ by nanoseconds.
	wallTok := regexp.MustCompile(`wall=\S+`)
	dr := wallTok.ReplaceAllString(RenderDump(DumpTree(session)), "wall=X")
	tr := wallTok.ReplaceAllString(RenderTree(session), "wall=X")
	if dr != tr {
		t.Fatalf("RenderDump diverges from RenderTree:\n%q\n%q", dr, tr)
	}
}
