package obs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var tel *Telemetry
	var tr *Tracer
	var sp *Span

	// Every method on every nil receiver must no-op without panicking.
	tr = tel.Tracer()
	if tr != nil {
		t.Fatal("nil telemetry must yield nil tracer")
	}
	if tel.Counters() != nil {
		t.Fatal("nil telemetry must yield nil counters")
	}
	sp = tr.StartOp(OpBoot, "node00", "img")
	if sp != nil {
		t.Fatal("nil tracer must yield nil span")
	}
	if c := tr.Op(nil, OpScrub, "node00", ""); c != nil {
		t.Fatal("nil tracer Op must yield nil span")
	}
	child := sp.Child(OpPeerFetch, "", "")
	if child != nil {
		t.Fatal("nil span must yield nil child")
	}
	sp.SetNode("x")
	sp.AddBytes(1)
	sp.AddSim(1)
	sp.Annotate("k", 1)
	sp.Fail(errors.New("boom"))
	sp.Finish()
	if sp.Kind() != "" || sp.Node() != "" || sp.Image() != "" || sp.Err() != "" {
		t.Fatal("nil span accessors must be zero")
	}
	if sp.Bytes() != 0 || sp.SimSec() != 0 || sp.Wall() != 0 || sp.Annotation("k") != 0 {
		t.Fatal("nil span accessors must be zero")
	}
	if len(sp.Children()) != 0 || len(sp.Annotations()) != 0 {
		t.Fatal("nil span collections must be empty")
	}
	if roots := tel.Roots(); len(roots) != 0 {
		t.Fatal("nil telemetry must have no roots")
	}
	if tel.SlowestRoot(OpBoot) != nil {
		t.Fatal("nil telemetry SlowestRoot must be nil")
	}
	snap := tel.Snapshot()
	if len(snap.Ops) != 0 || snap.SpansRecorded != 0 {
		t.Fatal("nil telemetry snapshot must be empty")
	}
	if snap.JSON() == "" || snap.Prometheus() == "" {
		t.Fatal("empty snapshot must still render")
	}
	if RenderTree(nil) != "" {
		t.Fatal("nil tree renders empty")
	}
}

func TestSpanTreeAndAggregation(t *testing.T) {
	tel := New(8)
	tr := tel.Tracer()

	root := tr.StartOp(OpBoot, "node01", "img-0")
	fetch := root.Child(OpPeerFetch, "", "img-0")
	fetch.SetNode("node02")
	fetch.AddBytes(4096)
	fetch.AddSim(0.25)
	fetch.Annotate("attempts", 2)
	fetch.Finish()
	pfs := root.Child(OpPFSRead, "node01", "img-0")
	pfs.AddBytes(1024)
	pfs.Finish()
	root.AddBytes(5120)
	root.Finish()

	bad := tr.StartOp(OpScrub, "node03", "")
	bad.Fail(errors.New("corrupt block"))
	bad.Finish()

	roots := tel.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots %d want 2", len(roots))
	}
	if roots[0].Kind() != OpBoot || roots[1].Kind() != OpScrub {
		t.Fatalf("root order %q %q", roots[0].Kind(), roots[1].Kind())
	}
	if got := roots[0].ChildrenOf(OpPeerFetch); len(got) != 1 || got[0].Node() != "node02" || got[0].Bytes() != 4096 {
		t.Fatalf("peerFetch child wrong: %+v", got)
	}
	if roots[0].ChildrenOf(OpPeerFetch)[0].Annotation("attempts") != 2 {
		t.Fatal("annotation lost")
	}
	if fr := tel.FailedRoots(); len(fr) != 1 || fr[0].Kind() != OpScrub {
		t.Fatalf("failed roots %v", fr)
	}
	if s := tel.SlowestRoot(OpScrub); s == nil || s.Err() == "" {
		t.Fatal("SlowestRoot must prefer the failed op")
	}
	if tel.SlowestRoot(OpBoot) != roots[0] {
		t.Fatal("SlowestRoot(boot) must find the boot root")
	}

	snap := tel.Snapshot()
	boot, ok := snap.Op(OpBoot)
	if !ok || boot.Count != 1 || boot.Bytes != 5120 {
		t.Fatalf("boot summary %+v ok=%v", boot, ok)
	}
	fetchSum, ok := snap.Op(OpPeerFetch)
	if !ok || fetchSum.Count != 1 || fetchSum.Bytes != 4096 || fetchSum.SimSec != 0.25 {
		t.Fatalf("peerFetch summary %+v", fetchSum)
	}
	scrub, ok := snap.Op(OpScrub)
	if !ok || scrub.Errors != 1 {
		t.Fatalf("scrub summary %+v", scrub)
	}
	if snap.FailedOps != 1 || snap.SpansRecorded != 2 {
		t.Fatalf("snapshot bookkeeping %+v", snap)
	}
	var node02 *NodeSummary
	for i := range snap.Nodes {
		if snap.Nodes[i].Node == "node02" {
			node02 = &snap.Nodes[i]
		}
	}
	if node02 == nil || node02.Bytes != 4096 {
		t.Fatalf("node rollup missing: %+v", snap.Nodes)
	}

	tree := RenderTree(roots[0])
	for _, want := range []string{"boot node=node01", "  peerFetch node=node02", "attempts=2", "  pfsRead"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	if !strings.Contains(RenderTree(bad), `ERR="corrupt block"`) {
		t.Fatalf("tree missing error:\n%s", RenderTree(bad))
	}
}

func TestFinishIdempotentAndOpHelper(t *testing.T) {
	tel := New(4)
	tr := tel.Tracer()
	sp := tr.StartOp(OpGC, "", "")
	sp.Finish()
	sp.Finish() // must not double-record
	snap := tel.Snapshot()
	if gc, _ := snap.Op(OpGC); gc.Count != 1 {
		t.Fatalf("double finish recorded twice: %+v", gc)
	}

	// Op with a parent nests; Op without one roots.
	root := tr.StartOp(OpRestart, "node00", "")
	child := tr.Op(root, OpScrub, "node00", "")
	child.Finish()
	root.Finish()
	if len(root.ChildrenOf(OpScrub)) != 1 {
		t.Fatal("Op must nest under parent")
	}
	lone := tr.Op(nil, OpScrub, "node01", "")
	lone.Finish()
	if len(tel.RootsOf(OpScrub)) != 1 {
		t.Fatal("Op without parent must root")
	}
}

func TestRingWraparound(t *testing.T) {
	tel := New(4)
	tr := tel.Tracer()
	for i := 0; i < 10; i++ {
		sp := tr.StartOp(OpBoot, fmt.Sprintf("node%02d", i), "")
		sp.Finish()
	}
	roots := tel.Roots()
	if len(roots) != 4 {
		t.Fatalf("ring holds %d want 4", len(roots))
	}
	// Oldest-first: the survivors are the last four appended.
	for i, s := range roots {
		want := fmt.Sprintf("node%02d", 6+i)
		if s.Node() != want {
			t.Fatalf("slot %d node %q want %q", i, s.Node(), want)
		}
	}
	if got := tel.Snapshot().SpansRecorded; got != 10 {
		t.Fatalf("SpansRecorded %d want 10", got)
	}
}

func TestPrometheusAndJSON(t *testing.T) {
	tel := New(8)
	tr := tel.Tracer()
	tel.Counters().Add("peer.hit", 3)
	sp := tr.StartOp(OpRegister, "stor00", "img-1")
	sp.AddBytes(1 << 20)
	sp.AddSim(1.5)
	sp.Finish()

	snap := tel.Snapshot()
	prom := snap.Prometheus()
	for _, want := range []string{
		`squirrel_op_total{kind="register"} 1`,
		`squirrel_op_bytes_total{kind="register"} 1048576`,
		`squirrel_op_sim_seconds_total{kind="register"} 1.5`,
		`squirrel_op_latency_ms{kind="register",quantile="0.5"}`,
		`squirrel_node_ops_total{node="stor00"} 1`,
		`squirrel_counter{name="peer.hit"} 3`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus missing %q:\n%s", want, prom)
		}
	}
	js := snap.JSON()
	for _, want := range []string{`"kind": "register"`, `"bytes": 1048576`, `"peer.hit": 3`} {
		if !strings.Contains(js, want) {
			t.Fatalf("json missing %q:\n%s", want, js)
		}
	}
}

// TestConcurrentRecordAndSnapshot drives spans from many goroutines
// while another hammers Snapshot/Prometheus/Roots; the race detector is
// the oracle.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	tel := New(64)
	tr := tel.Tracer()
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := tel.Snapshot()
			_ = snap.Prometheus()
			_ = snap.JSON()
			for _, r := range tel.Roots() {
				_ = RenderTree(r)
			}
		}
	}()
	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 200; i++ {
				sp := tr.StartOp(OpBoot, fmt.Sprintf("node%02d", w), "img")
				c := sp.Child(OpPeerFetch, "", "img")
				c.AddBytes(4096)
				c.Finish()
				sp.AddBytes(4096)
				if i%7 == 0 {
					sp.Fail(errors.New("synthetic"))
				}
				sp.Finish()
				tel.Counters().Add("boot.count", 1)
			}
		}(w)
	}
	workers.Wait()
	close(stop)
	reader.Wait()
	snap := tel.Snapshot()
	boot, _ := snap.Op(OpBoot)
	if boot.Count != 800 {
		t.Fatalf("boot count %d want 800", boot.Count)
	}
	if fetch, _ := snap.Op(OpPeerFetch); fetch.Bytes != 800*4096 {
		t.Fatalf("peerFetch bytes %d", fetch.Bytes)
	}
}
