// Package obs is Squirrel's observability layer: hierarchical operation
// spans, a bounded ring of completed operation trees with pooled-span
// recycling, striped per-op and per-node aggregation, and a unified
// telemetry export surface (JSON + Prometheus-style text).
//
// The paper's evaluation (§5) is entirely about where time and bytes go
// — cold-boot CDFs, network transfer breakdowns, gain-factor
// extrapolation — so the reproduction makes operation provenance
// first-class: every long-running operation (Register → per-node
// propagate → zvol.receive; Boot → cacheRead/peerFetch/pfsRead; Scrub,
// Resilver, Sync, GC) records a span tree carrying op kind, node,
// image, byte counts, fault/retry annotations, and simulated network
// time alongside wall time.
//
// The layer is built for always-on operation. Span objects come from a
// sync.Pool and are recycled when the completed-operation ring evicts
// their tree (unless a snapshot reader has been handed the tree, in
// which case it is left to the garbage collector). Aggregation is
// striped across mutex shards folded together only at Snapshot time, so
// concurrent span finishes touch disjoint cache lines instead of one
// global registry lock. An optional seeded head-sampling knob
// (Config.SampleEvery) traces every Nth root operation for deployments
// where even that overhead matters; the default of 1 traces everything.
//
// Everything is nil-safe in the style of metrics.CounterSet: a nil
// *Telemetry, *Tracer, or *Span no-ops every method, so instrumented
// code paths never branch on "is tracing on". A head-sampled-out root
// span is a nil *Span too, which makes its whole subtree free.
package obs

import (
	"sync"

	"repro/internal/metrics"
)

// Operation kinds used by the core deployment. Children of an operation
// use the same vocabulary, so per-kind aggregates cover both roots
// (register, boot, scrub, …) and hot sub-operations (peerFetch,
// pfsRead, zvol.receive).
const (
	OpRegister  = "register"
	OpBoot      = "boot"
	OpScrub     = "scrub"
	OpResilver  = "resilver"
	OpSync      = "sync"
	OpGC        = "gc"
	OpRestart   = "restart"
	OpPropagate = "propagate"
	OpReceive   = "zvol.receive"
	OpRepair    = "repair"
	OpPeerFetch = "peerFetch"
	OpCacheRead = "cacheRead"
	OpPFSRead   = "pfsRead"
	OpPartition = "partition"
	OpGossip    = "gossip.round"
)

// Operation kinds used by the control-plane wire path (PR 9): the
// client-side session and per-RPC spans squirrelctl records when driving
// a daemon, and the daemon-side dispatch span each request frame opens.
// Together with the wire trace context they form one tree per control
// operation spanning both processes.
const (
	OpSession  = "ctl.session"  // one per wireclient connection lifetime
	OpDial     = "ctl.dial"     // one per TCP dial attempt (retries = siblings)
	OpRPC      = "rpc.call"     // client side of one request/reply exchange
	OpDispatch = "rpc.dispatch" // daemon side of one request frame
	OpWatch    = "ctl.watch"    // streaming telemetry watch session
)

// Operation kinds used by the workload engine (PR 10): one root span per
// driven scenario with a child per phase, so a trace of a million-boot
// drive is three spans, not a million.
const (
	OpWorkload          = "workload"           // one full scenario drive
	OpWorkloadProvision = "workload.provision" // catalog registration + replica seeding
	OpWorkloadDrive     = "workload.drive"     // the arrival-driven boot loop
)

// DefaultRingSize bounds the completed-operation ring when the
// configured size is non-positive. Retained span trees are live heap
// the garbage collector re-marks every cycle — on an allocation-heavy
// deployment that mark cost, not span recording itself, is what shows
// up as tracing overhead — so the always-on default stays small: deep
// enough to hold the recent operations an operator inspects after an
// incident, shallow enough that a traced boot wave stays within the 5%
// overhead bar. Consumers that replay whole histories from the ring
// (chaos soaks, the figtrace experiment) size it explicitly via
// Config.RingSize.
const DefaultRingSize = 64

// Config tunes a Telemetry. The zero value is valid: DefaultRingSize
// ring, trace everything.
type Config struct {
	// RingSize bounds the completed-root-operation ring
	// (DefaultRingSize when <= 0).
	RingSize int

	// SampleEvery head-samples root operations: only every Nth StartOp
	// returns a live span; the rest return nil, which makes the whole
	// operation subtree free. 0 or 1 traces everything. Sampling is
	// deterministic for a given (SampleEvery, SampleSeed) and call
	// order. Aggregates and the ring then describe the sampled subset.
	SampleEvery int

	// SampleSeed offsets which residue class of root operations is
	// kept, so replicated deployments can sample disjoint phases.
	SampleSeed int64
}

// Telemetry is one deployment's observability state: a tracer feeding a
// striped registry of per-kind/per-node aggregates, a bounded ring of
// completed root spans, and the deployment-wide counter set that the
// fault injector, peer index, and zvol volumes share when observability
// is enabled (the "one registry" replacing bespoke counter threading).
type Telemetry struct {
	tracer   *Tracer
	counters *metrics.CounterSet

	mu       sync.Mutex
	workload *WorkloadStats // most recent workload drive, nil until one ran
}

// WorkloadStats is the `workload` snapshot section: the streaming
// aggregate of the most recent workload-engine drive against this
// deployment. It is a fixed-size summary — the driver never retains
// per-boot records — so publishing it costs O(1) regardless of how many
// boots the scenario scheduled.
type WorkloadStats struct {
	Arrivals    string  `json:"arrivals"` // poisson | diurnal | flash
	Mode        string  `json:"mode"`     // logical | wall
	Nodes       int     `json:"nodes"`
	Boots       int64   `json:"boots"`    // scheduled arrivals
	Executed    int64   `json:"executed"` // real core boots run (memo misses + resamples)
	Shed        int64   `json:"shed"`
	PeerHits    int64   `json:"peer_hits"`
	ShedRate    float64 `json:"shed_rate"`
	PeerHitRate float64 `json:"peer_hit_rate"` // of cold boots
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
}

// SetWorkloadStats publishes the summary of a finished workload drive;
// it appears as the `workload` section of subsequent snapshots. Nil-safe.
func (t *Telemetry) SetWorkloadStats(ws WorkloadStats) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.workload = &ws
	t.mu.Unlock()
}

// New builds a Telemetry whose ring keeps the last ringSize completed
// root operations (DefaultRingSize when ringSize <= 0) and traces every
// operation. Shorthand for NewWith(Config{RingSize: ringSize}).
func New(ringSize int) *Telemetry {
	return NewWith(Config{RingSize: ringSize})
}

// NewWith builds a Telemetry from a Config.
func NewWith(cfg Config) *Telemetry {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	every := uint64(1)
	if cfg.SampleEvery > 1 {
		every = uint64(cfg.SampleEvery)
	}
	tr := &Tracer{
		reg:         newRegistry(),
		ring:        newRing(cfg.RingSize),
		sampleEvery: every,
	}
	if every > 1 {
		// Offset the kept residue class by the seed so two telemetries
		// with different seeds keep different (deterministic) subsets.
		tr.sampleTick.Store(uint64(cfg.SampleSeed) % every)
	}
	return &Telemetry{tracer: tr, counters: metrics.NewCounterSet()}
}

// Tracer returns the span tracer. Nil-safe: a nil Telemetry yields a
// nil Tracer, which in turn yields nil no-op spans.
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Counters is the deployment-wide counter registry. Nil-safe: a nil
// Telemetry yields a nil (drop-everything) CounterSet.
func (t *Telemetry) Counters() *metrics.CounterSet {
	if t == nil {
		return nil
	}
	return t.counters
}

// Roots returns the completed root spans currently held by the ring,
// oldest first. Spans are immutable once completed; the slice is fresh.
// Handing a tree out pins it: the ring will no longer recycle it into
// the span pool when it ages out.
func (t *Telemetry) Roots() []*Span {
	if t == nil {
		return nil
	}
	return t.tracer.ring.snapshot()
}

// RootsOf returns the ring's completed root spans of one kind, oldest
// first.
func (t *Telemetry) RootsOf(kind string) []*Span {
	var out []*Span
	for _, s := range t.Roots() {
		if s.Kind() == kind {
			out = append(out, s)
		}
	}
	return out
}

// FailedRoots returns the ring's root spans that ended in an error
// state, oldest first.
func (t *Telemetry) FailedRoots() []*Span {
	var out []*Span
	for _, s := range t.Roots() {
		if s.Err() != "" {
			out = append(out, s)
		}
	}
	return out
}

// SlowestRoot picks the operation `squirrelctl -trace <kind>` dumps:
// the first failed root of that kind if any operation failed, otherwise
// the root with the longest wall duration. Returns nil when the ring
// holds no such operation.
func (t *Telemetry) SlowestRoot(kind string) *Span {
	var slowest *Span
	for _, s := range t.RootsOf(kind) {
		if s.Err() != "" {
			return s
		}
		if slowest == nil || s.Wall() > slowest.Wall() {
			slowest = s
		}
	}
	return slowest
}

// SlowestSpan generalizes SlowestRoot to spans anywhere inside the
// ring's trees: the first failed span of that kind if any failed,
// otherwise the one with the longest wall duration. Daemon-dispatched
// operations live as children of rpc.dispatch roots, so the trace
// surface searches whole trees, not just roots.
func (t *Telemetry) SlowestSpan(kind string) *Span {
	var slowest *Span
	for _, root := range t.Roots() {
		root.walk(func(s *Span) bool {
			if s.Kind() != kind {
				return true
			}
			if s.Err() != "" {
				slowest = s
				return false
			}
			if slowest == nil || slowest.Err() == "" && s.Wall() > slowest.Wall() {
				slowest = s
			}
			return true
		})
		if slowest != nil && slowest.Err() != "" {
			break
		}
	}
	return slowest
}
