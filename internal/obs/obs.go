// Package obs is Squirrel's observability layer: hierarchical operation
// spans, a bounded lock-free ring of completed operation trees, per-op
// and per-node aggregation, and a unified telemetry export surface
// (JSON + Prometheus-style text).
//
// The paper's evaluation (§5) is entirely about where time and bytes go
// — cold-boot CDFs, network transfer breakdowns, gain-factor
// extrapolation — so the reproduction makes operation provenance
// first-class: every long-running operation (Register → per-node
// propagate → zvol.receive; Boot → cacheRead/peerFetch/pfsRead; Scrub,
// Resilver, Sync, GC) records a span tree carrying op kind, node,
// image, byte counts, fault/retry annotations, and simulated network
// time alongside wall time.
//
// Everything is nil-safe in the style of metrics.CounterSet: a nil
// *Telemetry, *Tracer, or *Span no-ops every method, so instrumented
// code paths never branch on "is tracing on". The hot path of a running
// deployment costs one atomic ring append per completed operation plus
// a handful of short mutex sections for aggregation; disabled tracing
// costs a nil check.
package obs

import (
	"repro/internal/metrics"
)

// Operation kinds used by the core deployment. Children of an operation
// use the same vocabulary, so per-kind aggregates cover both roots
// (register, boot, scrub, …) and hot sub-operations (peerFetch,
// pfsRead, zvol.receive).
const (
	OpRegister  = "register"
	OpBoot      = "boot"
	OpScrub     = "scrub"
	OpResilver  = "resilver"
	OpSync      = "sync"
	OpGC        = "gc"
	OpRestart   = "restart"
	OpPropagate = "propagate"
	OpReceive   = "zvol.receive"
	OpRepair    = "repair"
	OpPeerFetch = "peerFetch"
	OpCacheRead = "cacheRead"
	OpPFSRead   = "pfsRead"
	OpPartition = "partition"
	OpGossip    = "gossip.round"
)

// DefaultRingSize bounds the completed-operation ring when New is given
// a non-positive size. Retained span trees are live heap the garbage
// collector rescans every cycle, so the default stays modest: large
// enough to hold every root op of a chaos soak, small enough that a
// traced boot wave benchmarks within noise of an untraced one.
const DefaultRingSize = 512

// Telemetry is one deployment's observability state: a tracer feeding a
// registry of per-kind/per-node aggregates, a bounded ring of completed
// root spans, and the deployment-wide counter set that the fault
// injector, peer index, and zvol volumes share when observability is
// enabled (the "one registry" replacing bespoke counter threading).
type Telemetry struct {
	tracer   *Tracer
	counters *metrics.CounterSet
}

// New builds a Telemetry whose ring keeps the last ringSize completed
// root operations (DefaultRingSize when ringSize <= 0).
func New(ringSize int) *Telemetry {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Telemetry{
		tracer:   &Tracer{reg: newRegistry(), ring: newRing(ringSize)},
		counters: metrics.NewCounterSet(),
	}
}

// Tracer returns the span tracer. Nil-safe: a nil Telemetry yields a
// nil Tracer, which in turn yields nil no-op spans.
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Counters is the deployment-wide counter registry. Nil-safe: a nil
// Telemetry yields a nil (drop-everything) CounterSet.
func (t *Telemetry) Counters() *metrics.CounterSet {
	if t == nil {
		return nil
	}
	return t.counters
}

// Roots returns the completed root spans currently held by the ring,
// oldest first. Spans are immutable once completed; the slice is fresh.
func (t *Telemetry) Roots() []*Span {
	if t == nil {
		return nil
	}
	return t.tracer.ring.snapshot()
}

// RootsOf returns the ring's completed root spans of one kind, oldest
// first.
func (t *Telemetry) RootsOf(kind string) []*Span {
	var out []*Span
	for _, s := range t.Roots() {
		if s.Kind() == kind {
			out = append(out, s)
		}
	}
	return out
}

// FailedRoots returns the ring's root spans that ended in an error
// state, oldest first.
func (t *Telemetry) FailedRoots() []*Span {
	var out []*Span
	for _, s := range t.Roots() {
		if s.Err() != "" {
			out = append(out, s)
		}
	}
	return out
}

// SlowestRoot picks the operation `squirrelctl -trace <kind>` dumps:
// the first failed root of that kind if any operation failed, otherwise
// the root with the longest wall duration. Returns nil when the ring
// holds no such operation.
func (t *Telemetry) SlowestRoot(kind string) *Span {
	var slowest *Span
	for _, s := range t.RootsOf(kind) {
		if s.Err() != "" {
			return s
		}
		if slowest == nil || s.Wall() > slowest.Wall() {
			slowest = s
		}
	}
	return slowest
}
