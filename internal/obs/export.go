package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// OpSummary is one op kind's aggregate in a telemetry snapshot.
// Latency quantiles are wall-clock milliseconds drawn from the
// registry's nanosecond histogram.
type OpSummary struct {
	Kind   string  `json:"kind"`
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	Bytes  int64   `json:"bytes"`
	SimSec float64 `json:"sim_sec"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// NodeSummary is one node's aggregate across all op kinds.
type NodeSummary struct {
	Node   string `json:"node"`
	Count  int64  `json:"count"`
	Errors int64  `json:"errors"`
	Bytes  int64  `json:"bytes"`
}

// Snapshot is one coherent view of a deployment's telemetry: per-op
// rollups, per-node rollups, the shared counter registry, and ring
// bookkeeping. Built by Telemetry.Snapshot; rendered by JSON and
// Prometheus.
type Snapshot struct {
	Ops           []OpSummary      `json:"ops"`
	Nodes         []NodeSummary    `json:"nodes"`
	Counters      map[string]int64 `json:"counters"`
	SpansRecorded uint64           `json:"spans_recorded"`     // root ops ever appended to the ring
	FailedOps     int              `json:"failed_ops"`         // failed roots still held by the ring
	Workload      *WorkloadStats   `json:"workload,omitempty"` // most recent workload drive
}

// Snapshot assembles the unified telemetry document. Safe to call
// concurrently with running operations; a nil Telemetry yields an empty
// snapshot.
func (t *Telemetry) Snapshot() Snapshot {
	snap := Snapshot{Counters: map[string]int64{}}
	if t == nil {
		return snap
	}
	snap.Counters = t.counters.Snapshot()
	snap.SpansRecorded = t.tracer.ring.appended()
	snap.FailedOps = len(t.FailedRoots())
	t.mu.Lock()
	if t.workload != nil {
		ws := *t.workload
		snap.Workload = &ws
	}
	t.mu.Unlock()

	ops, nodes := t.tracer.reg.merge()
	for node, agg := range nodes {
		snap.Nodes = append(snap.Nodes, NodeSummary{Node: node, Count: agg.count, Errors: agg.errors, Bytes: agg.bytes})
	}

	const ms = 1e6 // ns per ms
	for kind, m := range ops {
		lat := m.lat.Snapshot()
		snap.Ops = append(snap.Ops, OpSummary{
			Kind:   kind,
			Count:  m.count,
			Errors: m.errors,
			Bytes:  m.bytes,
			SimSec: m.simSec,
			MeanMs: lat.Mean() / ms,
			P50Ms:  float64(lat.Quantile(0.50)) / ms,
			P95Ms:  float64(lat.Quantile(0.95)) / ms,
			P99Ms:  float64(lat.Quantile(0.99)) / ms,
		})
	}
	sort.Slice(snap.Ops, func(i, j int) bool { return snap.Ops[i].Kind < snap.Ops[j].Kind })
	sort.Slice(snap.Nodes, func(i, j int) bool { return snap.Nodes[i].Node < snap.Nodes[j].Node })
	return snap
}

// Op looks up one kind's summary.
func (s Snapshot) Op(kind string) (OpSummary, bool) {
	for _, op := range s.Ops {
		if op.Kind == kind {
			return op, true
		}
	}
	return OpSummary{}, false
}

// JSON renders the snapshot as an indented JSON document.
func (s Snapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Sprintf("{%q:%q}", "error", err.Error())
	}
	return string(b)
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format — a flat, scrapeable mirror of the JSON document.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	b.WriteString("# TYPE squirrel_op_total counter\n")
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "squirrel_op_total{kind=%q} %d\n", op.Kind, op.Count)
	}
	b.WriteString("# TYPE squirrel_op_errors_total counter\n")
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "squirrel_op_errors_total{kind=%q} %d\n", op.Kind, op.Errors)
	}
	b.WriteString("# TYPE squirrel_op_bytes_total counter\n")
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "squirrel_op_bytes_total{kind=%q} %d\n", op.Kind, op.Bytes)
	}
	b.WriteString("# TYPE squirrel_op_sim_seconds_total counter\n")
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "squirrel_op_sim_seconds_total{kind=%q} %g\n", op.Kind, op.SimSec)
	}
	b.WriteString("# TYPE squirrel_op_latency_ms summary\n")
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "squirrel_op_latency_ms{kind=%q,quantile=\"0.5\"} %g\n", op.Kind, op.P50Ms)
		fmt.Fprintf(&b, "squirrel_op_latency_ms{kind=%q,quantile=\"0.95\"} %g\n", op.Kind, op.P95Ms)
		fmt.Fprintf(&b, "squirrel_op_latency_ms{kind=%q,quantile=\"0.99\"} %g\n", op.Kind, op.P99Ms)
	}
	b.WriteString("# TYPE squirrel_node_ops_total counter\n")
	for _, n := range s.Nodes {
		fmt.Fprintf(&b, "squirrel_node_ops_total{node=%q} %d\n", n.Node, n.Count)
	}
	b.WriteString("# TYPE squirrel_node_bytes_total counter\n")
	for _, n := range s.Nodes {
		fmt.Fprintf(&b, "squirrel_node_bytes_total{node=%q} %d\n", n.Node, n.Bytes)
	}
	if w := s.Workload; w != nil {
		b.WriteString("# TYPE squirrel_workload gauge\n")
		fmt.Fprintf(&b, "squirrel_workload_boots{arrivals=%q,mode=%q} %d\n", w.Arrivals, w.Mode, w.Boots)
		fmt.Fprintf(&b, "squirrel_workload_shed{arrivals=%q,mode=%q} %d\n", w.Arrivals, w.Mode, w.Shed)
		fmt.Fprintf(&b, "squirrel_workload_peer_hits{arrivals=%q,mode=%q} %d\n", w.Arrivals, w.Mode, w.PeerHits)
		fmt.Fprintf(&b, "squirrel_workload_boot_latency_ms{arrivals=%q,mode=%q,quantile=\"0.5\"} %g\n", w.Arrivals, w.Mode, w.P50Ms)
		fmt.Fprintf(&b, "squirrel_workload_boot_latency_ms{arrivals=%q,mode=%q,quantile=\"0.99\"} %g\n", w.Arrivals, w.Mode, w.P99Ms)
		fmt.Fprintf(&b, "squirrel_workload_boot_latency_ms{arrivals=%q,mode=%q,quantile=\"0.999\"} %g\n", w.Arrivals, w.Mode, w.P999Ms)
	}
	b.WriteString("# TYPE squirrel_counter gauge\n")
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "squirrel_counter{name=%q} %d\n", n, s.Counters[n])
	}
	return b.String()
}
