package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Tracer hands out spans and owns where they land: the striped per-kind
// and per-node aggregates (registry) and the completed-operation ring.
// A nil *Tracer hands out nil spans, so disabled tracing is free.
type Tracer struct {
	reg  *Registry
	ring *ring

	// Head sampling: StartOp keeps one root operation in sampleEvery
	// (every one when <= 1). sampleTick is pre-offset by the seed.
	sampleEvery uint64
	sampleTick  atomic.Uint64
}

// StartOp opens a root span for one operation. Nil-safe. When head
// sampling is configured, all but every Nth call return nil — a no-op
// span whose whole subtree costs only nil checks.
func (tr *Tracer) StartOp(kind, node, image string) *Span {
	if tr == nil {
		return nil
	}
	if tr.sampleEvery > 1 && tr.sampleTick.Add(1)%tr.sampleEvery != 0 {
		return nil
	}
	return newSpan(tr, nil, kind, node, image)
}

// StartRemoteOp opens a root span for an operation that continues a
// trace begun in another process: the wire trace context's
// (traceID, parentSpanID) pair is recorded on the span so the remote
// caller can later fetch this tree and graft it under its own span.
// Remote continuations are never head-sampled — the caller already
// decided this operation is traced.
func (tr *Tracer) StartRemoteOp(kind, node, image string, traceID, parentID uint64) *Span {
	if tr == nil {
		return nil
	}
	s := newSpan(tr, nil, kind, node, image)
	s.rtrace, s.rparent = traceID, parentID
	return s
}

// Op opens a span under parent when the caller was reached as a
// sub-operation (a scrub inside a restart, a sync inside a boot heal),
// or a fresh root span when called directly. Works with a nil tracer,
// a nil parent, or both.
func (tr *Tracer) Op(parent *Span, kind, node, image string) *Span {
	if parent != nil {
		return parent.Child(kind, node, image)
	}
	return tr.StartOp(kind, node, image)
}

// Registry aggregates every finished span — roots and children alike —
// into per-op-kind rollups (count, errors, bytes, simulated seconds,
// wall-latency histogram) and per-node rollups. This is the "one
// registry" the telemetry snapshot renders.
//
// The rollups are striped: each finish folds into one of GOMAXPROCS
// (rounded up to a power of two) independent mutex shards selected by
// the span's ID, and Snapshot merges the shards into one coherent view.
// A span's whole contribution lands in a single shard under a single
// lock section, so a merged view can never show one span half-applied.
type Registry struct {
	shards []regShard
	mask   uint64
}

// regShard is one aggregation stripe. The trailing pad keeps adjacent
// shards' mutexes off one cache line; the maps are per-shard so finish
// paths on different stripes share no written memory at all.
type regShard struct {
	mu    sync.Mutex
	ops   map[string]*opAgg
	nodes map[string]*nodeAgg
	_     [40]byte
}

type opAgg struct {
	count  int64
	errors int64
	bytes  int64
	simSec float64
	lat    *metrics.Histogram // wall nanoseconds
}

type nodeAgg struct {
	count  int64
	errors int64
	bytes  int64
}

func newRegistry() *Registry {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n > 64 {
		n = 64
	}
	r := &Registry{shards: make([]regShard, n), mask: uint64(n - 1)}
	for i := range r.shards {
		r.shards[i].ops = make(map[string]*opAgg)
		r.shards[i].nodes = make(map[string]*nodeAgg)
	}
	return r
}

// record folds one finished span into its stripe. The stripe is picked
// by span ID, so concurrent finishes scatter across shards no matter
// which op kind or node they belong to.
func (r *Registry) record(spanID uint64, kind, node string, bytes int64, simSec float64, wall time.Duration, failed bool) {
	sh := &r.shards[spanID&r.mask]
	sh.mu.Lock()
	op := sh.ops[kind]
	if op == nil {
		op = &opAgg{lat: metrics.MustHistogram(metrics.LatencyBuckets()...)}
		sh.ops[kind] = op
	}
	op.count++
	op.bytes += bytes
	op.simSec += simSec
	if failed {
		op.errors++
	}
	lat := op.lat
	if node != "" {
		na := sh.nodes[node]
		if na == nil {
			na = &nodeAgg{}
			sh.nodes[node] = na
		}
		na.count++
		na.bytes += bytes
		if failed {
			na.errors++
		}
	}
	sh.mu.Unlock()
	// The histogram has its own lock; observe outside the shard lock.
	lat.Observe(wall.Nanoseconds())
}

// mergedOp is one op kind's shard-merged rollup, with the latency
// histograms of every stripe folded into one.
type mergedOp struct {
	count  int64
	errors int64
	bytes  int64
	simSec float64
	lat    *metrics.Histogram
}

// merge folds all stripes into coherent per-op and per-node maps. Each
// shard is copied under its own lock; a span's contribution is entirely
// inside one shard, so no span is ever seen half-applied.
func (r *Registry) merge() (map[string]*mergedOp, map[string]nodeAgg) {
	ops := make(map[string]*mergedOp)
	nodes := make(map[string]nodeAgg)
	type latPair struct {
		dst *metrics.Histogram
		src *metrics.Histogram
	}
	var lats []latPair
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for kind, agg := range sh.ops {
			m := ops[kind]
			if m == nil {
				m = &mergedOp{lat: metrics.MustHistogram(metrics.LatencyBuckets()...)}
				ops[kind] = m
			}
			m.count += agg.count
			m.errors += agg.errors
			m.bytes += agg.bytes
			m.simSec += agg.simSec
			lats = append(lats, latPair{m.lat, agg.lat})
		}
		for node, agg := range sh.nodes {
			na := nodes[node]
			na.count += agg.count
			na.errors += agg.errors
			na.bytes += agg.bytes
			nodes[node] = na
		}
		sh.mu.Unlock()
	}
	// Histograms carry their own locks; merging outside the shard locks
	// keeps finish paths unblocked during snapshot assembly.
	for _, p := range lats {
		_ = p.dst.Merge(p.src)
	}
	return ops, nodes
}
