package obs

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Tracer hands out spans and owns where they land: the per-kind and
// per-node aggregates (registry) and the completed-operation ring. A
// nil *Tracer hands out nil spans, so disabled tracing is free.
type Tracer struct {
	reg  *Registry
	ring *ring
}

// StartOp opens a root span for one operation. Nil-safe.
func (tr *Tracer) StartOp(kind, node, image string) *Span {
	if tr == nil {
		return nil
	}
	return newSpan(tr, nil, kind, node, image)
}

// Op opens a span under parent when the caller was reached as a
// sub-operation (a scrub inside a restart, a sync inside a boot heal),
// or a fresh root span when called directly. Works with a nil tracer,
// a nil parent, or both.
func (tr *Tracer) Op(parent *Span, kind, node, image string) *Span {
	if parent != nil {
		return parent.Child(kind, node, image)
	}
	return tr.StartOp(kind, node, image)
}

// Registry aggregates every finished span — roots and children alike —
// into per-op-kind rollups (count, errors, bytes, simulated seconds,
// wall-latency histogram) and per-node rollups. This is the "one
// registry" the telemetry snapshot renders.
type Registry struct {
	mu    sync.Mutex
	ops   map[string]*opAgg
	nodes map[string]*nodeAgg
}

type opAgg struct {
	count  int64
	errors int64
	bytes  int64
	simSec float64
	lat    *metrics.Histogram // wall nanoseconds
}

type nodeAgg struct {
	count  int64
	errors int64
	bytes  int64
}

func newRegistry() *Registry {
	return &Registry{ops: make(map[string]*opAgg), nodes: make(map[string]*nodeAgg)}
}

// record folds one finished span into the aggregates.
func (r *Registry) record(kind, node string, bytes int64, simSec float64, wall time.Duration, failed bool) {
	r.mu.Lock()
	op := r.ops[kind]
	if op == nil {
		op = &opAgg{lat: metrics.MustHistogram(metrics.LatencyBuckets()...)}
		r.ops[kind] = op
	}
	op.count++
	op.bytes += bytes
	op.simSec += simSec
	if failed {
		op.errors++
	}
	lat := op.lat
	if node != "" {
		na := r.nodes[node]
		if na == nil {
			na = &nodeAgg{}
			r.nodes[node] = na
		}
		na.count++
		na.bytes += bytes
		if failed {
			na.errors++
		}
	}
	r.mu.Unlock()
	// The histogram has its own lock; observe outside the registry lock.
	lat.Observe(wall.Nanoseconds())
}
