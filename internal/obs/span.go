package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one operation (or sub-operation) in flight or completed. A
// span carries its op kind, the node and image it concerns, wall-clock
// start/end, accumulated byte count, simulated network/disk time (the
// model's seconds, distinct from wall time), fault/retry annotations,
// an error state, and child spans.
//
// Spans are built by the goroutine running the operation; the small
// internal mutex makes cross-goroutine building safe too. A nil *Span
// no-ops every method and hands out nil children, so a disabled tracer
// costs instrumented code only nil checks.
type Span struct {
	tr     *Tracer
	parent *Span
	seq    uint64 // ring slot ordering, assigned at append time

	kind  string
	start time.Time

	mu       sync.Mutex
	node     string
	image    string
	end      time.Time
	bytes    int64
	simSec   float64
	err      string
	annots   map[string]int64
	children []*Span
	finished bool
}

func newSpan(tr *Tracer, parent *Span, kind, node, image string) *Span {
	return &Span{tr: tr, parent: parent, kind: kind, node: node, image: image, start: time.Now()}
}

// Child starts a sub-operation span under s. Nil-safe: a nil span hands
// out a nil child.
func (s *Span) Child(kind, node, image string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(s.tr, s, kind, node, image)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetNode records (or revises) the node the span concerns — peer
// fetches learn their source mid-operation.
func (s *Span) SetNode(node string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.node = node
	s.mu.Unlock()
}

// AddBytes accumulates bytes moved or touched by the operation.
func (s *Span) AddBytes(n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.bytes += n
	s.mu.Unlock()
}

// AddSim accumulates simulated (modelled) seconds — fabric transfer
// time, simulated backoff — as opposed to wall time.
func (s *Span) AddSim(sec float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.simSec += sec
	s.mu.Unlock()
}

// Annotate adds delta to a named annotation (fault kinds, retry counts,
// byte-provenance splits).
func (s *Span) Annotate(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.annots == nil {
		s.annots = make(map[string]int64, 4)
	}
	s.annots[key] += delta
	s.mu.Unlock()
}

// Fail marks the span's error state. A nil error is ignored, so call
// sites can pass their return error unconditionally.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// Finish completes the span: it stamps the end time, feeds the
// per-kind/per-node aggregates, and — for a root span — appends the
// whole operation tree to the tracer's ring. Finish is idempotent;
// second and later calls are dropped.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.end = time.Now()
	kind, node := s.kind, s.node
	bytes, simSec, failed := s.bytes, s.simSec, s.err != ""
	wall := s.end.Sub(s.start)
	s.mu.Unlock()
	if s.tr == nil {
		return
	}
	s.tr.reg.record(kind, node, bytes, simSec, wall, failed)
	if s.parent == nil {
		s.tr.ring.add(s)
	}
}

// --- accessors (all nil-safe; used by export, experiments, and tests) ---

// Kind returns the op kind.
func (s *Span) Kind() string {
	if s == nil {
		return ""
	}
	return s.kind
}

// Node returns the node the span concerns ("" if none).
func (s *Span) Node() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node
}

// Image returns the image the span concerns ("" if none).
func (s *Span) Image() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.image
}

// Bytes returns the accumulated byte count.
func (s *Span) Bytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// SimSec returns the accumulated simulated seconds.
func (s *Span) SimSec() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.simSec
}

// Err returns the span's error state ("" when the operation succeeded).
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Annotation returns one named annotation (0 if absent).
func (s *Span) Annotation(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.annots[key]
}

// Annotations copies the span's annotation map.
func (s *Span) Annotations() map[string]int64 {
	out := make(map[string]int64)
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.annots {
		out[k] = v
	}
	return out
}

// Children copies the span's child list in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// ChildrenOf returns the span's direct children of one kind.
func (s *Span) ChildrenOf(kind string) []*Span {
	var out []*Span
	for _, c := range s.Children() {
		if c.Kind() == kind {
			out = append(out, c)
		}
	}
	return out
}

// Wall returns the wall-clock duration (0 for an unfinished span).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// RenderTree renders a completed span tree as indented text, one span
// per line — the `squirrelctl -trace` dump.
func RenderTree(s *Span) string {
	var b strings.Builder
	renderInto(&b, s, 0)
	return b.String()
}

func renderInto(b *strings.Builder, s *Span, depth int) {
	if s == nil {
		return
	}
	fmt.Fprintf(b, "%s%s", strings.Repeat("  ", depth), s.Kind())
	if n := s.Node(); n != "" {
		fmt.Fprintf(b, " node=%s", n)
	}
	if im := s.Image(); im != "" {
		fmt.Fprintf(b, " image=%s", im)
	}
	fmt.Fprintf(b, " wall=%s", s.Wall().Round(time.Microsecond))
	if sim := s.SimSec(); sim > 0 {
		fmt.Fprintf(b, " sim=%.4fs", sim)
	}
	if n := s.Bytes(); n > 0 {
		fmt.Fprintf(b, " bytes=%d", n)
	}
	annots := s.Annotations()
	keys := make([]string, 0, len(annots))
	for k := range annots {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%d", k, annots[k])
	}
	if e := s.Err(); e != "" {
		fmt.Fprintf(b, " ERR=%q", e)
	}
	b.WriteString("\n")
	for _, c := range s.Children() {
		renderInto(b, c, depth+1)
	}
}
