package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one operation (or sub-operation) in flight or completed. A
// span carries its op kind, the node and image it concerns, wall-clock
// start/end, accumulated byte count, simulated network/disk time (the
// model's seconds, distinct from wall time), fault/retry annotations,
// an error state, and child spans.
//
// Spans are built by the goroutine running the operation; the small
// internal mutex makes cross-goroutine building safe too. A nil *Span
// no-ops every method and hands out nil children, so a disabled tracer
// costs instrumented code only nil checks.
//
// Span objects are pooled: when the completed-operation ring evicts a
// tree that no snapshot reader was ever handed, every span in it goes
// back to the pool and is reused by a later operation. A tree returned
// by Roots/RootsOf/SlowestRoot/SlowestSpan is pinned (the exposed flag)
// and ages out to the garbage collector instead, so callers can hold
// snapshot results indefinitely.
type Span struct {
	tr      *Tracer
	parent  *Span
	seq     uint64      // ring slot ordering, assigned at append time
	id      uint64      // process-unique span ID (wire trace context)
	exposed atomic.Bool // handed to a snapshot reader; never recycle

	// Remote trace linkage: the trace/parent span IDs carried in by a
	// wire request frame (zero for locally rooted operations).
	rtrace  uint64
	rparent uint64

	kind  string
	start time.Time

	mu       sync.Mutex
	node     string
	image    string
	end      time.Time
	bytes    int64
	simSec   float64
	err      string
	annots   map[string]int64
	children []*Span
	finished bool
}

// spanPool recycles Span objects evicted from the ring. spanID hands
// out process-unique span IDs; pooled reuse must re-stamp the ID so a
// recycled object never aliases a live wire trace reference.
var (
	spanPool = sync.Pool{New: func() any { return new(Span) }}
	spanID   atomic.Uint64
)

func newSpan(tr *Tracer, parent *Span, kind, node, image string) *Span {
	s := spanPool.Get().(*Span)
	s.tr, s.parent, s.seq = tr, parent, 0
	s.id = spanID.Add(1)
	s.exposed.Store(false)
	s.rtrace, s.rparent = 0, 0
	s.kind, s.start = kind, time.Now()
	s.node, s.image = node, image
	s.end = time.Time{}
	s.bytes, s.simSec, s.err = 0, 0, ""
	clear(s.annots)
	s.children = s.children[:0]
	s.finished = false
	return s
}

// recycleTree returns an evicted, unexposed span tree to the pool. Only
// finished spans recycle; an unfinished straggler (a child whose parent
// finished first) is left to the garbage collector.
func recycleTree(s *Span) {
	s.mu.Lock()
	done := s.finished
	kids := s.children
	s.children = nil // detach before pooling so no pooled span aliases another's slice
	s.mu.Unlock()
	for _, c := range kids {
		recycleTree(c)
	}
	if !done {
		return
	}
	s.tr, s.parent = nil, nil
	s.children = kids[:0] // keep the allocation for the next tree
	spanPool.Put(s)
}

// SpanID returns the span's process-unique ID — the value the wire
// trace context carries. 0 for a nil span.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// RemoteTrace returns the (traceID, parentSpanID) pair a wire request
// stamped on this span, or zeros for locally rooted operations.
func (s *Span) RemoteTrace() (traceID, parentID uint64) {
	if s == nil {
		return 0, 0
	}
	return s.rtrace, s.rparent
}

// Child starts a sub-operation span under s. Nil-safe: a nil span hands
// out a nil child.
func (s *Span) Child(kind, node, image string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(s.tr, s, kind, node, image)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// NewDetached starts a child span that is NOT yet linked into s's child
// list — the batch-attachment half of Adopt. The detached span still
// aggregates normally when finished; Adopt links a whole batch under
// one parent lock acquisition instead of one per child.
func (s *Span) NewDetached(kind, node, image string) *Span {
	if s == nil {
		return nil
	}
	return newSpan(s.tr, s, kind, node, image)
}

// Adopt links a batch of NewDetached children into s's child list with
// a single lock acquisition. Nil children (from a nil parent's
// NewDetached) are skipped.
func (s *Span) Adopt(children ...*Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for _, c := range children {
		if c != nil {
			s.children = append(s.children, c)
		}
	}
	s.mu.Unlock()
}

// SetNode records (or revises) the node the span concerns — peer
// fetches learn their source mid-operation.
func (s *Span) SetNode(node string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.node = node
	s.mu.Unlock()
}

// AddBytes accumulates bytes moved or touched by the operation.
func (s *Span) AddBytes(n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.bytes += n
	s.mu.Unlock()
}

// AddSim accumulates simulated (modelled) seconds — fabric transfer
// time, simulated backoff — as opposed to wall time.
func (s *Span) AddSim(sec float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.simSec += sec
	s.mu.Unlock()
}

// Annotate adds delta to a named annotation (fault kinds, retry counts,
// byte-provenance splits).
func (s *Span) Annotate(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.annots == nil {
		s.annots = make(map[string]int64, 4)
	}
	s.annots[key] += delta
	s.mu.Unlock()
}

// Fail marks the span's error state. A nil error is ignored, so call
// sites can pass their return error unconditionally.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// Finish completes the span: it stamps the end time, feeds the
// per-kind/per-node aggregates, and — for a root span — appends the
// whole operation tree to the tracer's ring. Finish is idempotent;
// second and later calls are dropped.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.end = time.Now()
	kind, node := s.kind, s.node
	bytes, simSec, failed := s.bytes, s.simSec, s.err != ""
	wall := s.end.Sub(s.start)
	s.mu.Unlock()
	if s.tr == nil {
		return
	}
	s.tr.reg.record(s.id, kind, node, bytes, simSec, wall, failed)
	if s.parent == nil {
		s.tr.ring.add(s)
	}
}

// --- accessors (all nil-safe; used by export, experiments, and tests) ---

// Kind returns the op kind.
func (s *Span) Kind() string {
	if s == nil {
		return ""
	}
	return s.kind
}

// Node returns the node the span concerns ("" if none).
func (s *Span) Node() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node
}

// Image returns the image the span concerns ("" if none).
func (s *Span) Image() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.image
}

// Bytes returns the accumulated byte count.
func (s *Span) Bytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// SimSec returns the accumulated simulated seconds.
func (s *Span) SimSec() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.simSec
}

// Err returns the span's error state ("" when the operation succeeded).
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Annotation returns one named annotation (0 if absent).
func (s *Span) Annotation(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.annots[key]
}

// Annotations copies the span's annotation map.
func (s *Span) Annotations() map[string]int64 {
	out := make(map[string]int64)
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.annots {
		out[k] = v
	}
	return out
}

// Children copies the span's child list in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// ChildrenOf returns the span's direct children of one kind.
func (s *Span) ChildrenOf(kind string) []*Span {
	var out []*Span
	for _, c := range s.Children() {
		if c.Kind() == kind {
			out = append(out, c)
		}
	}
	return out
}

// walk visits s and its descendants depth-first in creation order until
// visit returns false.
func (s *Span) walk(visit func(*Span) bool) bool {
	if s == nil {
		return true
	}
	if !visit(s) {
		return false
	}
	for _, c := range s.Children() {
		if !c.walk(visit) {
			return false
		}
	}
	return true
}

// FindSpan returns the first span of the given kind in s's tree
// (depth-first, creation order), or nil.
func (s *Span) FindSpan(kind string) *Span {
	var found *Span
	s.walk(func(sp *Span) bool {
		if sp.Kind() == kind {
			found = sp
			return false
		}
		return true
	})
	return found
}

// Wall returns the wall-clock duration (0 for an unfinished span).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// RenderTree renders a completed span tree as indented text, one span
// per line — the `squirrelctl -trace` dump.
func RenderTree(s *Span) string {
	var b strings.Builder
	renderInto(&b, s, 0)
	return b.String()
}

func renderInto(b *strings.Builder, s *Span, depth int) {
	if s == nil {
		return
	}
	renderLine(b, depth, s.Kind(), s.Node(), s.Image(), s.Wall(), s.SimSec(), s.Bytes(), s.Annotations(), s.Err())
	for _, c := range s.Children() {
		renderInto(b, c, depth+1)
	}
}

// renderLine is the shared one-span line format used by RenderTree and
// RenderDump, so local and wire-merged trace dumps are line-compatible.
func renderLine(b *strings.Builder, depth int, kind, node, image string, wall time.Duration, sim float64, bytes int64, annots map[string]int64, errText string) {
	fmt.Fprintf(b, "%s%s", strings.Repeat("  ", depth), kind)
	if node != "" {
		fmt.Fprintf(b, " node=%s", node)
	}
	if image != "" {
		fmt.Fprintf(b, " image=%s", image)
	}
	fmt.Fprintf(b, " wall=%s", wall.Round(time.Microsecond))
	if sim > 0 {
		fmt.Fprintf(b, " sim=%.4fs", sim)
	}
	if bytes > 0 {
		fmt.Fprintf(b, " bytes=%d", bytes)
	}
	keys := make([]string, 0, len(annots))
	for k := range annots {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%d", k, annots[k])
	}
	if errText != "" {
		fmt.Fprintf(b, " ERR=%q", errText)
	}
	b.WriteString("\n")
}
