package disk

import "container/list"

// PageSize is the OS page granularity (Linux page cache).
const PageSize = 4096

// pageKey identifies one cached page of one device/file.
type pageKey struct {
	dev  uint32
	page int64
}

// PageCache is an LRU page cache over 4 KB pages, shared by all files of
// a host, exactly the structure behind the paper's "free prefetching"
// observation (§4.2.3): QCOW2's 64 KB cluster fetches populate pages
// that later boot reads hit.
type PageCache struct {
	capPages int64
	pages    map[pageKey]*list.Element
	lru      *list.List // front = most recent; values are pageKey

	Hits   int64
	Misses int64
}

// NewPageCache returns a cache holding capBytes of pages (rounded down).
func NewPageCache(capBytes int64) *PageCache {
	c := capBytes / PageSize
	if c < 1 {
		c = 1
	}
	return &PageCache{
		capPages: c,
		pages:    make(map[pageKey]*list.Element),
		lru:      list.New(),
	}
}

// Extent is a byte range that missed the cache and must be read from the
// backing store.
type Extent struct {
	Off, Len int64
}

// Access touches the byte range [off, off+n) of device dev, inserting all
// of its pages, and returns the coalesced extents that were misses.
// Callers charge those extents to the disk.
func (pc *PageCache) Access(dev uint32, off, n int64) []Extent {
	if n <= 0 {
		return nil
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	var misses []Extent
	for p := first; p <= last; p++ {
		k := pageKey{dev, p}
		if el, ok := pc.pages[k]; ok {
			pc.lru.MoveToFront(el)
			pc.Hits++
			continue
		}
		pc.Misses++
		pc.insert(k)
		pOff := p * PageSize
		if len(misses) > 0 && misses[len(misses)-1].Off+misses[len(misses)-1].Len == pOff {
			misses[len(misses)-1].Len += PageSize
		} else {
			misses = append(misses, Extent{Off: pOff, Len: PageSize})
		}
	}
	return misses
}

// Contains reports whether every page of the range is resident, without
// touching LRU state.
func (pc *PageCache) Contains(dev uint32, off, n int64) bool {
	if n <= 0 {
		return true
	}
	for p := off / PageSize; p <= (off+n-1)/PageSize; p++ {
		if _, ok := pc.pages[pageKey{dev, p}]; !ok {
			return false
		}
	}
	return true
}

// insert adds a page, evicting the LRU page if at capacity.
func (pc *PageCache) insert(k pageKey) {
	if int64(pc.lru.Len()) >= pc.capPages {
		back := pc.lru.Back()
		if back != nil {
			delete(pc.pages, back.Value.(pageKey))
			pc.lru.Remove(back)
		}
	}
	pc.pages[k] = pc.lru.PushFront(k)
}

// Len returns the number of resident pages.
func (pc *PageCache) Len() int { return pc.lru.Len() }

// ---------------------------------------------------------------------------
// CPU cost model.

// CPUModel holds per-operation CPU costs for the boot simulator. The
// decompression rates follow the codec benchmarks in internal/compress
// (gzip ≈ 250 MB/s, lz4/lzjb ≈ 1.5 GB/s on one 2014-class core), divided
// by the same scale factor as the disk so CPU and I/O shrink together.
type CPUModel struct {
	DecompressSecPerByte map[string]float64
	// DDTLookupSec is the in-core dedup-table lookup cost per record
	// read; it grows slowly (hash + pointer chase) with table size.
	DDTLookupBaseSec   float64
	ChecksumSecPerByte float64
}

// DAS4CPU returns full-scale CPU costs.
func DAS4CPU() CPUModel {
	return CPUModel{
		DecompressSecPerByte: map[string]float64{
			"gzip6": 1 / 250e6,
			"gzip9": 1 / 250e6,
			"lzjb":  1 / 1500e6,
			"lz4":   1 / 1800e6,
			"null":  0,
		},
		DDTLookupBaseSec:   2e-6,
		ChecksumSecPerByte: 1 / 2000e6,
	}
}

// ScaledCPU divides throughput-type costs by factor, matching
// ScaledModel.
func ScaledCPU(factor float64) CPUModel {
	m := DAS4CPU()
	for k := range m.DecompressSecPerByte {
		m.DecompressSecPerByte[k] *= factor
	}
	m.DDTLookupBaseSec *= factor
	m.ChecksumSecPerByte *= factor
	return m
}

// DecompressSec returns the CPU seconds to decompress n logical bytes of
// the named codec.
func (m CPUModel) DecompressSec(codec string, n int64) float64 {
	return m.DecompressSecPerByte[codec] * float64(n)
}

// DDTLookupSec returns the lookup cost given the current table size;
// larger tables walk longer hash chains and miss CPU caches more.
func (m CPUModel) DDTLookupSec(entries int64) float64 {
	cost := m.DDTLookupBaseSec
	for e := int64(1 << 16); e < entries; e <<= 2 {
		cost += m.DDTLookupBaseSec / 2
	}
	return cost
}
