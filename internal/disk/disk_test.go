package disk

import (
	"testing"
	"testing/quick"
)

func TestDiskSequentialReadsAvoidSeeks(t *testing.T) {
	d := New(DAS4Model())
	t1 := d.Read(10<<30, 1<<20)       // long seek from parked head
	t2 := d.Read(10<<30+1<<20, 1<<20) // head is already there
	if t2 >= t1 {
		t.Fatalf("sequential read (%g) should be cheaper than seeking read (%g)", t2, t1)
	}
	if d.LongSeeks != 1 {
		t.Fatalf("long seeks = %d, want exactly the first", d.LongSeeks)
	}
}

func TestDiskRandomReadsSeek(t *testing.T) {
	d := New(DAS4Model())
	d.Read(0, 4096)
	tRand := d.Read(10<<30, 4096) // 10 GB away
	if tRand <= float64(4096)/DAS4Model().ReadBps {
		t.Fatal("long-distance read must include seek cost")
	}
	if d.LongSeeks != 1 {
		t.Fatalf("long seeks = %d, want 1", d.LongSeeks)
	}
}

func TestDiskShortSeek(t *testing.T) {
	m := DAS4Model()
	d := New(m)
	d.Read(0, 4096)
	d.Read(1<<20, 4096) // within ShortSeekBytes
	if d.ShortSeeks != 1 || d.LongSeeks != 0 {
		t.Fatalf("short=%d long=%d", d.ShortSeeks, d.LongSeeks)
	}
}

func TestDiskAccounting(t *testing.T) {
	d := New(DAS4Model())
	d.Read(0, 1000)
	d.Write(5000, 2000)
	if d.BytesRead != 1000 || d.BytesWritten != 2000 || d.Reads != 1 || d.Writes != 1 {
		t.Fatalf("counters: %+v", d)
	}
	if d.BusySec <= 0 {
		t.Fatal("busy time not accumulated")
	}
	d.Reset()
	if d.BusySec != 0 || d.BytesRead != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestScaledModelPreservesRatios(t *testing.T) {
	base, scaled := DAS4Model(), ScaledModel(100)
	if scaled.ReadBps*100 != base.ReadBps {
		t.Fatal("read rate not scaled")
	}
	if scaled.SeekSec != base.SeekSec*100 {
		t.Fatal("seek not scaled")
	}
}

func TestPageCacheHitsAndMisses(t *testing.T) {
	pc := NewPageCache(1 << 20)
	m1 := pc.Access(1, 0, 64<<10) // cold: one coalesced 64 KB miss
	if len(m1) != 1 || m1[0].Off != 0 || m1[0].Len != 64<<10 {
		t.Fatalf("cold access misses: %v", m1)
	}
	m2 := pc.Access(1, 0, 64<<10) // warm: no misses
	if len(m2) != 0 {
		t.Fatalf("warm access missed: %v", m2)
	}
	if pc.Hits != 16 || pc.Misses != 16 {
		t.Fatalf("hits=%d misses=%d", pc.Hits, pc.Misses)
	}
}

func TestPageCachePartialOverlap(t *testing.T) {
	pc := NewPageCache(1 << 20)
	pc.Access(1, 0, 8192)         // pages 0,1
	m := pc.Access(1, 4096, 8192) // page 1 hit, page 2 miss
	if len(m) != 1 || m[0].Off != 8192 || m[0].Len != PageSize {
		t.Fatalf("overlap misses: %v", m)
	}
}

func TestPageCacheDeviceIsolation(t *testing.T) {
	pc := NewPageCache(1 << 20)
	pc.Access(1, 0, 4096)
	if len(pc.Access(2, 0, 4096)) != 1 {
		t.Fatal("different devices must not share pages")
	}
}

func TestPageCacheEviction(t *testing.T) {
	pc := NewPageCache(4 * PageSize)
	pc.Access(1, 0, 4*PageSize) // fills cache: pages 0..3
	pc.Access(1, 0, PageSize)   // touch page 0 (now MRU)
	pc.Access(1, 4*PageSize, PageSize)
	// Page 1 was LRU and must have been evicted; page 0 survives.
	if !pc.Contains(1, 0, PageSize) {
		t.Fatal("MRU page evicted")
	}
	if pc.Contains(1, PageSize, PageSize) {
		t.Fatal("LRU page not evicted")
	}
	if pc.Len() != 4 {
		t.Fatalf("cache holds %d pages, cap 4", pc.Len())
	}
}

func TestPageCacheMissCoalescing(t *testing.T) {
	// Property: miss extents are disjoint, sorted, page-aligned, and
	// cover exactly the non-resident pages of the range.
	f := func(off uint16, n uint16, warm uint16, wn uint16) bool {
		pc := NewPageCache(1 << 30)
		pc.Access(7, int64(warm), int64(wn))
		misses := pc.Access(7, int64(off), int64(n))
		var prevEnd int64 = -1
		var total int64
		for _, e := range misses {
			if e.Off%PageSize != 0 || e.Len%PageSize != 0 || e.Len == 0 {
				return false
			}
			if e.Off <= prevEnd {
				return false // overlapping or unsorted or uncoalesced
			}
			prevEnd = e.Off + e.Len - 1
			total += e.Len
		}
		if n == 0 {
			return len(misses) == 0
		}
		span := ((int64(off)+int64(n)-1)/PageSize - int64(off)/PageSize + 1) * PageSize
		return total <= span
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCPUModel(t *testing.T) {
	cpu := DAS4CPU()
	if cpu.DecompressSec("gzip6", 250e6) < 0.9 {
		t.Fatal("gzip decompress rate wrong")
	}
	if cpu.DecompressSec("null", 1e9) != 0 {
		t.Fatal("null codec should be free")
	}
	small := cpu.DDTLookupSec(1000)
	big := cpu.DDTLookupSec(100_000_000)
	if big <= small {
		t.Fatal("bigger tables must cost more per lookup")
	}
	scaled := ScaledCPU(10)
	if scaled.DecompressSec("gzip6", 100) <= cpu.DecompressSec("gzip6", 100) {
		t.Fatal("scaled CPU should be slower")
	}
}
