// Package disk models the I/O path costs behind the paper's boot-time
// measurements (Fig 11): a rotational disk with seek and transfer costs,
// an OS page cache with LRU eviction over 4 KB pages, and the CPU costs
// of decompression and dedup-table lookups.
//
// Times are simulated seconds, not wall-clock: the corpus is scaled down
// from the paper's multi-GB images, so the disk model is scaled down with
// it (see ScaledModel) to keep boot times in the paper's 10–45 s range
// while preserving every relative effect — seek amplification from
// post-dedup scattering, the page-cache prefetch boost of 64 KB cluster
// reads, and decompression overhead.
package disk

import "fmt"

// Model is a disk's cost parameters.
type Model struct {
	// SeekSec is the average seek + rotational latency for a long seek.
	SeekSec float64
	// ShortSeekSec is charged when the head moves less than
	// ShortSeekBytes (track-to-track).
	ShortSeekSec   float64
	ShortSeekBytes int64
	// ReadBps / WriteBps are sequential transfer rates in bytes/second.
	ReadBps  float64
	WriteBps float64
}

// DAS4Model approximates one DAS-4/VU node's software-RAID-0 pair of
// 7200 RPM SATA disks at full scale: 8 ms average seek, 0.5 ms
// track-to-track, 200 MB/s sequential.
func DAS4Model() Model {
	return Model{
		SeekSec:        0.008,
		ShortSeekSec:   0.0005,
		ShortSeekBytes: 2 << 20,
		ReadBps:        200e6,
		WriteBps:       180e6,
	}
}

// ScaledModel shrinks the transfer rate of the DAS-4 model by the given
// factor while keeping seek times absolute per operation, matching a
// corpus whose objects are `factor`× smaller than the paper's: the
// number of seeks per boot scales with object size ÷ read size, so seeks
// are scaled implicitly by the smaller trace, and transfer time is
// preserved by slowing the disk.
func ScaledModel(factor float64) Model {
	m := DAS4Model()
	m.ReadBps /= factor
	m.WriteBps /= factor
	m.SeekSec *= factor
	m.ShortSeekSec *= factor
	// The near-seek window shrinks with the address space: what counts as
	// "nearby" on a full-size disk maps to proportionally fewer bytes of
	// the scaled corpus.
	m.ShortSeekBytes = int64(float64(m.ShortSeekBytes) / factor)
	if m.ShortSeekBytes < 4096 {
		m.ShortSeekBytes = 4096
	}
	return m
}

// Disk is a stateful simulated disk: it tracks head position and
// accumulates service time and counters.
type Disk struct {
	m    Model
	head int64

	BusySec      float64
	Reads        int64
	Writes       int64
	LongSeeks    int64
	ShortSeeks   int64
	BytesRead    int64
	BytesWritten int64
}

// New returns a disk with the given model, head at address 0.
func New(m Model) *Disk {
	return &Disk{m: m}
}

// seek moves the head to addr and returns the seek cost.
func (d *Disk) seek(addr int64) float64 {
	dist := addr - d.head
	if dist < 0 {
		dist = -dist
	}
	d.head = addr
	switch {
	case dist == 0:
		return 0
	case dist <= d.m.ShortSeekBytes:
		d.ShortSeeks++
		return d.m.ShortSeekSec
	default:
		d.LongSeeks++
		return d.m.SeekSec
	}
}

// Read services a read of n bytes at addr and returns its duration in
// simulated seconds.
func (d *Disk) Read(addr, n int64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("disk: negative read %d", n))
	}
	t := d.seek(addr) + float64(n)/d.m.ReadBps
	d.head = addr + n
	d.Reads++
	d.BytesRead += n
	d.BusySec += t
	return t
}

// Write services a write of n bytes at addr.
func (d *Disk) Write(addr, n int64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("disk: negative write %d", n))
	}
	t := d.seek(addr) + float64(n)/d.m.WriteBps
	d.head = addr + n
	d.Writes++
	d.BytesWritten += n
	d.BusySec += t
	return t
}

// Reset clears counters and parks the head, keeping the model.
func (d *Disk) Reset() {
	*d = Disk{m: d.m}
}
