package ctlplane

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/peer"
	"repro/internal/version"
	"repro/internal/workload"
	"repro/internal/zvol"
)

// Options shape one deployment: the corpus, the cluster, and the core
// config knobs the control plane exposes. squirrelctl builds a Local
// from its flags for in-process runs; squirreld builds the identical
// Local from the same flags and serves it — which is what makes the
// two modes report-for-report equivalent.
type Options struct {
	// Images is the corpus size (number of VM images).
	Images int
	// Nodes is the compute-node count (storage nodes are fixed at 4).
	Nodes int
	// Peers enables the peer block exchange with default policy and
	// per-peer circuit breakers.
	Peers bool
	// Traced enables span tracing and unified telemetry.
	Traced bool
	// Index selects the content-index implementation behind the peer
	// exchange: "" or "central" for the paper-faithful manager registry,
	// "gossip" for the decentralized TTL-lease directory.
	Index string
	// BootLatency is core.Config.BootLatency (wall-clock device wait per
	// boot; zero disables).
	BootLatency time.Duration
	// ObsRingSize bounds the completed-span ring when tracing is on
	// (obs.DefaultRingSize when <= 0).
	ObsRingSize int
	// SampleEvery head-samples root operations when tracing is on: only
	// every Nth operation is traced (0 or 1 traces everything).
	SampleEvery int
}

// Local is the in-process Session: a deployment owned by the calling
// process, driven by direct function calls.
type Local struct {
	sq   *core.Squirrel
	cl   *cluster.Cluster
	repo *corpus.Repository
	byID map[string]*corpus.Image
}

var _ Session = (*Local)(nil)

// NewLocal builds a deployment from opts: a seeded corpus scaled to
// opts.Images, a GigE cluster with 4 storage and opts.Nodes compute
// nodes, a 2×2-striped PFS, and a core.Squirrel configured per the
// flags. Everything is deterministic in opts.
func NewLocal(opts Options) (*Local, error) {
	if opts.Images < 1 || opts.Nodes < 1 {
		return nil, fmt.Errorf("ctlplane: need at least one image and one node")
	}
	spec := corpus.DefaultSpec().Scale(float64(opts.Images)/607, 0.25)
	repo, err := corpus.New(spec)
	if err != nil {
		return nil, err
	}
	if len(repo.Images) > opts.Images {
		repo.Images = repo.Images[:opts.Images]
	}
	cl, err := cluster.New(cluster.GigE, 4, opts.Nodes)
	if err != nil {
		return nil, err
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	switch opts.Index {
	case "", core.IndexCentral.String():
		// The default: central registry.
	case core.IndexGossip.String():
		cfg.Index = core.IndexGossip
		// Zero-valued gossip.Config: the directory applies its own
		// defaults (fanout 2, TTL 30s, 2 owners, wall clock).
	default:
		return nil, fmt.Errorf("ctlplane: unknown index mode %q (want central or gossip)", opts.Index)
	}
	if opts.Peers {
		cfg.Peer = peer.DefaultPolicy()
		cfg.Peer.Breaker = peer.DefaultBreakerPolicy()
	}
	if opts.Traced {
		cfg.Obs = obs.NewWith(obs.Config{RingSize: opts.ObsRingSize, SampleEvery: opts.SampleEvery})
	}
	cfg.ObsRingSize = opts.ObsRingSize
	cfg.BootLatency = opts.BootLatency
	sq, err := core.New(cfg, cl, pfs)
	if err != nil {
		return nil, err
	}
	l := &Local{sq: sq, cl: cl, repo: repo, byID: make(map[string]*corpus.Image, len(repo.Images))}
	for _, im := range repo.Images {
		l.byID[im.ID] = im
	}
	return l, nil
}

// Squirrel exposes the deployment for tests and the daemon's logs.
func (l *Local) Squirrel() *core.Squirrel { return l.sq }

// Info implements Session.
func (l *Local) Info() (Info, error) {
	info := Info{
		Version:    version.String(),
		CacheBytes: l.repo.CacheBytes(),
	}
	for _, im := range l.repo.Images {
		info.Images = append(info.Images, im.ID)
	}
	for _, n := range l.cl.Compute {
		info.ComputeNodes = append(info.ComputeNodes, n.ID)
	}
	return info, nil
}

// Register implements Session, resolving the image ID against the
// deployment's own corpus — in daemon mode the image content never
// crosses the wire, mirroring the paper's deployment where VMIs are
// uploaded to the PFS out of band and registration is a control call.
func (l *Local) Register(ctx context.Context, imageID string, at time.Time) (core.RegisterReport, error) {
	im, ok := l.byID[imageID]
	if !ok {
		return core.RegisterReport{}, fmt.Errorf("%w: %s", core.ErrUnknownImage, imageID)
	}
	return l.sq.Register(ctx, core.RegisterRequest{Image: im, At: at})
}

// Boot implements Session.
func (l *Local) Boot(ctx context.Context, req core.BootRequest) (core.BootReport, error) {
	return l.sq.Boot(ctx, req)
}

// SyncNode implements Session.
func (l *Local) SyncNode(ctx context.Context, nodeID string) (core.SyncReport, error) {
	return l.sq.SyncNode(ctx, nodeID)
}

// SetOnline implements Session.
func (l *Local) SetOnline(nodeID string, up bool) error { return l.sq.SetOnline(nodeID, up) }

// DropReplica implements Session.
func (l *Local) DropReplica(nodeID, imageID string) error { return l.sq.DropReplica(nodeID, imageID) }

// CrashNode implements Session.
func (l *Local) CrashNode(nodeID string, at time.Time) error { return l.sq.CrashNode(nodeID, at) }

// RestartNode implements Session.
func (l *Local) RestartNode(nodeID string, at time.Time) (core.RecoveryReport, error) {
	return l.sq.RestartNode(nodeID, at)
}

// InjectRot implements Session.
func (l *Local) InjectRot(nodeID string) (int, error) {
	refs, err := l.sq.InjectRot(nodeID)
	return len(refs), err
}

// SetFaults implements Session.
func (l *Local) SetFaults(plan fault.Plan) error {
	inj, err := fault.New(plan)
	if err != nil {
		return err
	}
	l.sq.SetFaults(inj)
	return nil
}

// ScrubAll implements Session.
func (l *Local) ScrubAll(ctx context.Context, at time.Time) (map[string]zvol.ScrubReport, error) {
	return l.sq.ScrubAll(ctx, at)
}

// ResilverAll implements Session.
func (l *Local) ResilverAll(ctx context.Context, at time.Time) ([]core.ResilverReport, error) {
	return l.sq.ResilverAll(ctx, at)
}

// GarbageCollect implements Session.
func (l *Local) GarbageCollect(at time.Time) (int, error) {
	return l.sq.GarbageCollect(at), nil
}

// Stats implements Session.
func (l *Local) Stats() (core.DeploymentStats, error) { return l.sq.Stats(), nil }

// Health implements Session.
func (l *Local) Health() ([]core.NodeStatus, error) { return l.sq.Health(), nil }

// PeerCounters implements Session.
func (l *Local) PeerCounters() (string, error) {
	return l.sq.PeerIndex().Counters().String(), nil
}

// Telemetry implements Session.
func (l *Local) Telemetry() (TelemetryDump, error) {
	tel := l.sq.Telemetry()
	if tel == nil {
		return TelemetryDump{}, fmt.Errorf("ctlplane: telemetry disabled on this deployment (enable tracing)")
	}
	snap := tel.Snapshot()
	return TelemetryDump{JSON: snap.JSON(), Prometheus: snap.Prometheus()}, nil
}

// TraceSlowest implements Session.
func (l *Local) TraceSlowest(kind string) (string, error) {
	tel := l.sq.Telemetry()
	if tel == nil {
		return "", fmt.Errorf("ctlplane: telemetry disabled on this deployment (enable tracing)")
	}
	// SlowestSpan (not SlowestRoot): under a daemon, operations live as
	// children of rpc.dispatch roots, so the search walks whole trees.
	sp := tel.SlowestSpan(kind)
	if sp == nil {
		return "", fmt.Errorf("no completed %q operation in the trace ring (kinds: register, boot, scrub, resilver, sync, gc, restart)", kind)
	}
	return obs.RenderTree(sp), nil
}

// Workload implements Session: it runs the workload driver in-process
// over this deployment's full catalog and node set, publishing the
// result into the deployment's telemetry (when tracing is on) and
// stamping the summary with the serving index implementation.
func (l *Local) Workload(ctx context.Context, args WorkloadArgs) (workload.Summary, error) {
	info, err := l.Info()
	if err != nil {
		return workload.Summary{}, err
	}
	cfg := workload.Config{
		Arrivals:   args.Arrivals,
		Seed:       args.Seed,
		Boots:      args.Boots,
		Images:     info.Images,
		Nodes:      info.ComputeNodes,
		Tenants:    args.Tenants,
		ZipfS:      args.ZipfS,
		ColdFrac:   args.ColdFrac,
		Mode:       args.Mode,
		Slots:      args.Slots,
		DeviceMs:   args.DeviceMs,
		ShedMs:     args.ShedMs,
		HorizonSec: args.HorizonSec,
		Workers:    args.Workers,
	}
	sum, err := workload.Run(ctx, l, cfg, l.sq.Telemetry())
	if err != nil {
		return workload.Summary{}, err
	}
	sum.Index = l.sq.Stats().IndexSource
	return sum, nil
}

// ResetNetCounters implements Session.
func (l *Local) ResetNetCounters() error {
	l.cl.ResetCounters()
	return nil
}

// ComputeRx implements Session.
func (l *Local) ComputeRx() (int64, error) { return l.cl.ComputeRxTotal(), nil }

// Close implements Session; in-process deployments have nothing to
// release.
func (l *Local) Close() error { return nil }
