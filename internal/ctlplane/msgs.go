package ctlplane

import (
	"time"

	"repro/internal/obs"
)

// Wire message bodies. Each wireproto frame type carries one of these,
// JSON-encoded: the framing is binary (internal/wireproto), the bodies
// are self-describing so report structs can grow fields without a
// protocol version bump. Both internal/wireclient and internal/daemon
// marshal against these definitions; keeping them in one place is what
// makes the two ends agree.
//
// Frame type ↔ body mapping:
//
//	TInfo        — (no request body)            → Info
//	TRegister    — RegisterArgs                 → core.RegisterReport
//	TBoot        — core.BootRequest             → core.BootReport
//	TSync        — NodeArgs                     → core.SyncReport
//	THealth      — (none)                       → []core.NodeStatus
//	TTelemetry   — (none)                       → TelemetryDump
//	TPeers       — (none)                       → PeersReply
//	TStats       — (none)                       → core.DeploymentStats
//	TSetOnline   — OnlineArgs                   → (none)
//	TDropReplica — DropArgs                     → (none)
//	TCrash       — NodeAtArgs                   → (none)
//	TRestart     — NodeAtArgs                   → core.RecoveryReport
//	TRot         — NodeArgs                     → RotReply
//	TSetFaults   — fault.Plan                   → (none)
//	TScrubAll    — AtArgs                       → map[string]zvol.ScrubReport
//	TResilverAll — AtArgs                       → []core.ResilverReport
//	TGC          — AtArgs                       → CountReply
//	TTrace       — TraceArgs                    → TextReply
//	TNetReset    — (none)                       → (none)
//	TNetRx       — (none)                       → BytesReply
//	TWatch       — WatchArgs                    → WatchUpdate stream frames
//	                                              (FlagStream), then an
//	                                              empty final response
//	TTraceTree   — TraceTreeArgs                → TraceTreeReply
//	TWorkload    — WorkloadArgs                 → workload.Summary
type (
	// RegisterArgs asks for one registration by corpus image ID.
	RegisterArgs struct {
		Image string
		At    time.Time
	}
	// NodeArgs names a node (sync, rot).
	NodeArgs struct {
		Node string
	}
	// NodeAtArgs names a node and a time (crash, restart).
	NodeAtArgs struct {
		Node string
		At   time.Time
	}
	// OnlineArgs flips a node's availability.
	OnlineArgs struct {
		Node string
		Up   bool
	}
	// DropArgs removes one replica object.
	DropArgs struct {
		Node  string
		Image string
	}
	// AtArgs carries a timestamp (scrub, resilver, GC).
	AtArgs struct {
		At time.Time
	}
	// TraceArgs names an operation kind.
	TraceArgs struct {
		Kind string
	}

	// PeersReply is the rendered peer counter set.
	PeersReply struct {
		Counters string
	}
	// RotReply counts blocks rotted.
	RotReply struct {
		Blocks int
	}
	// CountReply is a bare count (GC).
	CountReply struct {
		N int
	}
	// BytesReply is a bare byte count (NIC totals).
	BytesReply struct {
		Bytes int64
	}
	// TextReply is a rendered text blob (span trees).
	TextReply struct {
		Text string
	}

	// WatchArgs shapes a streaming telemetry watch: one WatchUpdate per
	// Every interval, Count updates total. Count must be ≥ 1 so a wire
	// stream always terminates; Every defaults to a second when zero.
	WatchArgs struct {
		Every time.Duration
		Count int
	}
	// WatchOp is one op kind's row in a watch update. Count/Errors are
	// cumulative; Delta is the count change since the previous update
	// of this watch; quantiles are cumulative wall milliseconds.
	WatchOp struct {
		Kind   string
		Count  int64
		Delta  int64
		Errors int64
		P50Ms  float64
		P99Ms  float64
	}
	// WatchUpdate is one periodic telemetry delta: per-op rows (sorted
	// by kind), the counters that changed since the previous update
	// (cumulative values), and the gossip directory's round/stale
	// gauges. Seq counts updates within the watch, starting at 1.
	WatchUpdate struct {
		Seq           int
		SpansRecorded uint64
		Ops           []WatchOp
		Counters      map[string]int64
		GossipRound   int64
		GossipStale   int
	}

	// TraceTreeArgs asks for the daemon-side dispatch trees recorded
	// under one client trace ID.
	TraceTreeArgs struct {
		TraceID uint64
	}
	// TraceTreeReply carries the serialized dispatch trees, oldest
	// first. Each tree's RemoteParent names the client span it belongs
	// under.
	TraceTreeReply struct {
		Trees []*obs.TreeDump
	}

	// WorkloadArgs shapes one workload-engine scenario driven against the
	// session's deployment. The catalog and node set come from the
	// deployment itself; these are the knobs of workload.Config a remote
	// caller may turn. Zero values take workload's defaults.
	WorkloadArgs struct {
		Arrivals   string // poisson | diurnal | flash ("" = poisson)
		Seed       int64
		Boots      int // required: total arrivals to schedule
		Tenants    int
		ZipfS      float64
		ColdFrac   float64
		Mode       string // logical ("" = default) | wall
		Slots      int
		DeviceMs   float64
		ShedMs     float64
		HorizonSec float64
		Workers    int
	}
)
