package ctlplane

import "time"

// Wire message bodies. Each wireproto frame type carries one of these,
// JSON-encoded: the framing is binary (internal/wireproto), the bodies
// are self-describing so report structs can grow fields without a
// protocol version bump. Both internal/wireclient and internal/daemon
// marshal against these definitions; keeping them in one place is what
// makes the two ends agree.
//
// Frame type ↔ body mapping:
//
//	TInfo        — (no request body)            → Info
//	TRegister    — RegisterArgs                 → core.RegisterReport
//	TBoot        — core.BootRequest             → core.BootReport
//	TSync        — NodeArgs                     → core.SyncReport
//	THealth      — (none)                       → []core.NodeStatus
//	TTelemetry   — (none)                       → TelemetryDump
//	TPeers       — (none)                       → PeersReply
//	TStats       — (none)                       → core.DeploymentStats
//	TSetOnline   — OnlineArgs                   → (none)
//	TDropReplica — DropArgs                     → (none)
//	TCrash       — NodeAtArgs                   → (none)
//	TRestart     — NodeAtArgs                   → core.RecoveryReport
//	TRot         — NodeArgs                     → RotReply
//	TSetFaults   — fault.Plan                   → (none)
//	TScrubAll    — AtArgs                       → map[string]zvol.ScrubReport
//	TResilverAll — AtArgs                       → []core.ResilverReport
//	TGC          — AtArgs                       → CountReply
//	TTrace       — TraceArgs                    → TextReply
//	TNetReset    — (none)                       → (none)
//	TNetRx       — (none)                       → BytesReply
type (
	// RegisterArgs asks for one registration by corpus image ID.
	RegisterArgs struct {
		Image string
		At    time.Time
	}
	// NodeArgs names a node (sync, rot).
	NodeArgs struct {
		Node string
	}
	// NodeAtArgs names a node and a time (crash, restart).
	NodeAtArgs struct {
		Node string
		At   time.Time
	}
	// OnlineArgs flips a node's availability.
	OnlineArgs struct {
		Node string
		Up   bool
	}
	// DropArgs removes one replica object.
	DropArgs struct {
		Node  string
		Image string
	}
	// AtArgs carries a timestamp (scrub, resilver, GC).
	AtArgs struct {
		At time.Time
	}
	// TraceArgs names an operation kind.
	TraceArgs struct {
		Kind string
	}

	// PeersReply is the rendered peer counter set.
	PeersReply struct {
		Counters string
	}
	// RotReply counts blocks rotted.
	RotReply struct {
		Blocks int
	}
	// CountReply is a bare count (GC).
	CountReply struct {
		N int
	}
	// BytesReply is a bare byte count (NIC totals).
	BytesReply struct {
		Bytes int64
	}
	// TextReply is a rendered text blob (span trees).
	TextReply struct {
		Text string
	}
)
