// Package ctlplane defines Squirrel's control-plane operation surface:
// the set of deployment operations squirrelctl drives, abstracted so
// the same script runs either against an in-process deployment (Local)
// or against a live squirreld over TCP (internal/wireclient.Client).
//
// The package also owns the wire message schemas (msgs.go) and the
// mapping between the core sentinel-error family and wireproto's
// numeric codes (errors.go), so both endpoints of the protocol agree on
// what travels inside the frames that internal/wireproto moves.
package ctlplane

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workload"
	"repro/internal/zvol"
)

// Info describes the deployment a session is attached to: what a
// client must learn before it can script anything, since in daemon mode
// the corpus and cluster live on the server.
type Info struct {
	// Version is the serving side's build/protocol version string.
	Version string
	// Images lists registered-or-registerable image IDs in corpus order.
	Images []string
	// ComputeNodes lists compute node IDs in cluster order.
	ComputeNodes []string
	// CacheBytes is the corpus-wide sum of boot working-set sizes.
	CacheBytes int64
}

// TelemetryDump is one unified telemetry snapshot in both export
// encodings.
type TelemetryDump struct {
	JSON       string
	Prometheus string
}

// Session is one control-plane conversation with a Squirrel
// deployment. Local implements it by direct calls; wireclient.Client
// implements it by typed frames to a squirreld. Reports round-trip the
// wire byte-identically: for the same seeded deployment and script,
// both implementations return equal values, and failed operations
// return errors whose errors.Is identity (core.ErrUnknownImage &c) is
// preserved.
//
// Methods without a context are quick state reads/flips; methods that
// move data take one and honor cancellation like the core API does.
type Session interface {
	// Info describes the deployment (image IDs, node IDs, versions).
	Info() (Info, error)

	// Register registers the corpus image with the given ID.
	Register(ctx context.Context, imageID string, at time.Time) (core.RegisterReport, error)
	// Boot starts one VM.
	Boot(ctx context.Context, req core.BootRequest) (core.BootReport, error)
	// SyncNode runs offline-propagation catch-up on one node.
	SyncNode(ctx context.Context, nodeID string) (core.SyncReport, error)

	// SetOnline flips a node's administrative availability.
	SetOnline(nodeID string, up bool) error
	// DropReplica removes one image's cache object from one node.
	DropReplica(nodeID, imageID string) error

	// CrashNode fails a node at the given time.
	CrashNode(nodeID string, at time.Time) error
	// RestartNode brings a crashed node back, running the restart audit.
	RestartNode(nodeID string, at time.Time) (core.RecoveryReport, error)
	// InjectRot plants at-rest damage on a node; returns blocks rotted.
	InjectRot(nodeID string) (int, error)
	// SetFaults installs a seeded fault plan on the deployment.
	SetFaults(plan fault.Plan) error
	// ScrubAll verifies every replica, quarantining damage.
	ScrubAll(ctx context.Context, at time.Time) (map[string]zvol.ScrubReport, error)
	// ResilverAll repairs quarantined damage on every node.
	ResilverAll(ctx context.Context, at time.Time) ([]core.ResilverReport, error)

	// GarbageCollect destroys snapshots past retention; returns count.
	GarbageCollect(at time.Time) (int, error)
	// Stats reports deployment-wide statistics.
	Stats() (core.DeploymentStats, error)
	// Health reports per-node lifecycle state.
	Health() ([]core.NodeStatus, error)
	// PeerCounters renders the peer exchange's counter set.
	PeerCounters() (string, error)
	// Telemetry exports the unified telemetry snapshot.
	Telemetry() (TelemetryDump, error)
	// TraceSlowest renders the span tree of the slowest op of a kind.
	TraceSlowest(kind string) (string, error)
	// Watch streams args.Count periodic telemetry deltas, one per
	// args.Every interval, calling fn for each. A non-nil error from fn
	// ends the watch early and is returned; ctx cancellation ends it
	// with ctx's error. Over the wire the updates ride FlagStream
	// frames on the existing connection.
	Watch(ctx context.Context, args WatchArgs, fn func(WatchUpdate) error) error

	// Workload drives one workload-engine scenario (arrival process,
	// popularity skew, clock mode per args) against this deployment and
	// returns the streaming summary. The scenario runs where the
	// deployment lives: over the wire only args and the fixed-size
	// summary travel, never the million boots between them.
	Workload(ctx context.Context, args WorkloadArgs) (workload.Summary, error)

	// ResetNetCounters zeroes every node's NIC counters.
	ResetNetCounters() error
	// ComputeRx sums received bytes across compute nodes.
	ComputeRx() (int64, error)

	// Close releases the session (closes the daemon connection; a no-op
	// for in-process deployments).
	Close() error
}
