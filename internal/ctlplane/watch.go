package ctlplane

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
)

// watcher folds successive telemetry snapshots into WatchUpdate deltas:
// per-op count deltas against the previous update and only the counters
// that moved. One watcher serves one watch stream; the first update's
// deltas are against zero, i.e. cumulative.
type watcher struct {
	seq      int
	prevOps  map[string]int64
	prevCtrs map[string]int64
}

func newWatcher() *watcher {
	return &watcher{prevOps: make(map[string]int64), prevCtrs: make(map[string]int64)}
}

// update builds the next WatchUpdate from a snapshot and the gossip
// gauges. Snapshot.Ops is already kind-sorted, so rows come out in a
// stable order.
func (w *watcher) update(snap obs.Snapshot, gossipRound int64, gossipStale int) WatchUpdate {
	w.seq++
	u := WatchUpdate{
		Seq:           w.seq,
		SpansRecorded: snap.SpansRecorded,
		GossipRound:   gossipRound,
		GossipStale:   gossipStale,
	}
	for _, op := range snap.Ops {
		u.Ops = append(u.Ops, WatchOp{
			Kind:   op.Kind,
			Count:  op.Count,
			Delta:  op.Count - w.prevOps[op.Kind],
			Errors: op.Errors,
			P50Ms:  op.P50Ms,
			P99Ms:  op.P99Ms,
		})
		w.prevOps[op.Kind] = op.Count
	}
	for name, v := range snap.Counters {
		if v != w.prevCtrs[name] {
			if u.Counters == nil {
				u.Counters = make(map[string]int64)
			}
			u.Counters[name] = v
			w.prevCtrs[name] = v
		}
	}
	return u
}

// Watch implements Session: args.Count periodic deltas, one per
// args.Every (default one second), built from live snapshots of the
// deployment's telemetry. The daemon serves its TWatch stream by
// delegating here, so both transports emit identical update schemas.
func (l *Local) Watch(ctx context.Context, args WatchArgs, fn func(WatchUpdate) error) error {
	tel := l.sq.Telemetry()
	if tel == nil {
		return fmt.Errorf("ctlplane: telemetry disabled on this deployment (enable tracing)")
	}
	if args.Count < 1 {
		return fmt.Errorf("ctlplane: watch needs Count >= 1")
	}
	every := args.Every
	if every <= 0 {
		every = time.Second
	}
	w := newWatcher()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for i := 0; i < args.Count; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
		stats := l.sq.Stats()
		if err := fn(w.update(tel.Snapshot(), stats.GossipRound, stats.GossipStale)); err != nil {
			return err
		}
	}
	return nil
}
