package ctlplane

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/wireproto"
)

// ErrDraining is returned for requests that reach a daemon after it
// began graceful shutdown. Transient: the operator is rolling the
// daemon; retry against the replacement.
var ErrDraining = errors.New("ctlplane: server draining")

// codes pairs each sentinel the control plane can carry with its wire
// code, most-specific first. CodeFor walks it with errors.Is; the
// inverse map seeds ErrFromCode.
var codes = []struct {
	code uint16
	err  error
}{
	{wireproto.CodeUnknownImage, core.ErrUnknownImage},
	{wireproto.CodeUnknownNode, core.ErrUnknownNode},
	{wireproto.CodeNodeOffline, core.ErrNodeOffline},
	{wireproto.CodeOverloaded, core.ErrOverloaded},
	{wireproto.CodeRegistered, core.ErrRegistered},
	{wireproto.CodeUnreachable, core.ErrPartitioned},
	{wireproto.CodeDeadline, context.DeadlineExceeded},
	{wireproto.CodeCanceled, context.Canceled},
	{wireproto.CodeDraining, ErrDraining},
}

// CodeFor maps an error chain onto its wire code. Everything outside
// the sentinel family is CodeGeneric: the message still crosses the
// wire, only the errors.Is identity is dropped.
func CodeFor(err error) uint16 {
	for _, c := range codes {
		if errors.Is(err, c.err) {
			return c.code
		}
	}
	return wireproto.CodeGeneric
}

// remoteError is an error reconstructed from a wire error body: the
// server-side message verbatim, unwrapping to the sentinel its code
// names so errors.Is works exactly as it would in-process.
type remoteError struct {
	msg      string
	sentinel error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }

// ErrFromCode rebuilds a client-side error from a wire error body.
func ErrFromCode(code uint16, msg string) error {
	if msg == "" {
		msg = fmt.Sprintf("squirreld error (code %d)", code)
	}
	for _, c := range codes {
		if c.code == code {
			return &remoteError{msg: msg, sentinel: c.err}
		}
	}
	return errors.New(msg)
}
