package experiments

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/boot"
	"repro/internal/corpus"
	"repro/internal/zvol"
)

func init() {
	register(Experiment{ID: "fig11", Title: "Performance of booting from deduplicated and compressed VMI caches", Run: Fig11})
	register(Experiment{ID: "fig11codec", Title: "Ablation: boot time by cVolume codec (bs=64KB)", Run: Fig11Codec})
}

// bootSizes is Fig 11's block-size axis (1 KB – 128 KB).
var bootSizes = []block.Size{
	block.Size1K, block.Size2K, block.Size4K, block.Size8K,
	block.Size16K, block.Size32K, block.Size64K, block.Size128K,
}

// bootSetup builds the corpus and a simulator scaled to it.
func bootSetup(s Scale) (*corpus.Repository, *boot.Sim, error) {
	repo, err := corpus.New(BootSpec(s))
	if err != nil {
		return nil, nil, err
	}
	var cacheSum int64
	for _, im := range repo.Images {
		cacheSum += im.CacheSize()
	}
	mean := float64(cacheSum) / float64(len(repo.Images))
	// The paper's mean boot working set is ≈134 MB (78.5 GB / 607).
	sim := boot.New(boot.DefaultConfig(134e6 / mean))
	return repo, sim, nil
}

// ccVolumeAt stores every cache of the repo in a fresh cVolume.
func ccVolumeAt(repo *corpus.Repository, bs block.Size, codec string) (*zvol.Volume, error) {
	cfg := zvol.DefaultConfig()
	cfg.BlockSize = bs
	if codec != "" {
		cfg.Codec = codec
	}
	v, err := zvol.New(cfg)
	if err != nil {
		return nil, err
	}
	for _, im := range repo.Images {
		if _, err := v.WriteObject(im.ID, im.CacheReader()); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// Fig11 measures average boot time for the four configurations over the
// block-size sweep (the three XFS baselines are flat lines, as in the
// paper).
func Fig11(s Scale) (Table, error) {
	repo, sim, err := bootSetup(s)
	if err != nil {
		return Table{}, err
	}
	baseline, err := boot.Average(repo.Images, func(im *corpus.Image) (boot.Result, error) {
		return sim.BootBaselineLocal(im), nil
	})
	if err != nil {
		return Table{}, err
	}
	cold, err := boot.Average(repo.Images, func(im *corpus.Image) (boot.Result, error) {
		return sim.BootColdCacheLocal(im), nil
	})
	if err != nil {
		return Table{}, err
	}
	warmXFS, err := boot.Average(repo.Images, func(im *corpus.Image) (boot.Result, error) {
		return sim.BootWarmCacheXFS(im), nil
	})
	if err != nil {
		return Table{}, err
	}
	xs := sizesAsFloats(bootSizes)
	zfs := make([]float64, 0, len(bootSizes))
	for _, bs := range bootSizes {
		vol, err := ccVolumeAt(repo, bs, "")
		if err != nil {
			return Table{}, err
		}
		avg, err := boot.Average(repo.Images, func(im *corpus.Image) (boot.Result, error) {
			return sim.BootWarmCacheZVol(im, vol, im.ID)
		})
		if err != nil {
			return Table{}, err
		}
		zfs = append(zfs, avg)
	}
	flat := func(v float64) []float64 {
		ys := make([]float64, len(bootSizes))
		for i := range ys {
			ys[i] = v
		}
		return ys
	}
	series := []Series{
		{Label: "warm caches - zfs (s)", X: xs, Y: zfs},
		{Label: "qcow2 - xfs (s)", X: xs, Y: flat(baseline)},
		{Label: "cold caches - xfs (s)", X: xs, Y: flat(cold)},
		{Label: "warm caches - xfs (s)", X: xs, Y: flat(warmXFS)},
	}
	t := SeriesTable("Fig 11: average boot time vs cVolume block size (KB)", "bs(KB)", series, "%.0f", "%.2f")
	t.Comment = fmt.Sprintf("paper shape: zfs U-curve with minimum at 64KB, 128KB above 64KB; warm-xfs < zfs@64K < baseline < cold")
	return t, nil
}

// Fig11Codec is the codec ablation the paper argues from (gzip6 chosen
// because extra decompression CPU does not hurt boot): average warm boot
// time at 64 KB for each codec.
func Fig11Codec(s Scale) (Table, error) {
	repo, sim, err := bootSetup(s)
	if err != nil {
		return Table{}, err
	}
	t := Table{Title: "Fig 11 ablation: warm zfs boot time by codec (bs=64KB)",
		Header: []string{"codec", "avg boot (s)", "volume data (MB)"}}
	for _, codec := range []string{"null", "lz4", "lzjb", "gzip6", "gzip9"} {
		vol, err := ccVolumeAt(repo, block.Size64K, codec)
		if err != nil {
			return Table{}, err
		}
		avg, err := boot.Average(repo.Images, func(im *corpus.Image) (boot.Result, error) {
			return sim.BootWarmCacheZVol(im, vol, im.ID)
		})
		if err != nil {
			return Table{}, err
		}
		st := vol.Stats()
		t.Rows = append(t.Rows, []string{codec, fmt.Sprintf("%.2f", avg),
			fmt.Sprintf("%.2f", float64(st.DataBytes)/(1<<20))})
	}
	t.Comment = "gzip6 trades a little CPU for the smallest volume; boot times stay flat (§4.2.3)"
	return t, nil
}
