package experiments

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/compress"
	"repro/internal/corpus"
	"repro/internal/metrics"
)

// analysisSizes is the 1 KB–1 MB sweep of Figs 2, 3, 4, and 12.
var analysisSizes = block.AllSizes

func init() {
	register(Experiment{ID: "fig2", Title: "Compression ratio of VMIs and caches with dedup and gzip6", Run: Fig2})
	register(Experiment{ID: "fig3", Title: "Compression ratio of VMI caches with different routines", Run: Fig3})
	register(Experiment{ID: "fig4", Title: "Combined compression ratio of VMIs and caches", Run: Fig4})
	register(Experiment{ID: "fig12", Title: "Cross-similarity of VMIs and caches", Run: Fig12})
	register(Experiment{ID: "tab1", Title: "Attained storage efficiency with 128 KB block size", Run: Table1})
	register(Experiment{ID: "tab2", Title: "OS diversity in Windows Azure and Amazon EC2", Run: Table2})
}

// analysisRepo builds the corpus shared by the analysis experiments.
func analysisRepo(s Scale) (*corpus.Repository, error) {
	return corpus.New(AnalysisSpec(s))
}

// Fig2 sweeps dedup ratio and gzip6 ratio over block sizes for images and
// caches.
func Fig2(s Scale) (Table, error) {
	repo, err := analysisRepo(s)
	if err != nil {
		return Table{}, err
	}
	gz := compress.MustGet("gzip6")
	imgRes, err := metrics.Sweep(metrics.ImageSources(repo), analysisSizes, gz, 0)
	if err != nil {
		return Table{}, err
	}
	cacheRes, err := metrics.Sweep(metrics.CacheSources(repo), analysisSizes, gz, 0)
	if err != nil {
		return Table{}, err
	}
	xs := sizesAsFloats(analysisSizes)
	series := []Series{
		{Label: "caches: dedup", X: xs, Y: pick(cacheRes, metrics.Result.DedupRatio)},
		{Label: "images: dedup", X: xs, Y: pick(imgRes, metrics.Result.DedupRatio)},
		{Label: "caches: gzip6", X: xs, Y: pick(cacheRes, metrics.Result.CompressionRatio)},
		{Label: "images: gzip6", X: xs, Y: pick(imgRes, metrics.Result.CompressionRatio)},
	}
	return SeriesTable("Fig 2: compression ratio vs block size (KB)", "bs(KB)", series, "%.0f", "%.2f"), nil
}

// Fig3 compares codecs on VMI caches.
func Fig3(s Scale) (Table, error) {
	repo, err := analysisRepo(s)
	if err != nil {
		return Table{}, err
	}
	caches := metrics.CacheSources(repo)
	xs := sizesAsFloats(analysisSizes)
	var series []Series
	// Dedup line first, as in the paper's Fig 3.
	dd, err := metrics.Sweep(caches, analysisSizes, nil, 0)
	if err != nil {
		return Table{}, err
	}
	series = append(series, Series{Label: "dedup", X: xs, Y: pick(dd, metrics.Result.DedupRatio)})
	for _, name := range []string{"gzip6", "gzip9", "lzjb", "lz4"} {
		res, err := metrics.Sweep(caches, analysisSizes, compress.MustGet(name), 0)
		if err != nil {
			return Table{}, err
		}
		series = append(series, Series{Label: name, X: xs, Y: pick(res, metrics.Result.CompressionRatio)})
	}
	return SeriesTable("Fig 3: cache compression ratio by routine vs block size (KB)", "bs(KB)", series, "%.0f", "%.2f"), nil
}

// Fig4 computes the combined compression ratio (CCR) curves.
func Fig4(s Scale) (Table, error) {
	repo, err := analysisRepo(s)
	if err != nil {
		return Table{}, err
	}
	gz := compress.MustGet("gzip6")
	imgRes, err := metrics.Sweep(metrics.ImageSources(repo), analysisSizes, gz, 0)
	if err != nil {
		return Table{}, err
	}
	cacheRes, err := metrics.Sweep(metrics.CacheSources(repo), analysisSizes, gz, 0)
	if err != nil {
		return Table{}, err
	}
	xs := sizesAsFloats(analysisSizes)
	series := []Series{
		{Label: "caches: dedup+gzip6", X: xs, Y: pick(cacheRes, metrics.Result.CCR)},
		{Label: "images: dedup+gzip6", X: xs, Y: pick(imgRes, metrics.Result.CCR)},
	}
	return SeriesTable("Fig 4: combined compression ratio vs block size (KB)", "bs(KB)", series, "%.0f", "%.2f"), nil
}

// Fig12 measures cross-similarity of images and caches.
func Fig12(s Scale) (Table, error) {
	repo, err := analysisRepo(s)
	if err != nil {
		return Table{}, err
	}
	imgRes, err := metrics.Sweep(metrics.ImageSources(repo), analysisSizes, nil, 0)
	if err != nil {
		return Table{}, err
	}
	cacheRes, err := metrics.Sweep(metrics.CacheSources(repo), analysisSizes, nil, 0)
	if err != nil {
		return Table{}, err
	}
	xs := sizesAsFloats(analysisSizes)
	series := []Series{
		{Label: "images", X: xs, Y: pick(imgRes, metrics.Result.CrossSimilarity)},
		{Label: "caches", X: xs, Y: pick(cacheRes, metrics.Result.CrossSimilarity)},
	}
	return SeriesTable("Fig 12: cross-similarity vs block size (KB)", "bs(KB)", series, "%.0f", "%.3f"), nil
}

// Table1 computes the storage-efficiency chain at 128 KB: original →
// nonzero → caches (nonzero) → caches/CCR.
func Table1(s Scale) (Table, error) {
	repo, err := analysisRepo(s)
	if err != nil {
		return Table{}, err
	}
	gz := compress.MustGet("gzip6")
	cacheRes, err := metrics.Analyze(metrics.CacheSources(repo), block.Size128K, gz)
	if err != nil {
		return Table{}, err
	}
	original := repo.RawBytes()
	nonzero := repo.NonzeroBytes()
	caches := repo.CacheBytes()
	compressed := float64(caches) / cacheRes.CCR()
	t := Table{
		Title:  "Table 1: attained storage efficiency, 128 KB blocks",
		Header: []string{"Original", "Nonzero", "Caches (Nonzero)", "Caches/CCR"},
		Rows: [][]string{{
			fmtBytes(float64(original)), fmtBytes(float64(nonzero)),
			fmtBytes(float64(caches)), fmtBytes(compressed),
		}},
		Comment: fmt.Sprintf("paper: 16.4 TB → 1.4 TB → 78.5 GB → 15.1 GB (CCR at 128K = %.2f here)", cacheRes.CCR()),
	}
	return t, nil
}

// Table2 prints the dataset's OS diversity next to the paper's Azure and
// EC2 columns.
func Table2(s Scale) (Table, error) {
	repo, err := corpus.New(corpus.DefaultSpec())
	if err != nil {
		return Table{}, err
	}
	by := repo.ByDistro()
	ec2 := map[string]int{}
	for _, d := range corpus.EC2Distros() {
		ec2[d.Name] = d.Count
	}
	t := Table{
		Title:  "Table 2: OS diversity",
		Header: []string{"OS distribution", "This corpus", "Windows Azure (paper)", "Amazon EC2 (paper)"},
	}
	total := 0
	for _, d := range corpus.AzureDistros() {
		t.Rows = append(t.Rows, []string{d.Name,
			fmt.Sprintf("%d", by[d.Name]), fmt.Sprintf("%d", d.Count), fmt.Sprintf("%d", ec2[d.Name])})
		total += by[d.Name]
	}
	t.Rows = append(t.Rows, []string{"Total", fmt.Sprintf("%d", total), "607", "9871"})
	return t, nil
}

// pick projects a metric over a result slice.
func pick(rs []metrics.Result, f func(metrics.Result) float64) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = f(r)
	}
	return out
}

// fmtBytes renders byte counts with binary units.
func fmtBytes(v float64) string {
	units := []string{"B", "KB", "MB", "GB", "TB"}
	i := 0
	for v >= 1024 && i < len(units)-1 {
		v /= 1024
		i++
	}
	return fmt.Sprintf("%.1f %s", v, units[i])
}
