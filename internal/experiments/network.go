package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
)

func init() {
	register(Experiment{ID: "fig18", Title: "Network transfer size with scaling nodes and VMs per node", Run: Fig18})
	register(Experiment{ID: "fig18prop", Title: "Ablation: registration propagation schemes", Run: Fig18Propagation})
}

// fig18Nodes is the node-count axis of Fig 18.
var fig18Nodes = []int{1, 4, 8, 16, 32, 64}

// fig18Deployment builds a 4-storage/64-compute DAS-4-like deployment
// with the full corpus registered.
func fig18Deployment(s Scale, propagation core.Propagation) (*core.Squirrel, *cluster.Cluster, *corpus.Repository, error) {
	repo, err := corpus.New(NetworkSpec(s))
	if err != nil {
		return nil, nil, nil, err
	}
	cl, err := cluster.New(cluster.QDR, 4, 64)
	if err != nil {
		return nil, nil, nil, err
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Propagation = propagation
	sq, err := core.New(cfg, cl, pfs)
	if err != nil {
		return nil, nil, nil, err
	}
	t0 := time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC)
	for i, im := range repo.Images {
		if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: t0.Add(time.Duration(i) * time.Minute)}); err != nil {
			return nil, nil, nil, err
		}
	}
	return sq, cl, repo, nil
}

// Fig18 measures cumulative compute-node network transfer during VM
// startup, scaling node count and VMs per node, with and without
// Squirrel. Every VM boots a different VMI, the paper's worst case.
func Fig18(s Scale) (Table, error) {
	sq, cl, repo, err := fig18Deployment(s, core.Multicast)
	if err != nil {
		return Table{}, err
	}
	bootWave := func(nodes, vmsPerNode int, warm bool) (int64, error) {
		cl.ResetCounters()
		img := 0
		for n := 0; n < nodes; n++ {
			nodeID := cl.Compute[n].ID
			for v := 0; v < vmsPerNode; v++ {
				im := repo.Images[img%len(repo.Images)]
				img++
				if !warm {
					// "Without caches": bypass the local replica by
					// booting an image on a node whose replica is
					// emptied — modelled by reading via PFS directly.
					if _, err := sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: nodeID, SkipCache: true}); err != nil {
						return 0, err
					}
					continue
				}
				if _, err := sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: nodeID, Verify: false}); err != nil {
					return 0, err
				}
			}
		}
		return cl.ComputeRxTotal(), nil
	}
	xs := make([]float64, len(fig18Nodes))
	for i, n := range fig18Nodes {
		xs[i] = float64(n)
	}
	var series []Series
	withCaches := make([]float64, len(fig18Nodes))
	for i, n := range fig18Nodes {
		b, err := bootWave(n, 8, true)
		if err != nil {
			return Table{}, err
		}
		withCaches[i] = float64(b) / (1 << 20)
	}
	series = append(series, Series{Label: "w/ caches, vm/node=8 (MB)", X: xs, Y: withCaches})
	for _, vms := range []int{1, 2, 4, 8} {
		ys := make([]float64, len(fig18Nodes))
		for i, n := range fig18Nodes {
			b, err := bootWave(n, vms, false)
			if err != nil {
				return Table{}, err
			}
			ys[i] = float64(b) / (1 << 20)
		}
		series = append(series, Series{Label: fmt.Sprintf("w/o caches, vm/node=%d (MB)", vms), X: xs, Y: ys})
	}
	t := SeriesTable("Fig 18: cumulative compute-node transfer (MB) vs node count", "#nodes", series, "%.0f", "%.1f")
	t.Comment = "paper: with Squirrel exactly 0; without, ≈180 GB at 512 VMs (full-size working sets)"
	return t, nil
}

// Fig18Propagation is the propagation ablation (§3.2/§3.5): total bytes
// the storage uplink transmits and wall time to propagate one
// registration diff to 64 nodes under each scheme.
func Fig18Propagation(s Scale) (Table, error) {
	t := Table{Title: "Ablation: propagation schemes for one registration diff to 64 nodes",
		Header: []string{"scheme", "storage tx (MB)", "transfer time (s, 1GbE)"}}
	for _, p := range []struct {
		name string
		prop core.Propagation
	}{{"multicast", core.Multicast}, {"unicast fan-out", core.UnicastFanout}, {"pipeline", core.Pipeline}} {
		repo, err := corpus.New(NetworkSpec(Scale{Count: 0.02, Size: s.Size}))
		if err != nil {
			return Table{}, err
		}
		cl, err := cluster.New(cluster.GigE, 4, 64)
		if err != nil {
			return Table{}, err
		}
		pfs, err := cluster.NewPFS(cl, 2, 2, 0)
		if err != nil {
			return Table{}, err
		}
		cfg := core.DefaultConfig()
		cfg.Propagation = p.prop
		sq, err := core.New(cfg, cl, pfs)
		if err != nil {
			return Table{}, err
		}
		rep, err := sq.Register(context.Background(), core.RegisterRequest{Image: repo.Images[0], At: time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC)})
		if err != nil {
			return Table{}, err
		}
		tx := cl.Storage[0].TxBytes()
		t.Rows = append(t.Rows, []string{p.name,
			fmt.Sprintf("%.2f", float64(tx)/(1<<20)), fmt.Sprintf("%.3f", rep.XferSec)})
	}
	t.Comment = "multicast transmits the diff once; unicast fan-out scales tx with node count (§3.5's rsync bottleneck)"
	return t, nil
}
