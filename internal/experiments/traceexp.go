package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/peer"
)

func init() {
	register(Experiment{ID: "figtrace", Title: "Boot latency breakdown from operation traces: cache vs peer vs PFS", Run: FigTrace})
}

// FigTrace regenerates the boot-latency breakdown from the telemetry
// layer instead of the per-boot reports: a mixed warm/cold boot wave
// runs on a traced deployment, then the table is built purely by
// walking the recorded boot span trees and summing their lane children
// (local cacheRead, peerFetch, pfsRead). Before rendering, every lane's
// span-derived byte total is cross-checked against the BootReport
// accounting — if tracing and reporting ever disagree, the experiment
// errors out rather than print a plausible-looking table.
func FigTrace(s Scale) (Table, error) {
	const nodes = 8
	repo, err := corpus.New(PeerSpec(s))
	if err != nil {
		return Table{}, err
	}
	t0 := time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC)

	cl, err := cluster.New(cluster.GigE, 4, nodes)
	if err != nil {
		return Table{}, err
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		return Table{}, err
	}
	cfg := core.DefaultConfig()
	cfg.Peer = peer.DefaultPolicy()
	// The table is rebuilt from every boot's span tree, so the ring must
	// hold the full wave — the small always-on default would evict the
	// early boots and silently undercount the lanes.
	cfg.Obs = obs.New(len(repo.Images)*nodes + 16)
	sq, err := core.New(cfg, cl, pfs)
	if err != nil {
		return Table{}, err
	}
	for i, im := range repo.Images {
		if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: t0.Add(time.Duration(i) * time.Minute)}); err != nil {
			return Table{}, err
		}
	}
	// The first peerHolders nodes keep every replica; the rest cold-boot
	// and pull their misses from those holders (or the PFS for gaps).
	for _, im := range repo.Images {
		for n := peerHolders; n < nodes; n++ {
			if err := sq.DropReplica(cl.Compute[n].ID, im.ID); err != nil {
				return Table{}, err
			}
		}
	}
	var wantCache, wantPeer, wantPFS int64
	for _, im := range repo.Images {
		for n := 0; n < nodes; n++ {
			rep, err := sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: cl.Compute[n].ID, Verify: false})
			if err != nil {
				return Table{}, err
			}
			wantCache += rep.CacheBytes
			wantPeer += rep.PeerBytes
			wantPFS += rep.NetworkBytes
		}
	}

	// Rebuild the same totals from the boot span trees alone.
	type lane struct {
		name   string
		kind   string
		bytes  int64
		simSec float64
	}
	lanes := []*lane{
		{name: "local cache", kind: obs.OpCacheRead},
		{name: "peer exchange", kind: obs.OpPeerFetch},
		{name: "PFS", kind: obs.OpPFSRead},
	}
	tel := sq.Telemetry()
	boots := tel.RootsOf(obs.OpBoot)
	if len(boots) != len(repo.Images)*nodes {
		return Table{}, fmt.Errorf("experiments: traced %d boot spans, ran %d boots (ring too small?)",
			len(boots), len(repo.Images)*nodes)
	}
	for _, sp := range boots {
		for _, ln := range lanes {
			for _, c := range sp.ChildrenOf(ln.kind) {
				ln.bytes += c.Bytes()
				ln.simSec += c.SimSec()
			}
		}
	}
	for _, check := range []struct {
		ln   *lane
		want int64
	}{{lanes[0], wantCache}, {lanes[1], wantPeer}, {lanes[2], wantPFS}} {
		if check.ln.bytes != check.want {
			return Table{}, fmt.Errorf("experiments: %s spans carry %d bytes, boot reports say %d",
				check.ln.name, check.ln.bytes, check.want)
		}
	}

	var totalB int64
	var totalSec float64
	for _, ln := range lanes {
		totalB += ln.bytes
		totalSec += ln.simSec
	}
	t := Table{Title: "Boot byte/time provenance reconstructed from span trees",
		Header: []string{"lane", "bytes (MB)", "byte share (%)", "sim time (s)", "time share (%)"}}
	for _, ln := range lanes {
		bShare, tShare := 0.0, 0.0
		if totalB > 0 {
			bShare = 100 * float64(ln.bytes) / float64(totalB)
		}
		if totalSec > 0 {
			tShare = 100 * ln.simSec / totalSec
		}
		t.Rows = append(t.Rows, []string{
			ln.name,
			fmt.Sprintf("%.1f", float64(ln.bytes)/(1<<20)),
			fmt.Sprintf("%.0f", bShare),
			fmt.Sprintf("%.3f", ln.simSec),
			fmt.Sprintf("%.0f", tShare),
		})
	}
	snap := tel.Snapshot()
	t.Comment = fmt.Sprintf("lane totals verified against BootReport accounting across %d traced boots (%d spans recorded); cache bytes are cheap local reads, so the network lanes dominate time",
		len(boots), snap.SpansRecorded)
	return t, nil
}
