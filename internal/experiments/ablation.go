package experiments

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/boot"
	"repro/internal/corpus"
	"repro/internal/zvol"
)

func init() {
	register(Experiment{ID: "ablate-storage", Title: "Ablation: dedup and compression contributions to cVolume size", Run: AblateStorage})
	register(Experiment{ID: "ablate-cluster", Title: "Ablation: QCOW2 cluster size vs warm zfs boot time", Run: AblateClusterSize})
	register(Experiment{ID: "ablate-pagecache", Title: "Ablation: page cache contribution to warm boot time", Run: AblatePageCache})
}

// AblateStorage isolates the contribution of deduplication and
// compression to the cVolume footprint (the paper combines them; this
// ablation justifies needing both, §2.2).
func AblateStorage(s Scale) (Table, error) {
	repo, err := corpus.New(VolumeSpec(Scale{Count: s.Count * 0.3, Size: s.Size}))
	if err != nil {
		return Table{}, err
	}
	t := Table{Title: "Ablation: cVolume footprint by feature (caches, bs=64KB)",
		Header: []string{"configuration", "data (MB)", "total disk (MB)", "vs raw"}}
	var raw float64
	for _, c := range []struct {
		name  string
		codec string
		dedup bool
	}{
		{"raw (no dedup, no compression)", "null", false},
		{"dedup only", "null", true},
		{"gzip6 only", "gzip6", false},
		{"dedup + gzip6 (Squirrel)", "gzip6", true},
	} {
		cfg := zvol.Config{BlockSize: block.Size64K, Codec: c.codec, Dedup: c.dedup, MinCompressGain: 0.125}
		v, err := zvol.New(cfg)
		if err != nil {
			return Table{}, err
		}
		for _, im := range repo.Images {
			if _, err := v.WriteObject(im.ID, im.CacheReader()); err != nil {
				return Table{}, err
			}
		}
		st := v.Stats()
		if raw == 0 {
			raw = float64(st.DiskBytes)
		}
		t.Rows = append(t.Rows, []string{c.name,
			fmt.Sprintf("%.2f", float64(st.DataBytes)/(1<<20)),
			fmt.Sprintf("%.2f", float64(st.DiskBytes)/(1<<20)),
			fmt.Sprintf("%.2fx", raw/float64(st.DiskBytes))})
	}
	t.Comment = "both features multiply: neither alone reaches the combined ratio (CCR = dedup × compression)"
	return t, nil
}

// AblateClusterSize varies the QCOW2 cluster size against a fixed 64 KB
// cVolume, isolating the mechanism behind the 128 KB anomaly in Fig 11
// (§4.2.3 attributes it to the 64 KB cluster default).
func AblateClusterSize(s Scale) (Table, error) {
	repo, err := corpus.New(BootSpec(Scale{Count: s.Count * 0.5, Size: s.Size}))
	if err != nil {
		return Table{}, err
	}
	var cacheSum int64
	for _, im := range repo.Images {
		cacheSum += im.CacheSize()
	}
	mean := float64(cacheSum) / float64(len(repo.Images))
	vol, err := ccVolumeAt(repo, block.Size64K, "")
	if err != nil {
		return Table{}, err
	}
	t := Table{Title: "Ablation: QCOW2 cluster size vs warm boot from a 64KB cVolume",
		Header: []string{"cluster", "avg boot (s)"}}
	for _, cluster := range []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10} {
		cfg := boot.DefaultConfig(134e6 / mean)
		cfg.ClusterSize = cluster
		sim := boot.New(cfg)
		avg, err := boot.Average(repo.Images, func(im *corpus.Image) (boot.Result, error) {
			return sim.BootWarmCacheZVol(im, vol, im.ID)
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{block.Size(cluster).String(), fmt.Sprintf("%.2f", avg)})
	}
	t.Comment = "clusters smaller than the record re-read/decompress whole records; clusters ≥ record avoid the waste"
	return t, nil
}

// AblatePageCache reruns warm boots with the page cache effectively
// disabled, quantifying the "free prefetching" effect of §4.2.3.
func AblatePageCache(s Scale) (Table, error) {
	repo, err := corpus.New(BootSpec(Scale{Count: s.Count * 0.5, Size: s.Size}))
	if err != nil {
		return Table{}, err
	}
	var cacheSum int64
	for _, im := range repo.Images {
		cacheSum += im.CacheSize()
	}
	mean := float64(cacheSum) / float64(len(repo.Images))
	t := Table{Title: "Ablation: page cache contribution to warm boots (bs=64KB)",
		Header: []string{"configuration", "warm xfs (s)", "baseline local (s)"}}
	for _, pc := range []struct {
		name  string
		bytes int64
	}{{"page cache on (1 GB)", 1 << 30}, {"page cache off (1 page)", 1}} {
		cfg := boot.DefaultConfig(134e6 / mean)
		cfg.PageCache = pc.bytes
		sim := boot.New(cfg)
		warm, err := boot.Average(repo.Images, func(im *corpus.Image) (boot.Result, error) {
			return sim.BootWarmCacheXFS(im), nil
		})
		if err != nil {
			return Table{}, err
		}
		base, err := boot.Average(repo.Images, func(im *corpus.Image) (boot.Result, error) {
			return sim.BootBaselineLocal(im), nil
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{pc.name, fmt.Sprintf("%.2f", warm), fmt.Sprintf("%.2f", base)})
	}
	t.Comment = "without the page cache, cluster over-fetch stops paying off and the warm-cache advantage shrinks"
	return t, nil
}
