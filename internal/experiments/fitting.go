package experiments

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/fit"
)

func init() {
	register(Experiment{ID: "fig14", Title: "Disk consumption curve-fitting quality (bs=64KB) + Table 3 RMSE", Run: Fig14})
	register(Experiment{ID: "fig15", Title: "Extrapolation of disk consumption", Run: Fig15})
	register(Experiment{ID: "fig16", Title: "Memory consumption curve-fitting quality (bs=64KB) + Table 4 RMSE", Run: Fig16})
	register(Experiment{ID: "fig17", Title: "Extrapolation of memory consumption", Run: Fig17})
	register(Experiment{ID: "tab3", Title: "RMSE of curves estimating disk consumption", Run: Table3})
	register(Experiment{ID: "tab4", Title: "RMSE of curves estimating memory consumption", Run: Table4})
}

// fitSizes is the block-size set of Tables 3 and 4.
var fitSizes = []block.Size{block.Size16K, block.Size32K, block.Size64K, block.Size128K}

// toMB converts a byte series to MB. The paper charts GB, but at corpus
// scale the values are MB-sized; the fitting protocol is unit-agnostic.
func toMB(ys []float64) []float64 {
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = y / (1 << 20)
	}
	return out
}

// fitQualityTable runs the paper's train-on-half / score-on-all protocol
// for one resource series and renders candidate curves next to the real
// data (Figs 14 and 16), plus the winner.
func fitQualityTable(title string, xs, ys []float64) (Table, error) {
	cands := fit.TrainHalf(fit.DefaultFitters(), xs, ys)
	winner, _, err := fit.SelectBest(cands)
	if err != nil {
		return Table{}, err
	}
	k := len(xs) / 15
	if k < 1 {
		k = 1
	}
	var series []Series
	var sx []float64
	for i := 0; i < len(xs); i += k {
		sx = append(sx, xs[i])
	}
	mk := func(label string, f func(float64) float64) Series {
		ys := make([]float64, len(sx))
		for i, x := range sx {
			ys[i] = f(x)
		}
		return Series{Label: label, X: sx, Y: ys}
	}
	for _, name := range []string{"linear", "mmf", "hoerl"} {
		c := cands[name]
		if c.Err != nil {
			continue
		}
		series = append(series, mk(name, c.Curve.Eval))
	}
	real := make([]float64, 0, len(sx))
	for i := 0; i < len(xs); i += k {
		real = append(real, ys[i])
	}
	series = append(series, Series{Label: "real", X: sx, Y: real})
	t := SeriesTable(title, "n", series, "%.0f", "%.4f")
	t.Comment = fmt.Sprintf("winner by RMSE over all points: %s (linear=%.4f mmf=%.4f hoerl=%.4f)",
		winner, cands["linear"].RMSE, cands["mmf"].RMSE, cands["hoerl"].RMSE)
	return t, nil
}

// Fig14 fits disk consumption at 64 KB.
func Fig14(s Scale) (Table, error) {
	it, err := Iterative(s, block.Size64K)
	if err != nil {
		return Table{}, err
	}
	return fitQualityTable("Fig 14: disk consumption fit quality (MB, bs=64KB)", it.N, toMB(it.CacheDisk))
}

// Fig16 fits memory consumption at 64 KB.
func Fig16(s Scale) (Table, error) {
	it, err := Iterative(s, block.Size64K)
	if err != nil {
		return Table{}, err
	}
	return fitQualityTable("Fig 16: memory consumption fit quality (MB, bs=64KB)", it.N, toMB(it.CacheMem))
}

// rmseTable computes Table 3 / Table 4: RMSE of each family per block
// size, trained on half the points.
func rmseTable(s Scale, title string, pick func(*IterativeSeries) []float64) (Table, error) {
	t := Table{Title: title, Header: []string{"Block size", "Linear", "MMF", "Hoerl"}}
	winners := map[string]int{}
	for _, bs := range fitSizes {
		it, err := Iterative(s, bs)
		if err != nil {
			return Table{}, err
		}
		ys := toMB(pick(it))
		cands := fit.TrainHalf(fit.DefaultFitters(), it.N, ys)
		row := []string{bs.String()}
		for _, name := range []string{"linear", "mmf", "hoerl"} {
			c := cands[name]
			if c.Err != nil {
				row = append(row, "fail")
				continue
			}
			row = append(row, fmt.Sprintf("%.4f", c.RMSE))
		}
		if w, _, err := fit.SelectBest(cands); err == nil {
			winners[w]++
		}
		t.Rows = append(t.Rows, row)
	}
	t.Comment = fmt.Sprintf("winners across block sizes: %v", winners)
	return t, nil
}

// Table3 scores disk-consumption fits (paper: linear wins everywhere).
func Table3(s Scale) (Table, error) {
	return rmseTable(s, "Table 3: RMSE of curves estimating disk consumption",
		func(it *IterativeSeries) []float64 { return it.CacheDisk })
}

// Table4 scores memory-consumption fits (paper: MMF wins at 64 KB).
func Table4(s Scale) (Table, error) {
	return rmseTable(s, "Table 4: RMSE of curves estimating memory consumption",
		func(it *IterativeSeries) []float64 { return it.CacheMem })
}

// extrapolate fits the winning family on ALL points (the paper refits
// the winner with every data point) and projects to 3000 caches.
func extrapolate(s Scale, title string, fitter fit.Fitter, pick func(*IterativeSeries) []float64) (Table, error) {
	targets := []float64{100, 300, 600, 1200, 2000, 3000}
	t := Table{Title: title, Header: []string{"caches"}}
	cols := make([][]float64, 0, len(fitSizes))
	for _, bs := range fitSizes {
		it, err := Iterative(s, bs)
		if err != nil {
			return Table{}, err
		}
		c, err := fitter.Fit(it.N, toMB(pick(it)))
		if err != nil {
			return Table{}, err
		}
		col := make([]float64, len(targets))
		for i, n := range targets {
			col[i] = c.Eval(n)
		}
		cols = append(cols, col)
		t.Header = append(t.Header, fmt.Sprintf("%s (%s, MB)", fitter.Name(), bs))
	}
	for i, n := range targets {
		row := []string{fmt.Sprintf("%.0f", n)}
		for _, col := range cols {
			row = append(row, fmt.Sprintf("%.4f", col[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Comment = "paper: ≈18 GB disk / ≈85 MB memory for 1200+ caches at 64 KB (full-size corpus)"
	return t, nil
}

// Fig15 extrapolates disk consumption with the linear winner.
func Fig15(s Scale) (Table, error) {
	return extrapolate(s, "Fig 15: disk consumption extrapolation", fit.LinearFitter{},
		func(it *IterativeSeries) []float64 { return it.CacheDisk })
}

// Fig17 extrapolates memory consumption with the MMF winner.
func Fig17(s Scale) (Table, error) {
	return extrapolate(s, "Fig 17: memory consumption extrapolation", fit.MMFFitter{},
		func(it *IterativeSeries) []float64 { return it.CacheMem })
}
