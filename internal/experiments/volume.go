package experiments

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/corpus"
	"repro/internal/zvol"
)

func init() {
	register(Experiment{ID: "fig8", Title: "Disk consumption with deduplication and compression", Run: Fig8})
	register(Experiment{ID: "fig9", Title: "Deduplication table size on disk", Run: Fig9})
	register(Experiment{ID: "fig10", Title: "Memory consumption for deduplication tables", Run: Fig10})
	register(Experiment{ID: "fig13", Title: "Resource consumption of cVolumes when iteratively adding VMIs or caches", Run: Fig13})
}

// volumeRepo builds the corpus shared by the volume experiments.
func volumeRepo(s Scale) (*corpus.Repository, error) {
	return corpus.New(VolumeSpec(s))
}

// fillVolume writes every image (or cache) of the repo into a fresh
// volume at the given block size and returns its stats.
func fillVolume(repo *corpus.Repository, bs block.Size, caches bool) (zvol.Stats, error) {
	cfg := zvol.DefaultConfig()
	cfg.BlockSize = bs
	v, err := zvol.New(cfg)
	if err != nil {
		return zvol.Stats{}, err
	}
	for _, im := range repo.Images {
		var err error
		if caches {
			_, err = v.WriteObject(im.ID, im.CacheReader())
		} else {
			_, err = v.WriteObject(im.ID, im.NonzeroReader())
		}
		if err != nil {
			return zvol.Stats{}, fmt.Errorf("experiments: store %s: %w", im.ID, err)
		}
	}
	return v.Stats(), nil
}

// volumeSweep measures volume stats over the Fig 8–10 block sizes for
// images and caches.
func volumeSweep(s Scale) (sizes []block.Size, img, cache []zvol.Stats, err error) {
	repo, err := volumeRepo(s)
	if err != nil {
		return nil, nil, nil, err
	}
	sizes = block.VolumeSizes
	for _, bs := range sizes {
		is, err := fillVolume(repo, bs, false)
		if err != nil {
			return nil, nil, nil, err
		}
		cs, err := fillVolume(repo, bs, true)
		if err != nil {
			return nil, nil, nil, err
		}
		img = append(img, is)
		cache = append(cache, cs)
	}
	return sizes, img, cache, nil
}

// volumeFigure renders one stats field for images and caches as a table.
func volumeFigure(s Scale, title string, field func(zvol.Stats) float64, unit string) (Table, error) {
	sizes, img, cache, err := volumeSweep(s)
	if err != nil {
		return Table{}, err
	}
	xs := sizesAsFloats(sizes)
	series := []Series{
		{Label: "images " + unit, X: xs, Y: pickStats(img, field)},
		{Label: "caches " + unit, X: xs, Y: pickStats(cache, field)},
	}
	return SeriesTable(title, "bs(KB)", series, "%.0f", "%.2f"), nil
}

// Fig8 measures total on-disk consumption of dedup+gzip6 volumes.
func Fig8(s Scale) (Table, error) {
	return volumeFigure(s, "Fig 8: disk consumption (MB) with dedup + gzip6",
		func(st zvol.Stats) float64 { return float64(st.DiskBytes) / (1 << 20) }, "(MB)")
}

// Fig9 measures the DDT's on-disk footprint.
func Fig9(s Scale) (Table, error) {
	return volumeFigure(s, "Fig 9: dedup table size on disk (MB)",
		func(st zvol.Stats) float64 { return float64(st.DDTDiskBytes) / (1 << 20) }, "(MB)")
}

// Fig10 measures the DDT's in-core footprint.
func Fig10(s Scale) (Table, error) {
	return volumeFigure(s, "Fig 10: dedup table memory (MB)",
		func(st zvol.Stats) float64 { return float64(st.DDTMemBytes) / (1 << 20) }, "(MB)")
}

// IterativeSeries is Fig 13's underlying data: disk and memory after each
// added object, for caches and for images, at 64 KB blocks. Figs 14–17
// fit and extrapolate these points.
type IterativeSeries struct {
	N         []float64 // object count after each insert
	CacheDisk []float64 // bytes
	CacheMem  []float64
	ImageDisk []float64
	ImageMem  []float64
}

// Iterative computes the Fig 13 series at the given block size.
func Iterative(s Scale, bs block.Size) (*IterativeSeries, error) {
	repo, err := volumeRepo(s)
	if err != nil {
		return nil, err
	}
	cfg := zvol.DefaultConfig()
	cfg.BlockSize = bs
	cacheVol, err := zvol.New(cfg)
	if err != nil {
		return nil, err
	}
	imgVol, err := zvol.New(cfg)
	if err != nil {
		return nil, err
	}
	out := &IterativeSeries{}
	for i, im := range repo.Images {
		if _, err := cacheVol.WriteObject(im.ID, im.CacheReader()); err != nil {
			return nil, err
		}
		if _, err := imgVol.WriteObject(im.ID, im.NonzeroReader()); err != nil {
			return nil, err
		}
		cs, is := cacheVol.Stats(), imgVol.Stats()
		out.N = append(out.N, float64(i+1))
		out.CacheDisk = append(out.CacheDisk, float64(cs.DiskBytes))
		out.CacheMem = append(out.CacheMem, float64(cs.DDTMemBytes))
		out.ImageDisk = append(out.ImageDisk, float64(is.DiskBytes))
		out.ImageMem = append(out.ImageMem, float64(is.DDTMemBytes))
	}
	return out, nil
}

// Fig13 renders the iterative series.
func Fig13(s Scale) (Table, error) {
	it, err := Iterative(s, block.Size64K)
	if err != nil {
		return Table{}, err
	}
	// Sample every k-th point to keep the table readable.
	k := len(it.N) / 20
	if k < 1 {
		k = 1
	}
	var xs, cd, cm, id, im []float64
	for i := 0; i < len(it.N); i += k {
		xs = append(xs, it.N[i])
		cd = append(cd, it.CacheDisk[i]/(1<<20))
		cm = append(cm, it.CacheMem[i]/(1<<20))
		id = append(id, it.ImageDisk[i]/(1<<20))
		im = append(im, it.ImageMem[i]/(1<<20))
	}
	series := []Series{
		{Label: "disk caches (MB)", X: xs, Y: cd},
		{Label: "disk images (MB)", X: xs, Y: id},
		{Label: "mem caches (MB)", X: xs, Y: cm},
		{Label: "mem images (MB)", X: xs, Y: im},
	}
	return SeriesTable("Fig 13: resource consumption when iteratively adding objects (bs=64KB)", "n", series, "%.0f", "%.2f"), nil
}

// pickStats projects a field over volume stats.
func pickStats(sts []zvol.Stats, f func(zvol.Stats) float64) []float64 {
	out := make([]float64, len(sts))
	for i, st := range sts {
		out[i] = f(st)
	}
	return out
}
