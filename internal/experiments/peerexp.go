package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/peer"
)

func init() {
	register(Experiment{ID: "figpeer", Title: "Peer block exchange: PFS-only vs peer-assisted cold boots", Run: FigPeer})
}

// PeerSpec is the corpus for the peer-exchange experiment: a handful of
// images with caches big enough that cold-miss traffic dominates.
func PeerSpec(s Scale) corpus.Spec {
	spec := corpus.DefaultSpec().Scale(0.011*s.Count, s.Size) // ≈6 images
	spec.ImageNonzero = int64(8 << 20 * s.Size)
	spec.CacheFrac = 0.12
	return spec
}

// peerHolders is how many nodes keep their replicas in each wave; every
// other node cold-boots.
const peerHolders = 2

// FigPeer extends Fig 18's question to partially hoarded clusters: when
// replicas are missing (capacity eviction, late-joining nodes), cold-boot
// misses can be served by the PFS alone or by neighboring compute nodes
// over the peer block exchange. For each cluster size the same wave of
// concurrent cold boots runs against twin deployments — peer exchange
// off and on — and the table reports where the miss bytes came from.
func FigPeer(s Scale) (Table, error) {
	nodeAxis := []int{4, 8, 16, 32}
	repo, err := corpus.New(PeerSpec(s))
	if err != nil {
		return Table{}, err
	}
	t0 := time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC)

	// run boots every image on every replica-less node concurrently and
	// returns (PFS bytes, peer bytes, storage-node tx bytes).
	run := func(nodes int, enabled bool) (pfsB, peerB, tx int64, err error) {
		cl, err := cluster.New(cluster.GigE, 4, nodes)
		if err != nil {
			return 0, 0, 0, err
		}
		pfs, err := cluster.NewPFS(cl, 2, 2, 0)
		if err != nil {
			return 0, 0, 0, err
		}
		cfg := core.DefaultConfig()
		cfg.Peer = peer.DefaultPolicy()
		cfg.Peer.Enabled = enabled
		sq, err := core.New(cfg, cl, pfs)
		if err != nil {
			return 0, 0, 0, err
		}
		for i, im := range repo.Images {
			if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: t0.Add(time.Duration(i) * time.Minute)}); err != nil {
				return 0, 0, 0, err
			}
		}
		for _, im := range repo.Images {
			for n := peerHolders; n < nodes; n++ {
				if err := sq.DropReplica(cl.Compute[n].ID, im.ID); err != nil {
					return 0, 0, 0, err
				}
			}
		}
		cl.ResetCounters()
		var (
			wg sync.WaitGroup
			mu sync.Mutex
		)
		for _, im := range repo.Images {
			for n := peerHolders; n < nodes; n++ {
				im, nodeID := im, cl.Compute[n].ID
				wg.Add(1)
				go func() {
					defer wg.Done()
					rep, berr := sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: nodeID, Verify: false})
					mu.Lock()
					defer mu.Unlock()
					if berr != nil {
						err = berr
						return
					}
					pfsB += rep.NetworkBytes
					peerB += rep.PeerBytes
				}()
			}
		}
		wg.Wait()
		if err != nil {
			return 0, 0, 0, err
		}
		var stx int64
		for _, sn := range cl.Storage {
			stx += sn.TxBytes()
		}
		return pfsB, peerB, stx, nil
	}

	t := Table{Title: "Peer exchange: concurrent cold boots, PFS-only vs peer-assisted",
		Header: []string{"#nodes", "pfs-only: storage tx (MB)", "peer: storage tx (MB)", "peer: peer bytes (MB)", "peer share (%)"}}
	for _, nodes := range nodeAxis {
		_, basePeer, baseTx, err := run(nodes, false)
		if err != nil {
			return Table{}, err
		}
		if basePeer != 0 {
			return Table{}, fmt.Errorf("experiments: peer bytes %d in PFS-only run", basePeer)
		}
		pfsB, peerB, tx, err := run(nodes, true)
		if err != nil {
			return Table{}, err
		}
		share := 0.0
		if peerB+pfsB > 0 {
			share = 100 * float64(peerB) / float64(peerB+pfsB)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nodes),
			fmt.Sprintf("%.1f", float64(baseTx)/(1<<20)),
			fmt.Sprintf("%.1f", float64(tx)/(1<<20)),
			fmt.Sprintf("%.1f", float64(peerB)/(1<<20)),
			fmt.Sprintf("%.0f", share),
		})
	}
	t.Comment = "same seeded corpus and boot wave per row; the peer exchange moves the majority of cold-miss bytes off the storage nodes"
	return t, nil
}
