// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic corpus. Each experiment returns typed
// rows/series and can render itself as the text table the cmd/experiments
// tool prints; bench_test.go at the repository root wraps each one in a
// testing.B benchmark.
//
// Corpus scale: the paper's dataset is 607 images × ≈2.4 GB nonzero; the
// default experiment corpora here are scaled to run on one machine (see
// each experiment's Spec function). Absolute values therefore differ from
// the paper; EXPERIMENTS.md records the side-by-side comparison of
// shapes.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/block"
	"repro/internal/corpus"
)

// Scale multiplies experiment corpus sizes; 1.0 is the documented default
// used by EXPERIMENTS.md. Benches use smaller scales via the -scale flag
// of cmd/experiments or the Spec helpers directly.
type Scale struct {
	Count float64 // image-count multiplier
	Size  float64 // image-size multiplier
}

// DefaultScale keeps experiments single-machine friendly.
var DefaultScale = Scale{Count: 1, Size: 1}

// AnalysisSpec is the corpus for the block-analysis experiments (Figs 2,
// 3, 4, 12; Table 1): fewer but bigger images, so caches span many blocks
// even at 1 MB.
func AnalysisSpec(s Scale) corpus.Spec {
	spec := corpus.DefaultSpec().Scale(0.13*s.Count, s.Size) // ≈80 images
	spec.ImageNonzero = int64(16 << 20 * s.Size)
	spec.CacheFrac = 0.12
	return spec
}

// VolumeSpec is the corpus for the cVolume experiments (Figs 8, 9, 10,
// 13–17): the full 607-image mix with smaller images, since those figures
// need the image-count axis.
func VolumeSpec(s Scale) corpus.Spec {
	spec := corpus.DefaultSpec().Scale(1*s.Count, s.Size)
	spec.ImageNonzero = int64(3 << 20 * s.Size)
	spec.CacheFrac = 0.12
	return spec
}

// BootSpec is the corpus for Fig 11: moderate image count, caches large
// enough that I/O matters.
func BootSpec(s Scale) corpus.Spec {
	spec := corpus.DefaultSpec().Scale(0.05*s.Count, s.Size) // ≈30 images
	spec.ImageNonzero = int64(12 << 20 * s.Size)
	spec.CacheFrac = 0.12
	return spec
}

// NetworkSpec is the corpus for Fig 18: 512 distinct images (64 nodes × 8
// VMs each boots a different VMI), small since only boot sets move.
func NetworkSpec(s Scale) corpus.Spec {
	spec := corpus.DefaultSpec().Scale(0.85*s.Count, s.Size) // ≥512 images
	spec.ImageNonzero = int64(2 << 20 * s.Size)
	spec.CacheFrac = 0.12
	return spec
}

// Series is one labelled line of a figure.
type Series struct {
	Label  string
	X      []float64
	Y      []float64
	XLabel string
	YLabel string
}

// Table is a rendered text table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Comment string
}

// Render prints the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Comment != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Comment)
	}
	return b.String()
}

// SeriesTable renders a set of series sharing an X axis as one table.
func SeriesTable(title, xName string, series []Series, xFmt, yFmt string) Table {
	t := Table{Title: title, Header: []string{xName}}
	for _, s := range series {
		t.Header = append(t.Header, s.Label)
	}
	if len(series) == 0 {
		return t
	}
	for i := range series[0].X {
		row := []string{fmt.Sprintf(xFmt, series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf(yFmt, s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// sizesAsFloats converts block sizes to KB for figure X axes.
func sizesAsFloats(sizes []block.Size) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = float64(s) / 1024
	}
	return out
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string // "fig2", "tab1", ...
	Title string
	Run   func(s Scale) (Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
