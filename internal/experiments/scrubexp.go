package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/peer"
)

func init() {
	register(Experiment{ID: "figscrub", Title: "At-rest integrity: scrub detection and peer-assisted resilver", Run: FigScrub})
}

// ScrubSpec is the corpus for the scrub/resilver experiment: a handful
// of images whose caches span enough blocks that rot rates down to a few
// percent still land hits.
func ScrubSpec(s Scale) corpus.Spec {
	spec := corpus.DefaultSpec().Scale(0.011*s.Count, s.Size) // ≈6 images
	spec.ImageNonzero = int64(8 << 20 * s.Size)
	spec.CacheFrac = 0.12
	return spec
}

// scrubNodes is the cluster size; rot is injected on half the nodes so
// the other half can serve as healthy resilver sources.
const scrubNodes = 8

// FigScrub quantifies the ZFS-substitution layer the paper leans on
// (§2.2 "we use ZFS", §3.5 robustness): per-block checksums turn silent
// at-rest corruption into detectable damage, scrub finds all of it, and
// the resilver repairs from scattered peer replicas before touching the
// PFS. For each bit-rot rate the same deployment is damaged, scrubbed
// and resilvered; the table reports detection coverage and where the
// repair bytes came from.
func FigScrub(s Scale) (Table, error) {
	rotAxis := []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	repo, err := corpus.New(ScrubSpec(s))
	if err != nil {
		return Table{}, err
	}
	t0 := time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC)

	t := Table{
		Title: "At-rest bit rot: scrub detection and resilver repair source",
		Header: []string{"rot rate", "rotted blocks", "scrub-detected", "detected (%)",
			"repaired", "peer share (%)", "resilver (s)"},
		Comment: "rot on half the nodes; detection must be 100% (physical checksums); " +
			"repairs prefer healthy peer replicas over the PFS",
	}
	for i, rate := range rotAxis {
		cl, err := cluster.New(cluster.GigE, 4, scrubNodes)
		if err != nil {
			return Table{}, err
		}
		pfs, err := cluster.NewPFS(cl, 2, 2, 0)
		if err != nil {
			return Table{}, err
		}
		cfg := core.DefaultConfig()
		cfg.Peer = peer.DefaultPolicy()
		sq, err := core.New(cfg, cl, pfs)
		if err != nil {
			return Table{}, err
		}
		for j, im := range repo.Images {
			if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: t0.Add(time.Duration(j) * time.Minute)}); err != nil {
				return Table{}, err
			}
		}
		inj, err := fault.New(fault.Plan{Seed: int64(1000 + i), Rot: rate})
		if err != nil {
			return Table{}, err
		}
		sq.SetFaults(inj)

		rotted := 0
		for n := 0; n < scrubNodes/2; n++ {
			refs, err := sq.InjectRot(cl.Compute[n].ID)
			if err != nil {
				return Table{}, err
			}
			rotted += len(refs)
		}
		detected := 0
		scrubs, err := sq.ScrubAll(context.Background(), t0.Add(time.Hour))
		if err != nil {
			return Table{}, err
		}
		for _, rep := range scrubs {
			detected += rep.CorruptBlocks + rep.MissingBlocks
		}
		var repaired, peerBlocks int
		var resilverSec float64
		reps, err := sq.ResilverAll(context.Background(), t0.Add(2*time.Hour))
		if err != nil {
			return Table{}, err
		}
		for _, r := range reps {
			repaired += r.Repaired
			peerBlocks += r.PeerBlocks
			resilverSec += r.XferSec
		}
		detPct, peerPct := 100.0, 0.0
		if rotted > 0 {
			detPct = 100 * float64(detected) / float64(rotted)
		}
		if repaired > 0 {
			peerPct = 100 * float64(peerBlocks) / float64(repaired)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprintf("%d", rotted),
			fmt.Sprintf("%d", detected),
			fmt.Sprintf("%.0f", detPct),
			fmt.Sprintf("%d", repaired),
			fmt.Sprintf("%.0f", peerPct),
			fmt.Sprintf("%.3f", resilverSec),
		})
	}
	return t, nil
}
