package experiments

import (
	"strings"
	"testing"
)

// tiny keeps experiment smoke tests fast on one core.
var tiny = Scale{Count: 0.02, Size: 0.15}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be present.
	want := []string{
		"fig2", "fig3", "fig4", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"tab1", "tab2", "tab3", "tab4",
	}
	for _, id := range want {
		if _, err := Find(id); err != nil {
			t.Errorf("experiment %s missing: %v", id, err)
		}
	}
	if _, err := Find("fig99"); err == nil {
		t.Error("unknown experiment should error")
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want at least %d", len(All()), len(want))
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "t",
		Header:  []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Comment: "c",
	}
	out := tb.Render()
	for _, want := range []string{"== t ==", "333", "-- c"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesTableAlignment(t *testing.T) {
	s := []Series{
		{Label: "y1", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Label: "y2", X: []float64{1, 2}, Y: []float64{30}},
	}
	tb := SeriesTable("x", "n", s, "%.0f", "%.1f")
	if len(tb.Rows) != 2 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	if tb.Rows[1][2] != "-" {
		t.Fatalf("short series should pad with -: %v", tb.Rows[1])
	}
}

// Each experiment must run end to end at tiny scale and produce a
// non-empty table. Shapes are asserted by the dedicated substrate tests;
// here we guard the harness plumbing itself.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke sweep")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run(tiny)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if tb.Render() == "" {
				t.Fatalf("%s renders empty", e.ID)
			}
		})
	}
}

func TestSpecsValid(t *testing.T) {
	for name, spec := range map[string]func(Scale){
		"analysis": func(s Scale) { AnalysisSpec(s) },
		"volume":   func(s Scale) { VolumeSpec(s) },
		"boot":     func(s Scale) { BootSpec(s) },
		"network":  func(s Scale) { NetworkSpec(s) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("spec %s panicked: %v", name, r)
				}
			}()
			spec(tiny)
		})
	}
}
