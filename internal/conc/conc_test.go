package conc

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial walk out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("serial walk covered %d of 5", len(order))
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	ForEach(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestForEachParallelism(t *testing.T) {
	// With workers >= n every index can be in flight at once; prove at
	// least two really overlap by having them rendezvous.
	gate := make(chan struct{})
	var met atomic.Int32
	ForEach(2, 2, func(i int) {
		if met.Add(1) == 2 {
			close(gate)
		}
		<-gate
	})
	if met.Load() != 2 {
		t.Fatalf("expected both legs to run, got %d", met.Load())
	}
}
