// Package conc holds the small concurrency primitives the deployment
// core builds its fan-out on: a bounded parallel for-loop. Squirrel's
// hot paths (Register propagation to N replicas, boot storms) want "do
// these n independent things on up to w goroutines" without each call
// site reinventing worker pools; the propagation legs of a single
// registration are independent of each other by construction, so a
// plain index-sharded loop is all the structure needed.
package conc

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n), on at most workers
// concurrent goroutines, and returns when all calls have finished.
// workers <= 0 means GOMAXPROCS. With workers == 1 (or n == 1) the
// loop degenerates to a serial in-order walk on the calling goroutine,
// which keeps single-threaded chaos runs byte-deterministic.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Static index striding: worker w takes i = w, w+workers, … Claiming
	// via an atomic counter would balance better under skew, but striding
	// keeps each leg's assignment deterministic, which makes hung-leg
	// debugging (who owns index i?) trivial.
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}
