// Package version holds the build version string shared by squirreld
// and squirrelctl, so `-version` on either binary (and the handshake
// diagnostics in between) name the same release.
package version

import (
	"fmt"

	"repro/internal/wireproto"
)

// Build is the human-facing release string. Bump it with behavioral
// releases; bump wireproto.Version only when the framing itself
// changes incompatibly.
const Build = "0.7.0"

// String renders the canonical version line both binaries print for
// -version.
func String() string {
	return fmt.Sprintf("squirrel %s (wire protocol v%d)", Build, wireproto.Version)
}
