package daemon

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/wireclient"
	"repro/internal/wireproto"
)

// startServer brings up a daemon on a loopback port and returns its
// address. The server is drained when the test ends.
func startServer(t *testing.T, opts ctlplane.Options, cfg Config) (string, *Server) {
	t.Helper()
	local, err := ctlplane.NewLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "127.0.0.1:0"
	srv := New(local, cfg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv.Addr().String(), srv
}

func dial(t *testing.T, addr string) *wireclient.Client {
	t.Helper()
	c, err := wireclient.Dial(wireclient.Options{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

var sessionT0 = time.Date(2014, 6, 23, 9, 0, 0, 0, time.UTC)

// scenarioResult is everything the scripted scenario observes through a
// Session — the material the equivalence test diffs across transports.
type scenarioResult struct {
	Registers []core.RegisterReport
	Sync      core.SyncReport
	Boots     []core.BootReport
	Rx        int64
	Stats     core.DeploymentStats
	Health    []core.NodeStatus
	GC        int
}

// runScenario drives one seeded end-to-end script — registrations with
// a node offline mid-wave, catch-up sync, a dropped replica forcing a
// peer-served cold boot, a boot wave, stats/health, GC — identically
// against any Session.
func runScenario(t *testing.T, sess ctlplane.Session) scenarioResult {
	t.Helper()
	ctx := context.Background()
	info, err := sess.Info()
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Images) == 0 || len(info.ComputeNodes) < 2 {
		t.Fatalf("degenerate deployment: %+v", info)
	}
	var res scenarioResult
	offline := info.ComputeNodes[1]
	for i, id := range info.Images {
		if i == len(info.Images)/2 {
			if err := sess.SetOnline(offline, false); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := sess.Register(ctx, id, sessionT0.Add(time.Duration(i)*time.Minute))
		if err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
		res.Registers = append(res.Registers, rep)
	}
	if err := sess.SetOnline(offline, true); err != nil {
		t.Fatal(err)
	}
	if res.Sync, err = sess.SyncNode(ctx, offline); err != nil {
		t.Fatal(err)
	}
	if err := sess.DropReplica(info.ComputeNodes[0], info.Images[0]); err != nil {
		t.Fatal(err)
	}
	if err := sess.ResetNetCounters(); err != nil {
		t.Fatal(err)
	}
	img := 0
	for _, n := range info.ComputeNodes {
		for v := 0; v < 2; v++ {
			id := info.Images[img%len(info.Images)]
			img++
			rep, err := sess.Boot(ctx, core.BootRequest{Image: id, Node: n, Verify: true})
			if err != nil {
				t.Fatalf("boot %s on %s: %v", id, n, err)
			}
			res.Boots = append(res.Boots, rep)
		}
	}
	if res.Rx, err = sess.ComputeRx(); err != nil {
		t.Fatal(err)
	}
	if res.Stats, err = sess.Stats(); err != nil {
		t.Fatal(err)
	}
	if res.Health, err = sess.Health(); err != nil {
		t.Fatal(err)
	}
	if res.GC, err = sess.GarbageCollect(sessionT0.Add(30 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDaemonEquivalence is the acceptance proof: the same seeded
// scenario produces identical reports whether the Session is the
// in-process Local or a wireclient talking to a live daemon — every
// RegisterReport and BootReport field, plus sync, stats, health, and
// NIC accounting, survives the wire byte-for-byte.
func TestDaemonEquivalence(t *testing.T) {
	opts := ctlplane.Options{Images: 4, Nodes: 4, Peers: true}

	local, err := ctlplane.NewLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := runScenario(t, local)

	addr, _ := startServer(t, opts, Config{})
	got := runScenario(t, dial(t, addr))

	if !reflect.DeepEqual(want.Registers, got.Registers) {
		t.Errorf("RegisterReports diverge:\nin-process: %+v\ndaemon:     %+v", want.Registers, got.Registers)
	}
	if !reflect.DeepEqual(want.Boots, got.Boots) {
		t.Errorf("BootReports diverge:\nin-process: %+v\ndaemon:     %+v", want.Boots, got.Boots)
	}
	if !reflect.DeepEqual(want.Sync, got.Sync) {
		t.Errorf("SyncReport diverges: %+v vs %+v", want.Sync, got.Sync)
	}
	if want.Rx != got.Rx {
		t.Errorf("compute RX diverges: %d vs %d", want.Rx, got.Rx)
	}
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Errorf("DeploymentStats diverge:\nin-process: %+v\ndaemon:     %+v", want.Stats, got.Stats)
	}
	if !statusesEqual(want.Health, got.Health) {
		t.Errorf("Health diverges:\nin-process: %+v\ndaemon:     %+v", want.Health, got.Health)
	}
	if want.GC != got.GC {
		t.Errorf("GC count diverges: %d vs %d", want.GC, got.GC)
	}
}

// statusesEqual compares health tables with time.Time equality
// semantics (JSON round-trips drop the monotonic clock reading, which
// reflect.DeepEqual would treat as a difference).
func statusesEqual(a, b []core.NodeStatus) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if !x.LastScrub.Equal(y.LastScrub) || !x.DownSince.Equal(y.DownSince) {
			return false
		}
		x.LastScrub, y.LastScrub = time.Time{}, time.Time{}
		x.DownSince, y.DownSince = time.Time{}, time.Time{}
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	return true
}

// TestWireSentinels proves the errors.Is family — and therefore
// squirrelctl's exit codes 2–5 — survives the wire.
func TestWireSentinels(t *testing.T) {
	addr, _ := startServer(t, ctlplane.Options{Images: 2, Nodes: 2}, Config{})
	c := dial(t, addr)
	ctx := context.Background()
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	im, node := info.Images[0], info.ComputeNodes[0]
	if _, err := c.Register(ctx, im, sessionT0); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Boot(ctx, core.BootRequest{Image: "nope", Node: node}); !errors.Is(err, core.ErrUnknownImage) {
		t.Errorf("unknown image over the wire: got %v", err)
	}
	if _, err := c.Boot(ctx, core.BootRequest{Image: im, Node: "nope"}); !errors.Is(err, core.ErrUnknownNode) {
		t.Errorf("unknown node over the wire: got %v", err)
	}
	if _, err := c.Register(ctx, im, sessionT0); !errors.Is(err, core.ErrRegistered) {
		t.Errorf("duplicate register over the wire: got %v", err)
	}
	if err := c.SetOnline(node, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Boot(ctx, core.BootRequest{Image: im, Node: node}); !errors.Is(err, core.ErrNodeOffline) {
		t.Errorf("offline node over the wire: got %v", err)
	}
	// The message crosses too: operators see the server-side detail.
	_, err = c.Boot(ctx, core.BootRequest{Image: im, Node: node})
	if err == nil || !strings.Contains(err.Error(), node) {
		t.Errorf("error message lost detail: %v", err)
	}
}

// TestPipelinedConcurrentCalls hammers one connection from many
// goroutines: request IDs must route every response to its caller
// (run under -race this is also the client/daemon concurrency proof).
func TestPipelinedConcurrentCalls(t *testing.T) {
	opts := ctlplane.Options{Images: 2, Nodes: 4}
	addr, _ := startServer(t, opts, Config{})
	c := dial(t, addr)
	ctx := context.Background()
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range info.Images {
		if _, err := c.Register(ctx, id, sessionT0.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := info.ComputeNodes[i%len(info.ComputeNodes)]
			im := info.Images[i%len(info.Images)]
			for j := 0; j < 4; j++ {
				rep, err := c.Boot(ctx, core.BootRequest{Image: im, Node: node, Verify: true})
				if err != nil {
					errs <- err
					return
				}
				if rep.ImageID != im || rep.NodeID != node {
					errs <- fmt.Errorf("response routed to wrong caller: got %s/%s want %s/%s",
						rep.ImageID, rep.NodeID, im, node)
					return
				}
				if _, err := c.Health(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestGracefulShutdownDrainsBoots is the SIGTERM-semantics proof:
// Shutdown with boots in flight completes those boots (their responses
// arrive intact), rejects new connections, and Serve exits cleanly.
func TestGracefulShutdownDrainsBoots(t *testing.T) {
	opts := ctlplane.Options{Images: 2, Nodes: 4, BootLatency: 150 * time.Millisecond}
	local, err := ctlplane.NewLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(local, Config{Addr: "127.0.0.1:0"})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	addr := srv.Addr().String()

	c, err := wireclient.Dial(wireclient.Options{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range info.Images {
		if _, err := c.Register(ctx, id, sessionT0.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}

	// Fire a wave of slow boots, then shut down mid-flight.
	const boots = 8
	reports := make(chan core.BootReport, boots)
	bootErrs := make(chan error, boots)
	var wg sync.WaitGroup
	for i := 0; i < boots; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := c.Boot(ctx, core.BootRequest{
				Image: info.Images[i%len(info.Images)],
				Node:  info.ComputeNodes[i%len(info.ComputeNodes)],
			})
			if err != nil {
				bootErrs <- err
				return
			}
			reports <- rep
		}(i)
	}
	time.Sleep(30 * time.Millisecond) // let the wave reach the daemon

	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("graceful shutdown did not drain: %v", err)
	}
	wg.Wait()
	close(reports)
	close(bootErrs)
	for err := range bootErrs {
		t.Errorf("in-flight boot failed across shutdown: %v", err)
	}
	n := 0
	for rep := range reports {
		n++
		if rep.ImageID == "" || rep.NodeID == "" {
			t.Errorf("drained boot returned an empty report: %+v", rep)
		}
	}
	if n != boots {
		t.Errorf("only %d/%d in-flight boots completed across shutdown", n, boots)
	}

	// New connections must be refused now.
	if _, err := wireclient.Dial(wireclient.Options{Addr: addr, Attempts: 2, Backoff: 10 * time.Millisecond}); !errors.Is(err, wireclient.ErrConnect) {
		t.Errorf("dial after shutdown: got %v, want ErrConnect", err)
	}
	if err := <-served; err != nil {
		t.Errorf("Serve returned %v after graceful shutdown", err)
	}
}

// TestHandshakeVersionMismatch speaks a future protocol version at the
// daemon raw: the reply must name both versions, and the client
// surface must fail fast with ErrHandshake (no retry can fix it).
func TestHandshakeVersionMismatch(t *testing.T) {
	addr, _ := startServer(t, ctlplane.Options{Images: 1, Nodes: 1}, Config{})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := make([]byte, 0, 8)
	hello = append(hello, wireproto.Magic...)
	hello = binary.LittleEndian.AppendUint16(hello, wireproto.Version+41)
	hello = binary.LittleEndian.AppendUint16(hello, 0)
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	_, status, msg, err := wireproto.ReadHelloReply(conn)
	if err != nil {
		t.Fatal(err)
	}
	if status != wireproto.HelloVersionMismatch {
		t.Fatalf("status %d, want HelloVersionMismatch", status)
	}
	for _, want := range []string{
		fmt.Sprintf("v%d", wireproto.Version),
		fmt.Sprintf("v%d", wireproto.Version+41),
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("mismatch message %q does not name %s", msg, want)
		}
	}
}

// TestConnLimit exhausts MaxConns and expects HelloBusy handshake
// rejections surfaced as ErrHandshake after the retry budget.
func TestConnLimit(t *testing.T) {
	addr, _ := startServer(t, ctlplane.Options{Images: 1, Nodes: 1}, Config{MaxConns: 2})
	c1 := dial(t, addr)
	c2 := dial(t, addr)
	if _, err := c1.Info(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Info(); err != nil {
		t.Fatal(err)
	}
	_, err := wireclient.Dial(wireclient.Options{Addr: addr, Attempts: 2, Backoff: 10 * time.Millisecond})
	if err == nil {
		t.Fatal("third connection admitted past MaxConns=2")
	}
	if !errors.Is(err, wireclient.ErrConnect) && !errors.Is(err, wireclient.ErrHandshake) {
		t.Errorf("over-limit dial: got %v", err)
	}
	// Freeing a slot readmits.
	c1.Close()
	c3, err := wireclient.Dial(wireclient.Options{Addr: addr, Attempts: 10, Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial after slot freed: %v", err)
	}
	defer c3.Close()
	if _, err := c3.Info(); err != nil {
		t.Error(err)
	}
}

// TestMalformedFrameClosesConn sends garbage mid-stream: the daemon
// must drop the connection (the framing is out of sync) without taking
// the process down, and a fresh connection must still be served.
func TestMalformedFrameClosesConn(t *testing.T) {
	addr, _ := startServer(t, ctlplane.Options{Images: 1, Nodes: 1}, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wireproto.WriteHello(conn); err != nil {
		t.Fatal(err)
	}
	if _, status, _, err := wireproto.ReadHelloReply(conn); err != nil || status != wireproto.HelloOK {
		t.Fatalf("handshake: status %d err %v", status, err)
	}
	if _, err := conn.Write([]byte("this is not a frame, not even close............")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := conn.Read(buf); err != nil {
			break // connection dropped, as it must be
		}
	}
	// The daemon survived and serves new connections.
	c := dial(t, addr)
	if _, err := c.Info(); err != nil {
		t.Errorf("daemon unusable after malformed frame: %v", err)
	}
}

// TestWorkloadOverWire drives the workload op through the daemon and
// checks the summary equals what the identical in-process deployment
// produces: the scenario runs server-side, only args and the fixed-size
// summary cross the wire, and logical-clock determinism makes the two
// transports byte-comparable.
func TestWorkloadOverWire(t *testing.T) {
	opts := ctlplane.Options{Images: 8, Nodes: 16, Peers: true}
	args := ctlplane.WorkloadArgs{Arrivals: "flash", Boots: 1600, Seed: 7}

	addr, _ := startServer(t, opts, Config{})
	c := dial(t, addr)
	wire, err := c.Workload(context.Background(), args)
	if err != nil {
		t.Fatalf("workload over wire: %v", err)
	}

	local, err := ctlplane.NewLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	direct, err := local.Workload(context.Background(), args)
	if err != nil {
		t.Fatalf("workload in-process: %v", err)
	}

	wire.ElapsedSec, wire.HeapMB = 0, 0
	direct.ElapsedSec, direct.HeapMB = 0, 0
	if !reflect.DeepEqual(wire, direct) {
		t.Fatalf("wire and in-process workload summaries differ:\n  wire:   %+v\n  direct: %+v", wire, direct)
	}
	if wire.Index != "central" || wire.Boots != 1600 || wire.Admitted+wire.Shed != wire.Boots {
		t.Fatalf("summary sanity: %+v", wire)
	}
	if wire.Arrivals != "flash" || wire.Cold == 0 {
		t.Fatalf("flash scenario did not exercise cold boots: %+v", wire)
	}
}

// TestWorkloadNeedsV2 pins the daemon-side version gate: a connection
// that negotiated protocol v1 gets an error frame, not a scenario run,
// when it sends a TWorkload frame.
func TestWorkloadNeedsV2(t *testing.T) {
	addr, _ := startServer(t, ctlplane.Options{Images: 1, Nodes: 2}, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wireproto.WriteHelloVersion(conn, 1); err != nil {
		t.Fatal(err)
	}
	if ver, status, _, err := wireproto.ReadHelloReply(conn); err != nil || status != wireproto.HelloOK || ver != 1 {
		t.Fatalf("v1 handshake: ver %d status %d err %v", ver, status, err)
	}
	if err := wireproto.WriteFrame(conn, wireproto.Frame{Type: wireproto.TWorkload, ReqID: 1}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := wireproto.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if !f.IsError() {
		t.Fatalf("v1 workload frame was served, want version-gate error")
	}
	code, msg, err := wireproto.DecodeError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if code != wireproto.CodeBadRequest || !strings.Contains(msg, "protocol v2") {
		t.Fatalf("gate error = code %d %q, want CodeBadRequest naming protocol v2", code, msg)
	}
}
