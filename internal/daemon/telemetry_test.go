package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/obs"
	"repro/internal/wireclient"
)

// startTraced brings up a daemon over a traced deployment with the
// daemon's dispatch spans landing in the deployment's own telemetry —
// the configuration squirreld -traced runs.
func startTraced(t *testing.T, opts ctlplane.Options) (string, *ctlplane.Local) {
	t.Helper()
	opts.Traced = true
	local, err := ctlplane.NewLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(local, Config{Addr: "127.0.0.1:0", Tel: local.Squirrel().Telemetry()})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv.Addr().String(), local
}

// dialTraced opens a wire session with client-side tracing, so frames
// carry trace context and TraceMerged can graft the daemon's halves.
func dialTraced(t *testing.T, addr string) *wireclient.Client {
	t.Helper()
	c, err := wireclient.Dial(wireclient.Options{Addr: addr, Obs: obs.New(0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// renderedLine is one line of a rendered trace: its indentation depth
// and leading op kind.
type renderedLine struct {
	depth int
	kind  string
}

func lineDepths(tree string) []renderedLine {
	var out []renderedLine
	for _, ln := range strings.Split(strings.TrimRight(tree, "\n"), "\n") {
		trimmed := strings.TrimLeft(ln, " ")
		out = append(out, renderedLine{
			depth: (len(ln) - len(trimmed)) / 2,
			kind:  strings.Fields(trimmed)[0],
		})
	}
	return out
}

// TestWireTraceMergedSingleTree is the acceptance proof for wire trace
// propagation: after a boot driven over TCP, the client renders ONE
// tree spanning both processes — its session root, the dial attempt,
// the boot RPC, the daemon's dispatch continuation grafted under it,
// and the core boot span under that.
func TestWireTraceMergedSingleTree(t *testing.T) {
	addr, _ := startTraced(t, ctlplane.Options{Images: 2, Nodes: 2, Peers: true})
	c := dialTraced(t, addr)

	ctx := context.Background()
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, info.Images[0], sessionT0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Boot(ctx, core.BootRequest{Image: info.Images[0], Node: info.ComputeNodes[0], Verify: true}); err != nil {
		t.Fatal(err)
	}

	tree, err := c.TraceMerged(obs.OpBoot)
	if err != nil {
		t.Fatal(err)
	}
	lines := lineDepths(tree)

	var roots, dials, rpcs, dispatches, boots int
	depthOf := map[string]int{}
	for _, l := range lines {
		depth, kind := l.depth, l.kind
		switch kind {
		case obs.OpSession:
			roots++
			if depth != 0 {
				t.Fatalf("session span at depth %d, want 0:\n%s", depth, tree)
			}
		case obs.OpDial:
			dials++
			depthOf[kind] = depth
		case obs.OpRPC:
			rpcs++
			depthOf[kind] = depth
		case obs.OpDispatch:
			dispatches++
			depthOf[kind] = depth
		case obs.OpBoot:
			boots++
			depthOf[kind] = depth
		}
	}
	if roots != 1 {
		t.Fatalf("merged trace has %d roots, want exactly 1 (%s):\n%s", roots, obs.OpSession, tree)
	}
	if dials < 1 || depthOf[obs.OpDial] != 1 {
		t.Fatalf("dial attempt missing or misplaced (n=%d depth=%d):\n%s", dials, depthOf[obs.OpDial], tree)
	}
	if rpcs != 1 || depthOf[obs.OpRPC] != 1 {
		t.Fatalf("want exactly one pruned rpc.call at depth 1, got n=%d depth=%d:\n%s", rpcs, depthOf[obs.OpRPC], tree)
	}
	if dispatches != 1 || depthOf[obs.OpDispatch] != 2 {
		t.Fatalf("daemon dispatch not grafted under the rpc (n=%d depth=%d):\n%s", dispatches, depthOf[obs.OpDispatch], tree)
	}
	if boots != 1 || depthOf[obs.OpBoot] != 3 {
		t.Fatalf("core boot span not under the dispatch (n=%d depth=%d):\n%s", boots, depthOf[obs.OpBoot], tree)
	}
	if !strings.Contains(tree, "op.boot=1") {
		t.Fatalf("rpc annotation missing:\n%s", tree)
	}
}

// TestWatchStreamOverWire drives the TWatch stream end to end: a
// client-side Watch over TCP receives exactly Count in-order updates
// whose rows reflect the boots that preceded the watch, and an
// early-abort (callback error) tears the stream down without wedging
// the connection's read loop.
func TestWatchStreamOverWire(t *testing.T) {
	addr, _ := startTraced(t, ctlplane.Options{Images: 2, Nodes: 2})
	c := dialTraced(t, addr)

	ctx := context.Background()
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range info.Images {
		if _, err := c.Register(ctx, id, sessionT0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Boot(ctx, core.BootRequest{Image: info.Images[0], Node: info.ComputeNodes[0]}); err != nil {
		t.Fatal(err)
	}

	var updates []ctlplane.WatchUpdate
	err = c.Watch(ctx, ctlplane.WatchArgs{Every: 5 * time.Millisecond, Count: 3}, func(u ctlplane.WatchUpdate) error {
		updates = append(updates, u)
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if len(updates) != 3 {
		t.Fatalf("got %d updates, want 3", len(updates))
	}
	for i, u := range updates {
		if u.Seq != i+1 {
			t.Fatalf("update %d has Seq %d", i, u.Seq)
		}
		if u.SpansRecorded == 0 {
			t.Fatalf("update %d reports zero spans recorded", i)
		}
	}
	var boot *ctlplane.WatchOp
	for i := range updates[0].Ops {
		if updates[0].Ops[i].Kind == obs.OpBoot {
			boot = &updates[0].Ops[i]
		}
	}
	if boot == nil || boot.Count < 1 {
		t.Fatalf("first update has no boot row: %+v", updates[0].Ops)
	}
	if boot.Delta != boot.Count {
		t.Fatalf("first update's delta %d should be cumulative (count %d)", boot.Delta, boot.Count)
	}

	// Early abort: the callback rejects after one update. The client
	// must surface the error immediately and keep the connection usable
	// while the remaining stream frames drain in the background.
	abort := errors.New("enough")
	err = c.Watch(ctx, ctlplane.WatchArgs{Every: 5 * time.Millisecond, Count: 50}, func(ctlplane.WatchUpdate) error {
		return abort
	})
	if !errors.Is(err, abort) {
		t.Fatalf("aborted watch returned %v, want the callback error", err)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatalf("connection wedged after aborted watch: %v", err)
	}
}

// TestWatchUntracedDaemonErrors pins the failure mode when the
// deployment has no telemetry: the stream request crosses the wire and
// comes back as a clean protocol error naming the cure.
func TestWatchUntracedDaemonErrors(t *testing.T) {
	addr, _ := startServer(t, ctlplane.Options{Images: 2, Nodes: 2}, Config{})
	c := dial(t, addr)
	err := c.Watch(context.Background(), ctlplane.WatchArgs{Every: time.Millisecond, Count: 1}, func(ctlplane.WatchUpdate) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "telemetry disabled") {
		t.Fatalf("untraced watch returned %v, want telemetry-disabled error", err)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatalf("connection unusable after refused watch: %v", err)
	}
}

// TestMetricsHandler scrapes the live HTTP surface against a traced
// deployment that has done real work, and pins the disabled behavior.
func TestMetricsHandler(t *testing.T) {
	local, err := ctlplane.NewLocal(ctlplane.Options{Images: 2, Nodes: 2, Traced: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	info, _ := local.Info()
	if _, err := local.Register(ctx, info.Images[0], sessionT0); err != nil {
		t.Fatal(err)
	}
	if _, err := local.Boot(ctx, core.BootRequest{Image: info.Images[0], Node: info.ComputeNodes[0]}); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(MetricsHandler(local.Squirrel().Telemetry()))
	defer ts.Close()

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{`squirrel_op_total{kind="boot"} 1`, `squirrel_op_total{kind="register"} 1`, "# TYPE squirrel_op_latency_ms summary"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	res, err = http.Get(ts.URL + "/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	jbody, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/telemetry content type %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(jbody, &snap); err != nil {
		t.Fatalf("/telemetry not JSON: %v\n%s", err, jbody)
	}
	if op, ok := snap.Op("boot"); !ok || op.Count != 1 {
		t.Fatalf("/telemetry snapshot missing boot row: %+v", snap.Ops)
	}

	// Telemetry off → both endpoints refuse with 503, not empty bodies
	// a scraper would read as "all counters zero".
	off := httptest.NewServer(MetricsHandler(nil))
	defer off.Close()
	for _, path := range []string{"/metrics", "/telemetry"} {
		res, err := http.Get(off.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s on untraced deployment: status %d, want 503", path, res.StatusCode)
		}
	}
}
