package daemon

import (
	"net/http"

	"repro/internal/obs"
)

// MetricsHandler serves a deployment's live telemetry over HTTP:
//
//	GET /metrics    Prometheus text exposition (text/plain; version 0.0.4)
//	GET /telemetry  the full snapshot as JSON
//
// Every request takes a fresh obs.Snapshot, so scrapes always see
// current counters and histograms; rows are deterministically sorted
// (obs guarantees it), so successive scrapes diff cleanly. squirreld
// mounts this on -metrics-addr; tests mount it on httptest servers.
func MetricsHandler(tel *obs.Telemetry) http.Handler {
	mux := http.NewServeMux()
	if tel == nil {
		unavailable := func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "telemetry disabled on this deployment (start squirreld with -traced)", http.StatusServiceUnavailable)
		}
		mux.HandleFunc("/metrics", unavailable)
		mux.HandleFunc("/telemetry", unavailable)
		return mux
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := tel.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(snap.Prometheus()))
	})
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, r *http.Request) {
		snap := tel.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(snap.JSON()))
	})
	return mux
}
