// Package daemon is the server side of Squirrel's control plane: it
// owns a deployment (a ctlplane.Session, normally ctlplane.Local) and
// serves it to wireclient connections over the wireproto framing.
//
// cmd/squirreld is a thin flag-parsing wrapper around Server; the
// logic lives here so the loopback end-to-end, equivalence, and
// graceful-shutdown tests can drive a real listening server inside
// `go test -race`.
//
// Concurrency model: one goroutine per connection reads frames and
// spawns one goroutine per request (clients pipeline by request ID), a
// second per-connection goroutine serializes response writes. Graceful
// shutdown (SIGTERM in squirreld, or Server.Shutdown) stops accepting
// connections and reading new frames but lets every in-flight request
// — boots included — run to completion and flush its response before
// the connections close; only when the Shutdown context expires are
// request contexts cancelled and connections torn down.
package daemon

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/version"
	"repro/internal/wireproto"
)

// Config shapes one Server.
type Config struct {
	// Addr is the TCP listen address (host:port; port 0 picks one).
	Addr string
	// MaxConns bounds concurrently served connections; connections over
	// the limit are rejected with a HelloBusy handshake reply. 0 means
	// DefaultMaxConns.
	MaxConns int
	// HandshakeTimeout bounds how long a fresh connection may take to
	// complete the hello exchange. 0 means DefaultHandshakeTimeout.
	HandshakeTimeout time.Duration
	// Logf, when set, receives one line per lifecycle event (listen,
	// serve, drain). nil is silent — tests want quiet servers.
	Logf func(format string, args ...any)
	// Tel, when set, is the deployment's telemetry: every request frame
	// opens an rpc.dispatch span (continuing the client's trace when the
	// frame carries FlagTrace), and the TTraceTree op serves dispatch
	// trees from its ring. nil disables daemon-side dispatch spans.
	Tel *obs.Telemetry
}

// Defaults for Config zero values.
const (
	DefaultMaxConns         = 64
	DefaultHandshakeTimeout = 10 * time.Second
	writeTimeout            = 30 * time.Second
)

// errBadRequest marks undecodable bodies and unknown frame types; it
// travels as CodeBadRequest.
var errBadRequest = errors.New("daemon: bad request")

// Server serves one deployment over TCP.
type Server struct {
	cfg  Config
	sess ctlplane.Session

	// ctx is the base context of every request; cancel fires only on
	// forced (deadline-expired) shutdown, so a graceful drain lets
	// in-flight boots finish.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	connWG   sync.WaitGroup
}

// New builds a Server over sess. Call Listen then Serve.
func New(sess ctlplane.Session, cfg Config) *Server {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{cfg: cfg, sess: sess, ctx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{})}
}

// Listen binds the configured address. Split from Serve so callers can
// learn the bound address (port 0) before any client dials.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("daemon: listen %s: %w", s.cfg.Addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.logf("squirreld %s listening on %s (proto v%d, max %d conns)",
		version.Build, ln.Addr(), wireproto.Version, s.cfg.MaxConns)
	return nil
}

// Addr is the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts and serves connections until the listener closes.
// After a graceful Shutdown it returns nil once every connection has
// drained; any other accept failure is returned as-is.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return fmt.Errorf("daemon: Serve before Listen")
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				s.connWG.Wait()
				return nil
			}
			return fmt.Errorf("daemon: accept: %w", err)
		}
		busy := false
		s.mu.Lock()
		switch {
		case s.draining.Load():
			s.mu.Unlock()
			_ = c.Close()
			continue
		case len(s.conns) >= s.cfg.MaxConns:
			busy = true
		default:
			s.conns[c] = struct{}{}
			s.connWG.Add(1)
		}
		s.mu.Unlock()
		if busy {
			go s.rejectBusy(c)
			continue
		}
		go s.handleConn(c)
	}
}

// Shutdown drains the server: no new connections, no new requests, but
// every request already in flight completes and its response is
// flushed. If ctx expires first, in-flight request contexts are
// cancelled and connections are closed; Shutdown still waits for the
// connection handlers to unwind before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining.Swap(true)
	ln := s.ln
	if ln != nil {
		_ = ln.Close()
	}
	for c := range s.conns {
		// Nudge the read loops: the pending ReadFrame fails with a
		// deadline error and the loop stops pulling new requests.
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if !already {
		s.logf("draining: waiting for in-flight requests")
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// rejectBusy answers the handshake of an over-limit connection with
// HelloBusy and closes it.
func (s *Server) rejectBusy(c net.Conn) {
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	if _, err := wireproto.ReadHello(c); err != nil {
		return
	}
	_ = wireproto.WriteHelloReply(c, wireproto.HelloBusy,
		fmt.Sprintf("squirreld at connection limit (%d); retry", s.cfg.MaxConns))
}

// handleConn runs one connection: handshake, then a read loop that
// fans requests out to handler goroutines and a write loop that
// serializes their responses.
func (s *Server) handleConn(c net.Conn) {
	defer func() {
		_ = c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.connWG.Done()
	}()

	br := bufio.NewReader(c)
	_ = c.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	ver, err := wireproto.ReadHello(br)
	if err != nil {
		return
	}
	agreed, ok := wireproto.Negotiate(ver)
	if !ok {
		_ = wireproto.WriteHelloReply(c, wireproto.HelloVersionMismatch,
			fmt.Sprintf("protocol version mismatch: server %s speaks v%d (accepts ≥ v%d), client sent v%d",
				version.Build, wireproto.Version, wireproto.MinVersion, ver))
		return
	}
	if err := wireproto.WriteHelloReplyVersion(c, agreed, wireproto.HelloOK, ""); err != nil {
		return
	}
	_ = c.SetReadDeadline(time.Time{})

	out := make(chan wireproto.Frame, 32)
	writerDone := make(chan struct{})
	go s.writeLoop(c, out, writerDone)

	var pending sync.WaitGroup
	for {
		f, err := wireproto.ReadFrame(br)
		if err != nil {
			// EOF, the shutdown nudge, or a framing violation — in every
			// case the stream is done taking requests. A framing error is
			// unrecoverable by construction (the byte stream is out of
			// sync), so closing is the only safe answer.
			break
		}
		if s.draining.Load() {
			out <- errorFrame(f, ctlplane.ErrDraining)
			continue
		}
		if agreed < 2 && (f.Type == wireproto.TWatch || f.Type == wireproto.TTraceTree || f.Type == wireproto.TWorkload) {
			out <- errorFrame(f, fmt.Errorf("%w: frame type %d needs protocol v2 (negotiated v%d)",
				errBadRequest, f.Type, agreed))
			continue
		}
		if f.Type == wireproto.TWatch {
			// Streaming reply: the handler pushes FlagStream elements onto
			// the shared write channel itself, then a final plain response.
			pending.Add(1)
			go func(f wireproto.Frame) {
				defer pending.Done()
				s.serveWatch(f, out)
			}(f)
			continue
		}
		pending.Add(1)
		go func(f wireproto.Frame) {
			defer pending.Done()
			out <- s.dispatch(f)
		}(f)
	}
	// Drain: every accepted request finishes and flushes before close.
	pending.Wait()
	close(out)
	<-writerDone
}

// writeLoop serializes response frames onto the connection. After a
// write error it keeps draining the channel (discarding frames) so
// handler goroutines never block on a dead connection.
func (s *Server) writeLoop(c net.Conn, out <-chan wireproto.Frame, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriter(c)
	broken := false
	for f := range out {
		if broken {
			continue
		}
		_ = c.SetWriteDeadline(time.Now().Add(writeTimeout))
		if err := wireproto.WriteFrame(bw, f); err != nil {
			broken = true
			continue
		}
		if err := bw.Flush(); err != nil {
			broken = true
		}
	}
}

// dispatchSpan opens the daemon-side span for one request frame. A
// frame carrying FlagTrace continues the client's trace (the dispatch
// tree records the client's trace ID and issuing span, so TTraceTree
// can ship it back for grafting); an untraced frame opens an ordinary —
// head-sampled — root. The TTraceTree op itself is never spanned: its
// dispatches must not appear inside the traces they retrieve.
func (s *Server) dispatchSpan(f wireproto.Frame) *obs.Span {
	tr := s.cfg.Tel.Tracer()
	if tr == nil || f.Type == wireproto.TTraceTree {
		return nil
	}
	var sp *obs.Span
	if f.Flags&wireproto.FlagTrace != 0 {
		sp = tr.StartRemoteOp(obs.OpDispatch, "", "", f.TraceID, f.SpanID)
	} else {
		sp = tr.StartOp(obs.OpDispatch, "", "")
	}
	sp.Annotate("op."+wireproto.TypeName(f.Type), 1)
	return sp
}

// dispatch decodes one request, runs it against the session, and
// encodes the response (or error) frame. A handler panic is converted
// into an error frame rather than killing the daemon.
func (s *Server) dispatch(f wireproto.Frame) (resp wireproto.Frame) {
	sp := s.dispatchSpan(f)
	defer func() {
		if r := recover(); r != nil {
			resp = errorFrame(f, fmt.Errorf("daemon: panic serving frame type %d: %v", f.Type, r))
		}
		if resp.IsError() {
			sp.Annotate("error", 1)
		}
		// Finished before the response frame is handed to the write loop,
		// so by the time the client sees the reply the dispatch tree is in
		// the telemetry ring and a TraceMerged fetch will find it.
		sp.Finish()
	}()
	result, err := s.handle(obs.ContextWithSpan(s.ctx, sp), f.Type, f.Payload)
	if err != nil {
		sp.Fail(err)
		return errorFrame(f, err)
	}
	var payload []byte
	if result != nil {
		payload, err = json.Marshal(result)
		if err != nil {
			return errorFrame(f, fmt.Errorf("daemon: encode response: %w", err))
		}
	}
	return wireproto.Frame{Type: f.Type, Flags: wireproto.FlagResponse, ReqID: f.ReqID, Payload: payload}
}

// serveWatch runs one TWatch exchange: it delegates to the session's
// Watch (so local and wire watches emit identical update schemas) and
// ships every update as a FlagStream frame, then terminates the stream
// with a final plain response — or an error frame if the watch failed
// before completing.
func (s *Server) serveWatch(f wireproto.Frame, out chan<- wireproto.Frame) {
	sp := s.dispatchSpan(f)
	args, err := decode[ctlplane.WatchArgs](f.Payload)
	if err == nil {
		err = s.sess.Watch(obs.ContextWithSpan(s.ctx, sp), args, func(u ctlplane.WatchUpdate) error {
			payload, merr := json.Marshal(u)
			if merr != nil {
				return fmt.Errorf("daemon: encode watch update: %w", merr)
			}
			sp.Annotate("updates", 1)
			out <- wireproto.Frame{
				Type:    wireproto.TWatch,
				Flags:   wireproto.FlagResponse | wireproto.FlagStream,
				ReqID:   f.ReqID,
				Payload: payload,
			}
			return nil
		})
	}
	if err != nil {
		sp.Fail(err)
		sp.Finish()
		out <- errorFrame(f, err)
		return
	}
	sp.Finish()
	out <- wireproto.Frame{Type: wireproto.TWatch, Flags: wireproto.FlagResponse, ReqID: f.ReqID}
}

// errorFrame wraps err as the error response to frame f, mapping the
// sentinel family onto wire codes so clients rebuild errors.Is
// identity.
func errorFrame(f wireproto.Frame, err error) wireproto.Frame {
	code := ctlplane.CodeFor(err)
	if errors.Is(err, errBadRequest) {
		code = wireproto.CodeBadRequest
	}
	return wireproto.Frame{
		Type:    f.Type,
		Flags:   wireproto.FlagResponse | wireproto.FlagError,
		ReqID:   f.ReqID,
		Payload: wireproto.EncodeError(code, err.Error()),
	}
}

// decode unmarshals a request body; an empty body decodes to the zero
// args so bodyless frames stay cheap.
func decode[T any](body []byte) (T, error) {
	var v T
	if len(body) == 0 {
		return v, nil
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return v, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return v, nil
}

// handle maps one frame type onto the session call it names.
func (s *Server) handle(ctx context.Context, t uint8, body []byte) (any, error) {
	switch t {
	case wireproto.TInfo:
		return s.sess.Info()
	case wireproto.TRegister:
		a, err := decode[ctlplane.RegisterArgs](body)
		if err != nil {
			return nil, err
		}
		return s.sess.Register(ctx, a.Image, a.At)
	case wireproto.TBoot:
		a, err := decode[core.BootRequest](body)
		if err != nil {
			return nil, err
		}
		return s.sess.Boot(ctx, a)
	case wireproto.TSync:
		a, err := decode[ctlplane.NodeArgs](body)
		if err != nil {
			return nil, err
		}
		return s.sess.SyncNode(ctx, a.Node)
	case wireproto.THealth:
		return s.sess.Health()
	case wireproto.TTelemetry:
		return s.sess.Telemetry()
	case wireproto.TPeers:
		ctr, err := s.sess.PeerCounters()
		if err != nil {
			return nil, err
		}
		return ctlplane.PeersReply{Counters: ctr}, nil
	case wireproto.TStats:
		return s.sess.Stats()
	case wireproto.TSetOnline:
		a, err := decode[ctlplane.OnlineArgs](body)
		if err != nil {
			return nil, err
		}
		return nil, s.sess.SetOnline(a.Node, a.Up)
	case wireproto.TDropReplica:
		a, err := decode[ctlplane.DropArgs](body)
		if err != nil {
			return nil, err
		}
		return nil, s.sess.DropReplica(a.Node, a.Image)
	case wireproto.TCrash:
		a, err := decode[ctlplane.NodeAtArgs](body)
		if err != nil {
			return nil, err
		}
		return nil, s.sess.CrashNode(a.Node, a.At)
	case wireproto.TRestart:
		a, err := decode[ctlplane.NodeAtArgs](body)
		if err != nil {
			return nil, err
		}
		return s.sess.RestartNode(a.Node, a.At)
	case wireproto.TRot:
		a, err := decode[ctlplane.NodeArgs](body)
		if err != nil {
			return nil, err
		}
		n, err := s.sess.InjectRot(a.Node)
		if err != nil {
			return nil, err
		}
		return ctlplane.RotReply{Blocks: n}, nil
	case wireproto.TSetFaults:
		a, err := decode[fault.Plan](body)
		if err != nil {
			return nil, err
		}
		return nil, s.sess.SetFaults(a)
	case wireproto.TScrubAll:
		a, err := decode[ctlplane.AtArgs](body)
		if err != nil {
			return nil, err
		}
		return s.sess.ScrubAll(ctx, a.At)
	case wireproto.TResilverAll:
		a, err := decode[ctlplane.AtArgs](body)
		if err != nil {
			return nil, err
		}
		return s.sess.ResilverAll(ctx, a.At)
	case wireproto.TGC:
		a, err := decode[ctlplane.AtArgs](body)
		if err != nil {
			return nil, err
		}
		n, err := s.sess.GarbageCollect(a.At)
		if err != nil {
			return nil, err
		}
		return ctlplane.CountReply{N: n}, nil
	case wireproto.TTrace:
		a, err := decode[ctlplane.TraceArgs](body)
		if err != nil {
			return nil, err
		}
		text, err := s.sess.TraceSlowest(a.Kind)
		if err != nil {
			return nil, err
		}
		return ctlplane.TextReply{Text: text}, nil
	case wireproto.TTraceTree:
		a, err := decode[ctlplane.TraceTreeArgs](body)
		if err != nil {
			return nil, err
		}
		if s.cfg.Tel == nil {
			return nil, fmt.Errorf("daemon: telemetry disabled on this deployment (start with tracing)")
		}
		return ctlplane.TraceTreeReply{Trees: s.cfg.Tel.RemoteDumps(a.TraceID)}, nil
	case wireproto.TWorkload:
		a, err := decode[ctlplane.WorkloadArgs](body)
		if err != nil {
			return nil, err
		}
		return s.sess.Workload(ctx, a)
	case wireproto.TNetReset:
		return nil, s.sess.ResetNetCounters()
	case wireproto.TNetRx:
		n, err := s.sess.ComputeRx()
		if err != nil {
			return nil, err
		}
		return ctlplane.BytesReply{Bytes: n}, nil
	default:
		return nil, fmt.Errorf("%w: unknown frame type %d", errBadRequest, t)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
