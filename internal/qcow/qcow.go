// Package qcow implements the image chain of Figure 1 in the paper: a
// cluster-granular copy-on-write overlay (the QCOW2 role), a copy-on-read
// VMI cache layer in the middle, and a pluggable backing store at the
// bottom (the base VMI).
//
//	Original:    VM → CoW → base
//	Cold cache:  VM → CoW → cache (CoR, filling) → base
//	Warm cache:  VM → CoW → cache (complete)      [base never touched]
//
// The overlay fetches whole clusters from its backing store (QCOW2's
// default cluster size is 64 KB), which is the mechanism behind both the
// paper's "free prefetching" boot speedup (§4.2.3) and the 128 KB cVolume
// anomaly in Fig 11.
package qcow

import (
	"fmt"
	"io"
	"sync"
)

// DefaultClusterSize is QCOW2's default (64 KB = 128 sectors).
const DefaultClusterSize = 64 * 1024

// Backend is anything an overlay can be chained onto.
type Backend interface {
	io.ReaderAt
	Size() int64
}

// Overlay is a copy-on-write (and optionally copy-on-read) image over a
// backing store. It stores written or cached clusters in memory, which
// stands in for the compute node's local CoW file.
type Overlay struct {
	mu       sync.RWMutex
	cluster  int64
	size     int64
	backing  Backend
	clusters map[int64][]byte // cluster index → cluster payload
	cor      bool             // copy-on-read: cache clusters fetched from backing

	// Counters for the paper's transfer accounting: how many bytes were
	// fetched from the backing store (the network, for a PFS-mounted
	// base) and how many were served locally.
	BackingReads int64 // bytes fetched from backing
	LocalReads   int64 // bytes served from local clusters
}

// NewOverlay returns a CoW overlay over backing. cor enables copy-on-read
// (the VMI cache behaviour). clusterSize must be positive; the backing
// size is inherited.
func NewOverlay(backing Backend, clusterSize int64, cor bool) (*Overlay, error) {
	if clusterSize <= 0 {
		return nil, fmt.Errorf("qcow: cluster size %d", clusterSize)
	}
	if backing == nil {
		return nil, fmt.Errorf("qcow: nil backing")
	}
	return &Overlay{
		cluster:  clusterSize,
		size:     backing.Size(),
		backing:  backing,
		clusters: make(map[int64][]byte),
		cor:      cor,
	}, nil
}

// Size implements Backend.
func (o *Overlay) Size() int64 { return o.size }

// ClusterSize returns the overlay's cluster granularity.
func (o *Overlay) ClusterSize() int64 { return o.cluster }

// CachedClusters returns how many clusters are locally present.
func (o *Overlay) CachedClusters() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.clusters)
}

// ReadAt implements io.ReaderAt. Reads are resolved cluster by cluster:
// local clusters are served directly; missing ones are fetched whole from
// the backing store (and retained when copy-on-read is enabled).
func (o *Overlay) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("qcow: negative offset")
	}
	total := 0
	for len(p) > 0 && off < o.size {
		ci := off / o.cluster
		cOff := off % o.cluster
		n := int64(len(p))
		if rem := o.cluster - cOff; n > rem {
			n = rem
		}
		if rem := o.size - off; n > rem {
			n = rem
		}
		data, err := o.clusterFor(ci)
		if err != nil {
			return total, err
		}
		copy(p[:n], data[cOff:cOff+n])
		p = p[n:]
		off += n
		total += int(n)
	}
	if len(p) > 0 {
		return total, io.EOF
	}
	return total, nil
}

// clusterFor returns cluster ci's payload, fetching from backing on miss.
func (o *Overlay) clusterFor(ci int64) ([]byte, error) {
	o.mu.RLock()
	data, ok := o.clusters[ci]
	o.mu.RUnlock()
	if ok {
		o.mu.Lock()
		o.LocalReads += int64(len(data))
		o.mu.Unlock()
		return data, nil
	}
	buf, err := o.fetchCluster(ci)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	o.BackingReads += int64(len(buf))
	if o.cor {
		// Copy-on-read: the fetched cluster becomes part of the cache.
		if dup, ok := o.clusters[ci]; ok {
			buf = dup // raced with another reader; keep the first copy
		} else {
			o.clusters[ci] = buf
		}
	}
	o.mu.Unlock()
	return buf, nil
}

// fetchCluster reads one whole cluster from backing (short at EOF).
func (o *Overlay) fetchCluster(ci int64) ([]byte, error) {
	start := ci * o.cluster
	l := o.cluster
	if start+l > o.size {
		l = o.size - start
	}
	buf := make([]byte, l)
	n, err := o.backing.ReadAt(buf, start)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("qcow: backing read cluster %d: %w", ci, err)
	}
	if int64(n) != l {
		return nil, fmt.Errorf("qcow: short backing read: %d of %d", n, l)
	}
	return buf, nil
}

// WriteAt implements copy-on-write: partial cluster writes first fault in
// the cluster from below, then modify the local copy. The backing store
// is never written.
func (o *Overlay) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > o.size {
		return 0, fmt.Errorf("qcow: write out of range [%d,%d)", off, off+int64(len(p)))
	}
	total := 0
	for len(p) > 0 {
		ci := off / o.cluster
		cOff := off % o.cluster
		n := int64(len(p))
		if rem := o.cluster - cOff; n > rem {
			n = rem
		}
		o.mu.Lock()
		data, ok := o.clusters[ci]
		o.mu.Unlock()
		if !ok {
			fetched, err := o.fetchCluster(ci)
			if err != nil {
				return total, err
			}
			o.mu.Lock()
			if dup, present := o.clusters[ci]; present {
				data = dup
			} else {
				o.clusters[ci] = fetched
				data = fetched
				o.BackingReads += int64(len(fetched))
			}
			o.mu.Unlock()
		}
		o.mu.Lock()
		copy(data[cOff:], p[:n])
		o.mu.Unlock()
		p = p[n:]
		off += n
		total += int(n)
	}
	return total, nil
}

// ---------------------------------------------------------------------------
// Simple backends.

// MemBackend is an in-memory flat image, useful for tests and for fully
// materialized base images.
type MemBackend struct {
	Data []byte
}

// ReadAt implements Backend.
func (m *MemBackend) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(m.Data)) {
		return 0, io.EOF
	}
	n := copy(p, m.Data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size implements Backend.
func (m *MemBackend) Size() int64 { return int64(len(m.Data)) }

// FuncBackend adapts a ReadAt function, letting callers charge network or
// disk costs per fetch (the cluster simulator wraps PFS reads this way).
type FuncBackend struct {
	ReadAtFn func(p []byte, off int64) (int, error)
	SizeFn   func() int64
}

// ReadAt implements Backend.
func (f *FuncBackend) ReadAt(p []byte, off int64) (int, error) { return f.ReadAtFn(p, off) }

// Size implements Backend.
func (f *FuncBackend) Size() int64 { return f.SizeFn() }
