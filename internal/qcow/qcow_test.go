package qcow

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func mkBase(seed int64, n int) *MemBackend {
	rng := rand.New(rand.NewSource(seed))
	d := make([]byte, n)
	rng.Read(d)
	return &MemBackend{Data: d}
}

func TestOverlayReadEqualsBase(t *testing.T) {
	base := mkBase(1, 300*1024+123)
	ov, err := NewOverlay(base, DefaultClusterSize, false)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(base.Data))
	if _, err := ov.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base.Data) {
		t.Fatal("pristine overlay must equal base")
	}
}

func TestCopyOnWriteIsolation(t *testing.T) {
	base := mkBase(2, 256*1024)
	orig := append([]byte(nil), base.Data...)
	ov, _ := NewOverlay(base, 64*1024, false)
	patch := []byte("squirrel was here")
	if _, err := ov.WriteAt(patch, 100_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base.Data, orig) {
		t.Fatal("write leaked into the base image")
	}
	got := make([]byte, len(patch))
	ov.ReadAt(got, 100_000)
	if !bytes.Equal(got, patch) {
		t.Fatal("write not visible through overlay")
	}
	// Bytes around the patch still come from base.
	around := make([]byte, 64)
	ov.ReadAt(around, 100_000-64)
	if !bytes.Equal(around, orig[100_000-64:100_000]) {
		t.Fatal("partial-cluster write corrupted neighbours")
	}
}

func TestCopyOnReadWarmsCache(t *testing.T) {
	base := mkBase(3, 512*1024)
	cache, _ := NewOverlay(base, 64*1024, true)
	buf := make([]byte, 1000)
	cache.ReadAt(buf, 70_000) // one cluster fetched, cached
	if cache.CachedClusters() != 1 {
		t.Fatalf("cached clusters = %d, want 1", cache.CachedClusters())
	}
	first := cache.BackingReads
	if first != 64*1024 {
		t.Fatalf("cluster fetch read %d bytes from backing, want full cluster", first)
	}
	cache.ReadAt(buf, 70_500) // same cluster: no backing traffic
	if cache.BackingReads != first {
		t.Fatal("warm cluster went to backing again")
	}
	if cache.LocalReads == 0 {
		t.Fatal("local read not accounted")
	}
}

func TestNoCopyOnReadStaysCold(t *testing.T) {
	base := mkBase(4, 256*1024)
	ov, _ := NewOverlay(base, 64*1024, false)
	buf := make([]byte, 100)
	ov.ReadAt(buf, 0)
	ov.ReadAt(buf, 0)
	if ov.CachedClusters() != 0 {
		t.Fatal("CoW-only overlay must not retain read clusters")
	}
	if ov.BackingReads != 2*64*1024 {
		t.Fatalf("backing reads %d, want two cluster fetches", ov.BackingReads)
	}
}

func TestChainWarmCacheNeverTouchesBase(t *testing.T) {
	// Figure 1 bottom: VM → CoW → warm cache; the base sees zero reads.
	base := mkBase(5, 512*1024)
	cache, _ := NewOverlay(base, 64*1024, true)
	// Warm the cache with the full boot working set.
	boot := make([]byte, 256*1024)
	cache.ReadAt(boot, 0)
	warmedTraffic := cache.BackingReads

	cow, _ := NewOverlay(cache, 64*1024, false)
	buf := make([]byte, 200*1024)
	if _, err := cow.ReadAt(buf, 10_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, base.Data[10_000:10_000+200*1024]) {
		t.Fatal("chained read wrong")
	}
	if cache.BackingReads != warmedTraffic {
		t.Fatal("warm boot touched the base image")
	}
	// Writes stay in the CoW layer; the cache remains clean.
	cow.WriteAt([]byte("dirty"), 0)
	probe := make([]byte, 5)
	cache.ReadAt(probe, 0)
	if string(probe) == "dirty" {
		t.Fatal("write leaked into the cache layer")
	}
}

func TestReadWriteQuick(t *testing.T) {
	// Property: an overlay behaves exactly like a plain byte array under
	// arbitrary read/write interleavings.
	type op struct {
		Write bool
		Off   uint32
		Len   uint16
		Fill  byte
	}
	base := mkBase(6, 128*1024)
	f := func(ops []op) bool {
		shadow := append([]byte(nil), base.Data...)
		ov, _ := NewOverlay(&MemBackend{Data: append([]byte(nil), base.Data...)}, 4096, true)
		for _, o := range ops {
			off := int64(o.Off) % int64(len(shadow))
			l := int64(o.Len) % 2048
			if off+l > int64(len(shadow)) {
				l = int64(len(shadow)) - off
			}
			if o.Write {
				p := bytes.Repeat([]byte{o.Fill}, int(l))
				if _, err := ov.WriteAt(p, off); err != nil {
					return false
				}
				copy(shadow[off:off+l], p)
			} else {
				got := make([]byte, l)
				if _, err := ov.ReadAt(got, off); err != nil && err != io.EOF {
					return false
				}
				if !bytes.Equal(got, shadow[off:off+l]) {
					return false
				}
			}
		}
		final := make([]byte, len(shadow))
		ov.ReadAt(final, 0)
		return bytes.Equal(final, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWriteOutOfRange(t *testing.T) {
	ov, _ := NewOverlay(mkBase(7, 4096), 4096, false)
	if _, err := ov.WriteAt([]byte{1}, 4096); err == nil {
		t.Fatal("write past end must fail")
	}
	if _, err := ov.WriteAt([]byte{1}, -1); err == nil {
		t.Fatal("negative write must fail")
	}
}

func TestReadPastEnd(t *testing.T) {
	ov, _ := NewOverlay(mkBase(8, 10_000), 4096, false)
	buf := make([]byte, 100)
	n, err := ov.ReadAt(buf, 9_950)
	if n != 50 || err != io.EOF {
		t.Fatalf("n=%d err=%v, want 50, EOF", n, err)
	}
}

func TestBadConstruction(t *testing.T) {
	if _, err := NewOverlay(nil, 4096, false); err == nil {
		t.Fatal("nil backing must fail")
	}
	if _, err := NewOverlay(mkBase(9, 10), 0, false); err == nil {
		t.Fatal("zero cluster must fail")
	}
}

func TestConcurrentReaders(t *testing.T) {
	base := mkBase(10, 1<<20)
	cache, _ := NewOverlay(base, 64*1024, true)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, 2048)
			for i := 0; i < 200; i++ {
				off := rng.Int63n(int64(len(base.Data)) - 2048)
				if _, err := cache.ReadAt(buf, off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, base.Data[off:off+2048]) {
					errs <- io.ErrUnexpectedEOF
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFuncBackend(t *testing.T) {
	calls := 0
	fb := &FuncBackend{
		ReadAtFn: func(p []byte, off int64) (int, error) {
			calls++
			for i := range p {
				p[i] = byte(off) + byte(i)
			}
			return len(p), nil
		},
		SizeFn: func() int64 { return 8192 },
	}
	ov, _ := NewOverlay(fb, 4096, true)
	buf := make([]byte, 10)
	ov.ReadAt(buf, 0)
	ov.ReadAt(buf, 100) // same cluster, cached
	if calls != 1 {
		t.Fatalf("backend called %d times, want 1", calls)
	}
}
