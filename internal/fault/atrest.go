package fault

import "sort"

// At-rest fault lanes. The transfer lanes in Decide/Strike model a lossy
// fabric; the lanes here model the disk itself misbehaving: latent block
// bit-rot discovered only by a scrub, and a node crashing partway through
// applying a received stream. Both are pure functions of the plan seed
// and their coordinates, so a chaos run's on-disk damage is reproducible
// from the seed alone, independent of when (or from which goroutine) the
// lane is struck.

// RotBlock decides whether the given stored block of obj on node has
// silently rotted at rest. The decision is a pure function of
// (seed, node, obj, idx) against Plan.Rot, so the corrupt-block set of a
// chaos run is fixed by the seed regardless of scan order.
func (in *Injector) RotBlock(node, obj string, idx int) bool {
	if in == nil || in.plan.Rot <= 0 {
		return false
	}
	if uniform(in.roll("rot:"+obj, node, idx, 0)) >= in.plan.Rot {
		return false
	}
	in.counters.Add("fault.rot", 1)
	return true
}

// RotMutation picks the deterministic damage for one rotted block: a byte
// offset within a stored payload of the given size and a nonzero XOR
// mask, so applying the mutation always changes the payload. size must be
// positive.
func (in *Injector) RotMutation(node, obj string, idx, size int) (off int, xor byte) {
	if in == nil || size <= 0 {
		return 0, 1
	}
	off = int(in.roll("rot:"+obj, node, idx, 1) % uint64(size))
	xor = byte(1 + in.roll("rot:"+obj, node, idx, 2)%255)
	return off, xor
}

// TornStep picks where inside a torn zvol.Receive the destination dies:
// the number of staged apply steps completed before the crash, in
// [0, steps] (0 = nothing staged, steps = everything staged but not
// committed). Deterministic in (seed, op, dst).
func (in *Injector) TornStep(op, dst string, steps int) int {
	if in == nil || steps <= 0 {
		return 0
	}
	return int(in.roll(op, dst, 0, 3) % uint64(steps+1))
}

// SlowServe decides whether one peer serve responds slowly — the tail
// the hedged-fetch path exists to cut. Deterministic in (seed, op, src,
// n) against Plan.Slow, where n is the caller's per-boot fetch ordinal,
// so one boot's slow draws are independent of every other boot's.
func (in *Injector) SlowServe(op, src string, n int) bool {
	if in == nil || in.plan.Slow <= 0 {
		return false
	}
	if uniform(in.roll("slow:"+op, src, n, 0)) >= in.plan.Slow {
		return false
	}
	in.counters.Add("fault.slow", 1)
	return true
}

// PartitionPick deterministically strands k of the given nodes behind a
// network cut for the named epoch: each node's rank is a pure function
// of (seed, epoch, node), so the minority set is fixed by the seed
// regardless of the order nodes are listed in. Returns the picked IDs
// sorted; nil when the injector is nil or there is nothing to pick.
func (in *Injector) PartitionPick(epoch string, nodes []string, k int) []string {
	if in == nil || k <= 0 || len(nodes) == 0 {
		return nil
	}
	if k > len(nodes) {
		k = len(nodes)
	}
	ranked := append([]string(nil), nodes...)
	sort.Slice(ranked, func(i, j int) bool {
		hi := in.roll("partition:"+epoch, ranked[i], 0, 0)
		hj := in.roll("partition:"+epoch, ranked[j], 0, 0)
		if hi != hj {
			return hi < hj
		}
		return ranked[i] < ranked[j]
	})
	picked := ranked[:k:k]
	sort.Strings(picked)
	return picked
}
