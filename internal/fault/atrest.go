package fault

// At-rest fault lanes. The transfer lanes in Decide/Strike model a lossy
// fabric; the lanes here model the disk itself misbehaving: latent block
// bit-rot discovered only by a scrub, and a node crashing partway through
// applying a received stream. Both are pure functions of the plan seed
// and their coordinates, so a chaos run's on-disk damage is reproducible
// from the seed alone, independent of when (or from which goroutine) the
// lane is struck.

// RotBlock decides whether the given stored block of obj on node has
// silently rotted at rest. The decision is a pure function of
// (seed, node, obj, idx) against Plan.Rot, so the corrupt-block set of a
// chaos run is fixed by the seed regardless of scan order.
func (in *Injector) RotBlock(node, obj string, idx int) bool {
	if in == nil || in.plan.Rot <= 0 {
		return false
	}
	if uniform(in.roll("rot:"+obj, node, idx, 0)) >= in.plan.Rot {
		return false
	}
	in.counters.Add("fault.rot", 1)
	return true
}

// RotMutation picks the deterministic damage for one rotted block: a byte
// offset within a stored payload of the given size and a nonzero XOR
// mask, so applying the mutation always changes the payload. size must be
// positive.
func (in *Injector) RotMutation(node, obj string, idx, size int) (off int, xor byte) {
	if in == nil || size <= 0 {
		return 0, 1
	}
	off = int(in.roll("rot:"+obj, node, idx, 1) % uint64(size))
	xor = byte(1 + in.roll("rot:"+obj, node, idx, 2)%255)
	return off, xor
}

// TornStep picks where inside a torn zvol.Receive the destination dies:
// the number of staged apply steps completed before the crash, in
// [0, steps] (0 = nothing staged, steps = everything staged but not
// committed). Deterministic in (seed, op, dst).
func (in *Injector) TornStep(op, dst string, steps int) int {
	if in == nil || steps <= 0 {
		return 0
	}
	return int(in.roll(op, dst, 0, 3) % uint64(steps+1))
}
