package fault

import (
	"fmt"
	"sync"
	"testing"
)

// rotSet strikes the rot lane for every (node, obj, idx) in a grid and
// returns the set of coordinates that rotted.
func rotSet(in *Injector, nodes, objs, blocks int) map[string]bool {
	out := map[string]bool{}
	for n := 0; n < nodes; n++ {
		for o := 0; o < objs; o++ {
			for b := 0; b < blocks; b++ {
				node, obj := fmt.Sprintf("node%02d", n), fmt.Sprintf("img%02d", o)
				if in.RotBlock(node, obj, b) {
					out[fmt.Sprintf("%s/%s/%d", node, obj, b)] = true
				}
			}
		}
	}
	return out
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestRotSameSeedSameCorruptSet(t *testing.T) {
	p := Plan{Seed: 42, Rot: 0.05}
	a, b := mustNew(t, p), mustNew(t, p)
	sa, sb := rotSet(a, 6, 8, 40), rotSet(b, 6, 8, 40)
	if len(sa) == 0 {
		t.Fatal("rot plan injected nothing")
	}
	if !sameSet(sa, sb) {
		t.Fatalf("same seed produced different corrupt sets: %d vs %d", len(sa), len(sb))
	}
	// A different seed must (with overwhelming probability at this grid
	// size) pick a different set.
	c := mustNew(t, Plan{Seed: 43, Rot: 0.05})
	if sameSet(sa, rotSet(c, 6, 8, 40)) {
		t.Fatal("different seeds produced identical corrupt sets")
	}
}

func TestRotIndependentOfScanOrder(t *testing.T) {
	p := Plan{Seed: 9, Rot: 0.1}
	a, b := mustNew(t, p), mustNew(t, p)
	const n = 200
	fwd := make([]bool, n)
	for i := 0; i < n; i++ {
		fwd[i] = a.RotBlock("node00", "img", i)
	}
	for i := n - 1; i >= 0; i-- {
		if b.RotBlock("node00", "img", i) != fwd[i] {
			t.Fatalf("rot decision %d depends on scan order", i)
		}
	}
}

func TestRotIndependentOfGoroutineScheduling(t *testing.T) {
	// The corrupt-block set must not depend on which goroutine strikes
	// the lane first: shard the same grid across 8 goroutines and compare
	// against a serial scan of a twin injector.
	p := Plan{Seed: 77, Rot: 0.08}
	serial := rotSet(mustNew(t, p), 8, 4, 32)
	in := mustNew(t, p)
	var mu sync.Mutex
	got := map[string]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for o := 0; o < 4; o++ {
				for b := 0; b < 32; b++ {
					nm, obj := fmt.Sprintf("node%02d", node), fmt.Sprintf("img%02d", o)
					if in.RotBlock(nm, obj, b) {
						mu.Lock()
						got[fmt.Sprintf("%s/%s/%d", nm, obj, b)] = true
						mu.Unlock()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if len(serial) == 0 || !sameSet(serial, got) {
		t.Fatalf("concurrent rot set (%d) differs from serial (%d)", len(got), len(serial))
	}
}

func TestRotDistributionRoughlyMatchesPlan(t *testing.T) {
	in := mustNew(t, Plan{Seed: 4, Rot: 0.2})
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if in.RotBlock("node00", "img", i) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.17 || got > 0.23 {
		t.Fatalf("rot rate %.3f far from planned 0.2", got)
	}
	if c := in.Counters().Snapshot()["fault.rot"]; c != int64(hits) {
		t.Fatalf("fault.rot counter %d != %d hits", c, hits)
	}
}

func TestRotMutationDeterministicAndNonIdentity(t *testing.T) {
	p := Plan{Seed: 11, Rot: 1}
	a, b := mustNew(t, p), mustNew(t, p)
	for i := 0; i < 100; i++ {
		size := 1 + i*17%4096
		oa, xa := a.RotMutation("n0", "img", i, size)
		ob, xb := b.RotMutation("n0", "img", i, size)
		if oa != ob || xa != xb {
			t.Fatalf("mutation %d not deterministic", i)
		}
		if oa < 0 || oa >= size {
			t.Fatalf("mutation offset %d outside payload of %d bytes", oa, size)
		}
		if xa == 0 {
			t.Fatal("zero XOR mask would leave the payload intact")
		}
	}
}

func TestTornStepRangeAndDeterminism(t *testing.T) {
	p := Plan{Seed: 5, Torn: 1, MaxCrashes: 100}
	a, b := mustNew(t, p), mustNew(t, p)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		dst := fmt.Sprintf("n%d", i)
		sa := a.TornStep("register:s1", dst, 7)
		if sb := b.TornStep("register:s1", dst, 7); sa != sb {
			t.Fatalf("torn step for %s not deterministic: %d != %d", dst, sa, sb)
		}
		if sa < 0 || sa > 7 {
			t.Fatalf("torn step %d outside [0,7]", sa)
		}
		seen[sa] = true
	}
	if len(seen) < 4 {
		t.Fatalf("torn steps poorly spread: %v", seen)
	}
	if s := a.TornStep("op", "n0", 0); s != 0 {
		t.Fatalf("zero-step stream must crash at 0, got %d", s)
	}
}

func TestTornKindInDecideLadder(t *testing.T) {
	in := mustNew(t, Plan{Seed: 6, Torn: 1, MaxCrashes: 3})
	torn, drops := 0, 0
	wire := []byte("intact stream")
	for i := 0; i < 10; i++ {
		k, got := in.Strike("op", fmt.Sprintf("n%d", i), 0, wire)
		switch k {
		case Torn:
			torn++
			// A torn apply received the stream intact; the crash happens
			// while applying it.
			if &got[0] != &wire[0] {
				t.Fatal("torn delivery must hand over the intact wire")
			}
		case Drop:
			drops++
		default:
			t.Fatalf("unexpected kind %v", k)
		}
	}
	if torn != 3 || drops != 7 {
		t.Fatalf("torn=%d drops=%d, want 3/7 (shared crash budget)", torn, drops)
	}
	c := in.Counters().Snapshot()
	if c["fault.torn"] != 3 || c["fault.crash_degraded"] != 7 {
		t.Fatalf("counters %v", c)
	}
}

func TestNilInjectorAtRestLanes(t *testing.T) {
	var in *Injector
	if in.RotBlock("n", "o", 0) {
		t.Fatal("nil injector must never rot")
	}
	if off, xor := in.RotMutation("n", "o", 0, 100); off != 0 || xor == 0 {
		t.Fatal("nil injector mutation must be benign")
	}
	if in.TornStep("op", "n", 5) != 0 {
		t.Fatal("nil injector torn step must be 0")
	}
}

func TestSlowServeDeterministicAndOrderIndependent(t *testing.T) {
	p := Plan{Seed: 42, Slow: 0.4, SlowSec: 0.05}
	a, b := mustNew(t, p), mustNew(t, p)
	const n = 200
	got := make([]bool, n)
	hits := 0
	for i := 0; i < n; i++ {
		got[i] = a.SlowServe("peerfetch:img:node00", fmt.Sprintf("n%d", i%8), i)
		if got[i] {
			hits++
		}
	}
	for i := n - 1; i >= 0; i-- { // reverse order: pure-function draws agree
		if b.SlowServe("peerfetch:img:node00", fmt.Sprintf("n%d", i%8), i) != got[i] {
			t.Fatalf("slow draw %d diverges across call order", i)
		}
	}
	if hits == 0 || hits == n {
		t.Fatalf("slow lane degenerate: %d/%d hits", hits, n)
	}
	if got := a.Counters().Get("fault.slow"); got != int64(hits) {
		t.Fatalf("fault.slow = %d, want %d", got, hits)
	}
	var nilInj *Injector
	if nilInj.SlowServe("op", "n", 0) {
		t.Fatal("nil injector drew a slow serve")
	}
}

func TestPartitionPickDeterministicAndOrderIndependent(t *testing.T) {
	in := mustNew(t, Plan{Seed: 11})
	nodes := []string{"node03", "node00", "node02", "node05", "node01", "node04"}
	a := in.PartitionPick("epoch1", nodes, 2)
	if len(a) != 2 {
		t.Fatalf("picked %d nodes, want 2", len(a))
	}
	// Shuffled input, same epoch: identical minority.
	shuffled := []string{"node05", "node01", "node04", "node00", "node03", "node02"}
	b := in.PartitionPick("epoch1", shuffled, 2)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("pick depends on input order: %v vs %v", a, b)
	}
	// A different epoch reshuffles the ranking (with 6 choose 2 = 15
	// outcomes, at least one of a handful of epochs must differ).
	differs := false
	for _, epoch := range []string{"epoch2", "epoch3", "epoch4", "epoch5"} {
		if fmt.Sprint(in.PartitionPick(epoch, nodes, 2)) != fmt.Sprint(a) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("every epoch picked the same minority")
	}
	// k clamps to len(nodes); nil injector picks nothing.
	if got := in.PartitionPick("epoch1", nodes, 99); len(got) != len(nodes) {
		t.Fatalf("clamped pick = %d nodes, want %d", len(got), len(nodes))
	}
	var nilInj *Injector
	if nilInj.PartitionPick("epoch1", nodes, 2) != nil {
		t.Fatal("nil injector picked a minority")
	}
}
