// Package fault is a deterministic, seeded fault-injection substrate for
// Squirrel's propagation paths. The paper's offline-propagation design
// (§3.5) exists precisely because multicast registration (§3.2) is lossy
// and compute nodes crash; this package makes those failures injectable so
// the retry/repair/lagging machinery in internal/core can be exercised
// reproducibly.
//
// An Injector is configured with a Plan: a seed plus per-kind
// probabilities. Every transfer decision is a pure function of
// (seed, op, dst, attempt), so a chaos run is reproducible from its seed
// alone, independent of goroutine scheduling or call order. The only
// shared state is the crash budget (Plan.MaxCrashes), which caps how many
// Crash decisions the injector will ever hand out.
package fault

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// Kind classifies one injected transfer fault.
type Kind int

// Fault kinds, roughly ordered by severity.
const (
	// None: the transfer is delivered intact.
	None Kind = iota
	// Drop: the destination never receives the stream (lost multicast
	// registration, §3.2's unreliable delivery).
	Drop
	// Truncate: the connection dies mid-stream; the destination holds a
	// prefix of the wire bytes.
	Truncate
	// Corrupt: wire bytes are flipped in flight; the stream CRC and the
	// per-block checksums on Receive catch it.
	Corrupt
	// Crash: the destination node dies mid-transfer and drops offline.
	Crash
	// Torn: the stream arrives intact but the destination crashes midway
	// through applying it, leaving a partially-applied dataset behind
	// (torn zvol.Receive). The receive journal detects and rolls this
	// back on restart.
	Torn
	// Partition: the destination sits on the far side of an open network
	// cut, so nothing reaches it at all. Unlike the kinds above this is
	// never drawn from the per-attempt probability distribution — the
	// cluster reachability map decides it — but transfers across the cut
	// report it like any other fault, and it shares the counter naming.
	Partition
)

// String renders the kind for reports and counter names.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	case Crash:
		return "crash"
	case Torn:
		return "torn"
	case Partition:
		return "partition"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Plan parameterizes an Injector. Probabilities are per transfer attempt
// and must sum to ≤ 1; the remainder is fault-free delivery.
type Plan struct {
	Seed     int64
	Drop     float64 // P(stream lost entirely)
	Truncate float64 // P(stream cut short)
	Corrupt  float64 // P(wire bytes flipped)
	Crash    float64 // P(destination crashes mid-transfer)
	// Torn is P(destination crashes mid-apply): the stream arrives
	// intact but the node dies partway through zvol.Receive, leaving a
	// torn dataset its receive journal must roll back on restart.
	Torn float64
	// MaxCrashes caps Crash and Torn decisions over the injector's
	// lifetime; once spent, would-be crashes degrade to Drop. Zero means
	// no crashes.
	MaxCrashes int

	// Rot is the at-rest lane: P(one stored block has silently rotted)
	// per (node, object, block) when the lane is struck via RotBlock.
	// Unlike the transfer lanes above it is not part of the per-attempt
	// kind distribution — rot happens to data sitting on disk, not to
	// streams in flight.
	Rot float64

	// Slow is the slow-peer lane: P(one peer serve responds slowly) per
	// (op, src, fetch) when struck via SlowServe. Like Rot it is outside
	// the per-attempt kind distribution — a slow serve still delivers
	// intact bytes, just late; the hedged-fetch path exists to cut the
	// latency tail this lane creates.
	Slow float64
	// SlowSec is the simulated stall one slow serve adds when no hedge
	// (or an equally slow hedge) absorbs it. Accounted in reports, never
	// slept.
	SlowSec float64

	// GossipDrop is the gossip-plane lane: P(one index message — a lease
	// refresh to an owner, or a push/pull digest exchange — is lost) per
	// (op, src, dst, round) when struck via DropGossip under "gossip:*"
	// op keys. Like Rot and Slow it sits outside the per-attempt
	// transfer distribution: losing index chatter must not perturb which
	// data transfers fault, and vice versa. The anti-entropy rounds
	// exist to absorb exactly this lane.
	GossipDrop float64
}

// Validate rejects nonsensical plans.
func (p Plan) Validate() error {
	for _, pr := range []float64{p.Drop, p.Truncate, p.Corrupt, p.Crash, p.Torn, p.Rot, p.Slow, p.GossipDrop} {
		if pr < 0 || pr > 1 {
			return fmt.Errorf("fault: probability %v out of [0,1]", pr)
		}
	}
	if p.SlowSec < 0 {
		return fmt.Errorf("fault: negative slow-serve stall")
	}
	if s := p.Drop + p.Truncate + p.Corrupt + p.Crash + p.Torn; s > 1 {
		return fmt.Errorf("fault: probabilities sum to %v > 1", s)
	}
	if p.MaxCrashes < 0 {
		return fmt.Errorf("fault: negative crash budget")
	}
	return nil
}

// Injector decides, deterministically from its plan, which transfers
// fault and how. A nil *Injector is a valid "perfect network" injector.
type Injector struct {
	plan     Plan
	counters *metrics.CounterSet

	mu      sync.Mutex
	crashes int
}

// New builds an injector for the plan.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan, counters: metrics.NewCounterSet()}, nil
}

// Plan returns the injector's plan (for logging seeds in reports).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Counters exposes the injector's fault accounting: "fault.<kind>" per
// injected kind plus "fault.crash_degraded" for crashes past the budget.
func (in *Injector) Counters() *metrics.CounterSet {
	if in == nil {
		return nil
	}
	return in.counters
}

// SetCounters points the injector's fault accounting at a shared
// counter registry (the telemetry layer wires every subsystem to one).
// Call before handing the injector to a deployment. Nil-safe: a nil
// injector ignores the call; a nil set restores private accounting.
func (in *Injector) SetCounters(c *metrics.CounterSet) {
	if in == nil {
		return
	}
	in.mu.Lock()
	if c == nil {
		c = metrics.NewCounterSet()
	}
	in.counters = c
	in.mu.Unlock()
}

// Crashes returns how many Crash decisions have been issued so far.
func (in *Injector) Crashes() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashes
}

// roll hashes (seed, op, dst, attempt, lane) into a uniform uint64.
// splitmix64 over an FNV-1a fold gives good avalanche without pulling in
// a full RNG, and keeps every decision order-independent.
func (in *Injector) roll(op, dst string, attempt, lane int) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(b []byte) {
		for _, c := range b {
			h ^= uint64(c)
			h *= fnvPrime
		}
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(in.plan.Seed))
	mix(buf[:])
	mix([]byte(op))
	mix([]byte{0})
	mix([]byte(dst))
	binary.LittleEndian.PutUint64(buf[:], uint64(attempt)<<32|uint64(uint32(lane)))
	mix(buf[:])
	// splitmix64 finalizer.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// uniform maps a roll to [0, 1).
func uniform(r uint64) float64 { return float64(r>>11) / (1 << 53) }

// Decide picks the fault kind for one transfer attempt of op to dst. It
// is deterministic in (seed, op, dst, attempt) except for the crash
// budget: a Crash past Plan.MaxCrashes degrades to Drop.
func (in *Injector) Decide(op, dst string, attempt int) Kind {
	if in == nil {
		return None
	}
	u := uniform(in.roll(op, dst, attempt, 0))
	p := in.plan
	k := None
	switch {
	case u < p.Crash:
		k = Crash
	case u < p.Crash+p.Torn:
		k = Torn
	case u < p.Crash+p.Torn+p.Drop:
		k = Drop
	case u < p.Crash+p.Torn+p.Drop+p.Truncate:
		k = Truncate
	case u < p.Crash+p.Torn+p.Drop+p.Truncate+p.Corrupt:
		k = Corrupt
	}
	if k == Crash || k == Torn {
		// Torn is a crash too (mid-apply instead of mid-transfer), so it
		// draws from the same budget.
		in.mu.Lock()
		if in.crashes >= p.MaxCrashes {
			k = Drop
			in.counters.Add("fault.crash_degraded", 1)
		} else {
			in.crashes++
		}
		in.mu.Unlock()
	}
	if k != None {
		in.counters.Add("fault."+k.String(), 1)
	}
	return k
}

// DropGossip reports whether one gossip-plane message from src to dst
// in the given round is lost. op is a "gossip:*" key naming the message
// class ("gossip:refresh", "gossip:xchg"). Deterministic in
// (seed, op, src, dst, round) and independent of the transfer lanes, so
// turning index-message loss on replays the same data-plane faults.
// Nil-safe.
func (in *Injector) DropGossip(op, src, dst string, round int64) bool {
	if in == nil || in.plan.GossipDrop <= 0 {
		return false
	}
	if uniform(in.roll(op, src+"\x00"+dst, int(round), 9)) >= in.plan.GossipDrop {
		return false
	}
	in.counters.Add("fault.gossip_drop", 1)
	return true
}

// Note records an externally decided fault of kind k in the injector's
// accounting. The partition lane's verdicts are made by the cluster
// reachability map rather than a probability draw, but they share the
// "fault.<kind>" counter naming with every drawn kind. Nil-safe.
func (in *Injector) Note(k Kind) {
	if in == nil || k == None {
		return
	}
	in.counters.Add("fault."+k.String(), 1)
}

// Strike decides the fault for one transfer attempt and applies it to the
// wire bytes, returning the bytes the destination actually sees:
//
//	None, Torn      wire unchanged (same slice); Torn dies during apply
//	Drop, Crash     nil — nothing arrives
//	Truncate        a strict prefix copy of wire
//	Corrupt         a same-length copy with a few bytes flipped
//
// Mutations are deterministic in (seed, op, dst, attempt) and never alias
// the input slice, so one encoded stream can be shared across
// destinations.
func (in *Injector) Strike(op, dst string, attempt int, wire []byte) (Kind, []byte) {
	k := in.Decide(op, dst, attempt)
	switch k {
	case None, Torn:
		return k, wire
	case Drop, Crash:
		return k, nil
	}
	r := in.roll(op, dst, attempt, 1)
	switch k {
	case Truncate:
		if len(wire) == 0 {
			return k, nil
		}
		cut := make([]byte, int(r%uint64(len(wire))))
		copy(cut, wire)
		return k, cut
	default: // Corrupt
		if len(wire) == 0 {
			return k, wire
		}
		bad := make([]byte, len(wire))
		copy(bad, wire)
		flips := 1 + int(r%7)
		for i := 0; i < flips; i++ {
			off := in.roll(op, dst, attempt, 2+i) % uint64(len(bad))
			bad[off] ^= byte(1 + in.roll(op, dst, attempt, 100+i)%255)
		}
		return k, bad
	}
}
