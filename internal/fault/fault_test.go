package fault

import (
	"bytes"
	"fmt"
	"testing"
)

func mustNew(t *testing.T, p Plan) *Injector {
	t.Helper()
	in, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Drop: -0.1},
		{Drop: 1.1},
		{Drop: 0.5, Corrupt: 0.6},
		{MaxCrashes: -1},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Fatalf("plan %+v should be rejected", p)
		}
	}
	if _, err := New(Plan{Seed: 1, Drop: 0.5, Truncate: 0.2, Corrupt: 0.3}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossInjectors(t *testing.T) {
	p := Plan{Seed: 99, Drop: 0.2, Truncate: 0.1, Corrupt: 0.2}
	a, b := mustNew(t, p), mustNew(t, p)
	wire := bytes.Repeat([]byte("squirrel"), 64)
	for op := 0; op < 5; op++ {
		for dst := 0; dst < 8; dst++ {
			for attempt := 0; attempt < 4; attempt++ {
				o, d := fmt.Sprintf("op%d", op), fmt.Sprintf("n%d", dst)
				ka, wa := a.Strike(o, d, attempt, wire)
				kb, wb := b.Strike(o, d, attempt, wire)
				if ka != kb || !bytes.Equal(wa, wb) {
					t.Fatalf("(%s,%s,%d): %v/%v diverge", o, d, attempt, ka, kb)
				}
			}
		}
	}
}

func TestDecisionIndependentOfCallOrder(t *testing.T) {
	p := Plan{Seed: 7, Drop: 0.3, Corrupt: 0.3}
	a, b := mustNew(t, p), mustNew(t, p)
	// a decides forward, b backward: per-decision hashing must agree.
	const n = 100
	ka := make([]Kind, n)
	for i := 0; i < n; i++ {
		ka[i] = a.Decide("op", fmt.Sprintf("n%d", i), 0)
	}
	for i := n - 1; i >= 0; i-- {
		if kb := b.Decide("op", fmt.Sprintf("n%d", i), 0); kb != ka[i] {
			t.Fatalf("decision %d depends on call order: %v != %v", i, kb, ka[i])
		}
	}
}

func TestDistributionRoughlyMatchesPlan(t *testing.T) {
	in := mustNew(t, Plan{Seed: 4, Drop: 0.25})
	drops := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if in.Decide("dist", fmt.Sprintf("n%d", i), 0) == Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.22 || got > 0.28 {
		t.Fatalf("drop rate %.3f far from planned 0.25", got)
	}
}

func TestMutations(t *testing.T) {
	wire := bytes.Repeat([]byte{0xAB}, 4096)
	orig := append([]byte(nil), wire...)
	// Probability 1 for each kind in turn, deterministic over all targets.
	for _, tc := range []struct {
		plan Plan
		want Kind
	}{
		{Plan{Seed: 1, Drop: 1}, Drop},
		{Plan{Seed: 1, Truncate: 1}, Truncate},
		{Plan{Seed: 1, Corrupt: 1}, Corrupt},
	} {
		in := mustNew(t, tc.plan)
		for i := 0; i < 50; i++ {
			dst := fmt.Sprintf("n%d", i)
			k, got := in.Strike("op", dst, 0, wire)
			if k != tc.want {
				t.Fatalf("kind %v, want %v", k, tc.want)
			}
			switch tc.want {
			case Drop:
				if got != nil {
					t.Fatal("drop must deliver nothing")
				}
			case Truncate:
				if len(got) >= len(wire) {
					t.Fatalf("truncate kept %d of %d bytes", len(got), len(wire))
				}
				if !bytes.Equal(got, wire[:len(got)]) {
					t.Fatal("truncation must be a prefix")
				}
			case Corrupt:
				if len(got) != len(wire) {
					t.Fatalf("corrupt changed length %d → %d", len(wire), len(got))
				}
				if bytes.Equal(got, wire) {
					t.Fatalf("corrupt(%s) left wire intact", dst)
				}
			}
			if !bytes.Equal(wire, orig) {
				t.Fatal("Strike mutated the caller's wire slice")
			}
		}
	}
}

func TestNoFaultsDeliversSameSlice(t *testing.T) {
	in := mustNew(t, Plan{Seed: 3})
	wire := []byte("payload")
	k, got := in.Strike("op", "n0", 0, wire)
	if k != None || &got[0] != &wire[0] {
		t.Fatal("fault-free delivery must return the original slice")
	}
	// A nil injector is a perfect network.
	var nilInj *Injector
	if k, got := nilInj.Strike("op", "n0", 0, wire); k != None || &got[0] != &wire[0] {
		t.Fatal("nil injector must be a no-op")
	}
	if nilInj.Decide("op", "n0", 0) != None || nilInj.Crashes() != 0 {
		t.Fatal("nil injector must decide None")
	}
	nilInj.Counters().Add("x", 1) // must not panic
}

func TestCrashBudget(t *testing.T) {
	in := mustNew(t, Plan{Seed: 8, Crash: 1, MaxCrashes: 2})
	crashes, drops := 0, 0
	for i := 0; i < 10; i++ {
		switch in.Decide("op", fmt.Sprintf("n%d", i), 0) {
		case Crash:
			crashes++
		case Drop:
			drops++
		}
	}
	if crashes != 2 || drops != 8 {
		t.Fatalf("crashes=%d drops=%d, want 2/8", crashes, drops)
	}
	if in.Crashes() != 2 {
		t.Fatalf("Crashes() = %d", in.Crashes())
	}
	c := in.Counters().Snapshot()
	if c["fault.crash"] != 2 || c["fault.drop"] != 8 || c["fault.crash_degraded"] != 8 {
		t.Fatalf("counters %v", c)
	}
}

func TestTruncateEmptyWire(t *testing.T) {
	in := mustNew(t, Plan{Seed: 5, Truncate: 1})
	if _, got := in.Strike("op", "n0", 0, nil); got != nil {
		t.Fatal("truncating an empty wire must deliver nothing")
	}
}

func TestKindStrings(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{None, "none"},
		{Drop, "drop"},
		{Truncate, "truncate"},
		{Corrupt, "corrupt"},
		{Crash, "crash"},
		{Torn, "torn"},
		{Partition, "partition"},
		{Kind(99), "kind(99)"},
		{Kind(-1), "kind(-1)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(c.k), got, c.want)
		}
	}
}

func TestNoteCountsExternallyDecidedFaults(t *testing.T) {
	in := mustNew(t, Plan{Seed: 1})
	in.Note(Partition)
	in.Note(Partition)
	in.Note(None) // never counted
	if got := in.Counters().Get("fault.partition"); got != 2 {
		t.Fatalf("fault.partition = %d, want 2", got)
	}
	var nilInj *Injector
	nilInj.Note(Partition) // nil-safe
}

func TestDecideNeverDrawsPartition(t *testing.T) {
	// Partition is decided by the reachability map, not the probability
	// lanes: even a fully hostile plan must never draw it.
	in := mustNew(t, Plan{Seed: 3, Drop: 0.25, Truncate: 0.25, Corrupt: 0.25, Crash: 0.25, MaxCrashes: 1000})
	for i := 0; i < 500; i++ {
		if k := in.Decide("op", fmt.Sprintf("n%d", i), 0); k == Partition {
			t.Fatal("Decide drew Partition")
		}
	}
}
