// Package gossip is the decentralized peer content index: each compute
// node advertises its cache-object holdings as TTL'd leases instead of
// reporting to a central registry (Shoal-style dynamic cache
// publishing). Advertisements are placed by consistent hashing — the
// Owners(object) ring successors hold each object's advertisement set,
// so a refresh is O(owners) messages and a lookup is O(1) hops — and
// views reconcile through seeded fanout-k push/pull gossip rounds with
// anti-entropy digest exchange, so divergence after partitions heal and
// nodes restart closes within a bounded number of rounds.
//
// The two robustness invariants the churn soak measures:
//
//   - No stale entry survives past its lease: a lease is valid for TTL
//     after its last refresh, lookups filter expired leases
//     unconditionally, and rounds prune them. A crashed holder's
//     entries decay everywhere within TTL without any coordination.
//   - No live replica stays unadvertised beyond a bounded number of
//     rounds: every round each live node re-advertises its holdings
//     directly to the current owners, and the push/pull exchange
//     repairs owner views that missed refreshes (dropped messages,
//     ownership moved by a crash, partition healed).
//
// Everything is deterministic in (seed, round, call order): peer
// selection and message drops are pure hash functions, and the clock is
// injectable so lease expiry is steppable in tests.
package gossip

import (
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
)

// Clock tells the directory the current time; injectable so tests step
// lease expiry deterministically.
type Clock func() time.Time

// Links is the reachability oracle gossip traffic obeys — satisfied by
// *cluster.Cluster, so gossip messages respect the same network cuts
// the data plane does.
type Links interface {
	Reachable(a, b string) bool
}

// fullMesh is the Links used when none is provided (no partitions).
type fullMesh struct{}

func (fullMesh) Reachable(a, b string) bool { return true }

// Config parameterizes a Directory. The zero value gets sane defaults.
type Config struct {
	// Seed drives peer selection for the push/pull exchange; a soak
	// replays exactly from (Seed, event script).
	Seed int64
	// Fanout is how many peers each node exchanges views with per round
	// (default 2).
	Fanout int
	// TTL is the lease duration granted by one advertisement refresh
	// (default 30s). Entries older than TTL are never served.
	TTL time.Duration
	// Owners is how many ring successors hold each object's
	// advertisement set (default 2): one crash never loses a set.
	Owners int
	// VNodes is the virtual-node count per member on the consistent-hash
	// ring (default 16).
	VNodes int
	// Clock supplies the current time (default time.Now).
	Clock Clock
}

func (c Config) withDefaults() Config {
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.TTL <= 0 {
		c.TTL = 30 * time.Second
	}
	if c.Owners <= 0 {
		c.Owners = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = 16
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// lease is one (object, holder) advertisement as stored in a view.
//
// Lease state machine:
//
//	active    seq S, expires E > now: served by lookups
//	refreshed holder re-advertises: seq' > S, expires pushed out one TTL
//	retracted holder withdraws: tombstone (gone) with fresher seq wins
//	          over the active lease it retracts, then ages out like any
//	          other entry
//	expired   now ≥ E: invisible to lookups immediately, pruned by the
//	          next round
type lease struct {
	seq     uint64
	expires time.Time
	gone    bool
}

// view is one node's local slice of the index: obj → holder → lease.
// Ring ownership decides which objects a view retains — entries for
// ranges the node no longer owns are dropped after rounds hand them
// off, so view size tracks (objects × owners / nodes), not the cluster.
type view struct {
	leases map[string]map[string]lease
}

func newView() *view { return &view{leases: make(map[string]map[string]lease)} }

func (v *view) set(obj, holder string, l lease) {
	hs := v.leases[obj]
	if hs == nil {
		hs = make(map[string]lease)
		v.leases[obj] = hs
	}
	if cur, ok := hs[holder]; ok && cur.seq >= l.seq {
		return // stale message; fresher lease already present
	}
	hs[holder] = l
}

// RoundReport accounts one gossip round.
type RoundReport struct {
	Round       int64 // round number just completed
	Adverts     int   // lease refreshes planted on owner views
	Exchanges   int   // push/pull peer exchanges performed
	Transferred int   // leases copied by anti-entropy reconciliation
	Pruned      int   // expired or disowned entries dropped
	Dropped     int   // gossip messages lost to the fault lane
}

// Directory is the decentralized index: the union of every node's view,
// advanced one seeded round at a time by Tick. All methods are safe for
// concurrent use; rounds serialize against lookups on one mutex.
type Directory struct {
	cfg   Config
	links Links

	mu      sync.Mutex
	members []string // all node IDs ever known, sorted
	alive   map[string]bool
	views   map[string]*view
	// holdings is each node's authoritative local truth — what its
	// replica physically holds and may serve — fed by the core announce
	// chokepoint and re-leased every round.
	holdings map[string]map[string]bool
	ring     *Ring
	seq      uint64
	round    int64
	inj      *fault.Injector
	counters *metrics.CounterSet
}

// New builds a directory over the given membership. All nodes start
// alive; links nil means no partitions.
func New(cfg Config, nodes []string, links Links) *Directory {
	cfg = cfg.withDefaults()
	if links == nil {
		links = fullMesh{}
	}
	d := &Directory{
		cfg:      cfg,
		links:    links,
		members:  append([]string(nil), nodes...),
		alive:    make(map[string]bool, len(nodes)),
		views:    make(map[string]*view, len(nodes)),
		holdings: make(map[string]map[string]bool, len(nodes)),
		ring:     NewRing(cfg.VNodes),
		counters: metrics.NewCounterSet(),
	}
	sort.Strings(d.members)
	for _, n := range d.members {
		d.alive[n] = true
		d.views[n] = newView()
	}
	// One sorted bulk join: a per-member Add would rebuild the ring
	// order n times and dominate construction at 10k nodes.
	d.ring.AddAll(d.members)
	return d
}

// SetInjector points the gossip plane at a fault injector; its
// GossipDrop lane then loses refresh and exchange messages
// deterministically. Nil restores a lossless plane.
func (d *Directory) SetInjector(in *fault.Injector) {
	d.mu.Lock()
	d.inj = in
	d.mu.Unlock()
}

// SetCounters redirects gossip accounting into a shared registry (the
// telemetry layer wires every subsystem to one).
func (d *Directory) SetCounters(c *metrics.CounterSet) {
	if c == nil {
		c = metrics.NewCounterSet()
	}
	d.mu.Lock()
	d.counters = c
	d.mu.Unlock()
}

// SetHoldings replaces node's advertised object set: new objects are
// leased to the current owners immediately (an announce is not gated on
// the next round), vanished objects are retracted with tombstones. The
// core announce chokepoint calls this on every register/sync/GC/restart
// reconciliation.
func (d *Directory) SetHoldings(node string, objs []string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.views[node]; !ok {
		return
	}
	prev := d.holdings[node]
	next := make(map[string]bool, len(objs))
	for _, o := range objs {
		next[o] = true
	}
	d.holdings[node] = next
	if !d.alive[node] {
		return // recorded; advertised when the node comes back
	}
	now := d.cfg.Clock()
	for _, o := range sortedKeys(next) {
		d.advertiseLocked(node, o, now, false)
	}
	for _, o := range sortedKeys(prev) {
		if !next[o] {
			d.advertiseLocked(node, o, now, true)
		}
	}
}

// Withdraw retracts one (obj, node) advertisement (replica dropped).
func (d *Directory) Withdraw(obj, node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if h := d.holdings[node]; h[obj] {
		delete(h, obj)
	}
	if d.alive[node] {
		d.advertiseLocked(node, obj, d.cfg.Clock(), true)
	}
}

// WithdrawObject purges obj from every view and every holding set — a
// control-plane deregistration: the object is gone from the storage
// tier, so no lease for it is meaningful anywhere.
func (d *Directory) WithdrawObject(obj string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, h := range d.holdings {
		delete(h, obj)
	}
	for _, v := range d.views {
		delete(v.leases, obj)
	}
}

// Retract tombstones every advertisement node has made, as far as the
// network lets node reach (a node that detects its own damage retracts
// itself; a node behind a cut can only tell its own side). Holdings are
// kept — a later SetHoldings or round re-advertises whatever still
// applies.
func (d *Directory) Retract(node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.alive[node] {
		return
	}
	now := d.cfg.Clock()
	for _, o := range sortedKeys(d.holdings[node]) {
		d.advertiseLocked(node, o, now, true)
	}
}

// MarkDown records a node crash or stop: it leaves the ring and the
// gossip exchange, and its view — process memory — is wiped. Nobody
// retracts its leases for it: they sit in the surviving owners' views
// until their TTL runs out, which is exactly the bounded staleness a
// decentralized index trades for having no single registry to crash.
func (d *Directory) MarkDown(node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.alive[node] {
		return
	}
	d.alive[node] = false
	d.ring.Remove(node)
	d.views[node] = newView()
	d.counters.Add("gossip.member_down", 1)
}

// MarkUp rejoins a restarted node with an empty view; ring ownership
// shifts back and the following rounds (anti-entropy pull plus every
// holder's refresh) warm the ranges it now owns.
func (d *Directory) MarkUp(node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.views[node]; !ok || d.alive[node] {
		return
	}
	d.alive[node] = true
	d.ring.Add(node)
	d.counters.Add("gossip.member_up", 1)
}

// advertiseLocked plants one lease (or tombstone) for (obj, node) on
// the views that should carry it: the advertiser's own view plus every
// reachable live owner. Each owner message rolls the GossipDrop lane
// independently.
func (d *Directory) advertiseLocked(node, obj string, now time.Time, gone bool) (planted, dropped int) {
	d.seq++
	l := lease{seq: d.seq, expires: now.Add(d.cfg.TTL), gone: gone}
	d.views[node].set(obj, node, l)
	planted++
	for _, owner := range d.ring.Owners(obj, d.cfg.Owners) {
		if owner == node || !d.alive[owner] {
			continue
		}
		if !d.links.Reachable(node, owner) {
			continue
		}
		if d.inj.DropGossip("gossip:refresh", node, owner, d.round) {
			dropped++
			continue
		}
		d.views[owner].set(obj, node, l)
		planted++
	}
	return planted, dropped
}

// Tick runs one gossip round:
//
//  1. refresh — every live node re-leases its holdings to the current
//     owners (push; TTL extended one lease).
//  2. push/pull — every live node exchanges views with Fanout seeded
//     peers: each side sends a digest (per-(obj,holder) max seq over
//     the entries the receiver owns), the other replies with exactly
//     the fresher entries. Anti-entropy: divergent views converge
//     without re-sending whole tables.
//  3. prune — expired leases and entries for ranges a view's node no
//     longer owns are dropped.
//
// Rounds are the logical clock of the convergence bound: the churn soak
// counts Ticks between "events stop" and "views converged".
func (d *Directory) Tick() RoundReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.round++
	now := d.cfg.Clock()
	rep := RoundReport{Round: d.round}

	live := d.aliveSortedLocked()

	// 1. Refresh leases at the owners.
	for _, n := range live {
		for _, o := range sortedKeys(d.holdings[n]) {
			p, dr := d.advertiseLocked(n, o, now, false)
			rep.Adverts += p
			rep.Dropped += dr
		}
	}

	// 2. Fanout-k push/pull with seeded peer choice.
	for _, n := range live {
		peers := d.pickPeersLocked(n, live)
		for _, p := range peers {
			if d.inj.DropGossip("gossip:xchg", n, p, d.round) {
				rep.Dropped++
				continue
			}
			rep.Exchanges++
			rep.Transferred += d.reconcileLocked(p, n, now) // push: n's entries p owns
			rep.Transferred += d.reconcileLocked(n, p, now) // pull: p's entries n owns
		}
	}

	// 3. Prune expiry and disowned ranges.
	for _, n := range live {
		rep.Pruned += d.pruneLocked(n, now)
	}

	d.counters.Add("gossip.rounds", 1)
	d.counters.Add("gossip.adverts", int64(rep.Adverts))
	d.counters.Add("gossip.exchanges", int64(rep.Exchanges))
	d.counters.Add("gossip.transferred", int64(rep.Transferred))
	d.counters.Add("gossip.pruned", int64(rep.Pruned))
	d.counters.Add("gossip.dropped", int64(rep.Dropped))
	return rep
}

// pickPeersLocked draws up to Fanout distinct exchange partners for n:
// live, reachable, not n, chosen by a pure hash of (seed, round, n, i)
// so a soak replays from its seed.
func (d *Directory) pickPeersLocked(n string, live []string) []string {
	if _, full := d.links.(fullMesh); full {
		return d.pickPeersFullMeshLocked(n, live)
	}
	cand := make([]string, 0, len(live))
	for _, p := range live {
		if p != n && d.links.Reachable(n, p) {
			cand = append(cand, p)
		}
	}
	k := d.cfg.Fanout
	if k > len(cand) {
		k = len(cand)
	}
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		h := splitmix(fnv1a(n) ^ splitmix(uint64(d.cfg.Seed)^uint64(d.round)*0x9e3779b97f4a7c15^uint64(i)<<32))
		j := int(h % uint64(len(cand)))
		out = append(out, cand[j])
		cand = append(cand[:j], cand[j+1:]...)
	}
	return out
}

// pickPeersFullMeshLocked is pickPeersLocked for the no-partitions
// Links: every live node except n is a candidate, so instead of
// materializing an O(live) candidate slice per caller (which makes a
// gossip round quadratic in the membership — the dominant cost at the
// workload engine's 10k-node scale) it draws the same seeded indices
// and maps each into the virtual candidate list by adjusting for the
// self slot and for earlier removals. The peers returned are
// byte-identical to the generic path's.
func (d *Directory) pickPeersFullMeshLocked(n string, live []string) []string {
	self := sort.SearchStrings(live, n)
	if self == len(live) || live[self] != n {
		self = -1 // n itself is down; every live node is a candidate
	}
	size := len(live)
	if self >= 0 {
		size--
	}
	k := d.cfg.Fanout
	if k > size {
		k = size
	}
	out := make([]string, 0, k)
	removed := make([]int, 0, k) // candidate indices already drawn, ascending
	for i := 0; i < k; i++ {
		h := splitmix(fnv1a(n) ^ splitmix(uint64(d.cfg.Seed)^uint64(d.round)*0x9e3779b97f4a7c15^uint64(i)<<32))
		j := int(h % uint64(size-i))
		// Map the draw from the shrunken list back to the original
		// candidate index: every earlier removal at or below the running
		// position shifts it up by one.
		for _, r := range removed {
			if j >= r {
				j++
			}
		}
		at := 0
		for at < len(removed) && removed[at] < j {
			at++
		}
		removed = append(removed, 0)
		copy(removed[at+1:], removed[at:])
		removed[at] = j
		// Candidate index → live index: candidates are live minus n.
		li := j
		if self >= 0 && j >= self {
			li++
		}
		out = append(out, live[li])
	}
	return out
}

// reconcileLocked is one direction of the anti-entropy exchange: copy
// from src's view into dst's view every lease for an object dst owns
// (or holds itself) whose seq is fresher than what dst has. This is the
// digest step collapsed in-process: the digest dst would send is its
// per-(obj,holder) max seq, and exactly the entries that beat it are
// transferred. Expired entries are never transferred.
func (d *Directory) reconcileLocked(dst, src string, now time.Time) int {
	sv, dv := d.views[src], d.views[dst]
	moved := 0
	for obj, hs := range sv.leases {
		if !d.ownsLocked(dst, obj) {
			continue
		}
		for holder, l := range hs {
			if !l.expires.After(now) {
				continue
			}
			if cur, ok := dv.leases[obj][holder]; ok && cur.seq >= l.seq {
				continue
			}
			dv.set(obj, holder, l)
			moved++
		}
	}
	return moved
}

// pruneLocked drops expired leases and hands off disowned ranges from
// n's view. An entry is kept while its lease is live and either n owns
// the object or n is the holder (a node always remembers its own
// adverts).
func (d *Directory) pruneLocked(n string, now time.Time) int {
	v := d.views[n]
	pruned := 0
	for obj, hs := range v.leases {
		owns := d.ownsLocked(n, obj)
		for holder, l := range hs {
			if !l.expires.After(now) || (!owns && holder != n) {
				delete(hs, holder)
				pruned++
			}
		}
		if len(hs) == 0 {
			delete(v.leases, obj)
		}
	}
	return pruned
}

// ownsLocked reports whether node is one of obj's ring owners.
func (d *Directory) ownsLocked(node, obj string) bool {
	for _, o := range d.ring.Owners(obj, d.cfg.Owners) {
		if o == node {
			return true
		}
	}
	return false
}

// Lookup resolves obj's holders as seen from node `from`: ask the ring
// owners in successor order — one hop — and return the first non-empty
// live holder set; owners that are down or across a cut are skipped.
// When no owner is reachable (every owner stranded on the far side of a
// cut), fall back to from's own view, which at least knows its own
// holdings. from == "" is the operator's omniscient view (stats,
// squirrelctl): it may ask any live owner.
//
// Expired leases are filtered here unconditionally — whatever a view
// still physically stores, an entry past its TTL is never served.
func (d *Directory) Lookup(from, obj string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.counters.Add("gossip.lookups", 1)
	now := d.cfg.Clock()
	for _, owner := range d.ring.Owners(obj, d.cfg.Owners) {
		if !d.alive[owner] {
			continue
		}
		if from != "" && owner != from && !d.links.Reachable(from, owner) {
			continue
		}
		if hs := liveHolders(d.views[owner], obj, now); len(hs) > 0 {
			if owner != from {
				d.counters.Add("gossip.lookup_hops", 1)
			}
			return hs
		}
	}
	if from != "" {
		d.counters.Add("gossip.lookup_fallback", 1)
		return liveHolders(d.views[from], obj, now)
	}
	return nil
}

// liveHolders lists the unexpired, unretracted holders for obj in v,
// sorted.
func liveHolders(v *view, obj string, now time.Time) []string {
	if v == nil {
		return nil
	}
	var out []string
	for holder, l := range v.leases[obj] {
		if l.gone || !l.expires.After(now) {
			continue
		}
		out = append(out, holder)
	}
	sort.Strings(out)
	return out
}

// Round returns the number of completed rounds.
func (d *Directory) Round() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.round
}

// Owners exposes obj's current ring owners (tests, docs).
func (d *Directory) Owners(obj string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ring.Owners(obj, d.cfg.Owners)
}

// Objects counts distinct objects with at least one live lease in some
// view.
func (d *Directory) Objects() int {
	objs, _ := d.unionLocked()
	return objs
}

// Entries counts distinct live (obj, holder) leases across all views —
// the decentralized analogue of the central index's announcement count.
func (d *Directory) Entries() int {
	_, entries := d.unionLocked()
	return entries
}

func (d *Directory) unionLocked() (objs, entries int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Clock()
	seen := make(map[string]map[string]bool)
	for _, v := range d.views {
		for obj, hs := range v.leases {
			for holder, l := range hs {
				if l.gone || !l.expires.After(now) {
					continue
				}
				if seen[obj] == nil {
					seen[obj] = make(map[string]bool)
				}
				seen[obj][holder] = true
			}
		}
	}
	for _, hs := range seen {
		entries += len(hs)
	}
	return len(seen), entries
}

// AnnouncedBy counts the distinct objects node has a live lease for in
// any view (the health dump's withdrawn column).
func (d *Directory) AnnouncedBy(node string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Clock()
	seen := make(map[string]bool)
	for _, v := range d.views {
		for obj, hs := range v.leases {
			if l, ok := hs[node]; ok && !l.gone && l.expires.After(now) {
				seen[obj] = true
			}
		}
	}
	return len(seen)
}

// ViewStats sizes one node's local view: live leases it carries, and
// stale ones (expired but not yet pruned by a round) — the staleness
// column in squirrelctl.
func (d *Directory) ViewStats(node string) (leases, stale int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Clock()
	v := d.views[node]
	if v == nil {
		return 0, 0
	}
	for _, hs := range v.leases {
		for _, l := range hs {
			if l.gone || !l.expires.After(now) {
				stale++
			} else {
				leases++
			}
		}
	}
	return leases, stale
}

// StaleTotal sums ViewStats stale counts over live views.
func (d *Directory) StaleTotal() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Clock()
	total := 0
	for n, v := range d.views {
		if !d.alive[n] {
			continue
		}
		for _, hs := range v.leases {
			for _, l := range hs {
				if l.gone || !l.expires.After(now) {
					total++
				}
			}
		}
	}
	return total
}

// Alive lists live members, sorted.
func (d *Directory) Alive() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.aliveSortedLocked()
}

func (d *Directory) aliveSortedLocked() []string {
	out := make([]string, 0, len(d.members))
	for _, n := range d.members {
		if d.alive[n] {
			out = append(out, n)
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
