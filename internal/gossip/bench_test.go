package gossip

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkIndexChurn measures announce + lookup throughput while the
// membership churns: every iteration refreshes one node's holdings and
// resolves one object, and every 64th iteration crashes or restarts a
// node and runs a gossip round. The converge-rounds metric is the
// measured bound the CI churn job gates: rounds from a cold owner crash
// until every live view answers every object exactly.
func BenchmarkIndexChurn(b *testing.B) {
	const (
		nodes   = 32
		objects = 128
	)
	clk := newFakeClock()
	ids := nodeIDs(nodes)
	objs := make([]string, objects)
	for i := range objs {
		objs[i] = fmt.Sprintf("img%03d", i)
	}
	build := func(ttl time.Duration) *Directory {
		d := New(Config{Seed: 1337, TTL: ttl, Fanout: 3, Owners: 2, Clock: clk.Now}, ids, nil)
		for i, n := range ids {
			held := make([]string, 0, objects/4)
			for j := i; j < objects; j += nodes / 8 {
				held = append(held, objs[j])
			}
			d.SetHoldings(n, held)
		}
		return d
	}

	// Measured convergence bound: crash the busiest primary owner plus a
	// random member, then count rounds to exact convergence. The bound
	// decomposes as TTL rounds (the dead holders' own leases must age
	// out) plus ownership hand-off; an 8-tick TTL keeps the hand-off
	// share visible instead of drowning it in lease decay.
	d := build(8 * time.Second)
	d.MarkDown(d.Owners(objs[0])[0])
	d.MarkDown("cc17")
	convergeRounds := 0
	for ; convergeRounds < 64 && !converged(d, objs); convergeRounds++ {
		clk.Advance(time.Second)
		d.Tick()
	}
	if !converged(d, objs) {
		b.Fatal("benchmark deployment failed to converge")
	}

	d = build(30 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := ids[i%nodes]
		d.SetHoldings(n, []string{objs[i%objects], objs[(i*7)%objects]})
		d.Lookup(n, objs[(i*13)%objects])
		if i%64 == 63 {
			victim := ids[(i/64)%nodes]
			d.MarkDown(victim)
			d.Tick()
			d.MarkUp(victim)
		}
	}
	// After ResetTimer, or it would be cleared with the timer state.
	b.ReportMetric(float64(convergeRounds), "converge-rounds")
}
