package gossip

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// BenchmarkIndexChurn measures announce + lookup throughput while the
// membership churns: every iteration refreshes one node's holdings and
// resolves one object, and every 64th iteration crashes or restarts a
// node and runs a gossip round. The converge-rounds metric is the
// measured bound the CI churn job gates: rounds from a cold owner crash
// until every live view answers every object exactly.
func BenchmarkIndexChurn(b *testing.B) {
	const (
		nodes   = 32
		objects = 128
	)
	clk := newFakeClock()
	ids := nodeIDs(nodes)
	objs := make([]string, objects)
	for i := range objs {
		objs[i] = fmt.Sprintf("img%03d", i)
	}
	build := func(ttl time.Duration) *Directory {
		d := New(Config{Seed: 1337, TTL: ttl, Fanout: 3, Owners: 2, Clock: clk.Now}, ids, nil)
		for i, n := range ids {
			held := make([]string, 0, objects/4)
			for j := i; j < objects; j += nodes / 8 {
				held = append(held, objs[j])
			}
			d.SetHoldings(n, held)
		}
		return d
	}

	// Measured convergence bound: crash the busiest primary owner plus a
	// random member, then count rounds to exact convergence. The bound
	// decomposes as TTL rounds (the dead holders' own leases must age
	// out) plus ownership hand-off; an 8-tick TTL keeps the hand-off
	// share visible instead of drowning it in lease decay.
	d := build(8 * time.Second)
	d.MarkDown(d.Owners(objs[0])[0])
	d.MarkDown("cc17")
	convergeRounds := 0
	for ; convergeRounds < 64 && !converged(d, objs); convergeRounds++ {
		clk.Advance(time.Second)
		d.Tick()
	}
	if !converged(d, objs) {
		b.Fatal("benchmark deployment failed to converge")
	}

	d = build(30 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := ids[i%nodes]
		d.SetHoldings(n, []string{objs[i%objects], objs[(i*7)%objects]})
		d.Lookup(n, objs[(i*13)%objects])
		if i%64 == 63 {
			victim := ids[(i/64)%nodes]
			d.MarkDown(victim)
			d.Tick()
			d.MarkUp(victim)
		}
	}
	// After ResetTimer, or it would be cleared with the timer state.
	b.ReportMetric(float64(convergeRounds), "converge-rounds")
}

// BenchmarkGossipScale charts the directory's cost curve from 1k nodes
// to the paper's 10k-node deployment, the membership range the workload
// engine drives. The catalog stays fixed (an image-popularity catalog
// does not grow with the cluster) while holdings density per node is
// constant, so replication fan-in grows with the membership. ns/op is
// one full gossip round — advertise + fanout-k exchange + prune across
// every live node — and converge-rounds is the owner-crash convergence
// bound measured at that scale before the timer starts.
func BenchmarkGossipScale(b *testing.B) {
	const objects = 256
	for _, nodes := range []int{1000, 4000, 10000} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			clk := newFakeClock()
			ids := nodeIDs(nodes)
			objs := make([]string, objects)
			for i := range objs {
				objs[i] = fmt.Sprintf("img%03d", i)
			}
			build := func(ttl time.Duration) *Directory {
				d := New(Config{Seed: 1337, TTL: ttl, Fanout: 3, Owners: 2, Clock: clk.Now}, ids, nil)
				for i, n := range ids {
					d.SetHoldings(n, []string{objs[i%objects], objs[(i*7+3)%objects]})
				}
				return d
			}

			// Convergence probe at this scale: crash the first object's
			// primary owner plus one arbitrary member, then count rounds
			// until a sampled slice of the membership resolves every
			// object exactly (querying all 10k views per round would
			// dwarf the rounds being measured).
			d := build(8 * time.Second)
			d.MarkDown(d.Owners(objs[0])[0])
			d.MarkDown(ids[nodes/2])
			stride := nodes/64 + 1
			rounds := 0
			for ; rounds < 96 && !convergedSampled(d, objs, stride); rounds++ {
				clk.Advance(time.Second)
				d.Tick()
			}
			if !convergedSampled(d, objs, stride) {
				b.Fatalf("%d-node deployment failed to converge in 96 rounds", nodes)
			}

			d = build(30 * time.Second)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clk.Advance(time.Second)
				d.Tick()
			}
			b.ReportMetric(float64(rounds), "converge-rounds")
		})
	}
}

// convergedSampled is converged restricted to every stride-th live
// node's view — the sampled convergence check the scale benchmark can
// afford to run between rounds.
func convergedSampled(d *Directory, objs []string, stride int) bool {
	d.mu.Lock()
	live := d.aliveSortedLocked()
	truth := make(map[string][]string)
	for _, obj := range objs {
		for _, n := range live {
			if d.holdings[n][obj] {
				truth[obj] = append(truth[obj], n)
			}
		}
	}
	d.mu.Unlock()
	for _, obj := range objs {
		for i := 0; i < len(live); i += stride {
			if !reflect.DeepEqual(d.Lookup(live[i], obj), truth[obj]) {
				return false
			}
		}
	}
	return true
}
