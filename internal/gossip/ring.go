package gossip

import (
	"sort"
)

// Ring is the consistent-hash ownership layer of the decentralized
// index: each cache object's advertisement set is owned by the
// Owners() successors of H(object) on the ring, so an advertiser knows
// exactly which views to refresh and a lookup knows exactly which views
// to ask — O(1) hops, no flooding. Virtual nodes smooth the ownership
// distribution; membership changes (crash, restart) move only the
// ranges adjacent to the changed node, and the next refresh round
// re-populates the new owners (automatic re-replication).
//
// The ring is not safe for concurrent use; the Directory serializes
// access under its own mutex.
type Ring struct {
	vnodes int
	nodes  map[string]bool
	// points is the sorted ring: vnode hash → owning node.
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per
// member (minimum 1).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// Add joins a node to the ring (idempotent). The node's vnodes are
// sorted on their own and merged into the already-sorted ring, so a
// join costs O(ring) instead of a full re-sort; the resulting order is
// identical either way because pointLess is a total order independent
// of insertion sequence.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	fresh := make([]ringPoint, 0, r.vnodes)
	for i := 0; i < r.vnodes; i++ {
		fresh = append(fresh, ringPoint{hash: vnodeHash(node, i), node: node})
	}
	sort.Slice(fresh, func(i, j int) bool { return pointLess(fresh[i], fresh[j]) })
	r.points = mergePoints(r.points, fresh)
}

// AddAll joins many nodes at once: one sort over the union instead of a
// merge per member. Bulk construction of a 10k-node ring is what the
// workload engine's provisioning path hits, and a per-Add merge there
// would be quadratic in the membership.
func (r *Ring) AddAll(nodes []string) {
	added := false
	for _, node := range nodes {
		if r.nodes[node] {
			continue
		}
		r.nodes[node] = true
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(node, i), node: node})
		}
		added = true
	}
	if added {
		sort.Slice(r.points, func(i, j int) bool { return pointLess(r.points[i], r.points[j]) })
	}
}

// pointLess is the ring's total order: by hash, hash ties
// (astronomically rare) broken lexically so the walk order is
// deterministic regardless of insertion order.
func pointLess(a, b ringPoint) bool {
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return a.node < b.node
}

// mergePoints merges two pointLess-sorted lists.
func mergePoints(a, b []ringPoint) []ringPoint {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]ringPoint, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if pointLess(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Remove drops a node from the ring (idempotent).
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports ring membership.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.nodes) }

// Owners returns the n distinct members that own key: the successors of
// H(key) walking clockwise. Fewer than n members returns all of them,
// nearest first. The order is significant — lookups ask owners in this
// order, so the primary owner absorbs most lookup traffic for its keys.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// vnodeHash positions one virtual node on the ring.
func vnodeHash(node string, replica int) uint64 {
	return splitmix(fnv1a(node) ^ uint64(replica)*0x9e3779b97f4a7c15)
}

// keyHash positions a cache object on the ring.
func keyHash(key string) uint64 { return splitmix(fnv1a(key)) }

// fnv1a folds a string into 64 bits.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix finalizes a hash with good avalanche (same finalizer the
// fault injector uses, so ring placement is stable and well mixed
// without pulling in a full RNG).
func splitmix(h uint64) uint64 {
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
