package gossip

import (
	"sort"
)

// Ring is the consistent-hash ownership layer of the decentralized
// index: each cache object's advertisement set is owned by the
// Owners() successors of H(object) on the ring, so an advertiser knows
// exactly which views to refresh and a lookup knows exactly which views
// to ask — O(1) hops, no flooding. Virtual nodes smooth the ownership
// distribution; membership changes (crash, restart) move only the
// ranges adjacent to the changed node, and the next refresh round
// re-populates the new owners (automatic re-replication).
//
// The ring is not safe for concurrent use; the Directory serializes
// access under its own mutex.
type Ring struct {
	vnodes int
	nodes  map[string]bool
	// points is the sorted ring: vnode hash → owning node.
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per
// member (minimum 1).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// Add joins a node to the ring (idempotent).
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break lexically so the walk
		// order is deterministic regardless of insertion order.
		return r.points[i].node < r.points[j].node
	})
}

// Remove drops a node from the ring (idempotent).
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports ring membership.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.nodes) }

// Owners returns the n distinct members that own key: the successors of
// H(key) walking clockwise. Fewer than n members returns all of them,
// nearest first. The order is significant — lookups ask owners in this
// order, so the primary owner absorbs most lookup traffic for its keys.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// vnodeHash positions one virtual node on the ring.
func vnodeHash(node string, replica int) uint64 {
	return splitmix(fnv1a(node) ^ uint64(replica)*0x9e3779b97f4a7c15)
}

// keyHash positions a cache object on the ring.
func keyHash(key string) uint64 { return splitmix(fnv1a(key)) }

// fnv1a folds a string into 64 bits.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix finalizes a hash with good avalanche (same finalizer the
// fault injector uses, so ring placement is stable and well mixed
// without pulling in a full RNG).
func splitmix(h uint64) uint64 {
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
