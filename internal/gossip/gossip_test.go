package gossip

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// fakeClock steps lease time deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2014, 6, 23, 9, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func nodeIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cc%02d", i+1)
	}
	return out
}

// cutLinks is a Links with an explicit minority cut, mirroring
// cluster.Cluster's reachability model.
type cutLinks struct {
	mu  sync.Mutex
	cut map[string]bool
}

func (c *cutLinks) Reachable(a, b string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cut[a] == c.cut[b]
}

func (c *cutLinks) partition(ids ...string) {
	c.mu.Lock()
	c.cut = map[string]bool{}
	for _, id := range ids {
		c.cut[id] = true
	}
	c.mu.Unlock()
}

func (c *cutLinks) heal() {
	c.mu.Lock()
	c.cut = nil
	c.mu.Unlock()
}

// TestLeaseExpiryFakeClock is the lease state machine under a stepped
// clock: an unrefreshed entry is gone from lookups the instant its TTL
// passes, and one refresh buys exactly one more TTL — no more.
func TestLeaseExpiryFakeClock(t *testing.T) {
	clk := newFakeClock()
	ttl := 10 * time.Second
	d := New(Config{Seed: 1, TTL: ttl, Clock: clk.Now}, nodeIDs(4), nil)

	d.SetHoldings("cc01", []string{"imgA"})
	if got := d.Lookup("cc02", "imgA"); !reflect.DeepEqual(got, []string{"cc01"}) {
		t.Fatalf("fresh lease invisible: Lookup = %v", got)
	}

	// Step to one instant before expiry: still served.
	clk.Advance(ttl - time.Nanosecond)
	if got := d.Lookup("cc02", "imgA"); !reflect.DeepEqual(got, []string{"cc01"}) {
		t.Fatalf("lease expired early: Lookup = %v", got)
	}
	// Cross the TTL with no refresh: gone from every lookup, no round
	// needed.
	clk.Advance(time.Nanosecond)
	if got := d.Lookup("cc02", "imgA"); len(got) != 0 {
		t.Fatalf("expired lease served: Lookup = %v", got)
	}
	if got := d.Lookup("cc01", "imgA"); len(got) != 0 {
		t.Fatalf("expired lease served from own view: Lookup = %v", got)
	}

	// Refresh: the entry comes back and survives exactly one more TTL.
	d.SetHoldings("cc01", []string{"imgA"})
	refreshed := clk.Now()
	clk.Advance(ttl - time.Millisecond)
	if got := d.Lookup("cc02", "imgA"); !reflect.DeepEqual(got, []string{"cc01"}) {
		t.Fatalf("refreshed lease gone before its TTL: Lookup = %v", got)
	}
	clk.Advance(time.Millisecond)
	if got := d.Lookup("cc02", "imgA"); len(got) != 0 {
		t.Fatalf("refreshed lease outlived its TTL (refreshed %v, now %v): Lookup = %v",
			refreshed, clk.Now(), got)
	}

	// Rounds prune what expiry already hid.
	if stale := d.StaleTotal(); stale == 0 {
		t.Fatal("expected stale (expired, unpruned) entries before the round")
	}
	d.Tick()
	if stale := d.StaleTotal(); stale != 0 {
		t.Fatalf("round left %d stale entries unpruned", stale)
	}
}

// TestTickRefreshExtendsLease: a holder that stays up never loses its
// advertisement — each round's refresh pushes expiry out one TTL.
func TestTickRefreshExtendsLease(t *testing.T) {
	clk := newFakeClock()
	d := New(Config{Seed: 2, TTL: 3 * time.Second, Clock: clk.Now}, nodeIDs(4), nil)
	d.SetHoldings("cc03", []string{"imgB"})
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second) // 10s total, far past one TTL
		d.Tick()
		if got := d.Lookup("cc01", "imgB"); !reflect.DeepEqual(got, []string{"cc03"}) {
			t.Fatalf("round %d: refreshed holder lost: Lookup = %v", i+1, got)
		}
	}
}

func TestWithdrawTombstone(t *testing.T) {
	clk := newFakeClock()
	d := New(Config{Seed: 3, TTL: 30 * time.Second, Clock: clk.Now}, nodeIDs(4), nil)
	d.SetHoldings("cc01", []string{"imgA", "imgB"})
	d.SetHoldings("cc02", []string{"imgA"})
	d.Withdraw("imgA", "cc01")
	if got := d.Lookup("cc03", "imgA"); !reflect.DeepEqual(got, []string{"cc02"}) {
		t.Fatalf("withdrawn advert still served: Lookup = %v", got)
	}
	if got := d.Lookup("cc03", "imgB"); !reflect.DeepEqual(got, []string{"cc01"}) {
		t.Fatalf("withdraw bled across objects: Lookup = %v", got)
	}
	d.WithdrawObject("imgB")
	if got := d.Lookup("cc03", "imgB"); len(got) != 0 {
		t.Fatalf("deregistered object still served: Lookup = %v", got)
	}
	// SetHoldings diff retracts vanished objects the same way.
	d.SetHoldings("cc02", nil)
	if got := d.Lookup("cc03", "imgA"); len(got) != 0 {
		t.Fatalf("diff retraction missed: Lookup = %v", got)
	}
}

// TestCrashLeasesDecayByTTL: nobody retracts a crashed holder's leases;
// they expire on schedule and rounds prune them.
func TestCrashLeasesDecayByTTL(t *testing.T) {
	clk := newFakeClock()
	ttl := 5 * time.Second
	d := New(Config{Seed: 4, TTL: ttl, Clock: clk.Now}, nodeIDs(6), nil)
	for _, n := range nodeIDs(6) {
		d.SetHoldings(n, []string{"imgA"})
	}
	d.MarkDown("cc04")
	// Within TTL the dead node's lease is still visible — bounded
	// staleness, the price of no central registry.
	if got := d.Lookup("cc01", "imgA"); len(got) != 6 {
		t.Fatalf("leases vanished at crash instant: Lookup = %v", got)
	}
	// Rounds advance and refresh the live five; the dead lease ages out.
	for i := 0; i < 6; i++ {
		clk.Advance(time.Second)
		d.Tick()
	}
	want := []string{"cc01", "cc02", "cc03", "cc05", "cc06"}
	if got := d.Lookup("cc01", "imgA"); !reflect.DeepEqual(got, want) {
		t.Fatalf("dead holder outlived its TTL: Lookup = %v, want %v", got, want)
	}
}

// converged reports whether every live node's lookup of every object
// matches the authoritative holdings exactly.
func converged(d *Directory, objs []string) bool {
	d.mu.Lock()
	truth := make(map[string][]string)
	for _, obj := range objs {
		for _, n := range d.aliveSortedLocked() {
			if d.holdings[n][obj] {
				truth[obj] = append(truth[obj], n)
			}
		}
	}
	live := d.aliveSortedLocked()
	d.mu.Unlock()
	for _, obj := range objs {
		for _, q := range live {
			if !reflect.DeepEqual(d.Lookup(q, obj), truth[obj]) {
				return false
			}
		}
	}
	return true
}

// TestOwnerCrashReReplicates: crashing an object's primary owner moves
// ownership to the ring successor, and refresh + anti-entropy re-warm
// the new owner within a couple of rounds.
func TestOwnerCrashReReplicates(t *testing.T) {
	clk := newFakeClock()
	ids := nodeIDs(8)
	// TTL of 4 ticks: the crashed owners are holders too, so their own
	// leases must age out before lookups match the live truth — the
	// convergence bound is TTL rounds for decay plus ~2 for ownership
	// hand-off.
	d := New(Config{Seed: 5, TTL: 4 * time.Second, Fanout: 2, Clock: clk.Now}, ids, nil)
	objs := []string{"imgA", "imgB", "imgC", "imgD"}
	for i, n := range ids {
		d.SetHoldings(n, objs[:1+i%len(objs)])
	}
	if !converged(d, objs) {
		t.Fatal("not converged after initial announcements")
	}
	// Crash every object's primary owner in turn (worst case for each).
	owners := map[string]bool{}
	for _, obj := range objs {
		owners[d.Owners(obj)[0]] = true
	}
	for o := range owners {
		d.MarkDown(o)
	}
	rounds := 0
	for ; rounds < 8 && !converged(d, objs); rounds++ {
		clk.Advance(time.Second)
		d.Tick()
	}
	if !converged(d, objs) {
		t.Fatalf("no convergence within 8 rounds of crashing %d owners", len(owners))
	}
	t.Logf("re-replicated after %d owner crashes in %d rounds", len(owners), rounds)
}

// TestPartitionDivergenceHeals: both sides of a cut keep serving their
// own side's holders; after the heal the views reconcile within a
// bounded number of rounds.
func TestPartitionDivergenceHeals(t *testing.T) {
	clk := newFakeClock()
	links := &cutLinks{}
	ids := nodeIDs(8)
	d := New(Config{Seed: 6, TTL: 20 * time.Second, Fanout: 2, Clock: clk.Now}, ids, links)
	for _, n := range ids {
		d.SetHoldings(n, []string{"imgA"})
	}
	links.partition("cc07", "cc08")
	// Registrations land on both sides while the cut is open.
	d.SetHoldings("cc07", []string{"imgA", "imgCut"})
	d.SetHoldings("cc01", []string{"imgA", "imgMaj"})
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		d.Tick()
	}
	// Minority lookups see minority holders (own view fallback at
	// worst); majority lookups never cross the cut.
	if got := d.Lookup("cc08", "imgCut"); len(got) == 0 {
		t.Fatal("minority cannot see its own side's adverts during the cut")
	}
	links.heal()
	rounds := 0
	for ; rounds < 10 && !converged(d, []string{"imgA", "imgCut", "imgMaj"}); rounds++ {
		clk.Advance(time.Second)
		d.Tick()
	}
	if !converged(d, []string{"imgA", "imgCut", "imgMaj"}) {
		t.Fatal("views did not reconcile within 10 rounds of the heal")
	}
	t.Logf("healed divergence in %d rounds", rounds)
}

// TestGossipDropLaneBoundedRepair: with a lossy gossip plane the
// exchange still converges — anti-entropy re-sends until every owner
// has the freshest lease — and the drop lane accounts its losses.
func TestGossipDropLaneBoundedRepair(t *testing.T) {
	clk := newFakeClock()
	inj, err := fault.New(fault.Plan{Seed: 1337, GossipDrop: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	ids := nodeIDs(8)
	d := New(Config{Seed: 7, TTL: 30 * time.Second, Fanout: 2, Clock: clk.Now}, ids, nil)
	d.SetInjector(inj)
	objs := []string{"imgA", "imgB", "imgC"}
	for i, n := range ids {
		d.SetHoldings(n, objs[:1+i%3])
	}
	rounds := 0
	for ; rounds < 12 && !converged(d, objs); rounds++ {
		clk.Advance(time.Second)
		d.Tick()
	}
	if !converged(d, objs) {
		t.Fatal("40% message loss defeated anti-entropy within 12 rounds")
	}
	if inj.Counters().Get("fault.gossip_drop") == 0 {
		t.Fatal("lossy plan dropped nothing — lane not wired")
	}
}

// TestDeterministicReplay: the same seed and event script produce
// byte-identical lookups and round accounting.
func TestDeterministicReplay(t *testing.T) {
	run := func() ([]RoundReport, map[string][]string) {
		clk := newFakeClock()
		inj, err := fault.New(fault.Plan{Seed: 99, GossipDrop: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		ids := nodeIDs(6)
		d := New(Config{Seed: 42, TTL: 10 * time.Second, Fanout: 2, Clock: clk.Now}, ids, nil)
		d.SetInjector(inj)
		objs := []string{"imgA", "imgB"}
		for i, n := range ids {
			d.SetHoldings(n, objs[:1+i%2])
		}
		d.MarkDown("cc03")
		var reps []RoundReport
		for i := 0; i < 5; i++ {
			clk.Advance(time.Second)
			reps = append(reps, d.Tick())
		}
		d.MarkUp("cc03")
		d.SetHoldings("cc03", []string{"imgA"})
		for i := 0; i < 3; i++ {
			clk.Advance(time.Second)
			reps = append(reps, d.Tick())
		}
		looks := make(map[string][]string)
		for _, q := range ids {
			for _, obj := range objs {
				looks[q+"/"+obj] = d.Lookup(q, obj)
			}
		}
		return reps, looks
	}
	r1, l1 := run()
	r2, l2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("round reports diverged:\n%v\n%v", r1, r2)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Fatalf("lookups diverged:\n%v\n%v", l1, l2)
	}
}

// TestRestartRejoinsEmpty: a restarted node comes back with a wiped
// view and is re-warmed by refresh + anti-entropy, not by ghosts of its
// pre-crash memory.
func TestRestartRejoinsEmpty(t *testing.T) {
	clk := newFakeClock()
	ids := nodeIDs(6)
	d := New(Config{Seed: 8, TTL: 10 * time.Second, Fanout: 2, Clock: clk.Now}, ids, nil)
	for _, n := range ids {
		d.SetHoldings(n, []string{"imgA"})
	}
	d.MarkDown("cc02")
	// The world moves on while cc02 is dead: cc05 drops its replica.
	d.Withdraw("imgA", "cc05")
	d.MarkUp("cc02")
	if leases, stale := d.ViewStats("cc02"); leases != 0 || stale != 0 {
		t.Fatalf("restarted view not empty: %d live, %d stale", leases, stale)
	}
	d.SetHoldings("cc02", []string{"imgA"})
	rounds := 0
	for ; rounds < 6 && !converged(d, []string{"imgA"}); rounds++ {
		clk.Advance(time.Second)
		d.Tick()
	}
	want := []string{"cc01", "cc02", "cc03", "cc04", "cc06"}
	if got := d.Lookup("cc02", "imgA"); !reflect.DeepEqual(got, want) {
		t.Fatalf("restart warm-up wrong: Lookup = %v, want %v", got, want)
	}
}

// TestPickPeersFullMeshMatchesGeneric pins the full-mesh fast path to
// the generic candidate-list algorithm: a directory with default links
// and one whose Links is a custom always-reachable type (forcing the
// generic path) must draw identical peers for every node, every round,
// fanout by fanout — the fast path is an optimization, never a behavior
// change.
func TestPickPeersFullMeshMatchesGeneric(t *testing.T) {
	clk := newFakeClock()
	ids := nodeIDs(61)
	for _, fanout := range []int{1, 3, 5} {
		cfg := Config{Seed: 7, Fanout: fanout, Owners: 2, Clock: clk.Now}
		fast := New(cfg, ids, nil)         // fullMesh → fast path
		slow := New(cfg, ids, &cutLinks{}) // no cuts, but generic path
		for _, down := range []string{"cc07", "cc23", "cc61"} {
			fast.MarkDown(down)
			slow.MarkDown(down)
		}
		for round := 0; round < 8; round++ {
			fast.Tick()
			slow.Tick()
			fast.mu.Lock()
			live := fast.aliveSortedLocked()
			fast.mu.Unlock()
			for _, n := range live {
				fast.mu.Lock()
				a := fast.pickPeersLocked(n, live)
				fast.mu.Unlock()
				slow.mu.Lock()
				b := slow.pickPeersLocked(n, live)
				slow.mu.Unlock()
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("fanout %d round %d node %s: fast path picked %v, generic picked %v",
						fanout, round, n, a, b)
				}
			}
		}
	}
}
