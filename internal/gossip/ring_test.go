package gossip

import (
	"fmt"
	"testing"
)

func TestRingOwnersDistinctAndStable(t *testing.T) {
	r := NewRing(16)
	nodes := []string{"cc1", "cc2", "cc3", "cc4", "cc5"}
	for _, n := range nodes {
		r.Add(n)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("img%02d", i)
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s) = %v, want 3 distinct", key, owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%s) = %v has duplicates", key, owners)
			}
			seen[o] = true
		}
		again := r.Owners(key, 3)
		for j := range owners {
			if owners[j] != again[j] {
				t.Fatalf("Owners(%s) unstable: %v vs %v", key, owners, again)
			}
		}
	}
}

func TestRingRemoveMovesOnlyAffectedKeys(t *testing.T) {
	r := NewRing(16)
	for i := 1; i <= 6; i++ {
		r.Add(fmt.Sprintf("cc%d", i))
	}
	before := map[string][]string{}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("img%02d", i)
		before[k] = r.Owners(k, 2)
	}
	r.Remove("cc3")
	moved := 0
	for k, prev := range before {
		after := r.Owners(k, 2)
		for _, o := range after {
			if o == "cc3" {
				t.Fatalf("removed node still owns %s: %v", k, after)
			}
		}
		hadCC3 := prev[0] == "cc3" || prev[1] == "cc3"
		changed := prev[0] != after[0] || prev[1] != after[1]
		if changed {
			moved++
			if !hadCC3 {
				// A successor shift can change the second owner of a key
				// whose primary is unchanged; the primary must only move
				// when cc3 owned it.
				if prev[0] != after[0] && prev[0] != "cc3" {
					t.Fatalf("primary owner of %s moved %v -> %v without cc3 involved", k, prev, after)
				}
			}
		}
	}
	if moved == 0 {
		t.Fatal("removing a member moved no ownership at all")
	}
	if moved == 64 {
		t.Fatal("removing one member reshuffled every key (not consistent hashing)")
	}
}

func TestRingFewMembers(t *testing.T) {
	r := NewRing(8)
	if got := r.Owners("x", 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
	r.Add("cc1")
	if got := r.Owners("x", 3); len(got) != 1 || got[0] != "cc1" {
		t.Fatalf("single-member Owners = %v, want [cc1]", got)
	}
	r.Add("cc2")
	if got := r.Owners("x", 3); len(got) != 2 {
		t.Fatalf("two-member Owners(3) = %v, want both members", got)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(32)
	n := 8
	for i := 1; i <= n; i++ {
		r.Add(fmt.Sprintf("cc%d", i))
	}
	counts := map[string]int{}
	keys := 4096
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("img%04d", i), 1)[0]]++
	}
	want := keys / n
	for node, c := range counts {
		if c < want/3 || c > want*3 {
			t.Fatalf("ring badly unbalanced: %s owns %d of %d (fair share %d)", node, c, keys, want)
		}
	}
}
