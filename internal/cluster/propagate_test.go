package cluster

import (
	"bytes"
	"testing"

	"repro/internal/fault"
)

func testCluster(t *testing.T, compute int) *Cluster {
	t.Helper()
	c, err := New(GigE, 2, compute)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMulticastStreamCleanMatchesMulticast(t *testing.T) {
	c := testCluster(t, 3)
	wire := bytes.Repeat([]byte{1}, 1000)
	deliv, sec := c.MulticastStream("op", c.Storage[0], c.Compute, wire, nil)
	if len(deliv) != 3 {
		t.Fatalf("%d deliveries", len(deliv))
	}
	for _, d := range deliv {
		if !d.OK() || !bytes.Equal(d.Wire, wire) {
			t.Fatalf("clean delivery mangled: %+v", d.Fault)
		}
		if d.Node.RxBytes() != 1000 {
			t.Fatalf("rx %d", d.Node.RxBytes())
		}
	}
	if c.Storage[0].TxBytes() != 1000 {
		t.Fatalf("multicast source sent %d", c.Storage[0].TxBytes())
	}
	if want := GigE.TransferSec(1000); sec != want {
		t.Fatalf("sec %v want %v", sec, want)
	}
}

func TestUnicastStreamSerializesOnUplink(t *testing.T) {
	c := testCluster(t, 4)
	wire := bytes.Repeat([]byte{1}, 500)
	_, sec := c.UnicastStream("op", c.Storage[0], c.Compute, wire, nil)
	if c.Storage[0].TxBytes() != 2000 {
		t.Fatalf("fanout source sent %d, want 4 copies", c.Storage[0].TxBytes())
	}
	if want := GigE.TransferSec(2000); sec != want {
		t.Fatalf("sec %v want %v", sec, want)
	}
}

func TestPipelineStreamForwards(t *testing.T) {
	c := testCluster(t, 3)
	wire := bytes.Repeat([]byte{1}, 700)
	c.PipelineStream("op", c.Storage[0], c.Compute, wire, nil)
	// Every non-last chain member retransmits.
	if c.Compute[0].TxBytes() != 700 || c.Compute[1].TxBytes() != 700 {
		t.Fatal("pipeline members must forward")
	}
	if c.Compute[2].TxBytes() != 0 {
		t.Fatal("chain tail must not forward")
	}
}

func TestStreamsUnderTotalLoss(t *testing.T) {
	inj, err := fault.New(fault.Plan{Seed: 1, Drop: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t, 3)
	wire := bytes.Repeat([]byte{1}, 1000)
	deliv, _ := c.MulticastStream("op", c.Storage[0], c.Compute, wire, inj)
	for _, d := range deliv {
		if d.Fault != fault.Drop || d.Wire != nil {
			t.Fatalf("delivery under total loss: %+v", d.Fault)
		}
		if d.Node.RxBytes() != 0 {
			t.Fatalf("dropped destination accounted %d rx bytes", d.Node.RxBytes())
		}
	}
	// The source still transmitted the stream once.
	if c.Storage[0].TxBytes() != 1000 {
		t.Fatalf("source tx %d", c.Storage[0].TxBytes())
	}
}

func TestTruncatedDeliveryAccountsPartialBytes(t *testing.T) {
	inj, err := fault.New(fault.Plan{Seed: 2, Truncate: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t, 1)
	wire := bytes.Repeat([]byte{1}, 1000)
	deliv, _ := c.MulticastStream("op", c.Storage[0], c.Compute, wire, inj)
	d := deliv[0]
	if d.Fault != fault.Truncate || len(d.Wire) >= len(wire) {
		t.Fatalf("want truncation, got %v len %d", d.Fault, len(d.Wire))
	}
	if d.Node.RxBytes() != int64(len(d.Wire)) {
		t.Fatalf("rx %d != delivered %d", d.Node.RxBytes(), len(d.Wire))
	}
}

func TestUnicastPointToPoint(t *testing.T) {
	c := testCluster(t, 1)
	sec := c.Unicast(c.Storage[0], c.Compute[0], 300)
	if c.Storage[0].TxBytes() != 300 || c.Compute[0].RxBytes() != 300 {
		t.Fatal("unicast accounting")
	}
	if want := GigE.TransferSec(300); sec != want {
		t.Fatalf("sec %v want %v", sec, want)
	}
}
