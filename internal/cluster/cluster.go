// Package cluster models the data-center substrate of the paper's
// evaluation: DAS-4/VU compute and storage nodes, NIC byte accounting,
// the two network fabrics (1 GbE and 32 Gb/s QDR InfiniBand), a
// gluster-like striped + replicated parallel file system on the storage
// nodes, and the one-to-many transfer schemes Squirrel can use to
// propagate snapshot diffs (IP multicast, unicast fan-out, and a
// LANTorrent-style pipeline).
//
// Fig 18 is pure byte accounting on compute-node NICs; the fabric
// bandwidths additionally give transfer durations for the propagation
// ablation.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrUnreachable marks a transfer whose endpoints sit on opposite sides
// of an open network partition. Operations that cross the cut wrap it,
// so callers branch with errors.Is and retry after the heal.
var ErrUnreachable = errors.New("cluster: unreachable across network partition")

// Fabric describes one interconnect.
type Fabric struct {
	Name string
	Bps  float64 // usable bytes/second per link
}

// The paper's two DAS-4 fabrics (theoretical peak for IB, wire rate for
// GbE, both derated to realistic goodput).
var (
	GigE = Fabric{Name: "1GbE", Bps: 110e6}
	QDR  = Fabric{Name: "32GbIB", Bps: 3.2e9}
)

// TransferSec is the time to move n bytes over the fabric.
func (f Fabric) TransferSec(n int64) float64 {
	if f.Bps <= 0 {
		return 0
	}
	return float64(n) / f.Bps
}

// Role of a node.
type Role int

// Node roles.
const (
	Compute Role = iota
	Storage
)

// Node is one machine with NIC counters. Counters are atomic so
// concurrent transfers (parallel propagation legs, peer fetches, PFS
// chunk reads) account bytes without serializing on a per-node mutex.
type Node struct {
	ID   string
	Role Role

	rx atomic.Int64
	tx atomic.Int64
}

// Recv accounts n received bytes.
func (n *Node) Recv(b int64) { n.rx.Add(b) }

// Send accounts n transmitted bytes.
func (n *Node) Send(b int64) { n.tx.Add(b) }

// RxBytes returns received bytes so far.
func (n *Node) RxBytes() int64 { return n.rx.Load() }

// TxBytes returns transmitted bytes so far.
func (n *Node) TxBytes() int64 { return n.tx.Load() }

// Cluster is a set of storage and compute nodes on one fabric.
type Cluster struct {
	Fabric  Fabric
	Storage []*Node
	Compute []*Node

	// netmu guards the partition state: the set of node IDs currently on
	// the minority side of an open cut. Nodes on the same side reach each
	// other; nothing crosses the cut. Storage nodes stay on the majority
	// side unless explicitly listed.
	netmu sync.Mutex
	cut   map[string]bool
}

// New builds a cluster with the given node counts, like the paper's 4
// storage + 64 compute DAS-4 slice.
func New(fabric Fabric, storage, compute int) (*Cluster, error) {
	if storage < 1 || compute < 1 {
		return nil, fmt.Errorf("cluster: need at least one node of each role")
	}
	c := &Cluster{Fabric: fabric}
	for i := 0; i < storage; i++ {
		c.Storage = append(c.Storage, &Node{ID: fmt.Sprintf("stor%02d", i), Role: Storage})
	}
	for i := 0; i < compute; i++ {
		c.Compute = append(c.Compute, &Node{ID: fmt.Sprintf("node%02d", i), Role: Compute})
	}
	return c, nil
}

// ComputeRxTotal sums received bytes over all compute nodes — Fig 18's
// "cumulative transfer size at compute nodes".
func (c *Cluster) ComputeRxTotal() int64 {
	var n int64
	for _, node := range c.Compute {
		n += node.RxBytes()
	}
	return n
}

// ResetCounters zeroes every NIC counter.
func (c *Cluster) ResetCounters() {
	for _, n := range append(append([]*Node{}, c.Storage...), c.Compute...) {
		n.rx.Store(0)
		n.tx.Store(0)
	}
}

// ---------------------------------------------------------------------------
// Network partitions.

// Partition opens a network cut isolating the given node IDs (the
// minority side) from every other node. Calling Partition again replaces
// the cut wholesale; an empty minority heals it.
func (c *Cluster) Partition(minority []string) {
	cut := make(map[string]bool, len(minority))
	for _, id := range minority {
		cut[id] = true
	}
	c.netmu.Lock()
	c.cut = cut
	c.netmu.Unlock()
}

// Heal closes the open cut, restoring full connectivity. Returns the
// node IDs that were stranded, sorted — the set index anti-entropy must
// reconcile.
func (c *Cluster) Heal() []string {
	c.netmu.Lock()
	ids := make([]string, 0, len(c.cut))
	for id := range c.cut {
		ids = append(ids, id)
	}
	c.cut = nil
	c.netmu.Unlock()
	sort.Strings(ids)
	return ids
}

// Partitioned reports whether a cut is currently open.
func (c *Cluster) Partitioned() bool {
	c.netmu.Lock()
	defer c.netmu.Unlock()
	return len(c.cut) > 0
}

// Reachable reports whether nodes a and b can currently exchange bytes:
// both on the same side of the cut (or no cut open).
func (c *Cluster) Reachable(a, b string) bool {
	if a == b {
		return true
	}
	c.netmu.Lock()
	defer c.netmu.Unlock()
	return c.cut[a] == c.cut[b]
}

// Unreachable reports whether id sits on the minority side of an open
// cut — stranded from the storage nodes and the rest of the cluster.
func (c *Cluster) Unreachable(id string) bool {
	c.netmu.Lock()
	defer c.netmu.Unlock()
	return c.cut[id]
}

// ---------------------------------------------------------------------------
// One-to-many transfer schemes (§3.2, §5.2).

// Multicast models IP multicast of n bytes from src to dsts: the source
// transmits the stream once; every destination receives it. Returns the
// transfer duration.
func (c *Cluster) Multicast(src *Node, dsts []*Node, n int64) float64 {
	src.Send(n)
	for _, d := range dsts {
		d.Recv(n)
	}
	return c.Fabric.TransferSec(n)
}

// UnicastFanout sends n bytes to each destination separately (the rsync
// strategy §3.5 argues against): the source transmits N copies and
// serializes on its uplink.
func (c *Cluster) UnicastFanout(src *Node, dsts []*Node, n int64) float64 {
	src.Send(n * int64(len(dsts)))
	for _, d := range dsts {
		d.Recv(n)
	}
	return c.Fabric.TransferSec(n * int64(len(dsts)))
}

// Pipeline models a LANTorrent-style chain: src → d1 → d2 → …; every
// destination receives and (except the last) retransmits. Total time is
// one stream plus a per-hop latency epsilon, approximated here as the
// single-stream time (the chain streams concurrently).
func (c *Cluster) Pipeline(src *Node, dsts []*Node, n int64) float64 {
	src.Send(n)
	for i, d := range dsts {
		d.Recv(n)
		if i < len(dsts)-1 {
			d.Send(n)
		}
	}
	return c.Fabric.TransferSec(n)
}
