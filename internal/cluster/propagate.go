package cluster

import (
	"repro/internal/fault"
)

// Delivery is the per-destination outcome of a one-to-many stream
// transfer. Wire holds the bytes as the destination received them: the
// original slice when the transfer was clean, a mutated copy under
// Truncate/Corrupt, nil under Drop/Crash.
type Delivery struct {
	Node  *Node
	Wire  []byte
	Fault fault.Kind
}

// OK reports whether the destination received the stream intact.
func (d Delivery) OK() bool { return d.Fault == fault.None }

// deliveries applies the reachability map and the injector to each
// destination and accounts the bytes that actually arrived on its NIC.
// A destination across an open cut gets a Partition delivery — nothing
// reaches it and no injector draw is consumed (draws are keyed by
// (op, dst, attempt), so skipping one never shifts another node's
// verdict). A nil injector is a perfect network.
func (c *Cluster) deliveries(op string, src *Node, dsts []*Node, wire []byte, inj *fault.Injector) []Delivery {
	out := make([]Delivery, len(dsts))
	for i, d := range dsts {
		if !c.Reachable(src.ID, d.ID) {
			out[i] = Delivery{Node: d, Fault: fault.Partition}
			inj.Note(fault.Partition)
			continue
		}
		kind, got := inj.Strike(op, d.ID, 0, wire)
		out[i] = Delivery{Node: d, Wire: got, Fault: kind}
		if got != nil {
			d.Recv(int64(len(got)))
		}
	}
	return out
}

// MulticastStream is the fault-aware form of Multicast: the source
// transmits the wire stream once; each destination receives whatever the
// injector lets through. Returns per-destination deliveries and the
// fabric transfer duration.
func (c *Cluster) MulticastStream(op string, src *Node, dsts []*Node, wire []byte, inj *fault.Injector) ([]Delivery, float64) {
	n := int64(len(wire))
	src.Send(n)
	return c.deliveries(op, src, dsts, wire, inj), c.Fabric.TransferSec(n)
}

// UnicastStream is the fault-aware form of UnicastFanout: the source
// transmits one copy per destination and serializes on its uplink.
func (c *Cluster) UnicastStream(op string, src *Node, dsts []*Node, wire []byte, inj *fault.Injector) ([]Delivery, float64) {
	n := int64(len(wire))
	src.Send(n * int64(len(dsts)))
	return c.deliveries(op, src, dsts, wire, inj), c.Fabric.TransferSec(n * int64(len(dsts)))
}

// PipelineStream is the fault-aware form of Pipeline: src → d1 → d2 → …
// A destination that received any bytes (even truncated/corrupted ones)
// forwards what it got downstream; LANTorrent-style chains re-route
// around dead members, so a dropped or crashed hop does not starve the
// rest of the chain — its successors receive the stream from the last
// healthy predecessor, which is what the per-destination injector draw
// already models.
func (c *Cluster) PipelineStream(op string, src *Node, dsts []*Node, wire []byte, inj *fault.Injector) ([]Delivery, float64) {
	src.Send(int64(len(wire)))
	out := c.deliveries(op, src, dsts, wire, inj)
	for i, d := range out {
		if i < len(out)-1 && d.Wire != nil {
			d.Node.Send(int64(len(d.Wire)))
		}
	}
	return out, c.Fabric.TransferSec(int64(len(wire)))
}

// Unicast moves n bytes point-to-point from src to dst — the NACK-style
// repair channel the registration path falls back to when a replica
// missed the one-to-many stream.
func (c *Cluster) Unicast(src, dst *Node, n int64) float64 {
	src.Send(n)
	dst.Recv(n)
	return c.Fabric.TransferSec(n)
}
