package cluster

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
)

func partCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(GigE, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestReachabilitySemantics(t *testing.T) {
	c := partCluster(t)
	if c.Partitioned() {
		t.Fatal("fresh cluster reports an open cut")
	}
	if !c.Reachable("node00", "node07") || !c.Reachable("node00", "stor00") {
		t.Fatal("fully connected cluster reports unreachable pairs")
	}
	c.Partition([]string{"node01", "node03"})
	if !c.Partitioned() {
		t.Fatal("cut not reported open")
	}
	// Same side (both minority, both majority) stays connected.
	if !c.Reachable("node01", "node03") {
		t.Fatal("minority nodes cannot reach each other")
	}
	if !c.Reachable("node00", "node02") || !c.Reachable("node00", "stor00") {
		t.Fatal("majority side broke")
	}
	// Across the cut: nothing.
	if c.Reachable("node01", "node00") || c.Reachable("node03", "stor00") {
		t.Fatal("transfer crossed the open cut")
	}
	if !c.Unreachable("node01") || c.Unreachable("node00") {
		t.Fatal("Unreachable misclassifies sides")
	}
	// A node always reaches itself, cut or not.
	if !c.Reachable("node01", "node01") {
		t.Fatal("node cannot reach itself")
	}
	healed := c.Heal()
	if fmt.Sprint(healed) != "[node01 node03]" {
		t.Fatalf("Heal returned %v", healed)
	}
	if c.Partitioned() || !c.Reachable("node01", "stor00") {
		t.Fatal("heal did not restore connectivity")
	}
}

func TestStreamsAcrossCutDeliverPartitionFaults(t *testing.T) {
	c := partCluster(t)
	c.Partition([]string{"node02", "node05"})
	inj, err := fault.New(fault.Plan{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wire := make([]byte, 4096)
	deliv, _ := c.MulticastStream("op", c.Storage[0], c.Compute, wire, inj)
	for _, dv := range deliv {
		cutOff := dv.Node.ID == "node02" || dv.Node.ID == "node05"
		switch {
		case cutOff && dv.Fault != fault.Partition:
			t.Fatalf("%s across the cut got %v, want partition", dv.Node.ID, dv.Fault)
		case cutOff && (dv.Wire != nil || dv.Node.RxBytes() != 0):
			t.Fatalf("%s received bytes across the cut", dv.Node.ID)
		case !cutOff && (dv.Fault != fault.None || int64(len(dv.Wire)) != 4096):
			t.Fatalf("%s on the majority side got %v/%d bytes", dv.Node.ID, dv.Fault, len(dv.Wire))
		}
	}
	if got := inj.Counters().Get("fault.partition"); got != 2 {
		t.Fatalf("fault.partition = %d, want 2", got)
	}
	// The pipeline never forwards from a cut member.
	c.ResetCounters()
	deliv, _ = c.PipelineStream("op2", c.Storage[0], c.Compute, wire, inj)
	for _, dv := range deliv {
		if dv.Fault == fault.Partition && dv.Node.TxBytes() != 0 {
			t.Fatalf("cut node %s forwarded downstream", dv.Node.ID)
		}
	}
}

func TestPFSReadAcrossCutFails(t *testing.T) {
	c := partCluster(t)
	pfs, err := NewPFS(c, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	fill := func(b []byte, off int64) (int, error) {
		for i := range b {
			b[i] = byte(off) + byte(i)
		}
		return len(b), nil
	}
	if err := pfs.AddFile("img", 1<<20, fill); err != nil {
		t.Fatal(err)
	}
	client := c.Compute[3]
	buf := make([]byte, 64<<10)
	if _, err := pfs.ReadAt(client, "img", buf, 0); err != nil {
		t.Fatalf("connected read failed: %v", err)
	}
	c.Partition([]string{client.ID})
	rx := client.RxBytes()
	if _, err := pfs.ReadAt(client, "img", buf, 0); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cut read returned %v, want ErrUnreachable", err)
	}
	if client.RxBytes() != rx {
		t.Fatal("cut read still moved bytes")
	}
	c.Heal()
	if _, err := pfs.ReadAt(client, "img", buf, 0); err != nil {
		t.Fatalf("read after heal failed: %v", err)
	}
}
