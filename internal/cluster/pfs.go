package cluster

import (
	"fmt"
	"io"
	"sync"
)

// PFS is the gluster-like parallel file system the paper runs on its
// four storage nodes, configured with "two levels of striping and two
// levels of replication" (§4.4): files are striped across replica groups
// for random-access performance, and each stripe is replicated within
// its group for fault tolerance.
type PFS struct {
	cluster    *Cluster
	stripes    int   // replica groups data is striped over
	replicas   int   // copies per stripe
	stripeUnit int64 // bytes per stripe chunk

	mu    sync.RWMutex
	files map[string]*pfsFile
}

type pfsFile struct {
	name string
	size int64
	read func(p []byte, off int64) (int, error)
}

// DefaultStripeUnit is gluster's default stripe block size.
const DefaultStripeUnit = 128 * 1024

// NewPFS configures the parallel file system over the cluster's storage
// nodes. stripes×replicas must equal the storage node count (the paper's
// 2×2 over 4 nodes).
func NewPFS(c *Cluster, stripes, replicas int, stripeUnit int64) (*PFS, error) {
	if stripes < 1 || replicas < 1 {
		return nil, fmt.Errorf("cluster: stripes and replicas must be positive")
	}
	if stripes*replicas != len(c.Storage) {
		return nil, fmt.Errorf("cluster: %d stripes × %d replicas != %d storage nodes",
			stripes, replicas, len(c.Storage))
	}
	if stripeUnit <= 0 {
		stripeUnit = DefaultStripeUnit
	}
	return &PFS{
		cluster:    c,
		stripes:    stripes,
		replicas:   replicas,
		stripeUnit: stripeUnit,
		files:      make(map[string]*pfsFile),
	}, nil
}

// AddFile registers a file with the given size and a content function
// (for VMIs, a corpus generator; tests use synthetic fills).
func (p *PFS) AddFile(name string, size int64, read func(b []byte, off int64) (int, error)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.files[name]; dup {
		return fmt.Errorf("cluster: pfs file %s exists", name)
	}
	p.files[name] = &pfsFile{name: name, size: size, read: read}
	return nil
}

// Size returns a file's size.
func (p *PFS) Size(name string) (int64, error) {
	p.mu.RLock()
	f, ok := p.files[name]
	p.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("cluster: pfs file %s not found", name)
	}
	return f.size, nil
}

// serverFor picks the storage node serving a chunk of a file: chunks are
// striped over replica groups, and reads rotate over the replicas within
// the group.
func (p *PFS) serverFor(name string, chunk int64) *Node {
	h := int64(0)
	for i := 0; i < len(name); i++ {
		h = h*131 + int64(name[i])
	}
	group := int((h + chunk) % int64(p.stripes))
	if group < 0 {
		group += p.stripes
	}
	// Rotate replicas on a stride decorrelated from the group choice so
	// all nodes of a group take read load.
	replica := int(((chunk / int64(p.stripes)) + h) % int64(p.replicas))
	if replica < 0 {
		replica += p.replicas
	}
	return p.cluster.Storage[group*p.replicas+replica]
}

// ReadAt serves a read issued by compute node client, accounting NIC
// traffic on both ends. Returns bytes read.
//
// The file-table lock covers only the handle lookup: chunk routing,
// content generation, and NIC accounting all run outside it (pfsFile is
// immutable after AddFile and Node counters are atomic), so concurrent
// boots streaming from the PFS never serialize on this mutex.
func (p *PFS) ReadAt(client *Node, name string, buf []byte, off int64) (int, error) {
	p.mu.RLock()
	f, ok := p.files[name]
	p.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("cluster: pfs file %s not found", name)
	}
	if off < 0 {
		return 0, fmt.Errorf("cluster: negative offset")
	}
	total := 0
	for len(buf) > 0 && off < f.size {
		chunk := off / p.stripeUnit
		n := int64(len(buf))
		if rem := (chunk+1)*p.stripeUnit - off; n > rem {
			n = rem
		}
		if rem := f.size - off; n > rem {
			n = rem
		}
		server := p.serverFor(name, chunk)
		if !p.cluster.Reachable(client.ID, server.ID) {
			// The client is stranded across an open cut from the storage
			// side; nothing read so far is un-read, the rest fails.
			return total, fmt.Errorf("cluster: pfs read %s on %s: %w", name, client.ID, ErrUnreachable)
		}
		read, err := f.read(buf[:n], off)
		if err != nil && err != io.EOF {
			return total, err
		}
		if read == 0 {
			break
		}
		server.Send(int64(read))
		client.Recv(int64(read))
		buf = buf[read:]
		off += int64(read)
		total += read
	}
	if len(buf) > 0 {
		return total, io.EOF
	}
	return total, nil
}
