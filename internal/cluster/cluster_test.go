package cluster

import (
	"io"
	"testing"
)

func mkCluster(t *testing.T, storage, compute int) *Cluster {
	t.Helper()
	c, err := New(GigE, storage, compute)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(GigE, 0, 4); err == nil {
		t.Fatal("zero storage nodes must fail")
	}
	if _, err := New(GigE, 4, 0); err == nil {
		t.Fatal("zero compute nodes must fail")
	}
}

func TestMulticastAccounting(t *testing.T) {
	c := mkCluster(t, 1, 8)
	sec := c.Multicast(c.Storage[0], c.Compute, 1000)
	if c.Storage[0].TxBytes() != 1000 {
		t.Fatalf("multicast source tx %d, want 1000", c.Storage[0].TxBytes())
	}
	for _, n := range c.Compute {
		if n.RxBytes() != 1000 {
			t.Fatalf("%s rx %d", n.ID, n.RxBytes())
		}
	}
	if sec <= 0 {
		t.Fatal("no transfer time")
	}
}

func TestUnicastFanoutCostsMore(t *testing.T) {
	c := mkCluster(t, 1, 8)
	mSec := c.Multicast(c.Storage[0], c.Compute, 1<<20)
	c.ResetCounters()
	uSec := c.UnicastFanout(c.Storage[0], c.Compute, 1<<20)
	if c.Storage[0].TxBytes() != 8<<20 {
		t.Fatalf("fanout tx %d, want 8 MB", c.Storage[0].TxBytes())
	}
	if uSec <= mSec {
		t.Fatal("unicast fan-out should be slower than multicast")
	}
}

func TestPipelineAccounting(t *testing.T) {
	c := mkCluster(t, 1, 4)
	c.Pipeline(c.Storage[0], c.Compute, 500)
	for i, n := range c.Compute {
		if n.RxBytes() != 500 {
			t.Fatalf("node %d rx %d", i, n.RxBytes())
		}
		wantTx := int64(500)
		if i == len(c.Compute)-1 {
			wantTx = 0
		}
		if n.TxBytes() != wantTx {
			t.Fatalf("node %d tx %d want %d", i, n.TxBytes(), wantTx)
		}
	}
}

func TestComputeRxTotalAndReset(t *testing.T) {
	c := mkCluster(t, 1, 3)
	c.Multicast(c.Storage[0], c.Compute, 100)
	if c.ComputeRxTotal() != 300 {
		t.Fatalf("total %d", c.ComputeRxTotal())
	}
	c.ResetCounters()
	if c.ComputeRxTotal() != 0 || c.Storage[0].TxBytes() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestFabricTransferSec(t *testing.T) {
	if GigE.TransferSec(110e6) < 0.99 {
		t.Fatal("1GbE should move ~110MB/s")
	}
	if QDR.TransferSec(1e9) >= GigE.TransferSec(1e9) {
		t.Fatal("IB must be faster than GbE")
	}
}

// fillPattern produces deterministic content: byte at offset o is o%251.
func fillPattern(p []byte, off int64) (int, error) {
	for i := range p {
		p[i] = byte((off + int64(i)) % 251)
	}
	return len(p), nil
}

func TestPFSValidation(t *testing.T) {
	c := mkCluster(t, 4, 2)
	if _, err := NewPFS(c, 3, 2, 0); err == nil {
		t.Fatal("3×2 over 4 nodes must fail")
	}
	if _, err := NewPFS(c, 0, 1, 0); err == nil {
		t.Fatal("zero stripes must fail")
	}
	if _, err := NewPFS(c, 2, 2, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPFSReadContentAndAccounting(t *testing.T) {
	c := mkCluster(t, 4, 2)
	pfs, _ := NewPFS(c, 2, 2, 1024)
	const size = 10 * 1024
	if err := pfs.AddFile("img", size, fillPattern); err != nil {
		t.Fatal(err)
	}
	if err := pfs.AddFile("img", size, fillPattern); err == nil {
		t.Fatal("duplicate file must fail")
	}
	buf := make([]byte, 5000)
	n, err := pfs.ReadAt(c.Compute[0], "img", buf, 3000)
	if err != nil || n != 5000 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	for i := range buf {
		if buf[i] != byte((3000+int64(i))%251) {
			t.Fatalf("content mismatch at %d", i)
		}
	}
	if c.Compute[0].RxBytes() != 5000 {
		t.Fatalf("client rx %d", c.Compute[0].RxBytes())
	}
	var served int64
	servers := 0
	for _, s := range c.Storage {
		served += s.TxBytes()
		if s.TxBytes() > 0 {
			servers++
		}
	}
	if served != 5000 {
		t.Fatalf("storage tx %d", served)
	}
	if servers < 2 {
		t.Fatalf("read spread over %d servers; striping ineffective", servers)
	}
}

func TestPFSReadPastEnd(t *testing.T) {
	c := mkCluster(t, 4, 1)
	pfs, _ := NewPFS(c, 2, 2, 1024)
	pfs.AddFile("f", 100, fillPattern)
	buf := make([]byte, 200)
	n, err := pfs.ReadAt(c.Compute[0], "f", buf, 0)
	if n != 100 || err != io.EOF {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, err := pfs.ReadAt(c.Compute[0], "ghost", buf, 0); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := pfs.Size("ghost"); err == nil {
		t.Fatal("missing size must error")
	}
	if sz, _ := pfs.Size("f"); sz != 100 {
		t.Fatalf("size %d", sz)
	}
}

func TestPFSLoadBalancing(t *testing.T) {
	// Sequential reads of a large file must touch all four storage nodes
	// (two stripe groups × two replicas).
	c := mkCluster(t, 4, 1)
	pfs, _ := NewPFS(c, 2, 2, 1024)
	pfs.AddFile("big", 64*1024, fillPattern)
	buf := make([]byte, 64*1024)
	pfs.ReadAt(c.Compute[0], "big", buf, 0)
	for _, s := range c.Storage {
		if s.TxBytes() == 0 {
			t.Fatalf("storage node %s served nothing", s.ID)
		}
	}
}
