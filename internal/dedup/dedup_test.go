package dedup

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/block"
)

func h(b byte) block.Hash {
	return block.HashOf([]byte{b})
}

func TestReferenceNewAndDup(t *testing.T) {
	tab := NewTable()
	e, dup := tab.Reference(h(1), 100, 10, 20, true, block.Hash{})
	if dup {
		t.Fatal("first reference must not be a dup")
	}
	if e.Refs != 1 || e.Addr != 100 {
		t.Fatalf("bad entry %+v", e)
	}
	e2, dup := tab.Reference(h(1), 999, 99, 99, false, block.Hash{})
	if !dup {
		t.Fatal("second reference must dedup")
	}
	if e2 != e || e2.Refs != 2 || e2.Addr != 100 {
		t.Fatalf("dup must return original entry, got %+v", e2)
	}
}

func TestReleaseLifecycle(t *testing.T) {
	tab := NewTable()
	tab.Reference(h(1), 0, 8, 8, false, block.Hash{})
	tab.Reference(h(1), 0, 8, 8, false, block.Hash{})
	if _, freed, err := tab.Release(h(1)); err != nil || freed {
		t.Fatalf("first release: freed=%v err=%v", freed, err)
	}
	e, freed, err := tab.Release(h(1))
	if err != nil || !freed {
		t.Fatalf("last release must free: freed=%v err=%v", freed, err)
	}
	if e.Hash != h(1) {
		t.Fatal("freed entry mismatch")
	}
	if tab.Len() != 0 {
		t.Fatal("table should be empty")
	}
	if _, _, err := tab.Release(h(1)); err == nil {
		t.Fatal("releasing unknown hash must error")
	}
}

func TestAddRefUnknown(t *testing.T) {
	tab := NewTable()
	if err := tab.AddRef(h(7)); err == nil {
		t.Fatal("AddRef on unknown hash must error")
	}
	tab.Reference(h(7), 0, 1, 1, false, block.Hash{})
	if err := tab.AddRef(h(7)); err != nil {
		t.Fatal(err)
	}
	if tab.Lookup(h(7)).Refs != 2 {
		t.Fatal("AddRef did not bump")
	}
}

func TestStatsAccounting(t *testing.T) {
	tab := NewTable()
	tab.Reference(h(1), 0, 10, 64, true, block.Hash{})  // unique
	tab.Reference(h(2), 10, 20, 64, true, block.Hash{}) // unique
	tab.Reference(h(1), 0, 10, 64, true, block.Hash{})  // dup
	s := tab.Stats()
	if s.Entries != 2 || s.References != 3 {
		t.Fatalf("entries=%d refs=%d", s.Entries, s.References)
	}
	if s.PhysicalBytes != 30 {
		t.Fatalf("physical=%d want 30", s.PhysicalBytes)
	}
	if s.LogicalBytes != 64*3 {
		t.Fatalf("logical=%d want 192", s.LogicalBytes)
	}
	if s.DiskBytes != 2*DiskBytesPerEntry || s.MemBytes != 2*MemBytesPerEntry {
		t.Fatalf("footprints wrong: %+v", s)
	}
	if got := s.DedupRatio(); got != 1.5 {
		t.Fatalf("dedup ratio %v want 1.5", got)
	}
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", s.Hits, s.Misses)
	}
}

func TestDedupRatioEmpty(t *testing.T) {
	if r := (Stats{}).DedupRatio(); r != 1 {
		t.Fatalf("empty ratio %v want 1", r)
	}
}

func TestRefcountInvariantQuick(t *testing.T) {
	// Property: after any sequence of references and releases over a small
	// hash universe, live entries == hashes with more refs than releases,
	// and total references match.
	f := func(ops []byte) bool {
		tab := NewTable()
		refs := map[byte]int64{}
		for _, op := range ops {
			key := op & 0x0F
			if op&0x10 == 0 || refs[key] == 0 {
				tab.Reference(h(key), uint64(key), 4, 8, false, block.Hash{})
				refs[key]++
			} else {
				if _, _, err := tab.Release(h(key)); err != nil {
					return false
				}
				refs[key]--
			}
		}
		var live, total int64
		for _, r := range refs {
			if r > 0 {
				live++
				total += r
			}
		}
		s := tab.Stats()
		return s.Entries == live && s.References == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReferences(t *testing.T) {
	tab := NewTable()
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				tab.Reference(h(byte(rng.Intn(32))), 0, 4, 8, false, block.Hash{})
			}
		}(int64(g))
	}
	wg.Wait()
	s := tab.Stats()
	if s.References != goroutines*perG {
		t.Fatalf("references %d want %d", s.References, goroutines*perG)
	}
	if s.Entries > 32 {
		t.Fatalf("entries %d exceed universe", s.Entries)
	}
}

func TestForEach(t *testing.T) {
	tab := NewTable()
	for i := byte(0); i < 10; i++ {
		tab.Reference(h(i), uint64(i), 4, 8, false, block.Hash{})
	}
	n := 0
	tab.ForEach(func(e *Entry) { n++ })
	if n != 10 {
		t.Fatalf("visited %d want 10", n)
	}
}

func BenchmarkReferenceMiss(b *testing.B) {
	tab := NewTable()
	var buf [8]byte
	for i := 0; i < b.N; i++ {
		buf[0], buf[1], buf[2], buf[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		tab.Reference(block.HashOf(buf[:]), uint64(i), 4, 8, false, block.Hash{})
	}
}

func BenchmarkReferenceHit(b *testing.B) {
	tab := NewTable()
	hh := h(1)
	tab.Reference(hh, 0, 4, 8, false, block.Hash{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Reference(hh, 0, 4, 8, false, block.Hash{})
	}
}
