// Package dedup implements the refcounted deduplication table (DDT) at the
// heart of Squirrel's cVolumes. It mirrors the structure of the ZFS DDT:
// one entry per unique block keyed by content hash, holding a reference
// count, the physical location of the single stored copy, and size
// accounting.
//
// The paper measures two costs of the DDT that grow as block size shrinks:
// its on-disk footprint (Fig 9) and its in-core footprint (Fig 10). Both
// are modelled here with per-entry constants calibrated against the
// paper's own measurements of the ZFS DDT on DAS-4 (≈112 B/entry on disk,
// ≈55 B/entry of dedicated memory — Figs 9 and 10 divided by the unique
// block counts of the dataset).
package dedup

import (
	"fmt"
	"sync"

	"repro/internal/block"
)

// Per-entry footprint of the DDT, calibrated to the paper's ZFS
// measurements (see package comment).
const (
	DiskBytesPerEntry = 112
	MemBytesPerEntry  = 55
)

// Entry is one unique block in the table.
type Entry struct {
	Hash       block.Hash
	Refs       int64  // number of logical references (objects + snapshots)
	Addr       uint64 // physical address in the backing store
	PhysLen    int32  // stored (possibly compressed) length
	LogLen     int32  // original length
	Compressed bool   // whether the payload at Addr is compressed
	PhysHash   block.Hash // checksum of the stored payload bytes at Addr
}

// Table is a thread-safe refcounted DDT.
type Table struct {
	mu      sync.RWMutex
	entries map[block.Hash]*Entry

	hits   int64 // lookups that found an existing entry
	misses int64 // lookups that allocated a new entry
}

// NewTable returns an empty DDT.
func NewTable() *Table {
	return &Table{entries: make(map[block.Hash]*Entry)}
}

// Lookup returns the entry for h without changing refcounts, or nil.
func (t *Table) Lookup(h block.Hash) *Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.entries[h]
}

// Reference records one more logical reference to h. If the block is
// already present its refcount is bumped and (entry, true) is returned;
// the caller must not store a new copy. Otherwise a new entry with one
// reference is created from the provided location and (entry, false) is
// returned.
func (t *Table) Reference(h block.Hash, addr uint64, physLen, logLen int32, compressed bool, physHash block.Hash) (*Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[h]; ok {
		e.Refs++
		t.hits++
		return e, true
	}
	e := &Entry{Hash: h, Refs: 1, Addr: addr, PhysLen: physLen, LogLen: logLen,
		Compressed: compressed, PhysHash: physHash}
	t.entries[h] = e
	t.misses++
	return e, false
}

// AddRef bumps the refcount of an existing entry. It returns an error if
// the hash is unknown, which would indicate refcount corruption upstream.
func (t *Table) AddRef(h block.Hash) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[h]
	if !ok {
		return fmt.Errorf("dedup: AddRef on unknown hash %v", h)
	}
	e.Refs++
	return nil
}

// Release drops one reference to h. When the last reference is gone the
// entry is removed and (entry, true) is returned so the caller can free
// the physical block. Releasing an unknown hash is an error.
func (t *Table) Release(h block.Hash) (*Entry, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[h]
	if !ok {
		return nil, false, fmt.Errorf("dedup: Release on unknown hash %v", h)
	}
	e.Refs--
	if e.Refs < 0 {
		return nil, false, fmt.Errorf("dedup: negative refcount for %v", h)
	}
	if e.Refs == 0 {
		delete(t.entries, h)
		return e, true, nil
	}
	return e, false, nil
}

// Stats is a consistent snapshot of the table's accounting.
type Stats struct {
	Entries       int64 // unique blocks
	References    int64 // total logical references
	PhysicalBytes int64 // Σ stored payload sizes (one copy per entry)
	LogicalBytes  int64 // Σ LogLen × Refs: data as seen by readers
	DiskBytes     int64 // DDT on-disk footprint (Fig 9)
	MemBytes      int64 // DDT in-core footprint (Fig 10)
	Hits, Misses  int64
}

// DedupRatio is |references| / |unique|, the paper's deduplication ratio
// restricted to nonzero blocks (zero blocks never enter the table).
func (s Stats) DedupRatio() float64 {
	if s.Entries == 0 {
		return 1
	}
	return float64(s.References) / float64(s.Entries)
}

// Stats computes current table statistics. O(entries).
func (t *Table) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Stats{Hits: t.hits, Misses: t.misses}
	for _, e := range t.entries {
		s.Entries++
		s.References += e.Refs
		s.PhysicalBytes += int64(e.PhysLen)
		s.LogicalBytes += int64(e.LogLen) * e.Refs
	}
	s.DiskBytes = s.Entries * DiskBytesPerEntry
	s.MemBytes = s.Entries * MemBytesPerEntry
	return s
}

// Len returns the number of unique entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// ForEach calls fn for every entry while holding the read lock; fn must
// not call back into the table.
func (t *Table) ForEach(fn func(*Entry)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, e := range t.entries {
		fn(e)
	}
}
