// Package compress provides the block codecs the paper evaluates for
// cVolumes (Fig 3): gzip at levels 6 and 9 (via the standard library), and
// from-scratch implementations of the two fast codecs shipped with ZFS,
// LZJB and LZ4. A null codec is included for ablations.
//
// All codecs are deterministic, safe for concurrent use, and round-trip
// exact; properties the test suite checks exhaustively.
package compress

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Codec compresses and decompresses single blocks. Compress returns a
// fresh slice; Decompress must reproduce the original block exactly.
// maxLen is an upper bound on the decompressed size (callers know the
// block size), letting codecs allocate once and detect corruption.
type Codec interface {
	// Name is the registry key ("gzip6", "lz4", ...), matching the labels
	// the paper uses in Fig 3.
	Name() string
	Compress(src []byte) []byte
	Decompress(src []byte, maxLen int) ([]byte, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Codec{}
)

// Register adds a codec to the global registry. It panics on duplicate
// names, which would indicate a programming error.
func Register(c Codec) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[c.Name()]; dup {
		panic("compress: duplicate codec " + c.Name())
	}
	registry[c.Name()] = c
}

// Get returns the codec registered under name.
func Get(name string) (Codec, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
	return c, nil
}

// MustGet is Get for statically known names; it panics on failure.
func MustGet(name string) Codec {
	c, err := Get(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Names lists the registered codecs in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(Null{})
	Register(NewGzip("gzip6", 6))
	Register(NewGzip("gzip9", 9))
	Register(LZJB{})
	Register(LZ4{})
}

// Null is the identity codec, used for "compression off" ablations and as
// the qcow2-on-XFS baseline configuration.
type Null struct{}

// Name implements Codec.
func (Null) Name() string { return "null" }

// Compress returns a copy of src.
func (Null) Compress(src []byte) []byte {
	out := make([]byte, len(src))
	copy(out, src)
	return out
}

// Decompress returns a copy of src.
func (Null) Decompress(src []byte, maxLen int) ([]byte, error) {
	if len(src) > maxLen {
		return nil, fmt.Errorf("compress: null payload %d exceeds max %d", len(src), maxLen)
	}
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// Gzip wraps compress/gzip at a fixed level. ZFS's gzip-6 is the paper's
// codec of choice after Fig 3 shows gzip-9 gains almost nothing for extra
// CPU. Writers are pooled: gzip writer allocation is far more expensive
// than the window reset.
type Gzip struct {
	name    string
	level   int
	writers sync.Pool
}

// NewGzip returns a gzip codec at the given level registered under name.
func NewGzip(name string, level int) *Gzip {
	g := &Gzip{name: name, level: level}
	g.writers.New = func() any {
		w, err := gzip.NewWriterLevel(io.Discard, level)
		if err != nil {
			panic(err) // level is static and valid
		}
		return w
	}
	return g
}

// Name implements Codec.
func (g *Gzip) Name() string { return g.name }

// Compress implements Codec.
func (g *Gzip) Compress(src []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(src)/2 + 64)
	w := g.writers.Get().(*gzip.Writer)
	w.Reset(&buf)
	if _, err := w.Write(src); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	g.writers.Put(w)
	return buf.Bytes()
}

// Decompress implements Codec.
func (g *Gzip) Decompress(src []byte, maxLen int) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, fmt.Errorf("compress: gzip header: %w", err)
	}
	defer r.Close()
	out := make([]byte, 0, maxLen)
	buf := bytes.NewBuffer(out)
	if _, err := io.Copy(buf, io.LimitReader(r, int64(maxLen)+1)); err != nil {
		return nil, fmt.Errorf("compress: gzip body: %w", err)
	}
	if buf.Len() > maxLen {
		return nil, fmt.Errorf("compress: gzip output %d exceeds max %d", buf.Len(), maxLen)
	}
	return buf.Bytes(), nil
}
