package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// LZ4 is a from-scratch Go implementation of the LZ4 block format, the
// second fast codec ZFS offers and one of the four routines the paper
// compares in Fig 3. The block format is a sequence of "sequences":
//
//	token (1B: high nibble = literal count, low nibble = match length-4)
//	[literal count extension bytes, 255 each]
//	literals
//	offset (2B little-endian, backward distance 1..65535)
//	[match length extension bytes, 255 each]
//
// The final sequence carries only literals (no offset). The compressor
// uses a 4-byte hash table with one candidate per bucket, greedy matching,
// and obeys the format's end-of-block restrictions (last 5 bytes literal,
// no match starting within the last 12 bytes).
type LZ4 struct{}

const (
	lz4MinMatch     = 4
	lz4HashLog      = 13
	lz4LastLiterals = 5
	lz4MFLimit      = 12
)

// Name implements Codec.
func (LZ4) Name() string { return "lz4" }

func lz4Hash(v uint32) int {
	return int((v * 2654435761) >> (32 - lz4HashLog))
}

func lz4WriteLen(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// Compress implements Codec.
func (LZ4) Compress(src []byte) []byte {
	dst := make([]byte, 0, len(src)+len(src)/16+16)
	n := len(src)
	if n == 0 {
		return dst
	}
	var table [1 << lz4HashLog]int // position + 1; 0 = empty
	anchor := 0                    // first literal not yet emitted
	s := 0
	limit := n - lz4MFLimit
	for s < limit {
		v := binary.LittleEndian.Uint32(src[s:])
		h := lz4Hash(v)
		cand := table[h] - 1
		table[h] = s + 1
		if cand < 0 || s-cand > 65535 ||
			binary.LittleEndian.Uint32(src[cand:]) != v {
			s++
			continue
		}
		// Extend match forward; it must end at least lz4LastLiterals
		// before the end of the block.
		matchLimit := n - lz4LastLiterals
		mlen := lz4MinMatch
		for s+mlen < matchLimit && src[cand+mlen] == src[s+mlen] {
			mlen++
		}
		litLen := s - anchor
		// Token.
		tok := byte(0)
		if litLen >= 15 {
			tok = 15 << 4
		} else {
			tok = byte(litLen) << 4
		}
		mExtra := mlen - lz4MinMatch
		if mExtra >= 15 {
			tok |= 15
		} else {
			tok |= byte(mExtra)
		}
		dst = append(dst, tok)
		if litLen >= 15 {
			dst = lz4WriteLen(dst, litLen-15)
		}
		dst = append(dst, src[anchor:s]...)
		dst = append(dst, byte(s-cand), byte((s-cand)>>8))
		if mExtra >= 15 {
			dst = lz4WriteLen(dst, mExtra-15)
		}
		s += mlen
		anchor = s
	}
	// Trailing literals.
	litLen := n - anchor
	tok := byte(0)
	if litLen >= 15 {
		tok = 15 << 4
	} else {
		tok = byte(litLen) << 4
	}
	dst = append(dst, tok)
	if litLen >= 15 {
		dst = lz4WriteLen(dst, litLen-15)
	}
	dst = append(dst, src[anchor:]...)
	return dst
}

var errLZ4Corrupt = errors.New("compress: corrupt lz4 stream")

// Decompress implements Codec.
func (LZ4) Decompress(src []byte, maxLen int) ([]byte, error) {
	dst := make([]byte, 0, maxLen)
	i := 0
	for i < len(src) {
		tok := src[i]
		i++
		// Literals.
		litLen := int(tok >> 4)
		if litLen == 15 {
			for {
				if i >= len(src) {
					return nil, errLZ4Corrupt
				}
				b := src[i]
				i++
				litLen += int(b)
				if b != 255 {
					break
				}
			}
		}
		if i+litLen > len(src) || len(dst)+litLen > maxLen {
			return nil, errLZ4Corrupt
		}
		dst = append(dst, src[i:i+litLen]...)
		i += litLen
		if i >= len(src) {
			break // final sequence has no match part
		}
		// Match.
		if i+2 > len(src) {
			return nil, errLZ4Corrupt
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		if offset == 0 || offset > len(dst) {
			return nil, errLZ4Corrupt
		}
		mlen := int(tok&0xF) + lz4MinMatch
		if tok&0xF == 15 {
			for {
				if i >= len(src) {
					return nil, errLZ4Corrupt
				}
				b := src[i]
				i++
				mlen += int(b)
				if b != 255 {
					break
				}
			}
		}
		if len(dst)+mlen > maxLen {
			return nil, fmt.Errorf("compress: lz4 output exceeds max %d", maxLen)
		}
		start := len(dst) - offset
		for k := 0; k < mlen; k++ {
			dst = append(dst, dst[start+k])
		}
	}
	return dst, nil
}
