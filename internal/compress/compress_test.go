package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// allCodecs returns every registered codec.
func allCodecs(t testing.TB) []Codec {
	t.Helper()
	var out []Codec
	for _, n := range Names() {
		out = append(out, MustGet(n))
	}
	if len(out) < 5 {
		t.Fatalf("expected at least 5 codecs, got %v", Names())
	}
	return out
}

// sampleInputs produces a spread of payloads: empty, tiny, zeros,
// text-like (highly compressible), random (incompressible), and repeated
// patterns (LZ-friendly).
func sampleInputs() map[string][]byte {
	rng := rand.New(rand.NewSource(42))
	random := make([]byte, 64*1024)
	rng.Read(random)
	text := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 1500))
	pattern := bytes.Repeat([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}, 11000)
	mixed := make([]byte, 0, 96*1024)
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			mixed = append(mixed, text[:4096]...)
		} else {
			mixed = append(mixed, random[i*4096:(i+1)*4096]...)
		}
	}
	return map[string][]byte{
		"empty":   {},
		"one":     {0x7F},
		"two":     {0, 0},
		"zeros":   make([]byte, 64*1024),
		"text":    text[:64*1024],
		"random":  random,
		"pattern": pattern[:64*1024],
		"mixed":   mixed,
		"short":   []byte("abcabcabcabcabc"),
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	for _, c := range allCodecs(t) {
		for name, in := range sampleInputs() {
			comp := c.Compress(in)
			out, err := c.Decompress(comp, len(in))
			if err != nil {
				t.Fatalf("%s/%s: decompress: %v", c.Name(), name, err)
			}
			if !bytes.Equal(out, in) {
				t.Fatalf("%s/%s: round trip mismatch (in %d, out %d)",
					c.Name(), name, len(in), len(out))
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	// Property: every codec round-trips arbitrary byte slices.
	for _, c := range allCodecs(t) {
		c := c
		f := func(in []byte) bool {
			comp := c.Compress(in)
			out, err := c.Decompress(comp, len(in))
			return err == nil && bytes.Equal(out, in)
		}
		cfg := &quick.Config{MaxCount: 200}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestRoundTripStructuredQuick(t *testing.T) {
	// Property: round trip on LZ-hostile and LZ-friendly structured data:
	// runs of repeated chunks with random edits.
	rng := rand.New(rand.NewSource(99))
	for _, c := range allCodecs(t) {
		for trial := 0; trial < 30; trial++ {
			chunk := make([]byte, 1+rng.Intn(300))
			rng.Read(chunk)
			reps := 1 + rng.Intn(50)
			in := bytes.Repeat(chunk, reps)
			for e := 0; e < rng.Intn(10); e++ {
				in[rng.Intn(len(in))] ^= 0xFF
			}
			comp := c.Compress(in)
			out, err := c.Decompress(comp, len(in))
			if err != nil || !bytes.Equal(out, in) {
				t.Fatalf("%s trial %d: round trip failed (err %v)", c.Name(), trial, err)
			}
		}
	}
}

func TestCompressibleDataShrinks(t *testing.T) {
	in := sampleInputs()["text"]
	for _, name := range []string{"gzip6", "gzip9", "lzjb", "lz4"} {
		c := MustGet(name)
		comp := c.Compress(in)
		if len(comp) >= len(in) {
			t.Errorf("%s: text did not shrink: %d >= %d", name, len(comp), len(in))
		}
	}
}

func TestZerosShrinkDramatically(t *testing.T) {
	in := make([]byte, 128*1024)
	for _, name := range []string{"gzip6", "gzip9", "lzjb", "lz4"} {
		c := MustGet(name)
		comp := c.Compress(in)
		if len(comp) > len(in)/20 {
			t.Errorf("%s: zeros compressed only to %d bytes", name, len(comp))
		}
	}
}

func TestCodecOrderingMatchesPaper(t *testing.T) {
	// Fig 3: gzip9 >= gzip6 > lz4, lzjb on compressible content.
	in := sampleInputs()["text"]
	size := func(n string) int { return len(MustGet(n).Compress(in)) }
	g6, g9, l4, lj := size("gzip6"), size("gzip9"), size("lz4"), size("lzjb")
	if g9 > g6+g6/50 {
		t.Errorf("gzip9 (%d) should compress at least as well as gzip6 (%d)", g9, g6)
	}
	if g6 >= l4 || g6 >= lj {
		t.Errorf("gzip6 (%d) should beat lz4 (%d) and lzjb (%d)", g6, l4, lj)
	}
}

func TestDecompressCorruptInput(t *testing.T) {
	// Corrupt streams must error or produce bounded output — never panic
	// or overrun maxLen.
	rng := rand.New(rand.NewSource(5))
	in := make([]byte, 4096)
	rng.Read(in)
	for _, c := range allCodecs(t) {
		comp := c.Compress(in)
		for trial := 0; trial < 200; trial++ {
			mut := make([]byte, len(comp))
			copy(mut, comp)
			for k := 0; k <= rng.Intn(4); k++ {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			}
			out, err := c.Decompress(mut, len(in))
			if err == nil && len(out) > len(in) {
				t.Fatalf("%s: corrupt stream produced %d > maxLen %d", c.Name(), len(out), len(in))
			}
		}
	}
}

func TestDecompressTruncatedInput(t *testing.T) {
	in := bytes.Repeat([]byte("squirrel hoards "), 512)
	for _, c := range allCodecs(t) {
		comp := c.Compress(in)
		for cut := 0; cut < len(comp); cut += 17 {
			out, err := c.Decompress(comp[:cut], len(in))
			if err == nil && len(out) > len(in) {
				t.Fatalf("%s: truncated stream overran maxLen", c.Name())
			}
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("zstd"); err == nil {
		t.Fatal("expected error for unknown codec")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	Register(Null{})
}

func TestNullIsIdentity(t *testing.T) {
	in := []byte("unchanged")
	c := MustGet("null")
	comp := c.Compress(in)
	if !bytes.Equal(comp, in) {
		t.Fatal("null codec must be identity")
	}
	comp[0] = 'X' // must not alias the input
	if in[0] == 'X' {
		t.Fatal("null codec must copy, not alias")
	}
}

func TestConcurrentUse(t *testing.T) {
	in := sampleInputs()["mixed"]
	for _, c := range allCodecs(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			t.Parallel()
			done := make(chan error, 8)
			for g := 0; g < 8; g++ {
				go func() {
					for i := 0; i < 20; i++ {
						out, err := c.Decompress(c.Compress(in), len(in))
						if err != nil || !bytes.Equal(out, in) {
							done <- err
							return
						}
					}
					done <- nil
				}()
			}
			for g := 0; g < 8; g++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func benchCompress(b *testing.B, name string) {
	c := MustGet(name)
	in := sampleInputs()["mixed"][:64*1024]
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(in)
	}
}

func benchDecompress(b *testing.B, name string) {
	c := MustGet(name)
	in := sampleInputs()["mixed"][:64*1024]
	comp := c.Compress(in)
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(comp, len(in)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressGzip6(b *testing.B)   { benchCompress(b, "gzip6") }
func BenchmarkCompressGzip9(b *testing.B)   { benchCompress(b, "gzip9") }
func BenchmarkCompressLZJB(b *testing.B)    { benchCompress(b, "lzjb") }
func BenchmarkCompressLZ4(b *testing.B)     { benchCompress(b, "lz4") }
func BenchmarkDecompressGzip6(b *testing.B) { benchDecompress(b, "gzip6") }
func BenchmarkDecompressLZJB(b *testing.B)  { benchDecompress(b, "lzjb") }
func BenchmarkDecompressLZ4(b *testing.B)   { benchDecompress(b, "lz4") }
