package compress

import (
	"errors"
	"fmt"
)

// LZJB is a from-scratch Go implementation of the LZJB compression scheme
// used by ZFS (Jeff Bonwick's variant of Lempel-Ziv). It is a byte-oriented
// LZ77 with:
//
//   - a control byte preceding every group of up to 8 items, one bit per
//     item (0 = literal byte, 1 = match);
//   - matches encoded in two bytes: 6 bits of (length - 3) and 10 bits of
//     backward offset, giving lengths 3..66 within a 1 KB window;
//   - a 1024-entry hash table over 3-byte sequences to find match
//     candidates (one candidate per bucket, no chaining), which is what
//     makes LZJB fast but weaker than gzip — exactly the trade-off Fig 3
//     of the paper shows.
type LZJB struct{}

const (
	lzjbMatchBits = 6
	lzjbMatchMin  = 3
	lzjbMatchMax  = (1 << lzjbMatchBits) + (lzjbMatchMin - 1) // 66
	lzjbOffsetMax = 1<<(16-lzjbMatchBits) - 1                 // 1023
	lzjbHashSize  = 1 << 10
)

// Name implements Codec.
func (LZJB) Name() string { return "lzjb" }

func lzjbHash(a, b, c byte) int {
	h := uint32(a)<<16 | uint32(b)<<8 | uint32(c)
	h = (h * 2654435761) >> 22
	return int(h) & (lzjbHashSize - 1)
}

// Compress implements Codec.
func (LZJB) Compress(src []byte) []byte {
	var table [lzjbHashSize]int // candidate position + 1; 0 = empty
	dst := make([]byte, 0, len(src)+len(src)/8+1)

	var ctrlPos int  // index of the pending control byte in dst
	var ctrlBit uint // next bit to assign within the control byte
	s := 0
	for s < len(src) {
		if ctrlBit == 0 {
			ctrlPos = len(dst)
			dst = append(dst, 0)
		}
		matched := false
		if s+lzjbMatchMin <= len(src) {
			h := lzjbHash(src[s], src[s+1], src[s+2])
			cand := table[h] - 1
			table[h] = s + 1
			if cand >= 0 && s-cand <= lzjbOffsetMax && cand < s {
				// Extend the match as far as it goes.
				length := 0
				max := len(src) - s
				if max > lzjbMatchMax {
					max = lzjbMatchMax
				}
				for length < max && src[cand+length] == src[s+length] {
					length++
				}
				if length >= lzjbMatchMin {
					offset := s - cand
					dst[ctrlPos] |= 1 << ctrlBit
					dst = append(dst,
						byte((length-lzjbMatchMin)<<(8-lzjbMatchBits))|byte(offset>>8),
						byte(offset))
					s += length
					matched = true
				}
			}
		}
		if !matched {
			dst = append(dst, src[s])
			s++
		}
		ctrlBit = (ctrlBit + 1) & 7
	}
	return dst
}

var errLZJBCorrupt = errors.New("compress: corrupt lzjb stream")

// Decompress implements Codec.
func (LZJB) Decompress(src []byte, maxLen int) ([]byte, error) {
	dst := make([]byte, 0, maxLen)
	i := 0
	for i < len(src) {
		ctrl := src[i]
		i++
		for bit := uint(0); bit < 8 && i < len(src); bit++ {
			if ctrl&(1<<bit) != 0 {
				if i+1 >= len(src) {
					return nil, errLZJBCorrupt
				}
				length := int(src[i]>>(8-lzjbMatchBits)) + lzjbMatchMin
				offset := int(src[i]&(1<<(8-lzjbMatchBits)-1))<<8 | int(src[i+1])
				i += 2
				start := len(dst) - offset
				if start < 0 || offset == 0 {
					return nil, errLZJBCorrupt
				}
				if len(dst)+length > maxLen {
					return nil, fmt.Errorf("compress: lzjb output exceeds max %d", maxLen)
				}
				// Byte-at-a-time copy: source and destination may overlap
				// (runs shorter than the match length), exactly like LZ77
				// run-length semantics.
				for k := 0; k < length; k++ {
					dst = append(dst, dst[start+k])
				}
			} else {
				if len(dst)+1 > maxLen {
					return nil, fmt.Errorf("compress: lzjb output exceeds max %d", maxLen)
				}
				dst = append(dst, src[i])
				i++
			}
		}
	}
	return dst, nil
}
