// Node crash/restart lifecycle, at-rest bit-rot, background scrub, and
// peer-assisted resilver. The paper leans on ZFS for on-disk integrity
// (§2.2: checksummed blocks, scrub, resilvering); this file is the
// deployment-level half of that substitution:
//
//	CrashNode     whole-node failure: the node drops offline mid-whatever
//	              (possibly with a torn zfs-recv journal) and is withdrawn
//	              from the peer index.
//	RestartNode   the recovery audit every node runs on the way back up:
//	              roll back a torn receive journal, scrub the replica,
//	              quarantine any damage, and decide whether the node is
//	              lagging (missed registrations while down).
//	InjectRot     seeds latent at-rest corruption from the deterministic
//	              fault plan — flipped bytes that sit silently until a
//	              read or a scrub finds them.
//	ScrubNode     the background integrity pass: verify every stored
//	              block, quarantine damage, withdraw damaged nodes.
//	ResilverNode  repair quarantined blocks from the cheapest healthy
//	              source — a peer replica first (verified reads), the PFS
//	              as fallback — then prove the replica clean and
//	              re-announce it.
//	Health        the per-node state dump an operator would watch.
//
// The standing invariant: a corrupt byte is never served. Read-time
// checksums fail damaged reads everywhere; on top of that, a node with
// *known* damage is withdrawn from the peer index entirely until a
// resilver (or full re-replication) proves it clean.
//
// Scrub and resilver serialize per node (the node lock), not per
// deployment: scrubbing node A never blocks a boot on node B. ScrubAll
// and ResilverAll walk nodes in sorted order, taking one node lock at a
// time, and honor context cancellation between nodes (resilver also
// between blocks).
package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/zvol"
)

// CrashNode fails a whole compute node at time at: it drops offline,
// its peer-index announcements are withdrawn, and — unlike a polite
// SetOnline(false) — nothing about its replica is assumed. If the crash
// interrupted a receive, the open journal stays open until RestartNode
// (or SyncNode) rolls it back. Whether the node comes back lagging is
// decided by the restart audit, not here.
func (s *Squirrel) CrashNode(nodeID string, at time.Time) error {
	if _, ok := s.nodes[nodeID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	s.state.Lock()
	s.online[nodeID] = false
	s.downSince[nodeID] = at
	s.state.Unlock()
	s.idx.NodeDown(nodeID)
	s.injector().Counters().Add("life.crash", 1)
	return nil
}

// RecoveryReport is the result of one restart-time audit.
type RecoveryReport struct {
	NodeID   string
	Downtime time.Duration // how long the node was down (0 if unknown)

	// Journal audit (torn zfs-recv rollback).
	RolledBack     bool
	RolledBackSnap string // snapshot the torn stream was carrying

	// Integrity audit.
	Scrub   zvol.ScrubReport
	Damaged int // corrupt+missing blocks quarantined (== len of damage set)

	// Lagging is true when the node must SyncNode before serving new
	// snapshots: it rolled back a receive or missed registrations while
	// down. Its first boot heals it, as ever.
	Lagging bool
}

// RestartNode brings a crashed (or stopped) node back up at time at,
// running the recovery audit first: an open receive journal is rolled
// back (the torn snapshot simply never happened on this node), the
// replica is scrubbed, any damage is quarantined and keeps the node
// withdrawn from the peer index, and staleness against the scVolume
// marks it lagging. A clean, current node re-announces its holdings and
// is immediately eligible to serve peers again.
func (s *Squirrel) RestartNode(nodeID string, at time.Time) (RecoveryReport, error) {
	if _, ok := s.nodes[nodeID]; !ok {
		return RecoveryReport{}, fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	defer s.nodeLocks.lock(nodeID).Unlock()
	ccv := s.ccVolume(nodeID)
	inj := s.injector()
	sp := s.tr.StartOp(obs.OpRestart, nodeID, "")
	defer sp.Finish()
	rep := RecoveryReport{NodeID: nodeID}
	s.state.RLock()
	if down, ok := s.downSince[nodeID]; ok && at.After(down) {
		rep.Downtime = at.Sub(down)
	}
	s.state.RUnlock()
	if rr := ccv.Recover(); rr.RolledBack {
		rep.RolledBack = true
		rep.RolledBackSnap = rr.Snapshot
		s.markLagging(nodeID)
		inj.Counters().Add("recover.rollback", 1)
		sp.Annotate("rolled_back", 1)
	}
	rep.Scrub = s.scrubGuarded(sp, nodeID, at)
	s.state.Lock()
	rep.Damaged = len(s.damaged[nodeID])
	// Staleness check: missed registrations while down mean SyncNode.
	if latest := s.sc.LatestSnapshot(); latest != nil {
		local := ccv.LatestSnapshot()
		if local == nil || local.Name != latest.Name {
			s.lagging[nodeID] = true
		}
	}
	rep.Lagging = s.lagging[nodeID]
	if rep.Lagging {
		sp.Annotate("lagging", 1)
	}
	s.online[nodeID] = true
	delete(s.downSince, nodeID)
	s.idx.NodeUp(nodeID)
	s.announceHoldingsLocked(nodeID) // no-op withdrawal if damaged
	s.state.Unlock()
	inj.Counters().Add("life.restart", 1)
	return rep, nil
}

// InjectRot seeds latent at-rest corruption on one node's replica from
// the deployment's fault plan: each stored block rots independently
// with probability Plan.Rot, at a byte offset and with a flip mask that
// are pure functions of (seed, node, object, block). Nothing is
// detected or demoted here — the damage sits silently until a read
// fails it or a scrub finds it, exactly like real bit-rot. Returns the
// refs of the blocks rotted (a scrub must report at least these; dedup
// aliases of a rotted payload surface additionally).
func (s *Squirrel) InjectRot(nodeID string) ([]zvol.BlockRef, error) {
	if _, ok := s.nodes[nodeID]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	defer s.nodeLocks.lock(nodeID).Unlock()
	ccv := s.ccVolume(nodeID)
	inj := s.injector()
	var rotted []zvol.BlockRef
	for _, obj := range ccv.Objects() {
		infos, err := ccv.BlockInfos(obj)
		if err != nil {
			return rotted, err
		}
		for idx, bi := range infos {
			if bi.Zero || !inj.RotBlock(nodeID, obj, idx) {
				continue
			}
			off, xor := inj.RotMutation(nodeID, obj, idx, int(bi.PhysLen))
			if err := ccv.CorruptStoredBlock(obj, idx, int64(off), xor); err != nil {
				return rotted, err
			}
			rotted = append(rotted, zvol.BlockRef{Object: obj, Index: idx})
		}
	}
	return rotted, nil
}

// ScrubNode runs an integrity pass over one node's replica at time at.
// Damage is quarantined in the deployment's damage set and the node is
// withdrawn from the peer index until a resilver clears it.
func (s *Squirrel) ScrubNode(ctx context.Context, nodeID string, at time.Time) (zvol.ScrubReport, error) {
	ctx = reqCtx(ctx)
	if err := ctx.Err(); err != nil {
		return zvol.ScrubReport{}, fmt.Errorf("core: scrub %s: %w", nodeID, err)
	}
	if _, ok := s.nodes[nodeID]; !ok {
		return zvol.ScrubReport{}, fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	defer s.nodeLocks.lock(nodeID).Unlock()
	return s.scrubGuarded(nil, nodeID, at), nil
}

// ScrubAll scrubs every compute node (the nightly cron pass) in sorted
// node order, returning reports keyed by node ID. Cancellation between
// nodes returns the partial map alongside the context error.
func (s *Squirrel) ScrubAll(ctx context.Context, at time.Time) (map[string]zvol.ScrubReport, error) {
	ctx = reqCtx(ctx)
	ids := make([]string, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make(map[string]zvol.ScrubReport, len(ids))
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("core: scrub pass: %w", err)
		}
		nl := s.nodeLocks.lock(id)
		out[id] = s.scrubGuarded(obs.SpanFromContext(ctx), id, at)
		nl.Unlock()
	}
	return out, nil
}

// scrubGuarded scrubs one replica, updates the damage set, and keeps the
// peer index honest. The span roots when parent is nil (a direct or
// cron scrub) and nests otherwise (restart audit, resilver rescrub).
// Caller holds the node lock.
func (s *Squirrel) scrubGuarded(parent *obs.Span, nodeID string, at time.Time) zvol.ScrubReport {
	sp := s.tr.Op(parent, obs.OpScrub, nodeID, "")
	rep := s.ccVolume(nodeID).Scrub()
	s.state.Lock()
	if !at.IsZero() {
		s.lastScrub[nodeID] = at
	}
	if rep.Clean() {
		delete(s.damaged, nodeID)
	} else {
		s.damaged[nodeID] = append([]zvol.BlockRef(nil), rep.Damaged...)
		// A rotten node must not serve peers until resilvered; it knows
		// its own damage, so this retraction is self-initiated and works
		// in both index modes.
		s.idx.Retract(nodeID)
	}
	s.state.Unlock()
	ctr := s.injector().Counters()
	ctr.Add("scrub.runs", 1)
	ctr.Add("scrub.blocks", int64(rep.Blocks))
	ctr.Add("scrub.corrupt", int64(rep.CorruptBlocks))
	ctr.Add("scrub.missing", int64(rep.MissingBlocks))
	sp.AddBytes(int64(rep.Blocks) * int64(s.cfg.Volume.BlockSize))
	sp.Annotate("blocks", int64(rep.Blocks))
	if n := rep.CorruptBlocks + rep.MissingBlocks; n > 0 {
		sp.Annotate("damaged", int64(n))
	}
	sp.Finish()
	return rep
}

// ResilverReport accounts one resilver pass over a node's damage set.
type ResilverReport struct {
	NodeID string
	Blocks int // damaged blocks targeted

	Repaired int
	Failed   int // no source could produce verified bytes

	// Source breakdown: the resilver prefers healthy peer replicas
	// (cheap, scattered) and falls back to the PFS.
	PeerBlocks int
	PFSBlocks  int
	PeerBytes  int64
	PFSBytes   int64
	XferSec    float64 // simulated transfer time across all repairs

	Clean bool // the closing scrub found the replica spotless
}

// ResilverNode repairs every quarantined block on nodeID from the
// cheapest healthy source, using the same source ladder as a cold boot:
// a peer replica holding the object (read-verified on the source, so a
// rotten peer can never donate bad bytes) first, the PFS otherwise.
// Each repair is checksum-verified before it is written — RepairBlock
// rejects a payload that does not hash to the block pointer — and a
// closing scrub decides whether the node is clean enough to re-announce
// to the peer index. Cancellation between blocks stops the pass; the
// blocks already repaired stay repaired and the rest stay quarantined.
func (s *Squirrel) ResilverNode(ctx context.Context, nodeID string, at time.Time) (ResilverReport, error) {
	ctx = reqCtx(ctx)
	if err := ctx.Err(); err != nil {
		return ResilverReport{}, fmt.Errorf("core: resilver %s: %w", nodeID, err)
	}
	if _, ok := s.nodes[nodeID]; !ok {
		return ResilverReport{}, fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	defer s.nodeLocks.lock(nodeID).Unlock()
	return s.resilverCtx(ctx, nil, nodeID, at)
}

// ResilverAll resilvers every node with a non-empty damage set (the
// background repair pass that follows a scrub cycle), in node order.
func (s *Squirrel) ResilverAll(ctx context.Context, at time.Time) ([]ResilverReport, error) {
	ctx = reqCtx(ctx)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: resilver pass: %w", err)
	}
	s.state.RLock()
	ids := make([]string, 0, len(s.damaged))
	for id := range s.damaged {
		ids = append(ids, id)
	}
	s.state.RUnlock()
	sort.Strings(ids)
	out := make([]ResilverReport, 0, len(ids))
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("core: resilver pass: %w", err)
		}
		nl := s.nodeLocks.lock(id)
		rep, err := s.resilverCtx(ctx, obs.SpanFromContext(ctx), id, at)
		nl.Unlock()
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// resilverCtx wraps the resilver body in a span: a root "resilver"
// when run directly or by the background pass, a child of the boot that
// triggered it otherwise. Caller holds the node lock.
func (s *Squirrel) resilverCtx(ctx context.Context, parent *obs.Span, nodeID string, at time.Time) (ResilverReport, error) {
	sp := s.tr.Op(parent, obs.OpResilver, nodeID, "")
	rep, err := s.resilver(ctx, sp, nodeID, at)
	sp.AddBytes(rep.PeerBytes + rep.PFSBytes)
	sp.AddSim(rep.XferSec)
	if rep.Repaired > 0 {
		sp.Annotate("repaired", int64(rep.Repaired))
	}
	if rep.Failed > 0 {
		sp.Annotate("unrepaired", int64(rep.Failed))
	}
	if rep.PeerBlocks > 0 {
		sp.Annotate("peer_blocks", int64(rep.PeerBlocks))
	}
	if rep.PFSBlocks > 0 {
		sp.Annotate("pfs_blocks", int64(rep.PFSBlocks))
	}
	sp.Fail(err)
	sp.Finish()
	return rep, err
}

// resilverGuarded is resilverCtx with a background context, for the
// boot-path heal. Caller holds the node lock.
func (s *Squirrel) resilverGuarded(parent *obs.Span, nodeID string, at time.Time) (ResilverReport, error) {
	return s.resilverCtx(context.Background(), parent, nodeID, at)
}

func (s *Squirrel) resilver(ctx context.Context, sp *obs.Span, nodeID string, at time.Time) (ResilverReport, error) {
	ccv := s.ccVolume(nodeID)
	node, err := s.computeNode(nodeID)
	if err != nil {
		return ResilverReport{}, err
	}
	inj := s.injector()
	// A torn journal would make block indexes ambiguous; roll back first.
	if ccv.NeedsRecovery() {
		ccv.Recover()
		s.markLagging(nodeID)
		inj.Counters().Add("recover.rollback", 1)
	}
	// Rescrub for the authoritative damage list (the quarantined set may
	// predate deletes, GC, or a partial earlier resilver).
	scrub := s.scrubGuarded(sp, nodeID, at)
	rep := ResilverReport{NodeID: nodeID, Blocks: len(scrub.Damaged)}
	ctr := inj.Counters()
	seq := 0
	for _, ref := range scrub.Damaged {
		if err := ctx.Err(); err != nil {
			return rep, fmt.Errorf("core: resilver %s: %w", nodeID, err)
		}
		data, viaPeer := s.fetchTrueBlock(nodeID, node, ccv, ref, inj, &seq, &rep)
		if data == nil {
			rep.Failed++
			ctr.Add("resilver.failed", 1)
			continue
		}
		if err := ccv.RepairBlock(ref.Object, ref.Index, data); err != nil {
			// Verified fetch + deterministic re-encode should never be
			// refused; treat a refusal as a failed block, not a fatal error.
			rep.Failed++
			ctr.Add("resilver.failed", 1)
			continue
		}
		rep.Repaired++
		ctr.Add("resilver.repaired", 1)
		if viaPeer {
			rep.PeerBlocks++
			rep.PeerBytes += int64(len(data))
			ctr.Add("resilver.peer_bytes", int64(len(data)))
		} else {
			rep.PFSBlocks++
			rep.PFSBytes += int64(len(data))
			ctr.Add("resilver.pfs_bytes", int64(len(data)))
		}
	}
	// Closing scrub: only a spotless replica rejoins the peer exchange.
	closing := s.scrubGuarded(sp, nodeID, at)
	rep.Clean = closing.Clean()
	if rep.Clean {
		s.state.Lock()
		if s.online[nodeID] {
			s.announceHoldingsLocked(nodeID)
		}
		s.state.Unlock()
	}
	return rep, nil
}

// fetchTrueBlock obtains the verified content of one damaged block,
// trying healthy peer replicas first and the PFS second. Returns nil
// when no source could produce verified bytes. Caller holds the target
// node's lock; source replicas are read through their internally locked
// volumes (read-time checksums make a concurrent writer harmless).
func (s *Squirrel) fetchTrueBlock(nodeID string, node *cluster.Node, ccv *zvol.Volume,
	ref zvol.BlockRef, inj *fault.Injector, seq *int, rep *ResilverReport) (data []byte, viaPeer bool) {
	op := "resilver:" + ref.Object + ":" + nodeID
	// Peer ladder: sorted holders, minus self, offline, lagging, and
	// damaged nodes. The source read is checksum-verified on the source
	// volume, so a latently rotten peer fails the read instead of
	// donating rot.
	for _, id := range s.idx.Holders(ref.Object, nodeID) {
		s.state.RLock()
		bad := id == nodeID || !s.online[id] || s.lagging[id] || len(s.damaged[id]) > 0
		srcv := s.cc[id]
		s.state.RUnlock()
		if bad || srcv == nil || !srcv.HasObject(ref.Object) {
			continue
		}
		good, _, _, err := srcv.ReadBlock(ref.Object, ref.Index)
		if err != nil {
			continue // rotten or missing on the peer too
		}
		*seq++
		kind, got := inj.Strike(op, id, *seq, good)
		srcNode, err := s.computeNode(id)
		if err != nil {
			continue
		}
		if kind == fault.Crash || kind == fault.Torn {
			s.state.Lock()
			s.online[id] = false
			s.lagging[id] = true
			s.state.Unlock()
			s.idx.NodeDown(id)
			inj.Counters().Add("repair.crashed", 1)
			continue
		}
		if len(got) > 0 {
			srcNode.Send(int64(len(got)))
			node.Recv(int64(len(got)))
			rep.XferSec += s.cl.Fabric.TransferSec(int64(len(got)))
		}
		if kind != fault.None {
			continue // dropped/truncated/corrupted transfer: next candidate
		}
		return got, true
	}
	// PFS fallback: map the block's cache-object range back to image
	// offsets through the cache-extent layout and read the base VMI.
	s.state.RLock()
	im := s.images[ref.Object]
	s.state.RUnlock()
	if im == nil {
		return nil, false // deregistered while quarantined: unrepairable
	}
	infos, err := ccv.BlockInfos(ref.Object)
	if err != nil || ref.Index >= len(infos) {
		return nil, false
	}
	bs := int64(s.cfg.Volume.BlockSize)
	lo := int64(ref.Index) * bs
	hi := lo + int64(infos[ref.Index].LogLen)
	got, err := s.pfsCacheRange(im, node, lo, hi)
	if err != nil {
		return nil, false
	}
	rep.XferSec += s.cl.Fabric.TransferSec(hi - lo)
	return got, false
}

// pfsCacheRange reads [lo, hi) of an image's cache object out of the
// PFS-hosted base VMI: cache extents are concatenated in offset order,
// so each covered extent slice maps linearly back to an image range.
func (s *Squirrel) pfsCacheRange(im *corpus.Image, node *cluster.Node, lo, hi int64) ([]byte, error) {
	out := make([]byte, hi-lo)
	var base int64
	for _, e := range im.CacheExtentsSorted() {
		elo, ehi := base, base+e.Len
		base = ehi
		if ehi <= lo || elo >= hi {
			continue
		}
		clo, chi := max(lo, elo), min(hi, ehi)
		if _, err := s.pfs.ReadAt(node, im.ID, out[clo-lo:chi-lo], e.Off+(clo-elo)); err != nil && err != io.EOF {
			return nil, err
		}
	}
	return out, nil
}

// NodeState is the coarse per-node condition shown by Health.
type NodeState string

// Node states, worst first.
const (
	StateDown        NodeState = "down"        // offline (crashed or stopped)
	StateResilvering NodeState = "resilvering" // quarantined damage awaiting repair
	StateLagging     NodeState = "lagging"     // missed registrations; SyncNode heals
	StateHealthy     NodeState = "healthy"
)

// NodeStatus is one row of the deployment health dump.
type NodeStatus struct {
	NodeID string
	State  NodeState

	Online  bool
	Lagging bool

	CorruptBlocks int       // quarantined damage (corrupt + missing)
	LastScrub     time.Time // zero if never scrubbed
	DownSince     time.Time // zero unless currently down

	// Withdrawn reports the node has no peer-index announcements: it is
	// invisible to the peer exchange (down, damaged, or empty).
	Withdrawn bool
	Snapshot  string // latest local snapshot ("" if none)
	// Breaker is the node's serve circuit-breaker state ("closed",
	// "open", "half-open"; empty when breakers are disabled).
	Breaker string
	// Unreachable reports the node sits across an open network cut.
	Unreachable bool

	// ViewLeases / ViewStale size the node's local gossip view: live
	// leases it carries for the ranges it owns, and expired leases a
	// round has yet to prune (both zero in central mode — the manager
	// holds the only view).
	ViewLeases int
	ViewStale  int
}

// Health reports per-node lifecycle state, sorted by node ID — what
// `squirrelctl -health` prints and what the chaos soak asserts on.
func (s *Squirrel) Health() []NodeStatus {
	s.state.RLock()
	defer s.state.RUnlock()
	out := make([]NodeStatus, 0, len(s.cc))
	for id, v := range s.cc {
		st := NodeStatus{
			NodeID:        id,
			Online:        s.online[id],
			Lagging:       s.lagging[id],
			CorruptBlocks: len(s.damaged[id]),
			LastScrub:     s.lastScrub[id],
			DownSince:     s.downSince[id],
			Withdrawn:     s.idx.AnnouncedBy(id) == 0,
			Breaker:       s.peers.BreakerState(id),
			Unreachable:   s.cl.Unreachable(id),
		}
		if s.gossip != nil {
			st.ViewLeases, st.ViewStale = s.gossip.ViewStats(id)
		}
		if snap := v.LatestSnapshot(); snap != nil {
			st.Snapshot = snap.Name
		}
		switch {
		case !st.Online:
			st.State = StateDown
		case st.CorruptBlocks > 0:
			st.State = StateResilvering
		case st.Lagging:
			st.State = StateLagging
		default:
			st.State = StateHealthy
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	return out
}
