package core

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Network partition lifecycle. PartitionNodes opens a cut that strands a
// minority of compute nodes: streams and unicast repairs across the cut
// deliver fault.Partition, PFS reads from stranded clients fail with
// ErrPartitioned, and every stranded holder is withdrawn from the peer
// index so no boot on the majority side wastes fetch attempts on nodes
// it cannot reach (Shoal-style dynamic publishing). HealPartition closes
// the cut and runs the index half of anti-entropy — re-announcing each
// healed node's authoritative object set — and reports which nodes still
// need a SyncNode pass to catch up on registrations they missed.
//
// Both transitions are plain state changes: which nodes land in the
// minority is the caller's choice (tests and the chaos example draw it
// deterministically from the fault injector via PartitionPick), so a
// whole partition scenario replays from the plan seed alone.

// HealReport summarizes one HealPartition call.
type HealReport struct {
	// Healed lists the nodes that were stranded, sorted.
	Healed []string
	// Reannounced counts healed nodes whose holdings were re-published to
	// the peer index (online, undamaged nodes).
	Reannounced int
	// Lagging lists healed nodes that missed registrations while cut off
	// and still need offline propagation (SyncNode), sorted.
	Lagging []string
}

// PartitionNodes opens a network cut stranding the named compute nodes
// in a minority group. The storage nodes and every unnamed compute node
// remain on the majority side. Calling it again replaces the cut.
func (s *Squirrel) PartitionNodes(ids ...string) error {
	for _, id := range ids {
		if _, ok := s.nodes[id]; !ok {
			return fmt.Errorf("%w: %s", ErrUnknownNode, id)
		}
	}
	sp := s.tr.Op(nil, obs.OpPartition, "", "")
	defer sp.Finish()
	s.cl.Partition(ids)
	s.state.Lock()
	for _, id := range ids {
		// Stranded holders leave the central index immediately: the cut
		// makes them unservable no matter how healthy their replicas
		// are. The gossip index has no registrar to tell — cross-cut
		// lookups simply can't reach the stranded owners, and leases the
		// minority planted on majority views decay by TTL.
		s.idx.Strand(id)
		sp.Annotate("cut."+id, 1)
	}
	s.state.Unlock()
	s.injector().Counters().Add("partition.open", 1)
	return nil
}

// HealPartition closes the open cut (a no-op report when none is open)
// and re-announces every healed node's holdings.
func (s *Squirrel) HealPartition() (HealReport, error) {
	sp := s.tr.Op(nil, obs.OpPartition, "", "")
	defer sp.Finish()
	rep := HealReport{Healed: s.cl.Heal()}
	if len(rep.Healed) == 0 {
		return rep, nil
	}
	s.state.Lock()
	for _, id := range rep.Healed {
		if _, ok := s.nodes[id]; !ok {
			continue // storage node listed in the cut: nothing to announce
		}
		if s.lagging[id] {
			rep.Lagging = append(rep.Lagging, id)
		}
		if s.online[id] && len(s.damaged[id]) == 0 {
			s.announceHoldingsLocked(id)
			rep.Reannounced++
			sp.Annotate("heal."+id, 1)
		}
	}
	s.state.Unlock()
	sort.Strings(rep.Lagging)
	s.injector().Counters().Add("partition.heal", 1)
	return rep, nil
}
