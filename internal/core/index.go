package core

import (
	"fmt"
	"sort"

	"repro/internal/gossip"
	"repro/internal/obs"
	"repro/internal/peer"
)

// IndexMode selects the content-index implementation behind the peer
// block exchange.
type IndexMode int

const (
	// IndexCentral is the paper-faithful single registry: the manager
	// owns one peer.Index and every announce/withdraw lands there
	// synchronously.
	IndexCentral IndexMode = iota
	// IndexGossip is the decentralized directory: nodes advertise TTL'd
	// leases to consistent-hash owners and reconcile views over seeded
	// gossip rounds (internal/gossip). Lookups read a bounded-staleness
	// view instead of authoritative state.
	IndexGossip
)

// String renders the mode for stats and squirrelctl.
func (m IndexMode) String() string {
	switch m {
	case IndexGossip:
		return "gossip"
	default:
		return "central"
	}
}

// contentIndex is the single chokepoint between deployment lifecycle
// and whichever index implementation is configured. Every announce,
// retraction, and holder lookup in core routes through it, so the boot,
// register, sync, GC, crash, scrub, and partition paths cannot tell the
// central registry and the gossip directory apart — except through the
// staleness semantics each mode is allowed.
type contentIndex interface {
	// Source names the implementation ("central" | "gossip").
	Source() string
	// SetHoldings reconciles node's advertised set with what it holds.
	SetHoldings(node string, objs []string)
	// Retract withdraws node's advertisements at node's own initiative
	// (damage self-detected, polite exit). Gossip can only spread the
	// retraction as far as the network allows.
	Retract(node string)
	// Strand reacts to node being cut off by a partition. The central
	// manager withdraws it globally; gossip leaves its leases to decay —
	// the cut itself keeps them out of cross-cut lookups.
	Strand(node string)
	// NodeDown records a process death (crash or stop): central
	// withdraws; gossip removes the node from the ring and lets its
	// leases age out by TTL.
	NodeDown(node string)
	// NodeUp records a restart; the caller re-announces holdings after.
	NodeUp(node string)
	// Withdraw retracts one (obj, node) advertisement.
	Withdraw(obj, node string)
	// WithdrawObject purges obj everywhere (deregistration).
	WithdrawObject(obj string)
	// Holders resolves obj's advertised holders as seen from node
	// `from` ("" = operator view). Central is exact; gossip is the
	// first reachable ring owner's lease view.
	Holders(obj, from string) []string
	// AnnouncedBy counts the objects node currently advertises.
	AnnouncedBy(node string) int
	// Objects and Entries size the index for stats.
	Objects() int
	Entries() int
}

// centralIndex adapts the in-process peer.Index (which also keeps the
// serve-slot and breaker state for both modes).
type centralIndex struct{ ix *peer.Index }

func (c centralIndex) Source() string                         { return IndexCentral.String() }
func (c centralIndex) SetHoldings(node string, objs []string) { c.ix.SetHoldings(node, objs) }
func (c centralIndex) Retract(node string)                    { c.ix.WithdrawNode(node) }
func (c centralIndex) Strand(node string)                     { c.ix.WithdrawNode(node) }
func (c centralIndex) NodeDown(node string)                   { c.ix.WithdrawNode(node) }
func (c centralIndex) NodeUp(node string)                     {}
func (c centralIndex) Withdraw(obj, node string)              { c.ix.Withdraw(obj, node) }
func (c centralIndex) WithdrawObject(obj string)              { c.ix.WithdrawObject(obj) }
func (c centralIndex) Holders(obj, from string) []string      { return c.ix.Holders(obj) }
func (c centralIndex) AnnouncedBy(node string) int            { return c.ix.AnnouncedBy(node) }
func (c centralIndex) Objects() int                           { return c.ix.Objects() }
func (c centralIndex) Entries() int                           { return c.ix.Entries() }

// gossipIndex adapts the decentralized directory.
type gossipIndex struct{ d *gossip.Directory }

func (g gossipIndex) Source() string                         { return IndexGossip.String() }
func (g gossipIndex) SetHoldings(node string, objs []string) { g.d.SetHoldings(node, objs) }
func (g gossipIndex) Retract(node string)                    { g.d.Retract(node) }
func (g gossipIndex) Strand(node string)                     {}
func (g gossipIndex) NodeDown(node string)                   { g.d.MarkDown(node) }
func (g gossipIndex) NodeUp(node string)                     { g.d.MarkUp(node) }
func (g gossipIndex) Withdraw(obj, node string)              { g.d.Withdraw(obj, node) }
func (g gossipIndex) WithdrawObject(obj string)              { g.d.WithdrawObject(obj) }
func (g gossipIndex) Holders(obj, from string) []string      { return g.d.Lookup(from, obj) }
func (g gossipIndex) AnnouncedBy(node string) int            { return g.d.AnnouncedBy(node) }
func (g gossipIndex) Objects() int                           { return g.d.Objects() }
func (g gossipIndex) Entries() int                           { return g.d.Entries() }

// Gossip exposes the decentralized directory when Index is IndexGossip
// (nil otherwise) — soaks and squirrelctl read rounds and view sizes
// through it.
func (s *Squirrel) Gossip() *gossip.Directory { return s.gossip }

// GossipTicks advances the decentralized index n gossip rounds,
// returning one report per round. Rounds are the logical clock of the
// convergence bound: tests and soaks drive them explicitly so a churn
// scenario replays deterministically from its seeds. Each round records
// an obs span with its advert/exchange/prune accounting.
func (s *Squirrel) GossipTicks(n int) ([]gossip.RoundReport, error) {
	if s.gossip == nil {
		return nil, fmt.Errorf("core: gossip rounds need Config.Index = IndexGossip")
	}
	reps := make([]gossip.RoundReport, 0, n)
	for i := 0; i < n; i++ {
		sp := s.tr.StartOp(obs.OpGossip, "", "")
		rep := s.gossip.Tick()
		sp.Annotate("round", rep.Round)
		sp.Annotate("adverts", int64(rep.Adverts))
		sp.Annotate("exchanges", int64(rep.Exchanges))
		sp.Annotate("transferred", int64(rep.Transferred))
		sp.Annotate("pruned", int64(rep.Pruned))
		sp.Annotate("dropped", int64(rep.Dropped))
		sp.Finish()
		reps = append(reps, rep)
	}
	return reps, nil
}

// IndexHolders resolves obj's advertised holders as seen from `from`
// ("" = operator view) through whichever index is configured — the
// read squirrelctl, experiments, and the churn soak share with the boot
// path.
func (s *Squirrel) IndexHolders(obj, from string) []string {
	return s.idx.Holders(obj, from)
}

// buildIndex wires the configured index implementation for a new
// deployment.
func buildIndex(s *Squirrel) {
	if s.cfg.Index != IndexGossip {
		s.idx = centralIndex{ix: s.peers}
		return
	}
	ids := make([]string, 0, len(s.cl.Compute))
	for _, n := range s.cl.Compute {
		ids = append(ids, n.ID)
	}
	sort.Strings(ids)
	s.gossip = gossip.New(s.cfg.Gossip, ids, s.cl)
	s.gossip.SetInjector(s.cfg.Faults)
	if s.tel != nil {
		s.gossip.SetCounters(s.tel.Counters())
	}
	s.idx = gossipIndex{d: s.gossip}
}
