// Package core implements Squirrel itself (§3 of the paper): a fully
// replicated VMI-cache storage system that scatter-hoards the boot
// working sets of all registered VM images on all compute nodes of an
// IaaS data center.
//
// Squirrel maintains one scVolume on the storage side and one ccVolume
// per compute node (all cVolumes are deduplicated + compressed zvol
// volumes). The main operations are:
//
//	Register    first-boot the new VMI on a storage node to capture its
//	            boot working set, store the cache in the scVolume, take a
//	            snapshot, and multicast the incremental snapshot diff to
//	            every online compute node (§3.2, Fig 6). Replica-side
//	            transfer failures never fail the registration: failed
//	            replicas are retried over unicast with bounded exponential
//	            backoff (NACK-style reliable multicast), and past the
//	            retry budget the node is marked lagging for offline
//	            propagation to heal.
//	Boot        chain CoW → ccVolume cache → base VMI for a VM start on a
//	            compute node (§3.3, Fig 7); with a warm replica the boot
//	            performs zero network I/O. Landing on a lagging node first
//	            heals it through SyncNode.
//	Deregister  drop the VMI and its cache from the scVolume; the removal
//	            reaches ccVolumes with the next snapshot (§3.4).
//	GarbageCollect  daily cron job destroying snapshots outside the
//	            retention window n, always keeping the latest (§3.4).
//	SyncNode    offline propagation for nodes that missed registrations:
//	            incremental catch-up when their latest snapshot is still
//	            retained, full re-replication otherwise (§3.5).
//
// All operations are safe for concurrent use.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/peer"
	"repro/internal/qcow"
	"repro/internal/zvol"
)

// Config parameterizes a Squirrel deployment.
type Config struct {
	// Volume is the cVolume policy (block size, codec, dedup); the paper
	// settles on 64 KB + gzip6 + dedup.
	Volume zvol.Config
	// RetentionDays is the paper's n: how long snapshots are kept for
	// offline propagation.
	RetentionDays int
	// ClusterSize is the QCOW2 cluster granularity of CoW/cache images.
	ClusterSize int64
	// Propagation selects the one-to-many diff transfer scheme.
	Propagation Propagation
	// Faults optionally injects transfer faults into propagation and
	// repair (chaos testing, §3.5's motivation). nil is a perfect network.
	Faults *fault.Injector
	// Repair bounds the NACK-style unicast retry loop for replicas that
	// missed or rejected a registration stream.
	Repair RepairPolicy
	// Peer configures the peer block exchange: cold-boot misses consult
	// the content index and fetch from a neighboring replica before
	// falling back to the PFS. The index is always maintained;
	// Peer.Enabled gates only the fetch path.
	Peer peer.Policy
	// Obs enables operation tracing and unified telemetry: every
	// long-running operation records a span tree, per-op-kind and
	// per-node aggregates accumulate, and the peer index, fault injector,
	// and zvol volumes account into one shared counter registry. nil
	// (the default) disables all of it with zero behavioral difference.
	Obs *obs.Telemetry
}

// RepairPolicy bounds per-replica registration repair.
type RepairPolicy struct {
	// MaxAttempts is the unicast retry budget per replica per
	// registration; once spent the node is marked lagging.
	MaxAttempts int
	// Backoff is the base of the exponential backoff between attempts.
	// Backoff time is simulated (accounted in reports, never slept) so
	// chaos runs stay deterministic and fast.
	Backoff time.Duration
}

// DefaultRepairPolicy mirrors reliable-multicast practice: a few NACK
// retries starting at 50 ms.
func DefaultRepairPolicy() RepairPolicy {
	return RepairPolicy{MaxAttempts: 3, Backoff: 50 * time.Millisecond}
}

// Propagation is the transfer scheme for registration diffs.
type Propagation int

// Propagation schemes (§3.2 uses multicast; the others are the ablation).
const (
	Multicast Propagation = iota
	UnicastFanout
	Pipeline
)

// DefaultConfig is the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Volume:        zvol.DefaultConfig(),
		RetentionDays: 7,
		ClusterSize:   qcow.DefaultClusterSize,
		Propagation:   Multicast,
		Repair:        DefaultRepairPolicy(),
		// The paper's boot path is cache-or-PFS; the peer exchange is this
		// repo's extension and stays opt-in (peer.DefaultPolicy enables it).
		Peer: peer.Policy{}.Normalize(),
	}
}

// Squirrel is one deployment over a cluster.
type Squirrel struct {
	cfg Config
	cl  *cluster.Cluster
	pfs *cluster.PFS

	sc *zvol.Volume // scVolume (storage nodes); internally locked

	// peers is the content index of the peer block exchange; internally
	// locked (never acquire s.mu while holding index locks — core always
	// locks s.mu first, or calls the index without s.mu held).
	peers *peer.Index
	// bootReads records the size of every boot-trace read.
	bootReads *metrics.Histogram
	// tel/tr are the observability layer (cfg.Obs); both nil when
	// disabled, and every use is nil-safe. Set once in New, never
	// mutated, so they are read without s.mu.
	tel *obs.Telemetry
	tr  *obs.Tracer

	// mu guards the mutable deployment state below. Register and SyncNode
	// serialize under it; Boot drops it before replaying the trace so
	// boots run concurrently.
	mu      sync.Mutex
	cc      map[string]*zvol.Volume // ccVolume per compute node ID
	online  map[string]bool
	lagging map[string]bool // exhausted repair budget; heal via SyncNode
	images  map[string]*corpus.Image
	snapSeq int

	// Node lifecycle state (crash/restart, scrub, resilver).
	downSince map[string]time.Time      // when an offline node went down
	damaged   map[string][]zvol.BlockRef // known-damaged blocks per node
	lastScrub map[string]time.Time      // most recent scrub per node
}

// Errors.
var (
	ErrNotRegistered = errors.New("core: image not registered")
	ErrRegistered    = errors.New("core: image already registered")
	ErrUnknownNode   = errors.New("core: unknown compute node")
	ErrNodeOffline   = errors.New("core: compute node offline")
)

// New creates a Squirrel deployment over cl. The PFS must be configured
// over cl's storage nodes; base VMIs are published there.
func New(cfg Config, cl *cluster.Cluster, pfs *cluster.PFS) (*Squirrel, error) {
	sc, err := zvol.New(cfg.Volume)
	if err != nil {
		return nil, err
	}
	cfg.Peer = cfg.Peer.Normalize()
	s := &Squirrel{
		cfg:       cfg,
		cl:        cl,
		pfs:       pfs,
		sc:        sc,
		peers:     peer.NewIndex(),
		bootReads: metrics.MustHistogram(metrics.ByteBuckets()...),
		tel:       cfg.Obs,
		tr:        cfg.Obs.Tracer(),
		cc:        make(map[string]*zvol.Volume),
		online:    make(map[string]bool),
		lagging:   make(map[string]bool),
		images:    make(map[string]*corpus.Image),
		downSince: make(map[string]time.Time),
		damaged:   make(map[string][]zvol.BlockRef),
		lastScrub: make(map[string]time.Time),
	}
	if s.tel != nil {
		// One registry: the peer index, the fault injector, and every
		// volume account into the telemetry counter set instead of
		// bespoke per-subsystem sets.
		s.peers.SetCounters(s.tel.Counters())
		s.cfg.Faults.SetCounters(s.tel.Counters())
		s.sc.SetCounters(s.tel.Counters())
	}
	for _, n := range cl.Compute {
		v, err := zvol.New(cfg.Volume)
		if err != nil {
			return nil, err
		}
		if s.tel != nil {
			v.SetCounters(s.tel.Counters())
		}
		s.cc[n.ID] = v
		s.online[n.ID] = true
	}
	return s, nil
}

// SCVolume exposes the storage-side cVolume (for stats and tests).
func (s *Squirrel) SCVolume() *zvol.Volume { return s.sc }

// PeerIndex exposes the peer block exchange's content index (stats,
// experiments, and the squirrelctl -peers dump read it).
func (s *Squirrel) PeerIndex() *peer.Index { return s.peers }

// BootReadSizes is the histogram of boot-trace read sizes across every
// boot served by this deployment.
func (s *Squirrel) BootReadSizes() *metrics.Histogram { return s.bootReads }

// SetFaults swaps the deployment's fault injector. Chaos scenarios use
// this to bring a deployment up on a clean fabric and then turn it
// hostile for the phase under test.
func (s *Squirrel) SetFaults(inj *fault.Injector) {
	s.mu.Lock()
	if s.tel != nil {
		inj.SetCounters(s.tel.Counters())
	}
	s.cfg.Faults = inj
	s.mu.Unlock()
}

// Telemetry exposes the deployment's observability state (nil when
// tracing is disabled); squirrelctl, experiments, and trace-based tests
// read snapshots and span trees through it.
func (s *Squirrel) Telemetry() *obs.Telemetry { return s.tel }

// announceHoldingsLocked reconciles the peer index with what nodeID's
// ccVolume actually holds, restricted to registered images (a replica
// may still physically hold a deregistered object until the next
// snapshot removes it, but such objects are no longer servable).
// Callers hold s.mu.
//
// A node with known-damaged blocks never announces: whatever it holds
// may be rotten, so it stays withdrawn from the index until a resilver
// (or full re-replication) proves it clean again. This is the index
// half of the "never serve a corrupt byte" invariant; the other half is
// the read-time checksum on every block.
func (s *Squirrel) announceHoldingsLocked(nodeID string) {
	ccv := s.cc[nodeID]
	if ccv == nil {
		return
	}
	if len(s.damaged[nodeID]) > 0 {
		s.peers.WithdrawNode(nodeID)
		return
	}
	var held []string
	for _, obj := range ccv.Objects() {
		if _, ok := s.images[obj]; ok {
			held = append(held, obj)
		}
	}
	s.peers.SetHoldings(nodeID, held)
}

// CCVolume returns a compute node's cVolume.
func (s *Squirrel) CCVolume(nodeID string) (*zvol.Volume, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.cc[nodeID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	return v, nil
}

// SetOnline marks a compute node up or down. Offline nodes miss
// registration diffs and must SyncNode on their next boot (§3.5).
// Bringing a crashed node back up does not clear its lagging mark; the
// first boot (or an explicit SyncNode) heals it.
func (s *Squirrel) SetOnline(nodeID string, up bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cc[nodeID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	s.online[nodeID] = up
	// Offline nodes cannot serve peer fetches, so their announcements are
	// withdrawn; on the way back up the node re-announces what it still
	// physically holds (possibly a stale-but-valid subset).
	if up {
		// A torn apply must be rolled back before the replica serves
		// anything: with the journal open, the object table shows the
		// half-applied state. Rolling back means the node missed that
		// registration, so it comes up lagging.
		if v := s.cc[nodeID]; v.NeedsRecovery() {
			v.Recover()
			s.lagging[nodeID] = true
			s.cfg.Faults.Counters().Add("recover.rollback", 1)
		}
		delete(s.downSince, nodeID)
		s.announceHoldingsLocked(nodeID)
	} else {
		s.peers.WithdrawNode(nodeID)
	}
	return nil
}

// Registered lists registered image IDs, sorted.
func (s *Squirrel) Registered() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.images))
	for id := range s.images {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lagging lists nodes that exhausted their repair budget (or crashed
// mid-transfer) and await offline propagation, sorted.
func (s *Squirrel) Lagging() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.lagging))
	for id := range s.lagging {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RegisterReport describes one registration.
type RegisterReport struct {
	ImageID    string
	Snapshot   string
	CacheBytes int64   // boot working set captured on the storage node
	DiffBytes  int64   // incremental wire-stream size actually propagated
	Nodes      int     // replicas holding the snapshot when Register returns
	XferSec    float64 // propagation duration on the fabric

	// Fault/repair accounting; all zero on a perfect network.
	Faults      int      // transfer faults injected against this registration
	Retries     int      // unicast repair attempts
	RepairBytes int64    // bytes delivered by unicast repair
	RepairSec   float64  // simulated repair transfer + backoff time
	Lagging     []string // replicas left lagging after the retry budget
	Crashed     []string // replicas that crashed mid-transfer
	Torn        []string // replicas that crashed mid-APPLY (open journal)
}

// Register runs the paper's registration workflow (Fig 6) for a VMI that
// has been uploaded to the PFS: capture its boot working set by a first
// boot on a storage node, store it in the scVolume, snapshot, and
// propagate the snapshot diff to all online compute nodes. at is the
// registration time (drives snapshot retention).
//
// Registration is reliable and degradable: a replica that misses or
// rejects the one-to-many stream (lossy multicast, corruption, a crash
// mid-transfer) is repaired over unicast with bounded exponential
// backoff; a replica that exhausts the budget is marked lagging and
// healed later by SyncNode. Replica-side faults therefore never surface
// as a Register error — only storage-side failures do, and those roll
// back cleanly so the registration can be retried.
func (s *Squirrel) Register(im *corpus.Image, at time.Time) (RegisterReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.images[im.ID]; dup {
		return RegisterReport{}, fmt.Errorf("%w: %s", ErrRegistered, im.ID)
	}
	sp := s.tr.StartOp(obs.OpRegister, "", im.ID)
	rep, err := s.registerLocked(sp, im, at)
	sp.AddBytes(rep.DiffBytes)
	sp.AddSim(rep.XferSec + rep.RepairSec)
	if rep.Faults > 0 {
		sp.Annotate("faults", int64(rep.Faults))
	}
	if rep.Retries > 0 {
		sp.Annotate("retries", int64(rep.Retries))
	}
	if n := len(rep.Lagging); n > 0 {
		sp.Annotate("lagging", int64(n))
	}
	if n := len(rep.Crashed) + len(rep.Torn); n > 0 {
		sp.Annotate("crashed", int64(n))
	}
	sp.Fail(err)
	sp.Finish()
	return rep, err
}

func (s *Squirrel) registerLocked(sp *obs.Span, im *corpus.Image, at time.Time) (RegisterReport, error) {
	if _, dup := s.images[im.ID]; dup {
		return RegisterReport{}, fmt.Errorf("%w: %s", ErrRegistered, im.ID)
	}
	// A previously failed attempt may have left the cache object behind
	// without registering the image; clear it so the retry does not hit
	// duplicate-object state.
	if s.sc.HasObject(im.ID) {
		if err := s.sc.DeleteObject(im.ID); err != nil {
			return RegisterReport{}, err
		}
	}
	// Publish the base VMI on the parallel file system if not present
	// (uploads are the provider's existing mechanism, §3.2).
	if _, err := s.pfs.Size(im.ID); err != nil {
		// ReadAtFunc, not a bare Generator: the PFS serves concurrent
		// boots of the same image.
		if err := s.pfs.AddFile(im.ID, im.RawSize(), im.ReadAtFunc()); err != nil {
			return RegisterReport{}, err
		}
	}
	// First boot happens on a storage node: the cache is created from
	// local reads, with no compute-node traffic.
	obj, err := s.sc.WriteObject(im.ID, im.CacheReader())
	if err != nil {
		return RegisterReport{}, err
	}
	prev := ""
	if snap := s.sc.LatestSnapshot(); snap != nil {
		prev = snap.Name
	}
	s.snapSeq++
	snapName := fmt.Sprintf("cVol@%06d-%s", s.snapSeq, im.ID)
	// rollback undoes the storage-side half of a failed registration so a
	// retry starts from clean state instead of duplicate-object errors.
	rollback := func(snapTaken bool) {
		if snapTaken {
			s.sc.DeleteSnapshot(snapName)
		}
		s.sc.DeleteObject(im.ID)
		s.snapSeq--
	}
	if _, err := s.sc.Snapshot(snapName, at); err != nil {
		rollback(false)
		return RegisterReport{}, err
	}
	stream, err := s.sc.Send(prev, snapName)
	if err != nil {
		rollback(true)
		return RegisterReport{}, err
	}
	// Encode once: the wire stream is both the multicast payload and the
	// unit fault injection mutates.
	var wireBuf bytes.Buffer
	if _, err := stream.Encode(&wireBuf); err != nil {
		rollback(true)
		return RegisterReport{}, err
	}
	wire := wireBuf.Bytes()
	rep := RegisterReport{
		ImageID:    im.ID,
		Snapshot:   snapName,
		CacheBytes: obj.Size,
		DiffBytes:  int64(len(wire)),
	}
	// Propagate to every online, in-sync node. Lagging nodes are skipped:
	// they lack the previous snapshot, so the incremental stream cannot
	// apply — SyncNode will catch them up wholesale instead.
	var dsts []*cluster.Node
	for _, n := range s.cl.Compute {
		if s.online[n.ID] && !s.lagging[n.ID] {
			dsts = append(dsts, n)
		}
	}
	src := s.cl.Storage[0]
	op := "register:" + snapName
	var deliv []cluster.Delivery
	switch s.cfg.Propagation {
	case UnicastFanout:
		deliv, rep.XferSec = s.cl.UnicastStream(op, src, dsts, wire, s.cfg.Faults)
	case Pipeline:
		deliv, rep.XferSec = s.cl.PipelineStream(op, src, dsts, wire, s.cfg.Faults)
	default:
		deliv, rep.XferSec = s.cl.MulticastStream(op, src, dsts, wire, s.cfg.Faults)
	}
	var synced []string
	for _, dv := range deliv {
		dsp := sp.Child(obs.OpPropagate, dv.Node.ID, im.ID)
		if !dv.OK() {
			rep.Faults++
			dsp.Annotate("fault."+dv.Fault.String(), 1)
		}
		if dv.Fault == fault.Crash {
			s.crashReplica(dv.Node.ID, at, &rep)
			dsp.Finish()
			continue
		}
		if dv.Fault == fault.Torn {
			s.tornReplica(op, dv.Node.ID, stream, at, &rep)
			dsp.Finish()
			continue
		}
		if s.applyDelivery(dsp, dv, stream) {
			dsp.AddBytes(int64(len(wire)))
			rep.Nodes++
			synced = append(synced, dv.Node.ID)
			dsp.Finish()
			continue
		}
		if s.repairReplica(dsp, op, dv.Node, stream, wire, at, &rep) {
			rep.Nodes++
			synced = append(synced, dv.Node.ID)
		} else if s.online[dv.Node.ID] {
			s.lagging[dv.Node.ID] = true
			rep.Lagging = append(rep.Lagging, dv.Node.ID)
			s.cfg.Faults.Counters().Add("repair.lagging", 1)
			dsp.Annotate("exhausted", 1)
		}
		dsp.Finish()
	}
	s.images[im.ID] = im
	// Replicas that applied the snapshot announce their (updated) holdings
	// to the peer index — the publish half of the peer block exchange.
	for _, nodeID := range synced {
		s.announceHoldingsLocked(nodeID)
	}
	return rep, nil
}

// applyDelivery tries to apply one delivery to its replica: an intact
// delivery applies the already-decoded stream; a damaged one is decoded
// from its wire bytes, which the stream CRC and Receive's per-block
// checksums almost always reject.
func (s *Squirrel) applyDelivery(parent *obs.Span, dv cluster.Delivery, st *zvol.Stream) bool {
	rst := st
	if dv.Fault != fault.None {
		if len(dv.Wire) == 0 {
			return false
		}
		decoded, err := zvol.DecodeStream(bytes.NewReader(dv.Wire))
		if err != nil {
			return false
		}
		rst = decoded
	}
	rsp := parent.Child(obs.OpReceive, dv.Node.ID, "")
	ok := s.cc[dv.Node.ID].Receive(rst) == nil
	if ok {
		rsp.AddBytes(rst.SizeBytes())
	} else {
		rsp.Annotate("rejected", 1)
	}
	rsp.Finish()
	return ok
}

// crashReplica records a mid-transfer node crash: the node drops offline
// and is marked lagging so its first boot after recovery heals it.
func (s *Squirrel) crashReplica(nodeID string, at time.Time, rep *RegisterReport) {
	s.online[nodeID] = false
	s.lagging[nodeID] = true
	s.downSince[nodeID] = at
	s.peers.WithdrawNode(nodeID)
	rep.Crashed = append(rep.Crashed, nodeID)
	s.cfg.Faults.Counters().Add("repair.crashed", 1)
}

// tornReplica records a torn apply: the replica received the stream
// intact but the node crashed partway through `zfs recv`. The injected
// crash offset is a pure function of (seed, op, node), so a chaos run
// tears the same replicas at the same step every time. The node goes
// down with its receive journal open; the restart audit (or SyncNode)
// rolls it back.
func (s *Squirrel) tornReplica(op, nodeID string, st *zvol.Stream, at time.Time, rep *RegisterReport) {
	ccv := s.cc[nodeID]
	ccv.SetReceiveCrashPoint(s.cfg.Faults.TornStep(op, nodeID, st.ApplySteps()))
	_ = ccv.Receive(st) // dies mid-apply: ErrTorn, journal left open
	s.online[nodeID] = false
	s.lagging[nodeID] = true
	s.downSince[nodeID] = at
	s.peers.WithdrawNode(nodeID)
	rep.Torn = append(rep.Torn, nodeID)
	s.cfg.Faults.Counters().Add("repair.torn", 1)
}

// repairReplica retries one failed replica over unicast with bounded
// exponential backoff — the NACK path of reliable multicast. Backoff is
// simulated into the report, never slept. Returns true once the replica
// holds the snapshot; false when the node crashed or the budget ran out.
func (s *Squirrel) repairReplica(parent *obs.Span, op string, node *cluster.Node, st *zvol.Stream, wire []byte, at time.Time, rep *RegisterReport) bool {
	rsp := parent.Child(obs.OpRepair, node.ID, "")
	defer rsp.Finish()
	ccv := s.cc[node.ID]
	pol := s.cfg.Repair
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = DefaultRepairPolicy().MaxAttempts
	}
	if pol.Backoff <= 0 {
		pol.Backoff = DefaultRepairPolicy().Backoff
	}
	src := s.cl.Storage[0]
	backoff := pol.Backoff
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		rep.Retries++
		rep.RepairSec += backoff.Seconds()
		rsp.Annotate("attempts", 1)
		rsp.AddSim(backoff.Seconds())
		backoff *= 2
		s.cfg.Faults.Counters().Add("repair.retries", 1)
		kind, got := s.cfg.Faults.Strike(op, node.ID, attempt, wire)
		if kind != fault.None {
			rep.Faults++
			rsp.Annotate("fault."+kind.String(), 1)
		}
		if kind == fault.Crash {
			s.crashReplica(node.ID, at, rep)
			return false
		}
		if kind == fault.Torn {
			s.tornReplica(op, node.ID, st, at, rep)
			return false
		}
		src.Send(int64(len(wire))) // the source retransmits in full
		if got == nil {
			continue // lost entirely; back off and renack
		}
		node.Recv(int64(len(got)))
		rep.RepairBytes += int64(len(got))
		rep.RepairSec += s.cl.Fabric.TransferSec(int64(len(got)))
		rsp.AddBytes(int64(len(got)))
		rsp.AddSim(s.cl.Fabric.TransferSec(int64(len(got))))
		s.cfg.Faults.Counters().Add("repair.bytes", int64(len(got)))
		rst := st
		if kind != fault.None {
			decoded, err := zvol.DecodeStream(bytes.NewReader(got))
			if err != nil {
				continue // truncation/corruption caught by the stream CRC
			}
			rst = decoded
		}
		if err := ccv.Receive(rst); err != nil {
			continue
		}
		return true
	}
	rsp.Annotate("exhausted", 1)
	return false
}

// Deregister removes a VMI: the original image and its scVolume cache are
// deleted. ccVolumes learn about the removal with the next snapshot
// (§3.4) — Squirrel deliberately takes no snapshot here.
func (s *Squirrel) Deregister(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.images[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotRegistered, id)
	}
	if err := s.sc.DeleteObject(id); err != nil {
		return err
	}
	delete(s.images, id)
	// Replicas may physically hold the object until the next snapshot
	// propagates the delete, but a deregistered image is not servable:
	// withdraw it from the peer index immediately.
	s.peers.WithdrawObject(id)
	return nil
}

// GarbageCollect runs the daily retention job on the scVolume and all
// ccVolumes, keeping snapshots younger than the retention window plus the
// latest snapshot. Returns the number of snapshots destroyed.
func (s *Squirrel) GarbageCollect(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.tr.StartOp(obs.OpGC, "", "")
	window := time.Duration(s.cfg.RetentionDays) * 24 * time.Hour
	n := len(s.sc.GarbageCollect(now, window))
	for id, v := range s.cc {
		n += len(v.GarbageCollect(now, window))
		// Retention changes what each replica can serve going forward;
		// reconcile announcements against the live object sets.
		if s.online[id] {
			s.announceHoldingsLocked(id)
		}
	}
	sp.Annotate("destroyed", int64(n))
	sp.Finish()
	return n
}

// DropReplica deletes nodeID's local copy of one cache object and
// withdraws its peer-index announcement. This is the hook experiments,
// tests, and capacity policies use to manufacture cold-boot misses (or
// reclaim replica space) without taking the node offline: the next boot
// of imageID on nodeID must fetch from a peer or the PFS.
func (s *Squirrel) DropReplica(nodeID, imageID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ccv, ok := s.cc[nodeID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	if ccv.HasObject(imageID) {
		if err := ccv.DeleteObject(imageID); err != nil {
			return err
		}
	}
	s.peers.Withdraw(imageID, nodeID)
	return nil
}
