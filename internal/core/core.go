// Package core implements Squirrel itself (§3 of the paper): a fully
// replicated VMI-cache storage system that scatter-hoards the boot
// working sets of all registered VM images on all compute nodes of an
// IaaS data center.
//
// Squirrel maintains one scVolume on the storage side and one ccVolume
// per compute node (all cVolumes are deduplicated + compressed zvol
// volumes). The main operations are:
//
//	Register    first-boot the new VMI on a storage node to capture its
//	            boot working set, store the cache in the scVolume, take a
//	            snapshot, and multicast the incremental snapshot diff to
//	            every online compute node (§3.2, Fig 6). Replica-side
//	            transfer failures never fail the registration: failed
//	            replicas are retried over unicast with bounded exponential
//	            backoff (NACK-style reliable multicast), and past the
//	            retry budget the node is marked lagging for offline
//	            propagation to heal.
//	Boot        chain CoW → ccVolume cache → base VMI for a VM start on a
//	            compute node (§3.3, Fig 7); with a warm replica the boot
//	            performs zero network I/O. Landing on a lagging node first
//	            heals it through SyncNode.
//	Deregister  drop the VMI and its cache from the scVolume; the removal
//	            reaches ccVolumes with the next snapshot (§3.4).
//	GarbageCollect  daily cron job destroying snapshots outside the
//	            retention window n, always keeping the latest (§3.4).
//	SyncNode    offline propagation for nodes that missed registrations:
//	            incremental catch-up when their latest snapshot is still
//	            retained, full re-replication otherwise (§3.5).
//
// All operations are safe for concurrent use, and the locking is
// fine-grained: per-image and per-node lock shards plus one short
// deployment-state RWMutex replace the old global mutex, so a boot
// storm runs concurrently across nodes, Register fans its propagation
// legs out to replicas in parallel, and two operations only serialize
// when they genuinely touch the same image or the same node's replica.
// See keyLocks in locks.go for the lock-ordering rule.
package core

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/conc"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/peer"
	"repro/internal/qcow"
	"repro/internal/zvol"
)

// Config parameterizes a Squirrel deployment.
type Config struct {
	// Volume is the cVolume policy (block size, codec, dedup); the paper
	// settles on 64 KB + gzip6 + dedup.
	Volume zvol.Config
	// RetentionDays is the paper's n: how long snapshots are kept for
	// offline propagation.
	RetentionDays int
	// ClusterSize is the QCOW2 cluster granularity of CoW/cache images.
	ClusterSize int64
	// Propagation selects the one-to-many diff transfer scheme.
	Propagation Propagation
	// Faults optionally injects transfer faults into propagation and
	// repair (chaos testing, §3.5's motivation). nil is a perfect network.
	Faults *fault.Injector
	// Repair bounds the NACK-style unicast retry loop for replicas that
	// missed or rejected a registration stream.
	Repair RepairPolicy
	// Workers bounds the goroutines Register uses to apply one
	// registration's propagation legs to replicas in parallel. 0 (the
	// default) means GOMAXPROCS; 1 applies legs serially. Parallel legs
	// and serial legs produce byte-identical reports — every
	// order-dependent fault draw happens outside the parallel phase.
	Workers int
	// BootLatency is a real (wall-clock) per-boot device wait applied
	// during trace replay, modelling the hypervisor/disk latency that
	// makes real boot storms I/O-bound. Zero (the default) disables it;
	// it changes no report fields, only elapsed time. The BootStorm
	// benchmark sets it so wall-clock scaling reflects overlapping waits
	// — the thing the old global manager mutex made impossible.
	BootLatency time.Duration
	// Peer configures the peer block exchange: cold-boot misses consult
	// the content index and fetch from a neighboring replica before
	// falling back to the PFS. The index is always maintained;
	// Peer.Enabled gates only the fetch path. Peer.Hedge and Peer.Breaker
	// add the resilience layer's hedged fetches and per-peer circuit
	// breakers on top.
	Peer peer.Policy
	// Admission bounds per-node boot concurrency (deadline-aware
	// admission control). The zero value disables it.
	Admission AdmissionPolicy
	// Index selects the content-index implementation behind the peer
	// exchange: IndexCentral (the default, paper-faithful single
	// registry) or IndexGossip (the decentralized TTL-lease directory in
	// internal/gossip). Both feed the same peer lookup interface, so
	// serve slots, hedges, and circuit breakers behave identically.
	Index IndexMode
	// Gossip parameterizes the decentralized index when Index is
	// IndexGossip (seed, fanout, lease TTL, ring owners, clock). Ignored
	// for IndexCentral.
	Gossip gossip.Config
	// Obs enables operation tracing and unified telemetry: every
	// long-running operation records a span tree, per-op-kind and
	// per-node aggregates accumulate, and the peer index, fault injector,
	// and zvol volumes account into one shared counter registry. nil
	// (the default) disables all of it with zero behavioral difference.
	Obs *obs.Telemetry
	// ObsRingSize bounds the completed-span ring. When Obs is set it
	// must already carry its ring and this field is ignored; when Obs is
	// nil and ObsRingSize is positive, New builds a Telemetry with a
	// ring of that size — the config-only way to enable tracing.
	ObsRingSize int
}

// RepairPolicy bounds per-replica registration repair.
type RepairPolicy struct {
	// MaxAttempts is the unicast retry budget per replica per
	// registration; once spent the node is marked lagging.
	MaxAttempts int
	// Backoff is the base of the exponential backoff between attempts.
	// Backoff time is simulated (accounted in reports, never slept) so
	// chaos runs stay deterministic and fast.
	Backoff time.Duration
}

// DefaultRepairPolicy mirrors reliable-multicast practice: a few NACK
// retries starting at 50 ms.
func DefaultRepairPolicy() RepairPolicy {
	return RepairPolicy{MaxAttempts: 3, Backoff: 50 * time.Millisecond}
}

// Propagation is the transfer scheme for registration diffs.
type Propagation int

// Propagation schemes (§3.2 uses multicast; the others are the ablation).
const (
	Multicast Propagation = iota
	UnicastFanout
	Pipeline
)

// DefaultConfig is the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Volume:        zvol.DefaultConfig(),
		RetentionDays: 7,
		ClusterSize:   qcow.DefaultClusterSize,
		Propagation:   Multicast,
		Repair:        DefaultRepairPolicy(),
		// The paper's boot path is cache-or-PFS; the peer exchange is this
		// repo's extension and stays opt-in (peer.DefaultPolicy enables it).
		Peer: peer.Policy{}.Normalize(),
	}
}

// Squirrel is one deployment over a cluster.
type Squirrel struct {
	cfg Config
	cl  *cluster.Cluster
	pfs *cluster.PFS

	sc *zvol.Volume // scVolume (storage nodes); internally locked

	// nodes maps compute node ID → cluster node; built once in New and
	// immutable, so hot paths resolve nodes lock-free.
	nodes map[string]*cluster.Node

	// peers is the serve-slot/load/breaker half of the peer block
	// exchange and (in IndexCentral mode) its content index; internally
	// locked (a leaf in the lock order — core may call it while holding
	// state, but index callbacks never re-enter core).
	peers *peer.Index
	// idx is the content-index chokepoint every announce, retraction,
	// and holder lookup routes through: centralIndex over peers, or
	// gossipIndex over the decentralized directory. Leaf-locked like
	// peers.
	idx contentIndex
	// gossip is the decentralized directory when cfg.Index is
	// IndexGossip, nil otherwise.
	gossip *gossip.Directory
	// gates holds one admission gate per compute node; built once in New
	// and immutable, each gate internally locked (a leaf like the index).
	gates map[string]*bootGate
	// bootReads records the size of every boot-trace read.
	bootReads *metrics.Histogram
	// tel/tr are the observability layer (cfg.Obs); both nil when
	// disabled, and every use is nil-safe. Set once in New, never
	// mutated, so they are read without locks.
	tel *obs.Telemetry
	tr  *obs.Tracer

	// faults is the live injector (cfg.Faults initially; SetFaults swaps
	// it). An atomic pointer so hot paths capture it once without locks.
	faults atomic.Pointer[fault.Injector]

	// Lock shards. imageLocks serializes operations on one image
	// (Register vs Deregister of the same ID); nodeLocks serializes
	// compound operations on one node's replica (receive vs sync vs
	// scrub vs resilver vs restart). Ordering rule in locks.go.
	imageLocks *keyLocks
	nodeLocks  *keyLocks

	// commitMu serializes the storage-side half of Register (snapshot
	// sequence, scVolume snapshot chain, wire encode) and snapshot GC,
	// plus the per-node apply-order tickets below. It is never held
	// across a propagation transfer or a replica apply.
	commitMu sync.Mutex
	snapSeq  int
	// applyTail is the per-node FIFO ticket chain: each registration, in
	// commit order, enqueues one ticket per destination node and waits on
	// its predecessor before applying, so concurrent registrations deliver
	// incremental snapshots to any single replica in snapshot order.
	applyTail map[string]chan struct{}

	// state guards the mutable deployment maps below. Critical sections
	// are short map reads/writes only — never a transfer, a volume apply,
	// or anything that blocks — so concurrent Boots contend here for
	// nanoseconds, not for the duration of an operation.
	state   sync.RWMutex
	cc      map[string]*zvol.Volume // ccVolume per compute node ID
	online  map[string]bool
	lagging map[string]bool // exhausted repair budget; heal via SyncNode
	images  map[string]*corpus.Image

	// Node lifecycle state (crash/restart, scrub, resilver).
	downSince map[string]time.Time       // when an offline node went down
	damaged   map[string][]zvol.BlockRef // known-damaged blocks per node
	lastScrub map[string]time.Time       // most recent scrub per node
}

// New creates a Squirrel deployment over cl. The PFS must be configured
// over cl's storage nodes; base VMIs are published there.
func New(cfg Config, cl *cluster.Cluster, pfs *cluster.PFS) (*Squirrel, error) {
	sc, err := zvol.New(cfg.Volume)
	if err != nil {
		return nil, err
	}
	cfg.Peer = cfg.Peer.Normalize()
	if cfg.Obs == nil && cfg.ObsRingSize > 0 {
		cfg.Obs = obs.New(cfg.ObsRingSize)
	}
	s := &Squirrel{
		cfg:        cfg,
		cl:         cl,
		pfs:        pfs,
		sc:         sc,
		nodes:      make(map[string]*cluster.Node, len(cl.Compute)),
		peers:      peer.NewIndex(),
		gates:      make(map[string]*bootGate, len(cl.Compute)),
		bootReads:  metrics.MustHistogram(metrics.ByteBuckets()...),
		tel:        cfg.Obs,
		tr:         cfg.Obs.Tracer(),
		imageLocks: newKeyLocks(),
		nodeLocks:  newKeyLocks(),
		applyTail:  make(map[string]chan struct{}),
		cc:         make(map[string]*zvol.Volume),
		online:     make(map[string]bool),
		lagging:    make(map[string]bool),
		images:     make(map[string]*corpus.Image),
		downSince:  make(map[string]time.Time),
		damaged:    make(map[string][]zvol.BlockRef),
		lastScrub:  make(map[string]time.Time),
	}
	s.faults.Store(cfg.Faults)
	s.peers.SetBreakerPolicy(cfg.Peer.Breaker)
	buildIndex(s)
	if s.tel != nil {
		// One registry: the peer index, the fault injector, and every
		// volume account into the telemetry counter set instead of
		// bespoke per-subsystem sets.
		s.peers.SetCounters(s.tel.Counters())
		cfg.Faults.SetCounters(s.tel.Counters())
		s.sc.SetCounters(s.tel.Counters())
	}
	for _, n := range cl.Compute {
		v, err := zvol.New(cfg.Volume)
		if err != nil {
			return nil, err
		}
		if s.tel != nil {
			v.SetCounters(s.tel.Counters())
		}
		s.nodes[n.ID] = n
		s.cc[n.ID] = v
		s.online[n.ID] = true
		s.gates[n.ID] = &bootGate{}
	}
	return s, nil
}

// SCVolume exposes the storage-side cVolume (for stats and tests).
func (s *Squirrel) SCVolume() *zvol.Volume { return s.sc }

// PeerIndex exposes the peer block exchange's content index (stats,
// experiments, and the squirrelctl -peers dump read it).
func (s *Squirrel) PeerIndex() *peer.Index { return s.peers }

// BootReadSizes is the histogram of boot-trace read sizes across every
// boot served by this deployment.
func (s *Squirrel) BootReadSizes() *metrics.Histogram { return s.bootReads }

// SetFaults swaps the deployment's fault injector. Chaos scenarios use
// this to bring a deployment up on a clean fabric and then turn it
// hostile for the phase under test. Operations capture the injector
// once at their start, so a swap never lands mid-operation.
func (s *Squirrel) SetFaults(inj *fault.Injector) {
	if s.tel != nil {
		inj.SetCounters(s.tel.Counters())
	}
	if s.gossip != nil {
		s.gossip.SetInjector(inj)
	}
	s.faults.Store(inj)
}

// injector is the live fault injector (nil = perfect network; every
// injector method is nil-safe).
func (s *Squirrel) injector() *fault.Injector { return s.faults.Load() }

// Telemetry exposes the deployment's observability state (nil when
// tracing is disabled); squirrelctl, experiments, and trace-based tests
// read snapshots and span trees through it.
func (s *Squirrel) Telemetry() *obs.Telemetry { return s.tel }

// reqCtx normalizes a request context: nil means Background, so the
// deprecated wrappers and tests can pass nothing.
func reqCtx(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// announceHoldingsLocked reconciles the peer index with what nodeID's
// ccVolume actually holds, restricted to registered images (a replica
// may still physically hold a deregistered object until the next
// snapshot removes it, but such objects are no longer servable).
// Callers hold s.state (read or write).
//
// A node with known-damaged blocks never announces: whatever it holds
// may be rotten, so it stays withdrawn from the index until a resilver
// (or full re-replication) proves it clean again. This is the index
// half of the "never serve a corrupt byte" invariant; the other half is
// the read-time checksum on every block.
//
// A node stranded behind an open network cut never announces either:
// holders nobody can reach are withdrawn for the duration of the
// partition (Shoal-style dynamic publishing), and the heal's
// anti-entropy pass re-announces them from their authoritative object
// sets. Routing every (re)announcement through this chokepoint is what
// keeps GC, sync, and registration merges from resurrecting cut nodes.
func (s *Squirrel) announceHoldingsLocked(nodeID string) {
	ccv := s.cc[nodeID]
	if ccv == nil {
		return
	}
	if len(s.damaged[nodeID]) > 0 || s.cl.Unreachable(nodeID) {
		s.idx.Retract(nodeID)
		return
	}
	var held []string
	for _, obj := range ccv.Objects() {
		if _, ok := s.images[obj]; ok {
			held = append(held, obj)
		}
	}
	s.idx.SetHoldings(nodeID, held)
}

// CCVolume returns a compute node's cVolume.
func (s *Squirrel) CCVolume(nodeID string) (*zvol.Volume, error) {
	s.state.RLock()
	defer s.state.RUnlock()
	v, ok := s.cc[nodeID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	return v, nil
}

// ccVolume is CCVolume without the error wrapping, for internal paths
// that already validated the node.
func (s *Squirrel) ccVolume(nodeID string) *zvol.Volume {
	s.state.RLock()
	v := s.cc[nodeID]
	s.state.RUnlock()
	return v
}

// SetOnline marks a compute node up or down. Offline nodes miss
// registration diffs and must SyncNode on their next boot (§3.5).
// Bringing a crashed node back up does not clear its lagging mark; the
// first boot (or an explicit SyncNode) heals it.
func (s *Squirrel) SetOnline(nodeID string, up bool) error {
	if _, ok := s.nodes[nodeID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	defer s.nodeLocks.lock(nodeID).Unlock()
	s.state.Lock()
	defer s.state.Unlock()
	s.online[nodeID] = up
	// Offline nodes cannot serve peer fetches, so their announcements are
	// withdrawn; on the way back up the node re-announces what it still
	// physically holds (possibly a stale-but-valid subset).
	if up {
		// A torn apply must be rolled back before the replica serves
		// anything: with the journal open, the object table shows the
		// half-applied state. Rolling back means the node missed that
		// registration, so it comes up lagging.
		if v := s.cc[nodeID]; v.NeedsRecovery() {
			v.Recover()
			s.lagging[nodeID] = true
			s.injector().Counters().Add("recover.rollback", 1)
		}
		delete(s.downSince, nodeID)
		s.idx.NodeUp(nodeID)
		s.announceHoldingsLocked(nodeID)
	} else {
		s.idx.NodeDown(nodeID)
	}
	return nil
}

// Registered lists registered image IDs, sorted.
func (s *Squirrel) Registered() []string {
	s.state.RLock()
	defer s.state.RUnlock()
	ids := make([]string, 0, len(s.images))
	for id := range s.images {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lagging lists nodes that exhausted their repair budget (or crashed
// mid-transfer) and await offline propagation, sorted.
func (s *Squirrel) Lagging() []string {
	s.state.RLock()
	defer s.state.RUnlock()
	ids := make([]string, 0, len(s.lagging))
	for id := range s.lagging {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RegisterRequest names the inputs of one registration.
type RegisterRequest struct {
	// Image is the VMI to register (its content generator doubles as the
	// PFS-published base image).
	Image *corpus.Image
	// At is the registration time; it drives snapshot retention.
	At time.Time
}

// RegisterReport describes one registration.
type RegisterReport struct {
	ImageID    string
	Snapshot   string
	CacheBytes int64   // boot working set captured on the storage node
	DiffBytes  int64   // incremental wire-stream size actually propagated
	Nodes      int     // replicas holding the snapshot when Register returns
	XferSec    float64 // propagation duration on the fabric

	// Fault/repair accounting; all zero on a perfect network.
	Faults      int      // transfer faults injected against this registration
	Retries     int      // unicast repair attempts
	RepairBytes int64    // bytes delivered by unicast repair
	RepairSec   float64  // simulated repair transfer + backoff time
	Lagging     []string // replicas left lagging after the retry budget
	Crashed     []string // replicas that crashed mid-transfer
	Torn        []string // replicas that crashed mid-APPLY (open journal)
}

// legResult accumulates one propagation leg's outcome. Each leg writes
// only its own result; Register merges them into the report in
// destination order afterwards, so the report is byte-identical whether
// the legs ran serially or fanned out across the worker pool.
type legResult struct {
	node *cluster.Node

	synced     bool
	crashed    bool
	torn       bool
	lagging    bool
	skipped    bool // context cancelled before this leg applied
	needRepair bool

	faults      int
	retries     int
	repairBytes int64
	repairSec   float64
}

// Register runs the paper's registration workflow (Fig 6) for a VMI that
// has been uploaded to the PFS: capture its boot working set by a first
// boot on a storage node, store it in the scVolume, snapshot, and
// propagate the snapshot diff to all online compute nodes.
//
// Registration is reliable and degradable: a replica that misses or
// rejects the one-to-many stream (lossy multicast, corruption, a crash
// mid-transfer) is repaired over unicast with bounded exponential
// backoff; a replica that exhausts the budget is marked lagging and
// healed later by SyncNode. Replica-side faults therefore never surface
// as a Register error — only storage-side failures do, and those roll
// back cleanly so the registration can be retried.
//
// Propagation legs fan out across a bounded worker pool (Config.Workers)
// and contend only on their own node's replica; unicast repair of the
// failed minority runs serially in destination order, which keeps every
// order-dependent fault draw in the same sequence as a serial run.
//
// Cancellation: a context cancelled before the storage-side commit
// aborts with nothing changed. Cancelled mid-propagation, the commit
// stands — the snapshot exists and some replicas may hold it — so the
// remaining legs are skipped and their nodes marked lagging (SyncNode
// heals them, exactly as if they had missed the stream), the image is
// registered, and the partial report is returned alongside the context
// error.
func (s *Squirrel) Register(ctx context.Context, req RegisterRequest) (RegisterReport, error) {
	ctx = reqCtx(ctx)
	im, at := req.Image, req.At
	if im == nil {
		return RegisterReport{}, fmt.Errorf("%w: registration without an image", ErrUnknownImage)
	}
	if err := ctx.Err(); err != nil {
		return RegisterReport{}, fmt.Errorf("core: register %s: %w", im.ID, err)
	}
	defer s.imageLocks.lock(im.ID).Unlock()
	s.state.RLock()
	_, dup := s.images[im.ID]
	s.state.RUnlock()
	if dup {
		return RegisterReport{}, fmt.Errorf("%w: %s", ErrRegistered, im.ID)
	}
	sp := s.tr.Op(obs.SpanFromContext(ctx), obs.OpRegister, "", im.ID)
	rep, err := s.register(ctx, sp, im, at)
	sp.AddBytes(rep.DiffBytes)
	sp.AddSim(rep.XferSec + rep.RepairSec)
	if rep.Faults > 0 {
		sp.Annotate("faults", int64(rep.Faults))
	}
	if rep.Retries > 0 {
		sp.Annotate("retries", int64(rep.Retries))
	}
	if n := len(rep.Lagging); n > 0 {
		sp.Annotate("lagging", int64(n))
	}
	if n := len(rep.Crashed) + len(rep.Torn); n > 0 {
		sp.Annotate("crashed", int64(n))
	}
	sp.Fail(err)
	sp.Finish()
	return rep, err
}

// register is the Register body. Caller holds the image lock.
func (s *Squirrel) register(ctx context.Context, sp *obs.Span, im *corpus.Image, at time.Time) (RegisterReport, error) {
	inj := s.injector()

	// ---- Commit phase: storage-side registration, serialized under
	// commitMu so the snapshot sequence and the scVolume snapshot chain
	// advance atomically. Errors here roll back cleanly.
	s.commitMu.Lock()
	// A previously failed attempt may have left the cache object behind
	// without registering the image; clear it so the retry does not hit
	// duplicate-object state.
	if s.sc.HasObject(im.ID) {
		if err := s.sc.DeleteObject(im.ID); err != nil {
			s.commitMu.Unlock()
			return RegisterReport{}, err
		}
	}
	// Publish the base VMI on the parallel file system if not present
	// (uploads are the provider's existing mechanism, §3.2).
	if _, err := s.pfs.Size(im.ID); err != nil {
		// ReadAtFunc, not a bare Generator: the PFS serves concurrent
		// boots of the same image.
		if err := s.pfs.AddFile(im.ID, im.RawSize(), im.ReadAtFunc()); err != nil {
			s.commitMu.Unlock()
			return RegisterReport{}, err
		}
	}
	// First boot happens on a storage node: the cache is created from
	// local reads, with no compute-node traffic.
	obj, err := s.sc.WriteObject(im.ID, im.CacheReader())
	if err != nil {
		s.commitMu.Unlock()
		return RegisterReport{}, err
	}
	prev := ""
	if snap := s.sc.LatestSnapshot(); snap != nil {
		prev = snap.Name
	}
	s.snapSeq++
	snapName := fmt.Sprintf("cVol@%06d-%s", s.snapSeq, im.ID)
	// rollback undoes the storage-side half of a failed registration so a
	// retry starts from clean state instead of duplicate-object errors.
	// Only valid under commitMu, before any replica saw the snapshot.
	rollback := func(snapTaken bool) {
		if snapTaken {
			s.sc.DeleteSnapshot(snapName)
		}
		s.sc.DeleteObject(im.ID)
		s.snapSeq--
	}
	if _, err := s.sc.Snapshot(snapName, at); err != nil {
		rollback(false)
		s.commitMu.Unlock()
		return RegisterReport{}, err
	}
	stream, err := s.sc.Send(prev, snapName)
	if err != nil {
		rollback(true)
		s.commitMu.Unlock()
		return RegisterReport{}, err
	}
	// Encode once: the wire stream is both the multicast payload and the
	// unit fault injection mutates.
	var wireBuf bytes.Buffer
	if _, err := stream.Encode(&wireBuf); err != nil {
		rollback(true)
		s.commitMu.Unlock()
		return RegisterReport{}, err
	}
	// A cancellation that lands before anything left the storage node
	// still rolls back; past this point the commit stands.
	if err := ctx.Err(); err != nil {
		rollback(true)
		s.commitMu.Unlock()
		return RegisterReport{}, fmt.Errorf("core: register %s: %w", im.ID, err)
	}
	wire := wireBuf.Bytes()
	// Prepare the stream once: per-payload hashing and compression are
	// paid here instead of once per replica, and every clean leg's
	// receive collapses to map updates that alias these stored bytes
	// (zvol/prepared.go). Faulted legs re-decode their mutated wire bytes
	// and take the full verifying Receive path as before.
	prep := s.sc.Prepare(stream)
	rep := RegisterReport{
		ImageID:    im.ID,
		Snapshot:   snapName,
		CacheBytes: obj.Size,
		DiffBytes:  int64(len(wire)),
	}
	// Propagate to every online, in-sync node. Lagging nodes are skipped:
	// they lack the previous snapshot, so the incremental stream cannot
	// apply — SyncNode will catch them up wholesale instead.
	var dsts []*cluster.Node
	s.state.RLock()
	for _, n := range s.cl.Compute {
		if s.online[n.ID] && !s.lagging[n.ID] {
			dsts = append(dsts, n)
		}
	}
	s.state.RUnlock()
	// Per-node FIFO tickets, allocated in commit order: a leg waits for
	// the previous registration's leg on the same node before applying,
	// so incremental snapshots land on every replica in snapshot order.
	type ticket struct{ wait, done chan struct{} }
	tickets := make([]ticket, len(dsts))
	for i, d := range dsts {
		done := make(chan struct{})
		tickets[i] = ticket{wait: s.applyTail[d.ID], done: done}
		s.applyTail[d.ID] = done
	}
	s.commitMu.Unlock()

	src := s.cl.Storage[0]
	op := "register:" + snapName
	// The one-to-many transfer draws every leg's attempt-0 fault verdict
	// serially in destination order (the only order-sensitive injector
	// state is the shared crash budget), so the parallel apply phase
	// below starts from pre-decided outcomes.
	var deliv []cluster.Delivery
	switch s.cfg.Propagation {
	case UnicastFanout:
		deliv, rep.XferSec = s.cl.UnicastStream(op, src, dsts, wire, inj)
	case Pipeline:
		deliv, rep.XferSec = s.cl.PipelineStream(op, src, dsts, wire, inj)
	default:
		deliv, rep.XferSec = s.cl.MulticastStream(op, src, dsts, wire, inj)
	}
	// Pre-create the per-leg propagate spans serially so the span tree's
	// child order matches destination order regardless of worker timing.
	dsps := make([]*obs.Span, len(deliv))
	for i, dv := range deliv {
		dsps[i] = sp.Child(obs.OpPropagate, dv.Node.ID, im.ID)
	}
	legs := make([]legResult, len(deliv))

	// ---- Apply phase (parallel): each leg locks only its own node and
	// applies the pre-decided delivery. No fault draws happen here, so
	// scheduling cannot change any outcome.
	conc.ForEach(len(deliv), s.cfg.Workers, func(i int) {
		dv, leg, dsp := deliv[i], &legs[i], dsps[i]
		leg.node = dv.Node
		if t := tickets[i].wait; t != nil {
			select {
			case <-t:
			case <-ctx.Done():
				leg.skipped = true
				close(tickets[i].done)
				dsp.Annotate("cancelled", 1)
				dsp.Finish()
				return
			}
		}
		if ctx.Err() != nil {
			leg.skipped = true
			close(tickets[i].done)
			dsp.Annotate("cancelled", 1)
			dsp.Finish()
			return
		}
		nl := s.nodeLocks.lock(dv.Node.ID)
		if !dv.OK() {
			leg.faults++
			dsp.Annotate("fault."+dv.Fault.String(), 1)
		}
		switch {
		case dv.Fault == fault.Partition:
			// The replica sits across an open cut: the stream never
			// reached it and unicast repair cannot either. Skip the retry
			// ladder outright and mark it lagging — the post-heal
			// anti-entropy SyncNode pass catches it up.
			s.markLagging(dv.Node.ID)
			leg.lagging = true
			inj.Counters().Add("repair.partitioned", 1)
			dsp.Annotate("partitioned", 1)
		case dv.Fault == fault.Crash:
			s.crashReplica(dv.Node.ID, at, inj)
			leg.crashed = true
		case dv.Fault == fault.Torn:
			s.tornReplica(op, dv.Node.ID, stream, at, inj)
			leg.torn = true
		case s.replicaCaughtUp(dv.Node.ID, snapName):
			// A concurrent SyncNode already delivered this snapshot
			// wholesale; the leg's work is done.
			leg.synced = true
		case s.applyDelivery(dsp, dv, stream, prep):
			dsp.AddBytes(int64(len(wire)))
			leg.synced = true
		default:
			leg.needRepair = true
		}
		nl.Unlock()
		if !leg.needRepair {
			close(tickets[i].done)
			dsp.Finish()
		}
	})

	// ---- Repair phase (serial, destination order): the NACK retry loop
	// draws injector verdicts per attempt, and the shared crash budget
	// makes those draws order-dependent — running them in destination
	// order keeps chaos runs byte-identical to a serial registration.
	for i := range legs {
		leg := &legs[i]
		if !leg.needRepair {
			continue
		}
		dsp := dsps[i]
		nl := s.nodeLocks.lock(leg.node.ID)
		if s.replicaCaughtUp(leg.node.ID, snapName) {
			leg.synced = true
		} else if s.repairReplica(dsp, op, leg.node, stream, prep, wire, at, inj, leg) {
			leg.synced = true
		} else if s.isOnline(leg.node.ID) {
			s.markLagging(leg.node.ID)
			leg.lagging = true
			inj.Counters().Add("repair.lagging", 1)
			dsp.Annotate("exhausted", 1)
		}
		nl.Unlock()
		close(tickets[i].done)
		dsp.Finish()
	}

	// ---- Merge phase: fold per-leg results into the report in
	// destination order (the order the old serial loop produced).
	var synced, cancelled []string
	for i := range legs {
		leg := &legs[i]
		rep.Faults += leg.faults
		rep.Retries += leg.retries
		rep.RepairBytes += leg.repairBytes
		rep.RepairSec += leg.repairSec
		switch {
		case leg.synced:
			rep.Nodes++
			synced = append(synced, leg.node.ID)
		case leg.crashed:
			rep.Crashed = append(rep.Crashed, leg.node.ID)
		case leg.torn:
			rep.Torn = append(rep.Torn, leg.node.ID)
		case leg.lagging:
			rep.Lagging = append(rep.Lagging, leg.node.ID)
		case leg.skipped:
			cancelled = append(cancelled, leg.node.ID)
		}
	}
	s.state.Lock()
	s.images[im.ID] = im
	// Replicas that applied the snapshot announce their (updated) holdings
	// to the peer index — the publish half of the peer block exchange.
	for _, nodeID := range synced {
		s.announceHoldingsLocked(nodeID)
	}
	// Skipped legs missed the snapshot exactly like an exhausted repair
	// budget: mark them lagging for SyncNode to heal.
	for _, nodeID := range cancelled {
		if s.online[nodeID] {
			s.lagging[nodeID] = true
			rep.Lagging = append(rep.Lagging, nodeID)
		}
	}
	s.state.Unlock()
	if len(cancelled) > 0 {
		inj.Counters().Add("register.cancelled_legs", int64(len(cancelled)))
		return rep, fmt.Errorf("core: register %s cancelled mid-propagation: %w", im.ID, ctx.Err())
	}
	return rep, nil
}

// snapSeqOf extracts the monotone commit sequence from a snapshot name
// ("cVol@%06d-<image>"); 0 when the name has a different shape.
func snapSeqOf(name string) int {
	const pfx = "cVol@"
	if !strings.HasPrefix(name, pfx) || len(name) < len(pfx)+6 {
		return 0
	}
	seq := 0
	for _, c := range name[len(pfx) : len(pfx)+6] {
		if c < '0' || c > '9' {
			return 0
		}
		seq = seq*10 + int(c-'0')
	}
	return seq
}

// replicaCaughtUp reports whether a node's replica already covers
// snapName, so the propagation leg must be skipped: either the replica
// contains that very snapshot, or it sits at a later one — a concurrent
// SyncNode sends one cumulative diff straight to the scVolume's head,
// which subsumes every registration in between. Applying an older
// incremental on top of a newer head would corrupt the replica's
// snapshot order, so such legs count as delivered. Never true in a
// serial run (nothing can overtake the leg), which keeps single-threaded
// chaos runs byte-identical. Caller holds the node lock.
func (s *Squirrel) replicaCaughtUp(nodeID, snapName string) bool {
	ccv := s.ccVolume(nodeID)
	if ccv == nil {
		return false
	}
	if _, err := ccv.FindSnapshot(snapName); err == nil {
		return true
	}
	latest := ccv.LatestSnapshot()
	return latest != nil && snapSeqOf(latest.Name) >= snapSeqOf(snapName)
}

// isOnline reads one node's online flag.
func (s *Squirrel) isOnline(nodeID string) bool {
	s.state.RLock()
	up := s.online[nodeID]
	s.state.RUnlock()
	return up
}

// markLagging flags one node for offline propagation.
func (s *Squirrel) markLagging(nodeID string) {
	s.state.Lock()
	s.lagging[nodeID] = true
	s.state.Unlock()
}

// applyDelivery tries to apply one delivery to its replica: an intact
// delivery applies the prepared stream (hashing and compression already
// done, stored payloads aliased); a damaged one is decoded from its wire
// bytes, which the stream CRC and Receive's per-block checksums almost
// always reject. Caller holds the node lock.
func (s *Squirrel) applyDelivery(parent *obs.Span, dv cluster.Delivery, st *zvol.Stream, prep *zvol.PreparedStream) bool {
	rst, rprep := st, prep
	if dv.Fault != fault.None {
		if len(dv.Wire) == 0 {
			return false
		}
		decoded, err := zvol.DecodeStream(bytes.NewReader(dv.Wire))
		if err != nil {
			return false
		}
		rst, rprep = decoded, nil
	}
	rsp := parent.Child(obs.OpReceive, dv.Node.ID, "")
	var ok bool
	if rprep != nil {
		ok = s.ccVolume(dv.Node.ID).ReceivePrepared(rprep) == nil
	} else {
		ok = s.ccVolume(dv.Node.ID).Receive(rst) == nil
	}
	if ok {
		rsp.AddBytes(rst.SizeBytes())
	} else {
		rsp.Annotate("rejected", 1)
	}
	rsp.Finish()
	return ok
}

// crashReplica records a mid-transfer node crash: the node drops offline
// and is marked lagging so its first boot after recovery heals it.
// Caller holds the node lock.
func (s *Squirrel) crashReplica(nodeID string, at time.Time, inj *fault.Injector) {
	s.state.Lock()
	s.online[nodeID] = false
	s.lagging[nodeID] = true
	s.downSince[nodeID] = at
	s.state.Unlock()
	s.idx.NodeDown(nodeID)
	inj.Counters().Add("repair.crashed", 1)
}

// tornReplica records a torn apply: the replica received the stream
// intact but the node crashed partway through `zfs recv`. The injected
// crash offset is a pure function of (seed, op, node), so a chaos run
// tears the same replicas at the same step every time. The node goes
// down with its receive journal open; the restart audit (or SyncNode)
// rolls it back. Caller holds the node lock.
func (s *Squirrel) tornReplica(op, nodeID string, st *zvol.Stream, at time.Time, inj *fault.Injector) {
	ccv := s.ccVolume(nodeID)
	ccv.SetReceiveCrashPoint(inj.TornStep(op, nodeID, st.ApplySteps()))
	_ = ccv.Receive(st) // dies mid-apply: ErrTorn, journal left open
	s.state.Lock()
	s.online[nodeID] = false
	s.lagging[nodeID] = true
	s.downSince[nodeID] = at
	s.state.Unlock()
	s.idx.NodeDown(nodeID)
	inj.Counters().Add("repair.torn", 1)
}

// repairReplica retries one failed replica over unicast with bounded
// exponential backoff — the NACK path of reliable multicast. Backoff is
// simulated into the report, never slept. Returns true once the replica
// holds the snapshot; false when the node crashed or the budget ran out.
// Caller holds the node lock; accounting goes into leg, not the shared
// report.
func (s *Squirrel) repairReplica(parent *obs.Span, op string, node *cluster.Node, st *zvol.Stream, prep *zvol.PreparedStream, wire []byte, at time.Time, inj *fault.Injector, leg *legResult) bool {
	rsp := parent.Child(obs.OpRepair, node.ID, "")
	defer rsp.Finish()
	ccv := s.ccVolume(node.ID)
	pol := s.cfg.Repair
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = DefaultRepairPolicy().MaxAttempts
	}
	if pol.Backoff <= 0 {
		pol.Backoff = DefaultRepairPolicy().Backoff
	}
	src := s.cl.Storage[0]
	backoff := pol.Backoff
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		// A cut that opened mid-registration makes further NACKs
		// pointless: stop retrying and let the caller mark the node
		// lagging for the post-heal sync.
		if !s.cl.Reachable(src.ID, node.ID) {
			inj.Counters().Add("repair.partitioned", 1)
			rsp.Annotate("partitioned", 1)
			return false
		}
		leg.retries++
		leg.repairSec += backoff.Seconds()
		rsp.Annotate("attempts", 1)
		rsp.AddSim(backoff.Seconds())
		backoff *= 2
		inj.Counters().Add("repair.retries", 1)
		kind, got := inj.Strike(op, node.ID, attempt, wire)
		if kind != fault.None {
			leg.faults++
			rsp.Annotate("fault."+kind.String(), 1)
		}
		if kind == fault.Crash {
			s.crashReplica(node.ID, at, inj)
			leg.crashed = true
			return false
		}
		if kind == fault.Torn {
			s.tornReplica(op, node.ID, st, at, inj)
			leg.torn = true
			return false
		}
		src.Send(int64(len(wire))) // the source retransmits in full
		if got == nil {
			continue // lost entirely; back off and renack
		}
		node.Recv(int64(len(got)))
		leg.repairBytes += int64(len(got))
		leg.repairSec += s.cl.Fabric.TransferSec(int64(len(got)))
		rsp.AddBytes(int64(len(got)))
		rsp.AddSim(s.cl.Fabric.TransferSec(int64(len(got))))
		inj.Counters().Add("repair.bytes", int64(len(got)))
		var rerr error
		if kind == fault.None && prep != nil {
			// Clean retransmission: reuse the prepared stream, same as an
			// intact multicast leg.
			rerr = ccv.ReceivePrepared(prep)
		} else {
			decoded, err := zvol.DecodeStream(bytes.NewReader(got))
			if err != nil {
				continue // truncation/corruption caught by the stream CRC
			}
			rerr = ccv.Receive(decoded)
		}
		if rerr != nil {
			continue
		}
		return true
	}
	rsp.Annotate("exhausted", 1)
	return false
}

// Deregister removes a VMI: the original image and its scVolume cache are
// deleted. ccVolumes learn about the removal with the next snapshot
// (§3.4) — Squirrel deliberately takes no snapshot here.
func (s *Squirrel) Deregister(id string) error {
	defer s.imageLocks.lock(id).Unlock()
	s.state.RLock()
	_, ok := s.images[id]
	s.state.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownImage, id)
	}
	if err := s.sc.DeleteObject(id); err != nil {
		return err
	}
	s.state.Lock()
	delete(s.images, id)
	s.state.Unlock()
	// Replicas may physically hold the object until the next snapshot
	// propagates the delete, but a deregistered image is not servable:
	// withdraw it from the peer index immediately.
	s.idx.WithdrawObject(id)
	return nil
}

// GarbageCollect runs the daily retention job on the scVolume and all
// ccVolumes, keeping snapshots younger than the retention window plus the
// latest snapshot. Returns the number of snapshots destroyed.
func (s *Squirrel) GarbageCollect(now time.Time) int {
	sp := s.tr.StartOp(obs.OpGC, "", "")
	window := time.Duration(s.cfg.RetentionDays) * 24 * time.Hour
	s.commitMu.Lock()
	n := len(s.sc.GarbageCollect(now, window))
	s.commitMu.Unlock()
	ids := make([]string, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		nl := s.nodeLocks.lock(id)
		s.state.Lock()
		v := s.cc[id]
		n += len(v.GarbageCollect(now, window))
		// Retention changes what each replica can serve going forward;
		// reconcile announcements against the live object sets.
		if s.online[id] {
			s.announceHoldingsLocked(id)
		}
		s.state.Unlock()
		nl.Unlock()
	}
	sp.Annotate("destroyed", int64(n))
	sp.Finish()
	return n
}

// DropReplica deletes nodeID's local copy of one cache object and
// withdraws its peer-index announcement. This is the hook experiments,
// tests, and capacity policies use to manufacture cold-boot misses (or
// reclaim replica space) without taking the node offline: the next boot
// of imageID on nodeID must fetch from a peer or the PFS.
func (s *Squirrel) DropReplica(nodeID, imageID string) error {
	if _, ok := s.nodes[nodeID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	defer s.nodeLocks.lock(nodeID).Unlock()
	ccv := s.ccVolume(nodeID)
	if ccv.HasObject(imageID) {
		if err := ccv.DeleteObject(imageID); err != nil {
			return err
		}
	}
	s.idx.Withdraw(imageID, nodeID)
	return nil
}
