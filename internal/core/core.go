// Package core implements Squirrel itself (§3 of the paper): a fully
// replicated VMI-cache storage system that scatter-hoards the boot
// working sets of all registered VM images on all compute nodes of an
// IaaS data center.
//
// Squirrel maintains one scVolume on the storage side and one ccVolume
// per compute node (all cVolumes are deduplicated + compressed zvol
// volumes). The main operations are:
//
//	Register    first-boot the new VMI on a storage node to capture its
//	            boot working set, store the cache in the scVolume, take a
//	            snapshot, and multicast the incremental snapshot diff to
//	            every online compute node (§3.2, Fig 6).
//	Boot        chain CoW → ccVolume cache → base VMI for a VM start on a
//	            compute node (§3.3, Fig 7); with a warm replica the boot
//	            performs zero network I/O.
//	Deregister  drop the VMI and its cache from the scVolume; the removal
//	            reaches ccVolumes with the next snapshot (§3.4).
//	GarbageCollect  daily cron job destroying snapshots outside the
//	            retention window n, always keeping the latest (§3.4).
//	SyncNode    offline propagation for nodes that missed registrations:
//	            incremental catch-up when their latest snapshot is still
//	            retained, full re-replication otherwise (§3.5).
package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/qcow"
	"repro/internal/zvol"
)

// Config parameterizes a Squirrel deployment.
type Config struct {
	// Volume is the cVolume policy (block size, codec, dedup); the paper
	// settles on 64 KB + gzip6 + dedup.
	Volume zvol.Config
	// RetentionDays is the paper's n: how long snapshots are kept for
	// offline propagation.
	RetentionDays int
	// ClusterSize is the QCOW2 cluster granularity of CoW/cache images.
	ClusterSize int64
	// Propagation selects the one-to-many diff transfer scheme.
	Propagation Propagation
}

// Propagation is the transfer scheme for registration diffs.
type Propagation int

// Propagation schemes (§3.2 uses multicast; the others are the ablation).
const (
	Multicast Propagation = iota
	UnicastFanout
	Pipeline
)

// DefaultConfig is the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Volume:        zvol.DefaultConfig(),
		RetentionDays: 7,
		ClusterSize:   qcow.DefaultClusterSize,
		Propagation:   Multicast,
	}
}

// Squirrel is one deployment over a cluster.
type Squirrel struct {
	cfg Config
	cl  *cluster.Cluster
	pfs *cluster.PFS

	sc     *zvol.Volume            // scVolume (storage nodes)
	cc     map[string]*zvol.Volume // ccVolume per compute node ID
	online map[string]bool

	images  map[string]*corpus.Image // registered VMIs by ID
	snapSeq int
}

// Errors.
var (
	ErrNotRegistered = errors.New("core: image not registered")
	ErrRegistered    = errors.New("core: image already registered")
	ErrUnknownNode   = errors.New("core: unknown compute node")
	ErrNodeOffline   = errors.New("core: compute node offline")
)

// New creates a Squirrel deployment over cl. The PFS must be configured
// over cl's storage nodes; base VMIs are published there.
func New(cfg Config, cl *cluster.Cluster, pfs *cluster.PFS) (*Squirrel, error) {
	sc, err := zvol.New(cfg.Volume)
	if err != nil {
		return nil, err
	}
	s := &Squirrel{
		cfg:    cfg,
		cl:     cl,
		pfs:    pfs,
		sc:     sc,
		cc:     make(map[string]*zvol.Volume),
		online: make(map[string]bool),
		images: make(map[string]*corpus.Image),
	}
	for _, n := range cl.Compute {
		v, err := zvol.New(cfg.Volume)
		if err != nil {
			return nil, err
		}
		s.cc[n.ID] = v
		s.online[n.ID] = true
	}
	return s, nil
}

// SCVolume exposes the storage-side cVolume (for stats and tests).
func (s *Squirrel) SCVolume() *zvol.Volume { return s.sc }

// CCVolume returns a compute node's cVolume.
func (s *Squirrel) CCVolume(nodeID string) (*zvol.Volume, error) {
	v, ok := s.cc[nodeID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	return v, nil
}

// SetOnline marks a compute node up or down. Offline nodes miss
// registration diffs and must SyncNode on their next boot (§3.5).
func (s *Squirrel) SetOnline(nodeID string, up bool) error {
	if _, ok := s.cc[nodeID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	s.online[nodeID] = up
	return nil
}

// Registered lists registered image IDs, sorted.
func (s *Squirrel) Registered() []string {
	ids := make([]string, 0, len(s.images))
	for id := range s.images {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RegisterReport describes one registration.
type RegisterReport struct {
	ImageID    string
	Snapshot   string
	CacheBytes int64   // boot working set captured on the storage node
	DiffBytes  int64   // incremental stream size actually propagated
	Nodes      int     // online nodes that received the diff
	XferSec    float64 // propagation duration on the fabric
}

// Register runs the paper's registration workflow (Fig 6) for a VMI that
// has been uploaded to the PFS: capture its boot working set by a
// first boot on a storage node, store it in the scVolume, snapshot, and
// propagate the snapshot diff to all online compute nodes. at is the
// registration time (drives snapshot retention).
func (s *Squirrel) Register(im *corpus.Image, at time.Time) (RegisterReport, error) {
	if _, dup := s.images[im.ID]; dup {
		return RegisterReport{}, fmt.Errorf("%w: %s", ErrRegistered, im.ID)
	}
	// Publish the base VMI on the parallel file system if not present
	// (uploads are the provider's existing mechanism, §3.2).
	if _, err := s.pfs.Size(im.ID); err != nil {
		gen := corpus.NewGenerator(im)
		if err := s.pfs.AddFile(im.ID, im.RawSize(), gen.ReadAt); err != nil {
			return RegisterReport{}, err
		}
	}
	// First boot happens on a storage node: the cache is created from
	// local reads, with no compute-node traffic.
	obj, err := s.sc.WriteObject(im.ID, im.CacheReader())
	if err != nil {
		return RegisterReport{}, err
	}
	prev := ""
	if snap := s.sc.LatestSnapshot(); snap != nil {
		prev = snap.Name
	}
	s.snapSeq++
	snapName := fmt.Sprintf("cVol@%06d-%s", s.snapSeq, im.ID)
	if _, err := s.sc.Snapshot(snapName, at); err != nil {
		return RegisterReport{}, err
	}
	stream, err := s.sc.Send(prev, snapName)
	if err != nil {
		return RegisterReport{}, err
	}
	// Account the exact multicast payload: the encoded wire stream.
	wireSize, err := stream.Encode(io.Discard)
	if err != nil {
		return RegisterReport{}, err
	}
	rep := RegisterReport{
		ImageID:    im.ID,
		Snapshot:   snapName,
		CacheBytes: obj.Size,
		DiffBytes:  wireSize,
	}
	// Propagate to every online node; each replica applies the stream.
	var dsts []*cluster.Node
	for _, n := range s.cl.Compute {
		if s.online[n.ID] {
			dsts = append(dsts, n)
		}
	}
	src := s.cl.Storage[0]
	switch s.cfg.Propagation {
	case UnicastFanout:
		rep.XferSec = s.cl.UnicastFanout(src, dsts, wireSize)
	case Pipeline:
		rep.XferSec = s.cl.Pipeline(src, dsts, wireSize)
	default:
		rep.XferSec = s.cl.Multicast(src, dsts, wireSize)
	}
	for _, n := range dsts {
		if err := s.cc[n.ID].Receive(stream); err != nil {
			return RegisterReport{}, fmt.Errorf("core: replica %s: %w", n.ID, err)
		}
	}
	rep.Nodes = len(dsts)
	s.images[im.ID] = im
	return rep, nil
}

// Deregister removes a VMI: the original image and its scVolume cache are
// deleted. ccVolumes learn about the removal with the next snapshot
// (§3.4) — Squirrel deliberately takes no snapshot here.
func (s *Squirrel) Deregister(id string) error {
	if _, ok := s.images[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotRegistered, id)
	}
	if err := s.sc.DeleteObject(id); err != nil {
		return err
	}
	delete(s.images, id)
	return nil
}

// GarbageCollect runs the daily retention job on the scVolume and all
// ccVolumes, keeping snapshots younger than the retention window plus the
// latest snapshot. Returns the number of snapshots destroyed.
func (s *Squirrel) GarbageCollect(now time.Time) int {
	window := time.Duration(s.cfg.RetentionDays) * 24 * time.Hour
	n := len(s.sc.GarbageCollect(now, window))
	for _, v := range s.cc {
		n += len(v.GarbageCollect(now, window))
	}
	return n
}
