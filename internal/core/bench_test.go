package core

import (
	"context"
	"testing"

	"repro/internal/fault"
)

// benchBootWave registers a few images once, then times warm boot waves
// across the whole cluster. Run with traced=true and traced=false to
// measure what span recording costs on the hottest operator-facing
// path; cmd/benchjson pairs the two results into an overhead metric,
// and the acceptance bar is under 5%.
func benchBootWave(b *testing.B, traced bool) {
	sq, cl, repo := obsScriptDeployment(b, 8, fault.Plan{Seed: 7}, traced)
	const images = 4
	for i := 0; i < images; i++ {
		if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)}); err != nil {
			b.Fatal(err)
		}
	}
	boots := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for img := 0; img < images; img++ {
			for _, n := range cl.Compute {
				if _, err := sq.Boot(context.Background(), BootRequest{Image: repo.Images[img].ID, Node: n.ID, Verify: false}); err != nil {
					b.Fatal(err)
				}
				boots++
			}
		}
	}
	b.ReportMetric(float64(boots)/float64(b.N), "boots/op")
}

func BenchmarkBootWaveTraced(b *testing.B)   { benchBootWave(b, true) }
func BenchmarkBootWaveUntraced(b *testing.B) { benchBootWave(b, false) }
