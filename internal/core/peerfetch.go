package core

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/peer"
)

// peerFetcher resolves one boot's cold-cache misses against replicas on
// neighboring compute nodes: the lookup half of the peer block exchange.
// For every miss inside the image's cache extents it asks the content
// index for holders, picks the least-loaded eligible source (never the
// booting node itself, never offline, lagging, or unreachable nodes,
// never a node with all serve slots busy), transfers the range over
// cluster unicast with exact NIC byte accounting, and on a fault fails
// over to the next candidate. When the attempt budget is spent the
// caller falls back to the PFS, so a boot always completes.
//
// With Policy.Hedge set, a transfer whose source draws a slow serve is
// cloned to the next-best holder after the hedge threshold: first byte
// wins, and the losing leg is cancelled through the boot's context
// before it moves a payload byte. Every serve outcome also feeds the
// index's per-peer circuit breakers, so a peer that keeps failing stops
// being selected at all.
//
// Transfer faults come from the deployment's fault.Injector under the op
// key "peerfetch:<image>:<node>" with a per-boot attempt sequence, so a
// chaos run's peer-fetch outcomes are replayable from the plan seed and
// the boot order alone.
type peerFetcher struct {
	s        *Squirrel
	ctx      context.Context // the boot's context; hedge legs derive from it
	imageID  string
	bootNode *cluster.Node
	policy   peer.Policy
	faults   *fault.Injector // captured at boot start (SetFaults may swap mid-run)
	op       string
	sp       *obs.Span // the owning boot span; each fetch records a peerFetch child

	seq       int               // transfer attempts so far (fault lane)
	fetchNo   int               // fetches so far (slow-serve lane)
	data      map[string][]byte // materialized cache object per source
	served    map[string]int64  // bytes served per source
	fallbacks int               // misses the peer path gave up on

	hedgesFired int     // slow serves that cloned a second leg
	hedgesWon   int     // hedge legs that delivered the range
	trips       int     // circuit breakers this boot's failures tripped
	stallSec    float64 // simulated stall time slow serves cost this boot
}

func (s *Squirrel) newPeerFetcher(ctx context.Context, im *corpus.Image, node *cluster.Node) *peerFetcher {
	inj := s.injector()
	return &peerFetcher{
		s:        s,
		ctx:      reqCtx(ctx),
		imageID:  im.ID,
		bootNode: node,
		policy:   s.cfg.Peer,
		faults:   inj,
		op:       "peerfetch:" + im.ID + ":" + node.ID,
		data:     make(map[string][]byte),
		served:   make(map[string]int64),
	}
}

// fetch fills dst from a peer replica's cache object at [base,
// base+len(dst)), trying up to MaxAttempts candidate sources. It returns
// false when no peer could serve the range — the caller then reads the
// PFS.
func (f *peerFetcher) fetch(dst []byte, base int64) bool {
	ctr := f.s.peers.Counters()
	fsp := f.sp.Child(obs.OpPeerFetch, "", f.imageID)
	f.fetchNo++
	tried := make(map[string]bool)
	for attempt := 0; attempt < f.policy.MaxAttempts; attempt++ {
		src, release, ok, busy := f.acquire(tried)
		if !ok {
			if busy {
				ctr.Add("peer.busy", 1)
				fsp.Annotate("busy", 1)
			} else if attempt == 0 {
				// No holder anywhere: a pure index miss, not a fallback
				// after failed transfers.
				ctr.Add("peer.miss", 1)
				fsp.Annotate("miss", 1)
				fsp.Finish()
				return false
			}
			break
		}
		tried[src] = true
		fsp.Annotate("attempts", 1)
		if winner, ok := f.transferHedged(fsp, tried, src, release, dst, base); ok {
			ctr.Add("peer.hit", 1)
			ctr.Add("peer.bytes", int64(len(dst)))
			f.served[winner] += int64(len(dst))
			fsp.SetNode(winner)
			fsp.AddBytes(int64(len(dst)))
			fsp.AddSim(f.s.cl.Fabric.TransferSec(int64(len(dst))))
			fsp.Finish()
			return true
		}
	}
	f.fallbacks++
	ctr.Add("peer.fallback", 1)
	fsp.Annotate("fallback", 1)
	fsp.Finish()
	return false
}

// transferHedged runs one acquired transfer, hedging it onto a second
// holder when the primary draws a slow serve. It returns the node that
// delivered the range ("" on failure). The slow-serve lane is a pure
// function of (op, source, fetchNo), so which leg leads — and therefore
// which one wins under identical fault draws — is deterministic no
// matter how many boots run concurrently.
func (f *peerFetcher) transferHedged(fsp *obs.Span, tried map[string]bool,
	src string, release func(int64), dst []byte, base int64) (string, bool) {
	ctr := f.s.peers.Counters()
	slow := f.faults.SlowServe(f.op, src, f.fetchNo)
	stall := func() {
		f.stallSec += f.faults.Plan().SlowSec
		fsp.Annotate("slow", 1)
	}
	if !slow || !f.policy.Hedge {
		if slow {
			// Unhedged deployments absorb the stall — the baseline the
			// slow-peer benchmark compares the hedged path against.
			stall()
		}
		return src, f.transfer(src, dst, base, release)
	}
	// The primary stalled past the hedge threshold: clone the fetch to
	// the next-best holder. No second holder means nothing to race —
	// absorb the stall like an unhedged fetch.
	h, hrel, ok, _ := f.acquire(tried)
	if !ok {
		stall()
		return src, f.transfer(src, dst, base, release)
	}
	tried[h] = true
	f.hedgesFired++
	ctr.Add("peer.hedge_fired", 1)
	fsp.Annotate("hedged", 1)

	// First byte wins: the un-stalled leg leads; if the hedge leg drew a
	// slow serve too, the primary keeps the lead (its stall started
	// first) and the stall is paid either way.
	first, firstRel := h, hrel
	second, secondRel := src, release
	hslow := f.faults.SlowServe(f.op, h, f.fetchNo)
	if hslow {
		first, firstRel = src, release
		second, secondRel = h, hrel
		stall()
	}
	// The losing leg is cancelled through the boot's context plumbing
	// before it moves a payload byte; releasing its serve slot is
	// idempotent (sync.Once), so a leg promoted after the leader faults
	// releases cleanly even though the watcher fires too.
	hctx, cancel := context.WithCancel(f.ctx)
	loserDone := make(chan struct{})
	go func() {
		<-hctx.Done()
		secondRel(0)
		close(loserDone)
	}()
	win := func(node string) (string, bool) {
		cancel()
		<-loserDone
		if node == first {
			ctr.Add("peer.hedge_cancelled", 1)
		}
		if node == h {
			f.hedgesWon++
			ctr.Add("peer.hedge_won", 1)
		}
		return node, true
	}
	if f.transfer(first, dst, base, firstRel) {
		return win(first)
	}
	if !hslow {
		// The fast hedge leg faulted; the transfer falls back to the
		// stalled primary, so its stall is paid after all.
		stall()
	}
	if f.transfer(second, dst, base, secondRel) {
		return win(second)
	}
	cancel()
	<-loserDone
	return "", false
}

// acquire reserves a serve slot on the best eligible holder. Holders
// come from the configured content index as seen from the booting node
// (exact for central, a bounded-staleness owner view for gossip);
// deployment eligibility (online, reachable, not lagging, replica
// actually present) is then snapshotted under the state read-lock, and
// the serve-slot index is consulted without core locks held, keeping
// lock order one-way (state before index locks, never the reverse).
// The eligibility filter is also what makes gossip staleness safe: a
// lease whose holder crashed a moment ago resolves here, fails the
// online check, and is never fetched from.
func (f *peerFetcher) acquire(tried map[string]bool) (string, func(int64), bool, bool) {
	s := f.s
	holders := s.idx.Holders(f.imageID, f.bootNode.ID)
	s.state.RLock()
	eligible := make(map[string]bool)
	for _, id := range holders {
		if tried[id] || id == f.bootNode.ID || !s.online[id] || s.lagging[id] ||
			len(s.damaged[id]) > 0 || !s.cl.Reachable(f.bootNode.ID, id) {
			continue
		}
		if ccv := s.cc[id]; ccv != nil && ccv.HasObject(f.imageID) {
			eligible[id] = true
		}
	}
	s.state.RUnlock()
	return s.peers.AcquireFrom(holders, f.policy.MaxServeSlots,
		func(id string) bool { return !eligible[id] })
}

// transfer moves one range from src to the booting node, applying the
// deployment's fault injector. NIC counters account exactly the bytes
// that crossed the fabric: the full range on success and on corruption
// (damage is detected at the receiver), the delivered prefix on
// truncation, nothing on a drop or source crash. Every outcome feeds
// src's circuit breaker.
func (f *peerFetcher) transfer(src string, dst []byte, base int64, release func(int64)) bool {
	s := f.s
	ctr := s.peers.Counters()
	done := func(served int64, ok bool) bool {
		release(served)
		if s.peers.RecordServe(src, ok) {
			f.trips++
		}
		return ok
	}
	payload, err := f.sourceRange(src, base, int64(len(dst)))
	if err != nil {
		// The replica vanished between index lookup and read (dropped or
		// deregistered concurrently): treat as a failed attempt.
		ctr.Add("peer.stale", 1)
		return done(0, false)
	}
	f.seq++
	kind, got := f.faults.Strike(f.op, src, f.seq, payload)
	if kind != fault.None {
		ctr.Add("peer.fault", 1)
	}
	srcNode, err := s.computeNode(src)
	if err != nil {
		return done(0, false)
	}
	if kind == fault.Crash || kind == fault.Torn {
		// The source dies mid-serve (for a one-way peer read a torn apply
		// and a plain crash are the same event): it drops offline, its
		// announcements are withdrawn, and its next boot heals it.
		s.state.Lock()
		s.online[src] = false
		s.lagging[src] = true
		s.state.Unlock()
		s.idx.NodeDown(src)
		ctr.Add("peer.crash", 1)
		return done(0, false)
	}
	if len(got) > 0 {
		srcNode.Send(int64(len(got)))
		f.bootNode.Recv(int64(len(got)))
	}
	if kind != fault.None {
		// Truncated or corrupted transfers moved bytes but deliver no
		// usable data (per-block checksums reject them at the receiver).
		ctr.Add("peer.wasted_bytes", int64(len(got)))
		return done(0, false)
	}
	copy(dst, got)
	return done(int64(len(dst)), true)
}

// sourceRange reads [base, base+n) of the source's cache object,
// materializing the object once per source per boot.
func (f *peerFetcher) sourceRange(src string, base, n int64) ([]byte, error) {
	data, ok := f.data[src]
	if !ok {
		ccv := f.s.ccVolume(src)
		if ccv == nil {
			return nil, ErrUnknownNode
		}
		var err error
		data, err = ccv.ReadObject(f.imageID)
		if err != nil {
			return nil, err
		}
		f.data[src] = data
	}
	if base < 0 || base+n > int64(len(data)) {
		return nil, ErrNotRegistered
	}
	return data[base : base+n : base+n], nil
}

// topSource is the peer that served the most bytes this boot, breaking
// ties by node ID for determinism.
func (f *peerFetcher) topSource() string {
	top, topBytes := "", int64(0)
	for id, b := range f.served {
		if b > topBytes || (b == topBytes && top != "" && id < top) {
			top, topBytes = id, b
		}
	}
	return top
}
