package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/qcow"
	"repro/internal/zvol"
)

// BootRequest names the inputs of one VM start.
type BootRequest struct {
	// Image is the registered VMI to boot.
	Image string
	// Node is the compute node the VM lands on.
	Node string
	// Verify additionally checks every read against the image's true
	// content — the end-to-end correctness check for the whole chain.
	Verify bool
	// SkipCache bypasses the caching layer entirely: the CoW overlay
	// chains directly onto the PFS-hosted base VMI (the paper's "without
	// caches" baseline in Fig 18). No healing, no peer exchange — every
	// boot pulls its working set over the data-center network.
	SkipCache bool
}

// BootReport describes one VM start on a compute node.
type BootReport struct {
	ImageID      string
	NodeID       string
	Warm         bool  // served entirely from the local ccVolume
	Healed       bool  // node was lagging and auto-synced before the boot
	NetworkBytes int64 // bytes this boot pulled from the PFS (storage nodes)
	CacheBytes   int64 // bytes served from the local cache
	ReadBytes    int64 // total bytes the VM read during boot

	// Peer block exchange accounting.
	PeerBytes     int64  // bytes served by neighboring compute nodes
	PeerNode      string // peer that served the most bytes ("" if none)
	PeerFallbacks int    // peer-servable ranges that fell back to the PFS

	// Resilience accounting.
	HedgesFired  int     // slow peer serves that cloned a hedge leg
	HedgesWon    int     // hedge legs that delivered first
	BreakerTrips int     // per-peer circuit breakers this boot tripped
	PeerStallSec float64 // simulated stall time slow peer serves cost this boot
}

// Boot starts a VM (§3.3, Fig 7): an empty CoW overlay is chained onto
// the VMI cache in the local ccVolume, which recurses to the PFS-hosted
// base VMI only for ranges the cache does not hold. The boot trace is
// replayed through the chain with real data, and the report accounts
// where every byte came from.
//
// Booting on a lagging node (one that exhausted its registration repair
// budget, or crashed mid-transfer and came back) first heals it through
// the SyncNode path (§3.5), then boots warm from the repaired replica.
//
// Boots run fully concurrently: two boots contend only when they land
// on the same node (its replica lock during healing, its cache chain)
// or consult the same peer index entries. A cancelled context aborts
// the trace replay between reads and returns the context error; no
// deployment state is left half-changed.
func (s *Squirrel) Boot(ctx context.Context, req BootRequest) (BootReport, error) {
	ctx = reqCtx(ctx)
	id, nodeID := req.Image, req.Node
	if err := ctx.Err(); err != nil {
		return BootReport{}, fmt.Errorf("core: boot %s on %s: %w", id, nodeID, err)
	}
	s.state.RLock()
	im, ok := s.images[id]
	lagging, damaged := s.lagging[nodeID], len(s.damaged[nodeID]) > 0
	online := s.online[nodeID]
	s.state.RUnlock()
	if !ok {
		return BootReport{}, fmt.Errorf("%w: %s", ErrUnknownImage, id)
	}
	node, err := s.computeNode(nodeID)
	if err != nil {
		return BootReport{}, err
	}
	if !online {
		return BootReport{}, fmt.Errorf("%w: %s", ErrNodeOffline, nodeID)
	}
	// The boot span parents under whatever span the context carries —
	// nothing in-process, the daemon's dispatch span over the wire — so
	// one request renders as one tree across processes.
	sp := s.tr.Op(obs.SpanFromContext(ctx), obs.OpBoot, nodeID, id)
	fail := func(err error) (BootReport, error) {
		sp.Fail(err)
		sp.Finish()
		return BootReport{}, err
	}
	// Admission control: take (or queue for) one of the node's boot
	// slots before touching any replica state. A shed boot fails with
	// ErrOverloaded well inside its deadline.
	release, err := s.admit(ctx, nodeID, sp)
	if err != nil {
		return fail(err)
	}
	defer release()
	healed := false
	if !req.SkipCache && (lagging || damaged) {
		// Healing is a compound replica operation; serialize it against
		// other operations on this node and re-check the flags under the
		// lock — a concurrent boot may have healed the node already.
		nl := s.nodeLocks.lock(nodeID)
		s.state.RLock()
		lagging, damaged = s.lagging[nodeID], len(s.damaged[nodeID]) > 0
		lastScrub := s.lastScrub[nodeID]
		s.state.RUnlock()
		if lagging {
			if _, err := s.syncNodeGuarded(sp, nodeID); err != nil {
				nl.Unlock()
				return fail(fmt.Errorf("core: healing lagging node %s: %w", nodeID, err))
			}
			healed = true
		}
		// Quarantined damage is resilvered before the boot touches the
		// replica, like lagging is synced: landing a VM on a node is exactly
		// when its replica should be made whole. A resilver that cannot fully
		// repair (every source down) is fine — read-time checksums route the
		// still-damaged ranges to peers or the PFS below.
		if damaged {
			if _, err := s.resilverGuarded(sp, nodeID, lastScrub); err != nil {
				nl.Unlock()
				return fail(fmt.Errorf("core: resilvering node %s: %w", nodeID, err))
			}
			healed = true
		}
		nl.Unlock()
	}
	var ccv *zvol.Volume
	if !req.SkipCache {
		ccv = s.ccVolume(nodeID) // after healing: a full sync swaps the volume
	} else {
		sp.Annotate("uncached", 1)
	}

	cb, err := newChainBackend(s, im, ccv, node)
	if err != nil {
		return fail(err)
	}
	// A cold miss (no local replica) may be served by the peer exchange
	// before falling back to the PFS — unless the caching layer is
	// bypassed outright.
	if !req.SkipCache && s.cfg.Peer.Enabled && !cb.local {
		cb.fetch = s.newPeerFetcher(ctx, im, node)
		cb.fetch.sp = sp
	}
	cow, err := qcow.NewOverlay(cb, s.cfg.ClusterSize, false)
	if err != nil {
		return fail(err)
	}

	// The simulated device wait happens outside every lock: concurrent
	// boots overlap their waits, which is where boot-storm wall-clock
	// scaling comes from (the old global manager mutex serialized it).
	if d := s.cfg.BootLatency; d > 0 {
		time.Sleep(d)
	}

	rep := BootReport{ImageID: id, NodeID: nodeID, Healed: healed}
	var gen *corpus.Generator
	if req.Verify {
		gen = corpus.NewGenerator(im)
	}
	buf := make([]byte, 0, 64<<10)
	for _, e := range im.BootTrace() {
		if err := ctx.Err(); err != nil {
			return fail(fmt.Errorf("core: boot %s on %s: %w", id, nodeID, err))
		}
		if int64(cap(buf)) < e.Len {
			buf = make([]byte, e.Len)
		}
		b := buf[:e.Len]
		if _, err := cow.ReadAt(b, e.Off); err != nil && err != io.EOF {
			return fail(fmt.Errorf("core: boot read at %d: %w", e.Off, err))
		}
		rep.ReadBytes += e.Len
		s.bootReads.Observe(e.Len)
		if req.Verify {
			want := make([]byte, e.Len)
			if _, err := gen.ReadAt(want, e.Off); err != nil && err != io.EOF {
				return fail(err)
			}
			if !bytes.Equal(b, want) {
				return fail(fmt.Errorf("core: boot data mismatch at %d (+%d)", e.Off, e.Len))
			}
		}
	}
	rep.NetworkBytes = cb.networkBytes
	rep.CacheBytes = cb.cacheBytes
	if cb.fetch != nil {
		rep.PeerBytes = cb.peerBytes
		rep.PeerNode = cb.fetch.topSource()
		rep.PeerFallbacks = cb.fetch.fallbacks
		rep.HedgesFired = cb.fetch.hedgesFired
		rep.HedgesWon = cb.fetch.hedgesWon
		rep.BreakerTrips = cb.fetch.trips
		rep.PeerStallSec = cb.fetch.stallSec
	}
	rep.Warm = !req.SkipCache && cb.networkBytes == 0 && cb.peerBytes == 0
	s.recordBootLanes(sp, cb)
	sp.AddBytes(rep.ReadBytes)
	sp.Finish()
	return rep, nil
}

// recordBootLanes summarizes one boot's byte provenance as per-lane
// child spans (peerFetch children are recorded per-transfer by the
// fetcher itself): cacheRead for locally served bytes with a DAS-4 disk
// read-time model, pfsRead for bytes pulled over the network with the
// fabric's transfer-time model. The pfsRead span splits its bytes into
// indexed_bytes (ranges inside cache extents that fell back to the PFS)
// and gap_bytes (ranges only the PFS holds) — the split figtrace and the
// trace-based tests assert on.
func (s *Squirrel) recordBootLanes(sp *obs.Span, cb *chainBackend) {
	if sp == nil {
		return
	}
	// Lane children are built detached and adopted in one batch: a single
	// parent-lock acquisition instead of one per lane on the boot path.
	var lanes [2]*obs.Span
	n := 0
	if cb.cacheBytes > 0 {
		c := sp.NewDetached(obs.OpCacheRead, cb.node.ID, cb.id)
		c.AddBytes(cb.cacheBytes)
		c.AddSim(float64(cb.cacheBytes) / disk.DAS4Model().ReadBps)
		lanes[n] = c
		n++
	}
	if cb.networkBytes > 0 {
		c := sp.NewDetached(obs.OpPFSRead, cb.node.ID, cb.id)
		c.AddBytes(cb.networkBytes)
		c.AddSim(s.cl.Fabric.TransferSec(cb.networkBytes))
		c.Annotate("indexed_bytes", cb.pfsIndexed)
		c.Annotate("gap_bytes", cb.networkBytes-cb.pfsIndexed)
		lanes[n] = c
		n++
	}
	if n > 0 {
		sp.Adopt(lanes[:n]...)
		for _, c := range lanes[:n] {
			c.Finish()
		}
	}
}

// computeNode finds the cluster node struct for a compute node ID.
// Lock-free: the node map is immutable after New.
func (s *Squirrel) computeNode(nodeID string) (*cluster.Node, error) {
	if n, ok := s.nodes[nodeID]; ok {
		return n, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
}

// chainBackend is the "cache chained to base" layer under the CoW
// overlay: ranges held by the local ccVolume cache are served locally;
// ranges inside the image's cache extents but missing locally may be
// fetched from a peer replica; anything else goes to the PFS over the
// network.
type chainBackend struct {
	id      string
	rawSize int64
	node    *cluster.Node
	pfs     pfsReader
	fetch   *peerFetcher // nil unless peer exchange is enabled and the replica is missing

	// exts/bases describe the image's cache-object layout: extent i of
	// the image maps to [bases[i], bases[i]+exts[i].Len) of the cache
	// object. Identical on every replica, so they double as the map for
	// peer fetches. cacheData is the locally materialized object; local
	// says whether this node holds it.
	local     bool
	cacheData []byte
	exts      []corpus.Extent
	bases     []int64

	networkBytes int64 // pulled from the PFS
	cacheBytes   int64 // served from the local replica
	peerBytes    int64 // served by neighboring compute nodes
	pfsIndexed   int64 // PFS bytes inside cache extents (peer-servable ranges that fell through)
}

// pfsReader is the slice of the PFS API the backend needs.
type pfsReader interface {
	ReadAt(client *cluster.Node, name string, buf []byte, off int64) (int, error)
}

func newChainBackend(s *Squirrel, im *corpus.Image, ccv *zvol.Volume, node *cluster.Node) (*chainBackend, error) {
	cb := &chainBackend{id: im.ID, rawSize: im.RawSize(), node: node, pfs: s.pfs}
	var base int64
	for _, e := range im.CacheExtentsSorted() {
		cb.exts = append(cb.exts, corpus.Extent{Off: e.Off, Len: e.Len})
		cb.bases = append(cb.bases, base)
		base += e.Len
	}
	if ccv != nil && ccv.HasObject(im.ID) {
		data, err := ccv.ReadObject(im.ID)
		switch {
		case errors.Is(err, zvol.ErrCorrupt):
			// Undetected (or unrepaired) rot in the local replica: the
			// checksum fails the read instead of serving bad bytes, and the
			// boot falls back to the peer/PFS chain as if the replica were
			// absent. The damage is left for the next scrub to quarantine.
			s.peers.Counters().Add("boot.corrupt_local", 1)
		case err != nil:
			return nil, err
		case base != int64(len(data)):
			return nil, fmt.Errorf("core: cache object %s is %d bytes, extents say %d",
				im.ID, len(data), base)
		default:
			cb.local = true
			cb.cacheData = data
		}
	}
	return cb, nil
}

// Size implements qcow.Backend.
func (cb *chainBackend) Size() int64 { return cb.rawSize }

// ReadAt implements qcow.Backend: local cache extents first, then the
// peer exchange for cache-covered ranges the node is missing, then the
// PFS for everything else (including peer-fetch fallbacks).
func (cb *chainBackend) ReadAt(p []byte, off int64) (int, error) {
	total := 0
	for len(p) > 0 && off < cb.rawSize {
		n, ext, served := cb.cacheRange(p, off)
		switch {
		case served:
			cb.cacheBytes += n
		case ext >= 0 && cb.fetch != nil &&
			cb.fetch.fetch(p[:n], cb.bases[ext]+(off-cb.exts[ext].Off)):
			cb.peerBytes += n
		default:
			read, err := cb.pfs.ReadAt(cb.node, cb.id, p[:n], off)
			if err != nil && err != io.EOF {
				return total, err
			}
			cb.networkBytes += int64(read)
			if ext >= 0 {
				cb.pfsIndexed += int64(read)
			}
			if int64(read) != n {
				return total + read, io.EOF
			}
		}
		p = p[n:]
		off += n
		total += int(n)
	}
	if len(p) > 0 {
		return total, io.EOF
	}
	return total, nil
}

// cacheRange resolves the prefix of p against the cache layout. It
// returns the prefix length n (clamped to the image size, the containing
// extent, or the gap up to the next extent), the index of the containing
// extent (-1 when [off, off+n) lies outside every cache extent), and
// whether the bytes were served from the local replica. When ext >= 0
// but served is false the range is a cold miss a peer replica could
// serve; when ext < 0 only the PFS holds the bytes.
func (cb *chainBackend) cacheRange(p []byte, off int64) (n int64, ext int, served bool) {
	n = int64(len(p))
	if rem := cb.rawSize - off; n > rem {
		n = rem
	}
	if len(cb.exts) == 0 {
		return n, -1, false
	}
	// First extent ending after off.
	i := sort.Search(len(cb.exts), func(i int) bool {
		return cb.exts[i].Off+cb.exts[i].Len > off
	})
	if i < len(cb.exts) && cb.exts[i].Off <= off {
		// Inside extent i.
		e := cb.exts[i]
		if rem := e.Off + e.Len - off; n > rem {
			n = rem
		}
		if cb.local {
			src := cb.bases[i] + (off - e.Off)
			copy(p[:n], cb.cacheData[src:src+n])
			return n, i, true
		}
		return n, i, false
	}
	// Before extent i (or past all extents): a gap only the PFS holds.
	if i < len(cb.exts) && cb.exts[i].Off < off+n {
		n = cb.exts[i].Off - off
	}
	return n, -1, false
}
