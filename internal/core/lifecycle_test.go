package core

import (
	"context"
	"errors"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/peer"
	"repro/internal/zvol"
)

// lifecycleDeployment is chaosDeployment with the peer exchange enabled:
// the resilver's source ladder and the withdrawal invariant need it.
func lifecycleDeployment(t testing.TB, computeNodes int, plan fault.Plan) (*Squirrel, *cluster.Cluster, *corpus.Repository, *fault.Injector) {
	t.Helper()
	inj, err := fault.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.GigE, 4, computeNodes)
	if err != nil {
		t.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	cfg.Faults = inj
	cfg.Peer = peer.DefaultPolicy()
	// Telemetry rides along on every lifecycle scenario: the chaos soak
	// asserts no traced operation ends in an unrecovered error state.
	// The ring is sized far beyond any soak's op count — the FailedRoots
	// gate is only as strong as the ring is deep, so eviction must never
	// hide a failed root (the always-on default is deliberately small).
	cfg.Obs = obs.New(8192)
	sq, err := New(cfg, cl, pfs)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sq, cl, repo, inj
}

func nodeStatus(t *testing.T, sq *Squirrel, nodeID string) NodeStatus {
	t.Helper()
	for _, st := range sq.Health() {
		if st.NodeID == nodeID {
			return st
		}
	}
	t.Fatalf("node %s missing from Health()", nodeID)
	return NodeStatus{}
}

func TestCrashRestartLifecycle(t *testing.T) {
	sq, _, repo, _ := lifecycleDeployment(t, 3, fault.Plan{Seed: 1})
	for i := 0; i < 2; i++ {
		if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sq.CrashNode("node01", day(2)); err != nil {
		t.Fatal(err)
	}
	st := nodeStatus(t, sq, "node01")
	if st.State != StateDown || !st.Withdrawn || st.DownSince != day(2) {
		t.Fatalf("crashed node health: %+v", st)
	}
	if _, err := sq.Boot(context.Background(), BootRequest{Image: repo.Images[0].ID, Node: "node01", Verify: false}); !errors.Is(err, ErrNodeOffline) {
		t.Fatalf("crashed node accepted a boot: %v", err)
	}
	// A registration while the node is down skips it entirely.
	rep, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[2], At: day(2)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 2 || rep.Faults != 0 {
		t.Fatalf("down node not skipped: %+v", rep)
	}
	// Restart: the audit finds a clean but stale replica.
	rec, err := sq.RestartNode("node01", day(3))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Downtime != 24*time.Hour {
		t.Fatalf("downtime %v, want 24h", rec.Downtime)
	}
	if rec.RolledBack || rec.Damaged != 0 || !rec.Scrub.Clean() {
		t.Fatalf("clean crash audited dirty: %+v", rec)
	}
	if !rec.Lagging {
		t.Fatal("node missed a registration while down; audit must flag lagging")
	}
	if st := nodeStatus(t, sq, "node01"); st.State != StateLagging || st.LastScrub != day(3) {
		t.Fatalf("restarted node health: %+v", st)
	}
	// First boot heals, as for any lagging node.
	br, err := sq.Boot(context.Background(), BootRequest{Image: repo.Images[2].ID, Node: "node01", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !br.Healed || !br.Warm {
		t.Fatalf("restart boot should heal and go warm: %+v", br)
	}
	if st := nodeStatus(t, sq, "node01"); st.State != StateHealthy || st.Withdrawn {
		t.Fatalf("healed node health: %+v", st)
	}
}

func TestTornRegistrationRollsBackOnRestart(t *testing.T) {
	// Bring the deployment up clean, then make the fabric tear exactly one
	// apply (Torn shares the crash budget).
	sq, _, repo, _ := lifecycleDeployment(t, 3, fault.Plan{Seed: 4})
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[0], At: day(0)}); err != nil {
		t.Fatal(err)
	}
	firstSnap := sq.SCVolume().LatestSnapshot().Name
	hostile, err := fault.New(fault.Plan{Seed: 4, Torn: 1, MaxCrashes: 1})
	if err != nil {
		t.Fatal(err)
	}
	sq.SetFaults(hostile)
	rep, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[1], At: day(1)})
	if err != nil {
		t.Fatalf("torn replicas must not fail the registration: %v", err)
	}
	if len(rep.Torn) != 1 {
		t.Fatalf("want exactly one torn apply, got %+v", rep)
	}
	torn := rep.Torn[0]
	ccv, _ := sq.CCVolume(torn)
	if !ccv.NeedsRecovery() {
		t.Fatal("torn node has no open receive journal")
	}
	if st := nodeStatus(t, sq, torn); st.State != StateDown || !st.Withdrawn {
		t.Fatalf("torn node health: %+v", st)
	}
	// The restart audit rolls the half-applied stream back: the replica is
	// bit-identical to before the registration (old snapshot, old objects,
	// clean scrub) and flagged lagging so sync re-delivers the stream.
	rec, err := sq.RestartNode(torn, day(1).Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.RolledBack || rec.RolledBackSnap != rep.Snapshot {
		t.Fatalf("audit did not roll back the torn stream: %+v", rec)
	}
	if !rec.Scrub.Clean() {
		t.Fatalf("rolled-back replica scrubbed dirty: %+v", rec.Scrub)
	}
	if snap := ccv.LatestSnapshot(); snap == nil || snap.Name != firstSnap {
		t.Fatalf("rollback should leave the node at %s", firstSnap)
	}
	if ccv.HasObject(repo.Images[1].ID) {
		t.Fatal("half-applied object survived the rollback")
	}
	// Healing delivers the registration it missed; the boot verifies every
	// byte end to end.
	br, err := sq.Boot(context.Background(), BootRequest{Image: repo.Images[1].ID, Node: torn, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !br.Healed || !br.Warm {
		t.Fatalf("torn node should heal on first boot: %+v", br)
	}
}

func TestInjectRotIsDeterministicAndScrubDetectsAll(t *testing.T) {
	plan := fault.Plan{Seed: 42, Rot: 0.4}
	mk := func() (*Squirrel, []zvol.BlockRef) {
		sq, _, repo, _ := lifecycleDeployment(t, 3, plan)
		for i := 0; i < 3; i++ {
			if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)}); err != nil {
				t.Fatal(err)
			}
		}
		refs, err := sq.InjectRot("node01")
		if err != nil {
			t.Fatal(err)
		}
		return sq, refs
	}
	sq, refs := mk()
	if len(refs) == 0 {
		t.Fatal("rot plan injected nothing")
	}
	// Same plan, same history ⇒ identical rot set on a twin deployment.
	_, refs2 := mk()
	if len(refs) != len(refs2) {
		t.Fatalf("rot not deterministic: %d vs %d blocks", len(refs), len(refs2))
	}
	for i := range refs {
		if refs[i] != refs2[i] {
			t.Fatalf("rot not deterministic at %d: %+v vs %+v", i, refs[i], refs2[i])
		}
	}
	// 100% detection: the scrub reports every injected ref (dedup aliases
	// of a rotted payload may appear in addition).
	rep, err := sq.ScrubNode(bg, "node01", day(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("scrub missed all injected rot")
	}
	found := map[zvol.BlockRef]bool{}
	for _, r := range rep.Damaged {
		found[r] = true
	}
	for _, r := range refs {
		if !found[r] {
			t.Fatalf("scrub missed injected corruption at %+v", r)
		}
	}
	// The damaged node is quarantined: withdrawn from the peer index and
	// reported resilvering; other nodes are untouched.
	if st := nodeStatus(t, sq, "node01"); st.State != StateResilvering || !st.Withdrawn ||
		st.CorruptBlocks != len(rep.Damaged) {
		t.Fatalf("rotten node health: %+v", st)
	}
	if st := nodeStatus(t, sq, "node02"); st.State != StateHealthy || st.Withdrawn {
		t.Fatalf("healthy node health: %+v", st)
	}
	if ds := sq.Stats(); ds.DamagedNodes != 1 {
		t.Fatalf("stats damaged nodes: %+v", ds.DamagedNodes)
	}
}

func TestResilverPrefersPeersOverPFS(t *testing.T) {
	sq, cl, repo, _ := lifecycleDeployment(t, 4, fault.Plan{Seed: 7, Rot: 0.4})
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	refs, err := sq.InjectRot("node02")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("rot plan injected nothing")
	}
	pfsTx := storageTx(cl)
	rep, err := sq.ResilverNode(bg, "node02", day(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean || rep.Failed != 0 || rep.Repaired != rep.Blocks || rep.Blocks == 0 {
		t.Fatalf("resilver did not fully repair: %+v", rep)
	}
	// Healthy replicas exist on three other nodes: every repair must come
	// from a peer, none from the PFS.
	if rep.PFSBlocks != 0 || rep.PeerBlocks != rep.Repaired || rep.PeerBytes == 0 {
		t.Fatalf("resilver ignored healthy peers: %+v", rep)
	}
	if tx := storageTx(cl); tx != pfsTx {
		t.Fatalf("peer-sourced resilver moved %d bytes off storage nodes", tx-pfsTx)
	}
	// The repaired node rejoins the exchange and boots warm and verified.
	if !sq.PeerIndex().Holds(im.ID, "node02") {
		t.Fatal("clean node not re-announced")
	}
	br, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node02", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !br.Warm {
		t.Fatalf("repaired replica should boot warm: %+v", br)
	}
}

func TestResilverFallsBackToPFSWhenNoHealthyPeer(t *testing.T) {
	// Two compute nodes, both rotten: the first resilver has no healthy
	// peer and must repair from the PFS; the second then has a healthy
	// peer again and must prefer it.
	sq, _, repo, _ := lifecycleDeployment(t, 2, fault.Plan{Seed: 11, Rot: 0.6})
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"node00", "node01"} {
		refs, err := sq.InjectRot(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) == 0 {
			t.Fatalf("rot plan injected nothing on %s", n)
		}
		if _, err := sq.ScrubNode(bg, n, day(1)); err != nil {
			t.Fatal(err)
		}
	}
	rep0, err := sq.ResilverNode(bg, "node00", day(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep0.Clean || rep0.PeerBlocks != 0 || rep0.PFSBlocks != rep0.Repaired || rep0.Repaired == 0 {
		t.Fatalf("with every peer damaged the PFS must repair: %+v", rep0)
	}
	rep1, err := sq.ResilverNode(bg, "node01", day(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Clean || rep1.PFSBlocks != 0 || rep1.PeerBlocks != rep1.Repaired || rep1.Repaired == 0 {
		t.Fatalf("freshly-repaired peer should serve the second resilver: %+v", rep1)
	}
	if ds := sq.Stats(); ds.DamagedNodes != 0 {
		t.Fatalf("damage survived resilvering: %+v", ds)
	}
}

func TestRottenPeerNeverServesBadBytes(t *testing.T) {
	// Latent (unscrubbed) rot on the only peer holder: the peer read fails
	// its checksum at the source, the fetch falls back to the PFS, and the
	// verified boot proves not one corrupt byte reached the VM.
	sq, _, repo, _ := lifecycleDeployment(t, 2, fault.Plan{Seed: 13, Rot: 0.5})
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	refs, err := sq.InjectRot("node01")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("rot plan injected nothing")
	}
	if err := sq.DropReplica("node00", im.ID); err != nil {
		t.Fatal(err)
	}
	if !sq.PeerIndex().Holds(im.ID, "node01") {
		t.Fatal("latent rot must not be withdrawn yet (nothing detected it)")
	}
	br, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node00", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if br.PeerBytes != 0 {
		t.Fatalf("rotten peer served %d bytes", br.PeerBytes)
	}
	if br.NetworkBytes == 0 {
		t.Fatal("boot should have fallen back to the PFS")
	}
	if c := sq.PeerIndex().Counters().Snapshot(); c["peer.stale"] == 0 {
		t.Fatalf("source-side checksum failure not accounted: %v", c)
	}
}

func TestBootAutoResilversDamagedNode(t *testing.T) {
	sq, _, repo, _ := lifecycleDeployment(t, 3, fault.Plan{Seed: 17, Rot: 0.4})
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	refs, err := sq.InjectRot("node01")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("rot plan injected nothing")
	}
	if _, err := sq.ScrubNode(bg, "node01", day(1)); err != nil {
		t.Fatal(err)
	}
	br, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node01", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !br.Healed {
		t.Fatalf("boot on a quarantined node should resilver first: %+v", br)
	}
	if !br.Warm {
		t.Fatalf("resilvered replica should serve the boot warm: %+v", br)
	}
	if st := nodeStatus(t, sq, "node01"); st.State != StateHealthy || st.Withdrawn {
		t.Fatalf("node still quarantined after boot: %+v", st)
	}
}

// TestLifecycleChaosSoak is the seeded end-to-end soak the CI chaos
// matrix runs across several seeds (SQUIRREL_CHAOS_SEED overrides the
// default). Its assertions are seed-agnostic invariants: registrations
// never error, scrubs detect every injected rot block, verified boots
// never see a corrupt byte, and the deployment converges to
// all-healthy once faults stop firing.
func TestLifecycleChaosSoak(t *testing.T) {
	seed := int64(1337)
	if env := os.Getenv("SQUIRREL_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad SQUIRREL_CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	plan := fault.Plan{
		Seed: seed, Drop: 0.15, Truncate: 0.05, Corrupt: 0.08,
		Crash: 0.04, Torn: 0.06, MaxCrashes: 3, Rot: 0.03,
	}
	sq, cl, repo, inj := lifecycleDeployment(t, 8, plan)

	const regs = 8
	for i := 0; i < regs; i++ {
		if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)}); err != nil {
			t.Fatalf("seed %d: registration %d failed: %v", seed, i, err)
		}
	}
	// Latent rot lands everywhere, then the nightly lifecycle pass runs:
	// restart whatever is down, scrub everything, resilver the damage.
	injected := map[string][]zvol.BlockRef{}
	for _, n := range cl.Compute {
		refs, err := sq.InjectRot(n.ID)
		if err != nil {
			t.Fatal(err)
		}
		injected[n.ID] = refs
	}
	for _, st := range sq.Health() {
		if !st.Online {
			if _, err := sq.RestartNode(st.NodeID, day(regs)); err != nil {
				t.Fatal(err)
			}
		}
	}
	scrubs, err := sq.ScrubAll(bg, day(regs))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cl.Compute {
		found := map[zvol.BlockRef]bool{}
		for _, r := range scrubs[n.ID].Damaged {
			found[r] = true
		}
		for _, r := range injected[n.ID] {
			if !found[r] {
				t.Fatalf("seed %d: scrub on %s missed injected rot at %+v", seed, n.ID, r)
			}
		}
	}
	if _, err := sq.ResilverAll(bg, day(regs)); err != nil {
		t.Fatal(err)
	}
	// Verified boots everywhere, restarting any node a leftover fault
	// takes down. The crash budget is finite, so this converges.
	latest := repo.Images[regs-1]
	for round := 0; round < 4; round++ {
		for _, st := range sq.Health() {
			if !st.Online {
				if _, err := sq.RestartNode(st.NodeID, day(regs+1+round)); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, n := range cl.Compute {
			if _, err := sq.Boot(context.Background(), BootRequest{Image: latest.ID, Node: n.ID, Verify: true}); err != nil {
				t.Fatalf("seed %d: verified boot on %s: %v", seed, n.ID, err)
			}
		}
		healthy := true
		for _, st := range sq.Health() {
			if st.State != StateHealthy {
				healthy = false
			}
		}
		if healthy {
			break
		}
	}
	for _, st := range sq.Health() {
		if st.State != StateHealthy || st.Withdrawn {
			t.Fatalf("seed %d: node not healthy after soak: %+v", seed, st)
		}
	}
	want := sq.SCVolume().LatestSnapshot().Name
	for _, n := range cl.Compute {
		ccv, _ := sq.CCVolume(n.ID)
		if snap := ccv.LatestSnapshot(); snap == nil || snap.Name != want {
			t.Fatalf("seed %d: %s did not converge to %s", seed, n.ID, want)
		}
	}
	if ds := sq.Stats(); ds.LaggingNodes != 0 || ds.DamagedNodes != 0 || ds.StaleReplicas != 0 {
		t.Fatalf("seed %d: deployment not converged: %+v", seed, ds)
	}
	// Telemetry invariants: replica-side faults degrade and heal, they
	// never fail an operation outright — so no root span may end in an
	// error state — and every exercised op kind must aggregate.
	tel := sq.Telemetry()
	if failed := tel.FailedRoots(); len(failed) != 0 {
		t.Fatalf("seed %d: %d operations ended in an error state; first:\n%s",
			seed, len(failed), obs.RenderTree(failed[0]))
	}
	snap := tel.Snapshot()
	for _, kind := range []string{obs.OpRegister, obs.OpBoot, obs.OpScrub, obs.OpResilver, obs.OpRestart} {
		if op, ok := snap.Op(kind); !ok || op.Count == 0 {
			t.Fatalf("seed %d: telemetry missing op kind %q", seed, kind)
		}
	}
	_ = inj
}
