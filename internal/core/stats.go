package core

import (
	"repro/internal/peer"
	"repro/internal/zvol"
)

// DeploymentStats aggregates Squirrel-wide state: what an operator's
// dashboard would show for a data center running Squirrel.
type DeploymentStats struct {
	RegisteredImages int
	ComputeNodes     int
	OnlineNodes      int

	// SCVolume is the storage-side cVolume.
	SCVolume zvol.Stats
	// ReplicaDiskBytes / ReplicaMemBytes are the per-node costs of full
	// replication — the paper's "10 GB of disk and 60 MB of main memory
	// on each compute node" numbers, at corpus scale.
	ReplicaDiskBytes int64
	ReplicaMemBytes  int64
	// StaleReplicas counts online nodes whose latest snapshot lags the
	// scVolume (they will SyncNode on next boot).
	StaleReplicas int
	// LaggingNodes counts replicas that exhausted their registration
	// repair budget (or crashed mid-transfer) and await healing.
	LaggingNodes int
	// DamagedNodes counts replicas with quarantined (scrub-detected)
	// corrupt or missing blocks awaiting resilver.
	DamagedNodes int

	// PeerIndexObjects / PeerIndexEntries size the peer block exchange's
	// content index: distinct cache objects announced, and total
	// (object, node) announcements.
	PeerIndexObjects int
	PeerIndexEntries int
	// IndexSource names the content-index implementation serving holder
	// lookups ("central" | "gossip").
	IndexSource string
	// GossipRound is the decentralized index's completed round count
	// (zero in central mode).
	GossipRound int64
	// GossipStale counts dead entries (expired leases and retraction
	// tombstones) still stored across live gossip views — entries lookups
	// already refuse to serve and converged rounds prune (zero in central
	// mode, where staleness cannot exist).
	GossipStale int
	// PeerLoads is the per-node serve load of the peer exchange, sorted
	// by node ID (nodes that never served are absent).
	PeerLoads []peer.NodeLoad
}

// Stats computes current deployment-wide statistics.
func (s *Squirrel) Stats() DeploymentStats {
	s.state.RLock()
	defer s.state.RUnlock()
	ds := DeploymentStats{
		RegisteredImages: len(s.images),
		ComputeNodes:     len(s.cc),
		LaggingNodes:     len(s.lagging),
		DamagedNodes:     len(s.damaged),
		SCVolume:         s.sc.Stats(),
		PeerIndexObjects: s.idx.Objects(),
		PeerIndexEntries: s.idx.Entries(),
		IndexSource:      s.idx.Source(),
		PeerLoads:        s.peers.Loads(),
	}
	if s.gossip != nil {
		ds.GossipRound = s.gossip.Round()
		ds.GossipStale = s.gossip.StaleTotal()
	}
	latest := ""
	if snap := s.sc.LatestSnapshot(); snap != nil {
		latest = snap.Name
	}
	var maxDisk, maxMem int64
	for id, v := range s.cc {
		if s.online[id] {
			ds.OnlineNodes++
		}
		st := v.Stats()
		if st.DiskBytes > maxDisk {
			maxDisk = st.DiskBytes
		}
		if st.DDTMemBytes > maxMem {
			maxMem = st.DDTMemBytes
		}
		local := ""
		if snap := v.LatestSnapshot(); snap != nil {
			local = snap.Name
		}
		if s.online[id] && local != latest {
			ds.StaleReplicas++
		}
	}
	ds.ReplicaDiskBytes = maxDisk
	ds.ReplicaMemBytes = maxMem
	return ds
}
