package core

import "sync"

// keyLocks is a lazily populated set of per-key mutexes — the lock
// shards that replaced the old deployment-wide Squirrel mutex. One
// instance holds the per-image locks, another the per-node locks, so
// operations on distinct images or distinct nodes never serialize
// against each other.
//
// Deployment-wide lock order (outermost first); any prefix may be
// skipped, but locks are never taken against this order:
//
//	image lock → commitMu → node lock → state → leaf locks
//
// where "leaf locks" are the internally locked subsystems (zvol.Volume,
// peer.Index, metrics, NIC atomics) that never call back into core.
// Operations hold at most one image lock and one node lock at a time;
// multi-node passes (ScrubAll, GC, resilver's peer ladder) take node
// locks sequentially, never nested.
type keyLocks struct {
	mu sync.Mutex
	m  map[string]*sync.Mutex
}

func newKeyLocks() *keyLocks {
	return &keyLocks{m: make(map[string]*sync.Mutex)}
}

// get returns the mutex for key, creating it on first use. Keys are
// image IDs or node IDs, both small closed sets per deployment, so the
// map only grows to cluster size and entries are never evicted.
func (k *keyLocks) get(key string) *sync.Mutex {
	k.mu.Lock()
	l, ok := k.m[key]
	if !ok {
		l = &sync.Mutex{}
		k.m[key] = l
	}
	k.mu.Unlock()
	return l
}

// lock acquires and returns the per-key mutex so callers can write
// `defer s.nodeLocks.lock(id).Unlock()`.
func (k *keyLocks) lock(key string) *sync.Mutex {
	l := k.get(key)
	l.Lock()
	return l
}
