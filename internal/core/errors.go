package core

import (
	"errors"

	"repro/internal/cluster"
)

// Sentinel errors for the public API. Every lookup failure an operation
// can return wraps one of these, so callers branch with errors.Is
// instead of matching strings — squirrelctl maps them to distinct exit
// codes, and tests assert on identity rather than message text.
var (
	// ErrUnknownImage is returned when an operation names an image that
	// was never registered (or has been deregistered).
	ErrUnknownImage = errors.New("core: unknown image")
	// ErrRegistered is returned by Register for a duplicate image ID.
	ErrRegistered = errors.New("core: image already registered")
	// ErrUnknownNode is returned when an operation names a compute node
	// the cluster does not have.
	ErrUnknownNode = errors.New("core: unknown compute node")
	// ErrNodeOffline is returned when an operation needs a node that is
	// currently down (crashed or administratively offline).
	ErrNodeOffline = errors.New("core: compute node offline")
	// ErrOverloaded is returned by Boot when the node's admission queue
	// is full, or the context deadline expires while the boot is still
	// queued for a slot. The condition is transient: retry after load
	// drains (squirrelctl maps it to its own exit code).
	ErrOverloaded = errors.New("core: boot admission overloaded")
)

// ErrPartitioned marks operations that failed because their target sits
// across an open network cut. It aliases cluster.ErrUnreachable so
// errors.Is matches whichever layer callers import; the condition clears
// when the partition heals.
var ErrPartitioned = cluster.ErrUnreachable

// ErrNotRegistered is the pre-redesign name of ErrUnknownImage, kept as
// an alias so existing errors.Is checks keep matching.
//
// Deprecated: use ErrUnknownImage.
var ErrNotRegistered = ErrUnknownImage
