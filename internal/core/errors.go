package core

import "errors"

// Sentinel errors for the public API. Every lookup failure an operation
// can return wraps one of these, so callers branch with errors.Is
// instead of matching strings — squirrelctl maps them to distinct exit
// codes, and tests assert on identity rather than message text.
var (
	// ErrUnknownImage is returned when an operation names an image that
	// was never registered (or has been deregistered).
	ErrUnknownImage = errors.New("core: unknown image")
	// ErrRegistered is returned by Register for a duplicate image ID.
	ErrRegistered = errors.New("core: image already registered")
	// ErrUnknownNode is returned when an operation names a compute node
	// the cluster does not have.
	ErrUnknownNode = errors.New("core: unknown compute node")
	// ErrNodeOffline is returned when an operation needs a node that is
	// currently down (crashed or administratively offline).
	ErrNodeOffline = errors.New("core: compute node offline")
)

// ErrNotRegistered is the pre-redesign name of ErrUnknownImage, kept as
// an alias so existing errors.Is checks keep matching.
//
// Deprecated: use ErrUnknownImage.
var ErrNotRegistered = ErrUnknownImage
