package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/fault"
)

// countdownCtx is a context whose Err flips to context.Canceled after k
// calls — a deterministic way to cancel an operation at an exact internal
// checkpoint without goroutines or timers. Done returns a channel that
// never closes, so only explicit Err checks observe the cancellation.
type countdownCtx struct {
	calls atomic.Int64
	k     int64
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.k {
		return context.Canceled
	}
	return nil
}

// stormDeployment builds a deployment with an explicit apply-worker
// count, for comparing parallel propagation against the serial baseline.
func stormDeployment(t testing.TB, computeNodes, workers int, plan fault.Plan) (*Squirrel, *cluster.Cluster, *corpus.Repository) {
	t.Helper()
	inj, err := fault.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.GigE, 4, computeNodes)
	if err != nil {
		t.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	cfg.Faults = inj
	cfg.Workers = workers
	sq, err := New(cfg, cl, pfs)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sq, cl, repo
}

// bootStormDeployment is the benchmark fixture: a fault-free deployment
// whose boots carry a simulated device wait, so throughput is I/O-bound
// the way a real storm is.
func bootStormDeployment(b *testing.B, computeNodes int, latency time.Duration) (*Squirrel, *cluster.Cluster, *corpus.Repository) {
	b.Helper()
	cl, err := cluster.New(cluster.GigE, 4, computeNodes)
	if err != nil {
		b.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	cfg.BootLatency = latency
	sq, err := New(cfg, cl, pfs)
	if err != nil {
		b.Fatal(err)
	}
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		b.Fatal(err)
	}
	return sq, cl, repo
}

// TestSentinelErrors pins the errors.Is contract of the public API: the
// unknown-image, unknown-node, and offline-node failure modes must be
// distinguishable across Boot, Register, Deregister, and SyncNode.
func TestSentinelErrors(t *testing.T) {
	sq, _, repo := deployment(t, 2)
	im := repo.Images[0]
	if _, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node00"}); !errors.Is(err, ErrUnknownImage) {
		t.Fatalf("boot of unregistered image: want ErrUnknownImage, got %v", err)
	}
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); !errors.Is(err, ErrRegistered) {
		t.Fatalf("duplicate register: want ErrRegistered, got %v", err)
	}
	if _, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "ghost"}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("boot on unknown node: want ErrUnknownNode, got %v", err)
	}
	if _, err := sq.SyncNode(bg, "ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("sync of unknown node: want ErrUnknownNode, got %v", err)
	}
	if err := sq.Deregister("nope"); !errors.Is(err, ErrUnknownImage) {
		t.Fatalf("deregister of unknown image: want ErrUnknownImage, got %v", err)
	}
	if err := sq.SetOnline("node00", false); err != nil {
		t.Fatal(err)
	}
	if _, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node00"}); !errors.Is(err, ErrNodeOffline) {
		t.Fatalf("boot on offline node: want ErrNodeOffline, got %v", err)
	}
	// The deprecated alias keeps old errors.Is checks working.
	if !errors.Is(ErrNotRegistered, ErrUnknownImage) {
		t.Fatal("ErrNotRegistered must alias ErrUnknownImage")
	}
}

// TestParallelLegsMatchSerial registers the same fault-seeded images on
// two identical deployments — one applying propagation legs serially,
// one with maximum parallelism — and requires byte-identical reports.
// All order-dependent fault draws happen outside the parallel phase, so
// worker scheduling must not be observable.
func TestParallelLegsMatchSerial(t *testing.T) {
	plan := fault.Plan{
		Seed: 4242, Drop: 0.2, Truncate: 0.05, Corrupt: 0.1,
		Crash: 0.04, Torn: 0.05, MaxCrashes: 2,
	}
	serial, _, repoS := stormDeployment(t, 6, 1, plan)
	parallel, _, repoP := stormDeployment(t, 6, 8, plan)
	for i := 0; i < 4; i++ {
		repS, errS := serial.Register(context.Background(), RegisterRequest{Image: repoS.Images[i], At: day(i)})
		repP, errP := parallel.Register(context.Background(), RegisterRequest{Image: repoP.Images[i], At: day(i)})
		if (errS == nil) != (errP == nil) {
			t.Fatalf("register %d: serial err=%v parallel err=%v", i, errS, errP)
		}
		if !reflect.DeepEqual(repS, repP) {
			t.Fatalf("register %d diverged:\nserial:   %+v\nparallel: %+v", i, repS, repP)
		}
	}
	hS, hP := serial.Health(), parallel.Health()
	if !reflect.DeepEqual(hS, hP) {
		t.Fatalf("health diverged:\nserial:   %+v\nparallel: %+v", hS, hP)
	}
}

// TestConcurrentSameNodeBoots hammers one node with concurrent verified
// boots of the same image; every boot must be warm and correct (the
// replica chain is read-shared, never mutated by a boot).
func TestConcurrentSameNodeBoots(t *testing.T) {
	sq, _, repo := deployment(t, 2)
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node01", Verify: true})
			if err != nil {
				t.Errorf("boot: %v", err)
				return
			}
			if !rep.Warm {
				t.Errorf("concurrent same-node boot went cold: %+v", rep)
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentRegisterSameImage races two registrations of the same
// image: exactly one must win, the other must fail with ErrRegistered,
// and the winner's snapshot must reach every node.
func TestConcurrentRegisterSameImage(t *testing.T) {
	sq, cl, repo := deployment(t, 4)
	im := repo.Images[0]
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)})
			errs <- err
		}()
	}
	var won, dup int
	for i := 0; i < 2; i++ {
		switch err := <-errs; {
		case err == nil:
			won++
		case errors.Is(err, ErrRegistered):
			dup++
		default:
			t.Fatalf("unexpected register error: %v", err)
		}
	}
	if won != 1 || dup != 1 {
		t.Fatalf("want exactly one winner and one ErrRegistered, got %d/%d", won, dup)
	}
	for _, n := range cl.Compute {
		if rep, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: n.ID, Verify: true}); err != nil || !rep.Warm {
			t.Fatalf("boot on %s after racing registers: warm=%v err=%v", n.ID, rep.Warm, err)
		}
	}
}

// TestRegisterCancelledBeforeCommit aborts a registration with an
// already-cancelled context: nothing may be committed, and a retry must
// succeed from clean state.
func TestRegisterCancelledBeforeCommit(t *testing.T) {
	sq, _, repo := deployment(t, 2)
	im := repo.Images[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sq.Register(ctx, RegisterRequest{Image: im, At: day(0)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := sq.Registered(); len(got) != 0 {
		t.Fatalf("cancelled register left images behind: %v", got)
	}
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatalf("retry after cancelled register: %v", err)
	}
}

// TestRegisterCancelledMidPropagation cancels after the storage-side
// commit but before all legs applied (serial workers make the cut
// deterministic): the commit stands, the image is registered, skipped
// nodes are marked lagging, and SyncNode heals them.
func TestRegisterCancelledMidPropagation(t *testing.T) {
	sq, cl, repo := stormDeployment(t, 4, 1, fault.Plan{Seed: 1})
	im := repo.Images[0]
	// Err call sites on this path: one at entry, one pre-propagation
	// inside the commit section, then one per leg. k=3 lets the first
	// leg through and cancels from the second leg on.
	ctx := &countdownCtx{k: 3}
	rep, err := sq.Register(ctx, RegisterRequest{Image: im, At: day(0)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep.Nodes != 1 || len(rep.Lagging) != 3 {
		t.Fatalf("want 1 synced + 3 lagging-after-cancel, got %+v", rep)
	}
	if got := sq.Registered(); len(got) != 1 {
		t.Fatalf("post-commit cancel must keep the image registered, got %v", got)
	}
	lag := sq.Lagging()
	if len(lag) != 3 {
		t.Fatalf("want 3 lagging nodes, got %v", lag)
	}
	for _, id := range lag {
		srep, err := sq.SyncNode(bg, id)
		if err != nil {
			t.Fatal(err)
		}
		if !srep.Healed {
			t.Fatalf("sync of cancelled-leg node %s did not heal: %+v", id, srep)
		}
	}
	for _, n := range cl.Compute {
		if brep, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: n.ID, Verify: true}); err != nil || !brep.Warm {
			t.Fatalf("boot on %s after heal: warm=%v err=%v", n.ID, brep.Warm, err)
		}
	}
}

// TestBootCancelledMidReplay cancels a boot partway through its trace
// replay; the boot must abort with the context error and leave no
// deployment state behind.
func TestBootCancelledMidReplay(t *testing.T) {
	sq, _, repo := deployment(t, 2)
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	// One Err call at entry, one per trace entry: k=2 cancels at the
	// second read.
	ctx := &countdownCtx{k: 2}
	if _, err := sq.Boot(ctx, BootRequest{Image: im.ID, Node: "node01", Verify: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The node is untouched: a plain boot still runs warm.
	if rep, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node01", Verify: true}); err != nil || !rep.Warm {
		t.Fatalf("boot after cancelled boot: warm=%v err=%v", rep.Warm, err)
	}
}

// TestMaintenanceCancellation covers the remaining context plumbing:
// Scrub, Resilver, and SyncNode must refuse an already-cancelled
// context without touching any replica.
func TestMaintenanceCancellation(t *testing.T) {
	sq, _, repo := deployment(t, 2)
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[0], At: day(0)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sq.ScrubNode(ctx, "node00", day(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScrubNode: want context.Canceled, got %v", err)
	}
	if _, err := sq.ScrubAll(ctx, day(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScrubAll: want context.Canceled, got %v", err)
	}
	if _, err := sq.ResilverNode(ctx, "node00", day(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("ResilverNode: want context.Canceled, got %v", err)
	}
	if _, err := sq.ResilverAll(ctx, day(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("ResilverAll: want context.Canceled, got %v", err)
	}
	if _, err := sq.SyncNode(ctx, "node00"); !errors.Is(err, context.Canceled) {
		t.Fatalf("SyncNode: want context.Canceled, got %v", err)
	}
}

// TestConcurrentRegisterAndBootInterleaving races registrations against
// verified boots and syncs under a seeded fault plan; afterwards every
// node must converge to every image (the chaos-soak invariant, now under
// true concurrency). The race detector is the oracle for safety; the
// convergence loop is the oracle for liveness.
func TestConcurrentRegisterAndBootInterleaving(t *testing.T) {
	plan := fault.Plan{Seed: 7, Drop: 0.1, Corrupt: 0.05, MaxCrashes: 1, Crash: 0.02}
	sq, cl, repo := stormDeployment(t, 4, 0, plan)
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[0], At: day(0)}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 1; i <= 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)}); err != nil {
				t.Errorf("register %d: %v", i, err)
			}
		}(i)
	}
	for _, n := range cl.Compute {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				// Drops/corruption can leave the node lagging mid-race;
				// verified boots heal and must stay correct throughout.
				if _, err := sq.Boot(bg, BootRequest{Image: repo.Images[0].ID, Node: id, Verify: true}); err != nil &&
					!errors.Is(err, ErrNodeOffline) {
					t.Errorf("boot on %s: %v", id, err)
					return
				}
			}
		}(n.ID)
	}
	wg.Wait()
	// Convergence: restart anything down, then sync everything.
	for _, st := range sq.Health() {
		if !st.Online {
			if _, err := sq.RestartNode(st.NodeID, day(6)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, n := range cl.Compute {
		if _, err := sq.SyncNode(bg, n.ID); err != nil {
			t.Fatal(err)
		}
		for i := 0; i <= 4; i++ {
			rep, err := sq.Boot(bg, BootRequest{Image: repo.Images[i].ID, Node: n.ID, Verify: true})
			if err != nil {
				t.Fatalf("final boot of %s on %s: %v", repo.Images[i].ID, n.ID, err)
			}
			if !rep.Warm {
				t.Fatalf("final boot of %s on %s went cold: %+v", repo.Images[i].ID, n.ID, rep)
			}
		}
	}
}

// BenchmarkBootStorm measures warm-boot throughput at increasing
// concurrency over a 16-node cluster — the boot-storm scenario the lock
// sharding exists for. Each boot carries a simulated device wait
// (Config.BootLatency), making the storm I/O-bound like the real thing;
// the /1 case is the serialized baseline (exactly what the old global
// manager mutex produced at any concurrency), and scaling shows as
// ns/op dropping with the worker count as the waits overlap.
func BenchmarkBootStorm(b *testing.B) {
	for _, workers := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprint(workers), func(b *testing.B) {
			sq, cl, repo := bootStormDeployment(b, 16, time.Millisecond)
			im := repo.Images[0]
			if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
				b.Fatal(err)
			}
			// One warm-up boot per node so the storm measures steady state.
			for _, n := range cl.Compute {
				if _, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: n.ID, Verify: false}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						node := cl.Compute[int(i)%len(cl.Compute)].ID
						if _, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: node, Verify: false}); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
