package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Deadline-aware boot admission control. A boot storm that outruns a
// node's capacity should shed load at the door, not queue unboundedly:
// each compute node gets a bounded in-flight gate with a bounded FIFO
// waiter queue. A boot arriving with the queue full is shed immediately
// with ErrOverloaded; a queued boot whose context expires before a slot
// frees is shed too, well inside its deadline instead of timing out deep
// in the read path.

// AdmissionPolicy bounds per-node boot concurrency.
type AdmissionPolicy struct {
	// MaxInFlight is how many boots one node runs concurrently. Zero or
	// negative disables admission control entirely (the default — the
	// unbounded behavior existing deployments rely on).
	MaxInFlight int
	// MaxQueue bounds boots waiting for a slot on one node. Zero or
	// negative means no queueing: a boot either takes a slot immediately
	// or is shed.
	MaxQueue int
}

// Shed reasons, distinguished internally so telemetry can count them
// apart; both surface as ErrOverloaded.
var (
	errAdmitFull    = errors.New("admission queue full")
	errAdmitExpired = errors.New("deadline expired while queued")
)

// bootGate is one node's admission gate: a bounded in-flight count plus
// a FIFO waiter queue. A finishing boot hands its slot directly to the
// head waiter, so admission order is arrival order.
type bootGate struct {
	mu       sync.Mutex
	inflight int
	queue    []chan struct{}
}

// admit blocks until the caller holds a slot, the queue rejects it, or
// ctx expires. On success the returned release frees the slot (hand it
// to the head waiter, or decrement in-flight); it must be called exactly
// once. queued reports whether the boot waited at all.
func (g *bootGate) admit(ctx context.Context, maxInFlight, maxQueue int) (release func(), queued bool, err error) {
	g.mu.Lock()
	if g.inflight < maxInFlight {
		g.inflight++
		g.mu.Unlock()
		return g.release, false, nil
	}
	if len(g.queue) >= maxQueue {
		g.mu.Unlock()
		return nil, false, errAdmitFull
	}
	slot := make(chan struct{})
	g.queue = append(g.queue, slot)
	g.mu.Unlock()
	select {
	case <-slot:
		return g.release, true, nil
	case <-ctx.Done():
	}
	// Expired while queued. Unless a slot grant raced the deadline, pull
	// the waiter out of the queue; if it did race, the slot is already
	// ours and must be handed straight on.
	g.mu.Lock()
	for i, ch := range g.queue {
		if ch == slot {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			g.mu.Unlock()
			return nil, true, errAdmitExpired
		}
	}
	g.mu.Unlock()
	g.release()
	return nil, true, errAdmitExpired
}

// release frees one slot: the head waiter inherits it if any is queued,
// otherwise the in-flight count drops.
func (g *bootGate) release() {
	g.mu.Lock()
	if len(g.queue) > 0 {
		head := g.queue[0]
		g.queue = g.queue[1:]
		g.mu.Unlock()
		close(head)
		return
	}
	g.inflight--
	g.mu.Unlock()
}

// admit runs one boot through nodeID's admission gate. With admission
// control disabled (or an unknown node) it admits immediately with a
// no-op release. Sheds are counted in telemetry (admit.shed for a full
// queue, admit.expired for a deadline met while queued) and annotated on
// the boot span; both wrap ErrOverloaded.
func (s *Squirrel) admit(ctx context.Context, nodeID string, sp *obs.Span) (func(), error) {
	pol := s.cfg.Admission
	g := s.gates[nodeID]
	if pol.MaxInFlight <= 0 || g == nil {
		return func() {}, nil
	}
	maxQueue := pol.MaxQueue
	if maxQueue < 0 {
		maxQueue = 0
	}
	ctr := s.injector().Counters()
	release, queued, err := g.admit(ctx, pol.MaxInFlight, maxQueue)
	if queued {
		ctr.Add("admit.queued", 1)
		sp.Annotate("queued", 1)
	}
	switch {
	case errors.Is(err, errAdmitFull):
		ctr.Add("admit.shed", 1)
		sp.Annotate("shed", 1)
		return nil, fmt.Errorf("core: boot on %s: %w: %w", nodeID, ErrOverloaded, err)
	case errors.Is(err, errAdmitExpired):
		ctr.Add("admit.expired", 1)
		sp.Annotate("shed", 1)
		return nil, fmt.Errorf("core: boot on %s: %w: %w: %w", nodeID, ErrOverloaded, err, ctx.Err())
	}
	ctr.Add("admit.admitted", 1)
	return release, nil
}
