package core

import (
	"errors"
	"fmt"

	"repro/internal/zvol"
)

// SyncMode says how a lagging node was brought back in sync.
type SyncMode int

// Sync modes (§3.5's two scenarios).
const (
	SyncNone        SyncMode = iota // already up to date
	SyncIncremental                 // diff since the node's latest snapshot
	SyncFull                        // full scVolume re-replication
)

// String renders the mode for reports.
func (m SyncMode) String() string {
	switch m {
	case SyncIncremental:
		return "incremental"
	case SyncFull:
		return "full"
	default:
		return "none"
	}
}

// SyncReport describes one offline-propagation catch-up.
type SyncReport struct {
	NodeID   string
	Mode     SyncMode
	Bytes    int64   // stream size transferred
	XferSec  float64 // unicast transfer duration
	Snapshot string  // snapshot the node ended at
}

// SyncNode implements offline propagation (§3.5): upon boot, a compute
// node asks for the diff between its latest local snapshot and the
// scVolume's latest. If the node's snapshot is still retained on the
// storage side the incremental stream succeeds; if the node has been
// offline for longer than the retention window (or is brand new), the
// incremental send fails and the whole scVolume is re-replicated.
func (s *Squirrel) SyncNode(nodeID string) (SyncReport, error) {
	ccv, ok := s.cc[nodeID]
	if !ok {
		return SyncReport{}, fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	latest := s.sc.LatestSnapshot()
	if latest == nil {
		return SyncReport{NodeID: nodeID, Mode: SyncNone}, nil
	}
	local := ""
	if snap := ccv.LatestSnapshot(); snap != nil {
		local = snap.Name
		if local == latest.Name {
			return SyncReport{NodeID: nodeID, Mode: SyncNone, Snapshot: local}, nil
		}
	}
	node, err := s.computeNode(nodeID)
	if err != nil {
		return SyncReport{}, err
	}
	rep := SyncReport{NodeID: nodeID, Snapshot: latest.Name}

	if local != "" {
		stream, err := s.sc.Send(local, latest.Name)
		switch {
		case err == nil:
			if err := ccv.Receive(stream); err != nil {
				return SyncReport{}, fmt.Errorf("core: sync receive on %s: %w", nodeID, err)
			}
			rep.Mode = SyncIncremental
			rep.Bytes = stream.SizeBytes()
			node.Recv(stream.SizeBytes())
			s.cl.Storage[0].Send(stream.SizeBytes())
			rep.XferSec = s.cl.Fabric.TransferSec(stream.SizeBytes())
			return rep, nil
		case errors.Is(err, zvol.ErrNotAncestor):
			// The node's snapshot fell out of the retention window: fall
			// through to full re-replication.
		default:
			return SyncReport{}, err
		}
	}
	// Full re-replication: the node starts from an empty replica.
	fresh, err := zvol.New(s.cfg.Volume)
	if err != nil {
		return SyncReport{}, err
	}
	stream, err := s.sc.Send("", latest.Name)
	if err != nil {
		return SyncReport{}, err
	}
	if err := fresh.Receive(stream); err != nil {
		return SyncReport{}, fmt.Errorf("core: full sync on %s: %w", nodeID, err)
	}
	s.cc[nodeID] = fresh
	rep.Mode = SyncFull
	rep.Bytes = stream.SizeBytes()
	node.Recv(stream.SizeBytes())
	s.cl.Storage[0].Send(stream.SizeBytes())
	rep.XferSec = s.cl.Fabric.TransferSec(stream.SizeBytes())
	return rep, nil
}
