package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/zvol"
)

// SyncMode says how a lagging node was brought back in sync.
type SyncMode int

// Sync modes (§3.5's two scenarios).
const (
	SyncNone        SyncMode = iota // already up to date
	SyncIncremental                 // diff since the node's latest snapshot
	SyncFull                        // full scVolume re-replication
)

// String renders the mode for reports.
func (m SyncMode) String() string {
	switch m {
	case SyncIncremental:
		return "incremental"
	case SyncFull:
		return "full"
	default:
		return "none"
	}
}

// SyncReport describes one offline-propagation catch-up.
type SyncReport struct {
	NodeID   string
	Mode     SyncMode
	Bytes    int64   // stream size transferred
	XferSec  float64 // unicast transfer duration
	Snapshot string  // snapshot the node ended at
	Healed   bool    // the node was lagging and this sync cleared it
}

// SyncNode implements offline propagation (§3.5): upon boot, a compute
// node asks for the diff between its latest local snapshot and the
// scVolume's latest. If the node's snapshot is still retained on the
// storage side the incremental stream succeeds; if the node has been
// offline for longer than the retention window (or is brand new), the
// incremental send fails and the whole scVolume is re-replicated. A
// successful sync clears the node's lagging mark: this is the healing
// path for replicas that exhausted their registration repair budget.
//
// The sync serializes only against other operations on the same node;
// syncs of different nodes run concurrently. A context cancelled before
// the transfer begins aborts with the node unchanged.
func (s *Squirrel) SyncNode(ctx context.Context, nodeID string) (SyncReport, error) {
	ctx = reqCtx(ctx)
	if err := ctx.Err(); err != nil {
		return SyncReport{}, fmt.Errorf("core: sync %s: %w", nodeID, err)
	}
	if _, ok := s.nodes[nodeID]; !ok {
		return SyncReport{}, fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	defer s.nodeLocks.lock(nodeID).Unlock()
	return s.syncNodeGuarded(obs.SpanFromContext(ctx), nodeID)
}

// syncNodeGuarded wraps the sync body in a span: a root "sync" operation
// when called directly, a child of the boot that triggered the heal
// otherwise. Caller holds the node lock.
func (s *Squirrel) syncNodeGuarded(parent *obs.Span, nodeID string) (SyncReport, error) {
	ccv := s.ccVolume(nodeID)
	if ccv == nil {
		return SyncReport{}, fmt.Errorf("%w: %s", ErrUnknownNode, nodeID)
	}
	sp := s.tr.Op(parent, obs.OpSync, nodeID, "")
	rep, err := s.syncGuarded(ccv, nodeID)
	sp.AddBytes(rep.Bytes)
	sp.AddSim(rep.XferSec)
	sp.Annotate("mode."+rep.Mode.String(), 1)
	if rep.Healed {
		sp.Annotate("healed", 1)
	}
	sp.Fail(err)
	sp.Finish()
	return rep, err
}

func (s *Squirrel) syncGuarded(ccv *zvol.Volume, nodeID string) (SyncReport, error) {
	inj := s.injector()
	// A torn apply is rolled back before anything else: sync cannot stack
	// a new receive on an open journal, and the rolled-back replica simply
	// looks like it missed the registration this sync now delivers.
	if ccv.NeedsRecovery() {
		ccv.Recover()
		inj.Counters().Add("recover.rollback", 1)
	}
	s.state.RLock()
	wasLagging := s.lagging[nodeID]
	s.state.RUnlock()
	heal := func(rep SyncReport) SyncReport {
		s.state.Lock()
		defer s.state.Unlock()
		if wasLagging {
			delete(s.lagging, nodeID)
			rep.Healed = true
			inj.Counters().Add("repair.healed", 1)
		}
		// A synced node's holdings are authoritative again: (re)announce
		// them so the peer exchange can route misses here. (If the node
		// still has damaged blocks, announceHoldingsLocked keeps it
		// withdrawn — sync fixes staleness, resilver fixes rot.)
		if s.online[nodeID] {
			s.announceHoldingsLocked(nodeID)
		}
		return rep
	}
	latest := s.sc.LatestSnapshot()
	if latest == nil {
		return heal(SyncReport{NodeID: nodeID, Mode: SyncNone}), nil
	}
	local := ""
	if snap := ccv.LatestSnapshot(); snap != nil {
		local = snap.Name
		if local == latest.Name {
			return heal(SyncReport{NodeID: nodeID, Mode: SyncNone, Snapshot: local}), nil
		}
	}
	node, err := s.computeNode(nodeID)
	if err != nil {
		return SyncReport{}, err
	}
	// The catch-up stream comes from the storage side; a node across an
	// open cut cannot receive it. Fail fast — the post-heal anti-entropy
	// pass retries the sync once the fabric is whole again.
	if !s.cl.Reachable(s.cl.Storage[0].ID, nodeID) {
		inj.Counters().Add("sync.partitioned", 1)
		return SyncReport{}, fmt.Errorf("core: sync %s: %w", nodeID, cluster.ErrUnreachable)
	}
	rep := SyncReport{NodeID: nodeID, Snapshot: latest.Name}

	if local != "" {
		stream, err := s.sc.Send(local, latest.Name)
		switch {
		case err == nil:
			if err := ccv.Receive(stream); err != nil {
				return SyncReport{}, fmt.Errorf("core: sync receive on %s: %w", nodeID, err)
			}
			rep.Mode = SyncIncremental
			rep.Bytes = stream.SizeBytes()
			rep.XferSec = s.cl.Unicast(s.cl.Storage[0], node, stream.SizeBytes())
			return heal(rep), nil
		case errors.Is(err, zvol.ErrNotAncestor):
			// The node's snapshot fell out of the retention window: fall
			// through to full re-replication.
		default:
			return SyncReport{}, err
		}
	}
	// Full re-replication: the node starts from an empty replica.
	fresh, err := zvol.New(s.cfg.Volume)
	if err != nil {
		return SyncReport{}, err
	}
	if s.tel != nil {
		fresh.SetCounters(s.tel.Counters())
	}
	stream, err := s.sc.Send("", latest.Name)
	if err != nil {
		return SyncReport{}, err
	}
	if err := fresh.Receive(stream); err != nil {
		return SyncReport{}, fmt.Errorf("core: full sync on %s: %w", nodeID, err)
	}
	s.state.Lock()
	s.cc[nodeID] = fresh
	// The damaged replica was thrown away wholesale; the fresh one is
	// clean by construction (Receive verified every block).
	delete(s.damaged, nodeID)
	s.state.Unlock()
	rep.Mode = SyncFull
	rep.Bytes = stream.SizeBytes()
	rep.XferSec = s.cl.Unicast(s.cl.Storage[0], node, stream.SizeBytes())
	return heal(rep), nil
}
