package core

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/gossip"
)

// stepClock drives gossip lease time deterministically: one Advance per
// round makes rounds the only clock the soak has.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func newStepClock() *stepClock {
	return &stepClock{t: time.Date(2014, 6, 23, 9, 0, 0, 0, time.UTC)}
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// gossipTruth is the authoritative holder set for obj: online,
// undamaged nodes whose replica physically holds it. Lagging nodes
// count — they advertise what they do hold — but nothing behind an open
// cut or below the damage bar does.
func gossipTruth(sq *Squirrel, obj string) []string {
	sq.state.RLock()
	defer sq.state.RUnlock()
	var out []string
	for id, v := range sq.cc {
		if sq.online[id] && len(sq.damaged[id]) == 0 && !sq.cl.Unreachable(id) && v.HasObject(obj) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// gossipConverged reports whether every online node's index lookup of
// every registered image matches the authoritative holder set exactly:
// zero live replicas unadvertised, zero dead or dropped replicas still
// served.
func gossipConverged(sq *Squirrel) (bool, string) {
	sq.state.RLock()
	var queriers []string
	for id := range sq.cc {
		if sq.online[id] {
			queriers = append(queriers, id)
		}
	}
	sq.state.RUnlock()
	sort.Strings(queriers)
	for _, obj := range sq.Registered() {
		truth := gossipTruth(sq, obj)
		for _, q := range queriers {
			if got := sq.IndexHolders(obj, q); !reflect.DeepEqual(got, truth) {
				return false, fmt.Sprintf("%s from %s: lookup %v, truth %v", obj, q, got, truth)
			}
		}
	}
	return true, ""
}

// TestGossipChurnSoak is the acceptance soak for the decentralized
// index: with cfg.Index = gossip, a seeded mix of crash + partition +
// replica-drop + mid-cut registration + restart events leaves divergent
// views, and after the last event the index must converge — every
// online node's lookup of every image exactly equal to the live holder
// truth — within a deterministic round bound. The bound is lease decay
// (TTL rounds, the crashed node's entries aging out everywhere) plus
// anti-entropy spread; it is asserted, not observed.
func TestGossipChurnSoak(t *testing.T) {
	const (
		ttlRounds = 6
		// convergeBound is the asserted claim: TTL rounds of lease decay
		// plus four rounds of refresh/anti-entropy spread.
		convergeBound = ttlRounds + 4
	)
	for _, seed := range []int64{1337, 31337, 777} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			clk := newStepClock()
			plan := fault.Plan{Seed: seed, GossipDrop: 0.25}
			sq, cl, repo := resilienceDeployment(t, 8, plan, func(cfg *Config) {
				cfg.Index = IndexGossip
				cfg.Gossip = gossip.Config{
					Seed:   seed,
					TTL:    ttlRounds * time.Second,
					Fanout: 2,
					Owners: 2,
					Clock:  clk.Now,
				}
			})
			bg := context.Background()
			rounds := func(n int) {
				t.Helper()
				for i := 0; i < n; i++ {
					clk.Advance(time.Second)
					if _, err := sq.GossipTicks(1); err != nil {
						t.Fatal(err)
					}
				}
			}
			var ids []string
			for _, n := range cl.Compute {
				ids = append(ids, n.ID)
			}
			sort.Strings(ids)
			inj := sq.injector()

			// waitConverged runs rounds until the index converges or the
			// bound is spent, returning how many it used.
			waitConverged := func(bound int) (int, bool, string) {
				t.Helper()
				var why string
				for used := 0; used <= bound; used++ {
					var ok bool
					if ok, why = gossipConverged(sq); ok {
						return used, true, ""
					}
					rounds(1)
				}
				return bound, false, why
			}

			for i := 0; i < 3; i++ {
				if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)}); err != nil {
					t.Fatal(err)
				}
			}
			// Even the clean announcements cross a lossy gossip plane
			// (25% message drop); anti-entropy repairs them within the
			// bound.
			if used, ok, why := waitConverged(convergeBound); !ok {
				t.Fatalf("not converged after clean registrations: %s", why)
			} else if used > 0 {
				t.Logf("seed %d: initial spread repaired dropped announcements in %d rounds", seed, used)
			}

			// Event 1: two nodes crash cold. Nobody retracts their
			// leases. One restarts later; the other stays dead, so its
			// entries can only leave the index by lease expiry — the
			// convergence bound must cover a full TTL of decay.
			picks := inj.PartitionPick("churn-crash", ids, 2)
			crashed, deadForGood := picks[0], picks[1]
			if err := sq.CrashNode(crashed, day(3)); err != nil {
				t.Fatal(err)
			}
			if err := sq.CrashNode(deadForGood, day(3)); err != nil {
				t.Fatal(err)
			}
			rounds(2)

			// Event 2: a minority cut opens among the survivors, and a
			// registration lands while it is open — the minority misses
			// it and goes lagging.
			var up []string
			for _, id := range ids {
				if id != crashed && id != deadForGood {
					up = append(up, id)
				}
			}
			minority := inj.PartitionPick("churn-cut", up, 2)
			if err := sq.PartitionNodes(minority...); err != nil {
				t.Fatal(err)
			}
			if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[3], At: day(4)}); err != nil {
				t.Fatal(err)
			}
			// Event 3: a majority replica is dropped mid-cut (capacity
			// reclaim) — its tombstone must beat the old lease.
			var dropOn string
			for _, id := range up {
				if id != minority[0] && id != minority[1] {
					dropOn = id
					break
				}
			}
			if err := sq.DropReplica(dropOn, repo.Images[0].ID); err != nil {
				t.Fatal(err)
			}
			rounds(3)

			// Event 4: everything heals at once — cut closes, crashed
			// node restarts, lagging nodes sync. This is the worst case
			// the bound must cover: simultaneous crash recovery,
			// partition reconciliation, and ownership hand-off.
			heal, err := sq.HealPartition()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sq.RestartNode(crashed, day(5)); err != nil {
				t.Fatal(err)
			}
			for _, id := range append(append([]string(nil), heal.Lagging...), crashed) {
				if _, err := sq.SyncNode(bg, id); err != nil {
					t.Fatal(err)
				}
			}

			// Events over. The index must converge within the bound.
			used, converged, why := waitConverged(convergeBound)
			if !converged {
				t.Fatalf("seed %d: no convergence within %d rounds of the last event: %s",
					seed, convergeBound, why)
			}
			t.Logf("seed %d: converged %d rounds after the last event", seed, used)

			// Stability: a converged index stays converged as rounds keep
			// running (no oscillation from late tombstones or re-adverts).
			rounds(2)
			if ok, why := gossipConverged(sq); !ok {
				t.Fatalf("seed %d: convergence did not hold: %s", seed, why)
			}
			// Zero expired-lease entries survive in live views once
			// converged rounds have pruned.
			if stale := sq.Stats().GossipStale; stale != 0 {
				t.Fatalf("seed %d: %d expired leases still stored in live views", seed, stale)
			}
			if src := sq.Stats().IndexSource; src != "gossip" {
				t.Fatalf("IndexSource = %q, want gossip", src)
			}

			// The decentralized view must actually serve the boot path:
			// manufacture a cold miss and watch the peer exchange fetch
			// through gossip lookups.
			if err := sq.DropReplica(ids[0], repo.Images[1].ID); err != nil {
				t.Fatal(err)
			}
			rep, err := sq.Boot(bg, BootRequest{Image: repo.Images[1].ID, Node: ids[0], Verify: true})
			if err != nil {
				t.Fatal(err)
			}
			if rep.PeerBytes == 0 {
				t.Fatalf("cold boot served no peer bytes through the gossip index: %+v", rep)
			}
		})
	}
}

// TestGossipIndexBootParity: the same cold-miss boot serves peer bytes
// whichever index implementation resolves the holders, and the gossip
// run keeps breakers and serve slots on the shared peer.Index.
func TestGossipIndexBootParity(t *testing.T) {
	boot := func(mode IndexMode) BootReport {
		clk := newStepClock()
		sq, _, repo := resilienceDeployment(t, 6, fault.Plan{Seed: 7}, func(cfg *Config) {
			cfg.Index = mode
			cfg.Gossip = gossip.Config{Seed: 7, TTL: time.Hour, Clock: clk.Now}
		})
		im := repo.Images[0]
		if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
			t.Fatal(err)
		}
		if err := sq.DropReplica("node03", im.ID); err != nil {
			t.Fatal(err)
		}
		rep, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node03", Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(sq.PeerIndex().Loads()) == 0 {
			t.Fatalf("mode %s: no serve-load accounting on the shared peer index", mode)
		}
		return rep
	}
	central := boot(IndexCentral)
	decentralized := boot(IndexGossip)
	if central.PeerBytes == 0 || decentralized.PeerBytes == 0 {
		t.Fatalf("peer bytes: central %d, gossip %d — both must serve the miss",
			central.PeerBytes, decentralized.PeerBytes)
	}
	if central.PeerBytes != decentralized.PeerBytes {
		t.Fatalf("peer bytes diverge across index modes: central %d, gossip %d",
			central.PeerBytes, decentralized.PeerBytes)
	}
}
