package core

import (
	"io"
	"testing"

	"repro/internal/cluster"
	"repro/internal/corpus"
)

// stubPFS serves deterministic content (byte(off+i)) up to its size and
// records every read range, so tests can assert exactly which ranges
// went over the network.
type stubPFS struct {
	size  int64
	calls []corpus.Extent
}

func (p *stubPFS) ReadAt(client *cluster.Node, name string, buf []byte, off int64) (int, error) {
	n := int64(len(buf))
	if rem := p.size - off; n > rem {
		n = rem
	}
	if n < 0 {
		n = 0
	}
	for i := int64(0); i < n; i++ {
		buf[i] = byte(off + i)
	}
	p.calls = append(p.calls, corpus.Extent{Off: off, Len: n})
	if n < int64(len(buf)) {
		return int(n), io.EOF
	}
	return int(n), nil
}

// boundaryBackend builds a chainBackend by hand: rawSize 80, cache
// extents [10,20) and [50,70), local replica materialized with the same
// byte(off) content the stub PFS serves.
func boundaryBackend(local bool) (*chainBackend, *stubPFS) {
	pfs := &stubPFS{size: 80}
	exts := []corpus.Extent{{Off: 10, Len: 10}, {Off: 50, Len: 20}}
	var data []byte
	bases := make([]int64, len(exts))
	for i, e := range exts {
		bases[i] = int64(len(data))
		for o := e.Off; o < e.Off+e.Len; o++ {
			data = append(data, byte(o))
		}
	}
	cb := &chainBackend{
		id:      "img",
		rawSize: 80,
		node:    &cluster.Node{ID: "nodeXX"},
		pfs:     pfs,
		exts:    exts,
		bases:   bases,
	}
	if local {
		cb.local = true
		cb.cacheData = data
	}
	return cb, pfs
}

func checkContent(t *testing.T, buf []byte, off int64) {
	t.Helper()
	for i, b := range buf {
		if want := byte(off + int64(i)); b != want {
			t.Fatalf("byte %d (image offset %d): got %d want %d", i, off+int64(i), b, want)
		}
	}
}

func TestReadAtGapBeforeFirstExtent(t *testing.T) {
	// A read starting before the first cache extent crosses a PFS-only
	// gap into cached bytes.
	cb, pfs := boundaryBackend(true)
	buf := make([]byte, 15)
	n, err := cb.ReadAt(buf, 0)
	if err != nil || n != 15 {
		t.Fatalf("ReadAt: n=%d err=%v", n, err)
	}
	checkContent(t, buf, 0)
	if cb.networkBytes != 10 || cb.cacheBytes != 5 {
		t.Fatalf("network=%d cache=%d, want 10/5", cb.networkBytes, cb.cacheBytes)
	}
	if len(pfs.calls) != 1 || pfs.calls[0] != (corpus.Extent{Off: 0, Len: 10}) {
		t.Fatalf("pfs calls: %+v", pfs.calls)
	}
}

func TestReadAtStraddlesLastExtentToEOF(t *testing.T) {
	// A read straddling the last extent runs through the trailing gap up
	// to RawSize, then reports EOF for the remainder.
	cb, _ := boundaryBackend(true)
	buf := make([]byte, 30)
	n, err := cb.ReadAt(buf, 65)
	if err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if n != 15 { // 5 cached [65,70) + 10 from PFS [70,80)
		t.Fatalf("read %d bytes, want 15", n)
	}
	checkContent(t, buf[:n], 65)
	if cb.cacheBytes != 5 || cb.networkBytes != 10 {
		t.Fatalf("cache=%d network=%d, want 5/10", cb.cacheBytes, cb.networkBytes)
	}
	// Entirely past EOF: zero bytes, EOF.
	if n, err := cb.ReadAt(make([]byte, 4), 80); n != 0 || err != io.EOF {
		t.Fatalf("past-EOF read: n=%d err=%v", n, err)
	}
}

func TestReadAtZeroLength(t *testing.T) {
	cb, pfs := boundaryBackend(true)
	for _, off := range []int64{0, 15, 40, 80, 200} {
		n, err := cb.ReadAt(nil, off)
		if n != 0 || err != nil {
			t.Fatalf("zero-length read at %d: n=%d err=%v", off, n, err)
		}
	}
	if cb.networkBytes != 0 || cb.cacheBytes != 0 || len(pfs.calls) != 0 {
		t.Fatal("zero-length reads must not move bytes")
	}
}

func TestCacheRangeBoundaries(t *testing.T) {
	cb, _ := boundaryBackend(true)
	big := make([]byte, 100)
	cases := []struct {
		off    int64
		p      int
		n      int64
		ext    int
		served bool
	}{
		{0, 100, 10, -1, false},  // gap before first extent, clamped to it
		{10, 100, 10, 0, true},   // extent start, clamped to extent end
		{19, 100, 1, 0, true},    // last byte of extent 0
		{20, 100, 30, -1, false}, // gap between extents, clamped to extent 1
		{20, 5, 5, -1, false},    // gap read shorter than the gap
		{69, 100, 1, 1, true},    // last byte of extent 1
		{70, 100, 10, -1, false}, // trailing gap clamped at RawSize
		{75, 3, 3, -1, false},    // short read inside trailing gap
	}
	for _, c := range cases {
		n, ext, served := cb.cacheRange(big[:c.p], c.off)
		if n != c.n || ext != c.ext || served != c.served {
			t.Fatalf("cacheRange(off=%d,len=%d) = (%d,%d,%v), want (%d,%d,%v)",
				c.off, c.p, n, ext, served, c.n, c.ext, c.served)
		}
	}
	// Zero-length request resolves to zero bytes (inside an extent it
	// still reports the extent, serving nothing).
	if n, ext, _ := cb.cacheRange(nil, 15); n != 0 || ext != 0 {
		t.Fatalf("zero-length cacheRange: n=%d ext=%d", n, ext)
	}
}

func TestCacheRangeWithoutLocalReplica(t *testing.T) {
	// The same layout with no local replica: ranges inside extents are
	// reported as peer-servable misses (ext >= 0, served false) and no
	// bytes are copied.
	cb, _ := boundaryBackend(false)
	buf := make([]byte, 100)
	n, ext, served := cb.cacheRange(buf, 10)
	if n != 10 || ext != 0 || served {
		t.Fatalf("cold miss inside extent: (%d,%d,%v)", n, ext, served)
	}
	// With no fetcher attached, ReadAt sends everything to the PFS and
	// still returns correct content.
	got := make([]byte, 30)
	rn, err := cb.ReadAt(got, 5)
	if err != nil || rn != 30 {
		t.Fatalf("ReadAt: n=%d err=%v", rn, err)
	}
	checkContent(t, got, 5)
	if cb.cacheBytes != 0 || cb.networkBytes != 30 {
		t.Fatalf("cache=%d network=%d, want 0/30", cb.cacheBytes, cb.networkBytes)
	}
}

func TestCacheRangeNoExtents(t *testing.T) {
	pfs := &stubPFS{size: 40}
	cb := &chainBackend{id: "img", rawSize: 40, node: &cluster.Node{ID: "n"}, pfs: pfs}
	buf := make([]byte, 64)
	n, ext, served := cb.cacheRange(buf, 8)
	if n != 32 || ext != -1 || served { // clamped to RawSize
		t.Fatalf("extentless cacheRange: (%d,%d,%v)", n, ext, served)
	}
}
