package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/fault"
)

// chaosDeployment builds a deployment with a fault injector wired in.
func chaosDeployment(t testing.TB, computeNodes int, plan fault.Plan) (*Squirrel, *cluster.Cluster, *corpus.Repository, *fault.Injector) {
	t.Helper()
	inj, err := fault.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.GigE, 4, computeNodes)
	if err != nil {
		t.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	cfg.Faults = inj
	sq, err := New(cfg, cl, pfs)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sq, cl, repo, inj
}

// TestChaosSoakConvergence is the acceptance soak: a seeded fault plan
// with ≥20% multicast loss, stream corruption/truncation, and two
// mid-transfer node crashes across 12 registrations. Registrations must
// never error on replica-side faults, and after recovery every compute
// node must converge to the latest scVolume snapshot via retry/repair or
// lagging→SyncNode healing.
func TestChaosSoakConvergence(t *testing.T) {
	plan := fault.Plan{
		Seed: 1337, Drop: 0.25, Truncate: 0.08, Corrupt: 0.15,
		Crash: 0.06, MaxCrashes: 2,
	}
	sq, cl, repo, inj := chaosDeployment(t, 10, plan)

	const regs = 12
	var faults, retries int
	var repairBytes int64
	for i := 0; i < regs; i++ {
		rep, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)})
		if err != nil {
			t.Fatalf("registration %d must tolerate replica faults: %v", i, err)
		}
		faults += rep.Faults
		retries += rep.Retries
		repairBytes += rep.RepairBytes
		if rep.Retries > 0 && rep.RepairSec <= 0 {
			t.Fatalf("retries without backoff accounting: %+v", rep)
		}
	}
	if faults == 0 || retries == 0 {
		t.Fatalf("chaos plan injected nothing (faults=%d retries=%d)", faults, retries)
	}
	if repairBytes == 0 {
		t.Fatal("no unicast repair traffic despite stream loss")
	}
	c := inj.Counters().Snapshot()
	for _, k := range []string{"fault.drop", "fault.truncate", "fault.corrupt"} {
		if c[k] == 0 {
			t.Fatalf("no %s injected: %v", k, c)
		}
	}
	if inj.Crashes() != 2 {
		t.Fatalf("crashes = %d, want the full budget of 2", inj.Crashes())
	}

	// Recovery: crashed nodes restart, and the first boot on each node
	// heals any lagging replica through SyncNode.
	for _, n := range cl.Compute {
		if err := sq.SetOnline(n.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	want := sq.SCVolume().LatestSnapshot().Name
	latest := repo.Images[regs-1]
	for _, n := range cl.Compute {
		br, err := sq.Boot(context.Background(), BootRequest{Image: latest.ID, Node: n.ID, Verify: true})
		if err != nil {
			t.Fatalf("boot on %s after chaos: %v", n.ID, err)
		}
		if !br.Warm {
			t.Fatalf("%s should boot warm once healed", n.ID)
		}
		ccv, _ := sq.CCVolume(n.ID)
		snap := ccv.LatestSnapshot()
		if snap == nil || snap.Name != want {
			t.Fatalf("%s did not converge to %s", n.ID, want)
		}
		for i := 0; i < regs; i++ {
			if !ccv.HasObject(repo.Images[i].ID) {
				t.Fatalf("%s missing cache %s", n.ID, repo.Images[i].ID)
			}
		}
	}
	ds := sq.Stats()
	if ds.LaggingNodes != 0 || ds.StaleReplicas != 0 {
		t.Fatalf("deployment not converged: %+v", ds)
	}
}

// TestRegisterDegradesToLagging: under total stream loss the registration
// still succeeds, every replica is marked lagging, and the next boot on a
// lagging node heals it via full re-replication.
func TestRegisterDegradesToLagging(t *testing.T) {
	sq, _, repo, _ := chaosDeployment(t, 4, fault.Plan{Seed: 2, Drop: 1})
	rep, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[0], At: day(0)})
	if err != nil {
		t.Fatalf("total loss must not fail the registration: %v", err)
	}
	if rep.Nodes != 0 || len(rep.Lagging) != 4 {
		t.Fatalf("want 0 synced / 4 lagging, got %+v", rep)
	}
	if rep.Retries != 4*DefaultRepairPolicy().MaxAttempts {
		t.Fatalf("retries %d, want full budget per node", rep.Retries)
	}
	if got := len(sq.Lagging()); got != 4 {
		t.Fatalf("Lagging() = %d nodes", got)
	}
	if ds := sq.Stats(); ds.LaggingNodes != 4 {
		t.Fatalf("stats lagging %d", ds.LaggingNodes)
	}
	// A lagging node is skipped by the next registration's propagation.
	rep2, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[1], At: day(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Nodes != 0 || rep2.Faults != 0 {
		t.Fatalf("lagging nodes must be skipped, got %+v", rep2)
	}
	// Boot on a lagging node heals it first (full resync: it has no
	// snapshot at all), then boots warm.
	br, err := sq.Boot(context.Background(), BootRequest{Image: repo.Images[0].ID, Node: "node01", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !br.Healed || !br.Warm {
		t.Fatalf("boot should heal and go warm: %+v", br)
	}
	if got := len(sq.Lagging()); got != 3 {
		t.Fatalf("healed node still lagging? %v", sq.Lagging())
	}
}

// TestCrashMarksNodeOfflineAndLagging: a mid-transfer crash takes the
// node down; after restart its first boot heals it.
func TestCrashMarksNodeOfflineAndLagging(t *testing.T) {
	sq, _, repo, inj := chaosDeployment(t, 3, fault.Plan{Seed: 3, Crash: 1, MaxCrashes: 1})
	rep, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[0], At: day(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Crashed) != 1 {
		t.Fatalf("want exactly one crash, got %+v", rep)
	}
	if inj.Crashes() != 1 {
		t.Fatalf("crash budget misaccounted: %d", inj.Crashes())
	}
	crashed := rep.Crashed[0]
	if _, err := sq.Boot(context.Background(), BootRequest{Image: repo.Images[0].ID, Node: crashed, Verify: false}); !errors.Is(err, ErrNodeOffline) {
		t.Fatalf("crashed node must be offline: %v", err)
	}
	if err := sq.SetOnline(crashed, true); err != nil {
		t.Fatal(err)
	}
	br, err := sq.Boot(context.Background(), BootRequest{Image: repo.Images[0].ID, Node: crashed, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !br.Healed || !br.Warm {
		t.Fatalf("restarted node should heal on first boot: %+v", br)
	}
}

// TestRegisterRollbackOnStorageFailure: a storage-side failure after the
// cache object is written rolls the scVolume back so a retry starts
// clean instead of hitting duplicate-object state.
func TestRegisterRollbackOnStorageFailure(t *testing.T) {
	sq, _, repo := deployment(t, 2)
	im := repo.Images[0]
	// Sabotage: occupy the snapshot name the next registration will take.
	colliding := fmt.Sprintf("cVol@%06d-%s", 1, im.ID)
	if _, err := sq.SCVolume().Snapshot(colliding, day(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err == nil {
		t.Fatal("registration should fail on snapshot collision")
	}
	if sq.SCVolume().HasObject(im.ID) {
		t.Fatal("failed registration leaked the cache object")
	}
	if got := sq.Registered(); len(got) != 0 {
		t.Fatalf("failed registration recorded the image: %v", got)
	}
	// Clear the sabotage; the retry succeeds from clean state.
	if err := sq.SCVolume().DeleteSnapshot(colliding); err != nil {
		t.Fatal(err)
	}
	rep, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)})
	if err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if rep.Nodes != 2 {
		t.Fatalf("retry propagated to %d nodes", rep.Nodes)
	}
}

// TestRegisterClearsLeftoverObject: a stale cache object from a crashed
// earlier attempt (written but never registered) must not break a retry.
func TestRegisterClearsLeftoverObject(t *testing.T) {
	sq, _, repo := deployment(t, 2)
	im := repo.Images[0]
	if _, err := sq.SCVolume().WriteObject(im.ID, im.CacheReader()); err != nil {
		t.Fatal(err)
	}
	rep, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)})
	if err != nil {
		t.Fatalf("retry over leftover object: %v", err)
	}
	if rep.Nodes != 2 || rep.CacheBytes != im.CacheSize() {
		t.Fatalf("retry report %+v", rep)
	}
}

// TestSyncNewbornNode: a node that was offline from before the first
// registration has no local snapshot and must full-replicate.
func TestSyncNewbornNode(t *testing.T) {
	sq, _, repo := deployment(t, 3)
	sq.SetOnline("node02", false) // offline from birth
	a, b := repo.Images[0], repo.Images[1]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: a, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: b, At: day(1)}); err != nil {
		t.Fatal(err)
	}
	sq.SetOnline("node02", true)
	rep, err := sq.SyncNode(bg, "node02")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != SyncFull {
		t.Fatalf("newborn sync mode %v, want full", rep.Mode)
	}
	ccv, _ := sq.CCVolume("node02")
	for _, id := range []string{a.ID, b.ID} {
		if !ccv.HasObject(id) {
			t.Fatalf("newborn sync missing %s", id)
		}
	}
	br, err := sq.Boot(context.Background(), BootRequest{Image: b.ID, Node: "node02", Verify: true})
	if err != nil || !br.Warm {
		t.Fatalf("post-sync boot: warm=%v err=%v", br.Warm, err)
	}
}

// TestSyncRacesConcurrentRegister: SyncNode looping against a stream of
// registrations must stay race-free (run under -race) and converge.
func TestSyncRacesConcurrentRegister(t *testing.T) {
	sq, _, repo := deployment(t, 3)
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[0], At: day(0)}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := sq.SyncNode(bg, "node02"); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 1; i <= 5; i++ {
		if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := sq.SyncNode(bg, "node02"); err != nil {
		t.Fatal(err)
	}
	want := sq.SCVolume().LatestSnapshot().Name
	ccv, _ := sq.CCVolume("node02")
	if snap := ccv.LatestSnapshot(); snap == nil || snap.Name != want {
		t.Fatalf("node02 did not converge to %s", want)
	}
}

// TestConcurrentOperations exercises Register/Boot/SyncNode/SetOnline/
// Stats from many goroutines at once; the race detector is the oracle.
func TestConcurrentOperations(t *testing.T) {
	sq, cl, repo := deployment(t, 4)
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[0], At: day(0)}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 1; i <= 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)}); err != nil {
				t.Errorf("register %d: %v", i, err)
			}
		}(i)
	}
	for _, n := range cl.Compute {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := sq.Boot(context.Background(), BootRequest{Image: repo.Images[0].ID, Node: id, Verify: true}); err != nil {
					t.Errorf("boot on %s: %v", id, err)
					return
				}
				sq.Stats()
				sq.Registered()
				sq.Lagging()
				if _, err := sq.SyncNode(bg, id); err != nil {
					t.Errorf("sync %s: %v", id, err)
					return
				}
			}
		}(n.ID)
	}
	wg.Wait()
	// Every image must have reached every node (via propagation or sync).
	for _, n := range cl.Compute {
		if _, err := sq.SyncNode(bg, n.ID); err != nil {
			t.Fatal(err)
		}
		ccv, _ := sq.CCVolume(n.ID)
		for i := 0; i <= 4; i++ {
			if !ccv.HasObject(repo.Images[i].ID) {
				t.Fatalf("%s missing %s after concurrent ops", n.ID, repo.Images[i].ID)
			}
		}
	}
}
