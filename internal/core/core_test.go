package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
)

// bg is the context used by tests that don't exercise cancellation.
var bg = context.Background()

var t0 = time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC)

func day(n int) time.Time { return t0.Add(time.Duration(n) * 24 * time.Hour) }

// deployment builds a small cluster + PFS + Squirrel + corpus.
func deployment(t testing.TB, computeNodes int) (*Squirrel, *cluster.Cluster, *corpus.Repository) {
	t.Helper()
	cl, err := cluster.New(cluster.GigE, 4, computeNodes)
	if err != nil {
		t.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The test corpus is tiny (16 KB caches, CacheAlign 4 KB), so the
	// deployment scales down with it: 4 KB clusters and 4 KB volume
	// blocks. Warm boots stay network-free whenever ClusterSize divides
	// the corpus's CacheAlign, which DefaultConfig also satisfies at full
	// scale (64 KB / 64 KB).
	cfg := DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	sq, err := New(cfg, cl, pfs)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sq, cl, repo
}

func TestRegisterPropagatesToAllNodes(t *testing.T) {
	sq, cl, repo := deployment(t, 4)
	im := repo.Images[0]
	rep, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 4 {
		t.Fatalf("propagated to %d nodes, want 4", rep.Nodes)
	}
	if rep.CacheBytes != im.CacheSize() {
		t.Fatalf("cache bytes %d, want %d", rep.CacheBytes, im.CacheSize())
	}
	if rep.DiffBytes <= 0 || rep.XferSec <= 0 {
		t.Fatalf("diff accounting: %+v", rep)
	}
	for _, n := range cl.Compute {
		ccv, _ := sq.CCVolume(n.ID)
		if !ccv.HasObject(im.ID) {
			t.Fatalf("replica on %s missing cache", n.ID)
		}
		if n.RxBytes() != rep.DiffBytes {
			t.Fatalf("%s rx %d, want diff %d", n.ID, n.RxBytes(), rep.DiffBytes)
		}
	}
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); !errors.Is(err, ErrRegistered) {
		t.Fatalf("duplicate registration: %v", err)
	}
}

func TestSecondRegistrationDiffIsSmall(t *testing.T) {
	// High cache cross-similarity must make the second same-release diff
	// much smaller than the first (§5.3's O(10 MB) vs O(100 MB) point).
	sq, _, repo := deployment(t, 2)
	var a, b *corpus.Image
	for i, x := range repo.Images {
		if x.Misaligned() {
			continue
		}
		for _, y := range repo.Images[i+1:] {
			if !y.Misaligned() && x.Distro == y.Distro && x.Release == y.Release {
				a, b = x, y
				break
			}
		}
		if a != nil {
			break
		}
	}
	if a == nil {
		t.Skip("no same-release pair")
	}
	r1, err := sq.Register(context.Background(), RegisterRequest{Image: a, At: day(0)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sq.Register(context.Background(), RegisterRequest{Image: b, At: day(0)})
	if err != nil {
		t.Fatal(err)
	}
	if r2.DiffBytes >= r1.DiffBytes {
		t.Fatalf("second diff %d should undercut first %d", r2.DiffBytes, r1.DiffBytes)
	}
}

func TestWarmBootZeroNetwork(t *testing.T) {
	sq, cl, repo := deployment(t, 2)
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	cl.ResetCounters() // discard registration traffic; Fig 18 counts boots
	rep, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node01", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Warm {
		t.Fatal("boot should be warm")
	}
	if rep.NetworkBytes != 0 {
		t.Fatalf("warm boot moved %d network bytes, want 0", rep.NetworkBytes)
	}
	if cl.ComputeRxTotal() != 0 {
		t.Fatalf("compute NICs saw %d bytes during warm boot", cl.ComputeRxTotal())
	}
	if rep.ReadBytes != im.CacheSize() {
		t.Fatalf("boot read %d bytes, trace covers %d", rep.ReadBytes, im.CacheSize())
	}
}

func TestColdBootUsesNetwork(t *testing.T) {
	// A node whose replica lacks the cache (offline during registration)
	// boots over the network, with correct data.
	sq, cl, repo := deployment(t, 2)
	im := repo.Images[0]
	sq.SetOnline("node01", false)
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	sq.SetOnline("node01", true)
	cl.ResetCounters()
	rep, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node01", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Warm || rep.NetworkBytes == 0 {
		t.Fatalf("cold boot should use the network: %+v", rep)
	}
	// Cluster-granular CoW fetches round reads up, so network bytes are
	// at least the working set.
	if rep.NetworkBytes < im.CacheSize() {
		t.Fatalf("cold boot moved %d bytes < working set %d", rep.NetworkBytes, im.CacheSize())
	}
}

func TestBootErrors(t *testing.T) {
	sq, _, repo := deployment(t, 2)
	im := repo.Images[0]
	if _, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node00", Verify: false}); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("unregistered boot: %v", err)
	}
	sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)})
	if _, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "ghost", Verify: false}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node: %v", err)
	}
	sq.SetOnline("node00", false)
	if _, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node00", Verify: false}); !errors.Is(err, ErrNodeOffline) {
		t.Fatalf("offline node: %v", err)
	}
	if err := sq.SetOnline("ghost", true); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("SetOnline ghost: %v", err)
	}
}

func TestDeregisterPropagatesWithNextSnapshot(t *testing.T) {
	sq, _, repo := deployment(t, 2)
	a, b := repo.Images[0], repo.Images[1]
	sq.Register(context.Background(), RegisterRequest{Image: a, At: day(0)})
	if err := sq.Deregister(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := sq.Deregister(a.ID); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("double deregister: %v", err)
	}
	// Replicas still hold the dead cache until the next registration.
	ccv, _ := sq.CCVolume("node00")
	if !ccv.HasObject(a.ID) {
		t.Fatal("deregistration should not reach replicas before next snapshot")
	}
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: b, At: day(1)}); err != nil {
		t.Fatal(err)
	}
	if ccv.HasObject(a.ID) {
		t.Fatal("dead cache survived the next snapshot")
	}
	if !ccv.HasObject(b.ID) {
		t.Fatal("new cache missing")
	}
}

func TestOfflineNodeIncrementalSync(t *testing.T) {
	sq, _, repo := deployment(t, 3)
	a, b := repo.Images[0], repo.Images[1]
	sq.Register(context.Background(), RegisterRequest{Image: a, At: day(0)})
	sq.SetOnline("node02", false)
	sq.Register(context.Background(), RegisterRequest{Image: b, At: day(1)}) // node02 misses this
	sq.SetOnline("node02", true)
	ccv, _ := sq.CCVolume("node02")
	if ccv.HasObject(b.ID) {
		t.Fatal("offline node somehow got the cache")
	}
	rep, err := sq.SyncNode(bg, "node02")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != SyncIncremental {
		t.Fatalf("mode %v, want incremental", rep.Mode)
	}
	ccv, _ = sq.CCVolume("node02")
	if !ccv.HasObject(b.ID) {
		t.Fatal("sync did not deliver the missed cache")
	}
	// A second sync is a no-op.
	rep, _ = sq.SyncNode(bg, "node02")
	if rep.Mode != SyncNone {
		t.Fatalf("resync mode %v, want none", rep.Mode)
	}
}

func TestLongOfflineNodeFullResync(t *testing.T) {
	sq, _, repo := deployment(t, 2)
	a, b, c := repo.Images[0], repo.Images[1], repo.Images[2]
	sq.Register(context.Background(), RegisterRequest{Image: a, At: day(0)})
	sq.SetOnline("node01", false)
	sq.Register(context.Background(), RegisterRequest{Image: b, At: day(1)})
	sq.Register(context.Background(), RegisterRequest{Image: c, At: day(20)})
	// GC at day 21 with a 7-day window destroys the day-0 and day-1
	// snapshots node01 would need for an incremental sync.
	sq.GarbageCollect(day(21))
	sq.SetOnline("node01", true)
	rep, err := sq.SyncNode(bg, "node01")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != SyncFull {
		t.Fatalf("mode %v, want full re-replication", rep.Mode)
	}
	ccv, _ := sq.CCVolume("node01")
	for _, id := range []string{a.ID, b.ID, c.ID} {
		if !ccv.HasObject(id) {
			t.Fatalf("full resync missing %s", id)
		}
	}
	// After the full resync, a warm boot must work with zero network.
	bootRep, err := sq.Boot(context.Background(), BootRequest{Image: c.ID, Node: "node01", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bootRep.Warm {
		t.Fatal("boot after full resync should be warm")
	}
}

func TestBrandNewNodeSync(t *testing.T) {
	// A node with an empty replica and no snapshots does a full sync.
	sq, _, repo := deployment(t, 2)
	sq.Register(context.Background(), RegisterRequest{Image: repo.Images[0], At: day(0)})
	// Simulate a fresh node by wiping node01's replica state via full
	// sync of a node that never received anything: node01 was online, so
	// instead test SyncNode on a node that is behind from birth.
	sq2, _, _ := deployment(t, 1)
	rep, err := sq2.SyncNode(bg, "node00")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != SyncNone {
		t.Fatalf("empty deployment sync mode %v, want none", rep.Mode)
	}
	if _, err := sq.SyncNode(bg, "ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("sync ghost: %v", err)
	}
}

func TestGarbageCollectCountsAndRegisteredList(t *testing.T) {
	sq, _, repo := deployment(t, 2)
	sq.Register(context.Background(), RegisterRequest{Image: repo.Images[0], At: day(0)})
	sq.Register(context.Background(), RegisterRequest{Image: repo.Images[1], At: day(1)})
	if got := sq.Registered(); len(got) != 2 {
		t.Fatalf("registered %v", got)
	}
	n := sq.GarbageCollect(day(30))
	// Each of the 3 volumes (1 sc + 2 cc) holds 2 snapshots; GC destroys
	// all but the latest per volume.
	if n != 3 {
		t.Fatalf("destroyed %d snapshots, want 3", n)
	}
}

func TestRegistrationUnderPropagationSchemes(t *testing.T) {
	for _, p := range []Propagation{Multicast, UnicastFanout, Pipeline} {
		cl, _ := cluster.New(cluster.GigE, 4, 3)
		pfs, _ := cluster.NewPFS(cl, 2, 2, 0)
		cfg := DefaultConfig()
		cfg.Propagation = p
		sq, err := New(cfg, cl, pfs)
		if err != nil {
			t.Fatal(err)
		}
		repo, _ := corpus.New(corpus.TestSpec())
		rep, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[0], At: day(0)})
		if err != nil {
			t.Fatalf("propagation %v: %v", p, err)
		}
		for _, n := range cl.Compute {
			ccv, _ := sq.CCVolume(n.ID)
			if !ccv.HasObject(repo.Images[0].ID) {
				t.Fatalf("propagation %v: replica missing", p)
			}
		}
		if rep.XferSec <= 0 {
			t.Fatalf("propagation %v: no transfer time", p)
		}
	}
}
