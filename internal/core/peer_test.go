package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/peer"
)

// peerDeployment is deployment with the peer block exchange enabled.
func peerDeployment(t testing.TB, computeNodes int) (*Squirrel, *cluster.Cluster, *corpus.Repository) {
	t.Helper()
	cl, err := cluster.New(cluster.GigE, 4, computeNodes)
	if err != nil {
		t.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	cfg.Peer = peer.DefaultPolicy()
	sq, err := New(cfg, cl, pfs)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sq, cl, repo
}

func storageTx(cl *cluster.Cluster) int64 {
	var n int64
	for _, sn := range cl.Storage {
		n += sn.TxBytes()
	}
	return n
}

func TestPeerServesColdBootMiss(t *testing.T) {
	sq, cl, repo := peerDeployment(t, 4)
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	if !sq.PeerIndex().Holds(im.ID, "node03") {
		t.Fatal("registration did not announce node03's replica")
	}
	if err := sq.DropReplica("node03", im.ID); err != nil {
		t.Fatal(err)
	}
	if sq.PeerIndex().Holds(im.ID, "node03") {
		t.Fatal("DropReplica left the announcement behind")
	}
	cl.ResetCounters()
	rep, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node03", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeerBytes <= 0 {
		t.Fatalf("cold miss not served by a peer: %+v", rep)
	}
	if rep.NetworkBytes != 0 {
		t.Fatalf("peer-served boot still pulled %d bytes from the PFS", rep.NetworkBytes)
	}
	if rep.Warm {
		t.Fatal("peer-served boot must not report warm")
	}
	if rep.PeerNode == "" || rep.PeerNode == "node03" {
		t.Fatalf("bad source peer %q", rep.PeerNode)
	}
	// Exact NIC accounting: all boot traffic is peer traffic, none of it
	// touched the storage nodes.
	if tx := storageTx(cl); tx != 0 {
		t.Fatalf("storage nodes transmitted %d bytes during a peer-served boot", tx)
	}
	if rx := cl.ComputeRxTotal(); rx != rep.PeerBytes {
		t.Fatalf("compute NICs saw %d bytes, report says %d", rx, rep.PeerBytes)
	}
	// The exchange's own accounting agrees.
	ctr := sq.PeerIndex().Counters()
	if ctr.Get("peer.bytes") != rep.PeerBytes || ctr.Get("peer.hit") == 0 {
		t.Fatalf("peer counters: %s", ctr)
	}
	// Selection is least-loaded, so serves spread across the holders; the
	// loads must sum to the report, the top server must be the report's
	// PeerNode, and nobody may still hold a slot.
	var sum, top int64
	for _, l := range sq.Stats().PeerLoads {
		sum += l.ServedBytes
		if l.Active != 0 {
			t.Fatalf("leaked serve slot: %+v", l)
		}
		if l.ServedBytes > top {
			top = l.ServedBytes
			if l.NodeID != rep.PeerNode {
				t.Fatalf("top server %s, report says %s", l.NodeID, rep.PeerNode)
			}
		}
	}
	if sum != rep.PeerBytes {
		t.Fatalf("serve loads sum to %d, report says %d", sum, rep.PeerBytes)
	}
	if sq.PeerIndex().TransferSizes().Sum() != rep.PeerBytes {
		t.Fatal("transfer-size histogram disagrees with the report")
	}
}

func TestPeerOffloadsConcurrentColdBoots(t *testing.T) {
	// Twin deployments over the same seeded corpus: one PFS-only, one
	// peer-assisted. The same wave of concurrent cold boots must move a
	// majority of miss bytes off the storage nodes.
	const nodes, images, holders = 8, 3, 2
	run := func(enabled bool) (peerSum, pfsSum, tx int64) {
		cl, err := cluster.New(cluster.GigE, 4, nodes)
		if err != nil {
			t.Fatal(err)
		}
		pfs, err := cluster.NewPFS(cl, 2, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.ClusterSize = 4096
		cfg.Volume.BlockSize = 4096
		cfg.Peer = peer.DefaultPolicy()
		cfg.Peer.Enabled = enabled
		sq, err := New(cfg, cl, pfs)
		if err != nil {
			t.Fatal(err)
		}
		repo, err := corpus.New(corpus.TestSpec())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < images; i++ {
			if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)}); err != nil {
				t.Fatal(err)
			}
		}
		// Scatter-hoard partial state: only the first `holders` nodes
		// keep replicas; everyone else cold-boots.
		for i := 0; i < images; i++ {
			for n := holders; n < nodes; n++ {
				if err := sq.DropReplica(cl.Compute[n].ID, repo.Images[i].ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		cl.ResetCounters()
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			errs []error
		)
		for i := 0; i < images; i++ {
			for n := holders; n < nodes; n++ {
				im, nodeID := repo.Images[i], cl.Compute[n].ID
				wg.Add(1)
				go func() {
					defer wg.Done()
					rep, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: nodeID, Verify: true})
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						errs = append(errs, err)
						return
					}
					peerSum += rep.PeerBytes
					pfsSum += rep.NetworkBytes
				}()
			}
		}
		wg.Wait()
		for _, err := range errs {
			t.Fatal(err)
		}
		return peerSum, pfsSum, storageTx(cl)
	}
	basePeer, basePFS, baseTx := run(false)
	if basePeer != 0 || basePFS == 0 {
		t.Fatalf("PFS-only run: peer=%d pfs=%d", basePeer, basePFS)
	}
	peerSum, pfsSum, tx := run(true)
	if peerSum == 0 {
		t.Fatal("peer-assisted run served nothing from peers")
	}
	if pfsSum >= basePFS {
		t.Fatalf("peer run PFS bytes %d not lower than PFS-only %d", pfsSum, basePFS)
	}
	if tx >= baseTx {
		t.Fatalf("storage tx %d not lower than PFS-only %d", tx, baseTx)
	}
	if peerSum <= pfsSum {
		t.Fatalf("peers served %d of %d miss bytes — not a majority", peerSum, peerSum+pfsSum)
	}
}

// setFaults swaps the deployment's injector after registration so tests
// can fault only the peer-fetch path.
func setFaults(sq *Squirrel, plan fault.Plan, t *testing.T) *fault.Injector {
	t.Helper()
	inj, err := fault.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	sq.SetFaults(inj)
	return inj
}

func TestPeerFetchFaultFailoverDeterministic(t *testing.T) {
	// Under a lossy plan the peer path fails over source by source and
	// finally to the PFS; the boot still verifies byte-exact, every
	// transferred byte is accounted, and the whole run replays
	// identically from the seed.
	boot := func() (BootReport, map[string]int64, int64) {
		sq, cl, repo := peerDeployment(t, 4)
		im := repo.Images[0]
		if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
			t.Fatal(err)
		}
		if err := sq.DropReplica("node03", im.ID); err != nil {
			t.Fatal(err)
		}
		setFaults(sq, fault.Plan{Seed: 42, Drop: 0.5, Truncate: 0.2, Corrupt: 0.15}, t)
		cl.ResetCounters()
		rep, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node03", Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		return rep, sq.PeerIndex().Counters().Snapshot(), cl.ComputeRxTotal()
	}
	rep, ctr, rx := boot()
	if ctr["peer.fault"] == 0 {
		t.Fatalf("plan injected no faults: %v", ctr)
	}
	if rep.PeerBytes == 0 || ctr["peer.hit"] == 0 {
		t.Fatalf("no ranges survived the lossy exchange: %+v %v", rep, ctr)
	}
	if ctr["peer.fallback"] == 0 || rep.PeerFallbacks == 0 || rep.NetworkBytes == 0 {
		t.Fatalf("no ranges fell back to the PFS: %+v %v", rep, ctr)
	}
	// Exact accounting: the booting node received its PFS bytes, its
	// peer bytes, and the wasted bytes of truncated/corrupted transfers.
	if want := rep.NetworkBytes + rep.PeerBytes + ctr["peer.wasted_bytes"]; rx != want {
		t.Fatalf("compute rx %d, want %d (pfs %d + peer %d + wasted %d)",
			rx, want, rep.NetworkBytes, rep.PeerBytes, ctr["peer.wasted_bytes"])
	}
	// Deterministic replay: identical deployment, identical outcomes.
	rep2, ctr2, rx2 := boot()
	if rep2 != rep || rx2 != rx {
		t.Fatalf("chaos boot not reproducible:\n%+v rx=%d\n%+v rx=%d", rep, rx, rep2, rx2)
	}
	for k, v := range ctr {
		if ctr2[k] != v {
			t.Fatalf("counter %s: %d vs %d", k, v, ctr2[k])
		}
	}
}

func TestPeerSourceCrashFailsOverToPFS(t *testing.T) {
	sq, _, repo := peerDeployment(t, 4)
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	if err := sq.DropReplica("node03", im.ID); err != nil {
		t.Fatal(err)
	}
	// Every transfer decision crashes, budget 1: the first source dies
	// mid-serve, later crashes degrade to drops, the boot finishes off
	// the PFS.
	setFaults(sq, fault.Plan{Seed: 7, Crash: 1, MaxCrashes: 1}, t)
	rep, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node03", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeerBytes != 0 || rep.NetworkBytes == 0 {
		t.Fatalf("crash-looped boot should finish off the PFS: %+v", rep)
	}
	ctr := sq.PeerIndex().Counters()
	if ctr.Get("peer.crash") != 1 {
		t.Fatalf("want exactly one source crash, got %d", ctr.Get("peer.crash"))
	}
	// The crashed source (least-loaded pick: node00) is offline, lagging,
	// and withdrawn from the index.
	if got := sq.Lagging(); len(got) != 1 || got[0] != "node00" {
		t.Fatalf("lagging: %v", got)
	}
	if sq.PeerIndex().Holds(im.ID, "node00") {
		t.Fatal("crashed source still announced")
	}
	// Recovery: the crashed node comes back, heals on first boot, and
	// re-announces.
	if err := sq.SetOnline("node00", true); err != nil {
		t.Fatal(err)
	}
	br, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node00", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !br.Healed || !br.Warm {
		t.Fatalf("crashed source did not heal: %+v", br)
	}
	if !sq.PeerIndex().Holds(im.ID, "node00") {
		t.Fatal("healed node did not re-announce")
	}
}

func TestPeerNeverPicksIneligibleSources(t *testing.T) {
	sq, cl, repo := peerDeployment(t, 4)
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	// Strip all but one replica; take that sole holder offline. The cold
	// boot must fall back to the PFS (never the booting node itself, an
	// offline node, or a node without the object).
	for _, n := range []string{"node01", "node02"} {
		if err := sq.DropReplica(n, im.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := sq.DropReplica("node03", im.ID); err != nil {
		t.Fatal(err)
	}
	if err := sq.SetOnline("node00", false); err != nil {
		t.Fatal(err)
	}
	cl.ResetCounters()
	rep, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: "node03", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeerBytes != 0 || rep.NetworkBytes == 0 {
		t.Fatalf("boot should have used the PFS only: %+v", rep)
	}
	if sq.PeerIndex().Counters().Get("peer.hit") != 0 {
		t.Fatal("an ineligible source served a fetch")
	}
	if node00 := cl.Compute[0]; node00.TxBytes() != 0 {
		t.Fatal("offline node transmitted bytes")
	}
}

func TestPeerIndexMaintenance(t *testing.T) {
	sq, _, repo := peerDeployment(t, 4)
	ix := sq.PeerIndex()
	a, b := repo.Images[0], repo.Images[1]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: a, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: b, At: day(1)}); err != nil {
		t.Fatal(err)
	}
	if ix.Objects() != 2 || ix.Entries() != 8 {
		t.Fatalf("after 2 registrations: objects=%d entries=%d", ix.Objects(), ix.Entries())
	}
	// Offline → withdrawn; online → re-announced from actual holdings.
	if err := sq.SetOnline("node02", false); err != nil {
		t.Fatal(err)
	}
	if ix.Entries() != 6 || ix.Holds(a.ID, "node02") {
		t.Fatalf("offline withdraw: entries=%d", ix.Entries())
	}
	if err := sq.SetOnline("node02", true); err != nil {
		t.Fatal(err)
	}
	if ix.Entries() != 8 || !ix.Holds(a.ID, "node02") {
		t.Fatalf("online re-announce: entries=%d", ix.Entries())
	}
	// Deregistration withdraws the object everywhere, immediately.
	if err := sq.Deregister(a.ID); err != nil {
		t.Fatal(err)
	}
	if ix.Objects() != 1 || ix.Holders(a.ID) != nil && len(ix.Holders(a.ID)) != 0 {
		t.Fatalf("deregister: objects=%d holders=%v", ix.Objects(), ix.Holders(a.ID))
	}
	// A later registration must not resurrect the deregistered object on
	// replicas that still physically hold it pending snapshot cleanup.
	c := repo.Images[2]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: c, At: day(2)}); err != nil {
		t.Fatal(err)
	}
	if ix.Holds(a.ID, "node00") {
		t.Fatal("deregistered object re-announced")
	}
	if !ix.Holds(c.ID, "node00") || ix.Objects() != 2 {
		t.Fatalf("post-deregister registration: objects=%d", ix.Objects())
	}
	// GC reconciles without inventing entries.
	sq.GarbageCollect(day(40))
	if ix.Objects() != 2 || ix.Entries() != 8 {
		t.Fatalf("after GC: objects=%d entries=%d", ix.Objects(), ix.Entries())
	}
}
