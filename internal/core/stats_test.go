package core

import (
	"context"
	"testing"
)

func TestDeploymentStats(t *testing.T) {
	sq, _, repo := deployment(t, 3)
	ds := sq.Stats()
	if ds.ComputeNodes != 3 || ds.OnlineNodes != 3 || ds.RegisteredImages != 0 {
		t.Fatalf("empty deployment stats: %+v", ds)
	}
	if ds.StaleReplicas != 0 {
		t.Fatalf("no snapshots yet, nobody stale: %+v", ds)
	}

	if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[0], At: day(0)}); err != nil {
		t.Fatal(err)
	}
	sq.SetOnline("node02", false)
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[1], At: day(1)}); err != nil {
		t.Fatal(err)
	}
	sq.SetOnline("node02", true)

	ds = sq.Stats()
	if ds.RegisteredImages != 2 {
		t.Fatalf("registered %d", ds.RegisteredImages)
	}
	if ds.StaleReplicas != 1 {
		t.Fatalf("node02 should be stale: %+v", ds)
	}
	if ds.ReplicaDiskBytes <= 0 || ds.ReplicaMemBytes <= 0 {
		t.Fatalf("replica cost missing: %+v", ds)
	}
	if ds.SCVolume.Objects != 2 {
		t.Fatalf("scVolume objects %d", ds.SCVolume.Objects)
	}

	// After the sync, no replica is stale.
	if _, err := sq.SyncNode(bg, "node02"); err != nil {
		t.Fatal(err)
	}
	if ds = sq.Stats(); ds.StaleReplicas != 0 {
		t.Fatalf("sync did not clear staleness: %+v", ds)
	}
}
