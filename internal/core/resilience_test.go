package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/peer"
)

// resilienceDeployment builds a peer-enabled, fault-seeded deployment
// whose config the caller can mutate before construction.
func resilienceDeployment(t testing.TB, computeNodes int, plan fault.Plan,
	mutate func(*Config)) (*Squirrel, *cluster.Cluster, *corpus.Repository) {
	t.Helper()
	inj, err := fault.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.GigE, 4, computeNodes)
	if err != nil {
		t.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	cfg.Peer = peer.DefaultPolicy()
	cfg.Faults = inj
	if mutate != nil {
		mutate(&cfg)
	}
	sq, err := New(cfg, cl, pfs)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sq, cl, repo
}

// waitGoroutines waits for the goroutine count to drain back to at most
// base (with slack for runtime helpers), failing the test otherwise.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now, %d at start", runtime.NumGoroutine(), base)
}

// TestPartitionSoak drives the full partition lifecycle: a seeded
// minority cut opens mid-deployment, registrations during the cut strand
// the minority (lagging, withdrawn from the peer index, counted as
// partition faults), boots on the majority keep working off
// majority-side holders only, boots on the minority fail transiently
// with ErrPartitioned — and after the heal's anti-entropy pass plus
// SyncNode, every node converges with zero lagging replicas.
func TestPartitionSoak(t *testing.T) {
	base := runtime.NumGoroutine()
	sq, cl, repo := resilienceDeployment(t, 6, fault.Plan{Seed: 31}, nil)
	im0, im1 := repo.Images[0], repo.Images[1]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im0, At: day(0)}); err != nil {
		t.Fatal(err)
	}

	// The minority is drawn from the fault seed, so the whole scenario
	// replays from the plan alone.
	var ids []string
	for _, n := range cl.Compute {
		ids = append(ids, n.ID)
	}
	minority := sq.injector().PartitionPick("soak", ids, 2)
	if len(minority) != 2 {
		t.Fatalf("PartitionPick returned %v", minority)
	}
	cut := map[string]bool{minority[0]: true, minority[1]: true}
	if err := sq.PartitionNodes(minority...); err != nil {
		t.Fatal(err)
	}

	// While the cut is open the peer index must hold no entries for the
	// stranded holders, and Health must say why.
	for _, st := range sq.Health() {
		if cut[st.NodeID] != st.Unreachable {
			t.Fatalf("%s unreachable=%v, cut=%v", st.NodeID, st.Unreachable, cut[st.NodeID])
		}
		if cut[st.NodeID] && !st.Withdrawn {
			t.Fatalf("cut node %s still announced in the peer index", st.NodeID)
		}
	}

	// A registration during the cut reaches the majority and strands the
	// minority as lagging partition casualties — it does not fail.
	rep, err := sq.Register(context.Background(), RegisterRequest{Image: im1, At: day(1)})
	if err != nil {
		t.Fatalf("register during cut: %v", err)
	}
	if rep.Nodes != 4 || len(rep.Lagging) != 2 {
		t.Fatalf("register during cut: %+v", rep)
	}
	for _, id := range rep.Lagging {
		if !cut[id] {
			t.Fatalf("majority node %s lagging after cut register", id)
		}
	}
	ctr := sq.injector().Counters()
	if got := ctr.Get("fault.partition"); got != 2 {
		t.Fatalf("fault.partition = %d, want 2", got)
	}
	if got := ctr.Get("repair.partitioned"); got != 2 {
		t.Fatalf("repair.partitioned = %d, want 2", got)
	}

	// Majority boots keep working: a cold miss is served without ever
	// selecting a stranded holder.
	var majority []string
	for _, id := range ids {
		if !cut[id] {
			majority = append(majority, id)
		}
	}
	if err := sq.DropReplica(majority[0], im1.ID); err != nil {
		t.Fatal(err)
	}
	brep, err := sq.Boot(bg, BootRequest{Image: im1.ID, Node: majority[0], Verify: true})
	if err != nil {
		t.Fatalf("majority boot during cut: %v", err)
	}
	if brep.PeerBytes <= 0 || cut[brep.PeerNode] {
		t.Fatalf("majority boot served by %q (peerBytes=%d)", brep.PeerNode, brep.PeerBytes)
	}
	// Minority boots fail transiently: the lagging node cannot heal
	// across the cut.
	if _, err := sq.Boot(bg, BootRequest{Image: im0.ID, Node: minority[0]}); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("minority boot during cut: want ErrPartitioned, got %v", err)
	}
	if _, err := sq.SyncNode(bg, minority[0]); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("minority sync during cut: want ErrPartitioned, got %v", err)
	}

	// Heal: the cut nodes re-announce their authoritative holdings
	// (anti-entropy over the index) and report as still lagging.
	hrep, err := sq.HealPartition()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string(nil), minority...)
	sort.Strings(want)
	if !reflect.DeepEqual(hrep.Healed, want) || !reflect.DeepEqual(hrep.Lagging, want) {
		t.Fatalf("heal report %+v, want healed=lagging=%v", hrep, want)
	}
	if hrep.Reannounced != 2 {
		t.Fatalf("reannounced %d nodes, want 2", hrep.Reannounced)
	}
	for _, id := range minority {
		if !sq.PeerIndex().Holds(im0.ID, id) {
			t.Fatalf("healed node %s not re-announced for %s", id, im0.ID)
		}
		if sq.PeerIndex().Holds(im1.ID, id) {
			t.Fatalf("healed node %s announced for %s it never received", id, im1.ID)
		}
	}
	// Offline propagation catches the stranded nodes up; nothing lags.
	for _, id := range hrep.Lagging {
		srep, err := sq.SyncNode(bg, id)
		if err != nil {
			t.Fatal(err)
		}
		if !srep.Healed {
			t.Fatalf("post-heal sync of %s did not heal: %+v", id, srep)
		}
	}
	if lag := sq.Lagging(); len(lag) != 0 {
		t.Fatalf("lagging after heal+sync: %v", lag)
	}
	for _, n := range cl.Compute {
		for _, im := range []*corpus.Image{im0, im1} {
			rep, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: n.ID, Verify: true})
			if err != nil {
				t.Fatalf("converged boot of %s on %s: %v", im.ID, n.ID, err)
			}
			if !rep.Warm && n.ID != majority[0] {
				t.Fatalf("converged boot of %s on %s went cold: %+v", im.ID, n.ID, rep)
			}
		}
	}
	waitGoroutines(t, base)
}

// hedgeDeployment builds a deployment where each of n images is held by
// exactly two designated nodes and booted from a third, all triples
// disjoint — so concurrent boots share no peer-index load state and the
// hedge outcome is a pure function of the fault seed.
func hedgeDeployment(t *testing.T, images int) (*Squirrel, []*corpus.Image, []string) {
	t.Helper()
	plan := fault.Plan{Seed: 99, Slow: 0.6, SlowSec: 0.05}
	sq, cl, repo := resilienceDeployment(t, 3*images, plan, func(cfg *Config) {
		cfg.Peer.Hedge = true
	})
	if len(repo.Images) < images {
		t.Fatalf("corpus too small: %d images", len(repo.Images))
	}
	var ims []*corpus.Image
	var bootNodes []string
	for i := 0; i < images; i++ {
		im := repo.Images[i]
		ims = append(ims, im)
		if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(i)}); err != nil {
			t.Fatal(err)
		}
		// Keep replicas only on the triple's two holder nodes.
		keep := map[int]bool{3*i + 1: true, 3*i + 2: true}
		for j, n := range cl.Compute {
			if !keep[j] {
				if err := sq.DropReplica(n.ID, im.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		bootNodes = append(bootNodes, cl.Compute[3*i].ID)
	}
	return sq, ims, bootNodes
}

// TestHedgeDeterminismSerialVsParallel boots the same slow-peer-seeded
// images serially on one deployment and concurrently on an identical
// one: every BootReport — hedges fired, hedges won, stall accounting,
// byte provenance — must be byte-identical, the hedged-fetch mirror of
// TestParallelLegsMatchSerial.
func TestHedgeDeterminismSerialVsParallel(t *testing.T) {
	base := runtime.NumGoroutine()
	const images = 3
	serial, imsS, nodesS := hedgeDeployment(t, images)
	parallel, _, nodesP := hedgeDeployment(t, images)

	serialReps := make([]BootReport, images)
	for i, im := range imsS {
		rep, err := serial.Boot(bg, BootRequest{Image: im.ID, Node: nodesS[i], Verify: true})
		if err != nil {
			t.Fatalf("serial boot %d: %v", i, err)
		}
		serialReps[i] = rep
	}
	parallelReps := make([]BootReport, images)
	var wg sync.WaitGroup
	for i, im := range imsS {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			rep, err := parallel.Boot(bg, BootRequest{Image: id, Node: nodesP[i], Verify: true})
			if err != nil {
				t.Errorf("parallel boot %d: %v", i, err)
				return
			}
			parallelReps[i] = rep
		}(i, im.ID)
	}
	wg.Wait()

	var fired, won int
	for i := range serialReps {
		if !reflect.DeepEqual(serialReps[i], parallelReps[i]) {
			t.Fatalf("boot %d diverged:\nserial:   %+v\nparallel: %+v",
				i, serialReps[i], parallelReps[i])
		}
		fired += serialReps[i].HedgesFired
		won += serialReps[i].HedgesWon
		if serialReps[i].PeerBytes <= 0 {
			t.Fatalf("boot %d not peer-served: %+v", i, serialReps[i])
		}
	}
	// The seed must actually exercise the hedge path, both firing and
	// winning, or the determinism claim is vacuous.
	if fired == 0 || won == 0 {
		t.Fatalf("seed exercised no hedges: fired=%d won=%d", fired, won)
	}
	ctr := serial.PeerIndex().Counters()
	if ctr.Get("peer.hedge_fired") != int64(fired) || ctr.Get("peer.hedge_won") != int64(won) {
		t.Fatalf("hedge counters disagree with reports: %s", ctr)
	}
	if ctr.Get("peer.hedge_cancelled") == 0 {
		t.Fatal("no losing leg was ever cancelled")
	}
	waitGoroutines(t, base)
}

// TestBreakerDegradesBootToPFS turns every peer transfer into a drop:
// the per-peer breakers trip, subsequent cold boots skip the dead peers
// and fall straight back to the PFS, and once the faults clear a probe
// serve closes the breakers and peer serving resumes.
func TestBreakerDegradesBootToPFS(t *testing.T) {
	sq, _, repo := resilienceDeployment(t, 4, fault.Plan{Seed: 3}, func(cfg *Config) {
		cfg.Peer.Breaker = peer.DefaultBreakerPolicy()
	})
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	if err := sq.DropReplica("node03", im.ID); err != nil {
		t.Fatal(err)
	}
	// All peer serves fail from here on; registration already happened.
	broken, err := fault.New(fault.Plan{Seed: 3, Drop: 1})
	if err != nil {
		t.Fatal(err)
	}
	sq.SetFaults(broken)

	rep, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node03", Verify: true})
	if err != nil {
		t.Fatalf("boot with dead peers: %v", err)
	}
	if rep.PeerBytes != 0 || rep.NetworkBytes <= 0 {
		t.Fatalf("dead-peer boot provenance: %+v", rep)
	}
	if rep.BreakerTrips == 0 {
		t.Fatalf("no breakers tripped: %+v", rep)
	}
	ctr := sq.PeerIndex().Counters()
	if ctr.Get("breaker.trip") == 0 || ctr.Get("peer.fallback") == 0 {
		t.Fatalf("breaker counters: %s", ctr)
	}
	for _, st := range sq.Health() {
		if st.NodeID != "node03" && st.Breaker == "" {
			t.Fatalf("health hides breaker state for %s", st.NodeID)
		}
	}
	// With breakers open, another boot degrades straight to the PFS:
	// open holders are skipped, not retried.
	skips := ctr.Get("breaker.skip")
	if _, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node03", Verify: true}); err != nil {
		t.Fatalf("boot with open breakers: %v", err)
	}
	if ctr.Get("breaker.skip") <= skips {
		t.Fatal("open breakers were not consulted on the follow-up boot")
	}
	// Faults clear; within a few boots a half-open probe succeeds, the
	// breakers close, and the peer path serves again.
	healthy, err := fault.New(fault.Plan{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sq.SetFaults(healthy)
	for i := 0; i < 6; i++ {
		rep, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node03", Verify: true})
		if err != nil {
			t.Fatalf("recovery boot %d: %v", i, err)
		}
		if rep.PeerBytes > 0 {
			return
		}
	}
	t.Fatal("peer serving never recovered after faults cleared")
}

// TestBootAdmissionShedsOverload saturates one node's admission gate
// with concurrent boots: the slot plus the queue admit exactly two, the
// rest shed immediately with ErrOverloaded, and the gate drains clean.
func TestBootAdmissionShedsOverload(t *testing.T) {
	base := runtime.NumGoroutine()
	sq, _, repo := resilienceDeployment(t, 2, fault.Plan{Seed: 1}, func(cfg *Config) {
		cfg.Admission = AdmissionPolicy{MaxInFlight: 1, MaxQueue: 1}
		cfg.BootLatency = 30 * time.Millisecond
	})
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	const storm = 4
	start := make(chan struct{})
	errs := make(chan error, storm)
	for i := 0; i < storm; i++ {
		go func() {
			<-start
			_, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node01"})
			errs <- err
		}()
	}
	close(start)
	var booted, shed int
	for i := 0; i < storm; i++ {
		switch err := <-errs; {
		case err == nil:
			booted++
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Fatalf("unexpected boot error: %v", err)
		}
	}
	// Scheduling may let an early boot finish before the last goroutine
	// arrives, so the exact split can shift by one — but the gate must
	// have shed at least one boot and admitted at least two.
	if booted+shed != storm || shed < 1 || booted < 2 {
		t.Fatalf("booted=%d shed=%d, want them to sum to %d with >=1 shed", booted, shed, storm)
	}
	ctr := sq.injector().Counters()
	if got := ctr.Get("admit.shed"); got != int64(shed) {
		t.Fatalf("admit.shed = %d, want %d", got, shed)
	}
	if ctr.Get("admit.queued") == 0 {
		t.Fatal("no boot ever queued")
	}
	// The gate drained: a fresh boot admits immediately.
	if _, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node01"}); err != nil {
		t.Fatalf("boot after storm: %v", err)
	}
	waitGoroutines(t, base)
}

// TestBootAdmissionDeadlineWhileQueued queues a boot behind a held slot
// with a deadline shorter than the holder's runtime: the queued boot
// must return ErrOverloaded (and the context error) within its
// deadline, not block until the slot frees.
func TestBootAdmissionDeadlineWhileQueued(t *testing.T) {
	sq, _, repo := resilienceDeployment(t, 2, fault.Plan{Seed: 1}, func(cfg *Config) {
		cfg.Admission = AdmissionPolicy{MaxInFlight: 1, MaxQueue: 4}
		cfg.BootLatency = 80 * time.Millisecond
	})
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	holder := make(chan error, 1)
	go func() {
		_, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node01"})
		holder <- err
	}()
	// Wait until the holder actually owns the slot.
	ctr := sq.injector().Counters()
	for i := 0; ctr.Get("admit.admitted") == 0; i++ {
		if i > 1000 {
			t.Fatal("holder never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	t1 := time.Now()
	_, err := sq.Boot(ctx, BootRequest{Image: im.ID, Node: "node01"})
	waited := time.Since(t1)
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued boot past deadline: %v", err)
	}
	if waited > 60*time.Millisecond {
		t.Fatalf("shed took %v, deadline was 15ms", waited)
	}
	if got := ctr.Get("admit.expired"); got != 1 {
		t.Fatalf("admit.expired = %d, want 1", got)
	}
	if err := <-holder; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
	// The expired waiter must not have wedged the gate.
	if _, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node01"}); err != nil {
		t.Fatalf("boot after expiry: %v", err)
	}
}

// benchColdBootSlowPeer measures cold-boot latency against slow peers,
// re-seeding the slow-serve lane each iteration so the p99 reflects a
// population of boots rather than one replayed draw. The reported
// latency is the simulated end-to-end figure: fabric transfer time for
// every byte that moved plus the stall time slow serves cost. Hedging
// should cut the tail (p99) sharply while leaving the median nearly
// untouched — cmd/benchjson pairs the two runs into that comparison.
func benchColdBootSlowPeer(b *testing.B, hedge bool) {
	sq, cl, repo := resilienceDeployment(b, 4, fault.Plan{Seed: 1}, func(cfg *Config) {
		cfg.Peer.Hedge = hedge
	})
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		b.Fatal(err)
	}
	if err := sq.DropReplica("node03", im.ID); err != nil {
		b.Fatal(err)
	}
	lat := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj, err := fault.New(fault.Plan{Seed: int64(i + 1), Slow: 0.35, SlowSec: 0.04})
		if err != nil {
			b.Fatal(err)
		}
		sq.SetFaults(inj)
		rep, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node03"})
		if err != nil {
			b.Fatal(err)
		}
		lat = append(lat, cl.Fabric.TransferSec(rep.NetworkBytes+rep.PeerBytes)+rep.PeerStallSec)
	}
	b.StopTimer()
	sort.Float64s(lat)
	pct := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] }
	b.ReportMetric(pct(0.99)*1000, "p99-ms")
	b.ReportMetric(pct(0.50)*1000, "p50-ms")
}

func BenchmarkColdBootSlowPeerUnhedged(b *testing.B) { benchColdBootSlowPeer(b, false) }
func BenchmarkColdBootSlowPeerHedged(b *testing.B)   { benchColdBootSlowPeer(b, true) }

// TestHedgeCutsSlowPeerTail is the in-tree version of the slow-peer
// benchmark claim: over the same seed population, the hedged deployment
// must strictly reduce total stall time and never move more than one
// extra leg's worth of payload per hedge (the losing leg is cancelled
// before its first byte).
func TestHedgeCutsSlowPeerTail(t *testing.T) {
	run := func(hedge bool) (stall float64, fired int) {
		sq, _, repo := resilienceDeployment(t, 4, fault.Plan{Seed: 1}, func(cfg *Config) {
			cfg.Peer.Hedge = hedge
		})
		im := repo.Images[0]
		if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
			t.Fatal(err)
		}
		if err := sq.DropReplica("node03", im.ID); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			inj, err := fault.New(fault.Plan{Seed: int64(i + 1), Slow: 0.35, SlowSec: 0.04})
			if err != nil {
				t.Fatal(err)
			}
			sq.SetFaults(inj)
			rep, err := sq.Boot(bg, BootRequest{Image: im.ID, Node: "node03", Verify: true})
			if err != nil {
				t.Fatal(err)
			}
			stall += rep.PeerStallSec
			fired += rep.HedgesFired
			if rep.NetworkBytes != 0 {
				t.Fatalf("slow-peer boot leaked to the PFS: %+v", rep)
			}
		}
		return stall, fired
	}
	unhedgedStall, _ := run(false)
	hedgedStall, fired := run(true)
	if fired == 0 {
		t.Fatal("hedged run fired no hedges")
	}
	if hedgedStall >= unhedgedStall {
		t.Fatalf("hedging did not cut stall time: hedged %.3fs vs unhedged %.3fs",
			hedgedStall, unhedgedStall)
	}
}
