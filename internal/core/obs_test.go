package core

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/peer"
	"repro/internal/zvol"
)

// obsScriptDeployment is lifecycleDeployment with tracing switchable,
// for the traced-vs-untraced boundary test.
func obsScriptDeployment(t testing.TB, computeNodes int, plan fault.Plan, traced bool) (*Squirrel, *cluster.Cluster, *corpus.Repository) {
	t.Helper()
	inj, err := fault.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.GigE, 4, computeNodes)
	if err != nil {
		t.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	cfg.Faults = inj
	cfg.Peer = peer.DefaultPolicy()
	if traced {
		cfg.Obs = obs.New(0)
	}
	sq, err := New(cfg, cl, pfs)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sq, cl, repo
}

// TestTraceColdBootPeerExchange is the trace-based acceptance check: a
// cold boot under the peer exchange must show a peerFetch span that
// served bytes, and its pfsRead lane must carry zero indexed bytes —
// every range inside the cache extents came from peers, the PFS saw
// only the gaps.
func TestTraceColdBootPeerExchange(t *testing.T) {
	sq, cl, repo, _ := lifecycleDeployment(t, 6, fault.Plan{Seed: 1})
	tel := sq.Telemetry()
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), RegisterRequest{Image: im, At: day(0)}); err != nil {
		t.Fatal(err)
	}
	cold := cl.Compute[len(cl.Compute)-1].ID
	if err := sq.DropReplica(cold, im.ID); err != nil {
		t.Fatal(err)
	}
	rep, err := sq.Boot(context.Background(), BootRequest{Image: im.ID, Node: cold, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeerBytes == 0 || rep.PeerFallbacks != 0 {
		t.Fatalf("cold boot did not ride the peer exchange: %+v", rep)
	}

	boots := tel.RootsOf(obs.OpBoot)
	if len(boots) == 0 {
		t.Fatal("no boot span recorded")
	}
	sp := boots[len(boots)-1]
	if sp.Node() != cold || sp.Image() != im.ID || sp.Err() != "" {
		t.Fatalf("boot span wrong: %s", obs.RenderTree(sp))
	}
	var peerSpanBytes, indexedPFS int64
	var peerSpans int
	for _, c := range sp.ChildrenOf(obs.OpPeerFetch) {
		peerSpans++
		peerSpanBytes += c.Bytes()
		if c.Node() == "" || c.Node() == cold {
			t.Fatalf("peerFetch span has bad source %q:\n%s", c.Node(), obs.RenderTree(sp))
		}
	}
	for _, c := range sp.ChildrenOf(obs.OpPFSRead) {
		indexedPFS += c.Annotation("indexed_bytes")
	}
	if peerSpans == 0 || peerSpanBytes != rep.PeerBytes {
		t.Fatalf("peerFetch spans %d bytes %d, report says %d:\n%s",
			peerSpans, peerSpanBytes, rep.PeerBytes, obs.RenderTree(sp))
	}
	if indexedPFS != 0 {
		t.Fatalf("cold boot read %d indexed bytes from the PFS, want 0:\n%s",
			indexedPFS, obs.RenderTree(sp))
	}
	// Lane spans must reconcile with the report's byte accounting.
	var cacheSpanBytes, pfsSpanBytes int64
	for _, c := range sp.ChildrenOf(obs.OpCacheRead) {
		cacheSpanBytes += c.Bytes()
	}
	for _, c := range sp.ChildrenOf(obs.OpPFSRead) {
		pfsSpanBytes += c.Bytes()
	}
	if cacheSpanBytes != rep.CacheBytes || pfsSpanBytes != rep.NetworkBytes {
		t.Fatalf("lane spans cache=%d pfs=%d, report cache=%d pfs=%d",
			cacheSpanBytes, pfsSpanBytes, rep.CacheBytes, rep.NetworkBytes)
	}

	// The unified registry aggregates both ops and the shared counters.
	snap := tel.Snapshot()
	for _, kind := range []string{obs.OpRegister, obs.OpBoot, obs.OpPeerFetch, obs.OpPropagate} {
		op, ok := snap.Op(kind)
		if !ok || op.Count == 0 {
			t.Fatalf("snapshot missing op kind %q:\n%s", kind, snap.JSON())
		}
	}
	if snap.Counters["peer.hit"] == 0 {
		t.Fatalf("peer.hit counter not unified into telemetry: %v", snap.Counters)
	}
}

// scriptResult collects every report a scripted lifecycle run produces;
// the boundary test requires traced and untraced runs to be deeply equal.
type scriptResult struct {
	Regs      []RegisterReport
	Rot       map[string][]zvol.BlockRef
	Restarts  []RecoveryReport
	Scrubs    map[string]zvol.ScrubReport
	Resilvers []ResilverReport
	Boots     []BootReport
	Destroyed int
	Health    []NodeStatus
	Stats     DeploymentStats
}

// runLifecycleScript drives one deployment through a fixed fault-seeded
// scenario: registrations under chaos, rot, restart, scrub, resilver,
// verified boots, GC.
func runLifecycleScript(t *testing.T, sq *Squirrel, cl *cluster.Cluster, repo *corpus.Repository) scriptResult {
	t.Helper()
	res := scriptResult{Rot: map[string][]zvol.BlockRef{}}
	const regs = 4
	for i := 0; i < regs; i++ {
		rep, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)})
		if err != nil {
			t.Fatal(err)
		}
		res.Regs = append(res.Regs, rep)
	}
	for _, n := range cl.Compute {
		refs, err := sq.InjectRot(n.ID)
		if err != nil {
			t.Fatal(err)
		}
		res.Rot[n.ID] = refs
	}
	for _, st := range sq.Health() {
		if !st.Online {
			rep, err := sq.RestartNode(st.NodeID, day(regs))
			if err != nil {
				t.Fatal(err)
			}
			res.Restarts = append(res.Restarts, rep)
		}
	}
	scrubs, err := sq.ScrubAll(bg, day(regs))
	if err != nil {
		t.Fatal(err)
	}
	res.Scrubs = scrubs
	rs, err := sq.ResilverAll(bg, day(regs))
	if err != nil {
		t.Fatal(err)
	}
	res.Resilvers = rs
	latest := repo.Images[regs-1]
	for _, st := range sq.Health() {
		if !st.Online {
			continue
		}
		rep, err := sq.Boot(context.Background(), BootRequest{Image: latest.ID, Node: st.NodeID, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		res.Boots = append(res.Boots, rep)
	}
	res.Destroyed = sq.GarbageCollect(day(regs + 20))
	res.Health = sq.Health()
	res.Stats = sq.Stats()
	return res
}

// TestNilTracerLeavesBehaviorIdentical runs the same seeded chaos script
// on a traced and an untraced deployment: every report, health row, and
// stat must be byte-identical. A disabled tracer is a pure no-op.
func TestNilTracerLeavesBehaviorIdentical(t *testing.T) {
	plan := fault.Plan{
		Seed: 4242, Drop: 0.2, Truncate: 0.05, Corrupt: 0.1,
		Crash: 0.04, Torn: 0.05, MaxCrashes: 2, Rot: 0.04,
	}
	sqT, clT, repoT := obsScriptDeployment(t, 6, plan, true)
	sqU, clU, repoU := obsScriptDeployment(t, 6, plan, false)
	traced := runLifecycleScript(t, sqT, clT, repoT)
	untraced := runLifecycleScript(t, sqU, clU, repoU)
	if !reflect.DeepEqual(traced, untraced) {
		t.Fatalf("traced and untraced runs diverged:\ntraced:   %+v\nuntraced: %+v", traced, untraced)
	}
	if sqU.Telemetry() != nil {
		t.Fatal("untraced deployment must have nil telemetry")
	}
	if sqT.Telemetry().Snapshot().SpansRecorded == 0 {
		t.Fatal("traced deployment recorded no spans")
	}
}

// TestTelemetrySnapshotRace hammers Snapshot/Prometheus/JSON/RenderTree
// from one goroutine while registers, boots, and scrub waves run from
// others. The race detector is the oracle.
func TestTelemetrySnapshotRace(t *testing.T) {
	plan := fault.Plan{Seed: 99, Drop: 0.1, Corrupt: 0.05}
	sq, cl, repo, _ := lifecycleDeployment(t, 6, plan)
	tel := sq.Telemetry()
	// Seed a couple of images so boots have something to read.
	for i := 0; i < 2; i++ {
		if _, err := sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := tel.Snapshot()
			_ = snap.Prometheus()
			_ = snap.JSON()
			for _, r := range tel.Roots() {
				_ = obs.RenderTree(r)
			}
			_ = tel.SlowestRoot(obs.OpBoot)
		}
	}()
	var work sync.WaitGroup
	work.Add(3)
	go func() {
		defer work.Done()
		for i := 2; i < 6; i++ {
			_, _ = sq.Register(context.Background(), RegisterRequest{Image: repo.Images[i], At: day(i)})
		}
	}()
	go func() {
		defer work.Done()
		for round := 0; round < 3; round++ {
			for _, n := range cl.Compute {
				_, _ = sq.Boot(context.Background(), BootRequest{Image: repo.Images[0].ID, Node: n.ID, Verify: false})
			}
		}
	}()
	go func() {
		defer work.Done()
		for round := 0; round < 3; round++ {
			sq.ScrubAll(bg, day(7).Add(time.Duration(round)*time.Hour))
		}
	}()
	work.Wait()
	close(stop)
	reader.Wait()
	snap := tel.Snapshot()
	if op, ok := snap.Op(obs.OpBoot); !ok || op.Count == 0 {
		t.Fatalf("no boots aggregated: %s", snap.JSON())
	}
	if op, ok := snap.Op(obs.OpScrub); !ok || op.Count == 0 {
		t.Fatalf("no scrubs aggregated: %s", snap.JSON())
	}
}
