package workload

import (
	"math/rand"
	"testing"
)

// drain pulls n arrivals from a generator built for cfg with the given
// seed.
func drain(t *testing.T, cfg Config, seed int64, n int) []arrival {
	t.Helper()
	cfg, err := cfg.normalize()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	gen := newArrivalGen(cfg, rand.New(rand.NewSource(seed)))
	out := make([]arrival, n)
	for i := range out {
		out[i] = gen()
	}
	return out
}

func baseCfg(arrivals string, boots int) Config {
	return Config{
		Arrivals: arrivals,
		Boots:    boots,
		Images:   []string{"img-0", "img-1"},
		Nodes:    []string{"n0", "n1"},
	}
}

// Every generator must be a pure function of its rng (same seed, same
// schedule) and must emit strictly non-decreasing times.
func TestArrivalsDeterministicAndMonotonic(t *testing.T) {
	const n = 20000
	for _, proc := range []string{Poisson, Diurnal, Flash} {
		cfg := baseCfg(proc, n)
		a := drain(t, cfg, 42, n)
		b := drain(t, cfg, 42, n)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs across same-seed runs: %+v vs %+v", proc, i, a[i], b[i])
			}
		}
		for i := 1; i < n; i++ {
			if a[i].t < a[i-1].t {
				t.Fatalf("%s: arrival %d goes backwards: %.6f after %.6f", proc, i, a[i].t, a[i-1].t)
			}
		}
		c := drain(t, cfg, 43, n)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced an identical schedule", proc)
		}
	}
}

// Poisson arrivals should land ~Boots events inside the horizon: the
// mean inter-arrival time is horizon/boots.
func TestPoissonRate(t *testing.T) {
	const n = 50000
	cfg := baseCfg(Poisson, n)
	ev := drain(t, cfg, 7, n)
	last := ev[n-1].t
	if last < 0.9*3600 || last > 1.1*3600 {
		t.Fatalf("poisson: %d arrivals span %.0fs, want ~3600s", n, last)
	}
}

// The diurnal curve troughs at t=0 and peaks mid-horizon (0.4x vs 1.6x
// the mean rate), so a mid-horizon slice must hold several times the
// arrivals of an equally wide opening slice.
func TestDiurnalShape(t *testing.T) {
	const n = 60000
	cfg := baseCfg(Diurnal, n)
	ev := drain(t, cfg, 11, n)
	const horizon = 3600.0
	var early, mid int
	for _, e := range ev {
		switch {
		case e.t < horizon/10:
			early++
		case e.t >= 0.45*horizon && e.t < 0.55*horizon:
			mid++
		}
	}
	if early == 0 || mid == 0 {
		t.Fatalf("diurnal: empty slices (early=%d mid=%d)", early, mid)
	}
	if ratio := float64(mid) / float64(early); ratio < 2 {
		t.Fatalf("diurnal: mid/early arrival ratio %.2f, want >= 2 (trough 0.4x vs peak 1.6x)", ratio)
	}
}

// Flash: ~stormFrac of the first Boots arrivals are storm arrivals, all
// of them inside the storm window starting a third of the way in.
func TestFlashBurst(t *testing.T) {
	const n = 50000
	cfg := baseCfg(Flash, n)
	ev := drain(t, cfg, 13, n)
	const horizon = 3600.0
	start := stormStartFrac * horizon
	window := horizon / stormWindowDiv
	var storm int
	for _, e := range ev {
		if !e.storm {
			continue
		}
		storm++
		if e.t < start || e.t > start+window {
			t.Fatalf("flash: storm arrival at %.1fs outside window [%.1f, %.1f]", e.t, start, start+window)
		}
	}
	frac := float64(storm) / float64(n)
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("flash: storm fraction %.2f of %d arrivals, want ~%.1f", frac, n, stormFrac)
	}
}
