package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Driver schedules one scenario against a deployment.
type Driver struct {
	cfg Config
	dep Deployment
	tel *obs.Telemetry // nil is fine: spans and the snapshot section are skipped
}

// New builds a driver. tel may be nil.
func New(dep Deployment, cfg Config, tel *obs.Telemetry) *Driver {
	return &Driver{cfg: cfg, dep: dep, tel: tel}
}

// Run provisions the catalog, drives Config.Boots arrivals through the
// deployment, and returns the streaming summary. See the package comment
// for the two clock modes.
func Run(ctx context.Context, dep Deployment, cfg Config, tel *obs.Telemetry) (Summary, error) {
	return New(dep, cfg, tel).Run(ctx)
}

// Run executes the scenario.
func (d *Driver) Run(ctx context.Context) (Summary, error) {
	cfg, err := d.cfg.normalize()
	if err != nil {
		return Summary{}, err
	}
	root := d.tel.Tracer().StartOp(obs.OpWorkload, "", cfg.Arrivals)
	defer root.Finish()

	cold, err := d.provision(ctx, cfg, root)
	if err != nil {
		root.Fail(err)
		return Summary{}, err
	}

	dsp := root.Child(obs.OpWorkloadDrive, "", cfg.Arrivals)
	start := time.Now()
	var sum Summary
	if cfg.Mode == "wall" {
		sum, err = d.driveWall(ctx, cfg)
	} else {
		sum, err = d.driveLogical(ctx, cfg, cold)
	}
	if err != nil {
		dsp.Fail(err)
		dsp.Finish()
		root.Fail(err)
		return Summary{}, err
	}
	sum.ElapsedSec = time.Since(start).Seconds()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sum.HeapMB = float64(ms.HeapAlloc) / (1 << 20)
	dsp.Annotate("boots", sum.Boots)
	dsp.Annotate("shed", sum.Shed)
	dsp.AddBytes(sum.NetworkBytes)
	dsp.Finish()

	d.tel.SetWorkloadStats(obs.WorkloadStats{
		Arrivals: cfg.Arrivals, Mode: cfg.Mode, Nodes: len(cfg.Nodes),
		Boots: sum.Boots, Executed: sum.Executed, Shed: sum.Shed,
		PeerHits: sum.PeerHits, ShedRate: sum.ShedRate, PeerHitRate: sum.PeerHitRate,
		P50Ms: sum.P50Ms, P99Ms: sum.P99Ms, P999Ms: sum.P999Ms,
	})
	return sum, nil
}

// provision registers the catalog (idempotently: images a previous run
// registered are skipped) and drops the storm image's replica from a
// seeded ColdFrac of the nodes so the drive exercises the peer path.
// Returns the cold-node index set.
func (d *Driver) provision(ctx context.Context, cfg Config, parent *obs.Span) (map[int]bool, error) {
	sp := parent.Child(obs.OpWorkloadProvision, "", "")
	defer sp.Finish()
	at := cfg.At
	for i, id := range cfg.Images {
		_, err := d.dep.Register(ctx, id, at.Add(time.Duration(i)*time.Minute))
		if err != nil && !errors.Is(err, core.ErrRegistered) {
			return nil, fmt.Errorf("workload: provision %s: %w", id, err)
		}
		if err == nil {
			sp.Annotate("registered", 1)
		}
	}
	hot := cfg.Images[len(cfg.Images)-1]
	k := int(cfg.ColdFrac*float64(len(cfg.Nodes)) + 0.5)
	if k == 0 {
		k = 1
	}
	if k > len(cfg.Nodes) {
		k = len(cfg.Nodes)
	}
	coldRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	cold := make(map[int]bool, k)
	for _, idx := range coldRng.Perm(len(cfg.Nodes))[:k] {
		// A drop can fail if the node never held the replica (e.g. it was
		// already cold from an earlier run); that leaves it cold either way.
		_ = d.dep.DropReplica(cfg.Nodes[idx], hot)
		cold[idx] = true
	}
	sp.Annotate("cold_nodes", int64(k))
	return cold, nil
}

// picks derives (node, image) for each arrival: storm arrivals boot the
// newest image; everything else draws a tenant, then that tenant's
// Zipf-ranked image. One shared pick rng keeps the whole sequence a
// function of the seed.
type picks struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	perms [][]int // tenant → popularity-ranked image indexes
	nodes int
	hot   int
}

func newPicks(cfg Config) *picks {
	r := rand.New(rand.NewSource(cfg.Seed ^ 0x9E3779B9))
	p := &picks{
		rng:   r,
		zipf:  rand.NewZipf(r, cfg.ZipfS, 1, uint64(len(cfg.Images)-1)),
		perms: make([][]int, cfg.Tenants),
		nodes: len(cfg.Nodes),
		hot:   len(cfg.Images) - 1,
	}
	for t := range p.perms {
		p.perms[t] = r.Perm(len(cfg.Images))
	}
	return p
}

func (p *picks) next(storm bool) (node, img int) {
	node = p.rng.Intn(p.nodes)
	if storm {
		return node, p.hot
	}
	tenant := p.rng.Intn(len(p.perms))
	return node, p.perms[tenant][p.zipf.Uint64()]
}

// bootMemo caches deterministic BootReports in logical mode. Keys
// distinguish only what changes the report: the image for warm boots
// (identical on every warm node), the (node, image) pair for cold ones.
// Every Resample replays of a key, the boot re-executes through the real
// machinery so admission gates, peer fetches, and hedges stay exercised.
type bootMemo struct {
	reports  map[uint64]core.BootReport
	hits     map[uint64]int64
	resample int64
}

func memoKey(node, img int, coldBoot bool) uint64 {
	if !coldBoot {
		return uint64(img)
	}
	return 1<<63 | uint64(node)<<24 | uint64(img)
}

// driveLogical is the deterministic event loop: per-node virtual boot
// slots, deadline shedding, and service times derived from the real
// BootReports. No goroutines, no wall clocks.
func (d *Driver) driveLogical(ctx context.Context, cfg Config, cold map[int]bool) (Summary, error) {
	sum := Summary{
		Arrivals: cfg.Arrivals, Mode: cfg.Mode,
		Nodes: len(cfg.Nodes), Images: len(cfg.Images),
	}
	gen := newArrivalGen(cfg, rand.New(rand.NewSource(cfg.Seed)))
	pk := newPicks(cfg)
	memo := bootMemo{
		reports:  make(map[uint64]core.BootReport),
		hits:     make(map[uint64]int64),
		resample: int64(cfg.Resample),
	}

	// slotFree[n] holds, per virtual boot slot of node n, the virtual
	// time at which it next becomes idle — the entire queueing state.
	slotFree := make([][]float64, len(cfg.Nodes))
	slotBacking := make([]float64, len(cfg.Nodes)*cfg.Slots)
	for i := range slotFree {
		slotFree[i] = slotBacking[i*cfg.Slots : (i+1)*cfg.Slots : (i+1)*cfg.Slots]
	}

	latHist := metrics.MustHistogram(metrics.LatencyBuckets()...)
	waitHist := metrics.MustHistogram(metrics.LatencyBuckets()...)
	shedSec := cfg.ShedMs / 1e3

	for n := 0; n < cfg.Boots; n++ {
		if n%4096 == 0 && ctx.Err() != nil {
			return Summary{}, fmt.Errorf("workload: drive cancelled after %d boots: %w", n, ctx.Err())
		}
		ev := gen()
		node, img := pk.next(ev.storm)
		sum.Boots++

		// Virtual admission: the earliest-free slot decides the wait.
		slots := slotFree[node]
		minIdx := 0
		for i := 1; i < len(slots); i++ {
			if slots[i] < slots[minIdx] {
				minIdx = i
			}
		}
		wait := slots[minIdx] - ev.t
		if wait < 0 {
			wait = 0
		}
		if wait > shedSec {
			sum.Shed++
			continue // shed at the door; the slot stays as it was
		}

		coldBoot := img == pk.hot && cold[node]
		key := memoKey(node, img, coldBoot)
		rep, cached := memo.reports[key]
		memo.hits[key]++
		if !cached || memo.hits[key]%memo.resample == 0 {
			var err error
			rep, err = d.dep.Boot(ctx, core.BootRequest{Image: cfg.Images[img], Node: cfg.Nodes[node]})
			if err != nil {
				if errors.Is(err, core.ErrOverloaded) {
					sum.Shed++
					continue
				}
				return Summary{}, fmt.Errorf("workload: boot %s on %s: %w", cfg.Images[img], cfg.Nodes[node], err)
			}
			sum.Executed++
			memo.reports[key] = rep
		}

		svc := cfg.DeviceMs/1e3 + float64(rep.NetworkBytes)/cfg.Bandwidth + rep.PeerStallSec
		slots[minIdx] = ev.t + wait + svc

		sum.Admitted++
		if rep.Warm {
			sum.Warm++
		} else {
			sum.Cold++
			if rep.PeerBytes > 0 {
				sum.PeerHits++
			}
		}
		sum.NetworkBytes += rep.NetworkBytes
		sum.PeerBytes += rep.PeerBytes
		latHist.Observe(int64((wait + svc) * 1e9))
		waitHist.Observe(int64(wait * 1e9))
	}
	fold(&sum, latHist, waitHist)
	return sum, nil
}

// driveWall fires real boots from a worker pool and measures real
// elapsed latency; shedding is the deployment's own admission control.
// Cold nodes need no special handling here: their dropped replicas make
// the real boots take the peer path on their own.
func (d *Driver) driveWall(ctx context.Context, cfg Config) (Summary, error) {
	sum := Summary{
		Arrivals: cfg.Arrivals, Mode: cfg.Mode,
		Nodes: len(cfg.Nodes), Images: len(cfg.Images),
	}
	gen := newArrivalGen(cfg, rand.New(rand.NewSource(cfg.Seed)))
	pk := newPicks(cfg)

	latHist := metrics.MustHistogram(metrics.LatencyBuckets()...)
	type job struct{ node, img int }
	jobs := make(chan job, 2*cfg.Workers)
	var (
		wg                                sync.WaitGroup
		shed, warm, coldN, peerHits, netB atomic.Int64
		peerB, executed                   atomic.Int64
		firstErr                          atomic.Value
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				t0 := time.Now()
				rep, err := d.dep.Boot(ctx, core.BootRequest{Image: cfg.Images[j.img], Node: cfg.Nodes[j.node]})
				if err != nil {
					if errors.Is(err, core.ErrOverloaded) {
						shed.Add(1)
						continue
					}
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				executed.Add(1)
				latHist.Observe(time.Since(t0).Nanoseconds())
				if rep.Warm {
					warm.Add(1)
				} else {
					coldN.Add(1)
					if rep.PeerBytes > 0 {
						peerHits.Add(1)
					}
				}
				netB.Add(rep.NetworkBytes)
				peerB.Add(rep.PeerBytes)
			}
		}()
	}
	for n := 0; n < cfg.Boots; n++ {
		if n%1024 == 0 && ctx.Err() != nil {
			break
		}
		ev := gen()
		node, img := pk.next(ev.storm)
		jobs <- job{node: node, img: img}
		sum.Boots++
	}
	close(jobs)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return Summary{}, fmt.Errorf("workload: wall drive: %w", err)
	}
	if ctx.Err() != nil {
		return Summary{}, fmt.Errorf("workload: drive cancelled after %d boots: %w", sum.Boots, ctx.Err())
	}
	sum.Executed = executed.Load()
	sum.Admitted = sum.Executed
	sum.Shed = shed.Load()
	sum.Warm = warm.Load()
	sum.Cold = coldN.Load()
	sum.PeerHits = peerHits.Load()
	sum.NetworkBytes = netB.Load()
	sum.PeerBytes = peerB.Load()
	fold(&sum, latHist, nil)
	return sum, nil
}

// fold collapses the histograms into the summary's fixed quantile set.
func fold(sum *Summary, lat, wait *metrics.Histogram) {
	const ms = 1e6
	ls := lat.Snapshot()
	sum.P50Ms = float64(ls.Quantile(0.50)) / ms
	sum.P95Ms = float64(ls.Quantile(0.95)) / ms
	sum.P99Ms = float64(ls.Quantile(0.99)) / ms
	sum.P999Ms = float64(ls.Quantile(0.999)) / ms
	sum.MaxMs = float64(ls.Max) / ms
	sum.MeanMs = ls.Mean() / ms
	if wait != nil {
		sum.WaitP99Ms = float64(wait.Quantile(0.99)) / ms
	}
	if sum.Boots > 0 {
		sum.ShedRate = float64(sum.Shed) / float64(sum.Boots)
	}
	if sum.Cold > 0 {
		sum.PeerHitRate = float64(sum.PeerHits) / float64(sum.Cold)
	}
}
