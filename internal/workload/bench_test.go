package workload_test

import (
	"context"
	"testing"

	"repro/internal/workload"
)

// BenchmarkWorkloadTail is the ISSUE's workload_tail surface: boot
// latency tail (p99 / p99.9) per arrival process x index mode, driven
// through a real deployment under the logical clock. cmd/benchjson
// turns the reported metrics into the workload_tail BENCH.json table.
func BenchmarkWorkloadTail(b *testing.B) {
	cases := []struct {
		arrivals, index string
	}{
		{workload.Poisson, "central"},
		{workload.Diurnal, "central"},
		{workload.Flash, "central"},
		{workload.Flash, "gossip"},
	}
	for _, tc := range cases {
		b.Run(tc.arrivals+"-"+tc.index, func(b *testing.B) {
			sess, cfg := newDeployment(b, tc.index, 16, 128)
			cfg.Arrivals = tc.arrivals
			cfg.Boots = 100000
			b.ResetTimer()
			var sum workload.Summary
			for i := 0; i < b.N; i++ {
				var err error
				sum, err = workload.Run(context.Background(), sess, cfg, nil)
				if err != nil {
					b.Fatalf("run: %v", err)
				}
			}
			b.ReportMetric(sum.P99Ms, "p99-ms")
			b.ReportMetric(sum.P999Ms, "p999-ms")
			b.ReportMetric(100*sum.ShedRate, "shed-%")
			b.ReportMetric(100*sum.PeerHitRate, "peerhit-%")
		})
	}
}
