package workload

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// fakeDep is a deterministic in-memory Deployment: warm boots report
// zero transfer, boots of a dropped (node, image) replica report a
// fixed peer fetch. Safe for the wall-mode worker pool.
type fakeDep struct {
	mu         sync.Mutex
	registered map[string]bool
	dropped    map[string]bool
	boots      int64
}

const fakePeerBytes = 350_000

func newFakeDep() *fakeDep {
	return &fakeDep{registered: map[string]bool{}, dropped: map[string]bool{}}
}

func (f *fakeDep) Register(_ context.Context, imageID string, _ time.Time) (core.RegisterReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.registered[imageID] {
		return core.RegisterReport{}, core.ErrRegistered
	}
	f.registered[imageID] = true
	return core.RegisterReport{ImageID: imageID}, nil
}

func (f *fakeDep) Boot(_ context.Context, req core.BootRequest) (core.BootReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.boots++
	rep := core.BootReport{ImageID: req.Image, NodeID: req.Node, Warm: true}
	if f.dropped[req.Node+"|"+req.Image] {
		rep.Warm = false
		rep.PeerBytes = fakePeerBytes
		rep.NetworkBytes = fakePeerBytes
		rep.PeerStallSec = 0.003
	}
	return rep, nil
}

func (f *fakeDep) DropReplica(nodeID, imageID string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropped[nodeID+"|"+imageID] = true
	return nil
}

func (f *fakeDep) bootCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.boots
}

func testCfg(arrivals string, nodes, images, boots int) Config {
	cfg := Config{Arrivals: arrivals, Boots: boots, Seed: 99}
	for i := 0; i < images; i++ {
		cfg.Images = append(cfg.Images, "img-"+string(rune('a'+i%26))+"-"+itoa(i))
	}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, "node"+itoa(i))
	}
	return cfg
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Same seed, same deployment shape => byte-identical Summary modulo the
// two wall-clock fields.
func TestDriverDeterminism(t *testing.T) {
	cfg := testCfg(Flash, 32, 8, 20000)
	run := func() Summary {
		sum, err := Run(context.Background(), newFakeDep(), cfg, nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		sum.ElapsedSec, sum.HeapMB = 0, 0
		return sum
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed summaries differ:\n  a: %+v\n  b: %+v", a, b)
	}
	if a.Boots != 20000 || a.Admitted+a.Shed != a.Boots {
		t.Fatalf("boot accounting broken: %+v", a)
	}
}

// Logical mode memoizes: driving 100k boots executes only a handful of
// real boots (one per warm image, one per cold pair, plus resamples).
func TestDriverMemoization(t *testing.T) {
	cfg := testCfg(Flash, 32, 8, 100000)
	dep := newFakeDep()
	sum, err := Run(context.Background(), dep, cfg, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sum.Executed != dep.bootCount() {
		t.Fatalf("Executed %d != deployment boot count %d", sum.Executed, dep.bootCount())
	}
	// 8 warm keys + ~2 cold keys + ~100000/2048 resamples, with slack.
	if sum.Executed > 200 {
		t.Fatalf("Executed = %d real boots for 100k scheduled, memoization broken", sum.Executed)
	}
	if sum.Executed == 0 || sum.Admitted == 0 {
		t.Fatalf("nothing ran: %+v", sum)
	}
}

// Cold accounting: provision drops the storm image from ColdFrac of the
// nodes; every storm boot landing there is a cold peer hit.
func TestDriverColdAccounting(t *testing.T) {
	cfg := testCfg(Flash, 40, 8, 30000)
	cfg.ColdFrac = 0.1 // 4 cold nodes
	dep := newFakeDep()
	sum, err := Run(context.Background(), dep, cfg, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(dep.dropped) != 4 {
		t.Fatalf("provision dropped %d replicas, want 4", len(dep.dropped))
	}
	if sum.Cold == 0 {
		t.Fatalf("no cold boots despite %d dropped replicas", len(dep.dropped))
	}
	if sum.PeerHits != sum.Cold || sum.PeerHitRate != 1 {
		t.Fatalf("fake serves every cold boot from a peer: PeerHits=%d Cold=%d rate=%.2f",
			sum.PeerHits, sum.Cold, sum.PeerHitRate)
	}
	if sum.PeerBytes != sum.Cold*fakePeerBytes || sum.NetworkBytes != sum.PeerBytes {
		t.Fatalf("byte accounting: peer=%d net=%d cold=%d", sum.PeerBytes, sum.NetworkBytes, sum.Cold)
	}
	if sum.Warm+sum.Cold != sum.Admitted {
		t.Fatalf("warm %d + cold %d != admitted %d", sum.Warm, sum.Cold, sum.Admitted)
	}
}

// An offered load far beyond the virtual capacity sheds at the deadline
// instead of queueing without bound.
func TestDriverShedding(t *testing.T) {
	cfg := testCfg(Poisson, 4, 4, 5000)
	cfg.HorizonSec = 100 // 50 boots/s offered vs 4 nodes x 2 slots / 5s = 1.6/s served
	cfg.DeviceMs = 5000
	cfg.ShedMs = 500
	sum, err := Run(context.Background(), newFakeDep(), cfg, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sum.Shed == 0 {
		t.Fatalf("overload scenario shed nothing: %+v", sum)
	}
	if sum.ShedRate < 0.5 {
		t.Fatalf("ShedRate %.2f under 30x overload, want most arrivals shed", sum.ShedRate)
	}
	if sum.Admitted+sum.Shed != sum.Boots {
		t.Fatalf("accounting: admitted %d + shed %d != boots %d", sum.Admitted, sum.Shed, sum.Boots)
	}
	// Admitted boots never waited past the deadline.
	if sum.WaitP99Ms > cfg.ShedMs {
		t.Fatalf("admitted wait p99 %.0fms exceeds shed deadline %.0fms", sum.WaitP99Ms, cfg.ShedMs)
	}
}

// Wall mode drives every boot through the deployment (no memoization)
// and keeps the same count accounting.
func TestDriverWallMode(t *testing.T) {
	cfg := testCfg(Poisson, 8, 4, 600)
	cfg.Mode = "wall"
	cfg.Workers = 4
	dep := newFakeDep()
	sum, err := Run(context.Background(), dep, cfg, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sum.Mode != "wall" || sum.Boots != 600 {
		t.Fatalf("unexpected summary: %+v", sum)
	}
	if sum.Executed != 600 || dep.bootCount() != 600 {
		t.Fatalf("wall mode must execute every boot: executed=%d dep=%d", sum.Executed, dep.bootCount())
	}
	if sum.Warm+sum.Cold != sum.Executed {
		t.Fatalf("warm %d + cold %d != executed %d", sum.Warm, sum.Cold, sum.Executed)
	}
}

// A cancelled context stops the drive with a wrapped cancellation error.
func TestDriverContextCancel(t *testing.T) {
	cfg := testCfg(Poisson, 8, 4, 50000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, newFakeDep(), cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("want cancellation error, got %v", err)
	}
}

// A finished run publishes the workload section into the telemetry
// snapshot.
func TestDriverPublishesWorkloadStats(t *testing.T) {
	cfg := testCfg(Flash, 16, 4, 5000)
	tel := obs.New(8)
	sum, err := Run(context.Background(), newFakeDep(), cfg, tel)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	snap := tel.Snapshot()
	ws := snap.Workload
	if ws == nil {
		t.Fatalf("snapshot has no workload section")
	}
	if ws.Arrivals != Flash || ws.Boots != sum.Boots || ws.Shed != sum.Shed || ws.P99Ms != sum.P99Ms {
		t.Fatalf("workload section %+v does not match summary %+v", ws, sum)
	}
	if !strings.Contains(snap.Prometheus(), `squirrel_workload_boots{arrivals="flash",mode="logical"}`) {
		t.Fatalf("prometheus export missing workload gauges")
	}
	// The drive is spanned: one workload root with provision + drive children.
	roots := tel.RootsOf(obs.OpWorkload)
	if len(roots) != 1 {
		t.Fatalf("want 1 workload root span, got %d", len(roots))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Boots: 10, Nodes: []string{"n0"}},                                            // no images
		{Boots: 10, Images: []string{"i"}},                                            // no nodes
		{Images: []string{"i"}, Nodes: []string{"n0"}},                                // no boots
		{Boots: 10, Images: []string{"i"}, Nodes: []string{"n0"}, Arrivals: "bursty"}, // bad process
		{Boots: 10, Images: []string{"i"}, Nodes: []string{"n0"}, Mode: "simulated"},  // bad mode
		{Boots: 10, Images: []string{"i"}, Nodes: []string{"n0"}, ColdFrac: 1.5},      // bad fraction
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), newFakeDep(), cfg, nil); err == nil {
			t.Fatalf("config %d: want validation error, got nil", i)
		}
	}
	// Defaults fill everything else in.
	cfg, err := Config{Boots: 10, Images: []string{"i"}, Nodes: []string{"n0"}}.normalize()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if cfg.Arrivals != Poisson || cfg.Mode != "logical" || cfg.Slots != 2 || cfg.Resample != defaultResample {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}
