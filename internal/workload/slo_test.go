// Integration tests driving the workload engine through a real
// ctlplane.Local deployment — the reduced-scale version of the CI
// flash-crowd gate. These live in an external test package so workload
// itself never imports the control plane (ctlplane imports workload for
// the TWorkload op).
package workload_test

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/ctlplane"
	"repro/internal/workload"
)

// newDeployment builds a peered Local and returns it with its catalog.
func newDeployment(t testing.TB, index string, images, nodes int) (*ctlplane.Local, workload.Config) {
	t.Helper()
	sess, err := ctlplane.NewLocal(ctlplane.Options{Images: images, Nodes: nodes, Peers: true, Index: index})
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	t.Cleanup(func() { sess.Close() })
	info, err := sess.Info()
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	return sess, workload.Config{
		Images: info.Images,
		Nodes:  info.ComputeNodes,
		Seed:   1337,
	}
}

// The CI gate at reduced scale: a flash crowd against a real deployment
// must stay inside the latency SLO, shed almost nothing, and serve the
// cold nodes from peers — under both content-index implementations.
func TestWorkloadFlashSLO(t *testing.T) {
	for _, index := range []string{"central", "gossip"} {
		t.Run(index, func(t *testing.T) {
			sess, cfg := newDeployment(t, index, 16, 64)
			cfg.Arrivals = workload.Flash
			cfg.Boots = 6400
			sum, err := workload.Run(context.Background(), sess, cfg, nil)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			t.Logf("%s", sum)
			if sum.Boots != 6400 || sum.Admitted+sum.Shed != sum.Boots {
				t.Fatalf("accounting: %+v", sum)
			}
			if sum.P99Ms > 1500 {
				t.Fatalf("p99 %.0fms breaches the 1500ms SLO", sum.P99Ms)
			}
			if sum.P999Ms < sum.P99Ms || sum.P50Ms > sum.P99Ms {
				t.Fatalf("quantiles out of order: p50 %.0f p99 %.0f p99.9 %.0f", sum.P50Ms, sum.P99Ms, sum.P999Ms)
			}
			if sum.ShedRate > 0.05 {
				t.Fatalf("shed rate %.2f%% above 5%%", 100*sum.ShedRate)
			}
			if sum.Cold == 0 {
				t.Fatalf("no cold boots: replica drops did not take")
			}
			if sum.PeerHitRate < 0.5 {
				t.Fatalf("peer-hit rate %.2f: cold boots are not being served from peers", sum.PeerHitRate)
			}
			// Memoization keeps the real-boot count far below the schedule.
			if sum.Executed >= 1000 {
				t.Fatalf("Executed = %d of %d scheduled; memoization broken", sum.Executed, sum.Boots)
			}
			stats, err := sess.Stats()
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			if stats.IndexSource != index {
				t.Fatalf("deployment index = %q, want %q", stats.IndexSource, index)
			}
		})
	}
}

// Two identically-built deployments driven with the same seed produce
// identical summaries under the logical clock — the property the CLI's
// workload_tail output and the golden tests rely on.
func TestWorkloadDeterministicAcrossDeployments(t *testing.T) {
	run := func() workload.Summary {
		sess, cfg := newDeployment(t, "central", 8, 32)
		cfg.Arrivals = workload.Flash
		cfg.Boots = 3200
		sum, err := workload.Run(context.Background(), sess, cfg, nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		sum.ElapsedSec, sum.HeapMB = 0, 0
		return sum
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, fresh deployments, different summaries:\n  a: %+v\n  b: %+v", a, b)
	}
}

// The streaming-aggregation memory bound: driving 20x the boots through
// the same deployment must not grow the heap meaningfully, because the
// driver retains no per-boot state. Any per-boot retention (say 100
// bytes each) would show up as tens of MB at the large count.
func TestWorkloadHeapCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("heap-growth measurement is slow under -short")
	}
	sess, cfg := newDeployment(t, "central", 16, 64)
	cfg.Arrivals = workload.Flash

	measure := func(boots int) float64 {
		cfg.Boots = boots
		if _, err := workload.Run(context.Background(), sess, cfg, nil); err != nil {
			t.Fatalf("run(%d): %v", boots, err)
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc) / (1 << 20)
	}

	small := measure(20000)
	big := measure(400000)
	growth := big - small
	t.Logf("heap after 20k boots: %.1f MB; after 400k boots: %.1f MB; growth %.1f MB", small, big, growth)
	if growth > 32 {
		t.Fatalf("heap grew %.1f MB between 20k- and 400k-boot drives; driver is retaining per-boot state", growth)
	}
}
