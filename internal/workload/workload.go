// Package workload is Squirrel's traffic engine: seeded arrival-process
// generators (Poisson, diurnal, flash-crowd), multi-tenant image
// popularity skew (Zipf over the corpus catalog), and a memory-bounded
// driver that schedules boots through a deployment's real admission /
// hedge / peer machinery at ~10k nodes and ~1M boots on one machine.
//
// Two clocks:
//
//   - logical (default): a single-threaded event loop over virtual time.
//     Every arrival queues on its node's fixed set of virtual boot slots;
//     waiting, service, and shedding are computed from the deterministic
//     BootReports the deployment returns, so the same seed produces the
//     same Summary byte for byte. This is the mode tests gate on.
//
//   - wall: a worker pool fires real boots and measures real elapsed
//     latency; sheds come from the deployment's own admission control.
//     This is the mode benches run.
//
// Memory is bounded by construction: arrivals are generated on the fly
// (never materialized), results stream into fixed-bucket histograms
// (never retained per boot), and the logical clock's only per-node state
// is `Slots` float64s of virtual queue depth. Driving 1M boots costs the
// same heap as driving 10k. In logical mode, repeated identical boots
// (same node temperature, same image) are memoized from the first real
// execution and re-executed every Resample hits — valid because
// BootReports are deterministic for a fault-free deployment — which is
// what makes a million-boot drive complete in seconds.
package workload

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
)

// Deployment is the slice of a control-plane session the driver needs.
// The method set matches ctlplane.Session's signatures exactly, so any
// Session (in-process Local or a wireclient over TCP) satisfies it.
type Deployment interface {
	Register(ctx context.Context, imageID string, at time.Time) (core.RegisterReport, error)
	Boot(ctx context.Context, req core.BootRequest) (core.BootReport, error)
	DropReplica(nodeID, imageID string) error
}

// Arrival process names.
const (
	Poisson = "poisson" // constant-rate memoryless arrivals
	Diurnal = "diurnal" // sinusoidal day curve (trough 0.4×, peak 1.6× the mean rate)
	Flash   = "flash"   // background Poisson + "9am new-image storm" burst
)

// Config parameterizes one workload scenario. The zero value is not
// runnable: Images, Nodes, and Boots must be set. Everything else has a
// default applied by normalize.
type Config struct {
	Arrivals string // Poisson, Diurnal, or Flash (default Poisson)
	Seed     int64  // drives every random choice (default 1)
	Boots    int    // total arrivals to schedule

	Images []string // catalog in registration order; the LAST entry is the "new" storm image
	Nodes  []string // compute node IDs

	Tenants  int     // tenants with independent popularity permutations (default 8)
	ZipfS    float64 // Zipf skew exponent, must be > 1 (default 1.2)
	ColdFrac float64 // fraction of nodes whose storm-image replica is dropped (default 0.05)

	Mode string // "logical" (default) or "wall"

	// Logical-clock service model.
	Slots      int     // virtual concurrent boot slots per node (default 2)
	DeviceMs   float64 // fixed device/hypervisor service time per boot (default 400)
	ShedMs     float64 // virtual admission deadline: queue waits beyond it shed (default 2000)
	HorizonSec float64 // arrival window the rate curves are shaped over (default 3600)
	Bandwidth  float64 // bytes/sec converting BootReport transfer bytes to time (default 110e6)

	// Resample re-executes a memoized boot through the real machinery
	// every N replays (default 2048; every boot is real when Boots is
	// small). Wall mode never memoizes.
	Resample int

	// Workers sizes the wall-mode pool (default 8).
	Workers int

	// At is the simulated base time for provisioning registrations
	// (default 2014-06-23 09:00 UTC, the corpus epoch).
	At time.Time
}

// storm shape: fraction of all arrivals compressed into the burst, where
// the burst starts, and how long it lasts relative to the horizon.
const (
	stormFrac        = 0.7
	stormStartFrac   = 1.0 / 3.0
	stormWindowDiv   = 120.0 // window = horizon/120 (30s for a 1h horizon)
	defaultResample  = 2048
	defaultBandwidth = 110e6 // matches cluster.GigE
)

func (c Config) normalize() (Config, error) {
	if len(c.Images) == 0 || len(c.Nodes) == 0 {
		return c, fmt.Errorf("workload: config needs images and nodes")
	}
	if c.Boots <= 0 {
		return c, fmt.Errorf("workload: config needs a positive boot count")
	}
	switch c.Arrivals {
	case "":
		c.Arrivals = Poisson
	case Poisson, Diurnal, Flash:
	default:
		return c, fmt.Errorf("workload: unknown arrival process %q", c.Arrivals)
	}
	switch c.Mode {
	case "":
		c.Mode = "logical"
	case "logical", "wall":
	default:
		return c, fmt.Errorf("workload: unknown clock mode %q", c.Mode)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.ColdFrac < 0 || c.ColdFrac > 1 {
		return c, fmt.Errorf("workload: cold fraction %.2f outside [0,1]", c.ColdFrac)
	}
	if c.ColdFrac == 0 {
		c.ColdFrac = 0.05
	}
	if c.Slots <= 0 {
		c.Slots = 2
	}
	if c.DeviceMs <= 0 {
		c.DeviceMs = 400
	}
	if c.ShedMs <= 0 {
		c.ShedMs = 2000
	}
	if c.HorizonSec <= 0 {
		c.HorizonSec = 3600
	}
	if c.Bandwidth <= 0 {
		c.Bandwidth = defaultBandwidth
	}
	if c.Resample <= 0 {
		c.Resample = defaultResample
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.At.IsZero() {
		c.At = time.Date(2014, 6, 23, 9, 0, 0, 0, time.UTC)
	}
	return c, nil
}

// Summary is the streaming-aggregate result of one drive: a fixed-size
// record regardless of how many boots were scheduled. In logical mode it
// is a pure function of (Config, deployment seed); ElapsedSec and HeapMB
// describe the driving process itself and are the only wall-clock
// fields.
type Summary struct {
	Arrivals string
	Mode     string
	Index    string // filled by the control plane (central | gossip)
	Nodes    int
	Images   int

	Boots    int64 // arrivals scheduled
	Executed int64 // boots run through the real deployment machinery
	Admitted int64
	Shed     int64
	Warm     int64
	Cold     int64
	PeerHits int64 // cold boots whose bytes came from a peer, not the PFS

	ShedRate    float64 // Shed / Boots
	PeerHitRate float64 // PeerHits / Cold (0 when no cold boots)

	// Boot latency quantiles in milliseconds (queue wait + service).
	P50Ms  float64
	P95Ms  float64
	P99Ms  float64
	P999Ms float64
	MaxMs  float64
	MeanMs float64

	WaitP99Ms float64 // queueing component alone, logical mode only

	NetworkBytes int64 // Σ BootReport.NetworkBytes over all scheduled boots
	PeerBytes    int64

	ElapsedSec float64 // wall-clock duration of the drive phase
	HeapMB     float64 // process HeapAlloc after the drive (informational)
}

func (s Summary) String() string {
	return fmt.Sprintf("workload %s/%s: %d boots on %d nodes, shed %.2f%%, peer-hit %.1f%%, p50 %.1fms p99 %.1fms p99.9 %.1fms",
		s.Arrivals, s.Mode, s.Boots, s.Nodes, 100*s.ShedRate, 100*s.PeerHitRate, s.P50Ms, s.P99Ms, s.P999Ms)
}
