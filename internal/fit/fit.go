// Package fit reproduces the paper's curve-fitting methodology (§4.3.2):
// linear regression, the Morgan-Mercer-Flodin (MMF) growth curve, and the
// Hoerl curve, scored by root-mean-square error. The paper fed half its
// data points to CurveExpert, asked for the best fits, scored candidates
// by RMSE over all points, and extrapolated with the winner; TrainHalf
// implements exactly that protocol.
//
//	linear:  y = a + b·x
//	MMF:     y = (a·b + c·x^d) / (b + x^d)
//	Hoerl:   y = a · bˣ · x^c
//
// Linear and Hoerl have closed-form solutions (Hoerl via log
// linearization); MMF is fitted by Gauss-Newton with Levenberg-Marquardt
// damping and a numeric Jacobian.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// Curve is a fitted model.
type Curve interface {
	Name() string
	Eval(x float64) float64
	Params() []float64
}

// Fitter fits a curve family to points.
type Fitter interface {
	Name() string
	Fit(xs, ys []float64) (Curve, error)
}

// Errors.
var (
	ErrTooFewPoints = errors.New("fit: too few points")
	ErrBadDomain    = errors.New("fit: x values must be positive for this family")
	ErrSingular     = errors.New("fit: singular normal equations")
	ErrNoConverge   = errors.New("fit: did not converge")
)

// RMSE is the root-mean-square error of curve c over the points.
func RMSE(c Curve, xs, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for i := range xs {
		d := c.Eval(xs[i]) - ys[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// ---------------------------------------------------------------------------
// Linear regression.

// Linear is y = a + b·x.
type Linear struct{ A, B float64 }

// Name implements Curve.
func (l Linear) Name() string { return "linear" }

// Eval implements Curve.
func (l Linear) Eval(x float64) float64 { return l.A + l.B*x }

// Params implements Curve.
func (l Linear) Params() []float64 { return []float64{l.A, l.B} }

// LinearFitter fits by ordinary least squares.
type LinearFitter struct{}

// Name implements Fitter.
func (LinearFitter) Name() string { return "linear" }

// Fit implements Fitter.
func (LinearFitter) Fit(xs, ys []float64) (Curve, error) {
	if len(xs) < 2 || len(xs) != len(ys) {
		return nil, ErrTooFewPoints
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return nil, ErrSingular
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	return Linear{A: a, B: b}, nil
}

// ---------------------------------------------------------------------------
// Hoerl curve.

// Hoerl is y = a · bˣ · x^c.
type Hoerl struct{ A, B, C float64 }

// Name implements Curve.
func (h Hoerl) Name() string { return "hoerl" }

// Eval implements Curve.
func (h Hoerl) Eval(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	return h.A * math.Pow(h.B, x) * math.Pow(x, h.C)
}

// Params implements Curve.
func (h Hoerl) Params() []float64 { return []float64{h.A, h.B, h.C} }

// HoerlFitter fits by log-linearization: ln y = ln a + x·ln b + c·ln x,
// an ordinary least squares problem in (1, x, ln x).
type HoerlFitter struct{}

// Name implements Fitter.
func (HoerlFitter) Name() string { return "hoerl" }

// Fit implements Fitter.
func (HoerlFitter) Fit(xs, ys []float64) (Curve, error) {
	if len(xs) < 3 || len(xs) != len(ys) {
		return nil, ErrTooFewPoints
	}
	rows := make([][3]float64, 0, len(xs))
	rhs := make([]float64, 0, len(xs))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue // log-linearization needs positive values
		}
		rows = append(rows, [3]float64{1, xs[i], math.Log(xs[i])})
		rhs = append(rhs, math.Log(ys[i]))
	}
	if len(rows) < 3 {
		return nil, ErrBadDomain
	}
	// Normal equations AᵀA p = Aᵀy for p = (ln a, ln b, c).
	var ata [3][3]float64
	var aty [3]float64
	for r := range rows {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				ata[i][j] += rows[r][i] * rows[r][j]
			}
			aty[i] += rows[r][i] * rhs[r]
		}
	}
	p, err := solve3(ata, aty)
	if err != nil {
		return nil, err
	}
	return Hoerl{A: math.Exp(p[0]), B: math.Exp(p[1]), C: p[2]}, nil
}

// solve3 solves a 3×3 system by Gaussian elimination with partial
// pivoting.
func solve3(m [3][3]float64, b [3]float64) ([3]float64, error) {
	var a [3][4]float64
	for i := 0; i < 3; i++ {
		copy(a[i][:3], m[i][:])
		a[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return [3]float64{}, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var x [3]float64
	for i := 0; i < 3; i++ {
		x[i] = a[i][3] / a[i][i]
	}
	return x, nil
}

// ---------------------------------------------------------------------------
// MMF curve via Levenberg-Marquardt.

// MMF is the Morgan-Mercer-Flodin growth curve
// y = (a·b + c·x^d)/(b + x^d): y→a as x→0 and y→c as x→∞, which is why it
// suits saturating memory growth (Fig 17).
type MMF struct{ A, B, C, D float64 }

// Name implements Curve.
func (m MMF) Name() string { return "mmf" }

// Eval implements Curve.
func (m MMF) Eval(x float64) float64 {
	if x < 0 {
		return math.NaN()
	}
	xd := math.Pow(x, m.D)
	return (m.A*m.B + m.C*xd) / (m.B + xd)
}

// Params implements Curve.
func (m MMF) Params() []float64 { return []float64{m.A, m.B, m.C, m.D} }

// MMFFitter fits by damped Gauss-Newton (Levenberg-Marquardt) with a
// numeric Jacobian, starting from data-driven initial guesses.
type MMFFitter struct {
	// MaxIter bounds LM iterations (default 200).
	MaxIter int
}

// Name implements Fitter.
func (MMFFitter) Name() string { return "mmf" }

// Fit implements Fitter.
func (f MMFFitter) Fit(xs, ys []float64) (Curve, error) {
	if len(xs) < 4 || len(xs) != len(ys) {
		return nil, ErrTooFewPoints
	}
	for _, x := range xs {
		if x < 0 {
			return nil, ErrBadDomain
		}
	}
	maxIter := f.MaxIter
	if maxIter == 0 {
		maxIter = 200
	}
	// Initial guesses: a ≈ y at smallest x, c ≈ y at largest x, d = 1,
	// b ≈ median x (the half-saturation point for d=1).
	minI, maxI := 0, 0
	for i := range xs {
		if xs[i] < xs[minI] {
			minI = i
		}
		if xs[i] > xs[maxI] {
			maxI = i
		}
	}
	p := [4]float64{ys[minI], math.Max(xs[maxI]/2, 1), ys[maxI], 1}

	resid := func(p [4]float64) []float64 {
		c := MMF{p[0], p[1], p[2], p[3]}
		r := make([]float64, len(xs))
		for i := range xs {
			r[i] = c.Eval(xs[i]) - ys[i]
		}
		return r
	}
	sumsq := func(r []float64) float64 {
		var s float64
		for _, v := range r {
			s += v * v
		}
		return s
	}

	lambda := 1e-3
	cur := resid(p)
	curSS := sumsq(cur)
	for iter := 0; iter < maxIter; iter++ {
		// Numeric Jacobian.
		var jt [4][]float64
		for k := 0; k < 4; k++ {
			dp := p
			h := 1e-6 * math.Max(math.Abs(p[k]), 1e-3)
			dp[k] += h
			rp := resid(dp)
			col := make([]float64, len(cur))
			for i := range cur {
				col[i] = (rp[i] - cur[i]) / h
			}
			jt[k] = col
		}
		// Normal equations (JᵀJ + λ·diag) δ = -Jᵀr.
		var jtj [4][4]float64
		var jtr [4]float64
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				var s float64
				for r := range cur {
					s += jt[i][r] * jt[j][r]
				}
				jtj[i][j] = s
			}
			var s float64
			for r := range cur {
				s += jt[i][r] * cur[r]
			}
			jtr[i] = -s
		}
		for i := 0; i < 4; i++ {
			jtj[i][i] *= 1 + lambda
			if jtj[i][i] == 0 {
				jtj[i][i] = lambda
			}
		}
		delta, err := solve4(jtj, jtr)
		if err != nil {
			lambda *= 10
			if lambda > 1e12 {
				break
			}
			continue
		}
		next := p
		for k := 0; k < 4; k++ {
			next[k] += delta[k]
		}
		if next[1] <= 0 { // b must stay positive
			next[1] = p[1] / 2
		}
		nr := resid(next)
		nss := sumsq(nr)
		if math.IsNaN(nss) || nss >= curSS {
			lambda *= 10
			if lambda > 1e12 {
				break
			}
			continue
		}
		improvement := (curSS - nss) / math.Max(curSS, 1e-300)
		p, cur, curSS = next, nr, nss
		lambda = math.Max(lambda/10, 1e-12)
		if improvement < 1e-12 {
			break
		}
	}
	if math.IsNaN(curSS) || math.IsInf(curSS, 0) {
		return nil, ErrNoConverge
	}
	return MMF{p[0], p[1], p[2], p[3]}, nil
}

// solve4 solves a 4×4 system by Gaussian elimination with partial
// pivoting.
func solve4(m [4][4]float64, b [4]float64) ([4]float64, error) {
	var a [4][5]float64
	for i := 0; i < 4; i++ {
		copy(a[i][:4], m[i][:])
		a[i][4] = b[i]
	}
	for col := 0; col < 4; col++ {
		piv := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return [4]float64{}, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 5; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var x [4]float64
	for i := 0; i < 4; i++ {
		x[i] = a[i][4] / a[i][i]
	}
	return x, nil
}

// ---------------------------------------------------------------------------
// The paper's model-selection protocol.

// Candidate pairs a fitted curve (trained on the first half of the data)
// with its RMSE over all points.
type Candidate struct {
	Curve Curve
	RMSE  float64
	Err   error // non-nil if the family failed to fit
}

// TrainHalf fits each family on the first half of the points and scores
// RMSE over all points (§4.3.2's selection protocol). Results are keyed
// by family name.
func TrainHalf(fitters []Fitter, xs, ys []float64) map[string]Candidate {
	half := len(xs) / 2
	if half < 2 {
		half = len(xs)
	}
	out := make(map[string]Candidate, len(fitters))
	for _, f := range fitters {
		c, err := f.Fit(xs[:half], ys[:half])
		if err != nil {
			out[f.Name()] = Candidate{Err: err}
			continue
		}
		out[f.Name()] = Candidate{Curve: c, RMSE: RMSE(c, xs, ys)}
	}
	return out
}

// SelectBest returns the candidate with the lowest RMSE, as the paper
// does before refitting the winner on all points.
func SelectBest(cands map[string]Candidate) (string, Candidate, error) {
	bestName := ""
	var best Candidate
	for name, c := range cands {
		if c.Err != nil {
			continue
		}
		if bestName == "" || c.RMSE < best.RMSE {
			bestName, best = name, c
		}
	}
	if bestName == "" {
		return "", Candidate{}, fmt.Errorf("fit: no family converged")
	}
	return bestName, best, nil
}

// DefaultFitters is the paper's candidate set.
func DefaultFitters() []Fitter {
	return []Fitter{LinearFitter{}, MMFFitter{}, HoerlFitter{}}
}
