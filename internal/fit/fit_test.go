package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func linspace(a, b float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = a + (b-a)*float64(i)/float64(n-1)
	}
	return xs
}

func apply(c Curve, xs []float64) []float64 {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = c.Eval(x)
	}
	return ys
}

func TestLinearExactRecovery(t *testing.T) {
	truth := Linear{A: 3.5, B: -0.75}
	xs := linspace(0, 100, 40)
	ys := apply(truth, xs)
	c, err := (LinearFitter{}).Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r := RMSE(c, xs, ys); r > 1e-9 {
		t.Fatalf("linear RMSE %g on exact data", r)
	}
	p := c.Params()
	if math.Abs(p[0]-3.5) > 1e-9 || math.Abs(p[1]+0.75) > 1e-9 {
		t.Fatalf("params %v", p)
	}
}

func TestHoerlExactRecovery(t *testing.T) {
	truth := Hoerl{A: 2, B: 1.01, C: 0.5}
	xs := linspace(1, 50, 30)
	ys := apply(truth, xs)
	c, err := (HoerlFitter{}).Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r := RMSE(c, xs, ys); r > 1e-6 {
		t.Fatalf("hoerl RMSE %g on exact data", r)
	}
}

func TestMMFExactRecovery(t *testing.T) {
	truth := MMF{A: 1, B: 120, C: 90, D: 1.3}
	xs := linspace(1, 600, 60)
	ys := apply(truth, xs)
	c, err := (MMFFitter{}).Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r := RMSE(c, xs, ys); r > 0.05 {
		t.Fatalf("mmf RMSE %g on exact data", r)
	}
}

func TestLinearQuick(t *testing.T) {
	// Property: linear fitting recovers any non-degenerate line exactly.
	f := func(a, b float64) bool {
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		truth := Linear{A: a, B: b}
		xs := linspace(0, 10, 12)
		c, err := (LinearFitter{}).Fit(xs, apply(truth, xs))
		return err == nil && RMSE(c, xs, apply(truth, xs)) < 1e-6*(1+math.Abs(a)+math.Abs(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFitWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := Linear{A: 1, B: 0.03} // disk growth: ~30 MB per cache
	xs := linspace(1, 600, 120)
	ys := make([]float64, len(xs))
	for i := range xs {
		ys[i] = truth.Eval(xs[i]) + rng.NormFloat64()*0.05
	}
	c, err := (LinearFitter{}).Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r := RMSE(c, xs, ys); r > 0.1 {
		t.Fatalf("noisy linear RMSE %g", r)
	}
}

func TestDegenerateInputs(t *testing.T) {
	if _, err := (LinearFitter{}).Fit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point must fail")
	}
	if _, err := (LinearFitter{}).Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x must fail (singular)")
	}
	if _, err := (HoerlFitter{}).Fit([]float64{-1, -2, -3}, []float64{1, 2, 3}); err == nil {
		t.Error("negative domain must fail for hoerl")
	}
	if _, err := (MMFFitter{}).Fit([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too few points must fail for mmf")
	}
}

func TestTrainHalfProtocol(t *testing.T) {
	// Saturating data: MMF must win over linear and Hoerl, as it does for
	// memory consumption in Table 4.
	truth := MMF{A: 5, B: 200, C: 85, D: 1.1}
	xs := linspace(1, 600, 100)
	ys := apply(truth, xs)
	cands := TrainHalf(DefaultFitters(), xs, ys)
	name, best, err := SelectBest(cands)
	if err != nil {
		t.Fatal(err)
	}
	if name != "mmf" {
		t.Fatalf("winner %s (RMSE %g), want mmf; candidates: lin=%g hoerl=%g mmf=%g",
			name, best.RMSE, cands["linear"].RMSE, cands["hoerl"].RMSE, cands["mmf"].RMSE)
	}
	// Linear data: linear must win, as it does for disk in Table 3.
	lt := Linear{A: 0.5, B: 0.03}
	lys := apply(lt, xs)
	name, _, err = SelectBest(TrainHalf(DefaultFitters(), xs, lys))
	if err != nil {
		t.Fatal(err)
	}
	if name != "linear" {
		t.Fatalf("winner %s, want linear", name)
	}
}

func TestSelectBestAllFailed(t *testing.T) {
	cands := map[string]Candidate{"x": {Err: ErrTooFewPoints}}
	if _, _, err := SelectBest(cands); err == nil {
		t.Fatal("all-failed selection must error")
	}
}

func TestMMFSaturation(t *testing.T) {
	m := MMF{A: 2, B: 100, C: 80, D: 1.2}
	if y := m.Eval(0); math.Abs(y-2) > 1e-9 {
		t.Fatalf("MMF(0) = %g, want a = 2", y)
	}
	if y := m.Eval(1e9); math.Abs(y-80) > 0.1 {
		t.Fatalf("MMF(∞) = %g, want c = 80", y)
	}
}

func TestExtrapolationSanity(t *testing.T) {
	// Linear fit on the full data then evaluated beyond the training
	// range must keep growing linearly (Fig 15's protocol).
	xs := linspace(1, 600, 50)
	truth := Linear{A: 1, B: 0.028}
	c, _ := (LinearFitter{}).Fit(xs, apply(truth, xs))
	at3000 := c.Eval(3000)
	want := truth.Eval(3000)
	if math.Abs(at3000-want) > 1e-6 {
		t.Fatalf("extrapolation %g want %g", at3000, want)
	}
}
