package wireproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TRegister, ReqID: 1, Payload: []byte(`{"image":"im0"}`)},
		{Type: TBoot, Flags: FlagResponse, ReqID: 1 << 40, Payload: nil},
		{Type: TTelemetry, Flags: FlagResponse | FlagError, ReqID: 7,
			Payload: EncodeError(CodeUnknownImage, "core: unknown image: x")},
		{Type: 255, ReqID: ^uint64(0), Payload: bytes.Repeat([]byte{0xAA}, 64<<10)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: read: %v", i, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || got.ReqID != want.ReqID ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after decoding all frames", buf.Len())
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	var hdr [headerLen]byte
	hdr[0] = TBoot
	binary.LittleEndian.PutUint32(hdr[10:14], MaxPayload+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized length: got %v, want ErrTooLarge", err)
	}
}

func TestReadFrameRejectsTruncation(t *testing.T) {
	full := AppendFrame(nil, Frame{Type: TSync, ReqID: 9, Payload: []byte("abcdef")})
	for n := 0; n < len(full); n++ {
		if _, err := ReadFrame(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncated at %d/%d bytes: decode succeeded", n, len(full))
		}
	}
}

func TestReadFrameRejectsCorruption(t *testing.T) {
	full := AppendFrame(nil, Frame{Type: TSync, ReqID: 9, Payload: []byte("abcdef")})
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		f, err := ReadFrame(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		// The only undetectable flips would be CRC collisions; a single
		// bit flip never collides with CRC32C, so any success here must
		// be a bug — unless the flip landed in the length field and the
		// reader consumed a differently-framed but CRC-valid message,
		// which a single flip also cannot produce.
		t.Fatalf("flip at byte %d: decode succeeded with %+v", i, f)
	}
}

func TestReadFrameRejectsTypeZero(t *testing.T) {
	// A CRC-valid frame whose type byte is zero must still be rejected.
	full := AppendFrame(nil, Frame{ReqID: 1, Payload: []byte("x")})
	if _, err := ReadFrame(bytes.NewReader(full)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("type 0: got %v, want ErrBadFrame", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	v, err := ReadHello(&buf)
	if err != nil || v != Version {
		t.Fatalf("hello: version %d err %v", v, err)
	}

	buf.Reset()
	if err := WriteHelloReply(&buf, HelloVersionMismatch, "server v1, client v9"); err != nil {
		t.Fatal(err)
	}
	ver, status, msg, err := ReadHelloReply(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ver != Version || status != HelloVersionMismatch || !strings.Contains(msg, "client v9") {
		t.Fatalf("reply: ver=%d status=%d msg=%q", ver, status, msg)
	}
}

func TestHelloRejectsBadMagic(t *testing.T) {
	if _, err := ReadHello(strings.NewReader("NOPE\x01\x00\x00\x00")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	if _, _, _, err := ReadHelloReply(strings.NewReader("NOPE\x01\x00\x00\x00\x00\x00\x00")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad reply magic: got %v", err)
	}
}

func TestHelloReplyRejectsOversizedMessage(t *testing.T) {
	buf := make([]byte, 0, 16)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = append(buf, HelloOK)
	buf = binary.LittleEndian.AppendUint32(buf, maxHelloMsg+1)
	if _, _, _, err := ReadHelloReply(bytes.NewReader(buf)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized hello msg: got %v", err)
	}
}

func TestErrorBodyRoundTrip(t *testing.T) {
	for _, code := range []uint16{CodeGeneric, CodeUnknownImage, CodeOverloaded, CodeDraining} {
		body := EncodeError(code, "some failure: detail")
		got, msg, err := DecodeError(body)
		if err != nil {
			t.Fatal(err)
		}
		if got != code || msg != "some failure: detail" {
			t.Fatalf("code %d: got %d %q", code, got, msg)
		}
	}
	// Malformed bodies: short, truncated message, trailing junk.
	for _, p := range [][]byte{nil, {1, 0}, EncodeError(1, "abc")[:7], append(EncodeError(1, "abc"), 'x')} {
		if _, _, err := DecodeError(p); err == nil {
			t.Fatalf("malformed body %v: decode succeeded", p)
		}
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	err := WriteFrame(io.Discard, Frame{Type: TInfo, Payload: make([]byte, MaxPayload+1)})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized write: got %v", err)
	}
}
