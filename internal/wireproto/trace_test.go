package wireproto

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestTraceExtensionRoundTrip pins the version-2 frame layout: FlagTrace
// inserts exactly 16 extension bytes between header and payload, both
// IDs survive the round trip, and frames without the flag stay at the
// version-1 length.
func TestTraceExtensionRoundTrip(t *testing.T) {
	in := Frame{Type: TBoot, Flags: FlagTrace, ReqID: 99, TraceID: 1 << 40, SpanID: 7, Payload: []byte("hello")}
	enc := AppendFrame(nil, in)
	plain := AppendFrame(nil, Frame{Type: TBoot, ReqID: 99, Payload: []byte("hello")})
	if len(enc) != len(plain)+traceLen {
		t.Fatalf("trace extension adds %d bytes, want %d", len(enc)-len(plain), traceLen)
	}
	out, err := ReadFrame(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != in.TraceID || out.SpanID != in.SpanID || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
	if !out.IsStream() && out.Flags&FlagTrace == 0 {
		t.Fatal("FlagTrace lost in round trip")
	}
	// Without the flag the IDs stay off the wire entirely.
	dropped, err := ReadFrame(bytes.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if dropped.TraceID != 0 || dropped.SpanID != 0 {
		t.Fatalf("untraced frame decoded trace context: %+v", dropped)
	}
}

// TestTraceExtensionCoveredByCRC flips one extension byte and expects a
// checksum failure — the trace context is inside the integrity envelope.
func TestTraceExtensionCoveredByCRC(t *testing.T) {
	enc := AppendFrame(nil, Frame{Type: TBoot, Flags: FlagTrace, ReqID: 1, TraceID: 5, SpanID: 6})
	enc[headerLen+2] ^= 0xFF
	if _, err := ReadFrame(bytes.NewReader(enc)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted trace extension: got %v, want ErrChecksum", err)
	}
}

// TestNegotiate pins the server-side version window.
func TestNegotiate(t *testing.T) {
	cases := []struct {
		client uint16
		agreed uint16
		ok     bool
	}{
		{MinVersion, MinVersion, true},
		{Version, Version, true},
		{MinVersion - 1, 0, false},
		{Version + 1, 0, false},
		{Version + 40, 0, false},
	}
	for _, c := range cases {
		agreed, ok := Negotiate(c.client)
		if agreed != c.agreed || ok != c.ok {
			t.Fatalf("Negotiate(%d) = (%d,%v), want (%d,%v)", c.client, agreed, ok, c.agreed, c.ok)
		}
	}
}

// TestHelloVersionNegotiationWire walks both handshake directions with
// explicit versions: the client's offer survives the wire, and the
// server's reply names the agreed version.
func TestHelloVersionNegotiationWire(t *testing.T) {
	var hello bytes.Buffer
	if err := WriteHelloVersion(&hello, MinVersion); err != nil {
		t.Fatal(err)
	}
	ver, err := ReadHello(&hello)
	if err != nil || ver != MinVersion {
		t.Fatalf("ReadHello = (%d,%v), want (%d,nil)", ver, err, MinVersion)
	}
	agreed, ok := Negotiate(ver)
	if !ok {
		t.Fatalf("Negotiate(%d) rejected", ver)
	}
	var reply bytes.Buffer
	if err := WriteHelloReplyVersion(&reply, agreed, HelloOK, ""); err != nil {
		t.Fatal(err)
	}
	rver, status, _, err := ReadHelloReply(&reply)
	if err != nil || status != HelloOK || rver != MinVersion {
		t.Fatalf("reply = (v%d,%d,%v), want (v%d,HelloOK,nil)", rver, status, err, MinVersion)
	}
}

// TestTypeName spot-checks the annotation names and the unknown-type
// fallback.
func TestTypeName(t *testing.T) {
	if got := TypeName(TBoot); got != "boot" {
		t.Fatalf("TypeName(TBoot) = %q", got)
	}
	if got := TypeName(TWatch); got != "watch" {
		t.Fatalf("TypeName(TWatch) = %q", got)
	}
	if got := TypeName(200); !strings.HasPrefix(got, "type") {
		t.Fatalf("TypeName(200) = %q", got)
	}
}
