package wireproto

import (
	"bytes"
	"testing"
)

// FuzzReadFrame throws arbitrary bytes at the frame decoder. The
// invariants under fuzz: never panic, never allocate beyond MaxPayload
// (enforced structurally — the length check precedes the allocation),
// and every successful decode must re-encode to the exact bytes
// consumed (canonical encoding, no aliasing surprises).
//
// Run with `go test -fuzz FuzzReadFrame ./internal/wireproto/`; the
// seed corpus below plus testdata/fuzz is exercised on every plain
// `go test`.
func FuzzReadFrame(f *testing.F) {
	// Well-formed frames.
	f.Add(AppendFrame(nil, Frame{Type: TInfo, ReqID: 1}))
	f.Add(AppendFrame(nil, Frame{Type: TRegister, ReqID: 42, Payload: []byte(`{"image":"im0","at":"2014-06-23T09:00:00Z"}`)}))
	f.Add(AppendFrame(nil, Frame{Type: TBoot, Flags: FlagResponse | FlagError, ReqID: 3,
		Payload: EncodeError(CodeNodeOffline, "core: compute node offline: node03")}))
	// Truncations and mutations.
	whole := AppendFrame(nil, Frame{Type: TTelemetry, ReqID: 9, Payload: bytes.Repeat([]byte("sq"), 512)})
	f.Add(whole[:5])
	f.Add(whole[:len(whole)-1])
	bad := append([]byte(nil), whole...)
	bad[len(bad)-2] ^= 0xFF
	f.Add(bad)
	// Hostile length prefix: claims a 4 GB-ish payload.
	f.Add([]byte{TStats, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})
	// Version-2 features: trace-context extension and stream frames.
	f.Add(AppendFrame(nil, Frame{Type: TBoot, Flags: FlagTrace, ReqID: 7,
		TraceID: 0xDEADBEEF, SpanID: 0xFEEDFACE, Payload: []byte(`{"image":"im0","node":"node00"}`)}))
	f.Add(AppendFrame(nil, Frame{Type: TWatch, Flags: FlagResponse | FlagStream, ReqID: 8,
		Payload: []byte(`{"seq":1}`)}))
	traced := AppendFrame(nil, Frame{Type: TTraceTree, Flags: FlagTrace, ReqID: 11, TraceID: 1, SpanID: 2})
	f.Add(traced[:headerLen+3]) // truncated mid-extension
	tbad := append([]byte(nil), traced...)
	tbad[headerLen+1] ^= 0x10 // corrupt the extension under the CRC
	f.Add(tbad)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		fr, err := ReadFrame(r)
		if err != nil {
			return
		}
		if len(fr.Payload) > MaxPayload {
			t.Fatalf("decoded payload %d exceeds MaxPayload", len(fr.Payload))
		}
		consumed := len(data) - r.Len()
		re := AppendFrame(nil, fr)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode mismatch: %x != %x", re, data[:consumed])
		}
	})
}

// FuzzReadHelloReply covers the other client-facing decoder: the
// handshake reply, which is parsed before the connection is trusted.
func FuzzReadHelloReply(f *testing.F) {
	var ok bytes.Buffer
	_ = WriteHelloReply(&ok, HelloOK, "")
	f.Add(ok.Bytes())
	var mism bytes.Buffer
	_ = WriteHelloReply(&mism, HelloVersionMismatch, "protocol version mismatch: server v1, client v2")
	f.Add(mism.Bytes())
	f.Add([]byte("SQCP"))
	f.Add([]byte("NOPE\x01\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, msg, err := ReadHelloReply(bytes.NewReader(data))
		if err == nil && len(msg) > maxHelloMsg {
			t.Fatalf("hello message %d exceeds bound", len(msg))
		}
	})
}

// FuzzDecodeError covers the error-body parser clients run on every
// failed call.
func FuzzDecodeError(f *testing.F) {
	f.Add(EncodeError(CodeUnknownImage, "core: unknown image: im99"))
	f.Add(EncodeError(CodeGeneric, ""))
	f.Add([]byte{2, 0, 255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		code, msg, err := DecodeError(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeError(code, msg), data) {
			t.Fatalf("re-encode mismatch for %x", data)
		}
	})
}
