// Package wireproto frames Squirrel's control plane for the wire.
//
// squirreld and its clients speak a versioned, length-prefixed binary
// protocol over TCP, reusing the encode/decode discipline of the
// snapshot stream codec in internal/zvol/wire.go: a magic-tagged
// handshake, fixed little-endian headers, hard bounds on every decoded
// length, and a CRC32 (Castagnoli) trailer so a corrupt frame is an
// error, never a panic or an unbounded allocation.
//
// Connection life cycle:
//
//	client → server  hello:  magic "SQCP" | u16 proto version | u16 reserved
//	server → client  reply:  magic "SQCP" | u16 proto version | u8 status |
//	                         u32 msgLen | msg
//	then both sides exchange frames until either closes the connection.
//
// The hello is version-negotiated: a server accepts any client version
// in [MinVersion, Version] and echoes the agreed (client's) version in
// its reply, so an old client keeps working against a new daemon. A
// client offering a NEWER version than the server is rejected with
// HelloVersionMismatch naming the server's version; the client may then
// redial offering that version (wireclient does). Version-gated frame
// features (the trace extension, stream frames) are only used on
// connections that negotiated a version that has them.
//
// Frame layout (everything little-endian):
//
//	u8 type | u8 flags | u64 reqID | u32 payloadLen |
//	[u64 traceID | u64 spanID — iff FlagTrace, version ≥ 2] |
//	payload [payloadLen] | u32 crc32c over header+extension+payload
//
// Request IDs are assigned by the client and echoed by the server, so
// responses may arrive out of order and clients can pipeline requests
// on one connection. FlagResponse marks a server frame; FlagError marks
// a response whose payload is an encoded error body (EncodeError) in
// place of the result, carrying a numeric code from the sentinel family
// so errors.Is identity — and squirrelctl's exit codes 2–5 — survive
// the wire.
//
// FlagTrace (version ≥ 2) marks a request carrying a 16-byte trace
// context between the header and the payload: the caller's trace ID and
// the caller-side span the request was issued under. The daemon stamps
// both on its dispatch span, which is how one operation renders as a
// single tree across the socket. FlagStream (version ≥ 2) marks a
// response frame that is one element of a streaming reply (the watch
// op): stream frames share the request's ID, and the stream ends with a
// final response frame without FlagStream.
//
// This package is framing only: payload semantics (which Go structs
// ride inside which frame type) belong to internal/ctlplane, and it
// deliberately imports nothing beyond the standard library so the fuzz
// harness exercises exactly the code an untrusted peer can reach.
package wireproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic tags both directions of the handshake; it never changes across
// protocol versions so a mismatched peer still gets a readable reply.
const Magic = "SQCP"

// Version is the newest protocol version this build speaks; MinVersion
// is the oldest it still accepts. Version 2 added the per-frame trace
// extension (FlagTrace), streaming responses (FlagStream), and the
// watch/trace-tree ops; version-1 peers negotiate down to the version-1
// feature set and keep working.
const (
	Version    uint16 = 2
	MinVersion uint16 = 1
)

// Size bounds. A control-plane payload is a few KB of JSON (telemetry
// snapshots are the largest); MaxPayload leaves generous headroom while
// keeping the worst-case allocation a hostile length prefix can force
// well under the snapshot-stream codec's own 64 MB block bound.
const (
	// MaxPayload bounds one frame's payload.
	MaxPayload = 8 << 20
	// MaxErrorMsg bounds the message inside an error body.
	MaxErrorMsg = 64 << 10
	// maxHelloMsg bounds the handshake reply's message.
	maxHelloMsg = 4 << 10

	headerLen = 1 + 1 + 8 + 4 // type | flags | reqID | payloadLen
	traceLen  = 8 + 8         // traceID | spanID (present iff FlagTrace)
	helloLen  = 4 + 2 + 2     // magic | version | reserved
)

// Frame types. One type serves both directions: the request and its
// response share the type byte and differ in FlagResponse.
const (
	TInfo uint8 = iota + 1
	TRegister
	TBoot
	TSync
	THealth
	TTelemetry
	TPeers
	TStats
	TSetOnline
	TDropReplica
	TCrash
	TRestart
	TRot
	TSetFaults
	TScrubAll
	TResilverAll
	TGC
	TTrace
	TNetReset
	TNetRx
	TWatch     // version ≥ 2: streaming telemetry watch
	TTraceTree // version ≥ 2: fetch dispatch trees for a client trace ID
	TWorkload  // version ≥ 2: drive a workload scenario on the daemon
)

// typeNames backs TypeName; indexed by frame type.
var typeNames = [...]string{
	TInfo:        "info",
	TRegister:    "register",
	TBoot:        "boot",
	TSync:        "sync",
	THealth:      "health",
	TTelemetry:   "telemetry",
	TPeers:       "peers",
	TStats:       "stats",
	TSetOnline:   "setOnline",
	TDropReplica: "dropReplica",
	TCrash:       "crash",
	TRestart:     "restart",
	TRot:         "rot",
	TSetFaults:   "setFaults",
	TScrubAll:    "scrubAll",
	TResilverAll: "resilverAll",
	TGC:          "gc",
	TTrace:       "trace",
	TNetReset:    "netReset",
	TNetRx:       "netRx",
	TWatch:       "watch",
	TTraceTree:   "traceTree",
	TWorkload:    "workload",
}

// TypeName returns a short name for a frame type ("boot", "watch", …)
// for span annotations and log lines; unknown types render numerically.
func TypeName(t uint8) string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("type%d", t)
}

// Frame flags.
const (
	// FlagResponse marks a frame traveling server → client.
	FlagResponse uint8 = 1 << 0
	// FlagError marks a response whose payload is an error body.
	FlagError uint8 = 1 << 1
	// FlagTrace (version ≥ 2) marks a frame carrying the 16-byte trace
	// extension (TraceID, SpanID) between header and payload.
	FlagTrace uint8 = 1 << 2
	// FlagStream (version ≥ 2) marks a response frame that is one
	// element of a streaming reply; the stream's final frame clears it.
	FlagStream uint8 = 1 << 3
)

// Handshake reply statuses.
const (
	// HelloOK accepts the connection; frames may flow.
	HelloOK uint8 = iota
	// HelloVersionMismatch rejects a client speaking another protocol
	// version; the reply message names both versions.
	HelloVersionMismatch
	// HelloBusy rejects a connection over the daemon's limit (or one
	// arriving while it drains for shutdown). Transient: retry later.
	HelloBusy
)

// Error codes carried by error bodies. Codes 2–5 are chosen to equal
// squirrelctl's exit codes for the matching core sentinels, so a script
// driving a remote daemon sees exactly the exit codes it would see
// in-process.
const (
	CodeOK           uint16 = 0
	CodeGeneric      uint16 = 1
	CodeUnknownImage uint16 = 2
	CodeUnknownNode  uint16 = 3
	CodeNodeOffline  uint16 = 4
	CodeOverloaded   uint16 = 5
	CodeRegistered   uint16 = 6
	CodeUnreachable  uint16 = 7
	CodeCanceled     uint16 = 8
	CodeDeadline     uint16 = 9
	CodeDraining     uint16 = 10
	CodeBadRequest   uint16 = 11
)

// Decode failure sentinels. Wrapped (with detail) by ReadFrame and the
// handshake readers, so transports can tell a framing violation (close
// the connection — the stream is out of sync) from plain io errors.
var (
	// ErrBadMagic is returned when a handshake does not start with Magic.
	ErrBadMagic = errors.New("wireproto: bad magic")
	// ErrTooLarge is returned when a length prefix exceeds its bound.
	ErrTooLarge = errors.New("wireproto: length exceeds bound")
	// ErrChecksum is returned when a frame's CRC trailer does not match.
	ErrChecksum = errors.New("wireproto: frame checksum mismatch")
	// ErrBadFrame is returned for structurally invalid frames or bodies.
	ErrBadFrame = errors.New("wireproto: malformed frame")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame is one protocol message in either direction. TraceID and
// SpanID ride the wire only when Flags has FlagTrace set; encoders
// ignore them otherwise, and decoders leave them zero.
type Frame struct {
	Type    uint8
	Flags   uint8
	ReqID   uint64
	TraceID uint64
	SpanID  uint64
	Payload []byte
}

// IsError reports whether the frame carries an error body.
func (f Frame) IsError() bool { return f.Flags&FlagError != 0 }

// IsStream reports whether the frame is an element of a streaming reply
// (more frames with the same request ID follow).
func (f Frame) IsStream() bool { return f.Flags&FlagStream != 0 }

// AppendFrame appends f's wire encoding to dst and returns the extended
// slice. WriteFrame is the io.Writer form.
func AppendFrame(dst []byte, f Frame) []byte {
	start := len(dst)
	dst = append(dst, f.Type, f.Flags)
	dst = binary.LittleEndian.AppendUint64(dst, f.ReqID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	if f.Flags&FlagTrace != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, f.TraceID)
		dst = binary.LittleEndian.AppendUint64(dst, f.SpanID)
	}
	dst = append(dst, f.Payload...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// WriteFrame encodes one frame to w. The caller serializes concurrent
// writers; a frame is a single Write so a buffered writer flushes it
// atomically.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d > %d", ErrTooLarge, len(f.Payload), MaxPayload)
	}
	buf := AppendFrame(make([]byte, 0, headerLen+traceLen+len(f.Payload)+4), f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame decodes one frame from r, verifying bounds before any
// allocation and the CRC trailer after. Any violation is an error;
// ReadFrame never panics and never allocates more than MaxPayload.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, fmt.Errorf("wireproto: frame header: %w", err)
	}
	f := Frame{
		Type:  hdr[0],
		Flags: hdr[1],
		ReqID: binary.LittleEndian.Uint64(hdr[2:10]),
	}
	n := binary.LittleEndian.Uint32(hdr[10:14])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("%w: payload %d > %d", ErrTooLarge, n, MaxPayload)
	}
	if f.Type == 0 {
		return Frame{}, fmt.Errorf("%w: frame type 0", ErrBadFrame)
	}
	crc := crc32.Update(0, crcTable, hdr[:])
	if f.Flags&FlagTrace != 0 {
		var ext [traceLen]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return Frame{}, fmt.Errorf("wireproto: trace extension: %w", err)
		}
		f.TraceID = binary.LittleEndian.Uint64(ext[0:8])
		f.SpanID = binary.LittleEndian.Uint64(ext[8:16])
		crc = crc32.Update(crc, crcTable, ext[:])
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("wireproto: frame payload: %w", err)
		}
		crc = crc32.Update(crc, crcTable, f.Payload)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return Frame{}, fmt.Errorf("wireproto: frame trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != crc {
		return Frame{}, fmt.Errorf("%w: %08x != %08x", ErrChecksum, got, crc)
	}
	return f, nil
}

// WriteHello sends the client side of the handshake, offering this
// build's newest version. WriteHelloVersion offers a specific one (the
// downgrade path after a HelloVersionMismatch names an older server).
func WriteHello(w io.Writer) error {
	return WriteHelloVersion(w, Version)
}

// WriteHelloVersion sends a client hello offering the given version.
func WriteHelloVersion(w io.Writer, version uint16) error {
	var buf [helloLen]byte
	copy(buf[:4], Magic)
	binary.LittleEndian.PutUint16(buf[4:6], version)
	_, err := w.Write(buf[:])
	return err
}

// Negotiate applies the server-side version rule to a client hello:
// any version in [MinVersion, Version] is accepted and echoed back as
// the connection's agreed version; anything else reports false.
func Negotiate(clientVersion uint16) (agreed uint16, ok bool) {
	if clientVersion < MinVersion || clientVersion > Version {
		return 0, false
	}
	return clientVersion, true
}

// ReadHello reads a client hello and returns the version the peer
// speaks. A version mismatch is NOT an error here: the server decides,
// so it can reply with a message naming both versions before closing.
func ReadHello(r io.Reader) (version uint16, err error) {
	var buf [helloLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("wireproto: hello: %w", err)
	}
	if string(buf[:4]) != Magic {
		return 0, fmt.Errorf("%w: %q", ErrBadMagic, buf[:4])
	}
	return binary.LittleEndian.Uint16(buf[4:6]), nil
}

// WriteHelloReply sends the server side of the handshake, naming this
// build's newest version. WriteHelloReplyVersion names a specific one
// (the agreed version on acceptance, the server's newest on rejection
// so the client knows what to downgrade to).
func WriteHelloReply(w io.Writer, status uint8, msg string) error {
	return WriteHelloReplyVersion(w, Version, status, msg)
}

// WriteHelloReplyVersion sends a handshake reply naming version.
func WriteHelloReplyVersion(w io.Writer, version uint16, status uint8, msg string) error {
	if len(msg) > maxHelloMsg {
		msg = msg[:maxHelloMsg]
	}
	buf := make([]byte, 0, 4+2+1+4+len(msg))
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = append(buf, status)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(msg)))
	buf = append(buf, msg...)
	_, err := w.Write(buf)
	return err
}

// ReadHelloReply reads the server's handshake reply: the version the
// server speaks, an acceptance status, and a human-readable message
// (empty on HelloOK).
func ReadHelloReply(r io.Reader) (version uint16, status uint8, msg string, err error) {
	var buf [4 + 2 + 1 + 4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, "", fmt.Errorf("wireproto: hello reply: %w", err)
	}
	if string(buf[:4]) != Magic {
		return 0, 0, "", fmt.Errorf("%w: %q", ErrBadMagic, buf[:4])
	}
	version = binary.LittleEndian.Uint16(buf[4:6])
	status = buf[6]
	n := binary.LittleEndian.Uint32(buf[7:11])
	if n > maxHelloMsg {
		return 0, 0, "", fmt.Errorf("%w: hello message %d > %d", ErrTooLarge, n, maxHelloMsg)
	}
	if n > 0 {
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return 0, 0, "", fmt.Errorf("wireproto: hello message: %w", err)
		}
		msg = string(b)
	}
	return version, status, msg, nil
}

// EncodeError builds an error body: u16 code | u32 msgLen | msg.
func EncodeError(code uint16, msg string) []byte {
	if len(msg) > MaxErrorMsg {
		msg = msg[:MaxErrorMsg]
	}
	buf := make([]byte, 0, 2+4+len(msg))
	buf = binary.LittleEndian.AppendUint16(buf, code)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(msg)))
	return append(buf, msg...)
}

// DecodeError parses an error body.
func DecodeError(p []byte) (code uint16, msg string, err error) {
	if len(p) < 6 {
		return 0, "", fmt.Errorf("%w: error body %d bytes", ErrBadFrame, len(p))
	}
	code = binary.LittleEndian.Uint16(p[:2])
	n := binary.LittleEndian.Uint32(p[2:6])
	if n > MaxErrorMsg {
		return 0, "", fmt.Errorf("%w: error message %d > %d", ErrTooLarge, n, MaxErrorMsg)
	}
	if uint64(len(p)) != 6+uint64(n) {
		return 0, "", fmt.Errorf("%w: error body %d bytes, want %d", ErrBadFrame, len(p), 6+n)
	}
	return code, string(p[6:]), nil
}
