package store

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocReadFree(t *testing.T) {
	s := New()
	a := s.Alloc([]byte("hello"))
	b := s.Alloc([]byte("world!"))
	if a == b {
		t.Fatal("addresses must be unique")
	}
	got, err := s.Read(a)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read a: %q %v", got, err)
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(a); err == nil {
		t.Fatal("read after free must fail")
	}
	if err := s.Free(a); err == nil {
		t.Fatal("double free must fail")
	}
	got, _ = s.Read(b)
	if string(got) != "world!" {
		t.Fatal("neighbour payload corrupted")
	}
}

func TestAllocCopies(t *testing.T) {
	s := New()
	buf := []byte("mutable")
	a := s.Alloc(buf)
	buf[0] = 'X'
	got, _ := s.Read(a)
	if string(got) != "mutable" {
		t.Fatal("store must copy payloads")
	}
}

func TestReuseFreedExtent(t *testing.T) {
	s := New()
	a := s.Alloc(make([]byte, 100))
	s.Alloc(make([]byte, 50))
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	c := s.Alloc(make([]byte, 80)) // fits in the freed 100-byte extent
	if c != a {
		t.Fatalf("expected reuse of freed extent at %d, got %d", a, c)
	}
	// The remainder of the extent should be reusable too.
	d := s.Alloc(make([]byte, 20))
	if d != a+80 {
		t.Fatalf("expected remainder at %d, got %d", a+80, d)
	}
}

func TestEmptyPayloadAddressesUnique(t *testing.T) {
	s := New()
	a := s.Alloc(nil)
	b := s.Alloc(nil)
	if a == b {
		t.Fatal("empty payloads must still get distinct addresses")
	}
}

func TestSequentialPlacement(t *testing.T) {
	// Fresh stores allocate sequentially: the n-th payload begins where
	// the previous one ended. The boot simulator depends on this.
	s := New()
	var want uint64
	for i := 0; i < 20; i++ {
		p := make([]byte, 10+i)
		addr := s.Alloc(p)
		if addr != want {
			t.Fatalf("alloc %d at %d, want %d", i, addr, want)
		}
		want += uint64(len(p))
	}
}

func TestStats(t *testing.T) {
	s := New()
	s.Alloc(make([]byte, 100))
	a := s.Alloc(make([]byte, 40))
	s.Free(a)
	st := s.Stats()
	if st.Blocks != 1 || st.UsedBytes != 100 {
		t.Fatalf("blocks=%d used=%d", st.Blocks, st.UsedBytes)
	}
	if st.SpanBytes != 140 {
		t.Fatalf("span=%d want 140", st.SpanBytes)
	}
	if st.Allocs != 2 || st.Frees != 1 || st.FreeChunks != 1 {
		t.Fatalf("counters wrong: %+v", st)
	}
}

func TestAllocFreeQuick(t *testing.T) {
	// Property: after arbitrary alloc/free interleavings, every live
	// payload reads back intact and accounting matches a shadow model.
	f := func(ops []uint16) bool {
		s := New()
		live := map[uint64][]byte{}
		var order []uint64
		rng := rand.New(rand.NewSource(1))
		for _, op := range ops {
			if op%3 != 0 || len(order) == 0 {
				p := make([]byte, op%512)
				rng.Read(p)
				addr := s.Alloc(p)
				if _, clash := live[addr]; clash {
					return false
				}
				live[addr] = append([]byte(nil), p...)
				order = append(order, addr)
			} else {
				i := int(op) % len(order)
				addr := order[i]
				order = append(order[:i], order[i+1:]...)
				if s.Free(addr) != nil {
					return false
				}
				delete(live, addr)
			}
		}
		var used int64
		for addr, want := range live {
			got, err := s.Read(addr)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
			used += int64(len(want))
		}
		st := s.Stats()
		return st.Blocks == int64(len(live)) && st.UsedBytes == used
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAlloc(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	addrs := make([][]uint64, 8)
	for g := range addrs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				addrs[g] = append(addrs[g], s.Alloc([]byte{byte(g), byte(i)}))
			}
		}(g)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for g, as := range addrs {
		for i, a := range as {
			if seen[a] {
				t.Fatal("duplicate address across goroutines")
			}
			seen[a] = true
			got, err := s.Read(a)
			if err != nil || got[0] != byte(g) || got[1] != byte(i) {
				t.Fatalf("payload mismatch at %d", a)
			}
		}
	}
}

func BenchmarkAlloc4K(b *testing.B) {
	s := New()
	p := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		s.Alloc(p)
	}
}

// AllocShared aliases the caller's slice across stores; mutating hooks
// must copy-on-write so damage stays local, and addresses must follow
// Alloc's exact placement.
func TestAllocSharedCopyOnWrite(t *testing.T) {
	payload := []byte("shared payload bytes")
	a, b := New(), New()
	aa := a.AllocShared(payload)
	ba := b.AllocShared(payload)
	if aa != ba {
		t.Fatalf("shared placement diverged: %d vs %d", aa, ba)
	}
	plain := New()
	if pa := plain.Alloc(payload); pa != aa {
		t.Fatalf("AllocShared address %d != Alloc address %d", aa, pa)
	}
	if a.Stats().Shared != 1 {
		t.Fatalf("shared count = %d, want 1", a.Stats().Shared)
	}

	if err := a.Corrupt(aa, 3, 0xFF); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Read(aa)
	if bytes.Equal(got, payload) {
		t.Fatal("corrupt did not change a's payload")
	}
	bb, _ := b.Read(ba)
	if !bytes.Equal(bb, payload) {
		t.Fatal("corrupting a's copy leaked into b (no copy-on-write)")
	}
	if a.Stats().Shared != 0 {
		t.Fatal("corrupted payload still marked shared")
	}
	if b.Stats().Shared != 1 {
		t.Fatal("b lost its shared marking")
	}

	// Rewrite heals a in place without touching the (shared) original.
	fixed := make([]byte, len(payload))
	copy(fixed, payload)
	if err := b.Rewrite(ba, fixed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, []byte("shared payload bytes")) {
		t.Fatal("rewrite mutated the shared source slice")
	}
	if b.Stats().Shared != 0 {
		t.Fatal("rewritten payload still marked shared")
	}

	// Free clears the marking and recycles the extent.
	if err := a.Free(aa); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Shared != 0 {
		t.Fatal("freed payload still counted shared")
	}
}
