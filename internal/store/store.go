// Package store models the physical block store underneath a cVolume: a
// flat disk address space in which compressed block payloads are allocated
// sequentially, freed, and reused.
//
// Keeping real byte addresses (instead of opaque IDs) matters for the
// paper's Fig 11: after deduplication, logically adjacent blocks of one
// image end up physically scattered because their single stored copies
// were allocated whenever the *first* writer of each block arrived. The
// boot simulator derives seek behaviour directly from these addresses.
package store

import (
	"fmt"
	"sync"
)

// Store is a thread-safe virtual disk. Payloads are stored by address;
// allocation is append-first with first-fit reuse of freed extents.
type Store struct {
	mu     sync.RWMutex
	blocks map[uint64][]byte
	shared map[uint64]struct{} // addresses whose payload aliases a slice shared across stores
	next   uint64              // bump allocation pointer (bytes)
	free   []extent            // freed extents eligible for reuse, address-ordered

	allocs int64
	frees  int64
}

type extent struct {
	addr uint64
	size int64
}

// New returns an empty store.
func New() *Store {
	return &Store{blocks: make(map[uint64][]byte)}
}

// Alloc stores a copy of payload and returns its disk address. Freed
// extents are reused when the payload fits (first fit); otherwise the
// payload is appended at the end of the used address space, which models
// the mostly-append behaviour of a filling volume.
func (s *Store) Alloc(payload []byte) uint64 {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	return s.place(cp, false)
}

// AllocShared stores payload WITHOUT copying it: the store aliases the
// caller's slice. The caller promises never to mutate it afterwards. This
// is the bulk-provisioning path — when the same prepared stream is
// received by thousands of node volumes, every replica's store points at
// one immutable payload instead of holding its own copy. Addresses are
// assigned by exactly the same placement logic as Alloc, so a volume
// populated via AllocShared is address-identical to one populated via
// Alloc. Mutating hooks (Corrupt, Rewrite) copy-on-write a shared payload
// before touching it, so damage stays local to this store.
func (s *Store) AllocShared(payload []byte) uint64 {
	return s.place(payload, true)
}

func (s *Store) place(payload []byte, shared bool) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.allocs++
	need := int64(len(payload))
	if need == 0 {
		need = 1 // empty payloads still occupy a unique address
	}
	addr, found := uint64(0), false
	for i, e := range s.free {
		if e.size >= need {
			addr, found = e.addr, true
			if e.size == need {
				s.free = append(s.free[:i], s.free[i+1:]...)
			} else {
				s.free[i] = extent{addr: e.addr + uint64(need), size: e.size - need}
			}
			break
		}
	}
	if !found {
		addr = s.next
		s.next += uint64(need)
	}
	s.blocks[addr] = payload
	if shared {
		if s.shared == nil {
			s.shared = make(map[uint64]struct{})
		}
		s.shared[addr] = struct{}{}
	}
	return addr
}

// unshareLocked gives addr a private copy of its payload if it currently
// aliases a shared slice. Callers must hold s.mu and must re-read the
// payload from s.blocks afterwards.
func (s *Store) unshareLocked(addr uint64) {
	if _, ok := s.shared[addr]; !ok {
		return
	}
	b := s.blocks[addr]
	cp := make([]byte, len(b))
	copy(cp, b)
	s.blocks[addr] = cp
	delete(s.shared, addr)
}

// Read returns the payload at addr. The returned slice must not be
// modified by the caller.
func (s *Store) Read(addr uint64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blocks[addr]
	if !ok {
		return nil, fmt.Errorf("store: read of unallocated address %d", addr)
	}
	return b, nil
}

// Corrupt flips one byte of the payload at addr in place — the at-rest
// bit-rot hook. The store itself keeps no checksums (the cVolume's block
// pointers do), so the damage is latent until a scrub walks the volume.
func (s *Store) Corrupt(addr uint64, off int64, xor byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[addr]
	if !ok {
		return fmt.Errorf("store: corrupt of unallocated address %d", addr)
	}
	if off < 0 || off >= int64(len(b)) {
		return fmt.Errorf("store: corrupt offset %d outside payload of %d bytes", off, len(b))
	}
	if xor == 0 {
		return fmt.Errorf("store: zero XOR mask would not corrupt")
	}
	s.unshareLocked(addr)
	s.blocks[addr][off] ^= xor
	return nil
}

// Rewrite replaces the payload at addr with one of identical length — the
// resilver hook that heals a rotted block in place without disturbing the
// volume's physical layout. Length-changing rewrites are refused: repair
// data is re-encoded exactly as the original was, so a size mismatch
// means the repair data is wrong.
func (s *Store) Rewrite(addr uint64, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[addr]
	if !ok {
		return fmt.Errorf("store: rewrite of unallocated address %d", addr)
	}
	if len(b) != len(payload) {
		return fmt.Errorf("store: rewrite length %d != stored %d", len(payload), len(b))
	}
	s.unshareLocked(addr)
	copy(s.blocks[addr], payload)
	return nil
}

// Free releases the payload at addr, making its extent reusable.
func (s *Store) Free(addr uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[addr]
	if !ok {
		return fmt.Errorf("store: free of unallocated address %d", addr)
	}
	delete(s.blocks, addr)
	delete(s.shared, addr)
	size := int64(len(b))
	if size == 0 {
		size = 1
	}
	s.free = append(s.free, extent{addr: addr, size: size})
	s.frees++
	return nil
}

// Stats describes the store's occupancy.
type Stats struct {
	Blocks     int64 // live payload count
	UsedBytes  int64 // Σ live payload sizes
	SpanBytes  int64 // high-water address (allocated span, incl. holes)
	Allocs     int64
	Frees      int64
	FreeChunks int64 // fragmentation indicator
	Shared     int64 // payloads aliased to a slice shared across stores
}

// Stats returns current occupancy numbers. O(blocks).
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Blocks:     int64(len(s.blocks)),
		SpanBytes:  int64(s.next),
		Allocs:     s.allocs,
		Frees:      s.frees,
		FreeChunks: int64(len(s.free)),
		Shared:     int64(len(s.shared)),
	}
	for _, b := range s.blocks {
		st.UsedBytes += int64(len(b))
	}
	return st
}
