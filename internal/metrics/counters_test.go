package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	c := NewCounterSet()
	c.Add("a", 2)
	c.Add("a", 3)
	c.Add("b", 1)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("missing") != 0 {
		t.Fatalf("snapshot %v", c.Snapshot())
	}
	snap := c.Snapshot()
	c.Add("a", 1)
	if snap["a"] != 5 {
		t.Fatal("snapshot must be a copy")
	}
	s := c.String()
	if !strings.Contains(s, "a=6") || !strings.Contains(s, "b=1") {
		t.Fatalf("render %q", s)
	}
}

func TestCounterSetNilSafe(t *testing.T) {
	var c *CounterSet
	c.Add("a", 1)
	if c.Get("a") != 0 || len(c.Snapshot()) != 0 || c.String() != "" {
		t.Fatal("nil CounterSet must act empty")
	}
}

func TestCounterSetConcurrent(t *testing.T) {
	c := NewCounterSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if c.Get("n") != 8000 {
		t.Fatalf("lost updates: %d", c.Get("n"))
	}
}

// TestCounterSetShardedConcurrentMixed hammers many distinct names from
// many goroutines (first-touch creation racing hot-path adds) and checks
// no update is lost anywhere.
func TestCounterSetShardedConcurrentMixed(t *testing.T) {
	c := NewCounterSet()
	const workers, names, per = 8, 64, 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Add(fmt.Sprintf("name-%02d", j%names), 1)
			}
		}()
	}
	wg.Wait()
	snap := c.Snapshot()
	var total int64
	for _, v := range snap {
		total += v
	}
	if total != workers*per {
		t.Fatalf("lost updates: total %d want %d", total, workers*per)
	}
	if len(snap) != names {
		t.Fatalf("names %d want %d", len(snap), names)
	}
}
