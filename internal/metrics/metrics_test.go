package metrics

import (
	"testing"

	"repro/internal/block"
	"repro/internal/compress"
	"repro/internal/corpus"
)

// synthetic sources built from explicit block lists.
func listSource(id string, blocks ...[]byte) Source {
	return Source{
		ID: id,
		Blocks: func(bs block.Size, fn func(int64, []byte, bool) error) error {
			for i, b := range blocks {
				if err := fn(int64(i), b, block.IsZero(b)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func blk(fill byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestAnalyzeCounts(t *testing.T) {
	a := blk(1, 1024)
	b := blk(2, 1024)
	z := blk(0, 1024)
	srcs := []Source{
		listSource("s1", a, b, z),
		listSource("s2", a, a, z),
	}
	res, err := Analyze(srcs, block.Size1K, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBlocks != 6 || res.NonzeroBlocks != 4 {
		t.Fatalf("total=%d nonzero=%d", res.TotalBlocks, res.NonzeroBlocks)
	}
	if res.UniqueBlocks != 2 {
		t.Fatalf("unique=%d", res.UniqueBlocks)
	}
	if got := res.DedupRatio(); got != 2 {
		t.Fatalf("dedup ratio %v want 2", got)
	}
	// a appears in both sources (repetition 2); b in one (0).
	if res.Repetition != 2 {
		t.Fatalf("repetition %d want 2", res.Repetition)
	}
	// |U1| = 2 (a, b), |U2| = 1 (a).
	if res.PerSourceUnique != 3 {
		t.Fatalf("per-source unique %d want 3", res.PerSourceUnique)
	}
	if got := res.CrossSimilarity(); got != 2.0/3.0 {
		t.Fatalf("cross-sim %v want 2/3", got)
	}
}

func TestCrossSimilarityExtremes(t *testing.T) {
	a := blk(1, 512)
	b := blk(2, 512)
	// Identical sources → similarity 1.
	same := []Source{listSource("x", a, b), listSource("y", a, b)}
	res, _ := Analyze(same, block.Size1K, nil)
	if got := res.CrossSimilarity(); got != 1 {
		t.Fatalf("identical sources: %v want 1", got)
	}
	// Disjoint sources → similarity 0.
	c := blk(3, 512)
	d := blk(4, 512)
	disjoint := []Source{listSource("x", a, b), listSource("y", c, d)}
	res, _ = Analyze(disjoint, block.Size1K, nil)
	if got := res.CrossSimilarity(); got != 0 {
		t.Fatalf("disjoint sources: %v want 0", got)
	}
}

func TestCompressionRatio(t *testing.T) {
	comp := blk('x', 4096) // compressible
	srcs := []Source{listSource("s", comp)}
	res, err := Analyze(srcs, block.Size4K, compress.MustGet("gzip6"))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() < 10 {
		t.Fatalf("uniform block should compress >10x, got %v", res.CompressionRatio())
	}
	if res.CCR() != res.DedupRatio()*res.CompressionRatio() {
		t.Fatal("CCR definition violated")
	}
	// Without a codec, ratio is 1.
	res2, _ := Analyze(srcs, block.Size4K, nil)
	if res2.CompressionRatio() != 1 {
		t.Fatal("nil codec should give ratio 1")
	}
}

func TestEmptyAnalysis(t *testing.T) {
	res, err := Analyze(nil, block.Size4K, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DedupRatio() != 1 || res.CrossSimilarity() != 0 {
		t.Fatalf("empty corpus metrics: %+v", res)
	}
}

func TestCorpusTrends(t *testing.T) {
	// The load-bearing test of the whole substitution: the synthetic
	// corpus must reproduce the paper's qualitative findings.
	if testing.Short() {
		t.Skip("corpus sweep")
	}
	// The paper's caches are O(100 MB) against block sizes up to 1 MB, so
	// a cache spans many blocks at every size studied. The scaled corpus
	// must preserve that: caches here are ~500 KB against blocks up to
	// 128 KB (same two-orders-of-magnitude headroom at the bottom end).
	spec := corpus.TestSpec()
	spec.Distros = []corpus.DistroSpec{
		{Name: "ubuntu", Count: 9, Releases: 2},
		{Name: "rhel-centos", Count: 3, Releases: 1},
	}
	spec.ImageNonzero = 4 << 20
	spec.CacheFrac = 0.12
	spec.EditEvery = 64 << 10
	repo, err := corpus.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	images := ImageSources(repo)
	caches := CacheSources(repo)
	sizes := []block.Size{block.Size4K, block.Size32K, block.Size128K}
	gz := compress.MustGet("gzip6")

	imgRes, err := Sweep(images, sizes, gz, 0)
	if err != nil {
		t.Fatal(err)
	}
	cacheRes, err := Sweep(caches, sizes, gz, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Fig 2 trend: dedup ratio increases as block size decreases.
	for _, rs := range [][]Result{imgRes, cacheRes} {
		if !(rs[0].DedupRatio() > rs[2].DedupRatio()) {
			t.Errorf("dedup ratio should rise at small blocks: 4K=%.2f 256K=%.2f",
				rs[0].DedupRatio(), rs[2].DedupRatio())
		}
	}
	// Fig 2 trend: gzip ratio decreases as block size decreases.
	for _, rs := range [][]Result{imgRes, cacheRes} {
		if !(rs[0].CompressionRatio() < rs[2].CompressionRatio()) {
			t.Errorf("gzip ratio should fall at small blocks: 4K=%.2f 256K=%.2f",
				rs[0].CompressionRatio(), rs[2].CompressionRatio())
		}
	}
	// Fig 12: caches are far more cross-similar than images, at all sizes.
	for i := range sizes {
		ci, ii := cacheRes[i].CrossSimilarity(), imgRes[i].CrossSimilarity()
		if ci < ii+0.2 {
			t.Errorf("bs=%v: cache similarity %.2f should clearly exceed image similarity %.2f",
				sizes[i], ci, ii)
		}
	}
	// ... strongly so at small block sizes, and still meaningfully at the
	// largest (the paper's caches keep ≈0.55 even at 1 MB blocks).
	if got := cacheRes[0].CrossSimilarity(); got < 0.6 {
		t.Errorf("4K cache similarity %.2f too low for the scatter-hoarding claim", got)
	}
	if got := cacheRes[len(sizes)-1].CrossSimilarity(); got < 0.35 {
		t.Errorf("top-size cache similarity %.2f too low", got)
	}
	// Caches dedup better than images (what makes them scalable).
	for i := range sizes {
		if cacheRes[i].DedupRatio() < imgRes[i].DedupRatio() {
			t.Errorf("bs=%v: cache dedup %.2f < image dedup %.2f",
				sizes[i], cacheRes[i].DedupRatio(), imgRes[i].DedupRatio())
		}
	}
}

func TestSweepOrdering(t *testing.T) {
	srcs := []Source{listSource("s", blk(1, 2048), blk(1, 2048))}
	sizes := []block.Size{block.Size1K, block.Size2K}
	rs, err := Sweep(srcs, sizes, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].BlockSize != block.Size1K || rs[1].BlockSize != block.Size2K {
		t.Fatal("sweep results out of order")
	}
}
