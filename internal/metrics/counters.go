package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// CounterSet is a small thread-safe named-counter registry. The fault
// injector, the peer exchange, the zvol receive path, and the repair
// machinery all account into one (chaos events, retries, repair bytes,
// lagging transitions) without threading bespoke structs through every
// layer; the telemetry exporter scrapes exactly this.
//
// The design exploits that counter cardinality is tiny and stops
// growing after warmup (a few dozen names for a whole deployment): the
// name→cell map is immutable once published, so the hot path is one
// atomic pointer load plus one map lookup plus the cell's atomic add —
// no locks, no hashing beyond the map's own. First touch of a new name
// clones the map under a mutex and republishes it.
type CounterSet struct {
	live atomic.Pointer[map[string]*atomic.Int64]
	mu   sync.Mutex // serializes copy-on-write publishes
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	c := &CounterSet{}
	m := make(map[string]*atomic.Int64)
	c.live.Store(&m)
	return c
}

// counter resolves the cell for a name not yet in the live map, cloning
// and republishing the map if the name is genuinely new.
func (c *CounterSet) counter(name string) *atomic.Int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := *c.live.Load()
	if v := old[name]; v != nil {
		return v
	}
	next := make(map[string]*atomic.Int64, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	v := new(atomic.Int64)
	next[name] = v
	c.live.Store(&next)
	return v
}

// Add increments the named counter by delta. Nil-safe: a nil set drops
// the update, so callers can account unconditionally.
func (c *CounterSet) Add(name string, delta int64) {
	if c == nil {
		return
	}
	if v := (*c.live.Load())[name]; v != nil {
		v.Add(delta)
		return
	}
	c.counter(name).Add(delta)
}

// Get returns the named counter's current value (0 if never touched).
func (c *CounterSet) Get(name string) int64 {
	if c == nil {
		return 0
	}
	if v := (*c.live.Load())[name]; v != nil {
		return v.Load()
	}
	return 0
}

// Snapshot copies all counters at once. Counters being incremented
// concurrently land with whichever value the atomic load observes.
func (c *CounterSet) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if c == nil {
		return out
	}
	for k, v := range *c.live.Load() {
		out[k] = v.Load()
	}
	return out
}

// String renders the counters sorted by name, one "name=value" per line —
// the format the chaos example and test logs print.
func (c *CounterSet) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d\n", n, snap[n])
	}
	return b.String()
}
