package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// CounterSet is a small thread-safe named-counter registry. The fault
// injector and the repair path use one to account chaos events (faults
// injected by kind, retries, repair bytes, lagging transitions) without
// threading bespoke structs through every layer; an operator dashboard
// would scrape exactly this.
type CounterSet struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{m: make(map[string]int64)}
}

// Add increments the named counter by delta. Nil-safe: a nil set drops
// the update, so callers can account unconditionally.
func (c *CounterSet) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's current value (0 if never touched).
func (c *CounterSet) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot copies all counters at once.
func (c *CounterSet) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if c == nil {
		return out
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// String renders the counters sorted by name, one "name=value" per line —
// the format the chaos example and test logs print.
func (c *CounterSet) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d\n", n, snap[n])
	}
	return b.String()
}
