// Package metrics computes the paper's compression-efficiency and
// similarity metrics over a corpus:
//
//	deduplication ratio  |N| / |U|            (§2.2, nonzero over unique)
//	compression ratio    Σ size / Σ compressed, over unique blocks
//	CCR                  dedup ratio × compression ratio      (§2.2)
//	cross-similarity     Σ repetitionᵢ / Σ|Uⱼ|                (§4.3.1)
//
// These drive Figs 2, 3, 4, and 12, and Table 1. Analyses stream blocks
// from corpus recipes (no corpus materialization) and fold them into a
// compact table keyed by a 64-bit fold of the SHA-256 content hash.
package metrics

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/compress"
	"repro/internal/corpus"
	"repro/internal/mapreduce"
)

// Source is anything that can enumerate its blocks at a given block size.
// Images and caches are both sources, which is how every figure gets its
// "images" and "caches" series from the same code.
type Source struct {
	ID     string
	Blocks func(bs block.Size, fn func(idx int64, data []byte, zero bool) error) error
}

// ImageSources adapts a repository's full images.
func ImageSources(r *corpus.Repository) []Source {
	out := make([]Source, len(r.Images))
	for i, im := range r.Images {
		im := im
		out[i] = Source{ID: im.ID, Blocks: im.Blocks}
	}
	return out
}

// CacheSources adapts a repository's boot working sets (VMI caches).
func CacheSources(r *corpus.Repository) []Source {
	out := make([]Source, len(r.Images))
	for i, im := range r.Images {
		im := im
		out[i] = Source{ID: im.ID + ".cache", Blocks: im.CacheBlocks}
	}
	return out
}

// Result aggregates one analysis pass over a set of sources at one block
// size.
type Result struct {
	BlockSize block.Size
	Codec     string

	Sources       int
	TotalBlocks   int64 // including zero blocks
	NonzeroBlocks int64 // |N|
	UniqueBlocks  int64 // |U|
	LogicalBytes  int64 // all bytes, incl. zeros
	NonzeroBytes  int64
	UniqueBytes   int64 // Σ size(i), i ∈ U
	CompBytes     int64 // Σ size(compress(i)), i ∈ U; 0 if no codec

	// Repetition is Σ over unique blocks of the number of distinct
	// sources containing the block, counting only blocks that appear in
	// ≥2 sources (the paper's repetitionᵢ).
	Repetition int64
	// PerSourceUnique is Σⱼ |Uⱼ|: unique blocks within each source,
	// summed over sources (the cross-similarity denominator).
	PerSourceUnique int64
}

// DedupRatio is |N| / |U|.
func (r Result) DedupRatio() float64 {
	if r.UniqueBlocks == 0 {
		return 1
	}
	return float64(r.NonzeroBlocks) / float64(r.UniqueBlocks)
}

// CompressionRatio is Σ size / Σ compressed over unique blocks, or 1 if
// no codec was applied.
func (r Result) CompressionRatio() float64 {
	if r.CompBytes == 0 {
		return 1
	}
	return float64(r.UniqueBytes) / float64(r.CompBytes)
}

// CCR is the combined compression ratio (§2.2).
func (r Result) CCR() float64 { return r.DedupRatio() * r.CompressionRatio() }

// CrossSimilarity is the paper's §4.3.1 metric in [0, 1].
func (r Result) CrossSimilarity() float64 {
	if r.PerSourceUnique == 0 {
		return 0
	}
	return float64(r.Repetition) / float64(r.PerSourceUnique)
}

// blockInfo is the per-unique-block accumulator.
type blockInfo struct {
	refs    int64
	sources int32
	lastSrc int32
	logLen  int32
	compLen int32
}

// Analyze streams every source at block size bs and aggregates the
// metrics. codec may be nil to skip content compression (dedup-only
// passes are much faster). Sources are processed sequentially, so the
// distinct-source counting needs no sets.
func Analyze(sources []Source, bs block.Size, codec compress.Codec) (Result, error) {
	res := Result{BlockSize: bs, Sources: len(sources)}
	if codec != nil {
		res.Codec = codec.Name()
	}
	table := make(map[uint64]*blockInfo, 1<<16)
	for si, src := range sources {
		seen := make(map[uint64]struct{}, 1<<10) // unique within this source
		err := src.Blocks(bs, func(_ int64, data []byte, zero bool) error {
			res.TotalBlocks++
			if zero {
				res.LogicalBytes += int64(bs) // holes are full blocks
				return nil
			}
			res.NonzeroBlocks++
			res.LogicalBytes += int64(len(data))
			res.NonzeroBytes += int64(len(data))
			key := block.HashOf(data).Uint64()
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				res.PerSourceUnique++
			}
			bi, ok := table[key]
			if !ok {
				bi = &blockInfo{lastSrc: -1, logLen: int32(len(data))}
				if codec != nil {
					bi.compLen = int32(len(codec.Compress(data)))
				}
				table[key] = bi
			}
			bi.refs++
			if bi.lastSrc != int32(si) {
				bi.sources++
				bi.lastSrc = int32(si)
			}
			return nil
		})
		if err != nil {
			return Result{}, fmt.Errorf("metrics: source %s: %w", src.ID, err)
		}
	}
	for _, bi := range table {
		res.UniqueBlocks++
		res.UniqueBytes += int64(bi.logLen)
		res.CompBytes += int64(bi.compLen)
		if bi.sources >= 2 {
			res.Repetition += int64(bi.sources)
		}
	}
	return res, nil
}

// Sweep runs Analyze at every block size in sizes, in parallel, and
// returns results in the same order.
func Sweep(sources []Source, sizes []block.Size, codec compress.Codec, workers int) ([]Result, error) {
	return mapreduce.Map(sizes, workers, func(bs block.Size) (Result, error) {
		return Analyze(sources, bs, codec)
	})
}
