package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Histogram is a fixed-bucket size/latency histogram: values are counted
// into buckets delimited by a fixed ascending list of inclusive upper
// bounds, with one implicit overflow bucket past the last bound. Like
// CounterSet it is race-safe and nil-safe, so callers can observe
// unconditionally from any goroutine. The boot path records per-read
// sizes through one, and the peer exchange records transfer sizes.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64 // ascending inclusive upper bounds
	counts []int64 // len(bounds)+1; last is the overflow bucket
	count  int64
	sum    int64
	min    int64
	max    int64
}

// ByteBuckets is the default power-of-four size ladder (1 KB … 16 MB),
// wide enough for boot-trace reads and peer transfers alike.
func ByteBuckets() []int64 {
	return []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
}

// LatencyBuckets is a 1-2-5 ladder of nanosecond bounds from 1 µs to
// 10 s — the layout the telemetry registry uses for per-operation wall
// latency, dense enough that p50/p95/p99 land in distinct buckets for
// sub-millisecond simulated operations.
func LatencyBuckets() []int64 {
	var out []int64
	for decade := int64(1_000); decade <= 10_000_000_000; decade *= 10 {
		out = append(out, decade, 2*decade, 5*decade)
	}
	return out[:len(out)-2] // stop at 1e10 exactly
}

// NewHistogram builds a histogram over the given inclusive upper bounds.
// Bounds must be non-empty and strictly ascending; the bucket layout is
// fixed for the histogram's lifetime.
func NewHistogram(bounds ...int64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bucket bound")
	}
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		return nil, fmt.Errorf("metrics: histogram bounds must be strictly ascending")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] {
			return nil, fmt.Errorf("metrics: duplicate histogram bound %d", bounds[i])
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}, nil
}

// MustHistogram is NewHistogram for static bucket layouts.
func MustHistogram(bounds ...int64) *Histogram {
	h, err := NewHistogram(bounds...)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe counts one value. Nil-safe: a nil histogram drops the
// observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []int64 // inclusive upper bounds
	Counts []int64 // len(Bounds)+1; last is the overflow bucket
	Count  int64
	Sum    int64
	Min    int64 // zero when Count == 0
	Max    int64 // zero when Count == 0
}

// Mean is Sum/Count, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot copies the histogram state at once. A nil histogram yields an
// empty snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
	return s
}

// Merge folds other's observations into h without re-observation: bucket
// counts, count, and sum add; min/max combine. Both histograms must share
// the same bucket layout (cluster-wide rollups merge per-node histograms
// built from the same bucket ladder). Nil-safe on both sides: merging a
// nil or empty histogram is a no-op, merging into a nil histogram drops
// the observations.
func (h *Histogram) Merge(other *Histogram) error {
	if h == nil || other == nil {
		return nil
	}
	o := other.Snapshot() // consistent copy; also avoids lock-order issues
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(o.Bounds) != len(h.bounds) {
		return fmt.Errorf("metrics: merge of mismatched histogram layouts (%d vs %d buckets)",
			len(o.Bounds), len(h.bounds))
	}
	for i, b := range h.bounds {
		if o.Bounds[i] != b {
			return fmt.Errorf("metrics: merge of mismatched histogram bound %d vs %d", o.Bounds[i], b)
		}
	}
	if o.Count == 0 {
		return nil
	}
	for i, c := range o.Counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.Min < h.min {
		h.min = o.Min
	}
	if h.count == 0 || o.Max > h.max {
		h.max = o.Max
	}
	h.count += o.Count
	h.sum += o.Sum
	return nil
}

// Quantile returns the q-quantile (0 < q ≤ 1) of the observations by
// exact rank selection over the bucket counts: the result is the
// inclusive upper bound of the bucket containing the ⌈q·count⌉-th
// smallest observation, clamped to [Min, Max] so a histogram whose
// observations all share one bucket reports tight quantiles. An empty
// (or nil) histogram returns 0.
func (h *Histogram) Quantile(q float64) int64 {
	return h.Snapshot().Quantile(q)
}

// Quantile is the snapshot form of Histogram.Quantile, so one Snapshot
// can serve several quantile extractions consistently.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation in sorted order.
	rank := int64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) {
		rank++ // ceil for non-integer products
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			v := s.Max
			if i < len(s.Bounds) {
				v = s.Bounds[i]
			}
			if v > s.Max {
				v = s.Max
			}
			if v < s.Min {
				v = s.Min
			}
			return v
		}
	}
	return s.Max
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// String renders the histogram one bucket per line ("≤bound count"),
// ending with the overflow bucket and a summary line. Empty buckets are
// included so layouts line up across runs.
func (h *Histogram) String() string {
	s := h.Snapshot()
	var b strings.Builder
	for i, bound := range s.Bounds {
		fmt.Fprintf(&b, "≤%-10d %d\n", bound, s.Counts[i])
	}
	if len(s.Counts) > 0 {
		fmt.Fprintf(&b, ">%-10d %d\n", s.Bounds[len(s.Bounds)-1], s.Counts[len(s.Counts)-1])
	}
	fmt.Fprintf(&b, "count=%d sum=%d min=%d max=%d mean=%.1f\n", s.Count, s.Sum, s.Min, s.Max, s.Mean())
	return b.String()
}
