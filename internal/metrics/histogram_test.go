package metrics

import (
	"sync"
	"testing"
)

func TestHistogramBounds(t *testing.T) {
	if _, err := NewHistogram(); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewHistogram(10, 5); err == nil {
		t.Fatal("descending bounds accepted")
	}
	if _, err := NewHistogram(5, 5); err == nil {
		t.Fatal("duplicate bounds accepted")
	}
	if _, err := NewHistogram(1, 2, 3); err != nil {
		t.Fatalf("valid bounds rejected: %v", err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := MustHistogram(10, 100, 1000)
	// Bucket edges are inclusive upper bounds; values past the last bound
	// land in the overflow bucket, and values below the first bound
	// (including negatives) land in the first.
	for _, v := range []int64{-5, 0, 10} { // first bucket
		h.Observe(v)
	}
	h.Observe(11)   // second
	h.Observe(100)  // second
	h.Observe(101)  // third
	h.Observe(1001) // overflow
	s := h.Snapshot()
	want := []int64{3, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count %d want 7", s.Count)
	}
	if s.Min != -5 || s.Max != 1001 {
		t.Fatalf("min/max %d/%d want -5/1001", s.Min, s.Max)
	}
	if s.Sum != -5+0+10+11+100+101+1001 {
		t.Fatalf("sum %d", s.Sum)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(42) // must not panic
	s := nilH.Snapshot()
	if s.Count != 0 || s.Mean() != 0 {
		t.Fatalf("nil histogram snapshot: %+v", s)
	}
	h := MustHistogram(1, 2)
	s = h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram snapshot: %+v", s)
	}
	if h.String() == "" {
		t.Fatal("empty histogram should still render")
	}
}

func TestHistogramSnapshotIsolated(t *testing.T) {
	h := MustHistogram(10)
	h.Observe(1)
	s := h.Snapshot()
	s.Counts[0] = 99
	s.Bounds[0] = 99
	if got := h.Snapshot(); got.Counts[0] != 1 || got.Bounds[0] != 10 {
		t.Fatalf("snapshot aliases histogram state: %+v", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := MustHistogram(ByteBuckets()...)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count %d want %d", got, workers*per)
	}
	var total int64
	for _, c := range h.Snapshot().Counts {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket counts sum to %d want %d", total, workers*per)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := MustHistogram(10, 20, 30, 40)
	// 100 observations: 50 in ≤10, 40 in ≤20, 5 in ≤30, 4 in ≤40, 1 overflow.
	for i := 0; i < 50; i++ {
		h.Observe(5)
	}
	for i := 0; i < 40; i++ {
		h.Observe(15)
	}
	for i := 0; i < 5; i++ {
		h.Observe(25)
	}
	for i := 0; i < 4; i++ {
		h.Observe(35)
	}
	h.Observe(99)
	// Exact rank selection: rank ⌈q·100⌉ against cumulative counts
	// 50/90/95/99/100.
	cases := []struct {
		q    float64
		want int64
	}{
		{0.5, 10},  // rank 50 → first bucket
		{0.51, 20}, // rank 51 → second bucket
		{0.9, 20},  // rank 90
		{0.95, 30}, // rank 95
		{0.99, 40}, // rank 99
		{1.0, 99},  // rank 100 → overflow, clamped to Max
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("q=%v: got %d want %d", c.q, got, c.want)
		}
	}
	if h.Quantile(0) != 0 {
		t.Fatal("q=0 should be 0")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile should be 0")
	}
}

func TestHistogramQuantileClamped(t *testing.T) {
	// All observations share one bucket: quantiles clamp to [Min, Max]
	// instead of reporting the loose bucket bound.
	h := MustHistogram(1000)
	h.Observe(7)
	h.Observe(9)
	if got := h.Quantile(0.5); got != 9 {
		t.Fatalf("clamped p50 = %d want 9 (max)", got)
	}
	lo := MustHistogram(1000)
	lo.Observe(3)
	if got := lo.Quantile(0.01); got != 3 {
		t.Fatalf("clamped low quantile = %d want 3", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := MustHistogram(10, 20)
	b := MustHistogram(10, 20)
	a.Observe(5)
	a.Observe(15)
	b.Observe(25)
	b.Observe(3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	s := a.Snapshot()
	if s.Count != 4 || s.Sum != 5+15+25+3 {
		t.Fatalf("merged snapshot %+v", s)
	}
	if s.Min != 3 || s.Max != 25 {
		t.Fatalf("merged min/max %d/%d", s.Min, s.Max)
	}
	want := []int64{2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("merged bucket %d = %d want %d", i, s.Counts[i], w)
		}
	}
	// b is untouched.
	if b.Count() != 2 {
		t.Fatalf("merge mutated source: %d", b.Count())
	}
	// Quantiles over the merged histogram match re-observation semantics.
	if got := a.Quantile(0.5); got != 10 {
		t.Fatalf("merged p50 = %d want 10", got)
	}
}

func TestHistogramMergeMismatch(t *testing.T) {
	a := MustHistogram(10, 20)
	if err := a.Merge(MustHistogram(10)); err == nil {
		t.Fatal("bucket-count mismatch accepted")
	}
	if err := a.Merge(MustHistogram(10, 30)); err == nil {
		t.Fatal("bound mismatch accepted")
	}
	if a.Count() != 0 {
		t.Fatal("failed merge mutated destination")
	}
}

func TestHistogramMergeNilAndEmpty(t *testing.T) {
	var nilH *Histogram
	if err := nilH.Merge(MustHistogram(10)); err != nil {
		t.Fatal(err)
	}
	a := MustHistogram(10)
	if err := a.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(MustHistogram(10)); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 0 {
		t.Fatal("empty merges observed something")
	}
	// Merging into an empty histogram adopts min/max.
	b := MustHistogram(10)
	b.Observe(4)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if s := a.Snapshot(); s.Min != 4 || s.Max != 4 {
		t.Fatalf("empty-destination merge min/max: %+v", s)
	}
}

func TestLatencyBuckets(t *testing.T) {
	bs := LatencyBuckets()
	if len(bs) == 0 || bs[0] != 1_000 || bs[len(bs)-1] != 10_000_000_000 {
		t.Fatalf("latency ladder %v", bs)
	}
	if _, err := NewHistogram(bs...); err != nil {
		t.Fatalf("latency ladder invalid: %v", err)
	}
}
