package metrics

import (
	"sync"
	"testing"
)

func TestHistogramBounds(t *testing.T) {
	if _, err := NewHistogram(); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewHistogram(10, 5); err == nil {
		t.Fatal("descending bounds accepted")
	}
	if _, err := NewHistogram(5, 5); err == nil {
		t.Fatal("duplicate bounds accepted")
	}
	if _, err := NewHistogram(1, 2, 3); err != nil {
		t.Fatalf("valid bounds rejected: %v", err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := MustHistogram(10, 100, 1000)
	// Bucket edges are inclusive upper bounds; values past the last bound
	// land in the overflow bucket, and values below the first bound
	// (including negatives) land in the first.
	for _, v := range []int64{-5, 0, 10} { // first bucket
		h.Observe(v)
	}
	h.Observe(11)   // second
	h.Observe(100)  // second
	h.Observe(101)  // third
	h.Observe(1001) // overflow
	s := h.Snapshot()
	want := []int64{3, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count %d want 7", s.Count)
	}
	if s.Min != -5 || s.Max != 1001 {
		t.Fatalf("min/max %d/%d want -5/1001", s.Min, s.Max)
	}
	if s.Sum != -5+0+10+11+100+101+1001 {
		t.Fatalf("sum %d", s.Sum)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(42) // must not panic
	s := nilH.Snapshot()
	if s.Count != 0 || s.Mean() != 0 {
		t.Fatalf("nil histogram snapshot: %+v", s)
	}
	h := MustHistogram(1, 2)
	s = h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram snapshot: %+v", s)
	}
	if h.String() == "" {
		t.Fatal("empty histogram should still render")
	}
}

func TestHistogramSnapshotIsolated(t *testing.T) {
	h := MustHistogram(10)
	h.Observe(1)
	s := h.Snapshot()
	s.Counts[0] = 99
	s.Bounds[0] = 99
	if got := h.Snapshot(); got.Counts[0] != 1 || got.Bounds[0] != 10 {
		t.Fatalf("snapshot aliases histogram state: %+v", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := MustHistogram(ByteBuckets()...)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count %d want %d", got, workers*per)
	}
	var total int64
	for _, c := range h.Snapshot().Counts {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket counts sum to %d want %d", total, workers*per)
	}
}
