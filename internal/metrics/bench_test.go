package metrics

import (
	"fmt"
	"sync"
	"testing"
)

// benchNames spreads load across enough distinct counters that the
// published map holds a realistic cardinality.
var benchNames = func() []string {
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("bench.counter.%02d", i)
	}
	return names
}()

// BenchmarkCounterSetAdd measures the lock-free hot path (atomic map
// load + per-name atomic cell) under parallel load — the regime the
// rewrite targets, since every propagate, peer fetch, and scrub tick
// goes through Add.
func BenchmarkCounterSetAdd(b *testing.B) {
	c := NewCounterSet()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Add(benchNames[i&63], 1)
			i++
		}
	})
}

// mutexCounterSet is the pre-rewrite design: one mutex around one map.
// Kept here as the benchmark baseline so the overhead claim is checked
// against the actual alternative, not a guess.
type mutexCounterSet struct {
	mu sync.Mutex
	m  map[string]int64
}

func (c *mutexCounterSet) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// BenchmarkCounterSetAddMutexBaseline is the single-lock design under
// the same parallel load, for comparison against BenchmarkCounterSetAdd.
func BenchmarkCounterSetAddMutexBaseline(b *testing.B) {
	c := &mutexCounterSet{m: make(map[string]int64)}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Add(benchNames[i&63], 1)
			i++
		}
	})
}

// BenchmarkCounterSetAddNil measures the disabled path: a nil receiver
// must cost essentially nothing, since instrumented code never branches
// on whether telemetry is on.
func BenchmarkCounterSetAddNil(b *testing.B) {
	var c *CounterSet
	for i := 0; i < b.N; i++ {
		c.Add("noop", 1)
	}
}
