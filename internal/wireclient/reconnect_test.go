package wireclient_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/daemon"
	"repro/internal/wireclient"
)

var reconnectT0 = time.Date(2014, 6, 23, 9, 0, 0, 0, time.UTC)

// startDaemon brings up an in-process squirreld on addr ("127.0.0.1:0"
// for an ephemeral port) and returns the bound address plus a stop
// function that drains it.
func startDaemon(t *testing.T, opts ctlplane.Options, addr string) (string, func()) {
	t.Helper()
	local, err := ctlplane.NewLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := daemon.New(local, daemon.Config{Addr: addr})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
	t.Cleanup(stop)
	return srv.Addr().String(), stop
}

// sessionScript drives the same short scenario against any Session and
// collects everything it observes — the material the reconnect test
// diffs between the post-restart wire session and a pure in-process
// run of the identical fresh deployment.
type scriptResult struct {
	Registers []core.RegisterReport
	Boot      core.BootReport
	Stats     core.DeploymentStats
}

func sessionScript(t *testing.T, sess ctlplane.Session) scriptResult {
	t.Helper()
	ctx := context.Background()
	info, err := sess.Info()
	if err != nil {
		t.Fatal(err)
	}
	var res scriptResult
	for i, id := range info.Images[:3] {
		rep, err := sess.Register(ctx, id, reconnectT0.Add(time.Duration(i)*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		res.Registers = append(res.Registers, rep)
	}
	node := info.ComputeNodes[0]
	if err := sess.DropReplica(node, info.Images[0]); err != nil {
		t.Fatal(err)
	}
	res.Boot, err = sess.Boot(ctx, core.BootRequest{Image: info.Images[0], Node: node, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res.Stats, err = sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// PeerLoads ordering and content are deterministic, but the wire
	// round-trips an empty slice as nil; normalize.
	if len(res.Stats.PeerLoads) == 0 {
		res.Stats.PeerLoads = nil
	}
	return res
}

// TestReconnectAfterDaemonRestart kills squirreld mid-session and
// proves the client story end to end: in-flight session calls fail
// with ErrClosed, a fresh Dial against the dead address burns its
// retry budget into ErrConnect (squirrelctl's exit-6 family), and a
// Dial racing the daemon's restart is carried over the gap by the
// retry/backoff loop — after which the session observes reports
// identical to an in-process deployment of the same shape.
func TestReconnectAfterDaemonRestart(t *testing.T) {
	opts := ctlplane.Options{Images: 6, Nodes: 4, Peers: true}

	addr, stop := startDaemon(t, opts, "127.0.0.1:0")
	c1, err := wireclient.Dial(wireclient.Options{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	info, err := c1.Info()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Register(context.Background(), info.Images[0], reconnectT0); err != nil {
		t.Fatal(err)
	}

	// The daemon dies mid-session.
	stop()

	// The open session's next call fails with the connection sentinel,
	// not a hang or a mystery error.
	if _, err := c1.Stats(); !errors.Is(err, wireclient.ErrClosed) {
		t.Fatalf("call on dead session: got %v, want ErrClosed", err)
	}

	// A fresh Dial against the dead address spends its budget and wraps
	// ErrConnect — the sentinel squirrelctl maps to its connect exit
	// code (6).
	if _, err := wireclient.Dial(wireclient.Options{
		Addr:     addr,
		Attempts: 2,
		Backoff:  5 * time.Millisecond,
	}); !errors.Is(err, wireclient.ErrConnect) {
		t.Fatalf("dial dead daemon: got %v, want ErrConnect", err)
	}

	// Restart on the SAME address, but start the Dial first: the client
	// must ride its retry/backoff loop over the refused connections
	// until the new listener is up.
	type dialResult struct {
		c   *wireclient.Client
		err error
	}
	dialed := make(chan dialResult, 1)
	go func() {
		c, err := wireclient.Dial(wireclient.Options{
			Addr:     addr,
			Attempts: 40,
			Backoff:  10 * time.Millisecond,
		})
		dialed <- dialResult{c, err}
	}()
	time.Sleep(30 * time.Millisecond) // let a few attempts fail against the dead port
	startDaemon(t, opts, addr)

	got := <-dialed
	if got.err != nil {
		t.Fatalf("reconnect dial did not recover across restart: %v", got.err)
	}
	defer got.c.Close()

	// Report equivalence: the reconnected wire session and a pure
	// in-process deployment of the same Options observe identical
	// reports for an identical script (the restarted daemon is a fresh
	// deployment — determinism in Options is the contract).
	wire := sessionScript(t, got.c)
	local, err := ctlplane.NewLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	inproc := sessionScript(t, local)

	if !reflect.DeepEqual(wire.Registers, inproc.Registers) {
		t.Errorf("register reports diverge:\n wire  %+v\n local %+v", wire.Registers, inproc.Registers)
	}
	if !reflect.DeepEqual(wire.Boot, inproc.Boot) {
		t.Errorf("boot reports diverge:\n wire  %+v\n local %+v", wire.Boot, inproc.Boot)
	}
	if !reflect.DeepEqual(wire.Stats, inproc.Stats) {
		t.Errorf("stats diverge:\n wire  %+v\n local %+v", wire.Stats, inproc.Stats)
	}
}
