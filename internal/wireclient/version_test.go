package wireclient_test

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/ctlplane"
	"repro/internal/obs"
	"repro/internal/wireclient"
	"repro/internal/wireproto"
)

// fakeOldServer speaks only protocol serverVer: any newer offer is
// rejected with HelloVersionMismatch naming serverVer, an exact offer
// is accepted and the connection then just sits (the tests below never
// exchange frames). Returns the address and a per-handshake counter.
func fakeOldServer(t *testing.T, serverVer uint16) (string, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var hellos atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				ver, err := wireproto.ReadHello(conn)
				if err != nil {
					return
				}
				hellos.Add(1)
				if ver != serverVer {
					_ = wireproto.WriteHelloReplyVersion(conn, serverVer, wireproto.HelloVersionMismatch, "")
					return
				}
				if err := wireproto.WriteHelloReplyVersion(conn, serverVer, wireproto.HelloOK, ""); err != nil {
					return
				}
				// Hold the connection open; the client read loop parks on it.
				_, _ = io.Copy(io.Discard, conn)
			}(conn)
		}
	}()
	return ln.Addr().String(), &hellos
}

// TestDialDowngradesToV1 pins the compatibility contract: against a
// daemon that only speaks protocol v1, Dial redials at the version the
// server named and succeeds — while the v2-only surfaces (watch
// streams, merged traces) refuse with errors naming the negotiated
// version instead of sending frames the server cannot parse.
func TestDialDowngradesToV1(t *testing.T) {
	addr, hellos := fakeOldServer(t, wireproto.MinVersion)
	c, err := wireclient.Dial(wireclient.Options{Addr: addr, Obs: obs.New(0)})
	if err != nil {
		t.Fatalf("dial against v1 server: %v", err)
	}
	defer c.Close()
	if got := c.Version(); got != wireproto.MinVersion {
		t.Fatalf("negotiated v%d, want v%d", got, wireproto.MinVersion)
	}
	if got := hellos.Load(); got != 2 {
		t.Fatalf("downgrade took %d handshakes, want 2 (offer v2, accept v1)", got)
	}

	err = c.Watch(context.Background(), ctlplane.WatchArgs{Count: 1}, func(ctlplane.WatchUpdate) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "protocol v2") {
		t.Fatalf("watch on v1 connection returned %v, want protocol-v2 refusal", err)
	}
	if _, err := c.TraceMerged(obs.OpBoot); err == nil || !strings.Contains(err.Error(), "protocol v2") {
		t.Fatalf("TraceMerged on v1 connection returned %v, want protocol-v2 refusal", err)
	}
	if _, err := c.Workload(context.Background(), ctlplane.WorkloadArgs{Boots: 10}); err == nil ||
		!strings.Contains(err.Error(), "protocol v2") {
		t.Fatalf("Workload on v1 connection returned %v, want protocol-v2 refusal", err)
	}
}

// TestDialRejectsUnbridgeableVersion: a server older than anything this
// build still speaks fails the handshake immediately — no retry spin.
func TestDialRejectsUnbridgeableVersion(t *testing.T) {
	addr, hellos := fakeOldServer(t, wireproto.MinVersion-1)
	_, err := wireclient.Dial(wireclient.Options{Addr: addr})
	if !errors.Is(err, wireclient.ErrHandshake) {
		t.Fatalf("dial against v0 server returned %v, want ErrHandshake", err)
	}
	if got := hellos.Load(); got != 1 {
		t.Fatalf("unbridgeable version consumed %d handshakes, want 1 (no retries)", got)
	}
}
