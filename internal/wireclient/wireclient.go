// Package wireclient is the client side of Squirrel's control plane: a
// ctlplane.Session implementation that speaks the wireproto framing to
// a live squirreld over TCP.
//
// The client pipelines: every call is assigned a request ID, written
// to the shared connection, and parked until the matching response
// frame arrives, so concurrent callers share one connection without
// head-of-line blocking on the daemon side (the daemon handles each
// request in its own goroutine). Dial retries refused connections with
// exponential backoff — the daemon may still be starting — but a
// protocol version mismatch fails immediately: retrying cannot fix it.
package wireclient

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/fault"
	"repro/internal/wireproto"
	"repro/internal/zvol"
)

// Connection-level sentinels; squirrelctl maps both onto its
// connection-failure exit code.
var (
	// ErrConnect is wrapped by dial failures (daemon down, wrong
	// address, network refusals) after the retry budget is spent.
	ErrConnect = errors.New("wireclient: cannot connect to squirreld")
	// ErrHandshake is wrapped when a connection is established but the
	// protocol handshake is rejected (version mismatch, busy daemon that
	// stayed busy, or a peer that is not a squirreld at all).
	ErrHandshake = errors.New("wireclient: handshake with squirreld failed")
	// ErrClosed is returned by calls whose connection died before the
	// response arrived.
	ErrClosed = errors.New("wireclient: connection closed")
)

// Options shape one Dial.
type Options struct {
	// Addr is the daemon's TCP address (host:port).
	Addr string
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// Attempts is the dial retry budget (default 5); only transient
	// failures (refused connections, busy handshakes) are retried.
	Attempts int
	// Backoff is the initial retry delay, doubling per attempt
	// (default 100ms).
	Backoff time.Duration
	// CallTimeout bounds each request that arrives without its own
	// context deadline. 0 means no per-call deadline.
	CallTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 5
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	return o
}

// Client is a Session served by a remote squirreld.
type Client struct {
	opts Options
	conn net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan wireproto.Frame
	err     error // terminal connection error; set once
}

var _ ctlplane.Session = (*Client)(nil)

// Dial connects and handshakes with the daemon at opts.Addr.
func Dial(opts Options) (*Client, error) {
	opts = opts.withDefaults()
	var lastErr error
	backoff := opts.Backoff
	for attempt := 0; attempt < opts.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		conn, err := net.DialTimeout("tcp", opts.Addr, opts.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		c, err := handshake(conn, opts)
		if err == nil {
			return c, nil
		}
		_ = conn.Close()
		if errors.Is(err, ErrHandshake) && !errors.Is(err, errBusy) {
			// A version mismatch (or a non-squirreld peer) will not heal
			// on retry.
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w at %s after %d attempts: %v", ErrConnect, opts.Addr, opts.Attempts, lastErr)
}

// errBusy marks a HelloBusy rejection — transient, retried by Dial.
var errBusy = errors.New("wireclient: daemon busy")

// handshake runs the hello exchange and brings up the read loop.
func handshake(conn net.Conn, opts Options) (*Client, error) {
	deadline := time.Now().Add(opts.DialTimeout)
	_ = conn.SetDeadline(deadline)
	if err := wireproto.WriteHello(conn); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	ver, status, msg, err := wireproto.ReadHelloReply(conn)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	switch status {
	case wireproto.HelloOK:
	case wireproto.HelloVersionMismatch:
		if msg == "" {
			msg = fmt.Sprintf("protocol version mismatch: server v%d, client v%d", ver, wireproto.Version)
		}
		return nil, fmt.Errorf("%w: %s", ErrHandshake, msg)
	case wireproto.HelloBusy:
		return nil, fmt.Errorf("%w: %w: %s", ErrHandshake, errBusy, msg)
	default:
		return nil, fmt.Errorf("%w: unknown handshake status %d", ErrHandshake, status)
	}
	_ = conn.SetDeadline(time.Time{})
	c := &Client{
		opts:    opts,
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: make(map[uint64]chan wireproto.Frame),
	}
	go c.readLoop()
	return c, nil
}

// readLoop routes response frames to their parked callers until the
// connection dies, then fails every pending call.
func (c *Client) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		f, err := wireproto.ReadFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ReqID]
		if ok {
			delete(c.pending, f.ReqID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// fail marks the connection dead and unparks every pending call.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan wireproto.Frame)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Close implements Session.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(ErrClosed)
	return err
}

// call runs one request/response exchange: marshal args, write the
// frame, park until the matching response or ctx expiry. A nil out
// discards the response body.
func (c *Client) call(ctx context.Context, typ uint8, args any, out any) error {
	if c.opts.CallTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.opts.CallTimeout)
			defer cancel()
		}
	}
	var payload []byte
	if args != nil {
		var err error
		if payload, err = json.Marshal(args); err != nil {
			return fmt.Errorf("wireclient: encode request: %w", err)
		}
	}
	ch := make(chan wireproto.Frame, 1)
	c.mu.Lock()
	if err := c.err; err != nil {
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := wireproto.WriteFrame(c.bw, wireproto.Frame{Type: typ, ReqID: id, Payload: payload})
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
		return fmt.Errorf("wireclient: write: %w", err)
	}

	select {
	case f, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return err
		}
		if f.IsError() {
			code, msg, derr := wireproto.DecodeError(f.Payload)
			if derr != nil {
				return fmt.Errorf("wireclient: undecodable error frame: %w", derr)
			}
			return ctlplane.ErrFromCode(code, msg)
		}
		if out == nil || len(f.Payload) == 0 {
			return nil
		}
		if err := json.Unmarshal(f.Payload, out); err != nil {
			return fmt.Errorf("wireclient: decode response: %w", err)
		}
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return ctx.Err()
	}
}

// bg is the context for Session methods that have no caller context.
func bg() context.Context { return context.Background() }

// Info implements Session.
func (c *Client) Info() (ctlplane.Info, error) {
	var out ctlplane.Info
	err := c.call(bg(), wireproto.TInfo, nil, &out)
	return out, err
}

// Register implements Session.
func (c *Client) Register(ctx context.Context, imageID string, at time.Time) (core.RegisterReport, error) {
	var out core.RegisterReport
	err := c.call(ctx, wireproto.TRegister, ctlplane.RegisterArgs{Image: imageID, At: at}, &out)
	return out, err
}

// Boot implements Session.
func (c *Client) Boot(ctx context.Context, req core.BootRequest) (core.BootReport, error) {
	var out core.BootReport
	err := c.call(ctx, wireproto.TBoot, req, &out)
	return out, err
}

// SyncNode implements Session.
func (c *Client) SyncNode(ctx context.Context, nodeID string) (core.SyncReport, error) {
	var out core.SyncReport
	err := c.call(ctx, wireproto.TSync, ctlplane.NodeArgs{Node: nodeID}, &out)
	return out, err
}

// SetOnline implements Session.
func (c *Client) SetOnline(nodeID string, up bool) error {
	return c.call(bg(), wireproto.TSetOnline, ctlplane.OnlineArgs{Node: nodeID, Up: up}, nil)
}

// DropReplica implements Session.
func (c *Client) DropReplica(nodeID, imageID string) error {
	return c.call(bg(), wireproto.TDropReplica, ctlplane.DropArgs{Node: nodeID, Image: imageID}, nil)
}

// CrashNode implements Session.
func (c *Client) CrashNode(nodeID string, at time.Time) error {
	return c.call(bg(), wireproto.TCrash, ctlplane.NodeAtArgs{Node: nodeID, At: at}, nil)
}

// RestartNode implements Session.
func (c *Client) RestartNode(nodeID string, at time.Time) (core.RecoveryReport, error) {
	var out core.RecoveryReport
	err := c.call(bg(), wireproto.TRestart, ctlplane.NodeAtArgs{Node: nodeID, At: at}, &out)
	return out, err
}

// InjectRot implements Session.
func (c *Client) InjectRot(nodeID string) (int, error) {
	var out ctlplane.RotReply
	err := c.call(bg(), wireproto.TRot, ctlplane.NodeArgs{Node: nodeID}, &out)
	return out.Blocks, err
}

// SetFaults implements Session.
func (c *Client) SetFaults(plan fault.Plan) error {
	return c.call(bg(), wireproto.TSetFaults, plan, nil)
}

// ScrubAll implements Session.
func (c *Client) ScrubAll(ctx context.Context, at time.Time) (map[string]zvol.ScrubReport, error) {
	var out map[string]zvol.ScrubReport
	err := c.call(ctx, wireproto.TScrubAll, ctlplane.AtArgs{At: at}, &out)
	return out, err
}

// ResilverAll implements Session.
func (c *Client) ResilverAll(ctx context.Context, at time.Time) ([]core.ResilverReport, error) {
	var out []core.ResilverReport
	err := c.call(ctx, wireproto.TResilverAll, ctlplane.AtArgs{At: at}, &out)
	return out, err
}

// GarbageCollect implements Session.
func (c *Client) GarbageCollect(at time.Time) (int, error) {
	var out ctlplane.CountReply
	err := c.call(bg(), wireproto.TGC, ctlplane.AtArgs{At: at}, &out)
	return out.N, err
}

// Stats implements Session.
func (c *Client) Stats() (core.DeploymentStats, error) {
	var out core.DeploymentStats
	err := c.call(bg(), wireproto.TStats, nil, &out)
	return out, err
}

// Health implements Session.
func (c *Client) Health() ([]core.NodeStatus, error) {
	var out []core.NodeStatus
	err := c.call(bg(), wireproto.THealth, nil, &out)
	return out, err
}

// PeerCounters implements Session.
func (c *Client) PeerCounters() (string, error) {
	var out ctlplane.PeersReply
	err := c.call(bg(), wireproto.TPeers, nil, &out)
	return out.Counters, err
}

// Telemetry implements Session.
func (c *Client) Telemetry() (ctlplane.TelemetryDump, error) {
	var out ctlplane.TelemetryDump
	err := c.call(bg(), wireproto.TTelemetry, nil, &out)
	return out, err
}

// TraceSlowest implements Session.
func (c *Client) TraceSlowest(kind string) (string, error) {
	var out ctlplane.TextReply
	err := c.call(bg(), wireproto.TTrace, ctlplane.TraceArgs{Kind: kind}, &out)
	return out.Text, err
}

// ResetNetCounters implements Session.
func (c *Client) ResetNetCounters() error {
	return c.call(bg(), wireproto.TNetReset, nil, nil)
}

// ComputeRx implements Session.
func (c *Client) ComputeRx() (int64, error) {
	var out ctlplane.BytesReply
	err := c.call(bg(), wireproto.TNetRx, nil, &out)
	return out.Bytes, err
}
