// Package wireclient is the client side of Squirrel's control plane: a
// ctlplane.Session implementation that speaks the wireproto framing to
// a live squirreld over TCP.
//
// The client pipelines: every call is assigned a request ID, written
// to the shared connection, and parked until the matching response
// frame arrives, so concurrent callers share one connection without
// head-of-line blocking on the daemon side (the daemon handles each
// request in its own goroutine). Streaming replies (the watch op) ride
// the same connection: the read loop keeps routing FlagStream frames
// to their parked consumer until the final non-stream frame closes the
// exchange. Dial retries refused connections with exponential backoff
// — the daemon may still be starting — and downgrades once to an older
// protocol version if the server names one; only an unbridgeable
// version gap (or a peer that is not a squirreld) fails immediately.
//
// When Options.Obs is set the client records its own span tree: one
// ctl.session root per connection, ctl.dial children for every TCP
// attempt, and an rpc.call child per request. On connections that
// negotiated protocol version ≥ 2 each request frame carries the trace
// context (session trace ID + rpc span ID), which the daemon stamps on
// its dispatch spans — TraceMerged later fetches those dispatch trees
// and grafts them back under the rpc.call spans that issued them,
// rendering one tree that spans both processes.
package wireclient

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/wireproto"
	"repro/internal/workload"
	"repro/internal/zvol"
)

// Connection-level sentinels; squirrelctl maps both onto its
// connection-failure exit code.
var (
	// ErrConnect is wrapped by dial failures (daemon down, wrong
	// address, network refusals) after the retry budget is spent.
	ErrConnect = errors.New("wireclient: cannot connect to squirreld")
	// ErrHandshake is wrapped when a connection is established but the
	// protocol handshake is rejected (version mismatch, busy daemon that
	// stayed busy, or a peer that is not a squirreld at all).
	ErrHandshake = errors.New("wireclient: handshake with squirreld failed")
	// ErrClosed is returned by calls whose connection died before the
	// response arrived.
	ErrClosed = errors.New("wireclient: connection closed")
)

// Options shape one Dial.
type Options struct {
	// Addr is the daemon's TCP address (host:port).
	Addr string
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// Attempts is the dial retry budget (default 5); only transient
	// failures (refused connections, busy handshakes) are retried.
	Attempts int
	// Backoff is the initial retry delay, doubling per attempt
	// (default 100ms).
	Backoff time.Duration
	// CallTimeout bounds each request that arrives without its own
	// context deadline. 0 means no per-call deadline. Watch streams are
	// exempt: they run on the caller's context alone.
	CallTimeout time.Duration
	// Obs, when set, receives the client-side span tree: a ctl.session
	// root for the connection, ctl.dial attempts and rpc.call exchanges
	// as its children. Required for TraceMerged.
	Obs *obs.Telemetry
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 5
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	return o
}

// Client is a Session served by a remote squirreld.
type Client struct {
	opts Options
	conn net.Conn
	ver  uint16 // negotiated protocol version

	tel     *obs.Telemetry
	session *obs.Span // ctl.session root; finished by Close

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan wireproto.Frame
	err     error // terminal connection error; set once
}

var _ ctlplane.Session = (*Client)(nil)

// Dial connects and handshakes with the daemon at opts.Addr, offering
// the newest protocol version and downgrading if the server names an
// older one this build still speaks.
func Dial(opts Options) (*Client, error) {
	opts = opts.withDefaults()
	session := opts.Obs.Tracer().StartOp(obs.OpSession, "", "")
	var lastErr error
	backoff := opts.Backoff
	offer := wireproto.Version
	for attempt := 0; attempt < opts.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		dsp := session.Child(obs.OpDial, "", "")
		dsp.Annotate("attempt", int64(attempt)+1)
		dsp.Annotate("proto", int64(offer))
		conn, err := net.DialTimeout("tcp", opts.Addr, opts.DialTimeout)
		if err != nil {
			dsp.Fail(err)
			dsp.Finish()
			lastErr = err
			continue
		}
		c, srvVer, err := handshake(conn, opts, offer)
		if err == nil {
			dsp.Finish()
			c.tel = opts.Obs
			c.session = session
			return c, nil
		}
		_ = conn.Close()
		dsp.Fail(err)
		dsp.Finish()
		if errors.Is(err, errVersion) {
			if srvVer >= wireproto.MinVersion && srvVer < offer {
				// The server speaks an older version this build still
				// supports: redial immediately offering it (without
				// consuming the retry budget). The offer only ever
				// decreases, so the downgrade loop terminates.
				offer = srvVer
				lastErr = err
				attempt--
				continue
			}
			session.Fail(err)
			session.Finish()
			return nil, err
		}
		if errors.Is(err, ErrHandshake) && !errors.Is(err, errBusy) {
			// A non-squirreld peer will not heal on retry.
			session.Fail(err)
			session.Finish()
			return nil, err
		}
		lastErr = err
	}
	err := fmt.Errorf("%w at %s after %d attempts: %v", ErrConnect, opts.Addr, opts.Attempts, lastErr)
	session.Fail(err)
	session.Finish()
	return nil, err
}

// errBusy marks a HelloBusy rejection — transient, retried by Dial.
// errVersion marks a HelloVersionMismatch — retried only as a downgrade
// to the version the server named.
var (
	errBusy    = errors.New("wireclient: daemon busy")
	errVersion = errors.New("wireclient: protocol version mismatch")
)

// handshake runs the hello exchange (offering the given version) and
// brings up the read loop. On a version mismatch the server's version
// is returned alongside the error so Dial can downgrade.
func handshake(conn net.Conn, opts Options, offer uint16) (*Client, uint16, error) {
	deadline := time.Now().Add(opts.DialTimeout)
	_ = conn.SetDeadline(deadline)
	if err := wireproto.WriteHelloVersion(conn, offer); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	ver, status, msg, err := wireproto.ReadHelloReply(conn)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	switch status {
	case wireproto.HelloOK:
	case wireproto.HelloVersionMismatch:
		if msg == "" {
			msg = fmt.Sprintf("protocol version mismatch: server v%d, client v%d", ver, offer)
		}
		return nil, ver, fmt.Errorf("%w: %w: %s", ErrHandshake, errVersion, msg)
	case wireproto.HelloBusy:
		return nil, 0, fmt.Errorf("%w: %w: %s", ErrHandshake, errBusy, msg)
	default:
		return nil, 0, fmt.Errorf("%w: unknown handshake status %d", ErrHandshake, status)
	}
	if ver > offer {
		// A well-behaved server echoes the agreed (≤ offered) version;
		// clamp so a misbehaving one cannot talk the client into
		// features it never offered.
		ver = offer
	}
	_ = conn.SetDeadline(time.Time{})
	c := &Client{
		opts:    opts,
		conn:    conn,
		ver:     ver,
		bw:      bufio.NewWriter(conn),
		pending: make(map[uint64]chan wireproto.Frame),
	}
	go c.readLoop()
	return c, ver, nil
}

// Version is the protocol version negotiated with the daemon.
func (c *Client) Version() uint16 { return c.ver }

// readLoop routes response frames to their parked callers until the
// connection dies, then fails every pending call. A FlagStream frame
// leaves its pending entry registered — more elements follow — and the
// exchange is unregistered by its final non-stream frame. Frames with
// no pending entry (responses whose caller gave up) are discarded.
func (c *Client) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		f, err := wireproto.ReadFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ReqID]
		if ok && !f.IsStream() {
			delete(c.pending, f.ReqID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// fail marks the connection dead and unparks every pending call.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan wireproto.Frame)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Close implements Session. It also finishes the ctl.session span, which
// lands the client-side trace tree in Options.Obs's ring.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(ErrClosed)
	c.session.Finish()
	return err
}

// register parks a fresh request ID. bufcap sizes the response channel:
// 1 for unary calls, larger for streams so the read loop rarely blocks
// on a briefly busy consumer.
func (c *Client) register(bufcap int) (uint64, chan wireproto.Frame, error) {
	ch := make(chan wireproto.Frame, bufcap)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.err; err != nil {
		return 0, nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	return id, ch, nil
}

// writeRequest serializes and flushes one request frame; a write error
// kills the connection and unregisters the request.
func (c *Client) writeRequest(f wireproto.Frame) error {
	c.wmu.Lock()
	err := wireproto.WriteFrame(c.bw, f)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, f.ReqID)
		c.mu.Unlock()
		c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
		return fmt.Errorf("wireclient: write: %w", err)
	}
	return nil
}

// rpcSpan opens the client-side span for one exchange. Nil (free) when
// tracing is off, when the session root was head-sampled out, or for
// the trace-fetch op itself — TTraceTree dispatches must not appear
// inside the very trace they retrieve.
func (c *Client) rpcSpan(typ uint8) *obs.Span {
	if c.tel == nil || typ == wireproto.TTraceTree {
		return nil
	}
	sp := c.session.Child(obs.OpRPC, "", "")
	sp.Annotate("op."+wireproto.TypeName(typ), 1)
	return sp
}

// stamp attaches the wire trace context to a request frame when the
// negotiated protocol version carries it and the exchange is traced.
func (c *Client) stamp(f *wireproto.Frame, sp *obs.Span) {
	if sp == nil || c.ver < 2 {
		return
	}
	f.Flags |= wireproto.FlagTrace
	f.TraceID = c.session.SpanID()
	f.SpanID = sp.SpanID()
}

// call runs one request/response exchange: marshal args, write the
// frame, park until the matching response or ctx expiry. A nil out
// discards the response body.
func (c *Client) call(ctx context.Context, typ uint8, args any, out any) error {
	sp := c.rpcSpan(typ)
	err := c.exchange(ctx, sp, typ, args, out)
	sp.Fail(err)
	sp.Finish()
	return err
}

func (c *Client) exchange(ctx context.Context, sp *obs.Span, typ uint8, args any, out any) error {
	if c.opts.CallTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.opts.CallTimeout)
			defer cancel()
		}
	}
	var payload []byte
	if args != nil {
		var err error
		if payload, err = json.Marshal(args); err != nil {
			return fmt.Errorf("wireclient: encode request: %w", err)
		}
	}
	id, ch, err := c.register(1)
	if err != nil {
		return err
	}
	f := wireproto.Frame{Type: typ, ReqID: id, Payload: payload}
	c.stamp(&f, sp)
	if err := c.writeRequest(f); err != nil {
		return err
	}

	select {
	case f, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return err
		}
		if f.IsError() {
			code, msg, derr := wireproto.DecodeError(f.Payload)
			if derr != nil {
				return fmt.Errorf("wireclient: undecodable error frame: %w", derr)
			}
			return ctlplane.ErrFromCode(code, msg)
		}
		if out == nil || len(f.Payload) == 0 {
			return nil
		}
		if err := json.Unmarshal(f.Payload, out); err != nil {
			return fmt.Errorf("wireclient: decode response: %w", err)
		}
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return ctx.Err()
	}
}

// bg is the context for Session methods that have no caller context.
func bg() context.Context { return context.Background() }

// Info implements Session.
func (c *Client) Info() (ctlplane.Info, error) {
	var out ctlplane.Info
	err := c.call(bg(), wireproto.TInfo, nil, &out)
	return out, err
}

// Register implements Session.
func (c *Client) Register(ctx context.Context, imageID string, at time.Time) (core.RegisterReport, error) {
	var out core.RegisterReport
	err := c.call(ctx, wireproto.TRegister, ctlplane.RegisterArgs{Image: imageID, At: at}, &out)
	return out, err
}

// Boot implements Session.
func (c *Client) Boot(ctx context.Context, req core.BootRequest) (core.BootReport, error) {
	var out core.BootReport
	err := c.call(ctx, wireproto.TBoot, req, &out)
	return out, err
}

// SyncNode implements Session.
func (c *Client) SyncNode(ctx context.Context, nodeID string) (core.SyncReport, error) {
	var out core.SyncReport
	err := c.call(ctx, wireproto.TSync, ctlplane.NodeArgs{Node: nodeID}, &out)
	return out, err
}

// SetOnline implements Session.
func (c *Client) SetOnline(nodeID string, up bool) error {
	return c.call(bg(), wireproto.TSetOnline, ctlplane.OnlineArgs{Node: nodeID, Up: up}, nil)
}

// DropReplica implements Session.
func (c *Client) DropReplica(nodeID, imageID string) error {
	return c.call(bg(), wireproto.TDropReplica, ctlplane.DropArgs{Node: nodeID, Image: imageID}, nil)
}

// CrashNode implements Session.
func (c *Client) CrashNode(nodeID string, at time.Time) error {
	return c.call(bg(), wireproto.TCrash, ctlplane.NodeAtArgs{Node: nodeID, At: at}, nil)
}

// RestartNode implements Session.
func (c *Client) RestartNode(nodeID string, at time.Time) (core.RecoveryReport, error) {
	var out core.RecoveryReport
	err := c.call(bg(), wireproto.TRestart, ctlplane.NodeAtArgs{Node: nodeID, At: at}, &out)
	return out, err
}

// InjectRot implements Session.
func (c *Client) InjectRot(nodeID string) (int, error) {
	var out ctlplane.RotReply
	err := c.call(bg(), wireproto.TRot, ctlplane.NodeArgs{Node: nodeID}, &out)
	return out.Blocks, err
}

// SetFaults implements Session.
func (c *Client) SetFaults(plan fault.Plan) error {
	return c.call(bg(), wireproto.TSetFaults, plan, nil)
}

// ScrubAll implements Session.
func (c *Client) ScrubAll(ctx context.Context, at time.Time) (map[string]zvol.ScrubReport, error) {
	var out map[string]zvol.ScrubReport
	err := c.call(ctx, wireproto.TScrubAll, ctlplane.AtArgs{At: at}, &out)
	return out, err
}

// ResilverAll implements Session.
func (c *Client) ResilverAll(ctx context.Context, at time.Time) ([]core.ResilverReport, error) {
	var out []core.ResilverReport
	err := c.call(ctx, wireproto.TResilverAll, ctlplane.AtArgs{At: at}, &out)
	return out, err
}

// GarbageCollect implements Session.
func (c *Client) GarbageCollect(at time.Time) (int, error) {
	var out ctlplane.CountReply
	err := c.call(bg(), wireproto.TGC, ctlplane.AtArgs{At: at}, &out)
	return out.N, err
}

// Stats implements Session.
func (c *Client) Stats() (core.DeploymentStats, error) {
	var out core.DeploymentStats
	err := c.call(bg(), wireproto.TStats, nil, &out)
	return out, err
}

// Health implements Session.
func (c *Client) Health() ([]core.NodeStatus, error) {
	var out []core.NodeStatus
	err := c.call(bg(), wireproto.THealth, nil, &out)
	return out, err
}

// PeerCounters implements Session.
func (c *Client) PeerCounters() (string, error) {
	var out ctlplane.PeersReply
	err := c.call(bg(), wireproto.TPeers, nil, &out)
	return out.Counters, err
}

// Telemetry implements Session.
func (c *Client) Telemetry() (ctlplane.TelemetryDump, error) {
	var out ctlplane.TelemetryDump
	err := c.call(bg(), wireproto.TTelemetry, nil, &out)
	return out, err
}

// TraceSlowest implements Session.
func (c *Client) TraceSlowest(kind string) (string, error) {
	var out ctlplane.TextReply
	err := c.call(bg(), wireproto.TTrace, ctlplane.TraceArgs{Kind: kind}, &out)
	return out.Text, err
}

// Workload implements Session: the scenario runs on the daemon, next to
// the deployment; only the args and the fixed-size summary cross the
// wire.
func (c *Client) Workload(ctx context.Context, args ctlplane.WorkloadArgs) (workload.Summary, error) {
	if c.ver < 2 {
		return workload.Summary{}, fmt.Errorf("wireclient: workload needs protocol v2; this connection negotiated v%d", c.ver)
	}
	var out workload.Summary
	err := c.call(ctx, wireproto.TWorkload, args, &out)
	return out, err
}

// ResetNetCounters implements Session.
func (c *Client) ResetNetCounters() error {
	return c.call(bg(), wireproto.TNetReset, nil, nil)
}

// ComputeRx implements Session.
func (c *Client) ComputeRx() (int64, error) {
	var out ctlplane.BytesReply
	err := c.call(bg(), wireproto.TNetRx, nil, &out)
	return out.Bytes, err
}

// Watch implements Session: it opens a TWatch stream and invokes fn for
// every WatchUpdate element until the daemon's final frame, fn errors,
// or ctx is cancelled. On early exit the remaining stream frames are
// drained in the background so the shared read loop never stalls.
func (c *Client) Watch(ctx context.Context, args ctlplane.WatchArgs, fn func(ctlplane.WatchUpdate) error) error {
	if args.Count < 1 {
		return fmt.Errorf("wireclient: watch needs Count >= 1")
	}
	if c.ver < 2 {
		return fmt.Errorf("wireclient: watch needs protocol v2; this connection negotiated v%d", c.ver)
	}
	sp := c.rpcSpan(wireproto.TWatch)
	err := c.watchStream(ctx, sp, args, fn)
	sp.Fail(err)
	sp.Finish()
	return err
}

func (c *Client) watchStream(ctx context.Context, sp *obs.Span, args ctlplane.WatchArgs, fn func(ctlplane.WatchUpdate) error) error {
	payload, err := json.Marshal(args)
	if err != nil {
		return fmt.Errorf("wireclient: encode request: %w", err)
	}
	id, ch, err := c.register(16)
	if err != nil {
		return err
	}
	f := wireproto.Frame{Type: wireproto.TWatch, ReqID: id, Payload: payload}
	c.stamp(&f, sp)
	if err := c.writeRequest(f); err != nil {
		return err
	}
	// abandon hands the rest of the stream to a background drainer: the
	// pending entry stays registered (the read loop still needs a live
	// consumer) until the final non-stream frame — or connection death —
	// unregisters it.
	abandon := func() {
		go func() {
			for f := range ch {
				if !f.IsStream() {
					return
				}
			}
		}()
	}
	for {
		select {
		case f, ok := <-ch:
			if !ok {
				c.mu.Lock()
				err := c.err
				c.mu.Unlock()
				if err == nil {
					err = ErrClosed
				}
				return err
			}
			if f.IsError() {
				code, msg, derr := wireproto.DecodeError(f.Payload)
				if derr != nil {
					return fmt.Errorf("wireclient: undecodable error frame: %w", derr)
				}
				return ctlplane.ErrFromCode(code, msg)
			}
			if !f.IsStream() {
				// Final frame: the stream completed.
				return nil
			}
			var u ctlplane.WatchUpdate
			if err := json.Unmarshal(f.Payload, &u); err != nil {
				abandon()
				return fmt.Errorf("wireclient: decode watch update: %w", err)
			}
			sp.Annotate("updates", 1)
			if err := fn(u); err != nil {
				abandon()
				return err
			}
		case <-ctx.Done():
			abandon()
			return ctx.Err()
		}
	}
}

// TraceMerged renders one trace tree spanning both processes for the
// slowest (or first failed) operation of the given kind in this
// session: the client-side ctl.session root with its dial attempts, the
// rpc.call span that issued the operation, and — grafted under it by
// span ID — the daemon's rpc.dispatch tree with the core operation's
// own span lanes. Needs Options.Obs and a protocol ≥ 2 connection.
func (c *Client) TraceMerged(kind string) (string, error) {
	if c.tel == nil || c.session == nil {
		return "", fmt.Errorf("wireclient: client-side tracing disabled (set Options.Obs)")
	}
	if c.ver < 2 {
		return "", fmt.Errorf("wireclient: trace propagation needs protocol v2; this connection negotiated v%d", c.ver)
	}
	var reply ctlplane.TraceTreeReply
	err := c.call(bg(), wireproto.TTraceTree, ctlplane.TraceTreeArgs{TraceID: c.session.SpanID()}, &reply)
	if err != nil {
		return "", err
	}
	dump := obs.DumpTree(c.session)
	for _, t := range reply.Trees {
		dump.Graft(t)
	}
	// Prune to the interesting branch: the rpc.call whose grafted
	// dispatch tree contains a failed `kind` span, else the one whose
	// `kind` span has the longest wall time. Dial attempts stay — retry
	// history is part of the session's story.
	var bestRPC, bestOp *obs.TreeDump
	for _, ch := range dump.Children {
		if ch.Kind != obs.OpRPC {
			continue
		}
		op := ch.FindKind(kind)
		if op == nil {
			continue
		}
		if op.Err != "" {
			bestRPC, bestOp = ch, op
			break
		}
		if bestOp == nil || op.Wall() > bestOp.Wall() {
			bestRPC, bestOp = ch, op
		}
	}
	if bestRPC == nil {
		return "", fmt.Errorf("wireclient: no completed %q operation in this session's trace", kind)
	}
	pruned := *dump
	pruned.Children = nil
	for _, ch := range dump.Children {
		if ch.Kind == obs.OpDial {
			pruned.Children = append(pruned.Children, ch)
		}
	}
	pruned.Children = append(pruned.Children, bestRPC)
	return obs.RenderDump(&pruned), nil
}
