package block

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSizeValid(t *testing.T) {
	for _, s := range AllSizes {
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	for _, s := range []Size{0, -1, 3, 1000, 1<<20 + 1} {
		if s.Valid() {
			t.Errorf("%d should be invalid", s)
		}
	}
}

func TestSizeString(t *testing.T) {
	cases := map[Size]string{
		Size1K:    "1KB",
		Size64K:   "64KB",
		Size1024K: "1MB",
		Size(512): "512B",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Size(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestHashOfDeterministic(t *testing.T) {
	a := HashOf([]byte("squirrel"))
	b := HashOf([]byte("squirrel"))
	if a != b {
		t.Fatal("same content must hash identically")
	}
	c := HashOf([]byte("squirrel!"))
	if a == c {
		t.Fatal("different content should not collide")
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero(nil) {
		t.Error("empty slice is zero")
	}
	if !IsZero(make([]byte, 4096)) {
		t.Error("zero block not detected")
	}
	b := make([]byte, 4096)
	b[4095] = 1
	if IsZero(b) {
		t.Error("trailing nonzero byte missed")
	}
	b = make([]byte, 17)
	b[0] = 1
	if IsZero(b) {
		t.Error("leading nonzero byte missed")
	}
}

func TestIsZeroQuick(t *testing.T) {
	// Property: IsZero agrees with a naive scan on random slices.
	f := func(data []byte, flip bool) bool {
		if flip && len(data) > 0 {
			data[rand.Intn(len(data))] = 0xFF
		}
		naive := true
		for _, b := range data {
			if b != 0 {
				naive = false
				break
			}
		}
		return IsZero(data) == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChunkerExact(t *testing.T) {
	data := make([]byte, 8*KiB)
	for i := range data {
		data[i] = byte(i)
	}
	c, err := NewChunker(bytes.NewReader(data), Size1K)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	err = c.ForEach(func(ch Chunk) error {
		if ch.Index != n {
			t.Errorf("index %d, want %d", ch.Index, n)
		}
		if len(ch.Data) != KiB {
			t.Errorf("chunk %d has %d bytes", n, len(ch.Data))
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("got %d chunks, want 8", n)
	}
}

func TestChunkerShortTail(t *testing.T) {
	data := make([]byte, 2*KiB+100)
	c, _ := NewChunker(bytes.NewReader(data), Size1K)
	var sizes []int
	if err := c.ForEach(func(ch Chunk) error {
		sizes = append(sizes, len(ch.Data))
		if !ch.Zero {
			t.Error("all-zero chunk not flagged")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []int{KiB, KiB, 100}
	if len(sizes) != len(want) {
		t.Fatalf("got %d chunks, want %d", len(sizes), len(want))
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("chunk %d size %d, want %d", i, sizes[i], want[i])
		}
	}
}

func TestChunkerEmpty(t *testing.T) {
	c, _ := NewChunker(bytes.NewReader(nil), Size4K)
	_, err := c.Next()
	if err != io.EOF {
		t.Fatalf("want EOF on empty stream, got %v", err)
	}
}

func TestChunkerBadSize(t *testing.T) {
	if _, err := NewChunker(bytes.NewReader(nil), 3000); err != ErrBadSize {
		t.Fatalf("want ErrBadSize, got %v", err)
	}
}

func TestChunkerReassembly(t *testing.T) {
	// Property: concatenating chunks reproduces the stream, for random
	// lengths and all block sizes.
	rng := rand.New(rand.NewSource(7))
	for _, size := range []Size{Size1K, Size4K, Size64K} {
		for trial := 0; trial < 5; trial++ {
			n := rng.Intn(300 * KiB)
			data := make([]byte, n)
			rng.Read(data)
			c, _ := NewChunker(bytes.NewReader(data), size)
			var out []byte
			if err := c.ForEach(func(ch Chunk) error {
				out = append(out, ch.Data...)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("size %v len %d: reassembly mismatch", size, n)
			}
		}
	}
}

func TestCountBlocks(t *testing.T) {
	cases := []struct {
		len  int64
		size Size
		want int64
	}{
		{0, Size4K, 0},
		{-5, Size4K, 0},
		{1, Size4K, 1},
		{4096, Size4K, 1},
		{4097, Size4K, 2},
		{1 << 20, Size64K, 16},
	}
	for _, c := range cases {
		if got := CountBlocks(c.len, c.size); got != c.want {
			t.Errorf("CountBlocks(%d,%v)=%d, want %d", c.len, c.size, got, c.want)
		}
	}
}

func BenchmarkIsZero64K(b *testing.B) {
	buf := make([]byte, Size64K)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if !IsZero(buf) {
			b.Fatal("unexpected")
		}
	}
}

func BenchmarkHashOf64K(b *testing.B) {
	buf := make([]byte, Size64K)
	rand.New(rand.NewSource(1)).Read(buf)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		HashOf(buf)
	}
}
