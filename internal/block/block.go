// Package block defines the fundamental block model shared by every layer
// of the Squirrel reproduction: fixed-size content blocks, their
// content-addressed hashes, zero (sparse) block detection, and the set of
// block sizes studied by the paper (1 KB through 1 MB, powers of two).
//
// Squirrel (HPDC'14) follows ZFS in using fixed-size chunking; the paper
// cites Jin & Miller's finding that fixed-size chunking performs on par
// with variable-size chunking for VM images, which keeps this layer simple
// and fast.
package block

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Size is a block size in bytes. The paper sweeps block sizes from 1 KB to
// 1 MB in powers of two; ZFS's default record size is 128 KB and the paper
// settles on 64 KB as the sweet spot for cVolumes.
type Size int

// Standard block sizes, mirroring the horizontal axes of the paper's
// figures.
const (
	KiB = 1024
	MiB = 1024 * KiB

	Size1K    Size = 1 * KiB
	Size2K    Size = 2 * KiB
	Size4K    Size = 4 * KiB
	Size8K    Size = 8 * KiB
	Size16K   Size = 16 * KiB
	Size32K   Size = 32 * KiB
	Size64K   Size = 64 * KiB
	Size128K  Size = 128 * KiB
	Size256K  Size = 256 * KiB
	Size512K  Size = 512 * KiB
	Size1024K Size = 1024 * KiB

	// Default is the block size the paper selects for cVolumes after the
	// evaluation in Sections 2.2 and 4.2.
	Default Size = Size64K
)

// AllSizes lists every block size used in the compression-efficiency
// figures (Figs 2, 3, 4, 12), smallest first.
var AllSizes = []Size{
	Size1K, Size2K, Size4K, Size8K, Size16K, Size32K,
	Size64K, Size128K, Size256K, Size512K, Size1024K,
}

// VolumeSizes lists the block sizes used for the ZFS volume measurements
// (Figs 8, 9, 10), where the paper stops at 4 KB because smaller sizes are
// impractical for a real volume.
var VolumeSizes = []Size{Size4K, Size8K, Size16K, Size32K, Size64K, Size128K}

// Valid reports whether s is a positive power-of-two block size.
func (s Size) Valid() bool {
	return s > 0 && s&(s-1) == 0
}

// String renders the size the way the paper labels its axes ("64KB").
func (s Size) String() string {
	switch {
	case s >= MiB && s%MiB == 0:
		return fmt.Sprintf("%dMB", int(s)/MiB)
	case s >= KiB && s%KiB == 0:
		return fmt.Sprintf("%dKB", int(s)/KiB)
	default:
		return fmt.Sprintf("%dB", int(s))
	}
}

// Hash is the content address of a block. SHA-256 is what ZFS uses for
// dedup-safe checksums; we keep the full 32 bytes so collisions are not a
// practical concern, exactly as in ZFS's verify-free dedup mode.
type Hash [sha256.Size]byte

// HashOf computes the content address of a block's raw (uncompressed)
// payload.
func HashOf(data []byte) Hash {
	return sha256.Sum256(data)
}

// String returns a short hex prefix, enough for logs and debugging.
func (h Hash) String() string {
	return fmt.Sprintf("%x", h[:8])
}

// Uint64 folds the first 8 bytes of the hash into an integer. Handy for
// deterministic sampling and for the store's placement model.
func (h Hash) Uint64() uint64 {
	return binary.BigEndian.Uint64(h[:8])
}

// ZeroHash is the content address of an all-zero block of any size paired
// with IsZero; sparse file systems never store such blocks.
//
// Note: the hash of a zero block depends on its length, so ZeroHash is not
// literally HashOf(zeros); layers must test IsZero before hashing. Keeping
// a sentinel lets maps and traces mark holes explicitly.
var ZeroHash = Hash{}

// IsZero reports whether every byte of the block is zero. Both the paper's
// "nonzero blocks" accounting (Table 1) and ZFS sparse handling depend on
// detecting holes. The scan is O(n) but branch-predictable; it processes
// 8-byte words first.
func IsZero(data []byte) bool {
	n := len(data)
	i := 0
	for ; i+8 <= n; i += 8 {
		if binary.LittleEndian.Uint64(data[i:]) != 0 {
			return false
		}
	}
	for ; i < n; i++ {
		if data[i] != 0 {
			return false
		}
	}
	return true
}
