package block

import (
	"errors"
	"io"
)

// Chunk is one fixed-size unit of a stream: its raw payload, its index in
// the stream, and whether it is a hole (all zero). The final chunk of a
// stream may be shorter than the block size; ZFS likewise stores a short
// tail record.
type Chunk struct {
	Index int64  // 0-based position: byte offset = Index * blockSize
	Data  []byte // raw payload; nil for holes when the source reports them
	Zero  bool   // true if the payload is entirely zero
}

// Chunker splits an io.Reader into fixed-size chunks, detecting zero
// blocks. It reuses an internal buffer, so the Data slice handed to the
// callback is only valid during the call; layers that retain payloads must
// copy (the dedup path hashes and compresses in place, so it never needs
// to).
type Chunker struct {
	r    io.Reader
	size Size
	buf  []byte
	idx  int64
}

// ErrBadSize is returned for non-power-of-two or non-positive block sizes.
var ErrBadSize = errors.New("block: size must be a positive power of two")

// NewChunker returns a chunker over r with the given block size.
func NewChunker(r io.Reader, size Size) (*Chunker, error) {
	if !size.Valid() {
		return nil, ErrBadSize
	}
	return &Chunker{r: r, size: size, buf: make([]byte, size)}, nil
}

// Next returns the next chunk, or io.EOF when the stream is exhausted.
func (c *Chunker) Next() (Chunk, error) {
	n, err := io.ReadFull(c.r, c.buf)
	if n == 0 {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Chunk{}, io.EOF
		}
		return Chunk{}, err
	}
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return Chunk{}, err
	}
	data := c.buf[:n]
	ch := Chunk{Index: c.idx, Data: data, Zero: IsZero(data)}
	c.idx++
	return ch, nil
}

// ForEach drives the chunker to completion, invoking fn for every chunk.
// It stops early and returns fn's error if fn fails.
func (c *Chunker) ForEach(fn func(Chunk) error) error {
	for {
		ch, err := c.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(ch); err != nil {
			return err
		}
	}
}

// CountBlocks returns how many blocks of the given size a stream of length
// streamLen occupies (the last block may be partial).
func CountBlocks(streamLen int64, size Size) int64 {
	if streamLen <= 0 {
		return 0
	}
	return (streamLen + int64(size) - 1) / int64(size)
}
