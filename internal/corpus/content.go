package corpus

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// ---------------------------------------------------------------------------
// Deterministic hashing / RNG primitives. Everything in the corpus derives
// from these, so a Spec is a complete, portable description of the bits.

// mix folds inputs through splitmix64 into one 64-bit value.
func mix(vs ...int64) uint64 {
	var h uint64 = 0x9E3779B97F4A7C15
	for _, v := range vs {
		h ^= uint64(v)
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

func hashString(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

// xorshift is a tiny fast PRNG for bulk content generation.
type xorshift uint64

func newXorshift(seed uint64) xorshift {
	if seed == 0 {
		seed = 0x2545F4914F6CDD1D
	}
	return xorshift(seed)
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// float returns a uniform float64 in [0,1).
func (x *xorshift) float() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}

// ---------------------------------------------------------------------------
// Content pools. A pool is an infinite deterministic byte space addressed
// by (poolID, offset); two images referencing the same pool range see
// identical bytes, which is what deduplicates. Content is generated in
// 4 KB cells of three kinds chosen pseudo-randomly per cell:
//
//	TEXT — repeats one of the pool's 64 motifs (512–2040 B of a printable
//	       alphabet); highly compressible, with cross-cell redundancy when
//	       cells share a motif, so bigger blocks compress better.
//	BIN  — alternating 8-byte runs of random and small-alphabet bytes;
//	       semi-compressible, like executables and libraries.
//	RAND — incompressible (already-compressed payloads, media).

const cellSize = 4096

type poolID uint64

// Pool kinds.
const (
	poolBoot = iota
	poolBase
	poolPkg
	poolUser
)

func poolFor(seed int64, kind int, distro string, release int) poolID {
	return poolID(mix(seed, int64(kind), hashString(distro), int64(release)))
}

func userPool(seed, imageSeed int64) poolID {
	return poolID(mix(seed, int64(poolUser), imageSeed))
}

// cellKind weights: text 55%, bin 30%, rand 15%.
func cellKind(p poolID, cell int64) int {
	u := mix(int64(p), cell, 0x11) % 100
	switch {
	case u < 55:
		return 0 // text
	case u < 85:
		return 1 // bin
	default:
		return 2 // rand
	}
}

const textAlphabet = "etaoin shrdlucmfwypvbgkqjxz,.-()/ETAOIN0123456789=_:\"'\n\tclassName"

// motif returns the pool's motifID-th motif (cached-free: regenerated on
// demand; it is cheap).
func motif(p poolID, motifID uint64, dst []byte) []byte {
	rng := newXorshift(mix(int64(p), int64(motifID), 0x22))
	n := 512 + int(rng.next()%1528)
	dst = dst[:0]
	for len(dst) < n {
		v := rng.next()
		for b := 0; b < 8; b++ {
			dst = append(dst, textAlphabet[byte(v)%64])
			v >>= 8
		}
	}
	return dst[:n]
}

// fillCell writes the 4 KB cell (p, cell) into dst (len(dst)==cellSize).
func fillCell(p poolID, cell int64, dst []byte, scratch *[]byte) {
	switch cellKind(p, cell) {
	case 0: // text
		// Cells in the same 64 KB group share a motif, so blocks larger
		// than a few cells see long-range redundancy (like the repeated
		// structure within one real file), while 1–2 KB blocks barely fit
		// a single motif repeat — this is what makes gzip's ratio fall as
		// block size shrinks (Fig 2).
		motifID := mix(int64(p), cell>>4, 0x33) % 64
		m := motif(p, motifID, (*scratch)[:0])
		*scratch = m
		for i := 0; i < cellSize; {
			i += copy(dst[i:], m)
		}
		// A small unique header keeps cells distinguishable, like file
		// headers and timestamps in real config files.
		hdr := mix(int64(p), cell, 0x44)
		binary.LittleEndian.PutUint64(dst[:8], hdr)
	case 1: // bin
		rng := newXorshift(mix(int64(p), cell, 0x55))
		for i := 0; i+16 <= cellSize; i += 16 {
			v := rng.next()
			binary.LittleEndian.PutUint64(dst[i:], v)
			// Second half of each 16-byte run comes from a 16-symbol
			// alphabet, halving its entropy.
			w := rng.next()
			for b := 0; b < 8; b++ {
				dst[i+8+b] = byte('A' + (w>>(4*uint(b)))&0xF)
			}
		}
	default: // rand
		rng := newXorshift(mix(int64(p), cell, 0x66))
		for i := 0; i+8 <= cellSize; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:], rng.next())
		}
	}
}

// ---------------------------------------------------------------------------
// Segments and image construction.

type segKind uint8

const (
	segPool segKind = iota
	segZero
)

// segment is one extent of an image's recipe. Pool segments may carry an
// edit overlay: deterministic per-image point mutations every editEvery
// bytes on average, modelling per-image customization of shared files.
type segment struct {
	kind    segKind
	off     int64 // file offset of the segment start
	length  int64
	pool    poolID
	poolOff int64
	edits   editSpec
}

type editSpec struct {
	seed  int64 // 0 disables edits
	every int64
}

const editLen = 64

// editAt returns, for edit window w (covering [w*every, (w+1)*every) of
// the segment), the in-segment offset of the edit.
func (e editSpec) editAt(w int64) int64 {
	span := e.every - editLen
	if span <= 0 {
		return w * e.every
	}
	return w*e.every + int64(mix(e.seed, w, 0x77)%uint64(span))
}

// applyEdits overlays the image's point edits onto buf, which holds the
// segment's bytes for [segRelOff, segRelOff+len(buf)).
func (s *segment) applyEdits(buf []byte, segRelOff int64) {
	if s.edits.seed == 0 || s.edits.every <= 0 {
		return
	}
	first := segRelOff / s.edits.every
	last := (segRelOff + int64(len(buf)) + editLen) / s.edits.every
	for w := first - 1; w <= last; w++ {
		if w < 0 || w*s.edits.every >= s.length {
			continue
		}
		p := s.edits.editAt(w)
		rng := newXorshift(mix(s.edits.seed, w, 0x88))
		for i := int64(0); i < editLen; i++ {
			bufIdx := p + i - segRelOff
			if bufIdx >= 0 && bufIdx < int64(len(buf)) {
				buf[bufIdx] = byte(rng.next())
			} else {
				rng.next() // keep the byte stream aligned
			}
		}
	}
}

// alignUp rounds n up to a multiple of cellSize.
func alignUp(n int64) int64 {
	return (n + cellSize - 1) / cellSize * cellSize
}

// alignTo rounds n up to a multiple of a (a power of two ≥ cellSize).
func alignTo(n, a int64) int64 {
	if a < cellSize {
		a = cellSize
	}
	return (n + a - 1) &^ (a - 1)
}

// buildImage constructs the recipe for image index idx of the given
// distro release.
func buildImage(spec Spec, distro string, release int, idx int) *Image {
	imgSeed := int64(mix(spec.Seed, hashString(distro), int64(idx), 0x99))
	im := &Image{
		ID:      fmt.Sprintf("%s-r%d-%04d", distro, release, idx),
		Distro:  distro,
		Release: release,
		seed:    imgSeed,
	}
	rng := newXorshift(uint64(imgSeed))

	// Per-image size variation: ±30% around the spec mean.
	nonzero := int64(float64(spec.ImageNonzero) * (0.7 + 0.6*rng.float()))
	cacheLen := alignUp(int64(float64(nonzero) * spec.CacheFrac))
	if cacheLen < 2*spec.CacheAlign {
		cacheLen = 2 * spec.CacheAlign
	}
	// The boot region is rounded to the CoR granularity: distribution
	// kernels and init binaries are large contiguous files, so the shared
	// prefix tiles whole cache blocks and deduplicates across images of
	// one release even when their total cache sizes differ.
	bootLen := alignTo(int64(float64(cacheLen)*0.75), spec.CacheAlign)
	uniqBootLen := alignUp(int64(float64(cacheLen) * 0.05))
	baseLen := alignUp(int64(float64(nonzero) * spec.BaseFrac))
	pkgLen := alignUp(int64(float64(nonzero) * spec.PkgFrac))
	userLen := alignUp(nonzero - bootLen - uniqBootLen - baseLen - pkgLen)
	if userLen < cellSize {
		userLen = cellSize
	}

	misaligned := rng.float() < spec.MisalignFrac
	im.misaligned = misaligned
	bootPool := poolFor(spec.Seed, poolBoot, distro, release)
	basePool := poolFor(spec.Seed, poolBase, distro, release)
	uPool := userPool(spec.Seed, imgSeed)

	var segs []segment
	var off int64
	add := func(s segment) {
		s.off = off
		off += s.length
		segs = append(segs, s)
	}
	// Misaligned images get a sub-4K slip of unique bytes ahead of all
	// shared content, so their shared blocks sit at shifted file offsets.
	var userOff int64
	var phase int64
	if misaligned {
		slip := int64(512 * (1 + rng.next()%7)) // 512..3584, never 4K-aligned
		add(segment{kind: segPool, length: slip, pool: uPool, poolOff: userOff})
		userOff += slip
		phase = slip & (spec.CacheAlign - 1)
	}
	// pad inserts a zero filler (file-system free space) so the next
	// segment starts CacheAlign-aligned (plus the misalignment phase).
	pad := func() {
		if rem := (off - phase) & (spec.CacheAlign - 1); rem != 0 {
			add(segment{kind: segZero, length: spec.CacheAlign - rem})
		}
	}
	// The boot region is split into chunks interleaved with OS-base
	// content: boot files (kernel, initrd, init binaries, service
	// configs) are scattered across a real image's file system, which is
	// what makes booting from the base VMI seek-heavy while a compact
	// warm cache reads almost sequentially (Fig 11's baseline gap; cf.
	// VMTorrent's block-placement figure cited in §4.2.3).
	nChunks := int(bootLen / (4 * spec.CacheAlign))
	if nChunks < 1 {
		nChunks = 1
	}
	if nChunks > 12 {
		nChunks = 12
	}
	chunkLen := alignTo(bootLen/int64(nChunks), spec.CacheAlign)
	basePiece := alignUp(baseLen / int64(nChunks))
	var bootExts []extentRef
	var bootOff, baseOff int64
	for k := 0; bootOff < bootLen; k++ {
		l := chunkLen
		if bootOff+l > bootLen {
			l = bootLen - bootOff
		}
		pad()
		bootExts = append(bootExts, extentRef{Off: off, Len: l})
		// Shared boot pool, very sparse edits (kernels and init binaries
		// rarely differ across images of one release).
		add(segment{kind: segPool, length: l, pool: bootPool, poolOff: bootOff,
			edits: editSpec{seed: imgSeed + 1 + int64(k)<<8, every: spec.EditEvery * 16}})
		bootOff += l
		if bl := min64(basePiece, baseLen-baseOff); bl > 0 {
			// OS base: shared per release, normally edited.
			add(segment{kind: segPool, length: bl, pool: basePool, poolOff: baseOff,
				edits: editSpec{seed: imgSeed + 2 + int64(k)<<8, every: spec.EditEvery}})
			baseOff += bl
		}
	}
	// Early-boot per-image configuration (hostname, keys, fstab).
	pad()
	uniqExt := extentRef{Off: off, Len: uniqBootLen}
	add(segment{kind: segPool, length: uniqBootLen, pool: uPool, poolOff: userOff})
	userOff += uniqBootLen
	// Rest of the OS base, if the interleave did not consume it.
	if rem := baseLen - baseOff; rem > 0 {
		add(segment{kind: segPool, length: rem, pool: basePool, poolOff: baseOff,
			edits: editSpec{seed: imgSeed + 2, every: spec.EditEvery}})
	}
	// Packages: Zipf-popular picks from the distro's package catalog.
	pkgPool := poolFor(spec.Seed, poolPkg, distro, 0) // catalog shared across releases
	var got int64
	for got < pkgLen {
		rank := pickZipf(rng.float(), pkgCatalogSize)
		ext := pkgExtent(pkgPool, rank)
		l := ext.Len
		if got+l > pkgLen {
			l = pkgLen - got
		}
		add(segment{kind: segPool, length: l, pool: pkgPool, poolOff: ext.Off,
			edits: editSpec{seed: imgSeed + 3 + got, every: spec.EditEvery * 2}})
		got += l
	}
	// Unique user data.
	add(segment{kind: segPool, length: userLen, pool: uPool, poolOff: userOff})
	// Sparse tail.
	zeroLen := alignUp(int64(float64(nonzero) * (spec.SparseFactor - 1)))
	if zeroLen > 0 {
		add(segment{kind: segZero, length: zeroLen})
	}

	im.recipe = segs
	im.rawSize = off
	im.nonzero = off - zeroLen
	im.cacheExt, im.trace = buildCacheExtents(spec, im, rng, bootExts, uniqExt, cacheLen)
	return im
}

// min64 returns the smaller of two int64s.
func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// pkgCatalogSize is the number of distinct packages per distro catalog.
const pkgCatalogSize = 512

// pkgExtent returns the pool range of package rank in a catalog: packages
// are laid out back to back with per-package sizes of 16 KB – 512 KB.
func pkgExtent(p poolID, rank int) extentRef {
	var off int64
	var l int64
	for r := 0; r <= rank; r++ {
		l = int64(16<<10) + int64(mix(int64(p), int64(r), 0xAA)%uint64(496<<10))
		l = alignUp(l)
		if r < rank {
			off += l
		}
	}
	return extentRef{Off: off, Len: l}
}

// pickZipf maps a uniform u to a rank in [0, n) with quadratic skew
// toward popular (low) ranks — a cheap Zipf-like popularity model.
func pickZipf(u float64, n int) int {
	r := int(float64(n) * u * u)
	if r >= n {
		r = n - 1
	}
	return r
}

// buildCacheExtents derives the boot working set and the boot read
// trace. Raw boot reads cover the whole boot region and early-boot
// config plus a scattering of base and package reads (init scripts,
// shared libraries, service binaries). Because the first boot populates
// the cache by copy-on-read at QCOW2 cluster granularity, the cache
// itself is the cluster-aligned, merged superset of those reads — which
// is also what guarantees warm boots never leave the cache.
//
// The returned trace is in issue order: mostly ascending with
// deterministic swaps, like a real boot's partially parallel service
// startup. The trace exactly tiles the cache extents.
func buildCacheExtents(spec Spec, im *Image, rng xorshift, bootExts []extentRef, uniqExt extentRef, cacheLen int64) (cache, trace []extentRef) {
	align := spec.CacheAlign
	raw := append([]extentRef{}, bootExts...)
	raw = append(raw, uniqExt)
	var bootTotal int64
	for _, e := range bootExts {
		bootTotal += e.Len
	}
	// Sampled reads from base and packages (≈20% of the cache), drawn
	// from the content after the boot region so the cache stream keeps
	// its shared boot-pool prefix (fetch order is boot order, which is
	// the same across images of a release).
	sampled := cacheLen - bootTotal - uniqExt.Len
	sampleStart := uniqExt.Off + uniqExt.Len
	region := im.nonzero - sampleStart
	r := rng // copy; deterministic continuation
	for got := int64(0); got < sampled && region > align; {
		l := int64(16<<10) + int64(r.next()%uint64(48<<10))
		if got+l > sampled {
			l = sampled - got
		}
		// Popularity-biased offsets (u³ skew): boots of different images
		// touch largely the same init scripts and shared libraries, so
		// sampled reads cluster at the popular low offsets.
		u := r.float()
		off := sampleStart + int64(u*u*u*float64(region))
		if off+l > sampleStart+region {
			off = sampleStart + region - l
		}
		raw = append(raw, extentRef{Off: off, Len: l})
		got += l
	}
	// Round every read out to the CoR granularity, clip to the nonzero
	// content, and merge overlaps into a disjoint sorted set.
	for i, e := range raw {
		lo := e.Off &^ (align - 1)
		hi := (e.Off + e.Len + align - 1) &^ (align - 1)
		if hi > im.nonzero {
			hi = im.nonzero
		}
		raw[i] = extentRef{Off: lo, Len: hi - lo}
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i].Off < raw[j].Off })
	for _, e := range raw {
		if e.Len <= 0 {
			continue
		}
		if n := len(cache); n > 0 && cache[n-1].Off+cache[n-1].Len >= e.Off {
			if end := e.Off + e.Len; end > cache[n-1].Off+cache[n-1].Len {
				cache[n-1].Len = end - cache[n-1].Off
			}
			continue
		}
		cache = append(cache, e)
	}
	// Trace: tile the cache extents with 16–64 KB reads (clipped to the
	// CoR granularity when it is finer), then partially shuffle.
	for _, e := range cache {
		pos := e.Off
		for pos < e.Off+e.Len {
			l := int64(16<<10) + int64(r.next()%uint64(48<<10))
			if l > align*16 {
				l = align * 16
			}
			if rem := e.Off + e.Len - pos; l > rem {
				l = rem
			}
			trace = append(trace, extentRef{Off: pos, Len: l})
			pos += l
		}
	}
	for i := 0; i+1 < len(trace); i += 2 {
		if r.next()%4 == 0 {
			trace[i], trace[i+1] = trace[i+1], trace[i]
		}
	}
	return cache, trace
}
