package corpus

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/block"
)

// Generator reads image content. It is cheap to create and carries a
// one-cell cache plus scratch buffers, so it is not safe for concurrent
// use; create one per goroutine.
type Generator struct {
	img     *Image
	cell    []byte // cached generated cell
	cellKey struct {
		pool poolID
		idx  int64
	}
	scratch []byte
}

// NewGenerator returns a content generator for img.
func NewGenerator(img *Image) *Generator {
	g := &Generator{img: img, cell: make([]byte, cellSize), scratch: make([]byte, 0, 2048)}
	g.cellKey.idx = -1
	return g
}

// findSegment locates the segment containing file offset off.
func (g *Generator) findSegment(off int64) int {
	segs := g.img.recipe
	return sort.Search(len(segs), func(i int) bool {
		return segs[i].off+segs[i].length > off
	})
}

// ReadAt fills p with image content starting at off. Reads past the end
// of the image return io.EOF after the available bytes.
func (g *Generator) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("corpus: negative offset %d", off)
	}
	total := 0
	for len(p) > 0 && off < g.img.rawSize {
		i := g.findSegment(off)
		seg := &g.img.recipe[i]
		segRel := off - seg.off
		n := int64(len(p))
		if rem := seg.length - segRel; n > rem {
			n = rem
		}
		if seg.kind == segZero {
			for j := int64(0); j < n; j++ {
				p[j] = 0
			}
		} else {
			g.fillPoolRange(seg, p[:n], segRel)
		}
		p = p[n:]
		off += n
		total += int(n)
	}
	if len(p) > 0 {
		return total, io.EOF
	}
	return total, nil
}

// fillPoolRange fills buf with seg's pool bytes for segment-relative
// range [segRel, segRel+len(buf)), then applies the image's edit overlay.
func (g *Generator) fillPoolRange(seg *segment, buf []byte, segRel int64) {
	poolOff := seg.poolOff + segRel
	filled := 0
	for filled < len(buf) {
		cellIdx := (poolOff + int64(filled)) / cellSize
		cellRel := (poolOff + int64(filled)) % cellSize
		if g.cellKey.pool != seg.pool || g.cellKey.idx != cellIdx {
			fillCell(seg.pool, cellIdx, g.cell, &g.scratch)
			g.cellKey.pool = seg.pool
			g.cellKey.idx = cellIdx
		}
		filled += copy(buf[filled:], g.cell[cellRel:])
	}
	seg.applyEdits(buf, segRel)
}

// ReadAtFunc returns a goroutine-safe ReadAt over the image's raw
// content: each concurrent caller draws its own Generator from a pool.
// This is the content function to hand long-lived shared readers like
// the PFS, which serves simultaneous boots of the same image.
func (im *Image) ReadAtFunc() func(p []byte, off int64) (int, error) {
	pool := sync.Pool{New: func() any { return NewGenerator(im) }}
	return func(p []byte, off int64) (int, error) {
		g := pool.Get().(*Generator)
		n, err := g.ReadAt(p, off)
		pool.Put(g)
		return n, err
	}
}

// Reader returns an io.Reader over the image's full raw content
// (including the sparse tail), suitable for zvol.WriteObject.
func (im *Image) Reader() io.Reader {
	return &imageReader{g: NewGenerator(im), limit: im.rawSize}
}

// NonzeroReader returns a reader over only the nonzero prefix of the
// image (everything before the sparse tail).
func (im *Image) NonzeroReader() io.Reader {
	return &imageReader{g: NewGenerator(im), limit: im.nonzero}
}

type imageReader struct {
	g     *Generator
	off   int64
	limit int64
}

func (r *imageReader) Read(p []byte) (int, error) {
	if r.off >= r.limit {
		return 0, io.EOF
	}
	if max := r.limit - r.off; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := r.g.ReadAt(p, r.off)
	r.off += int64(n)
	if err == io.EOF && r.off < r.limit {
		err = fmt.Errorf("corpus: short image %s at %d", r.g.img.ID, r.off)
	}
	if err == io.EOF {
		err = nil
	}
	return n, err
}

// CacheReader returns a reader over the image's boot working set: the
// concatenation of its boot-trace extents sorted by offset (the layout a
// copy-on-read cache ends up with).
func (im *Image) CacheReader() io.Reader {
	exts := im.CacheExtentsSorted()
	return &cacheReader{g: NewGenerator(im), exts: exts}
}

type cacheReader struct {
	g    *Generator
	exts []extentRef
	i    int
	rel  int64
}

func (r *cacheReader) Read(p []byte) (int, error) {
	for r.i < len(r.exts) {
		e := r.exts[r.i]
		if r.rel >= e.Len {
			r.i++
			r.rel = 0
			continue
		}
		n := int64(len(p))
		if rem := e.Len - r.rel; n > rem {
			n = rem
		}
		read, err := r.g.ReadAt(p[:n], e.Off+r.rel)
		r.rel += int64(read)
		if err != nil && err != io.EOF {
			return read, err
		}
		return read, nil
	}
	return 0, io.EOF
}

// BootTrace returns the image's boot-time reads in issue order: offsets
// and lengths within the image. The boot simulator replays this trace.
func (im *Image) BootTrace() []Extent {
	out := make([]Extent, len(im.cacheExt))
	for i, e := range im.cacheExt {
		out[i] = Extent{Off: e.Off, Len: e.Len}
	}
	return out
}

// CacheExtentsSorted returns the boot working set extents sorted by
// offset (cache layout order rather than read order).
func (im *Image) CacheExtentsSorted() []extentRef {
	exts := make([]extentRef, len(im.cacheExt))
	copy(exts, im.cacheExt)
	sort.Slice(exts, func(i, j int) bool { return exts[i].Off < exts[j].Off })
	return exts
}

// Extent is a public (offset, length) pair within an image.
type Extent struct {
	Off, Len int64
}

// Blocks iterates the image's full content in blocks of size bs, calling
// fn(index, data, zero). Blocks entirely inside zero segments are
// reported with nil data and zero=true without generating bytes, which
// makes sweeping the 11.7× sparse tail nearly free. fn's data slice is
// reused across calls.
func (im *Image) Blocks(bs block.Size, fn func(idx int64, data []byte, zero bool) error) error {
	g := NewGenerator(im)
	buf := make([]byte, bs)
	n := block.CountBlocks(im.rawSize, bs)
	for idx := int64(0); idx < n; idx++ {
		off := idx * int64(bs)
		l := int64(bs)
		if off+l > im.rawSize {
			l = im.rawSize - off
		}
		if im.rangeIsZero(off, l) {
			if err := fn(idx, nil, true); err != nil {
				return err
			}
			continue
		}
		if _, err := g.ReadAt(buf[:l], off); err != nil && err != io.EOF {
			return err
		}
		if err := fn(idx, buf[:l], block.IsZero(buf[:l])); err != nil {
			return err
		}
	}
	return nil
}

// CacheBlocks iterates the image's boot working set (cache layout order)
// in blocks of size bs.
func (im *Image) CacheBlocks(bs block.Size, fn func(idx int64, data []byte, zero bool) error) error {
	r := im.CacheReader()
	ch, err := block.NewChunker(r, bs)
	if err != nil {
		return err
	}
	return ch.ForEach(func(c block.Chunk) error {
		return fn(c.Index, c.Data, c.Zero)
	})
}

// rangeIsZero reports whether [off, off+l) lies entirely within zero
// segments.
func (im *Image) rangeIsZero(off, l int64) bool {
	segs := im.recipe
	i := sort.Search(len(segs), func(i int) bool {
		return segs[i].off+segs[i].length > off
	})
	for ; i < len(segs) && l > 0; i++ {
		if segs[i].kind != segZero {
			return false
		}
		covered := segs[i].off + segs[i].length - off
		off += covered
		l -= covered
	}
	return l <= 0
}
