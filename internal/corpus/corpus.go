// Package corpus generates the synthetic VM image repository that stands
// in for the 607 Windows Azure community images the paper evaluates
// (16.4 TB raw). Real image bits cannot be shipped, so the corpus is a
// deterministic, seeded generative model reproducing the *structure* the
// paper's findings rest on:
//
//   - Images are user customizations of a few OS distributions (Table 2
//     mix: Ubuntu 579, RHEL/CentOS 17, SUSE 5, Debian 3, unidentified 3).
//   - Each image = boot region (shared per distro release) + OS base
//     (shared per release, with per-image point edits) + packages (drawn
//     from shared pools with Zipf popularity) + unique user data + a large
//     sparse region.
//   - The boot working set (the VMI cache) is dominated by the shared boot
//     region, so caches exhibit the high cross-similarity of §4.3.1, while
//     whole images are diluted by user data and packages.
//   - Per-image point edits inside shared regions make deduplication
//     improve as block size shrinks (small diffs no longer poison whole
//     blocks), and a misaligned minority of images reproduces the
//     alignment effect — the two mechanisms §2.2 cites for the dedup
//     trend.
//   - Content cells mix text-like (motif-repeating, highly compressible),
//     semi-compressible binary, and incompressible data, so real
//     compressors show the paper's falling ratio at small block sizes.
//
// Everything is derived from Spec.Seed with splitmix64 hashing: the same
// spec always yields byte-identical images on any machine.
package corpus

import (
	"fmt"
	"sort"
)

// DistroSpec describes one OS distribution in the dataset.
type DistroSpec struct {
	Name     string
	Count    int // images of this distro (Table 2)
	Releases int // distinct releases; images of one release share pools
}

// AzureDistros is the community-image mix of Windows Azure in November
// 2013 (Table 2 of the paper).
func AzureDistros() []DistroSpec {
	return []DistroSpec{
		{Name: "ubuntu", Count: 579, Releases: 8},
		{Name: "rhel-centos", Count: 17, Releases: 4},
		{Name: "suse", Count: 5, Releases: 2},
		{Name: "debian", Count: 3, Releases: 2},
		{Name: "unidentified", Count: 3, Releases: 3},
	}
}

// EC2Distros is the Amazon EC2 column of Table 2 (all regions combined,
// October 2013), used by the corpusgen tool to print the comparison table.
func EC2Distros() []DistroSpec {
	return []DistroSpec{
		{Name: "ubuntu", Count: 5720, Releases: 10},
		{Name: "rhel-centos", Count: 847, Releases: 6},
		{Name: "suse", Count: 8, Releases: 2},
		{Name: "debian", Count: 30, Releases: 3},
		{Name: "windows", Count: 531, Releases: 4},
		{Name: "unidentified", Count: 2654, Releases: 12},
	}
}

// Spec parameterizes a corpus. All sizes are logical bytes.
type Spec struct {
	Seed int64

	Distros []DistroSpec // defaults to AzureDistros()

	// ImageNonzero is the mean nonzero content per image. The paper's
	// dataset averages ≈2.4 GB nonzero per image (1.4 TB / 607); the
	// default here is scaled down so experiments run on one machine.
	ImageNonzero int64
	// SparseFactor is raw/nonzero. The paper's 16.4 TB raw over 1.4 TB
	// nonzero gives ≈11.7.
	SparseFactor float64
	// CacheFrac is the boot working set as a fraction of nonzero content.
	// The paper's 78.5 GB of caches over 1.4 TB nonzero gives ≈5.6%.
	CacheFrac float64

	// BaseFrac and PkgFrac split the nonzero content (after the boot
	// region) between the shared OS base, shared packages, and unique
	// user data (the remainder).
	BaseFrac, PkgFrac float64

	// EditEvery is the mean distance in bytes between per-image point
	// edits inside shared regions; smaller means more divergence and a
	// stronger small-block dedup advantage.
	EditEvery int64
	// MisalignFrac is the fraction of images whose shared segments are
	// placed with a sub-4K offset slip, defeating dedup at large block
	// sizes (alignment effect).
	MisalignFrac float64

	// CacheAlign is the granularity at which copy-on-read populates the
	// VMI cache: the QCOW2 cluster size (64 KB in the paper). Cache
	// extents are rounded out to this boundary, making the cache a
	// superset of the raw boot reads — exactly what a CoR first boot
	// leaves behind.
	CacheAlign int64
}

// DefaultSpec is the full Azure-mix corpus at laptop scale: 607 images,
// ≈6 MB nonzero each (≈3.6 GB of logical content, ≈42 GB "raw").
func DefaultSpec() Spec {
	return Spec{
		Seed:         1402531200, // 2014-06-12, submission-ish
		Distros:      AzureDistros(),
		ImageNonzero: 6 << 20,
		SparseFactor: 11.7,
		CacheFrac:    0.056,
		BaseFrac:     0.30,
		PkgFrac:      0.25,
		EditEvery:    128 << 10,
		MisalignFrac: 0.2,
		CacheAlign:   64 << 10,
	}
}

// TestSpec is a tiny corpus for unit tests: 24 images, 256 KB nonzero.
func TestSpec() Spec {
	s := DefaultSpec()
	s.Distros = []DistroSpec{
		{Name: "ubuntu", Count: 18, Releases: 3},
		{Name: "rhel-centos", Count: 4, Releases: 2},
		{Name: "debian", Count: 2, Releases: 1},
	}
	s.ImageNonzero = 256 << 10
	s.EditEvery = 16 << 10
	s.CacheAlign = 4 << 10 // tiny test caches need fine-grained CoR
	return s
}

// Scale returns a copy of s with image count and image size scaled by the
// given factors (counts are scaled per distro, keeping at least one image
// of each).
func (s Spec) Scale(countFactor, sizeFactor float64) Spec {
	out := s
	out.Distros = make([]DistroSpec, len(s.Distros))
	for i, d := range s.Distros {
		n := int(float64(d.Count)*countFactor + 0.5)
		if n < 1 {
			n = 1
		}
		r := d.Releases
		if r > n {
			r = n
		}
		out.Distros[i] = DistroSpec{Name: d.Name, Count: n, Releases: r}
	}
	out.ImageNonzero = int64(float64(s.ImageNonzero) * sizeFactor)
	return out
}

// Image is one VM image of the corpus: a recipe over content pools, never
// materialized unless read.
type Image struct {
	ID      string
	Distro  string
	Release int

	seed       int64
	misaligned bool // shared content sits at a sub-4K slipped offset
	recipe     []segment
	rawSize    int64 // logical size including the sparse tail
	nonzero    int64
	cacheExt   []extentRef // boot working set: disjoint, sorted, aligned
	trace      []extentRef // boot-time reads in issue order
}

// extentRef is one boot-time read: offset and length within the image.
type extentRef struct {
	Off, Len int64
}

// Repository is a fully constructed corpus.
type Repository struct {
	Spec   Spec
	Images []*Image
}

// New builds the corpus described by spec. Construction touches only
// recipes (cheap); content is generated lazily on read.
func New(spec Spec) (*Repository, error) {
	if spec.Distros == nil {
		spec.Distros = AzureDistros()
	}
	if spec.ImageNonzero <= 0 {
		return nil, fmt.Errorf("corpus: ImageNonzero must be positive")
	}
	if spec.SparseFactor < 1 {
		return nil, fmt.Errorf("corpus: SparseFactor must be >= 1")
	}
	if spec.CacheFrac <= 0 || spec.CacheFrac >= 1 {
		return nil, fmt.Errorf("corpus: CacheFrac must be in (0,1)")
	}
	if spec.BaseFrac+spec.PkgFrac >= 1 {
		return nil, fmt.Errorf("corpus: BaseFrac+PkgFrac must leave room for user data")
	}
	if spec.CacheAlign <= 0 || spec.CacheAlign&(spec.CacheAlign-1) != 0 {
		return nil, fmt.Errorf("corpus: CacheAlign must be a positive power of two")
	}
	r := &Repository{Spec: spec}
	for _, d := range spec.Distros {
		for i := 0; i < d.Count; i++ {
			release := releaseOf(spec.Seed, d, i)
			img := buildImage(spec, d.Name, release, i)
			r.Images = append(r.Images, img)
		}
	}
	sort.Slice(r.Images, func(i, j int) bool { return r.Images[i].ID < r.Images[j].ID })
	return r, nil
}

// releaseOf assigns image i of distro d to a release with a skewed
// (geometric-ish) popularity: newer releases hold more images, like real
// community repositories.
func releaseOf(seed int64, d DistroSpec, i int) int {
	if d.Releases <= 1 {
		return 0
	}
	u := mix(seed, hashString(d.Name), int64(i), 0xAE)
	// Geometric over releases: release k gets weight 2^-(k+1).
	x := float64(u%1000000) / 1000000
	acc, w := 0.0, 0.5
	for k := 0; k < d.Releases-1; k++ {
		acc += w
		if x < acc {
			return k
		}
		w /= 2
	}
	return d.Releases - 1
}

// RawBytes returns the total raw (sparse-inclusive) size of the corpus,
// the paper's "16.4 TB".
func (r *Repository) RawBytes() int64 {
	var n int64
	for _, img := range r.Images {
		n += img.rawSize
	}
	return n
}

// NonzeroBytes returns the total nonzero content, the paper's "1.4 TB".
func (r *Repository) NonzeroBytes() int64 {
	var n int64
	for _, img := range r.Images {
		n += img.nonzero
	}
	return n
}

// CacheBytes returns the total boot-working-set bytes, the paper's
// "78.5 GB".
func (r *Repository) CacheBytes() int64 {
	var n int64
	for _, img := range r.Images {
		n += img.CacheSize()
	}
	return n
}

// ByDistro returns image counts per distro name (Table 2).
func (r *Repository) ByDistro() map[string]int {
	out := map[string]int{}
	for _, img := range r.Images {
		out[img.Distro]++
	}
	return out
}

// RawSize is the image's logical size including the sparse tail.
func (im *Image) RawSize() int64 { return im.rawSize }

// NonzeroSize is the image's nonzero content in bytes.
func (im *Image) NonzeroSize() int64 { return im.nonzero }

// Misaligned reports whether the image places its shared content at a
// sub-4K slipped offset (the alignment-effect minority, §2.2). Misaligned
// images dedup poorly at large block sizes by construction.
func (im *Image) Misaligned() bool { return im.misaligned }

// CacheSize is the size of the image's boot working set in bytes.
func (im *Image) CacheSize() int64 {
	var n int64
	for _, e := range im.cacheExt {
		n += e.Len
	}
	return n
}
