package corpus

import (
	"testing"
)

// TestCacheExtentInvariants checks structural invariants of the boot
// working set for every image of several specs: extents are disjoint,
// sorted, CoR-aligned, within nonzero content, and exactly tiled by the
// boot trace.
func TestCacheExtentInvariants(t *testing.T) {
	specs := map[string]Spec{"test": TestSpec()}
	d := DefaultSpec().Scale(0.02, 0.2)
	specs["scaled-default"] = d

	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			repo, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, im := range repo.Images {
				exts := im.CacheExtentsSorted()
				if len(exts) == 0 {
					t.Fatalf("%s: no cache extents", im.ID)
				}
				var prevEnd int64 = -1
				for i, e := range exts {
					if e.Len <= 0 {
						t.Fatalf("%s: extent %d empty", im.ID, i)
					}
					if e.Off <= prevEnd {
						t.Fatalf("%s: extent %d overlaps or unsorted", im.ID, i)
					}
					if !im.Misaligned() && e.Off%spec.CacheAlign != 0 {
						t.Fatalf("%s: extent %d at %d not CoR-aligned", im.ID, i, e.Off)
					}
					if e.Off+e.Len > im.NonzeroSize() {
						t.Fatalf("%s: extent %d exceeds nonzero content", im.ID, i)
					}
					prevEnd = e.Off + e.Len - 1
				}
				// Trace tiles the extents exactly: same total bytes, every
				// read inside some extent.
				var traceBytes int64
				for _, r := range im.BootTrace() {
					traceBytes += r.Len
					inside := false
					for _, e := range exts {
						if r.Off >= e.Off && r.Off+r.Len <= e.Off+e.Len {
							inside = true
							break
						}
					}
					if !inside {
						t.Fatalf("%s: trace read [%d,%d) outside cache extents", im.ID, r.Off, r.Off+r.Len)
					}
				}
				if traceBytes != im.CacheSize() {
					t.Fatalf("%s: trace %d bytes, cache %d", im.ID, traceBytes, im.CacheSize())
				}
			}
		})
	}
}

// TestBootPoolPrefixShared verifies the mechanism behind cache
// cross-similarity: the cache streams of two aligned same-release images
// share a long common prefix (the boot pool in fetch order).
func TestBootPoolPrefixShared(t *testing.T) {
	spec := DefaultSpec().Scale(0.03, 0.3)
	repo, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	byRelease := map[string][]*Image{}
	for _, im := range repo.Images {
		if !im.Misaligned() {
			key := im.Distro + string(rune('0'+im.Release))
			byRelease[key] = append(byRelease[key], im)
		}
	}
	checked := 0
	for _, ims := range byRelease {
		if len(ims) < 2 {
			continue
		}
		a, b := ims[0], ims[1]
		n := min64(a.CacheSize(), b.CacheSize()) / 2 // well inside the boot prefix
		ba := readN(t, a, n)
		bb := readN(t, b, n)
		same := 0
		for i := range ba {
			if ba[i] == bb[i] {
				same++
			}
		}
		if frac := float64(same) / float64(n); frac < 0.9 {
			t.Fatalf("%s vs %s: cache prefix only %.2f shared", a.ID, b.ID, frac)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no same-release aligned pair at this scale")
	}
}

func readN(t *testing.T, im *Image, n int64) []byte {
	t.Helper()
	buf := make([]byte, n)
	r := im.CacheReader()
	got := 0
	for int64(got) < n {
		k, err := r.Read(buf[got:])
		got += k
		if err != nil {
			t.Fatalf("%s: cache read: %v", im.ID, err)
		}
	}
	return buf
}
