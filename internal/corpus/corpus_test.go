package corpus

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/block"
)

func testRepo(t *testing.T) *Repository {
	t.Helper()
	r, err := New(TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{ImageNonzero: 0, SparseFactor: 2, CacheFrac: 0.1, BaseFrac: 0.3, PkgFrac: 0.2},
		{ImageNonzero: 1 << 20, SparseFactor: 0.5, CacheFrac: 0.1, BaseFrac: 0.3, PkgFrac: 0.2},
		{ImageNonzero: 1 << 20, SparseFactor: 2, CacheFrac: 0, BaseFrac: 0.3, PkgFrac: 0.2},
		{ImageNonzero: 1 << 20, SparseFactor: 2, CacheFrac: 0.1, BaseFrac: 0.6, PkgFrac: 0.5},
	}
	for i, s := range bad {
		if _, err := New(s); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
}

func TestTable2Counts(t *testing.T) {
	r := testRepo(t)
	by := r.ByDistro()
	if by["ubuntu"] != 18 || by["rhel-centos"] != 4 || by["debian"] != 2 {
		t.Fatalf("distro mix wrong: %v", by)
	}
	if len(r.Images) != 24 {
		t.Fatalf("%d images, want 24", len(r.Images))
	}
}

func TestAzureSpecCounts(t *testing.T) {
	total := 0
	for _, d := range AzureDistros() {
		total += d.Count
	}
	if total != 607 {
		t.Fatalf("Azure mix totals %d, want 607 (Table 2)", total)
	}
}

func TestDeterminism(t *testing.T) {
	r1 := testRepo(t)
	r2 := testRepo(t)
	for i := range r1.Images {
		a, b := r1.Images[i], r2.Images[i]
		if a.ID != b.ID || a.rawSize != b.rawSize {
			t.Fatalf("image %d metadata differs", i)
		}
		ba, _ := io.ReadAll(io.LimitReader(a.Reader(), 128<<10))
		bb, _ := io.ReadAll(io.LimitReader(b.Reader(), 128<<10))
		if !bytes.Equal(ba, bb) {
			t.Fatalf("image %s content differs across constructions", a.ID)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	s1 := TestSpec()
	s2 := TestSpec()
	s2.Seed++
	r1, _ := New(s1)
	r2, _ := New(s2)
	a, _ := io.ReadAll(io.LimitReader(r1.Images[0].Reader(), 64<<10))
	b, _ := io.ReadAll(io.LimitReader(r2.Images[0].Reader(), 64<<10))
	if bytes.Equal(a, b) {
		t.Fatal("different seeds should produce different content")
	}
}

func TestSizesConsistent(t *testing.T) {
	r := testRepo(t)
	for _, im := range r.Images {
		if im.RawSize() <= im.NonzeroSize() {
			t.Fatalf("%s: raw %d <= nonzero %d", im.ID, im.RawSize(), im.NonzeroSize())
		}
		ratio := float64(im.RawSize()) / float64(im.NonzeroSize())
		if ratio < 5 || ratio > 20 {
			t.Errorf("%s: sparse factor %.1f far from spec's 11.7", im.ID, ratio)
		}
		cf := float64(im.CacheSize()) / float64(im.NonzeroSize())
		if cf < 0.02 || cf > 0.15 {
			t.Errorf("%s: cache fraction %.3f far from spec's 0.056", im.ID, cf)
		}
	}
	if r.RawBytes() <= r.NonzeroBytes() || r.NonzeroBytes() <= r.CacheBytes() {
		t.Fatal("aggregate size ordering violated")
	}
}

func TestReadAtMatchesReader(t *testing.T) {
	r := testRepo(t)
	im := r.Images[0]
	full, err := io.ReadAll(im.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != im.RawSize() {
		t.Fatalf("reader produced %d bytes, raw size %d", len(full), im.RawSize())
	}
	g := NewGenerator(im)
	for _, probe := range []struct{ off, n int64 }{
		{0, 100}, {4095, 2}, {10000, 8192}, {im.RawSize() - 10, 10},
		{im.nonzero - 100, 200}, // straddles the sparse boundary
	} {
		buf := make([]byte, probe.n)
		if _, err := g.ReadAt(buf, probe.off); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, full[probe.off:probe.off+probe.n]) {
			t.Fatalf("ReadAt(%d,%d) mismatch", probe.off, probe.n)
		}
	}
	// Read past EOF.
	buf := make([]byte, 10)
	n, err := g.ReadAt(buf, im.RawSize()+5)
	if n != 0 || err != io.EOF {
		t.Fatalf("read past end: n=%d err=%v", n, err)
	}
}

func TestSparseTailIsZero(t *testing.T) {
	r := testRepo(t)
	im := r.Images[0]
	g := NewGenerator(im)
	buf := make([]byte, 64<<10)
	if _, err := g.ReadAt(buf, im.nonzero); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !block.IsZero(buf) {
		t.Fatal("sparse tail must read as zeros")
	}
}

func TestCacheIsSubsetOfImage(t *testing.T) {
	r := testRepo(t)
	for _, im := range r.Images[:4] {
		full, _ := io.ReadAll(im.Reader())
		cache, err := io.ReadAll(im.CacheReader())
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(cache)) != im.CacheSize() {
			t.Fatalf("%s: cache read %d bytes, size %d", im.ID, len(cache), im.CacheSize())
		}
		var want []byte
		for _, e := range im.CacheExtentsSorted() {
			want = append(want, full[e.Off:e.Off+e.Len]...)
		}
		if !bytes.Equal(cache, want) {
			t.Fatalf("%s: cache stream != image extents", im.ID)
		}
	}
}

func TestBootTraceCoversCache(t *testing.T) {
	r := testRepo(t)
	for _, im := range r.Images {
		var n int64
		for _, e := range im.BootTrace() {
			if e.Off < 0 || e.Off+e.Len > im.NonzeroSize() {
				t.Fatalf("%s: trace extent [%d,%d) outside nonzero content",
					im.ID, e.Off, e.Off+e.Len)
			}
			n += e.Len
		}
		if n != im.CacheSize() {
			t.Fatalf("%s: trace covers %d bytes, cache is %d", im.ID, n, im.CacheSize())
		}
	}
}

func TestBlocksIteration(t *testing.T) {
	r := testRepo(t)
	im := r.Images[0]
	full, _ := io.ReadAll(im.Reader())
	for _, bs := range []block.Size{block.Size4K, block.Size64K} {
		var reassembled []byte
		err := im.Blocks(bs, func(idx int64, data []byte, zero bool) error {
			off := idx * int64(bs)
			l := int64(bs)
			if off+l > im.RawSize() {
				l = im.RawSize() - off
			}
			if zero && data == nil {
				reassembled = append(reassembled, make([]byte, l)...)
			} else {
				reassembled = append(reassembled, data...)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reassembled, full) {
			t.Fatalf("bs=%v: block iteration != reader content", bs)
		}
	}
}

func TestCacheBlocksMatchCacheReader(t *testing.T) {
	r := testRepo(t)
	im := r.Images[1]
	want, _ := io.ReadAll(im.CacheReader())
	var got []byte
	if err := im.CacheBlocks(block.Size4K, func(idx int64, data []byte, zero bool) error {
		got = append(got, data...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("CacheBlocks != CacheReader")
	}
}

func TestSameReleaseSharesBootRegion(t *testing.T) {
	// Two aligned images of the same distro release must share most boot
	// region content (this is what makes caches cross-similar).
	r := testRepo(t)
	var a, b *Image
	for i, im1 := range r.Images {
		if len(im1.recipe) == 0 || im1.recipe[0].pool != poolFor(r.Spec.Seed, poolBoot, im1.Distro, im1.Release) {
			continue // misaligned image, skip
		}
		for _, im2 := range r.Images[i+1:] {
			if im2.Distro == im1.Distro && im2.Release == im1.Release &&
				len(im2.recipe) > 0 && im2.recipe[0].pool == im1.recipe[0].pool {
				a, b = im1, im2
				break
			}
		}
		if a != nil {
			break
		}
	}
	if a == nil {
		t.Skip("no aligned same-release pair in test corpus")
	}
	n := a.recipe[0].length
	if b.recipe[0].length < n {
		n = b.recipe[0].length
	}
	ba := make([]byte, n)
	bb := make([]byte, n)
	NewGenerator(a).ReadAt(ba, 0)
	NewGenerator(b).ReadAt(bb, 0)
	same := 0
	for i := range ba {
		if ba[i] == bb[i] {
			same++
		}
	}
	if frac := float64(same) / float64(n); frac < 0.95 {
		t.Fatalf("same-release boot regions only %.2f identical", frac)
	}
}

func TestScale(t *testing.T) {
	s := DefaultSpec().Scale(0.1, 0.5)
	total := 0
	for _, d := range s.Distros {
		total += d.Count
		if d.Count < 1 {
			t.Fatal("scaled distro lost all images")
		}
		if d.Releases > d.Count {
			t.Fatal("more releases than images")
		}
	}
	if total >= 607 || total < 55 {
		t.Fatalf("scaled count %d unreasonable", total)
	}
	if s.ImageNonzero != 3<<20 {
		t.Fatalf("scaled size %d", s.ImageNonzero)
	}
}

func BenchmarkGenerate1MB(b *testing.B) {
	r, _ := New(TestSpec())
	im := r.Images[0]
	g := NewGenerator(im)
	buf := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		g.ReadAt(buf, 0)
	}
}
