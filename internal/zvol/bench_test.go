package zvol

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/block"
)

// benchPayload is a mixed compressible/dedupable payload.
func benchPayload(n int) []byte {
	data := mkData(100, n)
	return data
}

func benchVolume(b *testing.B, cfgName string, cfg Config) {
	b.Helper()
	payload := benchPayload(1 << 20)
	b.Run(cfgName+"/write", func(b *testing.B) {
		v, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if _, err := v.WriteObject(fmt.Sprintf("o%d", i), bytes.NewReader(payload)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(cfgName+"/read", func(b *testing.B) {
		v, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.WriteObject("o", bytes.NewReader(payload)); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := v.ReadObject("o"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkVolume(b *testing.B) {
	benchVolume(b, "dedup+gzip6/64K", Config{BlockSize: block.Size64K, Codec: "gzip6", Dedup: true, MinCompressGain: 0.125})
	benchVolume(b, "dedup+lz4/64K", Config{BlockSize: block.Size64K, Codec: "lz4", Dedup: true, MinCompressGain: 0.125})
	benchVolume(b, "dedup-only/64K", Config{BlockSize: block.Size64K, Codec: "null", Dedup: true})
	benchVolume(b, "raw/64K", Config{BlockSize: block.Size64K, Codec: "null", Dedup: false})
	benchVolume(b, "dedup+gzip6/4K", Config{BlockSize: block.Size4K, Codec: "gzip6", Dedup: true, MinCompressGain: 0.125})
}

func BenchmarkSnapshotSendReceive(b *testing.B) {
	src, _ := New(DefaultConfig())
	payload := benchPayload(1 << 20)
	src.WriteObject("base", bytes.NewReader(payload))
	src.Snapshot("s0", time.Unix(0, 0))
	// A similar second object: realistic incremental workload.
	similar := append([]byte(nil), payload...)
	copy(similar[:64<<10], benchPayload(64<<10))
	src.WriteObject("next", bytes.NewReader(similar))
	src.Snapshot("s1", time.Unix(1, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream, err := src.Send("s0", "s1")
		if err != nil {
			b.Fatal(err)
		}
		dst, _ := New(DefaultConfig())
		full, err := src.Send("", "s0")
		if err != nil {
			b.Fatal(err)
		}
		if err := dst.Receive(full); err != nil {
			b.Fatal(err)
		}
		if err := dst.Receive(stream); err != nil {
			b.Fatal(err)
		}
	}
}
