package zvol

import (
	"fmt"

	"repro/internal/block"
)

// PreparedStream is a send stream whose per-payload work — logical
// checksum, compression decision, stored-form bytes, physical checksum —
// has been done once, up front, so the stream can be received by many
// volumes without each receiver redoing it.
//
// This is the bulk-provisioning path behind registration fan-out: without
// it, propagating one image to N compute nodes costs N× sha256 + N× gzip
// over every shipped payload plus N private copies of the stored bytes —
// O(n²)-ish setup work that dominates a 10k-node cluster bring-up. A
// prepared stream pays the CPU once and lets every receiver alias the
// same immutable stored payload via store.AllocShared; per-receiver work
// collapses to DDT/object-table map updates.
//
// The resulting replicas are bit-identical to ones built by plain
// Receive: block pointers carry the same hashes, lengths, compression
// flags, physical checksums, and — because AllocShared uses Alloc's exact
// placement logic — the same disk addresses.
type PreparedStream struct {
	Stream *Stream
	Blocks []PreparedBlock // parallel to Stream.Blocks
}

// PreparedBlock is the precomputed stored form of one shipped payload.
type PreparedBlock struct {
	Hash       block.Hash // logical content hash (drives dedup)
	Payload    []byte     // stored form: compressed iff Compressed; aliased by receivers, never mutated
	LogLen     int32
	Compressed bool
	PhysHash   block.Hash // checksum of Payload (what a scrub verifies)
}

// Prepare hashes and (per the volume's codec and minimum-gain rule)
// compresses every shipped payload of st exactly once. The receiver
// volumes must share this volume's Config — in Squirrel they always do:
// the scVolume and every ccVolume are created from one cfg.Volume.
func (v *Volume) Prepare(st *Stream) *PreparedStream {
	ps := &PreparedStream{Stream: st, Blocks: make([]PreparedBlock, len(st.Blocks))}
	for i, data := range st.Blocks {
		pb := PreparedBlock{Hash: block.HashOf(data), Payload: data, LogLen: int32(len(data))}
		if v.codec.Name() != "null" {
			comp := v.codec.Compress(data)
			gain := 1 - float64(len(comp))/float64(len(data))
			if gain > v.cfg.MinCompressGain {
				pb.Payload = comp
				pb.Compressed = true
			}
		}
		pb.PhysHash = block.HashOf(pb.Payload)
		ps.Blocks[i] = pb
	}
	return ps
}

// ReceivePrepared applies a prepared stream. Semantics are identical to
// Receive(ps.Stream) — same verification guarantees, same journaling and
// crash behaviour, same resulting replica down to disk addresses — but
// shipped payloads are neither re-hashed nor re-compressed, and stored
// bytes are aliased (copy-on-write) rather than copied.
func (v *Volume) ReceivePrepared(ps *PreparedStream) error {
	if ps == nil || ps.Stream == nil {
		return fmt.Errorf("%w: nil prepared stream", ErrBadStream)
	}
	return v.receive(ps.Stream, ps)
}

// writeBlockPrepared stores one nonzero block from its prepared form and
// returns its pointer. Mirrors writeBlock exactly, minus the hash and
// compression work. Caller holds v.mu.
func (v *Volume) writeBlockPrepared(pb *PreparedBlock) blockPtr {
	if v.cfg.Dedup {
		if e := v.ddt.Lookup(pb.Hash); e != nil {
			v.ddt.AddRef(pb.Hash)
			return blockPtr{hash: pb.Hash, addr: e.Addr, physLen: e.PhysLen,
				logLen: pb.LogLen, compressed: e.Compressed, physHash: e.PhysHash}
		}
	}
	addr := v.store.AllocShared(pb.Payload)
	ptr := blockPtr{hash: pb.Hash, addr: addr, physLen: int32(len(pb.Payload)),
		logLen: pb.LogLen, compressed: pb.Compressed, physHash: pb.PhysHash}
	if v.cfg.Dedup {
		v.ddt.Reference(pb.Hash, addr, ptr.physLen, ptr.logLen, pb.Compressed, ptr.physHash)
	}
	return ptr
}
