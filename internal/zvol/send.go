package zvol

import (
	"fmt"
	"time"

	"repro/internal/block"
)

// Stream is an incremental (or full) snapshot send stream, the unit
// Squirrel multicasts from the scVolume to all ccVolumes when a VMI is
// registered (§3.2). A stream carries the object-table delta between two
// snapshots plus the payloads of blocks born in that interval; blocks the
// receiver already holds are referenced by hash only, so a new VMI cache
// with high cross-similarity produces an O(10 MB) diff even when the cache
// itself is O(100 MB) (§5.3).
type Stream struct {
	FromSnap string // "" for a full stream
	ToSnap   string
	Created  time.Time

	// Upserts are objects added (Squirrel caches are immutable, so changes
	// only ever add or remove whole objects).
	Upserts []StreamObject
	// Deletes are object names present in FromSnap but not in ToSnap.
	Deletes []string
	// Blocks carries raw (uncompressed) payloads of new-born blocks keyed
	// implicitly by their position; object records reference them by
	// index. Hash-only references (negative index) denote blocks the
	// receiver is assumed to hold already.
	Blocks [][]byte
}

// StreamObject describes one object in a stream: for each logical block
// either an index into Stream.Blocks (payload shipped) or -1 with a hash
// the receiver must already know, or a hole.
type StreamObject struct {
	Name string
	Size int64
	Ptrs []StreamPtr
}

// StreamPtr is one logical block reference within a StreamObject.
type StreamPtr struct {
	Zero    bool
	LogLen  int32
	Payload int // index into Stream.Blocks, or -1
	Hash    [32]byte
}

// SizeBytes returns the on-wire size of the stream: shipped payloads plus
// a small fixed header per object and per pointer. This is the number
// Squirrel's network accounting charges for registration propagation.
func (st *Stream) SizeBytes() int64 {
	var n int64 = 64 // stream header
	for _, b := range st.Blocks {
		n += int64(len(b))
	}
	for _, o := range st.Upserts {
		n += 64 + int64(len(o.Name)) + int64(len(o.Ptrs))*40
	}
	for _, d := range st.Deletes {
		n += int64(len(d)) + 8
	}
	return n
}

// Send produces a stream that transforms a replica holding fromSnap into
// one holding toSnap. fromSnap may be "" for a full stream (used when a
// compute node has been offline longer than the GC window and must
// re-replicate the entire scVolume, §3.5).
//
// A block payload is shipped iff its hash is not referenced anywhere in
// fromSnap; otherwise the stream carries only the hash. This mirrors ZFS's
// incremental send, which ships blocks born after the origin snapshot.
func (v *Volume) Send(fromSnap, toSnap string) (*Stream, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	to := v.findSnapLocked(toSnap)
	if to == nil {
		return nil, fmt.Errorf("%w: snapshot %s", ErrNotFound, toSnap)
	}
	var fromObjs map[string]*Object
	known := map[[32]byte]bool{}
	if fromSnap != "" {
		from := v.findSnapLocked(fromSnap)
		if from == nil {
			return nil, fmt.Errorf("%w: %s", ErrNotAncestor, fromSnap)
		}
		fromObjs = from.objects
		for _, o := range from.objects {
			for _, p := range o.ptrs {
				if !p.zero {
					known[p.hash] = true
				}
			}
		}
	}
	st := &Stream{FromSnap: fromSnap, ToSnap: toSnap, Created: to.Created}
	shipped := map[[32]byte]int{} // hash → index in st.Blocks
	for name, obj := range to.objects {
		if fromObjs != nil {
			if _, unchanged := fromObjs[name]; unchanged {
				// Objects are immutable; same name ⇒ same content.
				continue
			}
		}
		so := StreamObject{Name: name, Size: obj.Size, Ptrs: make([]StreamPtr, 0, len(obj.ptrs))}
		for _, p := range obj.ptrs {
			sp := StreamPtr{Zero: p.zero, LogLen: p.logLen, Payload: -1}
			if !p.zero {
				sp.Hash = p.hash
				if idx, dup := shipped[p.hash]; dup {
					sp.Payload = idx
				} else if !known[p.hash] {
					data, err := v.readBlockPtr(p)
					if err != nil {
						return nil, fmt.Errorf("zvol: send %s: %w", name, err)
					}
					cp := make([]byte, len(data))
					copy(cp, data)
					st.Blocks = append(st.Blocks, cp)
					idx := len(st.Blocks) - 1
					shipped[p.hash] = idx
					sp.Payload = idx
				}
			}
			so.Ptrs = append(so.Ptrs, sp)
		}
		st.Upserts = append(st.Upserts, so)
	}
	for name := range fromObjs {
		if _, still := to.objects[name]; !still {
			st.Deletes = append(st.Deletes, name)
		}
	}
	return st, nil
}

// Receive applies a stream, creating snapshot st.ToSnap on this volume.
// For an incremental stream the volume must already hold st.FromSnap.
//
// Receive is atomic with respect to errors: the full stream is verified
// — ancestry, payload indexes, per-block content checksums, object sizes,
// and hash-only references resolvable through the local DDT — before the
// replica is mutated, so a corrupted or truncated stream can never leave
// a half-applied ccVolume behind.
//
// The apply itself is journaled against crashes (see journal.go): an
// intent record opens before the first mutation, each staged upsert or
// delete appends its undo record, and releases + snapshot creation form
// one atomic commit that also clears the journal. An injected crash
// (SetReceiveCrashPoint, the torn-apply fault lane) returns ErrTorn with
// the journal open; Recover rolls the volume back to its exact
// pre-receive state. A volume with an open journal refuses further
// receives until recovered.
func (v *Volume) Receive(st *Stream) error { return v.receive(st, nil) }

// receive is the shared apply path behind Receive and ReceivePrepared.
// With ps == nil every shipped payload is hashed and compressed locally;
// with a prepared stream those results are reused and stored payloads are
// aliased into the block store (see prepared.go).
func (v *Volume) receive(st *Stream, ps *PreparedStream) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	// Consume the one-shot crash point whether or not verification
	// passes: the "crash" is armed for this receive attempt only.
	crashAt, armed := v.crashPoint, v.armed
	v.crashPoint, v.armed = 0, false
	if v.journal != nil {
		return ErrNeedsRecovery
	}
	if err := v.verifyStreamLocked(st, ps); err != nil {
		return err
	}
	// Intent record: from here until commit, a crash leaves the journal
	// open for Recover to roll back.
	j := &receiveJournal{fromSnap: st.FromSnap, toSnap: st.ToSnap}
	v.journal = j
	crashed := func() bool { return armed && j.steps >= crashAt }
	if crashed() {
		return ErrTorn
	}
	// Stage the apply. Verification guarantees nothing below can fail.
	// Upserts land before any release, so a hash-only pointer that
	// resolved during verification cannot watch its block vanish when
	// this same stream replaces or deletes the object that held it.
	var release [][]blockPtr
	for _, so := range st.Upserts {
		rec := undoRec{upsert: true, name: so.Name}
		obj := &Object{Name: so.Name, Size: so.Size, ptrs: make([]blockPtr, 0, len(so.Ptrs))}
		for _, sp := range so.Ptrs {
			switch {
			case sp.Zero:
				obj.ptrs = append(obj.ptrs, blockPtr{zero: true, logLen: sp.LogLen})
				v.zeroBytes += int64(sp.LogLen)
				rec.zeros += int64(sp.LogLen)
			case sp.Payload >= 0:
				if ps != nil {
					obj.ptrs = append(obj.ptrs, v.writeBlockPrepared(&ps.Blocks[sp.Payload]))
				} else {
					obj.ptrs = append(obj.ptrs, v.writeBlock(st.Blocks[sp.Payload]))
				}
			default:
				e := v.ddt.Lookup(sp.Hash)
				v.ddt.AddRef(sp.Hash)
				obj.ptrs = append(obj.ptrs, blockPtr{hash: sp.Hash, addr: e.Addr,
					physLen: e.PhysLen, logLen: sp.LogLen, compressed: e.Compressed,
					physHash: e.PhysHash})
			}
			v.logicalWritten += int64(sp.LogLen)
			rec.logical += int64(sp.LogLen)
		}
		if old, ok := v.objects[so.Name]; ok {
			// Replace (idempotent receive): the old object's references go
			// only at commit, after every upsert is in.
			release = append(release, old.ptrs)
			rec.old = old
		}
		rec.newPtrs = obj.ptrs
		v.objects[so.Name] = obj
		j.undo = append(j.undo, rec)
		j.steps++
		if crashed() {
			return ErrTorn
		}
	}
	for _, name := range st.Deletes {
		if obj, ok := v.objects[name]; ok {
			delete(v.objects, name)
			release = append(release, obj.ptrs)
			j.undo = append(j.undo, undoRec{name: name, old: obj})
		}
		j.steps++
		if crashed() {
			return ErrTorn
		}
	}
	// Commit: releases, snapshot, journal clear — atomic (no crash
	// points; a real implementation orders this behind one journal
	// commit-mark write).
	for _, ptrs := range release {
		v.releasePtrsLocked(ptrs)
	}
	objs := make(map[string]*Object, len(v.objects))
	for n, o := range v.objects {
		objs[n] = o
		v.addRefsLocked(o.ptrs)
	}
	v.snaps = append(v.snaps, &Snapshot{Name: st.ToSnap, Created: st.Created, objects: objs})
	v.journal = nil
	v.counters.Add("zvol.recv.streams", 1)
	v.counters.Add("zvol.recv.bytes", st.SizeBytes())
	if ps != nil {
		v.counters.Add("zvol.recv.prepared", 1)
	}
	return nil
}

// ApplySteps returns the number of staged apply steps Receive would run
// for st — the valid range of torn-apply crash offsets is [0, ApplySteps].
func (st *Stream) ApplySteps() int { return len(st.Upserts) + len(st.Deletes) }

// verifyStreamLocked checks a stream end to end without touching the
// volume. Everything Receive's apply phase relies on is proven here:
// ancestry and snapshot-name freshness, payload indexes in range, shipped
// payloads matching their declared length and content hash, object sizes
// consistent with their pointers, and every hash-only reference present
// in the local DDT. With a prepared stream the per-payload checksums were
// computed once by Prepare and are reused instead of re-hashed here.
func (v *Volume) verifyStreamLocked(st *Stream, ps *PreparedStream) error {
	if st.FromSnap != "" && v.findSnapLocked(st.FromSnap) == nil {
		return fmt.Errorf("%w: %s", ErrNotAncestor, st.FromSnap)
	}
	if v.findSnapLocked(st.ToSnap) != nil {
		return fmt.Errorf("%w: %s", ErrSnapExists, st.ToSnap)
	}
	if !v.cfg.Dedup {
		return fmt.Errorf("zvol: receive requires a dedup volume")
	}
	// Checksum every shipped payload once up front (or reuse the hashes
	// Prepare computed when receiving a prepared stream).
	var hashes []block.Hash
	if ps != nil {
		if len(ps.Blocks) != len(st.Blocks) {
			return fmt.Errorf("%w: prepared stream carries %d blocks, stream %d",
				ErrBadStream, len(ps.Blocks), len(st.Blocks))
		}
		hashes = make([]block.Hash, len(ps.Blocks))
		for i := range ps.Blocks {
			hashes[i] = ps.Blocks[i].Hash
		}
	} else {
		hashes = make([]block.Hash, len(st.Blocks))
		for i, b := range st.Blocks {
			hashes[i] = block.HashOf(b)
		}
	}
	for _, so := range st.Upserts {
		var size int64
		for _, sp := range so.Ptrs {
			size += int64(sp.LogLen)
			switch {
			case sp.Zero:
			case sp.Payload >= 0:
				if sp.Payload >= len(st.Blocks) {
					return fmt.Errorf("%w: %s payload index %d out of range",
						ErrBadStream, so.Name, sp.Payload)
				}
				if int32(len(st.Blocks[sp.Payload])) != sp.LogLen {
					return fmt.Errorf("%w: %s block %d is %d bytes, pointer says %d",
						ErrBadStream, so.Name, sp.Payload, len(st.Blocks[sp.Payload]), sp.LogLen)
				}
				if hashes[sp.Payload] != block.Hash(sp.Hash) {
					return fmt.Errorf("%w: %s block %d checksum mismatch",
						ErrBadStream, so.Name, sp.Payload)
				}
			default:
				if v.ddt.Lookup(sp.Hash) == nil {
					return fmt.Errorf("%w: %s references unknown block %x",
						ErrBadStream, so.Name, sp.Hash[:8])
				}
			}
		}
		if size != so.Size {
			return fmt.Errorf("%w: %s pointers cover %d bytes, object says %d",
				ErrBadStream, so.Name, size, so.Size)
		}
	}
	return nil
}
