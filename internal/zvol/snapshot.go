package zvol

import (
	"fmt"
	"time"
)

// Snapshot creates a named, immutable view of the volume's current object
// table at the given time. Every block referenced by the snapshot gains a
// reference, so deleting live objects cannot free data a snapshot still
// needs — the property that makes ZFS snapshots "cheap as long as they do
// not reference data that no longer exists" (§3.2).
//
// The timestamp is injected (not read from the wall clock) so garbage
// collection windows are testable and simulations are deterministic.
func (v *Volume) Snapshot(name string, at time.Time) (*Snapshot, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.findSnapLocked(name) != nil {
		return nil, fmt.Errorf("%w: %s", ErrSnapExists, name)
	}
	objs := make(map[string]*Object, len(v.objects))
	for n, o := range v.objects {
		objs[n] = o // objects are immutable once written
		v.addRefsLocked(o.ptrs)
	}
	s := &Snapshot{Name: name, Created: at, objects: objs}
	v.snaps = append(v.snaps, s)
	return s, nil
}

// addRefsLocked bumps references for every nonzero block in ptrs.
func (v *Volume) addRefsLocked(ptrs []blockPtr) {
	if !v.cfg.Dedup {
		return // without a DDT, snapshots share the object structs only
	}
	for _, p := range ptrs {
		if !p.zero {
			v.ddt.AddRef(p.hash)
		}
	}
}

// findSnapLocked returns the snapshot named name, or nil.
func (v *Volume) findSnapLocked(name string) *Snapshot {
	for _, s := range v.snaps {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// FindSnapshot returns the snapshot named name.
func (v *Volume) FindSnapshot(name string) (*Snapshot, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if s := v.findSnapLocked(name); s != nil {
		return s, nil
	}
	return nil, fmt.Errorf("%w: snapshot %s", ErrNotFound, name)
}

// Snapshots lists snapshots in creation order.
func (v *Volume) Snapshots() []*Snapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]*Snapshot, len(v.snaps))
	copy(out, v.snaps)
	return out
}

// LatestSnapshot returns the most recent snapshot, or nil if none exist.
func (v *Volume) LatestSnapshot() *Snapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if len(v.snaps) == 0 {
		return nil
	}
	return v.snaps[len(v.snaps)-1]
}

// DeleteSnapshot destroys a snapshot, releasing its block references.
func (v *Volume) DeleteSnapshot(name string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, s := range v.snaps {
		if s.Name == name {
			v.snaps = append(v.snaps[:i], v.snaps[i+1:]...)
			if v.cfg.Dedup {
				for _, o := range s.objects {
					v.releasePtrsLocked(o.ptrs)
				}
			}
			return nil
		}
	}
	return fmt.Errorf("%w: snapshot %s", ErrNotFound, name)
}

// GarbageCollect implements Squirrel's retention policy (§3.4): destroy
// every snapshot older than the window ending at now, except the latest
// snapshot, which is always kept regardless of age. It returns the names
// of destroyed snapshots. Squirrel runs this as a daily cron job on all
// cVolumes; window is the paper's configurable n days.
func (v *Volume) GarbageCollect(now time.Time, window time.Duration) []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.snaps) == 0 {
		return nil
	}
	cutoff := now.Add(-window)
	latest := v.snaps[len(v.snaps)-1]
	var kept []*Snapshot
	var destroyed []string
	for _, s := range v.snaps {
		if s == latest || !s.Created.Before(cutoff) {
			kept = append(kept, s)
			continue
		}
		destroyed = append(destroyed, s.Name)
		if v.cfg.Dedup {
			for _, o := range s.objects {
				v.releasePtrsLocked(o.ptrs)
			}
		}
	}
	v.snaps = kept
	return destroyed
}

// ReadObjectAt returns the content of an object as captured by a snapshot,
// which may differ from (or be absent in) the live table.
func (v *Volume) ReadObjectAt(snapName, objName string) ([]byte, error) {
	v.mu.RLock()
	s := v.findSnapLocked(snapName)
	v.mu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("%w: snapshot %s", ErrNotFound, snapName)
	}
	obj, ok := s.objects[objName]
	if !ok {
		return nil, fmt.Errorf("%w: object %s in snapshot %s", ErrNotFound, objName, snapName)
	}
	return v.materialize(obj)
}
