package zvol

import (
	"bytes"
	"errors"
	"testing"
)

// snapshotState captures the observable replica state for atomicity
// checks: object names, object contents, and snapshot names.
func snapshotState(t *testing.T, v *Volume) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range v.Objects() {
		data, err := v.ReadObject(name)
		if err != nil {
			t.Fatal(err)
		}
		out["obj:"+name] = string(data)
	}
	for _, s := range v.Snapshots() {
		out["snap:"+s.Name] = ""
	}
	return out
}

func sameState(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// sendStream builds a one-object volume, snapshots it, and returns the
// full stream plus a primed empty destination.
func sendStream(t *testing.T) (*Stream, *Volume) {
	t.Helper()
	src, dst := pair(t)
	if _, err := src.WriteObject("img", bytes.NewReader(mkData(7, 64*1024))); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Snapshot("s1", day(0)); err != nil {
		t.Fatal(err)
	}
	st, err := src.Send("", "s1")
	if err != nil {
		t.Fatal(err)
	}
	return st, dst
}

func TestReceiveRejectsCorruptPayload(t *testing.T) {
	st, dst := sendStream(t)
	if len(st.Blocks) == 0 {
		t.Fatal("stream shipped no payloads")
	}
	before := snapshotState(t, dst)
	st.Blocks[0][0] ^= 0xFF // in-memory corruption the wire CRC never sees
	err := dst.Receive(st)
	if !errors.Is(err, ErrBadStream) {
		t.Fatalf("corrupt payload: %v", err)
	}
	if !sameState(before, snapshotState(t, dst)) {
		t.Fatal("failed receive mutated the replica")
	}
	// Un-corrupt and the very same stream applies cleanly.
	st.Blocks[0][0] ^= 0xFF
	if err := dst.Receive(st); err != nil {
		t.Fatal(err)
	}
	if !dst.HasObject("img") {
		t.Fatal("repaired receive missing object")
	}
}

func TestReceiveRejectsPayloadIndexOutOfRange(t *testing.T) {
	st, dst := sendStream(t)
	before := snapshotState(t, dst)
	st.Upserts[0].Ptrs[0].Payload = len(st.Blocks) + 5
	if err := dst.Receive(st); !errors.Is(err, ErrBadStream) {
		t.Fatalf("bad index: %v", err)
	}
	if !sameState(before, snapshotState(t, dst)) {
		t.Fatal("failed receive mutated the replica")
	}
}

func TestReceiveRejectsSizeMismatch(t *testing.T) {
	st, dst := sendStream(t)
	st.Upserts[0].Size += 17
	if err := dst.Receive(st); !errors.Is(err, ErrBadStream) {
		t.Fatalf("size mismatch: %v", err)
	}
	if len(dst.Objects()) != 0 || len(dst.Snapshots()) != 0 {
		t.Fatal("failed receive left state behind")
	}
}

func TestReceiveRejectsLengthMismatch(t *testing.T) {
	st, dst := sendStream(t)
	st.Upserts[0].Ptrs[0].LogLen++
	if err := dst.Receive(st); !errors.Is(err, ErrBadStream) {
		t.Fatalf("length mismatch: %v", err)
	}
}

func TestReceiveRejectsUnknownHashReference(t *testing.T) {
	// An incremental stream whose hash-only references the replica cannot
	// resolve must be rejected without touching it.
	src, dst := pair(t)
	src.WriteObject("a", bytes.NewReader(mkData(1, 32*1024)))
	src.Snapshot("s1", day(0))
	src.WriteObject("b", bytes.NewReader(mkData(1, 32*1024))) // dedups against a
	src.Snapshot("s2", day(1))
	inc, err := src.Send("s1", "s2")
	if err != nil {
		t.Fatal(err)
	}
	// dst holds s1's *name* but not its blocks: fake the ancestor so the
	// ancestry check passes and the hash check is what trips.
	if _, err := dst.Snapshot("s1", day(0)); err != nil {
		t.Fatal(err)
	}
	before := snapshotState(t, dst)
	if err := dst.Receive(inc); !errors.Is(err, ErrBadStream) {
		t.Fatalf("unknown hash: %v", err)
	}
	if !sameState(before, snapshotState(t, dst)) {
		t.Fatal("failed receive mutated the replica")
	}
}

func TestWireCorruptionCaughtByChecksum(t *testing.T) {
	st, _ := sendStream(t)
	var buf bytes.Buffer
	if _, err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	// Flip one byte anywhere in the body: the trailing CRC must trip.
	bad := append([]byte(nil), wire...)
	bad[len(bad)/2] ^= 0x40
	if _, err := DecodeStream(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted wire decoded cleanly")
	}
	// Truncations at a spread of cut points must all fail to decode.
	for _, frac := range []int{1, 3, 10, 50, 99} {
		cut := wire[:len(wire)*frac/100]
		if _, err := DecodeStream(bytes.NewReader(cut)); err == nil {
			t.Fatalf("truncated wire (%d%%) decoded cleanly", frac)
		}
	}
	// And the intact wire round-trips.
	if _, err := DecodeStream(bytes.NewReader(wire)); err != nil {
		t.Fatal(err)
	}
}

func TestReceiveReplaceReleasesAfterUpserts(t *testing.T) {
	// A stream that simultaneously deletes the sole holder of a block and
	// upserts an object referencing that block by hash must apply: the
	// new references land before the release.
	src, dst := pair(t)
	data := mkData(9, 16*1024)
	src.WriteObject("old", bytes.NewReader(data))
	src.Snapshot("s1", day(0))
	full, err := src.Send("", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Receive(full); err != nil {
		t.Fatal(err)
	}
	// New snapshot: "old" deleted, "new" holds the same content (its
	// blocks dedup against old's, so the incremental ships hashes only).
	src.DeleteObject("old")
	src.WriteObject("new", bytes.NewReader(data))
	src.Snapshot("s2", day(1))
	inc, err := src.Send("s1", "s2")
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Blocks) != 0 {
		t.Fatalf("incremental shipped %d payloads, want hash-only", len(inc.Blocks))
	}
	if err := dst.Receive(inc); err != nil {
		t.Fatal(err)
	}
	got, err := dst.ReadObject("new")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("replaced object unreadable: %v", err)
	}
	if dst.HasObject("old") {
		t.Fatal("delete not applied")
	}
}

// tornFixture builds a dst replica holding snapshot s1 (objects a, b, c)
// and an incremental s1→s2 stream carrying two upserts (one dedup-heavy)
// and one delete — enough staged steps to probe every torn-apply offset.
func tornFixture(t *testing.T) (*Volume, *Stream) {
	t.Helper()
	src, dst := pair(t)
	for i, name := range []string{"a", "b", "c"} {
		if _, err := src.WriteObject(name, bytes.NewReader(mkData(int64(20+i), 48*1024))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := src.Snapshot("s1", day(0)); err != nil {
		t.Fatal(err)
	}
	full, err := src.Send("", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Receive(full); err != nil {
		t.Fatal(err)
	}
	if err := src.DeleteObject("a"); err != nil {
		t.Fatal(err)
	}
	// d is fresh content; e shares b's bytes so its stream record is
	// hash-only and the torn apply exercises the dedup-reference path.
	if _, err := src.WriteObject("d", bytes.NewReader(mkData(77, 32*1024))); err != nil {
		t.Fatal(err)
	}
	if _, err := src.WriteObject("e", bytes.NewReader(mkData(21, 48*1024))); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Snapshot("s2", day(1)); err != nil {
		t.Fatal(err)
	}
	inc, err := src.Send("s1", "s2")
	if err != nil {
		t.Fatal(err)
	}
	if inc.ApplySteps() < 3 {
		t.Fatalf("fixture too small: %d apply steps", inc.ApplySteps())
	}
	return dst, inc
}

// TestTornReceiveRecoversAtEveryOffset is the crash-consistency property
// test: a crash injected after ANY number of staged apply steps — from
// right after the intent record to everything-staged-but-uncommitted —
// must leave the dataset bit-identical to its pre-receive state after
// Recover, and the very same stream must then apply cleanly.
func TestTornReceiveRecoversAtEveryOffset(t *testing.T) {
	dst, inc := tornFixture(t)
	before := snapshotState(t, dst)
	beforeStats := dst.Stats()
	for off := 0; off <= inc.ApplySteps(); off++ {
		dst.SetReceiveCrashPoint(off)
		if err := dst.Receive(inc); !errors.Is(err, ErrTorn) {
			t.Fatalf("offset %d: receive returned %v, want ErrTorn", off, err)
		}
		if !dst.NeedsRecovery() {
			t.Fatalf("offset %d: torn apply left no open journal", off)
		}
		// A replica with an open journal refuses further receives until
		// recovered — a restart must not stack a new apply on torn state.
		if err := dst.Receive(inc); !errors.Is(err, ErrNeedsRecovery) {
			t.Fatalf("offset %d: receive on torn replica returned %v", off, err)
		}
		rep := dst.Recover()
		if !rep.RolledBack || rep.Snapshot != "s2" {
			t.Fatalf("offset %d: recover report %+v", off, rep)
		}
		if rep.UndoneUpserts+rep.UndoneDeletes > off {
			t.Fatalf("offset %d: undid %d steps, staged at most %d",
				off, rep.UndoneUpserts+rep.UndoneDeletes, off)
		}
		if dst.NeedsRecovery() {
			t.Fatalf("offset %d: journal still open after recover", off)
		}
		if !sameState(before, snapshotState(t, dst)) {
			t.Fatalf("offset %d: dataset not bit-identical after rollback", off)
		}
		if s := dst.Stats(); s != beforeStats {
			t.Fatalf("offset %d: accounting drifted: %+v != %+v", off, s, beforeStats)
		}
	}
	// Recover on a consistent replica is a no-op.
	if rep := dst.Recover(); rep.RolledBack {
		t.Fatalf("no-op recover rolled back: %+v", rep)
	}
	// After the last rollback the same stream applies cleanly end to end.
	if err := dst.Receive(inc); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"d", "e"} {
		if _, err := dst.ReadObject(name); err != nil {
			t.Fatalf("post-recovery receive lost %s: %v", name, err)
		}
	}
	if dst.HasObject("a") {
		t.Fatal("post-recovery receive missed the delete")
	}
	if rep := dst.Scrub(); !rep.Clean() {
		t.Fatalf("replica dirty after torn/recover/receive cycle: %+v", rep)
	}
}

// TestTornReceiveCrashPointIsOneShot checks the injection arms exactly
// one receive: the next attempt after a torn apply + recover runs clean.
func TestTornReceiveCrashPointIsOneShot(t *testing.T) {
	dst, inc := tornFixture(t)
	dst.SetReceiveCrashPoint(0)
	if err := dst.Receive(inc); !errors.Is(err, ErrTorn) {
		t.Fatalf("armed receive returned %v", err)
	}
	dst.Recover()
	if err := dst.Receive(inc); err != nil {
		t.Fatalf("crash point fired twice: %v", err)
	}
}
