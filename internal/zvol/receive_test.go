package zvol

import (
	"bytes"
	"errors"
	"testing"
)

// snapshotState captures the observable replica state for atomicity
// checks: object names, object contents, and snapshot names.
func snapshotState(t *testing.T, v *Volume) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range v.Objects() {
		data, err := v.ReadObject(name)
		if err != nil {
			t.Fatal(err)
		}
		out["obj:"+name] = string(data)
	}
	for _, s := range v.Snapshots() {
		out["snap:"+s.Name] = ""
	}
	return out
}

func sameState(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// sendStream builds a one-object volume, snapshots it, and returns the
// full stream plus a primed empty destination.
func sendStream(t *testing.T) (*Stream, *Volume) {
	t.Helper()
	src, dst := pair(t)
	if _, err := src.WriteObject("img", bytes.NewReader(mkData(7, 64*1024))); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Snapshot("s1", day(0)); err != nil {
		t.Fatal(err)
	}
	st, err := src.Send("", "s1")
	if err != nil {
		t.Fatal(err)
	}
	return st, dst
}

func TestReceiveRejectsCorruptPayload(t *testing.T) {
	st, dst := sendStream(t)
	if len(st.Blocks) == 0 {
		t.Fatal("stream shipped no payloads")
	}
	before := snapshotState(t, dst)
	st.Blocks[0][0] ^= 0xFF // in-memory corruption the wire CRC never sees
	err := dst.Receive(st)
	if !errors.Is(err, ErrBadStream) {
		t.Fatalf("corrupt payload: %v", err)
	}
	if !sameState(before, snapshotState(t, dst)) {
		t.Fatal("failed receive mutated the replica")
	}
	// Un-corrupt and the very same stream applies cleanly.
	st.Blocks[0][0] ^= 0xFF
	if err := dst.Receive(st); err != nil {
		t.Fatal(err)
	}
	if !dst.HasObject("img") {
		t.Fatal("repaired receive missing object")
	}
}

func TestReceiveRejectsPayloadIndexOutOfRange(t *testing.T) {
	st, dst := sendStream(t)
	before := snapshotState(t, dst)
	st.Upserts[0].Ptrs[0].Payload = len(st.Blocks) + 5
	if err := dst.Receive(st); !errors.Is(err, ErrBadStream) {
		t.Fatalf("bad index: %v", err)
	}
	if !sameState(before, snapshotState(t, dst)) {
		t.Fatal("failed receive mutated the replica")
	}
}

func TestReceiveRejectsSizeMismatch(t *testing.T) {
	st, dst := sendStream(t)
	st.Upserts[0].Size += 17
	if err := dst.Receive(st); !errors.Is(err, ErrBadStream) {
		t.Fatalf("size mismatch: %v", err)
	}
	if len(dst.Objects()) != 0 || len(dst.Snapshots()) != 0 {
		t.Fatal("failed receive left state behind")
	}
}

func TestReceiveRejectsLengthMismatch(t *testing.T) {
	st, dst := sendStream(t)
	st.Upserts[0].Ptrs[0].LogLen++
	if err := dst.Receive(st); !errors.Is(err, ErrBadStream) {
		t.Fatalf("length mismatch: %v", err)
	}
}

func TestReceiveRejectsUnknownHashReference(t *testing.T) {
	// An incremental stream whose hash-only references the replica cannot
	// resolve must be rejected without touching it.
	src, dst := pair(t)
	src.WriteObject("a", bytes.NewReader(mkData(1, 32*1024)))
	src.Snapshot("s1", day(0))
	src.WriteObject("b", bytes.NewReader(mkData(1, 32*1024))) // dedups against a
	src.Snapshot("s2", day(1))
	inc, err := src.Send("s1", "s2")
	if err != nil {
		t.Fatal(err)
	}
	// dst holds s1's *name* but not its blocks: fake the ancestor so the
	// ancestry check passes and the hash check is what trips.
	if _, err := dst.Snapshot("s1", day(0)); err != nil {
		t.Fatal(err)
	}
	before := snapshotState(t, dst)
	if err := dst.Receive(inc); !errors.Is(err, ErrBadStream) {
		t.Fatalf("unknown hash: %v", err)
	}
	if !sameState(before, snapshotState(t, dst)) {
		t.Fatal("failed receive mutated the replica")
	}
}

func TestWireCorruptionCaughtByChecksum(t *testing.T) {
	st, _ := sendStream(t)
	var buf bytes.Buffer
	if _, err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	// Flip one byte anywhere in the body: the trailing CRC must trip.
	bad := append([]byte(nil), wire...)
	bad[len(bad)/2] ^= 0x40
	if _, err := DecodeStream(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted wire decoded cleanly")
	}
	// Truncations at a spread of cut points must all fail to decode.
	for _, frac := range []int{1, 3, 10, 50, 99} {
		cut := wire[:len(wire)*frac/100]
		if _, err := DecodeStream(bytes.NewReader(cut)); err == nil {
			t.Fatalf("truncated wire (%d%%) decoded cleanly", frac)
		}
	}
	// And the intact wire round-trips.
	if _, err := DecodeStream(bytes.NewReader(wire)); err != nil {
		t.Fatal(err)
	}
}

func TestReceiveReplaceReleasesAfterUpserts(t *testing.T) {
	// A stream that simultaneously deletes the sole holder of a block and
	// upserts an object referencing that block by hash must apply: the
	// new references land before the release.
	src, dst := pair(t)
	data := mkData(9, 16*1024)
	src.WriteObject("old", bytes.NewReader(data))
	src.Snapshot("s1", day(0))
	full, err := src.Send("", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Receive(full); err != nil {
		t.Fatal(err)
	}
	// New snapshot: "old" deleted, "new" holds the same content (its
	// blocks dedup against old's, so the incremental ships hashes only).
	src.DeleteObject("old")
	src.WriteObject("new", bytes.NewReader(data))
	src.Snapshot("s2", day(1))
	inc, err := src.Send("s1", "s2")
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Blocks) != 0 {
		t.Fatalf("incremental shipped %d payloads, want hash-only", len(inc.Blocks))
	}
	if err := dst.Receive(inc); err != nil {
		t.Fatal(err)
	}
	got, err := dst.ReadObject("new")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("replaced object unreadable: %v", err)
	}
	if dst.HasObject("old") {
		t.Fatal("delete not applied")
	}
}
