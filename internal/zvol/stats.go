package zvol

import (
	"repro/internal/dedup"
	"repro/internal/store"
)

// Stats summarizes a volume's resource consumption — the quantities the
// paper charts in Figs 8, 9, 10, and 13.
type Stats struct {
	Objects   int64 // live objects
	Snapshots int64

	LogicalBytes int64 // Σ live object sizes (what readers see)
	ZeroBytes    int64 // bytes suppressed as holes across all writes
	DataBytes    int64 // stored payload bytes (post dedup + compression)
	DDTDiskBytes int64 // dedup table on disk (Fig 9)
	DDTMemBytes  int64 // dedup table in core (Fig 10)
	MetaBytes    int64 // block-pointer metadata on disk

	// DiskBytes is the total on-disk footprint: data + DDT + metadata
	// (Fig 8 measures exactly this sum for the ZFS volume images).
	DiskBytes int64

	UniqueBlocks int64
	References   int64
	DedupRatio   float64 // references / unique, nonzero blocks only
}

// bytesPerBlockPtr models ZFS's on-disk block pointer (a 128-byte blkptr_t,
// amortized by indirect-block packing; 64 keeps metadata visible without
// dominating at large block sizes).
const bytesPerBlockPtr = 64

// Stats computes the volume's current consumption. O(objects + DDT).
func (v *Volume) Stats() Stats {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var st Stats
	st.Objects = int64(len(v.objects))
	st.Snapshots = int64(len(v.snaps))
	st.ZeroBytes = v.zeroBytes

	var nptrs int64
	for _, o := range v.objects {
		st.LogicalBytes += o.Size
		nptrs += int64(len(o.ptrs))
	}
	for _, s := range v.snaps {
		for _, o := range s.objects {
			nptrs += int64(len(o.ptrs))
		}
	}
	st.MetaBytes = nptrs * bytesPerBlockPtr

	if v.cfg.Dedup {
		ds := v.ddt.Stats()
		st.DataBytes = ds.PhysicalBytes
		st.DDTDiskBytes = ds.DiskBytes
		st.DDTMemBytes = ds.MemBytes
		st.UniqueBlocks = ds.Entries
		st.References = ds.References
		st.DedupRatio = ds.DedupRatio()
	} else {
		ss := v.store.Stats()
		st.DataBytes = ss.UsedBytes
		st.UniqueBlocks = ss.Blocks
		st.References = ss.Blocks
		st.DedupRatio = 1
	}
	st.DiskBytes = st.DataBytes + st.DDTDiskBytes + st.MetaBytes
	return st
}

// StoreStats exposes the underlying block store's occupancy, including
// how many stored payloads are aliased to shared prepared-stream slices.
func (v *Volume) StoreStats() store.Stats { return v.store.Stats() }

// DDTStats exposes the raw dedup-table statistics (nil-safe: volumes
// without dedup return zero stats).
func (v *Volume) DDTStats() dedup.Stats {
	if !v.cfg.Dedup {
		return dedup.Stats{}
	}
	return v.ddt.Stats()
}
