package zvol

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// Wire format for snapshot streams. Squirrel multicasts streams across
// the data center (§3.2), so they need a byte encoding: a magic-tagged
// header, length-prefixed sections, and a trailing CRC32 over everything,
// mirroring `zfs send`'s stream + checksum design.
//
//	magic "SQRL" | version u16
//	fromSnap, toSnap: u32-len strings | created unix-nano i64
//	deletes: u32 count × string
//	blocks:  u32 count × (u32 len | bytes)
//	upserts: u32 count × object
//	  object: name string | size i64 | u32 nptrs ×
//	          (flags u8 | logLen i32 | payload i32 | hash [32]byte)
//	crc32 (Castagnoli) over all preceding bytes
const (
	wireMagic   = "SQRL"
	wireVersion = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcWriter tees writes through a CRC.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crcTable, p[:n])
	cw.n += int64(n)
	return n, err
}

// Encode writes the stream in wire format. The returned byte count is the
// exact on-wire size.
func (st *Stream) Encode(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}

	write := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	writeStr := func(s string) error {
		if err := write(uint32(len(s))); err != nil {
			return err
		}
		_, err := cw.Write([]byte(s))
		return err
	}

	if _, err := cw.Write([]byte(wireMagic)); err != nil {
		return cw.n, err
	}
	if err := write(uint16(wireVersion)); err != nil {
		return cw.n, err
	}
	if err := writeStr(st.FromSnap); err != nil {
		return cw.n, err
	}
	if err := writeStr(st.ToSnap); err != nil {
		return cw.n, err
	}
	if err := write(st.Created.UnixNano()); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(st.Deletes))); err != nil {
		return cw.n, err
	}
	for _, d := range st.Deletes {
		if err := writeStr(d); err != nil {
			return cw.n, err
		}
	}
	if err := write(uint32(len(st.Blocks))); err != nil {
		return cw.n, err
	}
	for _, b := range st.Blocks {
		if err := write(uint32(len(b))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(b); err != nil {
			return cw.n, err
		}
	}
	if err := write(uint32(len(st.Upserts))); err != nil {
		return cw.n, err
	}
	for _, o := range st.Upserts {
		if err := writeStr(o.Name); err != nil {
			return cw.n, err
		}
		if err := write(o.Size, uint32(len(o.Ptrs))); err != nil {
			return cw.n, err
		}
		for _, p := range o.Ptrs {
			var flags uint8
			if p.Zero {
				flags |= 1
			}
			if err := write(flags, p.LogLen, int32(p.Payload)); err != nil {
				return cw.n, err
			}
			if _, err := cw.Write(p.Hash[:]); err != nil {
				return cw.n, err
			}
		}
	}
	// Trailer: CRC over everything written so far.
	crc := cw.crc
	if err := binary.Write(bw, binary.LittleEndian, crc); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n + 4, nil
}

// crcReader tees reads through a CRC.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crcTable, p[:n])
	return n, err
}

// maxWireStrings bounds decoded counts and lengths so a corrupt or
// malicious stream cannot trigger huge allocations.
const (
	maxWireName  = 4096
	maxWireCount = 16 << 20
	maxWireBlock = 64 << 20
)

// DecodeStream parses a wire-format stream, verifying the trailing CRC.
func DecodeStream(r io.Reader) (*Stream, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	read := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	readStr := func(max uint32) (string, error) {
		var n uint32
		if err := read(&n); err != nil {
			return "", err
		}
		if n > max {
			return "", fmt.Errorf("zvol: wire string length %d exceeds %d", n, max)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("zvol: wire magic: %w", err)
	}
	if string(magic) != wireMagic {
		return nil, fmt.Errorf("zvol: bad wire magic %q", magic)
	}
	var version uint16
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != wireVersion {
		return nil, fmt.Errorf("zvol: unsupported wire version %d", version)
	}
	st := &Stream{}
	var err error
	if st.FromSnap, err = readStr(maxWireName); err != nil {
		return nil, err
	}
	if st.ToSnap, err = readStr(maxWireName); err != nil {
		return nil, err
	}
	var createdNano int64
	if err := read(&createdNano); err != nil {
		return nil, err
	}
	st.Created = time.Unix(0, createdNano).UTC()

	var nDel uint32
	if err := read(&nDel); err != nil {
		return nil, err
	}
	if nDel > maxWireCount {
		return nil, fmt.Errorf("zvol: wire delete count %d", nDel)
	}
	for i := uint32(0); i < nDel; i++ {
		d, err := readStr(maxWireName)
		if err != nil {
			return nil, err
		}
		st.Deletes = append(st.Deletes, d)
	}
	var nBlocks uint32
	if err := read(&nBlocks); err != nil {
		return nil, err
	}
	if nBlocks > maxWireCount {
		return nil, fmt.Errorf("zvol: wire block count %d", nBlocks)
	}
	for i := uint32(0); i < nBlocks; i++ {
		var l uint32
		if err := read(&l); err != nil {
			return nil, err
		}
		if l > maxWireBlock {
			return nil, fmt.Errorf("zvol: wire block length %d", l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(cr, b); err != nil {
			return nil, err
		}
		st.Blocks = append(st.Blocks, b)
	}
	var nUp uint32
	if err := read(&nUp); err != nil {
		return nil, err
	}
	if nUp > maxWireCount {
		return nil, fmt.Errorf("zvol: wire upsert count %d", nUp)
	}
	for i := uint32(0); i < nUp; i++ {
		var o StreamObject
		if o.Name, err = readStr(maxWireName); err != nil {
			return nil, err
		}
		var nPtrs uint32
		if err := read(&o.Size, &nPtrs); err != nil {
			return nil, err
		}
		if nPtrs > maxWireCount {
			return nil, fmt.Errorf("zvol: wire ptr count %d", nPtrs)
		}
		for j := uint32(0); j < nPtrs; j++ {
			var p StreamPtr
			var flags uint8
			var payload int32
			if err := read(&flags, &p.LogLen, &payload); err != nil {
				return nil, err
			}
			if _, err := io.ReadFull(cr, p.Hash[:]); err != nil {
				return nil, err
			}
			p.Zero = flags&1 != 0
			p.Payload = int(payload)
			if p.Payload >= 0 && p.Payload >= len(st.Blocks) {
				return nil, fmt.Errorf("zvol: wire payload index %d out of range", p.Payload)
			}
			o.Ptrs = append(o.Ptrs, p)
		}
		st.Upserts = append(st.Upserts, o)
	}
	// Verify the trailer. The CRC bytes themselves must not be folded
	// into the running CRC, so read them from the underlying reader.
	want := cr.crc
	var got uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("zvol: wire trailer: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("zvol: wire checksum mismatch: %08x != %08x", got, want)
	}
	return st, nil
}
