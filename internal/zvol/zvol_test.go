package zvol

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/block"
)

// cfg64 is the paper's chosen configuration with a smaller block size to
// keep tests fast when they need many blocks.
func cfg(bs block.Size, codec string, dd bool) Config {
	return Config{BlockSize: bs, Codec: codec, Dedup: dd, MinCompressGain: 0.125}
}

// mkData builds a payload of n bytes: a compressible repeated phrase with
// a seeded random tail and embedded zero runs, so tests exercise holes,
// dedup, and compression together.
func mkData(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	phrase := []byte("boot working set block content ")
	for i := 0; i < n; {
		switch rng.Intn(3) {
		case 0: // compressible
			k := copy(out[i:], phrase)
			i += k
		case 1: // random
			chunk := make([]byte, min(256, n-i))
			rng.Read(chunk)
			i += copy(out[i:], chunk)
		default: // hole
			i += min(1024, n-i)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{BlockSize: 1000}); err == nil {
		t.Fatal("expected error for bad block size")
	}
	if _, err := New(Config{BlockSize: block.Size4K, Codec: "nope"}); err == nil {
		t.Fatal("expected error for unknown codec")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, c := range []Config{
		cfg(block.Size4K, "gzip6", true),
		cfg(block.Size4K, "gzip6", false),
		cfg(block.Size4K, "null", true),
		cfg(block.Size4K, "null", false),
		cfg(block.Size64K, "lz4", true),
		cfg(block.Size1K, "lzjb", true),
	} {
		v, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		data := mkData(1, 300*1024+777) // not block aligned
		if _, err := v.WriteObject("img", bytes.NewReader(data)); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		got, err := v.ReadObject("img")
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%+v: round trip mismatch", c)
		}
	}
}

func TestWriteDuplicateName(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", true))
	v.WriteObject("a", bytes.NewReader([]byte{1}))
	if _, err := v.WriteObject("a", bytes.NewReader([]byte{2})); !errors.Is(err, ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}
}

func TestReadMissing(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", true))
	if _, err := v.ReadObject("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestDedupIdenticalObjects(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", true))
	data := mkData(2, 64*1024)
	v.WriteObject("a", bytes.NewReader(data))
	before := v.Stats()
	v.WriteObject("b", bytes.NewReader(data))
	after := v.Stats()
	if after.DataBytes != before.DataBytes {
		t.Fatalf("identical object grew data: %d -> %d", before.DataBytes, after.DataBytes)
	}
	if after.UniqueBlocks != before.UniqueBlocks {
		t.Fatal("identical object added unique blocks")
	}
	if after.DedupRatio <= before.DedupRatio {
		t.Fatal("dedup ratio should rise")
	}
}

func TestZeroSuppression(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", true))
	zeros := make([]byte, 1<<20)
	v.WriteObject("sparse", bytes.NewReader(zeros))
	st := v.Stats()
	if st.DataBytes != 0 || st.UniqueBlocks != 0 {
		t.Fatalf("zero blocks were stored: %+v", st)
	}
	if st.ZeroBytes != 1<<20 {
		t.Fatalf("zero accounting wrong: %d", st.ZeroBytes)
	}
	got, err := v.ReadObject("sparse")
	if err != nil || !bytes.Equal(got, zeros) {
		t.Fatal("sparse object must read back as zeros")
	}
}

func TestDeleteFreesBlocks(t *testing.T) {
	for _, dd := range []bool{true, false} {
		v, _ := New(cfg(block.Size4K, "gzip6", dd))
		v.WriteObject("a", bytes.NewReader(mkData(3, 128*1024)))
		if err := v.DeleteObject("a"); err != nil {
			t.Fatal(err)
		}
		st := v.Stats()
		if st.DataBytes != 0 || st.Objects != 0 {
			t.Fatalf("dedup=%v: delete leaked %+v", dd, st)
		}
		if err := v.DeleteObject("a"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("double delete: %v", err)
		}
	}
}

func TestSharedBlocksSurviveDelete(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", true))
	data := mkData(4, 64*1024)
	v.WriteObject("a", bytes.NewReader(data))
	v.WriteObject("b", bytes.NewReader(data))
	v.DeleteObject("a")
	got, err := v.ReadObject("b")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("shared blocks freed while still referenced")
	}
}

func TestReadBlock(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "gzip6", true))
	data := mkData(5, 40*1024)
	v.WriteObject("a", bytes.NewReader(data))
	for i := 0; i < 10; i++ {
		got, _, zero, err := v.ReadBlock("a", i)
		if err != nil {
			t.Fatal(err)
		}
		want := data[i*4096 : (i+1)*4096]
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d mismatch", i)
		}
		if zero != block.IsZero(want) {
			t.Fatalf("block %d zero flag wrong", i)
		}
	}
	if _, _, _, err := v.ReadBlock("a", 10); err == nil {
		t.Fatal("out of range read must fail")
	}
	if _, _, _, err := v.ReadBlock("a", -1); err == nil {
		t.Fatal("negative read must fail")
	}
}

func TestCompressionShrinksDisk(t *testing.T) {
	text := bytes.Repeat([]byte("deduplicate and compress the boot working set "), 3000)
	vNull, _ := New(cfg(block.Size4K, "null", true))
	vGz, _ := New(cfg(block.Size4K, "gzip6", true))
	vNull.WriteObject("a", bytes.NewReader(text))
	vGz.WriteObject("a", bytes.NewReader(text))
	if vGz.Stats().DataBytes >= vNull.Stats().DataBytes {
		t.Fatal("gzip volume should use less data space")
	}
}

func TestIncompressibleStoredRaw(t *testing.T) {
	// Random data fails the 12.5% gain threshold and must be stored raw
	// (physLen == logLen), like ZFS.
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 64*1024)
	rng.Read(data)
	v, _ := New(cfg(block.Size4K, "gzip6", true))
	v.WriteObject("rand", bytes.NewReader(data))
	st := v.Stats()
	if st.DataBytes != int64(len(data)) {
		t.Fatalf("incompressible data stored at %d bytes, want %d", st.DataBytes, len(data))
	}
}

func TestLogicalStats(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "gzip6", true))
	v.WriteObject("a", bytes.NewReader(mkData(7, 100*1024)))
	v.WriteObject("b", bytes.NewReader(mkData(8, 50*1024)))
	st := v.Stats()
	if st.LogicalBytes != 150*1024 {
		t.Fatalf("logical %d want %d", st.LogicalBytes, 150*1024)
	}
	if st.Objects != 2 {
		t.Fatalf("objects %d", st.Objects)
	}
	if st.DiskBytes < st.DataBytes {
		t.Fatal("disk must include data")
	}
}

func TestObjectsListing(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", false))
	for _, n := range []string{"c", "a", "b"} {
		v.WriteObject(n, bytes.NewReader([]byte{1}))
	}
	got := v.Objects()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("objects %v want %v", got, want)
		}
	}
	if !v.HasObject("b") || v.HasObject("zz") {
		t.Fatal("HasObject wrong")
	}
	if _, err := v.Object("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Object("zz"); err == nil {
		t.Fatal("missing object must error")
	}
}

// errReader fails partway through a stream.
type errReader struct{ n int }

func (e *errReader) Read(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, errors.New("disk on fire")
	}
	k := min(e.n, len(p))
	for i := 0; i < k; i++ {
		p[i] = 0xAB
	}
	e.n -= k
	return k, nil
}

func TestWriteFailureRollsBack(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", true))
	_, err := v.WriteObject("bad", &errReader{n: 20 * 1024})
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatal("expected write failure")
	}
	st := v.Stats()
	if st.Objects != 0 || st.DataBytes != 0 || st.UniqueBlocks != 0 {
		t.Fatalf("failed write leaked state: %+v", st)
	}
}
