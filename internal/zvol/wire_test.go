package zvol

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// mkStream builds a source volume with two snapshots and returns its
// incremental stream.
func mkStream(t testing.TB) *Stream {
	t.Helper()
	src, err := New(cfg(4096, "gzip6", true))
	if err != nil {
		t.Fatal(err)
	}
	src.WriteObject("a", bytes.NewReader(mkData(50, 70*1024)))
	src.Snapshot("s1", day(0))
	src.WriteObject("b", bytes.NewReader(mkData(51, 50*1024)))
	src.DeleteObject("a")
	src.Snapshot("s2", day(1))
	st, err := src.Send("s1", "s2")
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestWireRoundTrip(t *testing.T) {
	st := mkStream(t)
	var buf bytes.Buffer
	n, err := st.Encode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Encode reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := DecodeStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FromSnap != st.FromSnap || got.ToSnap != st.ToSnap {
		t.Fatalf("snapshot names lost: %+v", got)
	}
	if !got.Created.Equal(st.Created) {
		t.Fatalf("created %v != %v", got.Created, st.Created)
	}
	if !reflect.DeepEqual(got.Deletes, st.Deletes) {
		t.Fatalf("deletes %v != %v", got.Deletes, st.Deletes)
	}
	if len(got.Blocks) != len(st.Blocks) {
		t.Fatalf("blocks %d != %d", len(got.Blocks), len(st.Blocks))
	}
	for i := range st.Blocks {
		if !bytes.Equal(got.Blocks[i], st.Blocks[i]) {
			t.Fatalf("block %d differs", i)
		}
	}
	if !reflect.DeepEqual(got.Upserts, st.Upserts) {
		t.Fatal("upserts differ")
	}
}

func TestWireDecodedStreamIsReceivable(t *testing.T) {
	// End-to-end: full stream + incremental stream survive the wire and
	// apply cleanly on a replica.
	src, _ := New(cfg(4096, "gzip6", true))
	dataA := mkData(60, 90*1024)
	dataB := mkData(61, 40*1024)
	src.WriteObject("a", bytes.NewReader(dataA))
	src.Snapshot("s1", day(0))
	src.WriteObject("b", bytes.NewReader(dataB))
	src.Snapshot("s2", day(1))

	dst, _ := New(cfg(4096, "gzip6", true))
	for _, pair := range [][2]string{{"", "s1"}, {"s1", "s2"}} {
		st, err := src.Send(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := st.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeStream(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Receive(decoded); err != nil {
			t.Fatal(err)
		}
	}
	for name, want := range map[string][]byte{"a": dataA, "b": dataB} {
		got, err := dst.ReadObject(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("replica %s diverged after wire transfer: %v", name, err)
		}
	}
}

func TestWireDetectsCorruption(t *testing.T) {
	st := mkStream(t)
	var buf bytes.Buffer
	if _, err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		mut := append([]byte(nil), pristine...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		if _, err := DecodeStream(bytes.NewReader(mut)); err == nil {
			// A flip inside a block payload may decode structurally but
			// must then fail the CRC — err == nil means the checksum
			// missed it.
			t.Fatalf("trial %d: corruption not detected", trial)
		}
	}
}

func TestWireDetectsTruncation(t *testing.T) {
	st := mkStream(t)
	var buf bytes.Buffer
	st.Encode(&buf)
	data := buf.Bytes()
	for cut := 0; cut < len(data)-1; cut += 97 {
		if _, err := DecodeStream(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("????"),
		[]byte("SQRL\xFF\xFF"), // bad version
		bytes.Repeat([]byte{0xFF}, 64),
	}
	for i, c := range cases {
		if _, err := DecodeStream(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func BenchmarkWireEncode(b *testing.B) {
	st := mkStream(b)
	var size int64
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		n, err := st.Encode(&buf)
		if err != nil {
			b.Fatal(err)
		}
		size = n
	}
	b.SetBytes(size)
}

func BenchmarkWireDecode(b *testing.B) {
	st := mkStream(b)
	var buf bytes.Buffer
	st.Encode(&buf)
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeStream(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
