// Receive journaling: crash consistency for stream application. The
// paper's compute nodes inherit crash safety from ZFS (`zfs recv` aborts
// leave no partial dataset); our in-memory model needs the same property
// when the simulator kills a node mid-apply. Receive therefore runs as a
// journaled transaction: an intent record opens before the first
// mutation, every staged step appends its undo record, and the final
// commit (reference releases + snapshot creation + journal clear) is
// atomic. A crash between intent and commit leaves the journal open;
// Recover replays the undo log backwards and the dataset is bit-identical
// to its pre-receive state.
package zvol

// undoRec reverses one staged apply step.
type undoRec struct {
	upsert  bool
	name    string
	newPtrs []blockPtr // pointers created by an upsert (released on undo)
	old     *Object    // object displaced by the step (restored on undo)
	logical int64      // logicalWritten delta to reverse
	zeros   int64      // zeroBytes delta to reverse
}

// receiveJournal is the intent record of one in-flight Receive plus the
// undo log of its staged steps. A non-nil journal on a volume means a
// torn apply: the last receive crashed between intent and commit.
type receiveJournal struct {
	fromSnap, toSnap string
	steps            int // staged steps completed
	undo             []undoRec
}

// SetReceiveCrashPoint arms a one-shot crash for the next Receive: the
// apply dies after n staged steps (0 = right after the intent record,
// len(Upserts)+len(Deletes) = everything staged but nothing committed),
// returning ErrTorn with the journal left open. This is the injection
// point for the torn-apply fault lane and the crash-offset property
// tests.
func (v *Volume) SetReceiveCrashPoint(n int) {
	v.mu.Lock()
	v.crashPoint = n
	v.armed = true
	v.mu.Unlock()
}

// NeedsRecovery reports whether a torn receive left an open journal.
func (v *Volume) NeedsRecovery() bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.journal != nil
}

// RecoverReport describes one restart-time journal recovery.
type RecoverReport struct {
	RolledBack    bool   // an open journal was found and rolled back
	Snapshot      string // the torn stream's target snapshot name
	UndoneUpserts int
	UndoneDeletes int
}

// Recover is the restart-time audit: if the last Receive was torn by a
// crash, its staged steps are undone in reverse order and the journal is
// cleared, restoring the dataset to its exact pre-receive state (the
// torn snapshot was never created, so the node simply looks like it
// missed the registration and heals through SyncNode). With no open
// journal Recover is a no-op.
func (v *Volume) Recover() RecoverReport {
	v.mu.Lock()
	defer v.mu.Unlock()
	j := v.journal
	if j == nil {
		return RecoverReport{}
	}
	rep := RecoverReport{RolledBack: true, Snapshot: j.toSnap}
	for i := len(j.undo) - 1; i >= 0; i-- {
		rec := j.undo[i]
		if rec.upsert {
			v.releasePtrsLocked(rec.newPtrs)
			if rec.old != nil {
				v.objects[rec.name] = rec.old
			} else {
				delete(v.objects, rec.name)
			}
			v.logicalWritten -= rec.logical
			v.zeroBytes -= rec.zeros
			rep.UndoneUpserts++
		} else {
			v.objects[rec.name] = rec.old
			rep.UndoneDeletes++
		}
	}
	v.journal = nil
	v.counters.Add("zvol.rollback", 1)
	return rep
}
