// Package zvol implements the cVolume: Squirrel's deduplicated,
// compressed, snapshot-capable block volume — the role the ZFS file system
// plays in the paper. A Volume stores named objects (VMI caches or whole
// VMIs) as sequences of fixed-size blocks that are zero-suppressed,
// content-hashed, deduplicated through a refcounted DDT, compressed
// inline, and placed in a flat physical address space.
//
// On top of the block layer, a Volume supports named read-only snapshots,
// incremental send/receive streams between snapshots (the mechanism
// Squirrel uses to propagate new VMI caches from the scVolume to all
// ccVolumes, §3.2/§3.5 of the paper), and snapshot garbage collection with
// a retention window (§3.4).
package zvol

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/compress"
	"repro/internal/dedup"
	"repro/internal/metrics"
	"repro/internal/store"
)

// Config selects the volume's storage policy. The zero value is not
// usable; call DefaultConfig for the paper's chosen configuration.
type Config struct {
	BlockSize block.Size // record size; the paper settles on 64 KB
	Codec     string     // compress codec name; "" or "null" disables
	Dedup     bool       // deduplicate through the DDT
	// MinCompressGain is the fraction of a block that compression must
	// save for the compressed form to be stored (ZFS requires 12.5%).
	// Zero means "any gain".
	MinCompressGain float64
}

// DefaultConfig is the configuration the paper converges on for cVolumes:
// 64 KB blocks, gzip-6, dedup on, ZFS's 12.5% minimum compression gain.
func DefaultConfig() Config {
	return Config{BlockSize: block.Default, Codec: "gzip6", Dedup: true, MinCompressGain: 0.125}
}

// blockPtr locates one logical block of an object. Zero blocks are holes:
// they carry no address and never touch the DDT or the store, which is how
// sparse images shrink from 16.4 TB to 1.4 TB in Table 1.
type blockPtr struct {
	hash       block.Hash
	addr       uint64
	physLen    int32
	logLen     int32
	zero       bool
	compressed bool
	// physHash checksums the stored payload bytes themselves (the
	// possibly-compressed on-disk form), like a ZFS blkptr. hash covers
	// the logical content and drives dedup; physHash is what a scrub
	// verifies, so even a flip in a codec header byte that decodes to the
	// same content is caught.
	physHash block.Hash
}

// Object is a named block sequence stored in a volume.
type Object struct {
	Name string
	Size int64 // logical size in bytes
	ptrs []blockPtr
}

// NumBlocks returns the number of logical blocks, including holes.
func (o *Object) NumBlocks() int { return len(o.ptrs) }

// Snapshot is an immutable, named view of a volume's full object set.
type Snapshot struct {
	Name    string
	Created time.Time
	objects map[string]*Object // object table at snapshot time
}

// Objects lists the object names captured by the snapshot, sorted.
func (s *Snapshot) Objects() []string {
	names := make([]string, 0, len(s.objects))
	for n := range s.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Volume is a thread-safe cVolume.
type Volume struct {
	mu    sync.RWMutex
	cfg   Config
	codec compress.Codec
	store *store.Store
	ddt   *dedup.Table

	objects map[string]*Object
	snaps   []*Snapshot // creation-ordered

	logicalWritten int64 // bytes accepted by WriteObject (incl. zeros)
	zeroBytes      int64 // bytes suppressed as holes

	// journal is the open receive journal of a torn apply, nil when
	// consistent. crashPoint/armed arm a one-shot injected crash for the
	// next Receive (see SetReceiveCrashPoint).
	journal    *receiveJournal
	crashPoint int
	armed      bool

	// counters is the deployment-wide counter registry (nil-safe; nil
	// drops updates). Receive and Recover account stream applies and
	// journal rollbacks here when telemetry is enabled.
	counters *metrics.CounterSet
}

// SetCounters points the volume's accounting at a shared counter
// registry. Nil-safe on both sides: a nil volume ignores the call, and a
// nil set restores drop-everything accounting.
func (v *Volume) SetCounters(c *metrics.CounterSet) {
	if v == nil {
		return
	}
	v.mu.Lock()
	v.counters = c
	v.mu.Unlock()
}

// New creates an empty volume. It returns an error for invalid block sizes
// or unknown codecs.
func New(cfg Config) (*Volume, error) {
	if !cfg.BlockSize.Valid() {
		return nil, fmt.Errorf("zvol: invalid block size %d", cfg.BlockSize)
	}
	name := cfg.Codec
	if name == "" {
		name = "null"
	}
	codec, err := compress.Get(name)
	if err != nil {
		return nil, err
	}
	return &Volume{
		cfg:     cfg,
		codec:   codec,
		store:   store.New(),
		ddt:     dedup.NewTable(),
		objects: make(map[string]*Object),
	}, nil
}

// Config returns the volume's configuration.
func (v *Volume) Config() Config { return v.cfg }

// Errors returned by volume operations.
var (
	ErrExists      = errors.New("zvol: object already exists")
	ErrNotFound    = errors.New("zvol: not found")
	ErrSnapExists  = errors.New("zvol: snapshot already exists")
	ErrNotAncestor = errors.New("zvol: incremental source snapshot not present")
	ErrBadStream   = errors.New("zvol: stream failed verification")
	// ErrCorrupt marks a stored block whose payload no longer matches its
	// block pointer's checksum (at-rest bit-rot). Reads fail rather than
	// return damaged bytes; Scrub enumerates the damage and RepairBlock
	// heals it.
	ErrCorrupt = errors.New("zvol: block failed checksum")
	// ErrTorn is returned by Receive when the (injected) node crash fires
	// mid-apply: the volume is left with a partially-applied stream and an
	// open receive journal that Recover must roll back.
	ErrTorn = errors.New("zvol: receive torn by crash")
	// ErrNeedsRecovery refuses new receives while a torn receive's
	// journal is still open.
	ErrNeedsRecovery = errors.New("zvol: open receive journal, run Recover first")
	// ErrBadRepair rejects repair data that does not match the damaged
	// block's recorded checksum — a rotten source must never be written
	// into a replica.
	ErrBadRepair = errors.New("zvol: repair data failed verification")
)

// WriteObject stores the stream r as a new object. Writing over an
// existing name is refused; delete first (Squirrel objects — VMI caches —
// are immutable once registered).
func (v *Volume) WriteObject(name string, r io.Reader) (*Object, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, dup := v.objects[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	ch, err := block.NewChunker(r, v.cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	obj := &Object{Name: name}
	err = ch.ForEach(func(c block.Chunk) error {
		obj.Size += int64(len(c.Data))
		v.logicalWritten += int64(len(c.Data))
		if c.Zero {
			v.zeroBytes += int64(len(c.Data))
			obj.ptrs = append(obj.ptrs, blockPtr{zero: true, logLen: int32(len(c.Data))})
			return nil
		}
		obj.ptrs = append(obj.ptrs, v.writeBlock(c.Data))
		return nil
	})
	if err != nil {
		// Roll back partially written blocks so the volume stays
		// consistent.
		v.releasePtrsLocked(obj.ptrs)
		return nil, err
	}
	v.objects[name] = obj
	return obj, nil
}

// writeBlock stores one nonzero block and returns its pointer. Caller
// holds v.mu.
func (v *Volume) writeBlock(data []byte) blockPtr {
	h := block.HashOf(data)
	if v.cfg.Dedup {
		if e := v.ddt.Lookup(h); e != nil {
			v.ddt.AddRef(h)
			return blockPtr{hash: h, addr: e.Addr, physLen: e.PhysLen,
				logLen: int32(len(data)), compressed: e.Compressed, physHash: e.PhysHash}
		}
	}
	payload := data
	isCompressed := false
	if v.codec.Name() != "null" {
		comp := v.codec.Compress(data)
		gain := 1 - float64(len(comp))/float64(len(data))
		if gain > v.cfg.MinCompressGain {
			payload = comp
			isCompressed = true
		}
	}
	addr := v.store.Alloc(payload)
	ptr := blockPtr{hash: h, addr: addr, physLen: int32(len(payload)),
		logLen: int32(len(data)), compressed: isCompressed, physHash: block.HashOf(payload)}
	if v.cfg.Dedup {
		v.ddt.Reference(h, addr, ptr.physLen, ptr.logLen, isCompressed, ptr.physHash)
	}
	return ptr
}

// releasePtrsLocked drops references for ptrs, freeing blocks whose last
// reference is gone. Without dedup every pointer owns its block.
func (v *Volume) releasePtrsLocked(ptrs []blockPtr) {
	for _, p := range ptrs {
		if p.zero {
			continue
		}
		if v.cfg.Dedup {
			if e, freed, err := v.ddt.Release(p.hash); err == nil && freed {
				v.store.Free(e.Addr)
			}
		} else {
			v.store.Free(p.addr)
		}
	}
}

// ReadObject returns the full content of the named object in the live
// object table.
func (v *Volume) ReadObject(name string) ([]byte, error) {
	v.mu.RLock()
	obj, ok := v.objects[name]
	v.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: object %s", ErrNotFound, name)
	}
	return v.materialize(obj)
}

// materialize reconstructs an object's bytes.
func (v *Volume) materialize(obj *Object) ([]byte, error) {
	out := make([]byte, 0, obj.Size)
	for i, p := range obj.ptrs {
		if p.zero {
			out = append(out, make([]byte, p.logLen)...)
			continue
		}
		data, err := v.readBlockPtr(p)
		if err != nil {
			return nil, fmt.Errorf("zvol: object %s block %d: %w", obj.Name, i, err)
		}
		out = append(out, data...)
	}
	return out, nil
}

// readBlockPtr fetches, decodes, and checksum-verifies one block. Every
// read is end-to-end verified against the block pointer's stored hash
// (ZFS-style): a rotted payload surfaces as ErrCorrupt instead of
// corrupt bytes, so damage can never be served to a boot or a peer.
func (v *Volume) readBlockPtr(p blockPtr) ([]byte, error) {
	payload, err := v.store.Read(p.addr)
	if err != nil {
		return nil, err
	}
	if block.HashOf(payload) != p.physHash {
		return nil, ErrCorrupt
	}
	data := payload
	if p.compressed {
		data, err = v.codec.Decompress(payload, int(p.logLen))
		if err != nil {
			// A rotted compressed payload typically fails to decode at
			// all; classify that as corruption, not an I/O error.
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	if int32(len(data)) != p.logLen {
		return nil, fmt.Errorf("%w: length %d != %d", ErrCorrupt, len(data), p.logLen)
	}
	if block.HashOf(data) != p.hash {
		return nil, ErrCorrupt
	}
	return data, nil
}

// ReadBlock returns the idx-th logical block of the named object along
// with its physical address (0 and zero=true for holes). The boot
// simulator uses the address to model seeks.
func (v *Volume) ReadBlock(name string, idx int) (data []byte, addr uint64, zero bool, err error) {
	v.mu.RLock()
	obj, ok := v.objects[name]
	v.mu.RUnlock()
	if !ok {
		return nil, 0, false, fmt.Errorf("%w: object %s", ErrNotFound, name)
	}
	if idx < 0 || idx >= len(obj.ptrs) {
		return nil, 0, false, fmt.Errorf("zvol: block %d out of range for %s", idx, name)
	}
	p := obj.ptrs[idx]
	if p.zero {
		return make([]byte, p.logLen), 0, true, nil
	}
	data, err = v.readBlockPtr(p)
	return data, p.addr, false, err
}

// DeleteObject removes an object from the live table. Blocks remain alive
// while any snapshot still references them.
func (v *Volume) DeleteObject(name string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	obj, ok := v.objects[name]
	if !ok {
		return fmt.Errorf("%w: object %s", ErrNotFound, name)
	}
	delete(v.objects, name)
	v.releasePtrsLocked(obj.ptrs)
	return nil
}

// HasObject reports whether the live table holds name.
func (v *Volume) HasObject(name string) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, ok := v.objects[name]
	return ok
}

// Objects lists live object names, sorted.
func (v *Volume) Objects() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	names := make([]string, 0, len(v.objects))
	for n := range v.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BlockInfo describes one logical block's physical placement, consumed by
// the boot simulator to model seeks, transfer sizes, and decompression.
type BlockInfo struct {
	Addr       uint64 // physical address in the volume's store
	PhysLen    int32  // bytes read from disk for this block
	LogLen     int32  // logical bytes the block decodes to
	Zero       bool
	Compressed bool
}

// BlockInfos returns the physical layout of every logical block of the
// named live object.
func (v *Volume) BlockInfos(name string) ([]BlockInfo, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	obj, ok := v.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: object %s", ErrNotFound, name)
	}
	out := make([]BlockInfo, len(obj.ptrs))
	for i, p := range obj.ptrs {
		out[i] = BlockInfo{Addr: p.addr, PhysLen: p.physLen, LogLen: p.logLen,
			Zero: p.zero, Compressed: p.compressed}
	}
	return out, nil
}

// Object returns the live object named name.
func (v *Volume) Object(name string) (*Object, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	obj, ok := v.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: object %s", ErrNotFound, name)
	}
	return obj, nil
}
