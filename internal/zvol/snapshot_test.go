package zvol

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/block"
)

var t0 = time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC) // HPDC'14 day one

func day(n int) time.Time { return t0.Add(time.Duration(n) * 24 * time.Hour) }

func TestSnapshotPreservesContent(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "gzip6", true))
	data := mkData(10, 80*1024)
	v.WriteObject("a", bytes.NewReader(data))
	if _, err := v.Snapshot("s1", day(0)); err != nil {
		t.Fatal(err)
	}
	// Delete the live object; the snapshot must still serve it.
	if err := v.DeleteObject("a"); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadObjectAt("s1", "a")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("snapshot lost content: %v", err)
	}
	if _, err := v.ReadObject("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("live object should be gone")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "gzip6", true))
	v.WriteObject("a", bytes.NewReader(mkData(11, 40*1024)))
	v.Snapshot("s1", day(0))
	v.WriteObject("b", bytes.NewReader(mkData(12, 40*1024)))
	if _, err := v.ReadObjectAt("s1", "b"); !errors.Is(err, ErrNotFound) {
		t.Fatal("later object visible in earlier snapshot")
	}
}

func TestSnapshotDuplicateName(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", true))
	v.Snapshot("s", day(0))
	if _, err := v.Snapshot("s", day(1)); !errors.Is(err, ErrSnapExists) {
		t.Fatalf("want ErrSnapExists, got %v", err)
	}
}

func TestDeleteSnapshotFreesBlocks(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "gzip6", true))
	v.WriteObject("a", bytes.NewReader(mkData(13, 60*1024)))
	v.Snapshot("s1", day(0))
	v.DeleteObject("a")
	if v.Stats().DataBytes == 0 {
		t.Fatal("snapshot should pin blocks")
	}
	if err := v.DeleteSnapshot("s1"); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.DataBytes != 0 || st.UniqueBlocks != 0 {
		t.Fatalf("deleting last snapshot leaked: %+v", st)
	}
	if err := v.DeleteSnapshot("s1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("double delete should fail")
	}
}

func TestGarbageCollectWindow(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", true))
	for i := 0; i < 5; i++ {
		v.WriteObject(string(rune('a'+i)), bytes.NewReader(mkData(int64(i), 8*1024)))
		if _, err := v.Snapshot(string(rune('A'+i)), day(i)); err != nil {
			t.Fatal(err)
		}
	}
	// GC at day 10 with a 3-day window: snapshots A..D (days 0..3) are
	// outside the window [day7, day10]; E (day 4) is outside too but is
	// the latest and must be kept.
	destroyed := v.GarbageCollect(day(10), 3*24*time.Hour)
	want := map[string]bool{"A": true, "B": true, "C": true, "D": true}
	if len(destroyed) != 4 {
		t.Fatalf("destroyed %v", destroyed)
	}
	for _, n := range destroyed {
		if !want[n] {
			t.Fatalf("unexpectedly destroyed %s", n)
		}
	}
	snaps := v.Snapshots()
	if len(snaps) != 1 || snaps[0].Name != "E" {
		t.Fatalf("kept %v, want only E", snaps)
	}
}

func TestGarbageCollectKeepsRecent(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", true))
	v.Snapshot("old", day(0))
	v.Snapshot("new", day(9))
	destroyed := v.GarbageCollect(day(10), 7*24*time.Hour)
	if len(destroyed) != 1 || destroyed[0] != "old" {
		t.Fatalf("destroyed %v, want [old]", destroyed)
	}
}

func TestGarbageCollectEmpty(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", true))
	if d := v.GarbageCollect(day(0), time.Hour); d != nil {
		t.Fatalf("empty volume destroyed %v", d)
	}
}

func TestLatestSnapshot(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", true))
	if v.LatestSnapshot() != nil {
		t.Fatal("empty volume has no latest")
	}
	v.Snapshot("s1", day(0))
	v.Snapshot("s2", day(1))
	if got := v.LatestSnapshot(); got.Name != "s2" {
		t.Fatalf("latest %s want s2", got.Name)
	}
	if _, err := v.FindSnapshot("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.FindSnapshot("zz"); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing snapshot must error")
	}
}

func TestSnapshotObjectsListing(t *testing.T) {
	v, _ := New(cfg(block.Size4K, "null", true))
	v.WriteObject("b", bytes.NewReader([]byte{1}))
	v.WriteObject("a", bytes.NewReader([]byte{2}))
	s, _ := v.Snapshot("s", day(0))
	got := s.Objects()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("snapshot objects %v", got)
	}
}
