package zvol

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// prepPair builds a source volume with several objects (dedup'd shared
// content, compressible and random runs, holes), snapshots it, and
// returns the source plus the full stream for s1.
func prepPair(t *testing.T) (*Volume, *Stream) {
	t.Helper()
	src, _ := pair(t)
	if _, err := src.WriteObject("base", bytes.NewReader(mkData(7, 96*1024))); err != nil {
		t.Fatal(err)
	}
	// Same content under another name: dedup inside the stream.
	if _, err := src.WriteObject("clone", bytes.NewReader(mkData(7, 96*1024))); err != nil {
		t.Fatal(err)
	}
	if _, err := src.WriteObject("other", bytes.NewReader(mkData(11, 64*1024))); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Snapshot("s1", day(0)); err != nil {
		t.Fatal(err)
	}
	st, err := src.Send("", "s1")
	if err != nil {
		t.Fatal(err)
	}
	return src, st
}

// assertIdenticalReplicas compares two volumes down to block-pointer
// level: object tables, every pointer field including disk addresses,
// materialized bytes, volume stats, and a clean scrub on both.
func assertIdenticalReplicas(t *testing.T, a, b *Volume) {
	t.Helper()
	if got, want := b.Objects(), a.Objects(); !reflect.DeepEqual(got, want) {
		t.Fatalf("object sets differ: %v vs %v", got, want)
	}
	a.mu.RLock()
	b.mu.RLock()
	for name, ao := range a.objects {
		bo := b.objects[name]
		if bo == nil || !reflect.DeepEqual(ao.ptrs, bo.ptrs) {
			a.mu.RUnlock()
			b.mu.RUnlock()
			t.Fatalf("block pointers differ for %s:\n  receive:  %+v\n  prepared: %+v", name, ao, bo)
		}
	}
	a.mu.RUnlock()
	b.mu.RUnlock()
	for _, name := range a.Objects() {
		da, err := a.ReadObject(name)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.ReadObject(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(da, db) {
			t.Fatalf("materialized bytes differ for %s", name)
		}
	}
	if sa, sb := a.Stats(), b.Stats(); !reflect.DeepEqual(sa, sb) {
		t.Fatalf("stats differ:\n  receive:  %+v\n  prepared: %+v", sa, sb)
	}
	ssa, ssb := a.StoreStats(), b.StoreStats()
	// The prepared receiver aliases stored payloads, and a torn+recovered
	// attempt leaves extra alloc/free history; occupancy, span, and the
	// per-pointer addresses compared above must still match exactly.
	ssa.Shared, ssb.Shared = 0, 0
	ssa.Allocs, ssb.Allocs = 0, 0
	ssa.Frees, ssb.Frees = 0, 0
	if !reflect.DeepEqual(ssa, ssb) {
		t.Fatalf("store stats differ:\n  receive:  %+v\n  prepared: %+v", ssa, ssb)
	}
	if rep := b.Scrub(); !rep.Clean() {
		t.Fatalf("prepared replica failed scrub: %+v", rep)
	}
}

func TestReceivePreparedMatchesReceive(t *testing.T) {
	src, st := prepPair(t)
	ps := src.Prepare(st)

	plain, _ := pair(t)
	prepped, _ := pair(t)
	if err := plain.Receive(st); err != nil {
		t.Fatal(err)
	}
	if err := prepped.ReceivePrepared(ps); err != nil {
		t.Fatal(err)
	}
	assertIdenticalReplicas(t, plain, prepped)
	if prepped.StoreStats().Shared == 0 {
		t.Fatal("prepared receive did not alias any stored payloads")
	}

	// Incremental stream on top: both paths again.
	if _, err := src.WriteObject("delta", bytes.NewReader(mkData(23, 48*1024))); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Snapshot("s2", day(1)); err != nil {
		t.Fatal(err)
	}
	inc, err := src.Send("s1", "s2")
	if err != nil {
		t.Fatal(err)
	}
	pinc := src.Prepare(inc)
	if err := plain.Receive(inc); err != nil {
		t.Fatal(err)
	}
	if err := prepped.ReceivePrepared(pinc); err != nil {
		t.Fatal(err)
	}
	assertIdenticalReplicas(t, plain, prepped)
}

// Two receivers of the same prepared stream alias the same stored bytes;
// rotting one replica must copy-on-write and leave the other intact.
func TestReceivePreparedCopyOnWrite(t *testing.T) {
	src, st := prepPair(t)
	ps := src.Prepare(st)
	a, b := pair(t)
	if err := a.ReceivePrepared(ps); err != nil {
		t.Fatal(err)
	}
	if err := b.ReceivePrepared(ps); err != nil {
		t.Fatal(err)
	}
	if err := a.CorruptStoredBlock("base", 0, 0, 0xFF); err != nil {
		t.Fatal(err)
	}
	if rep := a.Scrub(); rep.Clean() {
		t.Fatal("corruption on a vanished")
	}
	if rep := b.Scrub(); !rep.Clean() {
		t.Fatalf("corruption on a leaked into b via the shared payload: %+v", rep)
	}
	want, err := src.ReadObject("base")
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadObject("base")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("b's content changed after a was corrupted")
	}
}

func TestReceivePreparedVerification(t *testing.T) {
	src, st := prepPair(t)
	ps := src.Prepare(st)
	dst, _ := pair(t)

	short := &PreparedStream{Stream: st, Blocks: ps.Blocks[:len(ps.Blocks)-1]}
	if err := dst.ReceivePrepared(short); !errors.Is(err, ErrBadStream) {
		t.Fatalf("block-count mismatch: %v", err)
	}
	bad := &PreparedStream{Stream: st, Blocks: append([]PreparedBlock(nil), ps.Blocks...)}
	bad.Blocks[0].Hash[0] ^= 0xFF
	if err := dst.ReceivePrepared(bad); !errors.Is(err, ErrBadStream) {
		t.Fatalf("hash mismatch: %v", err)
	}
	if err := dst.ReceivePrepared(nil); !errors.Is(err, ErrBadStream) {
		t.Fatalf("nil prepared stream: %v", err)
	}
	if len(dst.Objects()) != 0 || len(dst.Snapshots()) != 0 {
		t.Fatal("failed prepared receives left state behind")
	}
	if err := dst.ReceivePrepared(ps); err != nil {
		t.Fatal(err)
	}
}

// The torn-apply crash lane works identically through the prepared path:
// an armed crash point tears the apply, Recover rolls back to the exact
// pre-receive state, and the same prepared stream then applies cleanly.
func TestReceivePreparedTornApplyRecovers(t *testing.T) {
	src, st := prepPair(t)
	ps := src.Prepare(st)
	dst, _ := pair(t)
	before := snapshotState(t, dst)
	dst.SetReceiveCrashPoint(1)
	if err := dst.ReceivePrepared(ps); !errors.Is(err, ErrTorn) {
		t.Fatalf("armed crash point: %v", err)
	}
	if !dst.NeedsRecovery() {
		t.Fatal("torn receive left no open journal")
	}
	dst.Recover()
	if !sameState(before, snapshotState(t, dst)) {
		t.Fatal("recovery did not restore the pre-receive state")
	}
	if err := dst.ReceivePrepared(ps); err != nil {
		t.Fatal(err)
	}
	plain, _ := pair(t)
	if err := plain.Receive(st); err != nil {
		t.Fatal(err)
	}
	assertIdenticalReplicas(t, plain, dst)
}
